# Empty compiler generated dependencies file for priority_classes.
# This may be replaced when dependencies are built.
