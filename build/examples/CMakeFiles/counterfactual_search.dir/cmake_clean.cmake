file(REMOVE_RECURSE
  "CMakeFiles/counterfactual_search.dir/counterfactual_search.cpp.o"
  "CMakeFiles/counterfactual_search.dir/counterfactual_search.cpp.o.d"
  "counterfactual_search"
  "counterfactual_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterfactual_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
