# Empty compiler generated dependencies file for counterfactual_search.
# This may be replaced when dependencies are built.
