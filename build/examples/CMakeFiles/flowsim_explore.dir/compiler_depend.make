# Empty compiler generated dependencies file for flowsim_explore.
# This may be replaced when dependencies are built.
