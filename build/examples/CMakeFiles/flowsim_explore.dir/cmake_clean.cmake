file(REMOVE_RECURSE
  "CMakeFiles/flowsim_explore.dir/flowsim_explore.cpp.o"
  "CMakeFiles/flowsim_explore.dir/flowsim_explore.cpp.o.d"
  "flowsim_explore"
  "flowsim_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowsim_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
