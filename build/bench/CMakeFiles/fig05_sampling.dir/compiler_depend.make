# Empty compiler generated dependencies file for fig05_sampling.
# This may be replaced when dependencies are built.
