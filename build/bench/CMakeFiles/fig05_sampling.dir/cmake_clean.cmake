file(REMOVE_RECURSE
  "CMakeFiles/fig05_sampling.dir/fig05_sampling.cc.o"
  "CMakeFiles/fig05_sampling.dir/fig05_sampling.cc.o.d"
  "fig05_sampling"
  "fig05_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
