file(REMOVE_RECURSE
  "CMakeFiles/fig02_path_stats.dir/fig02_path_stats.cc.o"
  "CMakeFiles/fig02_path_stats.dir/fig02_path_stats.cc.o.d"
  "fig02_path_stats"
  "fig02_path_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_path_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
