# Empty dependencies file for fig14_eta_sweep.
# This may be replaced when dependencies are built.
