# Empty dependencies file for abl_residual_head.
# This may be replaced when dependencies are built.
