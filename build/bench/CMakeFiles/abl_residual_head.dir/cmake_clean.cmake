file(REMOVE_RECURSE
  "CMakeFiles/abl_residual_head.dir/abl_residual_head.cc.o"
  "CMakeFiles/abl_residual_head.dir/abl_residual_head.cc.o.d"
  "abl_residual_head"
  "abl_residual_head.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_residual_head.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
