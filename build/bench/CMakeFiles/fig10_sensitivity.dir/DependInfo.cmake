
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_sensitivity.cc" "bench/CMakeFiles/fig10_sensitivity.dir/fig10_sensitivity.cc.o" "gcc" "bench/CMakeFiles/fig10_sensitivity.dir/fig10_sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_pathdecomp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_parsimon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_pktsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
