# Empty dependencies file for table5_large_scale.
# This may be replaced when dependencies are built.
