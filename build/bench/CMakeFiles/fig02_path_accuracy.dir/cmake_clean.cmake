file(REMOVE_RECURSE
  "CMakeFiles/fig02_path_accuracy.dir/fig02_path_accuracy.cc.o"
  "CMakeFiles/fig02_path_accuracy.dir/fig02_path_accuracy.cc.o.d"
  "fig02_path_accuracy"
  "fig02_path_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_path_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
