file(REMOVE_RECURSE
  "CMakeFiles/fig16_ablation.dir/fig16_ablation.cc.o"
  "CMakeFiles/fig16_ablation.dir/fig16_ablation.cc.o.d"
  "fig16_ablation"
  "fig16_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
