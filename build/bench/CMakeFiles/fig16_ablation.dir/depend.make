# Empty dependencies file for fig16_ablation.
# This may be replaced when dependencies are built.
