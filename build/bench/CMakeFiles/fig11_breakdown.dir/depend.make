# Empty dependencies file for fig11_breakdown.
# This may be replaced when dependencies are built.
