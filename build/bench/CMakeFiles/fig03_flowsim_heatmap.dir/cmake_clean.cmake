file(REMOVE_RECURSE
  "CMakeFiles/fig03_flowsim_heatmap.dir/fig03_flowsim_heatmap.cc.o"
  "CMakeFiles/fig03_flowsim_heatmap.dir/fig03_flowsim_heatmap.cc.o.d"
  "fig03_flowsim_heatmap"
  "fig03_flowsim_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_flowsim_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
