# Empty compiler generated dependencies file for fig03_flowsim_heatmap.
# This may be replaced when dependencies are built.
