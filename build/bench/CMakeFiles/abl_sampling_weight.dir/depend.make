# Empty dependencies file for abl_sampling_weight.
# This may be replaced when dependencies are built.
