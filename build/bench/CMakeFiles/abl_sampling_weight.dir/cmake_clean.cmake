file(REMOVE_RECURSE
  "CMakeFiles/abl_sampling_weight.dir/abl_sampling_weight.cc.o"
  "CMakeFiles/abl_sampling_weight.dir/abl_sampling_weight.cc.o.d"
  "abl_sampling_weight"
  "abl_sampling_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sampling_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
