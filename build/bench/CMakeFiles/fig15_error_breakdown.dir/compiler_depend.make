# Empty compiler generated dependencies file for fig15_error_breakdown.
# This may be replaced when dependencies are built.
