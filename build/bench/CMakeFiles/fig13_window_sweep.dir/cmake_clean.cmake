file(REMOVE_RECURSE
  "CMakeFiles/fig13_window_sweep.dir/fig13_window_sweep.cc.o"
  "CMakeFiles/fig13_window_sweep.dir/fig13_window_sweep.cc.o.d"
  "fig13_window_sweep"
  "fig13_window_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
