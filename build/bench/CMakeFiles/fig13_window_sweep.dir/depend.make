# Empty dependencies file for fig13_window_sweep.
# This may be replaced when dependencies are built.
