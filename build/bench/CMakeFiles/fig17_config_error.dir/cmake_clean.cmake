file(REMOVE_RECURSE
  "CMakeFiles/fig17_config_error.dir/fig17_config_error.cc.o"
  "CMakeFiles/fig17_config_error.dir/fig17_config_error.cc.o.d"
  "fig17_config_error"
  "fig17_config_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_config_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
