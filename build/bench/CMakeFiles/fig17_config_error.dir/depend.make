# Empty dependencies file for fig17_config_error.
# This may be replaced when dependencies are built.
