# Empty compiler generated dependencies file for fig06_path_distribution.
# This may be replaced when dependencies are built.
