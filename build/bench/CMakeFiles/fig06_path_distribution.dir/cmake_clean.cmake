file(REMOVE_RECURSE
  "CMakeFiles/fig06_path_distribution.dir/fig06_path_distribution.cc.o"
  "CMakeFiles/fig06_path_distribution.dir/fig06_path_distribution.cc.o.d"
  "fig06_path_distribution"
  "fig06_path_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_path_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
