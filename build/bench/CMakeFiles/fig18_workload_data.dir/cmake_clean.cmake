file(REMOVE_RECURSE
  "CMakeFiles/fig18_workload_data.dir/fig18_workload_data.cc.o"
  "CMakeFiles/fig18_workload_data.dir/fig18_workload_data.cc.o.d"
  "fig18_workload_data"
  "fig18_workload_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_workload_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
