# Empty compiler generated dependencies file for fig18_workload_data.
# This may be replaced when dependencies are built.
