# Empty compiler generated dependencies file for micro_flowsim_speed.
# This may be replaced when dependencies are built.
