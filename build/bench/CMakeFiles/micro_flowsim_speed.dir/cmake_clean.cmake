file(REMOVE_RECURSE
  "CMakeFiles/micro_flowsim_speed.dir/micro_flowsim_speed.cc.o"
  "CMakeFiles/micro_flowsim_speed.dir/micro_flowsim_speed.cc.o.d"
  "micro_flowsim_speed"
  "micro_flowsim_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_flowsim_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
