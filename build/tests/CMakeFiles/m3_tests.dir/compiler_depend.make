# Empty compiler generated dependencies file for m3_tests.
# This may be replaced when dependencies are built.
