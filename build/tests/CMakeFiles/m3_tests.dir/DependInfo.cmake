
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cc_test.cc" "tests/CMakeFiles/m3_tests.dir/cc_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/cc_test.cc.o.d"
  "/root/repo/tests/config_test.cc" "tests/CMakeFiles/m3_tests.dir/config_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/config_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/m3_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/estimator_props_test.cc" "tests/CMakeFiles/m3_tests.dir/estimator_props_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/estimator_props_test.cc.o.d"
  "/root/repo/tests/flowsim_test.cc" "tests/CMakeFiles/m3_tests.dir/flowsim_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/flowsim_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/m3_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/ml_test.cc" "tests/CMakeFiles/m3_tests.dir/ml_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/ml_test.cc.o.d"
  "/root/repo/tests/parsimon_test.cc" "tests/CMakeFiles/m3_tests.dir/parsimon_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/parsimon_test.cc.o.d"
  "/root/repo/tests/pathdecomp_test.cc" "tests/CMakeFiles/m3_tests.dir/pathdecomp_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/pathdecomp_test.cc.o.d"
  "/root/repo/tests/pktsim_test.cc" "tests/CMakeFiles/m3_tests.dir/pktsim_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/pktsim_test.cc.o.d"
  "/root/repo/tests/priority_test.cc" "tests/CMakeFiles/m3_tests.dir/priority_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/priority_test.cc.o.d"
  "/root/repo/tests/topo_test.cc" "tests/CMakeFiles/m3_tests.dir/topo_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/topo_test.cc.o.d"
  "/root/repo/tests/trace_io_test.cc" "tests/CMakeFiles/m3_tests.dir/trace_io_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/trace_io_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/m3_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/m3_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/m3_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m3_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_pathdecomp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_parsimon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_pktsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
