# Empty dependencies file for m3_parsimon.
# This may be replaced when dependencies are built.
