file(REMOVE_RECURSE
  "libm3_parsimon.a"
)
