file(REMOVE_RECURSE
  "CMakeFiles/m3_parsimon.dir/parsimon/parsimon.cc.o"
  "CMakeFiles/m3_parsimon.dir/parsimon/parsimon.cc.o.d"
  "libm3_parsimon.a"
  "libm3_parsimon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_parsimon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
