file(REMOVE_RECURSE
  "libm3_util.a"
)
