file(REMOVE_RECURSE
  "CMakeFiles/m3_util.dir/util/cdf.cc.o"
  "CMakeFiles/m3_util.dir/util/cdf.cc.o.d"
  "CMakeFiles/m3_util.dir/util/rng.cc.o"
  "CMakeFiles/m3_util.dir/util/rng.cc.o.d"
  "CMakeFiles/m3_util.dir/util/stats.cc.o"
  "CMakeFiles/m3_util.dir/util/stats.cc.o.d"
  "libm3_util.a"
  "libm3_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
