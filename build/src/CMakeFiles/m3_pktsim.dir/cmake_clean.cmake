file(REMOVE_RECURSE
  "CMakeFiles/m3_pktsim.dir/pktsim/cc_dcqcn.cc.o"
  "CMakeFiles/m3_pktsim.dir/pktsim/cc_dcqcn.cc.o.d"
  "CMakeFiles/m3_pktsim.dir/pktsim/cc_dctcp.cc.o"
  "CMakeFiles/m3_pktsim.dir/pktsim/cc_dctcp.cc.o.d"
  "CMakeFiles/m3_pktsim.dir/pktsim/cc_hpcc.cc.o"
  "CMakeFiles/m3_pktsim.dir/pktsim/cc_hpcc.cc.o.d"
  "CMakeFiles/m3_pktsim.dir/pktsim/cc_timely.cc.o"
  "CMakeFiles/m3_pktsim.dir/pktsim/cc_timely.cc.o.d"
  "CMakeFiles/m3_pktsim.dir/pktsim/config.cc.o"
  "CMakeFiles/m3_pktsim.dir/pktsim/config.cc.o.d"
  "CMakeFiles/m3_pktsim.dir/pktsim/event_queue.cc.o"
  "CMakeFiles/m3_pktsim.dir/pktsim/event_queue.cc.o.d"
  "CMakeFiles/m3_pktsim.dir/pktsim/host.cc.o"
  "CMakeFiles/m3_pktsim.dir/pktsim/host.cc.o.d"
  "CMakeFiles/m3_pktsim.dir/pktsim/simulator.cc.o"
  "CMakeFiles/m3_pktsim.dir/pktsim/simulator.cc.o.d"
  "CMakeFiles/m3_pktsim.dir/pktsim/switch.cc.o"
  "CMakeFiles/m3_pktsim.dir/pktsim/switch.cc.o.d"
  "libm3_pktsim.a"
  "libm3_pktsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_pktsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
