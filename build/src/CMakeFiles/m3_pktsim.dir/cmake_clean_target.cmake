file(REMOVE_RECURSE
  "libm3_pktsim.a"
)
