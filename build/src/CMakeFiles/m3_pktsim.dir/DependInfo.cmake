
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pktsim/cc_dcqcn.cc" "src/CMakeFiles/m3_pktsim.dir/pktsim/cc_dcqcn.cc.o" "gcc" "src/CMakeFiles/m3_pktsim.dir/pktsim/cc_dcqcn.cc.o.d"
  "/root/repo/src/pktsim/cc_dctcp.cc" "src/CMakeFiles/m3_pktsim.dir/pktsim/cc_dctcp.cc.o" "gcc" "src/CMakeFiles/m3_pktsim.dir/pktsim/cc_dctcp.cc.o.d"
  "/root/repo/src/pktsim/cc_hpcc.cc" "src/CMakeFiles/m3_pktsim.dir/pktsim/cc_hpcc.cc.o" "gcc" "src/CMakeFiles/m3_pktsim.dir/pktsim/cc_hpcc.cc.o.d"
  "/root/repo/src/pktsim/cc_timely.cc" "src/CMakeFiles/m3_pktsim.dir/pktsim/cc_timely.cc.o" "gcc" "src/CMakeFiles/m3_pktsim.dir/pktsim/cc_timely.cc.o.d"
  "/root/repo/src/pktsim/config.cc" "src/CMakeFiles/m3_pktsim.dir/pktsim/config.cc.o" "gcc" "src/CMakeFiles/m3_pktsim.dir/pktsim/config.cc.o.d"
  "/root/repo/src/pktsim/event_queue.cc" "src/CMakeFiles/m3_pktsim.dir/pktsim/event_queue.cc.o" "gcc" "src/CMakeFiles/m3_pktsim.dir/pktsim/event_queue.cc.o.d"
  "/root/repo/src/pktsim/host.cc" "src/CMakeFiles/m3_pktsim.dir/pktsim/host.cc.o" "gcc" "src/CMakeFiles/m3_pktsim.dir/pktsim/host.cc.o.d"
  "/root/repo/src/pktsim/simulator.cc" "src/CMakeFiles/m3_pktsim.dir/pktsim/simulator.cc.o" "gcc" "src/CMakeFiles/m3_pktsim.dir/pktsim/simulator.cc.o.d"
  "/root/repo/src/pktsim/switch.cc" "src/CMakeFiles/m3_pktsim.dir/pktsim/switch.cc.o" "gcc" "src/CMakeFiles/m3_pktsim.dir/pktsim/switch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m3_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
