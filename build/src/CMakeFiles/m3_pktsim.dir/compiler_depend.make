# Empty compiler generated dependencies file for m3_pktsim.
# This may be replaced when dependencies are built.
