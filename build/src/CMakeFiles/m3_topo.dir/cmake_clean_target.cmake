file(REMOVE_RECURSE
  "libm3_topo.a"
)
