file(REMOVE_RECURSE
  "CMakeFiles/m3_topo.dir/topo/fat_tree.cc.o"
  "CMakeFiles/m3_topo.dir/topo/fat_tree.cc.o.d"
  "CMakeFiles/m3_topo.dir/topo/parking_lot.cc.o"
  "CMakeFiles/m3_topo.dir/topo/parking_lot.cc.o.d"
  "CMakeFiles/m3_topo.dir/topo/routing.cc.o"
  "CMakeFiles/m3_topo.dir/topo/routing.cc.o.d"
  "CMakeFiles/m3_topo.dir/topo/topology.cc.o"
  "CMakeFiles/m3_topo.dir/topo/topology.cc.o.d"
  "libm3_topo.a"
  "libm3_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
