# Empty dependencies file for m3_topo.
# This may be replaced when dependencies are built.
