file(REMOVE_RECURSE
  "CMakeFiles/m3_core.dir/core/aggregate.cc.o"
  "CMakeFiles/m3_core.dir/core/aggregate.cc.o.d"
  "CMakeFiles/m3_core.dir/core/dataset.cc.o"
  "CMakeFiles/m3_core.dir/core/dataset.cc.o.d"
  "CMakeFiles/m3_core.dir/core/estimator.cc.o"
  "CMakeFiles/m3_core.dir/core/estimator.cc.o.d"
  "CMakeFiles/m3_core.dir/core/feature_map.cc.o"
  "CMakeFiles/m3_core.dir/core/feature_map.cc.o.d"
  "CMakeFiles/m3_core.dir/core/model.cc.o"
  "CMakeFiles/m3_core.dir/core/model.cc.o.d"
  "CMakeFiles/m3_core.dir/core/net_config.cc.o"
  "CMakeFiles/m3_core.dir/core/net_config.cc.o.d"
  "CMakeFiles/m3_core.dir/core/scenario.cc.o"
  "CMakeFiles/m3_core.dir/core/scenario.cc.o.d"
  "CMakeFiles/m3_core.dir/core/trainer.cc.o"
  "CMakeFiles/m3_core.dir/core/trainer.cc.o.d"
  "libm3_core.a"
  "libm3_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
