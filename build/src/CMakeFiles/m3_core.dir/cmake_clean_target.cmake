file(REMOVE_RECURSE
  "libm3_core.a"
)
