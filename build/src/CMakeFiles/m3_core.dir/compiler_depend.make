# Empty compiler generated dependencies file for m3_core.
# This may be replaced when dependencies are built.
