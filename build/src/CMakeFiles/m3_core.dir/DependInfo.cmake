
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cc" "src/CMakeFiles/m3_core.dir/core/aggregate.cc.o" "gcc" "src/CMakeFiles/m3_core.dir/core/aggregate.cc.o.d"
  "/root/repo/src/core/dataset.cc" "src/CMakeFiles/m3_core.dir/core/dataset.cc.o" "gcc" "src/CMakeFiles/m3_core.dir/core/dataset.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/CMakeFiles/m3_core.dir/core/estimator.cc.o" "gcc" "src/CMakeFiles/m3_core.dir/core/estimator.cc.o.d"
  "/root/repo/src/core/feature_map.cc" "src/CMakeFiles/m3_core.dir/core/feature_map.cc.o" "gcc" "src/CMakeFiles/m3_core.dir/core/feature_map.cc.o.d"
  "/root/repo/src/core/model.cc" "src/CMakeFiles/m3_core.dir/core/model.cc.o" "gcc" "src/CMakeFiles/m3_core.dir/core/model.cc.o.d"
  "/root/repo/src/core/net_config.cc" "src/CMakeFiles/m3_core.dir/core/net_config.cc.o" "gcc" "src/CMakeFiles/m3_core.dir/core/net_config.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/CMakeFiles/m3_core.dir/core/scenario.cc.o" "gcc" "src/CMakeFiles/m3_core.dir/core/scenario.cc.o.d"
  "/root/repo/src/core/trainer.cc" "src/CMakeFiles/m3_core.dir/core/trainer.cc.o" "gcc" "src/CMakeFiles/m3_core.dir/core/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m3_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_flowsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_pktsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_pathdecomp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_parsimon.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/m3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
