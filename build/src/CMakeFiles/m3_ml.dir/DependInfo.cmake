
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/autograd.cc" "src/CMakeFiles/m3_ml.dir/ml/autograd.cc.o" "gcc" "src/CMakeFiles/m3_ml.dir/ml/autograd.cc.o.d"
  "/root/repo/src/ml/checkpoint.cc" "src/CMakeFiles/m3_ml.dir/ml/checkpoint.cc.o" "gcc" "src/CMakeFiles/m3_ml.dir/ml/checkpoint.cc.o.d"
  "/root/repo/src/ml/layers.cc" "src/CMakeFiles/m3_ml.dir/ml/layers.cc.o" "gcc" "src/CMakeFiles/m3_ml.dir/ml/layers.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/CMakeFiles/m3_ml.dir/ml/optimizer.cc.o" "gcc" "src/CMakeFiles/m3_ml.dir/ml/optimizer.cc.o.d"
  "/root/repo/src/ml/tensor.cc" "src/CMakeFiles/m3_ml.dir/ml/tensor.cc.o" "gcc" "src/CMakeFiles/m3_ml.dir/ml/tensor.cc.o.d"
  "/root/repo/src/ml/transformer.cc" "src/CMakeFiles/m3_ml.dir/ml/transformer.cc.o" "gcc" "src/CMakeFiles/m3_ml.dir/ml/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
