# Empty compiler generated dependencies file for m3_ml.
# This may be replaced when dependencies are built.
