file(REMOVE_RECURSE
  "CMakeFiles/m3_ml.dir/ml/autograd.cc.o"
  "CMakeFiles/m3_ml.dir/ml/autograd.cc.o.d"
  "CMakeFiles/m3_ml.dir/ml/checkpoint.cc.o"
  "CMakeFiles/m3_ml.dir/ml/checkpoint.cc.o.d"
  "CMakeFiles/m3_ml.dir/ml/layers.cc.o"
  "CMakeFiles/m3_ml.dir/ml/layers.cc.o.d"
  "CMakeFiles/m3_ml.dir/ml/optimizer.cc.o"
  "CMakeFiles/m3_ml.dir/ml/optimizer.cc.o.d"
  "CMakeFiles/m3_ml.dir/ml/tensor.cc.o"
  "CMakeFiles/m3_ml.dir/ml/tensor.cc.o.d"
  "CMakeFiles/m3_ml.dir/ml/transformer.cc.o"
  "CMakeFiles/m3_ml.dir/ml/transformer.cc.o.d"
  "libm3_ml.a"
  "libm3_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
