file(REMOVE_RECURSE
  "libm3_ml.a"
)
