file(REMOVE_RECURSE
  "CMakeFiles/m3_workload.dir/workload/arrivals.cc.o"
  "CMakeFiles/m3_workload.dir/workload/arrivals.cc.o.d"
  "CMakeFiles/m3_workload.dir/workload/generator.cc.o"
  "CMakeFiles/m3_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/m3_workload.dir/workload/size_dist.cc.o"
  "CMakeFiles/m3_workload.dir/workload/size_dist.cc.o.d"
  "CMakeFiles/m3_workload.dir/workload/trace_io.cc.o"
  "CMakeFiles/m3_workload.dir/workload/trace_io.cc.o.d"
  "CMakeFiles/m3_workload.dir/workload/traffic_matrix.cc.o"
  "CMakeFiles/m3_workload.dir/workload/traffic_matrix.cc.o.d"
  "libm3_workload.a"
  "libm3_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
