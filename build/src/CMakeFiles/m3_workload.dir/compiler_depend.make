# Empty compiler generated dependencies file for m3_workload.
# This may be replaced when dependencies are built.
