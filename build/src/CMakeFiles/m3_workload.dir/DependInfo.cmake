
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/arrivals.cc" "src/CMakeFiles/m3_workload.dir/workload/arrivals.cc.o" "gcc" "src/CMakeFiles/m3_workload.dir/workload/arrivals.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/m3_workload.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/m3_workload.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/size_dist.cc" "src/CMakeFiles/m3_workload.dir/workload/size_dist.cc.o" "gcc" "src/CMakeFiles/m3_workload.dir/workload/size_dist.cc.o.d"
  "/root/repo/src/workload/trace_io.cc" "src/CMakeFiles/m3_workload.dir/workload/trace_io.cc.o" "gcc" "src/CMakeFiles/m3_workload.dir/workload/trace_io.cc.o.d"
  "/root/repo/src/workload/traffic_matrix.cc" "src/CMakeFiles/m3_workload.dir/workload/traffic_matrix.cc.o" "gcc" "src/CMakeFiles/m3_workload.dir/workload/traffic_matrix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/m3_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
