file(REMOVE_RECURSE
  "libm3_workload.a"
)
