file(REMOVE_RECURSE
  "CMakeFiles/m3_pathdecomp.dir/pathdecomp/decompose.cc.o"
  "CMakeFiles/m3_pathdecomp.dir/pathdecomp/decompose.cc.o.d"
  "CMakeFiles/m3_pathdecomp.dir/pathdecomp/path_topology.cc.o"
  "CMakeFiles/m3_pathdecomp.dir/pathdecomp/path_topology.cc.o.d"
  "CMakeFiles/m3_pathdecomp.dir/pathdecomp/sampling.cc.o"
  "CMakeFiles/m3_pathdecomp.dir/pathdecomp/sampling.cc.o.d"
  "libm3_pathdecomp.a"
  "libm3_pathdecomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_pathdecomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
