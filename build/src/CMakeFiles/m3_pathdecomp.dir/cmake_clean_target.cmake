file(REMOVE_RECURSE
  "libm3_pathdecomp.a"
)
