# Empty dependencies file for m3_pathdecomp.
# This may be replaced when dependencies are built.
