file(REMOVE_RECURSE
  "CMakeFiles/m3_flowsim.dir/flowsim/flowsim.cc.o"
  "CMakeFiles/m3_flowsim.dir/flowsim/flowsim.cc.o.d"
  "libm3_flowsim.a"
  "libm3_flowsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_flowsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
