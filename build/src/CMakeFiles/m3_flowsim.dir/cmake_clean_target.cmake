file(REMOVE_RECURSE
  "libm3_flowsim.a"
)
