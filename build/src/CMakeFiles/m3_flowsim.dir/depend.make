# Empty dependencies file for m3_flowsim.
# This may be replaced when dependencies are built.
