file(REMOVE_RECURSE
  "CMakeFiles/m3_query.dir/m3_query.cc.o"
  "CMakeFiles/m3_query.dir/m3_query.cc.o.d"
  "m3_query"
  "m3_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m3_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
