# Empty compiler generated dependencies file for m3_query.
# This may be replaced when dependencies are built.
