# Empty compiler generated dependencies file for train_m3.
# This may be replaced when dependencies are built.
