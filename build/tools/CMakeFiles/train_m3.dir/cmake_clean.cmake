file(REMOVE_RECURSE
  "CMakeFiles/train_m3.dir/train_m3.cc.o"
  "CMakeFiles/train_m3.dir/train_m3.cc.o.d"
  "train_m3"
  "train_m3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_m3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
