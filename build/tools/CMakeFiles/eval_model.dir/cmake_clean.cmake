file(REMOVE_RECURSE
  "CMakeFiles/eval_model.dir/eval_model.cc.o"
  "CMakeFiles/eval_model.dir/eval_model.cc.o.d"
  "eval_model"
  "eval_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
