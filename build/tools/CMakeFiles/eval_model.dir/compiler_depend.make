# Empty compiler generated dependencies file for eval_model.
# This may be replaced when dependencies are built.
