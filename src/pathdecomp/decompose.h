// Path-level decomposition (§3.2): groups flows by their exact route and,
// for a given path, classifies every other flow sharing at least one link
// as background traffic with its entry/exit hop along the path.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "topo/topology.h"
#include "workload/flow.h"

namespace m3 {

/// A populated path: a full host-to-host route and the foreground flows
/// that traverse every one of its links (Eq. 1).
struct PathInfo {
  Route links;
  std::vector<FlowId> fg_flows;
};

/// A background segment on a specific path (Eq. 2): flow `flow` traverses
/// the path's links [entry_hop, exit_hop). A flow that intersects the path
/// non-contiguously (possible for ECMP siblings of the foreground flows)
/// contributes one segment per maximal contiguous run.
struct BgFlowOnPath {
  FlowId flow = 0;
  int entry_hop = 0;
  int exit_hop = 0;  // exclusive
};

class PathDecomposition {
 public:
  /// Indexes `flows` (which must carry valid paths in `topo`). Path order
  /// is deterministic (lexicographic by route).
  PathDecomposition(const Topology& topo, const std::vector<Flow>& flows);

  std::size_t num_paths() const { return paths_.size(); }
  const PathInfo& path(std::size_t i) const { return paths_[i]; }

  /// All background segments of path `i`, per Eq. 2, with their hop spans.
  std::vector<BgFlowOnPath> BackgroundFlows(std::size_t i) const;

  /// Sampling weights: number of foreground flows per path.
  std::vector<double> ForegroundWeights() const;

 private:
  const Topology& topo_;
  const std::vector<Flow>& flows_;
  std::vector<PathInfo> paths_;
  std::vector<std::vector<FlowId>> link_flows_;  // flows traversing each link
};

}  // namespace m3
