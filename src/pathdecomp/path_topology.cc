#include "pathdecomp/path_topology.h"

#include "util/fault.h"

namespace m3 {

PathScenario BuildPathScenario(const Topology& topo, const std::vector<Flow>& flows,
                               const PathDecomposition& decomp, std::size_t path_idx) {
  const PathInfo& info = decomp.path(path_idx);
  const int n = static_cast<int>(info.links.size());

  std::vector<Bpns> rates;
  std::vector<Ns> delays;
  rates.reserve(info.links.size());
  delays.reserve(info.links.size());
  for (LinkId l : info.links) {
    rates.push_back(topo.link(l).rate);
    delays.push_back(topo.link(l).delay);
  }

  PathScenario sc;
  sc.num_links = n;
  sc.lot = std::make_unique<ParkingLot>(rates, delays, /*hosts_at_ends=*/true);
  ParkingLot& lot = *sc.lot;
  const NodeId head = lot.switch_at(0);
  const NodeId tail = lot.switch_at(n);

  const Route fg_route = lot.RouteBetween(head, 0, tail, n);
  for (FlowId id : info.fg_flows) {
    const Flow& orig = flows[static_cast<std::size_t>(id)];
    Flow f;
    f.id = static_cast<FlowId>(sc.flows.size());
    f.src = head;
    f.dst = tail;
    f.size = orig.size;
    f.arrival = orig.arrival;
    f.path = fg_route;
    sc.flows.push_back(std::move(f));
    sc.is_fg.push_back(1);
    sc.orig_id.push_back(id);
    sc.entry_hop.push_back(0);
    sc.exit_hop.push_back(n);
  }

  for (const BgFlowOnPath& bg : decomp.BackgroundFlows(path_idx)) {
    const Flow& orig = flows[static_cast<std::size_t>(bg.flow)];
    // Access capacities: the flow's original source/destination capacity
    // (its first/last link rates), per §3.2.
    const Bpns src_rate = topo.link(orig.path.front()).rate;
    const Bpns dst_rate = topo.link(orig.path.back()).rate;
    const NodeId src =
        bg.entry_hop == 0
            ? head
            : lot.AttachHost(bg.entry_hop, src_rate,
                             static_cast<std::uint64_t>(orig.src));
    const NodeId dst =
        bg.exit_hop == n
            ? tail
            : lot.AttachHost(bg.exit_hop, dst_rate,
                             static_cast<std::uint64_t>(orig.dst));
    Flow f;
    f.id = static_cast<FlowId>(sc.flows.size());
    f.src = src;
    f.dst = dst;
    f.size = orig.size;
    f.arrival = orig.arrival;
    f.path = lot.RouteBetween(src, bg.entry_hop, dst, bg.exit_hop);
    sc.flows.push_back(std::move(f));
    sc.is_fg.push_back(0);
    sc.orig_id.push_back(bg.flow);
    sc.entry_hop.push_back(bg.entry_hop);
    sc.exit_hop.push_back(bg.exit_hop);
  }
  return sc;
}

std::vector<FlowResult> RunPathFlowSim(const PathScenario& scenario) {
  M3_FAULT_POINT("estimator/path_flowsim");
  return RunFlowSim(scenario.lot->topo(), scenario.flows);
}

std::vector<FlowResult> RunPathPktSim(const PathScenario& scenario, const NetConfig& cfg) {
  return RunPacketSim(scenario.lot->topo(), scenario.flows, cfg);
}

std::vector<SizedSlowdown> ForegroundSlowdowns(const PathScenario& scenario,
                                               const std::vector<FlowResult>& results) {
  std::vector<SizedSlowdown> out;
  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    if (scenario.is_fg[i]) out.push_back({results[i].size, results[i].slowdown});
  }
  return out;
}

}  // namespace m3
