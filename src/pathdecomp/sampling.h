// Weighted path sampling (§3.2): paths are sampled with replacement, with
// probability proportional to their foreground flow count, so the union of
// sampled foreground flows is a flow-weighted sample of the network.
#pragma once

#include <cstddef>
#include <vector>

#include "pathdecomp/decompose.h"
#include "util/rng.h"

namespace m3 {

/// Samples `k` path indices (with replacement) proportional to foreground
/// flow count.
std::vector<std::size_t> SamplePaths(const PathDecomposition& decomp, int k, Rng& rng);

/// Summary statistics of a path sample, matching Fig. 2(b)/(d).
struct PathSampleStats {
  std::vector<int> hop_counts;  // per sampled path
  std::vector<int> fg_counts;
  std::vector<int> bg_counts;
};

PathSampleStats ComputePathSampleStats(const PathDecomposition& decomp,
                                       const std::vector<std::size_t>& sample);

}  // namespace m3
