#include "pathdecomp/sampling.h"

namespace m3 {

std::vector<std::size_t> SamplePaths(const PathDecomposition& decomp, int k, Rng& rng) {
  const std::vector<double> weights = decomp.ForegroundWeights();
  std::vector<std::size_t> sample;
  sample.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) sample.push_back(rng.WeightedIndex(weights));
  return sample;
}

PathSampleStats ComputePathSampleStats(const PathDecomposition& decomp,
                                       const std::vector<std::size_t>& sample) {
  PathSampleStats stats;
  stats.hop_counts.reserve(sample.size());
  stats.fg_counts.reserve(sample.size());
  stats.bg_counts.reserve(sample.size());
  for (std::size_t idx : sample) {
    const PathInfo& p = decomp.path(idx);
    stats.hop_counts.push_back(static_cast<int>(p.links.size()));
    stats.fg_counts.push_back(static_cast<int>(p.fg_flows.size()));
    stats.bg_counts.push_back(static_cast<int>(decomp.BackgroundFlows(idx).size()));
  }
  return stats;
}

}  // namespace m3
