// Materializes a path-level simulation (§3.2): the sampled path becomes a
// parking-lot topology whose first/last chain nodes are the original
// source/destination hosts; background flows enter and leave through
// synthetic access links sized to their original endpoint capacities.
#pragma once

#include <memory>
#include <vector>

#include "flowsim/flowsim.h"
#include "pathdecomp/decompose.h"
#include "pktsim/simulator.h"
#include "topo/parking_lot.h"
#include "workload/flow.h"

namespace m3 {

struct PathScenario {
  std::unique_ptr<ParkingLot> lot;
  std::vector<Flow> flows;        // local ids 0..N-1, routed in lot->topo()
  std::vector<char> is_fg;        // parallel to flows
  std::vector<FlowId> orig_id;    // original flow id, or -1 for synthetic
  // Hop span of each flow on the chain: [entry, exit) over path links.
  std::vector<int> entry_hop;
  std::vector<int> exit_hop;
  int num_links = 0;

  std::size_t num_fg() const {
    std::size_t n = 0;
    for (char c : is_fg) n += (c != 0);
    return n;
  }
};

/// Builds the path-level scenario for `decomp.path(path_idx)` from the full
/// topology and flow set.
PathScenario BuildPathScenario(const Topology& topo, const std::vector<Flow>& flows,
                               const PathDecomposition& decomp, std::size_t path_idx);

/// Runs flowSim on a path scenario (all flows).
std::vector<FlowResult> RunPathFlowSim(const PathScenario& scenario);

/// Runs the packet simulator on a path scenario; this is "ns-3-path" (§2.1).
std::vector<FlowResult> RunPathPktSim(const PathScenario& scenario, const NetConfig& cfg);

/// Extracts (size, slowdown) pairs of the scenario's foreground flows from
/// a result vector aligned with scenario.flows.
struct SizedSlowdown {
  Bytes size;
  double slowdown;
};
std::vector<SizedSlowdown> ForegroundSlowdowns(const PathScenario& scenario,
                                               const std::vector<FlowResult>& results);

}  // namespace m3
