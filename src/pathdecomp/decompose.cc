#include "pathdecomp/decompose.h"

#include <algorithm>
#include <stdexcept>

namespace m3 {

PathDecomposition::PathDecomposition(const Topology& topo, const std::vector<Flow>& flows)
    : topo_(topo), flows_(flows), link_flows_(topo.num_links()) {
  std::map<Route, std::size_t> index;
  for (const Flow& f : flows_) {
    for (LinkId l : f.path) link_flows_[static_cast<std::size_t>(l)].push_back(f.id);
    auto [it, inserted] = index.emplace(f.path, paths_.size());
    if (inserted) {
      paths_.push_back(PathInfo{f.path, {}});
    }
    paths_[it->second].fg_flows.push_back(f.id);
  }
}

std::vector<BgFlowOnPath> PathDecomposition::BackgroundFlows(std::size_t i) const {
  const PathInfo& p = paths_[i];
  const int n = static_cast<int>(p.links.size());
  if (n > 32) throw std::invalid_argument("BackgroundFlows: path too long (> 32 hops)");

  // Bitmask of path hops each candidate flow touches. Flow ids are dense
  // (0..N-1) per the generator contract.
  std::vector<std::uint32_t> hops(flows_.size(), 0);
  for (int hop = 0; hop < n; ++hop) {
    for (FlowId f : link_flows_[static_cast<std::size_t>(p.links[static_cast<std::size_t>(hop)])]) {
      hops[static_cast<std::size_t>(f)] |= (1u << hop);
    }
  }

  const std::uint32_t full = n == 32 ? ~0u : ((1u << n) - 1u);
  std::vector<BgFlowOnPath> bg;
  for (std::size_t fi = 0; fi < flows_.size(); ++fi) {
    const std::uint32_t mask = hops[fi];
    if (mask == 0) continue;     // does not intersect the path
    if (mask == full) continue;  // foreground (traverses all links)
    // ECMP siblings of the foreground flows can intersect the path
    // non-contiguously (e.g. share both host/ToR ends but take a different
    // spine). Each maximal contiguous run becomes its own background
    // segment: the full flow traverses each run, so each carries the
    // flow's size and arrival.
    int hop = 0;
    while (hop < n) {
      if (!(mask & (1u << hop))) {
        ++hop;
        continue;
      }
      int end = hop;
      while (end < n && (mask & (1u << end))) ++end;
      bg.push_back(BgFlowOnPath{static_cast<FlowId>(fi), hop, end});
      hop = end;
    }
  }
  return bg;
}

std::vector<double> PathDecomposition::ForegroundWeights() const {
  std::vector<double> w;
  w.reserve(paths_.size());
  for (const PathInfo& p : paths_) w.push_back(static_cast<double>(p.fg_flows.size()));
  return w;
}

}  // namespace m3
