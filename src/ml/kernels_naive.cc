// Naive reference GEMM kernels: the seed revision's exact loop nests,
// kept in a separate translation unit compiled with the project's default
// flags (no M3_KERNEL_NATIVE treatment) so that parity tests and
// bench/micro_ml_speed.cc compare the tiled kernels against a faithful
// in-process reproduction of the seed's serial compute path.
#include "ml/kernels.h"

#include <cmath>
#include <cstddef>

namespace m3::ml::kernels {

void GemmAccumNaive(const float* a, const float* b, float* c, int m, int k, int n) {
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0f) continue;
      const float* brow = b + static_cast<std::size_t>(p) * n;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void GemmAccumNTNaive(const float* dc, const float* b, float* da, int m, int n, int k) {
  // Seed loop: for each dC element, scatter into dA walking B column-wise.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const float g = dc[static_cast<std::size_t>(i) * n + j];
      if (g == 0.0f) continue;
      float* darow = da + static_cast<std::size_t>(i) * k;
      for (int p = 0; p < k; ++p) darow[p] += g * b[static_cast<std::size_t>(p) * n + j];
    }
  }
}

void GemmAccumTNNaive(const float* a, const float* dc, float* db, int m, int k, int n) {
  for (int p = 0; p < k; ++p) {
    for (int i = 0; i < m; ++i) {
      const float av = a[static_cast<std::size_t>(i) * k + p];
      if (av == 0.0f) continue;
      const float* grow = dc + static_cast<std::size_t>(i) * n;
      float* dbrow = db + static_cast<std::size_t>(p) * n;
      for (int j = 0; j < n; ++j) dbrow[j] += av * grow[j];
    }
  }
}

void AdamStepNaive(float* value, const float* grad, float* m, float* v, std::size_t size,
                   float lr, float beta1, float beta2, float eps, float bc1, float bc2) {
  for (std::size_t i = 0; i < size; ++i) {
    const float g = grad[i];
    m[i] = beta1 * m[i] + (1.0f - beta1) * g;
    v[i] = beta2 * v[i] + (1.0f - beta2) * g * g;
    const float mhat = m[i] / bc1;
    const float vhat = v[i] / bc2;
    value[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

double SumSquaresNaive(const float* x, std::size_t size) {
  double norm_sq = 0.0;
  for (std::size_t i = 0; i < size; ++i) {
    norm_sq += static_cast<double>(x[i]) * x[i];
  }
  return norm_sq;
}

}  // namespace m3::ml::kernels
