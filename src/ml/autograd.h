// Tape-based reverse-mode automatic differentiation over Tensor.
//
// A Graph is a single forward episode: operations execute eagerly and are
// recorded on a tape; Backward() walks the tape in reverse, accumulating
// gradients into each node and into the bound Parameters. Graphs are cheap
// to construct and are discarded after each step.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ml/tensor.h"

namespace m3::ml {

/// Handle to a node in a Graph.
struct Var {
  std::int32_t id = -1;
};

/// Activation fused into Graph::Linear.
enum class Act : std::uint8_t { kNone, kRelu, kGelu };

class Graph {
 public:
  Graph() = default;
  /// Returns every tape tensor to the thread-local TensorArena, so the
  /// next Graph built on this thread reuses the buffers instead of
  /// re-allocating them.
  ~Graph();
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  /// Pre-sizes the tape for a forward episode (avoids vector regrowth;
  /// call before the first op with an upper bound on the node count).
  void Reserve(std::size_t nodes) { nodes_.reserve(nodes); }

  /// Redirects parameter-gradient accumulation: when set, Backward()
  /// accumulates into sink(param) instead of param.grad. Used for
  /// per-thread gradient buffers in data-parallel training; the returned
  /// tensor must have the parameter's shape and outlive Backward().
  void set_param_grad_sink(std::function<Tensor&(Parameter&)> sink) {
    param_grad_sink_ = std::move(sink);
  }

  /// Leaf holding a constant (no gradient flows out of the graph). The
  /// lvalue form copies through the thread-local arena; the rvalue form
  /// adopts the tensor.
  Var Input(const Tensor& value);
  Var Input(Tensor&& value);

  /// Leaf bound to a trainable parameter; Backward() accumulates into
  /// param->grad. The parameter must outlive the graph.
  Var Param(Parameter* param);

  // ----- operations (shapes checked; throws std::invalid_argument) -----
  Var MatMul(Var a, Var b);             // [m,k] x [k,n] -> [m,n]
  Var MatMulNT(Var a, Var b);           // [m,k] x [n,k]^T -> [m,n]; no Transpose tape node
  /// Fused x*W + b with optional activation: one op instead of the
  /// MatMul -> Add(broadcast) -> Relu/Gelu chain (no intermediate value or
  /// gradient tensors; the backward feeds the activation gradient straight
  /// into the three GEMM/reduction accumulations).
  Var Linear(Var x, Var w, Var b, Act act = Act::kNone);
  Var Add(Var a, Var b);                // same shape, or b = [1,n] broadcast over rows
  Var Sub(Var a, Var b);                // same shape
  Var Mul(Var a, Var b);                // elementwise, same shape
  Var Scale(Var a, float s);
  Var Relu(Var a);
  Var Gelu(Var a);                      // SiLU-style approximation x*sigmoid(1.702x)
  Var Tanh(Var a);
  Var Softmax(Var a);                   // row-wise
  Var SoftmaxScaled(Var a, float scale);  // row-wise softmax(scale*a), fused
  Var Transpose(Var a);
  Var RmsNorm(Var x, Var gain);         // row-wise RMS norm; gain [1,n]
  Var ConcatCols(const std::vector<Var>& xs);  // all [m, *]
  Var SliceCols(Var a, int start, int len);
  Var SliceRows(Var a, int start, int len);  // contiguous row slice (memcpy)
  Var MeanRows(Var a);                  // [m,n] -> [1,n]
  Var L1Loss(Var pred, Var target, Var mask);  // -> [1,1]; mask in {0,1}
  Var MseLoss(Var pred, Var target, Var mask); // -> [1,1]

  const Tensor& value(Var v) const { return NodeValue(nodes_[static_cast<std::size_t>(v.id)]); }
  const Tensor& grad(Var v) const { return nodes_[static_cast<std::size_t>(v.id)].grad; }

  /// Seeds d(loss)=1 and back-propagates through the tape. `loss` must be
  /// a [1,1] node. May be called once per graph.
  void Backward(Var loss);

  std::size_t num_nodes() const { return nodes_.size(); }

 private:
  enum class Op : std::uint8_t {
    kInput, kParam, kMatMul, kMatMulNT, kLinear, kAdd, kAddBroadcast, kSub,
    kMul, kScale, kRelu, kGelu, kTanh, kSoftmax, kScaledSoftmax, kTranspose,
    kRmsNorm, kConcatCols, kSliceCols, kSliceRows, kMeanRows, kL1Loss,
    kMseLoss,
  };

  struct Node {
    Tensor val;                // owned value (empty for kParam: see `ref`)
    const Tensor* ref = nullptr;  // kParam aliases param->value instead of copying
    Tensor grad;  // allocated lazily in Backward (unused for kParam, whose
                  // gradient goes straight to the parameter / sink buffer)
    Tensor saved;  // extra forward state for fused backward passes:
                   // pre-activation for kLinear, per-row 1/rms for kRmsNorm
    Op op = Op::kInput;
    std::vector<std::int32_t> in;
    Parameter* param = nullptr;
    float scalar = 0.0f;  // Scale/softmax factor / slice start (reused)
    int aux = 0;          // slice length / Act of kLinear
  };

  static const Tensor& NodeValue(const Node& n) { return n.ref ? *n.ref : n.val; }

  Var Emit(Node node);
  /// Gradient buffer for the node: param nodes resolve to the parameter's
  /// grad (or the sink buffer), so GEMM backward accumulates there
  /// directly with no intermediate per-node tensor.
  Tensor& MutableGrad(std::int32_t id);
  void AccumulateGrad(std::int32_t id, const Tensor& t);
  Tensor& ParamGradTarget(Node& n) {
    return param_grad_sink_ ? param_grad_sink_(*n.param) : n.param->grad;
  }

  std::vector<Node> nodes_;
  std::function<Tensor&(Parameter&)> param_grad_sink_;
  bool backward_done_ = false;
};

}  // namespace m3::ml
