// Binary checkpoints: a versioned header followed by named parameter
// tensors in little-endian float32.
#pragma once

#include <string>
#include <vector>

#include "ml/tensor.h"

namespace m3::ml {

/// Writes all parameters (name, shape, data) to `path`. Throws on I/O error.
void SaveCheckpoint(const std::string& path, const std::vector<Parameter*>& params);

/// Loads a checkpoint into the given parameters. Parameters are matched by
/// name; every parameter must be present with a matching shape, otherwise
/// throws std::runtime_error. Adam state is reset.
void LoadCheckpoint(const std::string& path, const std::vector<Parameter*>& params);

/// True if `path` exists and carries the checkpoint magic.
bool IsCheckpointFile(const std::string& path);

}  // namespace m3::ml
