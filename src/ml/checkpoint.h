// Binary checkpoints: a versioned, checksummed container for named parameter
// tensors plus optional optimizer and trainer state.
//
// Format v2 (current):
//
//   header   : magic u32 | version u32 | payload_size u64 | crc32 u32
//   payload  : flags u32 | param section | [optimizer section] | [trainer section]
//
// The CRC32 covers the entire payload, so truncation or bit corruption at
// any offset is detected before any state is applied. Writes go to a
// temporary file in the target directory followed by rename(), so a crash
// mid-save never clobbers the previous good checkpoint. Version-1 files
// (params only, no checksum) remain loadable.
//
// All integers and floats are little-endian; tensors are row-major float32.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ml/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace m3::ml {

inline constexpr std::uint32_t kCheckpointVersionLatest = 2;

/// Thrown by every checkpoint failure path. Derives from std::runtime_error
/// (existing catch sites keep working) and carries a StatusCode so service
/// boundaries can classify without parsing messages: kNotFound (missing
/// file), kDataLoss (truncation / corruption / CRC), kInvalidArgument
/// (tensor names/shapes do not match the destination model, unsupported
/// version), kUnavailable (I/O failure while writing).
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(StatusCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  StatusCode code() const { return code_; }

 private:
  StatusCode code_;
};

/// Optional training state carried by a v2 checkpoint alongside the
/// parameter tensors. Each section is independently present.
struct CheckpointExtra {
  // --- optimizer section: Adam moments (per parameter) + step count ---
  bool has_optimizer = false;
  std::int64_t adam_step = 0;

  // --- trainer section: enough to make resume bitwise identical ---
  bool has_trainer = false;
  std::int32_t epochs_done = 0;      // epochs fully completed
  std::int64_t batch_offset = 0;     // samples consumed in the current epoch
                                     // (> 0 only for a mid-epoch save)
  double partial_epoch_loss = 0.0;   // loss accumulated before a mid-epoch save
  std::uint64_t partial_epoch_samples = 0;
  float lr = 0.0f;                   // learning rate after decays so far
  std::uint64_t split_seed = 0;      // seed of the train/val split shuffle
  RngState shuffle_rng{};            // epoch-shuffle RNG, captured at save time
};

/// What a load found and applied. `extra.has_*` report which sections were
/// present; for v1 files both are false and Adam state is zeroed.
struct CheckpointInfo {
  std::uint32_t version = 0;
  CheckpointExtra extra;
};

/// Writes all parameters (name, shape, data), and optionally Adam moments and
/// trainer state, to `path`. Parent directories are created as needed. The
/// write is atomic: data goes to a pid-suffixed `path + ".tmp.<pid>"`
/// sibling, is flushed and fsynced, then renamed over `path`, so an
/// interrupted save never leaves a partially written file at `path` and
/// concurrent savers cannot corrupt each other. Throws std::runtime_error
/// on I/O error.
void SaveCheckpoint(const std::string& path, const std::vector<Parameter*>& params,
                    const CheckpointExtra* extra = nullptr);

/// Loads a checkpoint into the given parameters. Parameters are matched by
/// name; every parameter must be present with a matching shape. The file is
/// fully parsed and validated (magic, version, CRC, every declared length
/// checked against the actual payload) *before* any parameter is touched, so
/// a corrupt file throws std::runtime_error and leaves `params` unchanged.
/// If the optimizer section is present, Adam moments are restored; otherwise
/// they are reset to zero. Gradients are always zeroed.
CheckpointInfo LoadCheckpoint(const std::string& path,
                              const std::vector<Parameter*>& params);

/// True if `path` exists and carries the checkpoint magic. Cheap; does not
/// validate the checksum (use LoadCheckpoint for full validation).
bool IsCheckpointFile(const std::string& path);

/// Shifts the rotation chain `path` -> `path.1` -> ... -> `path.(keep-1)`
/// (the oldest is dropped), then atomically writes a new checkpoint at
/// `path`. With keep <= 1 no history is retained. Combined with atomic
/// writes this guarantees that at every instant at most one file in the
/// chain is invalid, so recovery always has a good checkpoint to fall back
/// to.
void SaveCheckpointRotating(const std::string& path,
                            const std::vector<Parameter*>& params,
                            const CheckpointExtra* extra = nullptr, int keep = 3);

/// The rotation chain for `path`, newest first: {path, path.1, ...,
/// path.(keep-1)}.
std::vector<std::string> CheckpointRotationChain(const std::string& path, int keep);

struct RecoveredCheckpoint {
  std::string path;     // the file that actually loaded
  CheckpointInfo info;
};

/// Loads the newest checkpoint in the rotation chain of `path` that passes
/// full validation, skipping truncated/corrupt/missing files. Throws
/// std::runtime_error if no file in the chain is loadable.
RecoveredCheckpoint LoadNewestValidCheckpoint(const std::string& path,
                                              const std::vector<Parameter*>& params,
                                              int keep = 3);

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320). Exposed for tests that craft
/// checkpoint payloads by hand.
std::uint32_t Crc32(const void* data, std::size_t n);

}  // namespace m3::ml
