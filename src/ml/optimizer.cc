#include "ml/optimizer.h"

#include <cmath>

namespace m3::ml {

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {}

void Adam::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

void Adam::ScaleGrads(float factor) {
  for (Parameter* p : params_) {
    for (float& g : p->grad.vec()) g *= factor;
  }
}

void Adam::Step() {
  ++step_;
  if (opts_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (Parameter* p : params_) {
      for (float g : p->grad.vec()) norm_sq += static_cast<double>(g) * g;
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > opts_.grad_clip) {
      const float scale = static_cast<float>(opts_.grad_clip / norm);
      ScaleGrads(scale);
    }
  }

  const float bc1 = 1.0f - std::pow(opts_.beta1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(opts_.beta2, static_cast<float>(step_));
  for (Parameter* p : params_) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const float g = p->grad.vec()[i];
      float& m = p->adam_m.vec()[i];
      float& v = p->adam_v.vec()[i];
      m = opts_.beta1 * m + (1.0f - opts_.beta1) * g;
      v = opts_.beta2 * v + (1.0f - opts_.beta2) * g * g;
      const float mhat = m / bc1;
      const float vhat = v / bc2;
      p->value.vec()[i] -= opts_.lr * mhat / (std::sqrt(vhat) + opts_.eps);
    }
    p->ZeroGrad();
  }
}

}  // namespace m3::ml
