#include "ml/optimizer.h"

#include <cmath>

#include "ml/kernels.h"

namespace m3::ml {

Adam::Adam(std::vector<Parameter*> params, Options opts)
    : params_(std::move(params)), opts_(opts) {}

std::int64_t Adam::step() const { return step_; }

void Adam::set_step(std::int64_t step) { step_ = step; }

void Adam::ZeroGrad() {
  for (Parameter* p : params_) p->ZeroGrad();
}

void Adam::ScaleGrads(float factor) {
  for (Parameter* p : params_) {
    kernels::ScaleInPlace(p->grad.data(), factor, p->grad.size());
  }
}

void Adam::Step() {
  ++step_;
  const float bc1 = 1.0f - std::pow(opts_.beta1, static_cast<float>(step_));
  const float bc2 = 1.0f - std::pow(opts_.beta2, static_cast<float>(step_));

  if (kernels::GetKernelImpl() == kernels::KernelImpl::kNaive) {
    // Reference path: the seed's separate clip / step / zero passes.
    if (opts_.grad_clip > 0.0f) {
      double norm_sq = 0.0;
      for (Parameter* p : params_) {
        norm_sq += kernels::SumSquaresNaive(p->grad.data(), p->grad.size());
      }
      const double norm = std::sqrt(norm_sq);
      if (norm > opts_.grad_clip) {
        ScaleGrads(static_cast<float>(opts_.grad_clip / norm));
      }
    }
    for (Parameter* p : params_) {
      kernels::AdamStepNaive(p->value.data(), p->grad.data(), p->adam_m.data(),
                             p->adam_v.data(), p->value.size(), opts_.lr, opts_.beta1,
                             opts_.beta2, opts_.eps, bc1, bc2);
      p->ZeroGrad();
    }
    return;
  }

  // Fused path: one norm pass, then one pass that clips, steps, and zeroes.
  float gscale = 1.0f;
  if (opts_.grad_clip > 0.0f) {
    double norm_sq = 0.0;
    for (Parameter* p : params_) {
      norm_sq += kernels::SumSquares(p->grad.data(), p->grad.size());
    }
    const double norm = std::sqrt(norm_sq);
    if (norm > opts_.grad_clip) gscale = static_cast<float>(opts_.grad_clip / norm);
  }
  for (Parameter* p : params_) {
    kernels::AdamStep(p->value.data(), p->grad.data(), p->adam_m.data(),
                      p->adam_v.data(), p->value.size(), opts_.lr, opts_.beta1,
                      opts_.beta2, opts_.eps, bc1, bc2, gscale);
  }
}

}  // namespace m3::ml
