// Compute kernels for the ML stack: the GEMM family in the three shapes
// autograd needs, fused bias/activation/normalization passes, and
// vectorizable elementwise loops. autograd.cc routes every hot loop
// through this layer.
//
// Four implementations sit behind a runtime dispatch (see DESIGN.md §11):
//   - naive:  the seed's original triple loops (kernels_naive.cc), the
//             parity reference and in-process "seed baseline" for
//             bench/micro_ml_speed.cc;
//   - tiled:  register/cache-blocked portable kernels (kernels.cc);
//   - avx2:   256-bit FMA microkernels (kernels_avx2.cc, -mavx2 -mfma);
//   - avx512: 512-bit microkernels (kernels_avx512.cc, -mavx512f).
// The active implementation is an atomic process-wide setting: it defaults
// to the best tier the CPU supports (CPUID-gated, util/cpu_features.h) and
// can be forced with the M3_KERNEL environment variable or SetKernelImpl.
// Forcing an unavailable tier falls back to the best available one, so
// M3_KERNEL=avx512 is always safe to set in CI.
//
// All kernels are deterministic: for a fixed implementation the floating
// point summation order depends only on the operand shapes, never on
// thread count or timing (the kernels themselves are single-threaded;
// callers parallelize across independent problems). Different
// implementations may round differently (blocking and FMA change the
// summation order/contraction), which is why parity tests compare with a
// shape-scaled tolerance.
#pragma once

#include <cstddef>

namespace m3::ml::kernels {

// ----- implementation selection -----

enum class KernelImpl : int {
  kNaive = 0,   // seed reference loops
  kTiled = 1,   // portable cache-blocked
  kAvx2 = 2,    // 256-bit FMA
  kAvx512 = 3,  // 512-bit
};

/// True when `impl` was compiled in and the executing CPU supports it.
bool KernelImplAvailable(KernelImpl impl);

/// Selects the active implementation (atomic; safe to call from any thread,
/// though switching mid-training changes which kernels later samples use).
/// An unavailable request falls back to the best available tier; returns
/// the implementation actually installed.
KernelImpl SetKernelImpl(KernelImpl impl);

/// The active implementation (resolved on first use from M3_KERNEL /
/// CPUID, see ResolveKernelImpl).
KernelImpl GetKernelImpl();

/// Lower-case name ("naive", "tiled", "avx2", "avx512").
const char* KernelImplName(KernelImpl impl);

/// Parses a name as accepted by M3_KERNEL. Returns false on garbage.
bool ParseKernelImpl(const char* name, KernelImpl* out);

/// Pure resolution rule used at startup: `env_value` (the M3_KERNEL
/// setting, may be null/empty) is parsed and clamped to availability;
/// null, empty, or unrecognized values resolve to the best available
/// tier (unrecognized additionally warns on stderr once per process).
KernelImpl ResolveKernelImpl(const char* env_value);

// ----- GEMM family (row-major, accumulate into the output) -----
//
// Shapes follow autograd's MatMul: A [m,k], B [k,n], C/dC [m,n]. The AVX
// tiers carry dedicated m=1 (GEMV) and small-m panel paths for the
// model's worst shapes (head_fc1/head_fc2/seq_in_proj).

/// C += A * B
void GemmAccum(const float* a, const float* b, float* c, int m, int k, int n);

/// dA += dC * B^T without materializing B^T (dC [m,n], B [k,n], dA [m,k]).
void GemmAccumNT(const float* dc, const float* b, float* da, int m, int n, int k);

/// dB += A^T * dC without materializing A^T (A [m,k], dC [m,n], dB [k,n]).
void GemmAccumTN(const float* a, const float* dc, float* db, int m, int k, int n);

// Naive reference versions (the seed's exact loop nests).
void GemmAccumNaive(const float* a, const float* b, float* c, int m, int k, int n);
void GemmAccumNTNaive(const float* dc, const float* b, float* da, int m, int n, int k);
void GemmAccumTNNaive(const float* a, const float* dc, float* db, int m, int k, int n);

// ----- fused / elementwise kernels -----

/// out[r,:] = x[r,:] + bias[0,:] (fused broadcast bias-add; out may alias x).
void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols);

/// out[r,:] = bias[0,:] for every row (GEMM-output initialization for the
/// fused Linear op: the bias lands first, then GemmAccum accumulates).
void FillRowsWithBias(float* out, const float* bias, int rows, int cols);

/// bg[0,:] += sum_r go[r,:] (bias gradient reduction).
void ColSumAccum(float* bg, const float* go, int rows, int cols);

/// y += alpha * x
void AxpyAccum(float* y, const float* x, float alpha, std::size_t size);

/// dst += src; src = 0 (single pass; gradient-slot reduction).
void AddAndZero(float* dst, float* src, std::size_t size);

/// dst[i] = alpha * (srcs[0][i] + srcs[1][i] + ...); srcs zeroed. One pass
/// over memory instead of nsrcs+1 passes (dst is overwritten, not read, and
/// the minibatch 1/n scaling rides along for free). The per-element addition
/// order is the srcs order, so the result is independent of thread count
/// (and the vectorized tiers are bitwise identical to scalar: lanes are
/// independent elements).
void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha);

/// x *= alpha
void ScaleInPlace(float* x, float alpha, std::size_t size);

/// sum of x[i]^2 accumulated in double (gradient-norm clipping).
double SumSquares(const float* x, std::size_t size);

/// One fused Adam update over a parameter block: given bias-correction
/// terms bc1 = 1-beta1^t and bc2 = 1-beta2^t, reads each gradient as
/// grad[i] * gscale (global-norm clip factor, 1 when not clipping),
/// updates m/v in place, applies the step to `value`, and zeroes the
/// gradient — one pass instead of clip-scale + step + zero.
void AdamStep(float* value, float* grad, float* m, float* v, std::size_t size,
              float lr, float beta1, float beta2, float eps, float bc1, float bc2,
              float gscale);

// Naive reference versions of the optimizer loops (seed's scalar code),
// used when the naive implementation is active so the bench baseline
// matches the seed end to end.
void AdamStepNaive(float* value, const float* grad, float* m, float* v, std::size_t size,
                   float lr, float beta1, float beta2, float eps, float bc1, float bc2);
double SumSquaresNaive(const float* x, std::size_t size);

/// dst = max(src, 0); dst may alias src.
void ReluForward(float* dst, const float* src, std::size_t size);

/// ga += go where x > 0.
void ReluBackwardAccum(float* ga, const float* go, const float* x, std::size_t size);

/// dst = go where x > 0, else 0 (overwrite form for the fused Linear
/// backward, which feeds the result straight into the GEMM backward).
void ReluBackwardInto(float* dst, const float* go, const float* x, std::size_t size);

/// dst = src * sigmoid(1.702 * src) (SiLU-style GELU); dst may alias src.
void GeluForward(float* dst, const float* src, std::size_t size);

/// ga += go * d/dx[x * sigmoid(1.702 x)].
void GeluBackwardAccum(float* ga, const float* go, const float* x, std::size_t size);

/// dst = go * d/dx[x * sigmoid(1.702 x)] (overwrite form, see ReluBackwardInto).
void GeluBackwardInto(float* dst, const float* go, const float* x, std::size_t size);

/// Row-wise softmax in place.
void SoftmaxRows(float* data, int rows, int cols);

/// Row-wise softmax(scale * x) in place — the attention Scale+Softmax
/// chain as one pass (max, exp, normalize; the scale folds into the
/// exponent instead of materializing a scaled tensor on the tape).
void SoftmaxScaledRows(float* data, int rows, int cols, float scale);

/// ga += softmax backward given output y and upstream go (row-wise).
void SoftmaxBackwardAccum(float* ga, const float* go, const float* y, int rows, int cols);

/// ga += scale * (softmax backward) — backward of SoftmaxScaledRows.
void SoftmaxScaledBackwardAccum(float* ga, const float* go, const float* y, int rows,
                                int cols, float scale);

/// Row-wise RMS norm: out[r,:] = gain[0,:] * x[r,:] * inv_r[r] with
/// inv_r[r] = 1/sqrt(mean(x[r,:]^2) + eps), saved to `inv_r` ([rows]) for
/// the backward pass (one fused pass instead of the old scalar loops).
void RmsNormForward(float* out, float* inv_r, const float* x, const float* gain,
                    int rows, int cols, float eps);

/// Backward of RmsNormForward using the cached inv_r:
///   gx[r,j]    += go[r,j]*gain[j]*inv_r[r] - x[r,j] * s_r * inv_r[r]^3 / cols
///   ggain[j]   += go[r,j]*x[r,j]*inv_r[r]
/// with s_r = sum_j go[r,j]*gain[j]*x[r,j].
void RmsNormBackwardAccum(float* gx, float* ggain, const float* go, const float* x,
                          const float* gain, const float* inv_r, int rows, int cols);

}  // namespace m3::ml::kernels
