// Compute kernels for the ML stack: cache-blocked row-major GEMM in the
// three shapes autograd needs, fused bias-add, and vectorizable
// elementwise loops. autograd.cc routes every hot loop through this layer.
//
// Two implementations are provided behind a runtime switch:
//   - tiled:  register/cache-blocked kernels (kernels.cc, compiled with
//             aggressive optimization flags when M3_KERNEL_NATIVE is on);
//   - naive:  the seed's original triple loops (kernels_naive.cc, compiled
//             with the project's default flags).
// The naive path is kept as the parity reference for tests and as the
// in-process "seed serial baseline" for bench/micro_ml_speed.cc, so the
// speedup measurement does not depend on checking out an old revision.
//
// All kernels are deterministic: for a fixed implementation the floating
// point summation order depends only on the operand shapes, never on
// thread count or timing (the kernels themselves are single-threaded;
// callers parallelize across independent problems).
#pragma once

#include <cstddef>

namespace m3::ml::kernels {

/// Selects the tiled (default) or naive reference implementation for the
/// dispatching kernels below. Not thread-safe; flip only while no kernels
/// are in flight (bench/test setup code).
void SetUseTiled(bool use_tiled);
bool UseTiled();

// ----- GEMM family (row-major, accumulate into the output) -----
//
// Shapes follow autograd's MatMul: A [m,k], B [k,n], C/dC [m,n].

/// C += A * B
void GemmAccum(const float* a, const float* b, float* c, int m, int k, int n);

/// dA += dC * B^T without materializing B^T (dC [m,n], B [k,n], dA [m,k]).
void GemmAccumNT(const float* dc, const float* b, float* da, int m, int n, int k);

/// dB += A^T * dC without materializing A^T (A [m,k], dC [m,n], dB [k,n]).
void GemmAccumTN(const float* a, const float* dc, float* db, int m, int k, int n);

// Naive reference versions (the seed's exact loop nests).
void GemmAccumNaive(const float* a, const float* b, float* c, int m, int k, int n);
void GemmAccumNTNaive(const float* dc, const float* b, float* da, int m, int n, int k);
void GemmAccumTNNaive(const float* a, const float* dc, float* db, int m, int k, int n);

// ----- fused / elementwise kernels -----

/// out[r,:] = x[r,:] + bias[0,:] (fused broadcast bias-add; out may alias x).
void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols);

/// bg[0,:] += sum_r go[r,:] (bias gradient reduction).
void ColSumAccum(float* bg, const float* go, int rows, int cols);

/// y += alpha * x
void AxpyAccum(float* y, const float* x, float alpha, std::size_t size);

/// dst += src; src = 0 (single pass; gradient-slot reduction).
void AddAndZero(float* dst, float* src, std::size_t size);

/// dst[i] = alpha * (srcs[0][i] + srcs[1][i] + ...); srcs zeroed. One pass
/// over memory instead of nsrcs+1 passes (dst is overwritten, not read, and
/// the minibatch 1/n scaling rides along for free). The per-element addition
/// order is the srcs order, so the result is independent of thread count.
void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha);

/// x *= alpha
void ScaleInPlace(float* x, float alpha, std::size_t size);

/// sum of x[i]^2 accumulated in double (gradient-norm clipping).
double SumSquares(const float* x, std::size_t size);

/// One fused Adam update over a parameter block: given bias-correction
/// terms bc1 = 1-beta1^t and bc2 = 1-beta2^t, reads each gradient as
/// grad[i] * gscale (global-norm clip factor, 1 when not clipping),
/// updates m/v in place, applies the step to `value`, and zeroes the
/// gradient — one pass instead of clip-scale + step + zero.
void AdamStep(float* value, float* grad, float* m, float* v, std::size_t size,
              float lr, float beta1, float beta2, float eps, float bc1, float bc2,
              float gscale);

// Naive reference versions of the optimizer loops (seed's scalar code),
// dispatched by SetUseTiled like the GEMMs so the bench baseline matches
// the seed end to end.
void AdamStepNaive(float* value, const float* grad, float* m, float* v, std::size_t size,
                   float lr, float beta1, float beta2, float eps, float bc1, float bc2);
double SumSquaresNaive(const float* x, std::size_t size);

/// dst = max(src, 0); dst may alias src.
void ReluForward(float* dst, const float* src, std::size_t size);

/// ga += go where x > 0.
void ReluBackwardAccum(float* ga, const float* go, const float* x, std::size_t size);

/// dst = src * sigmoid(1.702 * src) (SiLU-style GELU); dst may alias src.
void GeluForward(float* dst, const float* src, std::size_t size);

/// ga += go * d/dx[x * sigmoid(1.702 x)].
void GeluBackwardAccum(float* ga, const float* go, const float* x, std::size_t size);

/// Row-wise softmax in place.
void SoftmaxRows(float* data, int rows, int cols);

/// ga += softmax backward given output y and upstream go (row-wise).
void SoftmaxBackwardAccum(float* ga, const float* go, const float* y, int rows, int cols);

}  // namespace m3::ml::kernels
