// Dispatch layer + tiled kernel implementations. This translation unit is
// compiled with aggressive optimization flags (see src/CMakeLists.txt,
// M3_KERNEL_NATIVE), so the loops below are written to autovectorize:
// contiguous unit-stride inner loops, restrict-qualified pointers, and
// register-resident accumulator tiles with compile-time extents. The
// hand-vectorized AVX2/AVX-512 tiers live in kernels_avx2.cc /
// kernels_avx512.cc behind the same dispatch.
#include "ml/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ml/kernels_impl.h"
#include "util/cpu_features.h"

#if defined(__GNUC__)
#define M3_RESTRICT __restrict__
#else
#define M3_RESTRICT
#endif

namespace m3::ml::kernels {

// ----------------------------------------------------------------------
// Implementation selection
// ----------------------------------------------------------------------
namespace {

// -1 = not yet resolved; otherwise a KernelImpl value. Resolution is a
// pure function of M3_KERNEL + CPUID, so a racing first use from several
// threads installs the same value.
std::atomic<int> g_impl{-1};

KernelImpl BestAvailableImpl() {
  if (KernelImplAvailable(KernelImpl::kAvx512)) return KernelImpl::kAvx512;
  if (KernelImplAvailable(KernelImpl::kAvx2)) return KernelImpl::kAvx2;
  return KernelImpl::kTiled;
}

}  // namespace

bool KernelImplAvailable(KernelImpl impl) {
  switch (impl) {
    case KernelImpl::kNaive:
    case KernelImpl::kTiled:
      return true;
    case KernelImpl::kAvx2:
      return avx2::Compiled() && CpuSupportsAvx2Fma();
    case KernelImpl::kAvx512:
      return avx512::Compiled() && CpuSupportsAvx512();
  }
  return false;
}

const char* KernelImplName(KernelImpl impl) {
  switch (impl) {
    case KernelImpl::kNaive: return "naive";
    case KernelImpl::kTiled: return "tiled";
    case KernelImpl::kAvx2: return "avx2";
    case KernelImpl::kAvx512: return "avx512";
  }
  return "?";
}

bool ParseKernelImpl(const char* name, KernelImpl* out) {
  if (name == nullptr || out == nullptr) return false;
  for (KernelImpl impl : {KernelImpl::kNaive, KernelImpl::kTiled, KernelImpl::kAvx2,
                          KernelImpl::kAvx512}) {
    if (std::strcmp(name, KernelImplName(impl)) == 0) {
      *out = impl;
      return true;
    }
  }
  return false;
}

KernelImpl ResolveKernelImpl(const char* env_value) {
  if (env_value == nullptr || env_value[0] == '\0') return BestAvailableImpl();
  KernelImpl requested;
  if (!ParseKernelImpl(env_value, &requested)) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "m3: unrecognized M3_KERNEL=\"%s\" (want naive|tiled|avx2|avx512); "
                   "using %s\n",
                   env_value, KernelImplName(BestAvailableImpl()));
    }
    return BestAvailableImpl();
  }
  if (!KernelImplAvailable(requested)) return BestAvailableImpl();
  return requested;
}

KernelImpl GetKernelImpl() {
  int v = g_impl.load(std::memory_order_acquire);
  if (v < 0) {
    const KernelImpl resolved = ResolveKernelImpl(std::getenv("M3_KERNEL"));
    v = static_cast<int>(resolved);
    int expected = -1;
    if (!g_impl.compare_exchange_strong(expected, v, std::memory_order_acq_rel)) {
      v = expected;  // someone else resolved first (same value unless they Set)
    }
  }
  return static_cast<KernelImpl>(v);
}

KernelImpl SetKernelImpl(KernelImpl impl) {
  const KernelImpl effective = KernelImplAvailable(impl) ? impl : BestAvailableImpl();
  g_impl.store(static_cast<int>(effective), std::memory_order_release);
  return effective;
}

// ----------------------------------------------------------------------
// Tiled GEMM family
// ----------------------------------------------------------------------
namespace tiled {
namespace {

// Micro-tile extents. kMr rows of C are updated at once so each loaded
// B-row segment is reused kMr times; kNc columns of C live in a local
// accumulator that stays in L1/registers across the whole k loop instead
// of being streamed through memory once per k step.
constexpr int kMr = 4;
constexpr int kNc = 64;

// C[i0..i0+ib, j0..j0+jb) += A[i0.., :] * B[:, j0..) with the C tile held
// in `acc` (fixed stride kNc so the compiler sees constant offsets).
inline void MicroKernel(const float* M3_RESTRICT a, const float* M3_RESTRICT b,
                        float* M3_RESTRICT c, int m, int k, int n, int i0, int ib,
                        int j0, int jb) {
  float acc[kMr * kNc];
  for (int r = 0; r < ib; ++r) {
    std::memcpy(acc + r * kNc, c + static_cast<std::size_t>(i0 + r) * n + j0,
                static_cast<std::size_t>(jb) * sizeof(float));
  }
  if (ib == kMr) {
    // Full-height tile: fixed row count lets the compiler keep all four
    // broadcast scalars live and fuse the four AXPYs into one pass over b.
    for (int p = 0; p < k; ++p) {
      const float* M3_RESTRICT bp = b + static_cast<std::size_t>(p) * n + j0;
      const float a0 = a[static_cast<std::size_t>(i0 + 0) * k + p];
      const float a1 = a[static_cast<std::size_t>(i0 + 1) * k + p];
      const float a2 = a[static_cast<std::size_t>(i0 + 2) * k + p];
      const float a3 = a[static_cast<std::size_t>(i0 + 3) * k + p];
      for (int j = 0; j < jb; ++j) {
        const float bv = bp[j];
        acc[0 * kNc + j] += a0 * bv;
        acc[1 * kNc + j] += a1 * bv;
        acc[2 * kNc + j] += a2 * bv;
        acc[3 * kNc + j] += a3 * bv;
      }
    }
  } else {
    for (int p = 0; p < k; ++p) {
      const float* M3_RESTRICT bp = b + static_cast<std::size_t>(p) * n + j0;
      for (int r = 0; r < ib; ++r) {
        const float av = a[static_cast<std::size_t>(i0 + r) * k + p];
        float* M3_RESTRICT accr = acc + r * kNc;
        for (int j = 0; j < jb; ++j) accr[j] += av * bp[j];
      }
    }
  }
  for (int r = 0; r < ib; ++r) {
    std::memcpy(c + static_cast<std::size_t>(i0 + r) * n + j0, acc + r * kNc,
                static_cast<std::size_t>(jb) * sizeof(float));
  }
  (void)m;
}

}  // namespace

void GemmAccum(const float* M3_RESTRICT a, const float* M3_RESTRICT b,
               float* M3_RESTRICT c, int m, int k, int n) {
  for (int j0 = 0; j0 < n; j0 += kNc) {
    const int jb = std::min(kNc, n - j0);
    for (int i0 = 0; i0 < m; i0 += kMr) {
      const int ib = std::min(kMr, m - i0);
      MicroKernel(a, b, c, m, k, n, i0, ib, j0, jb);
    }
  }
}

// dA[i,p] = dot(dC[i,:], B[p,:]) — both operands walked with unit stride
// (the seed's loop nest walked B column-wise with stride n). Four B rows
// are processed per pass so each loaded dC segment is reused, and eight
// independent accumulators per dot product keep the reduction vectorizable
// without reassociating a single serial sum.
void GemmAccumNT(const float* M3_RESTRICT dc, const float* M3_RESTRICT b,
                 float* M3_RESTRICT da, int m, int n, int k) {
  constexpr int kPr = 4;   // B rows (= dA columns) per pass
  constexpr int kLanes = 8;
  for (int i = 0; i < m; ++i) {
    const float* M3_RESTRICT gi = dc + static_cast<std::size_t>(i) * n;
    float* M3_RESTRICT dai = da + static_cast<std::size_t>(i) * k;
    int p0 = 0;
    for (; p0 + kPr <= k; p0 += kPr) {
      float lanes[kPr][kLanes] = {};
      int j = 0;
      for (; j + kLanes <= n; j += kLanes) {
        for (int r = 0; r < kPr; ++r) {
          const float* M3_RESTRICT bp = b + static_cast<std::size_t>(p0 + r) * n + j;
          const float* M3_RESTRICT gj = gi + j;
          for (int l = 0; l < kLanes; ++l) lanes[r][l] += gj[l] * bp[l];
        }
      }
      for (; j < n; ++j) {
        for (int r = 0; r < kPr; ++r) {
          lanes[r][0] += gi[j] * b[static_cast<std::size_t>(p0 + r) * n + j];
        }
      }
      for (int r = 0; r < kPr; ++r) {
        float s = 0.0f;
        for (int l = 0; l < kLanes; ++l) s += lanes[r][l];
        dai[p0 + r] += s;
      }
    }
    for (; p0 < k; ++p0) {
      const float* M3_RESTRICT bp = b + static_cast<std::size_t>(p0) * n;
      float lanes[kLanes] = {};
      int j = 0;
      for (; j + kLanes <= n; j += kLanes) {
        for (int l = 0; l < kLanes; ++l) lanes[l] += gi[j + l] * bp[j + l];
      }
      for (; j < n; ++j) lanes[0] += gi[j] * bp[j];
      float s = 0.0f;
      for (int l = 0; l < kLanes; ++l) s += lanes[l];
      dai[p0] += s;
    }
  }
}

// dB[p,:] += sum_i A[i,p] * dC[i,:] — same register-tile shape as the
// forward kernel with the roles of A and C swapped: a kMr-column strip of
// A drives rank-1 updates into a dB tile held in local accumulators.
void GemmAccumTN(const float* M3_RESTRICT a, const float* M3_RESTRICT dc,
                 float* M3_RESTRICT db, int m, int k, int n) {
  if (m <= 16) {
    // Short-m fast path (the common case here: m is a sequence length or
    // 1). dB is the large streamed operand; each of its rows is read and
    // written exactly once while all m dC rows stay in L1, and the tile
    // buffer round-trip above would only add copy traffic.
    for (int p = 0; p < k; ++p) {
      float* M3_RESTRICT dbrow = db + static_cast<std::size_t>(p) * n;
      for (int i = 0; i < m; ++i) {
        const float av = a[static_cast<std::size_t>(i) * k + p];
        const float* M3_RESTRICT gi = dc + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) dbrow[j] += av * gi[j];
      }
    }
    return;
  }
  for (int j0 = 0; j0 < n; j0 += kNc) {
    const int jb = std::min(kNc, n - j0);
    for (int p0 = 0; p0 < k; p0 += kMr) {
      const int pb = std::min(kMr, k - p0);
      float acc[kMr * kNc];
      for (int r = 0; r < pb; ++r) {
        std::memcpy(acc + r * kNc, db + static_cast<std::size_t>(p0 + r) * n + j0,
                    static_cast<std::size_t>(jb) * sizeof(float));
      }
      if (pb == kMr) {
        for (int i = 0; i < m; ++i) {
          const float* M3_RESTRICT gi = dc + static_cast<std::size_t>(i) * n + j0;
          const float* ap = a + static_cast<std::size_t>(i) * k + p0;
          const float a0 = ap[0], a1 = ap[1], a2 = ap[2], a3 = ap[3];
          for (int j = 0; j < jb; ++j) {
            const float gv = gi[j];
            acc[0 * kNc + j] += a0 * gv;
            acc[1 * kNc + j] += a1 * gv;
            acc[2 * kNc + j] += a2 * gv;
            acc[3 * kNc + j] += a3 * gv;
          }
        }
      } else {
        for (int i = 0; i < m; ++i) {
          const float* M3_RESTRICT gi = dc + static_cast<std::size_t>(i) * n + j0;
          const float* ap = a + static_cast<std::size_t>(i) * k + p0;
          for (int r = 0; r < pb; ++r) {
            const float av = ap[r];
            float* M3_RESTRICT accr = acc + r * kNc;
            for (int j = 0; j < jb; ++j) accr[j] += av * gi[j];
          }
        }
      }
      for (int r = 0; r < pb; ++r) {
        std::memcpy(db + static_cast<std::size_t>(p0 + r) * n + j0, acc + r * kNc,
                    static_cast<std::size_t>(jb) * sizeof(float));
      }
    }
  }
}

}  // namespace tiled

// ----------------------------------------------------------------------
// Scalar elementwise reference loops (autovectorized under the tiled TU's
// flags; the hand-vectorized versions live in the AVX TUs).
// ----------------------------------------------------------------------
namespace scalar {

void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* M3_RESTRICT orow = out + static_cast<std::size_t>(r) * cols;
    const float* M3_RESTRICT xrow = x + static_cast<std::size_t>(r) * cols;
    for (int j = 0; j < cols; ++j) orow[j] = xrow[j] + bias[j];
  }
}

void ColSumAccum(float* bg, const float* go, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* M3_RESTRICT grow = go + static_cast<std::size_t>(r) * cols;
    for (int j = 0; j < cols; ++j) bg[j] += grow[j];
  }
}

void AxpyAccum(float* y, const float* x, float alpha, std::size_t size) {
  float* M3_RESTRICT yp = y;
  const float* M3_RESTRICT xp = x;
  for (std::size_t i = 0; i < size; ++i) yp[i] += alpha * xp[i];
}

void AddAndZero(float* dst, float* src, std::size_t size) {
  float* M3_RESTRICT d = dst;
  float* M3_RESTRICT s = src;
  for (std::size_t i = 0; i < size; ++i) {
    d[i] += s[i];
    s[i] = 0.0f;
  }
}

void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha) {
  for (std::size_t i = 0; i < size; ++i) {
    float acc = 0.0f;
    for (std::size_t s = 0; s < nsrcs; ++s) {
      acc += srcs[s][i];
      srcs[s][i] = 0.0f;
    }
    dst[i] = acc * alpha;
  }
}

}  // namespace scalar

// ----------------------------------------------------------------------
// Dispatching wrappers
// ----------------------------------------------------------------------

void GemmAccum(const float* a, const float* b, float* c, int m, int k, int n) {
  switch (GetKernelImpl()) {
    case KernelImpl::kNaive: GemmAccumNaive(a, b, c, m, k, n); return;
    case KernelImpl::kTiled: tiled::GemmAccum(a, b, c, m, k, n); return;
    case KernelImpl::kAvx2: avx2::GemmAccum(a, b, c, m, k, n); return;
    case KernelImpl::kAvx512: avx512::GemmAccum(a, b, c, m, k, n); return;
  }
}

void GemmAccumNT(const float* dc, const float* b, float* da, int m, int n, int k) {
  switch (GetKernelImpl()) {
    case KernelImpl::kNaive: GemmAccumNTNaive(dc, b, da, m, n, k); return;
    case KernelImpl::kTiled: tiled::GemmAccumNT(dc, b, da, m, n, k); return;
    case KernelImpl::kAvx2: avx2::GemmAccumNT(dc, b, da, m, n, k); return;
    case KernelImpl::kAvx512: avx512::GemmAccumNT(dc, b, da, m, n, k); return;
  }
}

void GemmAccumTN(const float* a, const float* dc, float* db, int m, int k, int n) {
  switch (GetKernelImpl()) {
    case KernelImpl::kNaive: GemmAccumTNNaive(a, dc, db, m, k, n); return;
    case KernelImpl::kTiled: tiled::GemmAccumTN(a, dc, db, m, k, n); return;
    case KernelImpl::kAvx2: avx2::GemmAccumTN(a, dc, db, m, k, n); return;
    case KernelImpl::kAvx512: avx512::GemmAccumTN(a, dc, db, m, k, n); return;
  }
}

void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols) {
  switch (GetKernelImpl()) {
    case KernelImpl::kAvx2: avx2::BiasAddRows(out, x, bias, rows, cols); return;
    case KernelImpl::kAvx512: avx512::BiasAddRows(out, x, bias, rows, cols); return;
    default: scalar::BiasAddRows(out, x, bias, rows, cols); return;
  }
}

void ColSumAccum(float* bg, const float* go, int rows, int cols) {
  switch (GetKernelImpl()) {
    case KernelImpl::kAvx2: avx2::ColSumAccum(bg, go, rows, cols); return;
    case KernelImpl::kAvx512: avx512::ColSumAccum(bg, go, rows, cols); return;
    default: scalar::ColSumAccum(bg, go, rows, cols); return;
  }
}

void AxpyAccum(float* y, const float* x, float alpha, std::size_t size) {
  switch (GetKernelImpl()) {
    case KernelImpl::kAvx2: avx2::AxpyAccum(y, x, alpha, size); return;
    case KernelImpl::kAvx512: avx512::AxpyAccum(y, x, alpha, size); return;
    default: scalar::AxpyAccum(y, x, alpha, size); return;
  }
}

void AddAndZero(float* dst, float* src, std::size_t size) {
  switch (GetKernelImpl()) {
    case KernelImpl::kAvx2: avx2::AddAndZero(dst, src, size); return;
    case KernelImpl::kAvx512: avx512::AddAndZero(dst, src, size); return;
    default: scalar::AddAndZero(dst, src, size); return;
  }
}

void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha) {
  switch (GetKernelImpl()) {
    case KernelImpl::kAvx2: avx2::ReduceScaleAndZero(dst, srcs, nsrcs, size, alpha); return;
    case KernelImpl::kAvx512: avx512::ReduceScaleAndZero(dst, srcs, nsrcs, size, alpha); return;
    default: scalar::ReduceScaleAndZero(dst, srcs, nsrcs, size, alpha); return;
  }
}

// ----------------------------------------------------------------------
// Shared kernels (single implementation; autovectorized here)
// ----------------------------------------------------------------------
namespace {

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace

void FillRowsWithBias(float* out, const float* bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    std::memcpy(out + static_cast<std::size_t>(r) * cols, bias,
                static_cast<std::size_t>(cols) * sizeof(float));
  }
}

void ScaleInPlace(float* x, float alpha, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) x[i] *= alpha;
}

double SumSquares(const float* x, std::size_t size) {
  if (GetKernelImpl() == KernelImpl::kNaive) return SumSquaresNaive(x, size);
  // Eight independent double accumulators so the reduction vectorizes
  // without changing the (documented, deterministic) summation order from
  // run to run.
  constexpr std::size_t kLanes = 8;
  double lanes[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= size; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double g = static_cast<double>(x[i + l]);
      lanes[l] += g * g;
    }
  }
  for (; i < size; ++i) {
    const double g = static_cast<double>(x[i]);
    lanes[0] += g * g;
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) total += lanes[l];
  return total;
}

void AdamStep(float* value, float* grad, float* m, float* v, std::size_t size,
              float lr, float beta1, float beta2, float eps, float bc1, float bc2,
              float gscale) {
  float* M3_RESTRICT val = value;
  float* M3_RESTRICT g = grad;
  float* M3_RESTRICT mp = m;
  float* M3_RESTRICT vp = v;
  const float om1 = 1.0f - beta1;
  const float om2 = 1.0f - beta2;
  for (std::size_t i = 0; i < size; ++i) {
    const float gi = g[i] * gscale;
    g[i] = 0.0f;
    const float mi = beta1 * mp[i] + om1 * gi;
    const float vi = beta2 * vp[i] + om2 * gi * gi;
    mp[i] = mi;
    vp[i] = vi;
    val[i] -= lr * (mi / bc1) / (std::sqrt(vi / bc2) + eps);
  }
}

void ReluForward(float* dst, const float* src, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void ReluBackwardAccum(float* ga, const float* go, const float* x, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    if (x[i] > 0.0f) ga[i] += go[i];
  }
}

void ReluBackwardInto(float* dst, const float* go, const float* x, std::size_t size) {
  float* M3_RESTRICT d = dst;
  for (std::size_t i = 0; i < size; ++i) d[i] = x[i] > 0.0f ? go[i] : 0.0f;
}

void GeluForward(float* dst, const float* src, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) dst[i] = src[i] * Sigmoid(1.702f * src[i]);
}

void GeluBackwardAccum(float* ga, const float* go, const float* x, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    const float s = Sigmoid(1.702f * x[i]);
    ga[i] += go[i] * (s + x[i] * 1.702f * s * (1.0f - s));
  }
}

void GeluBackwardInto(float* dst, const float* go, const float* x, std::size_t size) {
  float* M3_RESTRICT d = dst;
  for (std::size_t i = 0; i < size; ++i) {
    const float s = Sigmoid(1.702f * x[i]);
    d[i] = go[i] * (s + x[i] * 1.702f * s * (1.0f - s));
  }
}

void SoftmaxRows(float* data, int rows, int cols) { SoftmaxScaledRows(data, rows, cols, 1.0f); }

void SoftmaxScaledRows(float* data, int rows, int cols, float scale) {
  for (int r = 0; r < rows; ++r) {
    float* M3_RESTRICT row = data + static_cast<std::size_t>(r) * cols;
    float mx = row[0];
    for (int j = 1; j < cols; ++j) mx = std::max(mx, row[j]);
    // softmax(scale*x) == exp(scale*(x - max)) / sum: folding the scale
    // into the exponent keeps one pass and is max-shifted for stability
    // (scale is positive here: 1/sqrt(d_head) or 1).
    float sum = 0.0f;
    for (int j = 0; j < cols; ++j) {
      row[j] = std::exp(scale * (row[j] - mx));
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < cols; ++j) row[j] *= inv;
  }
}

void SoftmaxBackwardAccum(float* ga, const float* go, const float* y, int rows, int cols) {
  SoftmaxScaledBackwardAccum(ga, go, y, rows, cols, 1.0f);
}

void SoftmaxScaledBackwardAccum(float* ga, const float* go, const float* y, int rows,
                                int cols, float scale) {
  for (int r = 0; r < rows; ++r) {
    const float* M3_RESTRICT yrow = y + static_cast<std::size_t>(r) * cols;
    const float* M3_RESTRICT grow = go + static_cast<std::size_t>(r) * cols;
    float* M3_RESTRICT garow = ga + static_cast<std::size_t>(r) * cols;
    float dot = 0.0f;
    for (int j = 0; j < cols; ++j) dot += grow[j] * yrow[j];
    for (int j = 0; j < cols; ++j) garow[j] += scale * yrow[j] * (grow[j] - dot);
  }
}

void RmsNormForward(float* out, float* inv_r, const float* x, const float* gain,
                    int rows, int cols, float eps) {
  for (int r = 0; r < rows; ++r) {
    const float* M3_RESTRICT xrow = x + static_cast<std::size_t>(r) * cols;
    float* M3_RESTRICT orow = out + static_cast<std::size_t>(r) * cols;
    float ss = 0.0f;
    for (int j = 0; j < cols; ++j) ss += xrow[j] * xrow[j];
    const float ir = 1.0f / std::sqrt(ss / static_cast<float>(cols) + eps);
    inv_r[r] = ir;
    for (int j = 0; j < cols; ++j) orow[j] = gain[j] * xrow[j] * ir;
  }
}

void RmsNormBackwardAccum(float* gx, float* ggain, const float* go, const float* x,
                          const float* gain, const float* inv_r, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* M3_RESTRICT grow = go + static_cast<std::size_t>(r) * cols;
    const float* M3_RESTRICT xrow = x + static_cast<std::size_t>(r) * cols;
    float* M3_RESTRICT gxrow = gx + static_cast<std::size_t>(r) * cols;
    const float ir = inv_r[r];
    float s = 0.0f;
    for (int j = 0; j < cols; ++j) s += grow[j] * gain[j] * xrow[j];
    const float c = s * ir * ir * ir / static_cast<float>(cols);
    for (int j = 0; j < cols; ++j) {
      gxrow[j] += grow[j] * gain[j] * ir - xrow[j] * c;
      ggain[j] += grow[j] * xrow[j] * ir;
    }
  }
}

}  // namespace m3::ml::kernels
