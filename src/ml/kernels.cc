// Tiled kernel implementations. This translation unit is compiled with
// aggressive optimization flags (see src/CMakeLists.txt, M3_KERNEL_NATIVE),
// so the loops below are written to autovectorize: contiguous unit-stride
// inner loops, restrict-qualified pointers, and register-resident
// accumulator tiles with compile-time extents.
#include "ml/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>

#if defined(__GNUC__)
#define M3_RESTRICT __restrict__
#else
#define M3_RESTRICT
#endif

namespace m3::ml::kernels {
namespace {

std::atomic<bool> g_use_tiled{true};

inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

// Micro-tile extents. kMr rows of C are updated at once so each loaded
// B-row segment is reused kMr times; kNc columns of C live in a local
// accumulator that stays in L1/registers across the whole k loop instead
// of being streamed through memory once per k step.
constexpr int kMr = 4;
constexpr int kNc = 64;

// C[i0..i0+ib, j0..j0+jb) += A[i0.., :] * B[:, j0..) with the C tile held
// in `acc` (fixed stride kNc so the compiler sees constant offsets).
inline void MicroKernel(const float* M3_RESTRICT a, const float* M3_RESTRICT b,
                        float* M3_RESTRICT c, int m, int k, int n, int i0, int ib,
                        int j0, int jb) {
  float acc[kMr * kNc];
  for (int r = 0; r < ib; ++r) {
    std::memcpy(acc + r * kNc, c + static_cast<std::size_t>(i0 + r) * n + j0,
                static_cast<std::size_t>(jb) * sizeof(float));
  }
  if (ib == kMr) {
    // Full-height tile: fixed row count lets the compiler keep all four
    // broadcast scalars live and fuse the four AXPYs into one pass over b.
    for (int p = 0; p < k; ++p) {
      const float* M3_RESTRICT bp = b + static_cast<std::size_t>(p) * n + j0;
      const float a0 = a[static_cast<std::size_t>(i0 + 0) * k + p];
      const float a1 = a[static_cast<std::size_t>(i0 + 1) * k + p];
      const float a2 = a[static_cast<std::size_t>(i0 + 2) * k + p];
      const float a3 = a[static_cast<std::size_t>(i0 + 3) * k + p];
      for (int j = 0; j < jb; ++j) {
        const float bv = bp[j];
        acc[0 * kNc + j] += a0 * bv;
        acc[1 * kNc + j] += a1 * bv;
        acc[2 * kNc + j] += a2 * bv;
        acc[3 * kNc + j] += a3 * bv;
      }
    }
  } else {
    for (int p = 0; p < k; ++p) {
      const float* M3_RESTRICT bp = b + static_cast<std::size_t>(p) * n + j0;
      for (int r = 0; r < ib; ++r) {
        const float av = a[static_cast<std::size_t>(i0 + r) * k + p];
        float* M3_RESTRICT accr = acc + r * kNc;
        for (int j = 0; j < jb; ++j) accr[j] += av * bp[j];
      }
    }
  }
  for (int r = 0; r < ib; ++r) {
    std::memcpy(c + static_cast<std::size_t>(i0 + r) * n + j0, acc + r * kNc,
                static_cast<std::size_t>(jb) * sizeof(float));
  }
  (void)m;
}

void GemmAccumTiled(const float* M3_RESTRICT a, const float* M3_RESTRICT b,
                    float* M3_RESTRICT c, int m, int k, int n) {
  for (int j0 = 0; j0 < n; j0 += kNc) {
    const int jb = std::min(kNc, n - j0);
    for (int i0 = 0; i0 < m; i0 += kMr) {
      const int ib = std::min(kMr, m - i0);
      MicroKernel(a, b, c, m, k, n, i0, ib, j0, jb);
    }
  }
}

// dA[i,p] = dot(dC[i,:], B[p,:]) — both operands walked with unit stride
// (the seed's loop nest walked B column-wise with stride n). Four B rows
// are processed per pass so each loaded dC segment is reused, and eight
// independent accumulators per dot product keep the reduction vectorizable
// without reassociating a single serial sum.
void GemmAccumNTTiled(const float* M3_RESTRICT dc, const float* M3_RESTRICT b,
                      float* M3_RESTRICT da, int m, int n, int k) {
  constexpr int kPr = 4;   // B rows (= dA columns) per pass
  constexpr int kLanes = 8;
  for (int i = 0; i < m; ++i) {
    const float* M3_RESTRICT gi = dc + static_cast<std::size_t>(i) * n;
    float* M3_RESTRICT dai = da + static_cast<std::size_t>(i) * k;
    int p0 = 0;
    for (; p0 + kPr <= k; p0 += kPr) {
      float lanes[kPr][kLanes] = {};
      int j = 0;
      for (; j + kLanes <= n; j += kLanes) {
        for (int r = 0; r < kPr; ++r) {
          const float* M3_RESTRICT bp = b + static_cast<std::size_t>(p0 + r) * n + j;
          const float* M3_RESTRICT gj = gi + j;
          for (int l = 0; l < kLanes; ++l) lanes[r][l] += gj[l] * bp[l];
        }
      }
      for (; j < n; ++j) {
        for (int r = 0; r < kPr; ++r) {
          lanes[r][0] += gi[j] * b[static_cast<std::size_t>(p0 + r) * n + j];
        }
      }
      for (int r = 0; r < kPr; ++r) {
        float s = 0.0f;
        for (int l = 0; l < kLanes; ++l) s += lanes[r][l];
        dai[p0 + r] += s;
      }
    }
    for (; p0 < k; ++p0) {
      const float* M3_RESTRICT bp = b + static_cast<std::size_t>(p0) * n;
      float lanes[kLanes] = {};
      int j = 0;
      for (; j + kLanes <= n; j += kLanes) {
        for (int l = 0; l < kLanes; ++l) lanes[l] += gi[j + l] * bp[j + l];
      }
      for (; j < n; ++j) lanes[0] += gi[j] * bp[j];
      float s = 0.0f;
      for (int l = 0; l < kLanes; ++l) s += lanes[l];
      dai[p0] += s;
    }
  }
}

// dB[p,:] += sum_i A[i,p] * dC[i,:] — same register-tile shape as the
// forward kernel with the roles of A and C swapped: a kMr-column strip of
// A drives rank-1 updates into a dB tile held in local accumulators.
void GemmAccumTNTiled(const float* M3_RESTRICT a, const float* M3_RESTRICT dc,
                      float* M3_RESTRICT db, int m, int k, int n) {
  if (m <= 16) {
    // Short-m fast path (the common case here: m is a sequence length or
    // 1). dB is the large streamed operand; each of its rows is read and
    // written exactly once while all m dC rows stay in L1, and the tile
    // buffer round-trip above would only add copy traffic.
    for (int p = 0; p < k; ++p) {
      float* M3_RESTRICT dbrow = db + static_cast<std::size_t>(p) * n;
      for (int i = 0; i < m; ++i) {
        const float av = a[static_cast<std::size_t>(i) * k + p];
        const float* M3_RESTRICT gi = dc + static_cast<std::size_t>(i) * n;
        for (int j = 0; j < n; ++j) dbrow[j] += av * gi[j];
      }
    }
    return;
  }
  for (int j0 = 0; j0 < n; j0 += kNc) {
    const int jb = std::min(kNc, n - j0);
    for (int p0 = 0; p0 < k; p0 += kMr) {
      const int pb = std::min(kMr, k - p0);
      float acc[kMr * kNc];
      for (int r = 0; r < pb; ++r) {
        std::memcpy(acc + r * kNc, db + static_cast<std::size_t>(p0 + r) * n + j0,
                    static_cast<std::size_t>(jb) * sizeof(float));
      }
      if (pb == kMr) {
        for (int i = 0; i < m; ++i) {
          const float* M3_RESTRICT gi = dc + static_cast<std::size_t>(i) * n + j0;
          const float* ap = a + static_cast<std::size_t>(i) * k + p0;
          const float a0 = ap[0], a1 = ap[1], a2 = ap[2], a3 = ap[3];
          for (int j = 0; j < jb; ++j) {
            const float gv = gi[j];
            acc[0 * kNc + j] += a0 * gv;
            acc[1 * kNc + j] += a1 * gv;
            acc[2 * kNc + j] += a2 * gv;
            acc[3 * kNc + j] += a3 * gv;
          }
        }
      } else {
        for (int i = 0; i < m; ++i) {
          const float* M3_RESTRICT gi = dc + static_cast<std::size_t>(i) * n + j0;
          const float* ap = a + static_cast<std::size_t>(i) * k + p0;
          for (int r = 0; r < pb; ++r) {
            const float av = ap[r];
            float* M3_RESTRICT accr = acc + r * kNc;
            for (int j = 0; j < jb; ++j) accr[j] += av * gi[j];
          }
        }
      }
      for (int r = 0; r < pb; ++r) {
        std::memcpy(db + static_cast<std::size_t>(p0 + r) * n + j0, acc + r * kNc,
                    static_cast<std::size_t>(jb) * sizeof(float));
      }
    }
  }
}

}  // namespace

void SetUseTiled(bool use_tiled) { g_use_tiled.store(use_tiled, std::memory_order_relaxed); }
bool UseTiled() { return g_use_tiled.load(std::memory_order_relaxed); }

void GemmAccum(const float* a, const float* b, float* c, int m, int k, int n) {
  if (UseTiled()) {
    GemmAccumTiled(a, b, c, m, k, n);
  } else {
    GemmAccumNaive(a, b, c, m, k, n);
  }
}

void GemmAccumNT(const float* dc, const float* b, float* da, int m, int n, int k) {
  if (UseTiled()) {
    GemmAccumNTTiled(dc, b, da, m, n, k);
  } else {
    GemmAccumNTNaive(dc, b, da, m, n, k);
  }
}

void GemmAccumTN(const float* a, const float* dc, float* db, int m, int k, int n) {
  if (UseTiled()) {
    GemmAccumTNTiled(a, dc, db, m, k, n);
  } else {
    GemmAccumTNNaive(a, dc, db, m, k, n);
  }
}

void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* M3_RESTRICT orow = out + static_cast<std::size_t>(r) * cols;
    const float* M3_RESTRICT xrow = x + static_cast<std::size_t>(r) * cols;
    for (int j = 0; j < cols; ++j) orow[j] = xrow[j] + bias[j];
  }
}

void ColSumAccum(float* bg, const float* go, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* M3_RESTRICT grow = go + static_cast<std::size_t>(r) * cols;
    for (int j = 0; j < cols; ++j) bg[j] += grow[j];
  }
}

void AxpyAccum(float* y, const float* x, float alpha, std::size_t size) {
  float* M3_RESTRICT yp = y;
  const float* M3_RESTRICT xp = x;
  for (std::size_t i = 0; i < size; ++i) yp[i] += alpha * xp[i];
}

void AddAndZero(float* dst, float* src, std::size_t size) {
  float* M3_RESTRICT d = dst;
  float* M3_RESTRICT s = src;
  for (std::size_t i = 0; i < size; ++i) {
    d[i] += s[i];
    s[i] = 0.0f;
  }
}

void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha) {
  for (std::size_t i = 0; i < size; ++i) {
    float acc = 0.0f;
    for (std::size_t s = 0; s < nsrcs; ++s) {
      acc += srcs[s][i];
      srcs[s][i] = 0.0f;
    }
    dst[i] = acc * alpha;
  }
}

void ScaleInPlace(float* x, float alpha, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) x[i] *= alpha;
}

double SumSquares(const float* x, std::size_t size) {
  if (!UseTiled()) return SumSquaresNaive(x, size);
  // Eight independent double accumulators so the reduction vectorizes
  // without changing the (documented, deterministic) summation order from
  // run to run.
  constexpr std::size_t kLanes = 8;
  double lanes[kLanes] = {};
  std::size_t i = 0;
  for (; i + kLanes <= size; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double g = static_cast<double>(x[i + l]);
      lanes[l] += g * g;
    }
  }
  for (; i < size; ++i) {
    const double g = static_cast<double>(x[i]);
    lanes[0] += g * g;
  }
  double total = 0.0;
  for (std::size_t l = 0; l < kLanes; ++l) total += lanes[l];
  return total;
}

void AdamStep(float* value, float* grad, float* m, float* v, std::size_t size,
              float lr, float beta1, float beta2, float eps, float bc1, float bc2,
              float gscale) {
  float* M3_RESTRICT val = value;
  float* M3_RESTRICT g = grad;
  float* M3_RESTRICT mp = m;
  float* M3_RESTRICT vp = v;
  const float om1 = 1.0f - beta1;
  const float om2 = 1.0f - beta2;
  for (std::size_t i = 0; i < size; ++i) {
    const float gi = g[i] * gscale;
    g[i] = 0.0f;
    const float mi = beta1 * mp[i] + om1 * gi;
    const float vi = beta2 * vp[i] + om2 * gi * gi;
    mp[i] = mi;
    vp[i] = vi;
    val[i] -= lr * (mi / bc1) / (std::sqrt(vi / bc2) + eps);
  }
}

void ReluForward(float* dst, const float* src, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
}

void ReluBackwardAccum(float* ga, const float* go, const float* x, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    if (x[i] > 0.0f) ga[i] += go[i];
  }
}

void GeluForward(float* dst, const float* src, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) dst[i] = src[i] * Sigmoid(1.702f * src[i]);
}

void GeluBackwardAccum(float* ga, const float* go, const float* x, std::size_t size) {
  for (std::size_t i = 0; i < size; ++i) {
    const float s = Sigmoid(1.702f * x[i]);
    ga[i] += go[i] * (s + x[i] * 1.702f * s * (1.0f - s));
  }
}

void SoftmaxRows(float* data, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* M3_RESTRICT row = data + static_cast<std::size_t>(r) * cols;
    float mx = row[0];
    for (int j = 1; j < cols; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (int j = 0; j < cols; ++j) {
      row[j] = std::exp(row[j] - mx);
      sum += row[j];
    }
    const float inv = 1.0f / sum;
    for (int j = 0; j < cols; ++j) row[j] *= inv;
  }
}

void SoftmaxBackwardAccum(float* ga, const float* go, const float* y, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    const float* M3_RESTRICT yrow = y + static_cast<std::size_t>(r) * cols;
    const float* M3_RESTRICT grow = go + static_cast<std::size_t>(r) * cols;
    float* M3_RESTRICT garow = ga + static_cast<std::size_t>(r) * cols;
    float dot = 0.0f;
    for (int j = 0; j < cols; ++j) dot += grow[j] * yrow[j];
    for (int j = 0; j < cols; ++j) garow[j] += yrow[j] * (grow[j] - dot);
  }
}

}  // namespace m3::ml::kernels
