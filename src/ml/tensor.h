// Dense row-major float32 matrix. 1-D vectors are represented as [1, n].
// This is deliberately minimal: m3's model only needs 2-D tensors (the
// per-hop feature-map sequence is handled as a [hops, feat] matrix).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace m3::ml {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols);

  static Tensor Zeros(int rows, int cols) { return Tensor(rows, cols); }
  /// Gaussian init with the given standard deviation.
  static Tensor Randn(int rows, int cols, Rng& rng, float stddev);
  static Tensor FromVector(const std::vector<float>& v);  // [1, n]

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  float at(int r, int c) const { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  void Fill(float v);
  void AddInPlace(const Tensor& other);  // same shape

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// Named trainable parameter with gradient accumulator and Adam state.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  Tensor adam_m;
  Tensor adam_v;

  Parameter() = default;
  Parameter(std::string n, Tensor v);

  void ZeroGrad();
};

}  // namespace m3::ml
