// Dense row-major float32 matrix. 1-D vectors are represented as [1, n].
// This is deliberately minimal: m3's model only needs 2-D tensors (the
// per-hop feature-map sequence is handled as a [hops, feat] matrix).
//
// Tensor storage is 64-byte aligned and padded to a 64-byte multiple (see
// AlignedAllocator): SIMD kernels get aligned full-width loads, and no two
// tensor allocations ever share a cache line, so per-thread gradient
// buffers written concurrently from different threads cannot false-share.
#pragma once

#include <cstddef>
#include <new>
#include <string>
#include <vector>

#include "util/rng.h"

namespace m3::ml {

/// Minimal aligned allocator: every allocation starts on an `Align`-byte
/// boundary and its byte size is rounded up to a multiple of `Align`.
template <typename T, std::size_t Align>
struct AlignedAllocator {
  using value_type = T;
  // Explicit rebind: the default mechanism cannot rewrite the non-type
  // Align parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    const std::size_t bytes = (n * sizeof(T) + Align - 1) / Align * Align;
    return static_cast<T*>(::operator new(bytes, std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Align>&) const noexcept {
    return false;
  }
};

/// Backing storage for Tensor: cache-line aligned float vector.
using FloatVec = std::vector<float, AlignedAllocator<float, 64>>;

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols);
  /// Adopts `buf` as backing storage (arena reuse); buf.size() must equal
  /// rows * cols.
  Tensor(int rows, int cols, FloatVec&& buf);

  static Tensor Zeros(int rows, int cols) { return Tensor(rows, cols); }
  /// Gaussian init with the given standard deviation.
  static Tensor Randn(int rows, int cols, Rng& rng, float stddev);
  static Tensor FromVector(const std::vector<float>& v);  // [1, n]

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(int r, int c) { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  float at(int r, int c) const { return data_[static_cast<std::size_t>(r) * cols_ + c]; }
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  FloatVec& vec() { return data_; }
  const FloatVec& vec() const { return data_; }

  /// Moves the backing buffer out (for arena reclamation), leaving the
  /// tensor empty.
  FloatVec ReleaseBuffer() {
    rows_ = 0;
    cols_ = 0;
    return std::move(data_);
  }

  void Fill(float v);
  void AddInPlace(const Tensor& other);  // same shape

 private:
  int rows_ = 0;
  int cols_ = 0;
  FloatVec data_;
};

/// Named trainable parameter with gradient accumulator and Adam state.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  Tensor adam_m;
  Tensor adam_v;

  Parameter() = default;
  Parameter(std::string n, Tensor v);

  void ZeroGrad();
};

}  // namespace m3::ml
