#include "ml/tensor.h"

#include <algorithm>
#include <stdexcept>

namespace m3::ml {

Tensor::Tensor(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0f) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Tensor: negative shape");
}

Tensor::Tensor(int rows, int cols, FloatVec&& buf)
    : rows_(rows), cols_(cols), data_(std::move(buf)) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("Tensor: negative shape");
  if (data_.size() != static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols)) {
    throw std::invalid_argument("Tensor: adopted buffer size mismatch");
  }
}

Tensor Tensor::Randn(int rows, int cols, Rng& rng, float stddev) {
  Tensor t(rows, cols);
  for (float& v : t.data_) v = static_cast<float>(rng.Normal(0.0, stddev));
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& v) {
  Tensor t(1, static_cast<int>(v.size()));
  t.data_.assign(v.begin(), v.end());
  return t;
}

void Tensor::Fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::AddInPlace(const Tensor& other) {
  if (other.rows_ != rows_ || other.cols_ != cols_) {
    throw std::invalid_argument("Tensor::AddInPlace shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

Parameter::Parameter(std::string n, Tensor v) : name(std::move(n)), value(std::move(v)) {
  grad = Tensor::Zeros(value.rows(), value.cols());
  adam_m = Tensor::Zeros(value.rows(), value.cols());
  adam_v = Tensor::Zeros(value.rows(), value.cols());
}

void Parameter::ZeroGrad() { grad.Fill(0.0f); }

}  // namespace m3::ml
