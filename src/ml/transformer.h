// A small pre-norm transformer encoder (the structural equivalent of the
// paper's tiny Llama-2): learned positional embeddings, multi-head
// self-attention, GELU feed-forward, RMS norms, and mean pooling into a
// fixed-size context vector. Sequence length is the number of hops on a
// path (<= 8), so this is tiny and fast on CPU.
#pragma once

#include <vector>

#include "ml/layers.h"

namespace m3::ml {

struct TransformerConfig {
  int input_dim = 1010;  // per-hop feature map (flattened) + counts
  int d_model = 96;
  int num_heads = 4;
  int num_layers = 2;
  int ff_dim = 192;
  int max_seq = 8;
};

class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(const std::string& name, const TransformerConfig& cfg, Rng& rng);

  Var operator()(Graph& g, Var x);  // [n, d] -> [n, d]
  void CollectParams(std::vector<Parameter*>& out);

 private:
  int d_model_ = 0;
  int num_heads_ = 0;
  RmsNormLayer norm1_;
  Linear wq_, wk_, wv_, wo_;
  RmsNormLayer norm2_;
  Linear ff1_, ff2_;
};

class TransformerEncoder {
 public:
  TransformerEncoder() = default;
  TransformerEncoder(const std::string& name, const TransformerConfig& cfg, Rng& rng);

  /// Encodes a [n, input_dim] sequence into a [1, d_model] context vector.
  /// n must be in [1, max_seq].
  Var Encode(Graph& g, const Tensor& sequence);

  void CollectParams(std::vector<Parameter*>& out);
  const TransformerConfig& config() const { return cfg_; }

 private:
  TransformerConfig cfg_;
  Linear in_proj_;
  Parameter pos_emb_;  // [max_seq, d_model]
  std::vector<TransformerBlock> blocks_;
  RmsNormLayer final_norm_;
};

}  // namespace m3::ml
