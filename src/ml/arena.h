// Thread-local tensor buffer pool.
//
// Training builds and tears down an autograd tape per sample: every
// forward op allocates a value tensor and every backward pass allocates
// gradients of the same shapes, so an epoch performs hundreds of
// thousands of identical heap round-trips. TensorArena breaks that cycle:
// a Graph draws its tensors from the calling thread's arena and returns
// the buffers on destruction, so steady-state training reuses the same
// few hundred allocations forever.
//
// The pool is strictly thread-local (one arena per training thread),
// which makes it lock-free and keeps a buffer on the core that last
// touched it. Reuse is best-fit on capacity with a 2x slack bound so a
// tiny request can never pin a huge buffer, and the pooled total is
// capped (kMaxPoolBytes) with largest-first eviction.
#pragma once

#include <cstddef>
#include <map>

#include "ml/tensor.h"

namespace m3::ml {

class TensorArena {
 public:
  /// The calling thread's arena (created on first use).
  static TensorArena& ThreadLocal();

  /// Returns a zero-filled [rows, cols] tensor, reusing a pooled buffer
  /// when one of suitable capacity exists.
  Tensor GetZeros(int rows, int cols);

  /// Returns a copy of `src` backed by a pooled buffer.
  Tensor GetCopy(const Tensor& src);

  /// Reclaims a tensor's buffer into the pool. Empty tensors are ignored.
  void Put(Tensor&& t);

  /// Drops all pooled buffers.
  void Clear();

  std::size_t pooled_bytes() const { return pooled_bytes_; }
  std::size_t pooled_buffers() const { return pool_.size(); }
  // Lifetime counters, for tests and diagnostics.
  std::size_t reuse_count() const { return reuse_count_; }
  std::size_t alloc_count() const { return alloc_count_; }

  // Buffers larger than request * kMaxSlack are not reused for it.
  static constexpr std::size_t kMaxSlack = 2;
  static constexpr std::size_t kMaxPoolBytes = 128u << 20;  // 128 MiB

 private:
  FloatVec Acquire(std::size_t n);

  // capacity -> buffer; multimap because many tensors share a shape.
  std::multimap<std::size_t, FloatVec> pool_;
  std::size_t pooled_bytes_ = 0;
  std::size_t reuse_count_ = 0;
  std::size_t alloc_count_ = 0;
};

}  // namespace m3::ml
