#include "ml/transformer.h"

#include <cmath>
#include <stdexcept>

namespace m3::ml {

TransformerBlock::TransformerBlock(const std::string& name, const TransformerConfig& cfg,
                                   Rng& rng)
    : d_model_(cfg.d_model),
      num_heads_(cfg.num_heads),
      norm1_(name + ".norm1", cfg.d_model),
      wq_(name + ".wq", cfg.d_model, cfg.d_model, rng),
      wk_(name + ".wk", cfg.d_model, cfg.d_model, rng),
      wv_(name + ".wv", cfg.d_model, cfg.d_model, rng),
      wo_(name + ".wo", cfg.d_model, cfg.d_model, rng),
      norm2_(name + ".norm2", cfg.d_model),
      ff1_(name + ".ff1", cfg.d_model, cfg.ff_dim, rng),
      ff2_(name + ".ff2", cfg.ff_dim, cfg.d_model, rng) {
  if (cfg.d_model % cfg.num_heads != 0) {
    throw std::invalid_argument("d_model must be divisible by num_heads");
  }
}

Var TransformerBlock::operator()(Graph& g, Var x) {
  // Pre-norm multi-head self-attention with residual.
  Var h = norm1_(g, x);
  Var q = wq_(g, h);
  Var k = wk_(g, h);
  Var v = wv_(g, h);
  const int dh = d_model_ / num_heads_;
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  std::vector<Var> heads;
  heads.reserve(static_cast<std::size_t>(num_heads_));
  for (int head = 0; head < num_heads_; ++head) {
    Var qh = g.SliceCols(q, head * dh, dh);
    Var kh = g.SliceCols(k, head * dh, dh);
    Var vh = g.SliceCols(v, head * dh, dh);
    // q·k^T with no Transpose node, scale folded into the softmax pass.
    Var attn = g.SoftmaxScaled(g.MatMulNT(qh, kh), scale);
    heads.push_back(g.MatMul(attn, vh));
  }
  Var attn_out = wo_(g, g.ConcatCols(heads));
  Var x1 = g.Add(x, attn_out);

  // Pre-norm feed-forward with residual (GELU fused into ff1).
  Var ff = ff2_(g, ff1_(g, norm2_(g, x1), Act::kGelu));
  return g.Add(x1, ff);
}

void TransformerBlock::CollectParams(std::vector<Parameter*>& out) {
  norm1_.CollectParams(out);
  wq_.CollectParams(out);
  wk_.CollectParams(out);
  wv_.CollectParams(out);
  wo_.CollectParams(out);
  norm2_.CollectParams(out);
  ff1_.CollectParams(out);
  ff2_.CollectParams(out);
}

TransformerEncoder::TransformerEncoder(const std::string& name, const TransformerConfig& cfg,
                                       Rng& rng)
    : cfg_(cfg),
      in_proj_(name + ".in_proj", cfg.input_dim, cfg.d_model, rng),
      pos_emb_(name + ".pos_emb",
               Tensor::Randn(cfg.max_seq, cfg.d_model, rng, 0.02f)),
      final_norm_(name + ".final_norm", cfg.d_model) {
  blocks_.reserve(static_cast<std::size_t>(cfg.num_layers));
  for (int i = 0; i < cfg.num_layers; ++i) {
    blocks_.emplace_back(name + ".block" + std::to_string(i), cfg, rng);
  }
}

Var TransformerEncoder::Encode(Graph& g, const Tensor& sequence) {
  const int n = sequence.rows();
  if (n < 1 || n > cfg_.max_seq || sequence.cols() != cfg_.input_dim) {
    throw std::invalid_argument("TransformerEncoder: bad sequence shape");
  }
  Var x = in_proj_(g, g.Input(sequence));
  // Add the first n rows of the positional embedding (a direct row slice;
  // the old Transpose -> SliceCols -> Transpose chain materialized the
  // full embedding twice per episode).
  x = g.Add(x, g.SliceRows(g.Param(&pos_emb_), 0, n));
  for (auto& block : blocks_) x = block(g, x);
  return final_norm_(g, g.MeanRows(x));
}

void TransformerEncoder::CollectParams(std::vector<Parameter*>& out) {
  in_proj_.CollectParams(out);
  out.push_back(&pos_emb_);
  for (auto& block : blocks_) block.CollectParams(out);
  final_norm_.CollectParams(out);
}

}  // namespace m3::ml
