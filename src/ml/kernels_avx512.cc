// 512-bit AVX-512F kernel tier. Same structure as kernels_avx2.cc with
// twice the lane width; column remainders use the native k-mask registers
// (__mmask16) instead of vector maskload, so every loop body has exactly
// one masked epilogue form and never touches memory past a row's end.
// Compiled with -mavx512f when the compiler supports it
// (M3_KERNELS_AVX512); stubs otherwise. Runtime CPUID gating lives in the
// dispatcher.
#include "ml/kernels_impl.h"

#if defined(M3_KERNELS_AVX512)

#include <immintrin.h>

#include <cstddef>

namespace m3::ml::kernels::avx512 {

bool Compiled() { return true; }

namespace {

inline __mmask16 TailMask16(int rem) {
  return static_cast<__mmask16>((1u << rem) - 1u);
}

// Register-tiled accumulation panel; see kernels_avx2.cc for the stride
// parameterization (forward: ars=k ass=1; TN: ars=1 ass=k). MR=8, NV=3
// covers an 8x48 output tile with 24 zmm accumulators + 3 B vectors + 1
// broadcast = 28 of the 32 zmm registers (8 rows of B reuse per load is
// worth ~25% over 4 rows on square_256).
template <int MR, int NV>
inline void TileFull(const float* abase, std::ptrdiff_t ars, std::ptrdiff_t ass,
                     const float* bbase, std::ptrdiff_t bstride, int steps,
                     float* cbase, std::ptrdiff_t crs) {
  __m512 acc[MR][NV];
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm512_loadu_ps(cbase + r * crs + v * 16);
  for (int s = 0; s < steps; ++s) {
    const float* brow = bbase + s * bstride;
    __m512 bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = _mm512_loadu_ps(brow + v * 16);
    for (int r = 0; r < MR; ++r) {
      const __m512 av = _mm512_set1_ps(abase[r * ars + s * ass]);
      for (int v = 0; v < NV; ++v) acc[r][v] = _mm512_fmadd_ps(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) _mm512_storeu_ps(cbase + r * crs + v * 16, acc[r][v]);
}

template <int MR>
inline void TileMasked(const float* abase, std::ptrdiff_t ars, std::ptrdiff_t ass,
                       const float* bbase, std::ptrdiff_t bstride, int steps,
                       float* cbase, std::ptrdiff_t crs, __mmask16 mask) {
  __m512 acc[MR];
  for (int r = 0; r < MR; ++r)
    acc[r] = _mm512_maskz_loadu_ps(mask, cbase + r * crs);
  for (int s = 0; s < steps; ++s) {
    const __m512 bv = _mm512_maskz_loadu_ps(mask, bbase + s * bstride);
    for (int r = 0; r < MR; ++r) {
      const __m512 av = _mm512_set1_ps(abase[r * ars + s * ass]);
      acc[r] = _mm512_fmadd_ps(av, bv, acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) _mm512_mask_storeu_ps(cbase + r * crs, mask, acc[r]);
}

template <int NV>
inline void StripRows(const float* a, std::ptrdiff_t ars, std::ptrdiff_t ass, int rows,
                      const float* b, std::ptrdiff_t bstride, int steps, float* c,
                      std::ptrdiff_t crs) {
  int r0 = 0;
  for (; r0 + 8 <= rows; r0 += 8)
    TileFull<8, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs);
  if (rows - r0 >= 4) {
    TileFull<4, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs);
    r0 += 4;
  }
  switch (rows - r0) {
    case 3: TileFull<3, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs); break;
    case 2: TileFull<2, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs); break;
    case 1: TileFull<1, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs); break;
    default: break;
  }
}

inline void StripRowsMasked(const float* a, std::ptrdiff_t ars, std::ptrdiff_t ass,
                            int rows, const float* b, std::ptrdiff_t bstride, int steps,
                            float* c, std::ptrdiff_t crs, __mmask16 mask) {
  int r0 = 0;
  for (; r0 + 8 <= rows; r0 += 8)
    TileMasked<8>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask);
  if (rows - r0 >= 4) {
    TileMasked<4>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask);
    r0 += 4;
  }
  switch (rows - r0) {
    case 3: TileMasked<3>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask); break;
    case 2: TileMasked<2>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask); break;
    case 1: TileMasked<1>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask); break;
    default: break;
  }
}

// j-strips of 48/32/16 columns, then one masked tail.
inline void GemmGeneric(const float* a, std::ptrdiff_t ars, std::ptrdiff_t ass, int rows,
                        const float* b, std::ptrdiff_t bstride, int steps, float* c,
                        std::ptrdiff_t crs, int n) {
  int j = 0;
  for (; j + 48 <= n; j += 48)
    StripRows<3>(a, ars, ass, rows, b + j, bstride, steps, c + j, crs);
  if (j + 32 <= n) {
    StripRows<2>(a, ars, ass, rows, b + j, bstride, steps, c + j, crs);
    j += 32;
  }
  if (j + 16 <= n) {
    StripRows<1>(a, ars, ass, rows, b + j, bstride, steps, c + j, crs);
    j += 16;
  }
  if (j < n)
    StripRowsMasked(a, ars, ass, rows, b + j, bstride, steps, c + j, crs,
                    TailMask16(n - j));
}

// m == 1 GEMV: c[j] += sum_p a[p] * B[p, j] is pure B bandwidth (2 FLOPs
// per 4 bytes, B far exceeds L1 for the model's head layers), so the wide
// strips exist to keep the B stream long and sequential: 256 columns = 16
// zmm accumulators per strip, with a short software prefetch a few B rows
// ahead (the next row is a full `bstride` away, which defeats the
// next-line prefetcher at strip boundaries).
template <int NV>
inline void GemvStrip(const float* a, const float* b, std::ptrdiff_t bstride, int k,
                      float* c) {
  constexpr int kPrefetchRows = 4;
  __m512 acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm512_loadu_ps(c + v * 16);
  const int kpf = k > kPrefetchRows ? k - kPrefetchRows : 0;
  for (int p = 0; p < k; ++p) {
    const __m512 av = _mm512_set1_ps(a[p]);
    const float* brow = b + p * bstride;
    if (p < kpf) {
      const char* nxt = reinterpret_cast<const char*>(brow + kPrefetchRows * bstride);
      for (int v = 0; v < NV; v += 2) _mm_prefetch(nxt + v * 64, _MM_HINT_T0);
    }
    for (int v = 0; v < NV; ++v)
      acc[v] = _mm512_fmadd_ps(av, _mm512_loadu_ps(brow + v * 16), acc[v]);
  }
  for (int v = 0; v < NV; ++v) _mm512_storeu_ps(c + v * 16, acc[v]);
}

inline void Gemv(const float* a, const float* b, float* c, int k, int n) {
  int j = 0;
  for (; j + 256 <= n; j += 256) GemvStrip<16>(a, b + j, n, k, c + j);
  for (; j + 128 <= n; j += 128) GemvStrip<8>(a, b + j, n, k, c + j);
  for (; j + 64 <= n; j += 64) GemvStrip<4>(a, b + j, n, k, c + j);
  for (; j + 16 <= n; j += 16) GemvStrip<1>(a, b + j, n, k, c + j);
  if (j < n) {
    const __mmask16 mask = TailMask16(n - j);
    __m512 acc = _mm512_maskz_loadu_ps(mask, c + j);
    for (int p = 0; p < k; ++p)
      acc = _mm512_fmadd_ps(_mm512_set1_ps(a[p]),
                            _mm512_maskz_loadu_ps(mask, b + p * n + j), acc);
    _mm512_mask_storeu_ps(c + j, mask, acc);
  }
}

}  // namespace

void GemmAccum(const float* a, const float* b, float* c, int m, int k, int n) {
  if (m == 1) {
    Gemv(a, b, c, k, n);
    return;
  }
  GemmGeneric(a, k, 1, m, b, n, k, c, n, n);
}

void GemmAccumTN(const float* a, const float* dc, float* db, int m, int k, int n) {
  if (m == 1) {
    for (int p = 0; p < k; ++p) AxpyAccum(db + static_cast<std::size_t>(p) * n, dc, a[p], n);
    return;
  }
  GemmGeneric(a, 1, k, k, dc, n, m, db, n, n);
}

// dA[i, p] += dot(dC[i, :], B[p, :]). Four B rows share each loaded dC
// vector; _mm512_reduce_add_ps handles the horizontal sums (backward-pass
// kernel, the reduction cost is amortized over n-length dots).
void GemmAccumNT(const float* dc, const float* b, float* da, int m, int n, int k) {
  for (int i = 0; i < m; ++i) {
    const float* gi = dc + static_cast<std::size_t>(i) * n;
    float* dai = da + static_cast<std::size_t>(i) * k;
    int p0 = 0;
    for (; p0 + 4 <= k; p0 += 4) {
      const float* b0 = b + static_cast<std::size_t>(p0 + 0) * n;
      const float* b1 = b + static_cast<std::size_t>(p0 + 1) * n;
      const float* b2 = b + static_cast<std::size_t>(p0 + 2) * n;
      const float* b3 = b + static_cast<std::size_t>(p0 + 3) * n;
      __m512 a0 = _mm512_setzero_ps(), a1 = _mm512_setzero_ps();
      __m512 a2 = _mm512_setzero_ps(), a3 = _mm512_setzero_ps();
      int j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m512 g = _mm512_loadu_ps(gi + j);
        a0 = _mm512_fmadd_ps(g, _mm512_loadu_ps(b0 + j), a0);
        a1 = _mm512_fmadd_ps(g, _mm512_loadu_ps(b1 + j), a1);
        a2 = _mm512_fmadd_ps(g, _mm512_loadu_ps(b2 + j), a2);
        a3 = _mm512_fmadd_ps(g, _mm512_loadu_ps(b3 + j), a3);
      }
      if (j < n) {
        const __mmask16 mask = TailMask16(n - j);
        const __m512 g = _mm512_maskz_loadu_ps(mask, gi + j);
        a0 = _mm512_fmadd_ps(g, _mm512_maskz_loadu_ps(mask, b0 + j), a0);
        a1 = _mm512_fmadd_ps(g, _mm512_maskz_loadu_ps(mask, b1 + j), a1);
        a2 = _mm512_fmadd_ps(g, _mm512_maskz_loadu_ps(mask, b2 + j), a2);
        a3 = _mm512_fmadd_ps(g, _mm512_maskz_loadu_ps(mask, b3 + j), a3);
      }
      dai[p0 + 0] += _mm512_reduce_add_ps(a0);
      dai[p0 + 1] += _mm512_reduce_add_ps(a1);
      dai[p0 + 2] += _mm512_reduce_add_ps(a2);
      dai[p0 + 3] += _mm512_reduce_add_ps(a3);
    }
    for (; p0 < k; ++p0) {
      const float* bp = b + static_cast<std::size_t>(p0) * n;
      __m512 acc = _mm512_setzero_ps();
      int j = 0;
      for (; j + 16 <= n; j += 16)
        acc = _mm512_fmadd_ps(_mm512_loadu_ps(gi + j), _mm512_loadu_ps(bp + j), acc);
      if (j < n) {
        const __mmask16 mask = TailMask16(n - j);
        acc = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(mask, gi + j),
                              _mm512_maskz_loadu_ps(mask, bp + j), acc);
      }
      dai[p0] += _mm512_reduce_add_ps(acc);
    }
  }
}

// Elementwise kernels; masked epilogues keep every element on the vector
// path (no scalar tails), and lanes are independent elements so results
// match the scalar loops bitwise except for FMA contraction in AxpyAccum.

void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols) {
  const int vend = cols & ~15;
  const __mmask16 mask = TailMask16(cols - vend);
  for (int r = 0; r < rows; ++r) {
    float* orow = out + static_cast<std::size_t>(r) * cols;
    const float* xrow = x + static_cast<std::size_t>(r) * cols;
    int j = 0;
    for (; j < vend; j += 16)
      _mm512_storeu_ps(orow + j,
                       _mm512_add_ps(_mm512_loadu_ps(xrow + j), _mm512_loadu_ps(bias + j)));
    if (j < cols)
      _mm512_mask_storeu_ps(orow + j, mask,
                            _mm512_add_ps(_mm512_maskz_loadu_ps(mask, xrow + j),
                                          _mm512_maskz_loadu_ps(mask, bias + j)));
  }
}

void ColSumAccum(float* bg, const float* go, int rows, int cols) {
  int j = 0;
  for (; j + 16 <= cols; j += 16) {
    __m512 acc = _mm512_loadu_ps(bg + j);
    for (int r = 0; r < rows; ++r)
      acc = _mm512_add_ps(acc, _mm512_loadu_ps(go + static_cast<std::size_t>(r) * cols + j));
    _mm512_storeu_ps(bg + j, acc);
  }
  if (j < cols) {
    const __mmask16 mask = TailMask16(cols - j);
    __m512 acc = _mm512_maskz_loadu_ps(mask, bg + j);
    for (int r = 0; r < rows; ++r)
      acc = _mm512_add_ps(
          acc, _mm512_maskz_loadu_ps(mask, go + static_cast<std::size_t>(r) * cols + j));
    _mm512_mask_storeu_ps(bg + j, mask, acc);
  }
}

void AxpyAccum(float* y, const float* x, float alpha, std::size_t size) {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= size; i += 16)
    _mm512_storeu_ps(y + i,
                     _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i)));
  if (i < size) {
    const __mmask16 mask = TailMask16(static_cast<int>(size - i));
    _mm512_mask_storeu_ps(y + i, mask,
                          _mm512_fmadd_ps(va, _mm512_maskz_loadu_ps(mask, x + i),
                                          _mm512_maskz_loadu_ps(mask, y + i)));
  }
}

void AddAndZero(float* dst, float* src, std::size_t size) {
  const __m512 vz = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= size; i += 16) {
    _mm512_storeu_ps(dst + i,
                     _mm512_add_ps(_mm512_loadu_ps(dst + i), _mm512_loadu_ps(src + i)));
    _mm512_storeu_ps(src + i, vz);
  }
  if (i < size) {
    const __mmask16 mask = TailMask16(static_cast<int>(size - i));
    _mm512_mask_storeu_ps(dst + i, mask,
                          _mm512_add_ps(_mm512_maskz_loadu_ps(mask, dst + i),
                                        _mm512_maskz_loadu_ps(mask, src + i)));
    _mm512_mask_storeu_ps(src + i, mask, vz);
  }
}

void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha) {
  const __m512 va = _mm512_set1_ps(alpha);
  const __m512 vz = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= size; i += 16) {
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t s = 0; s < nsrcs; ++s) {
      acc = _mm512_add_ps(acc, _mm512_loadu_ps(srcs[s] + i));
      _mm512_storeu_ps(srcs[s] + i, vz);
    }
    _mm512_storeu_ps(dst + i, _mm512_mul_ps(acc, va));
  }
  if (i < size) {
    const __mmask16 mask = TailMask16(static_cast<int>(size - i));
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t s = 0; s < nsrcs; ++s) {
      acc = _mm512_add_ps(acc, _mm512_maskz_loadu_ps(mask, srcs[s] + i));
      _mm512_mask_storeu_ps(srcs[s] + i, mask, vz);
    }
    _mm512_mask_storeu_ps(dst + i, mask, _mm512_mul_ps(acc, va));
  }
}

}  // namespace m3::ml::kernels::avx512

#else  // !M3_KERNELS_AVX512 — stub tier; see kernels_avx2.cc.

#include <cstdlib>

namespace m3::ml::kernels::avx512 {

bool Compiled() { return false; }

void GemmAccum(const float*, const float*, float*, int, int, int) { std::abort(); }
void GemmAccumNT(const float*, const float*, float*, int, int, int) { std::abort(); }
void GemmAccumTN(const float*, const float*, float*, int, int, int) { std::abort(); }
void BiasAddRows(float*, const float*, const float*, int, int) { std::abort(); }
void ColSumAccum(float*, const float*, int, int) { std::abort(); }
void AxpyAccum(float*, const float*, float, std::size_t) { std::abort(); }
void AddAndZero(float*, float*, std::size_t) { std::abort(); }
void ReduceScaleAndZero(float*, float* const*, std::size_t, std::size_t, float) {
  std::abort();
}

}  // namespace m3::ml::kernels::avx512

#endif
