#include "ml/checkpoint.h"

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>

namespace m3::ml {
namespace {

constexpr std::uint32_t kMagic = 0x334D4C4Bu;  // "KLM3"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadPod(std::ifstream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("checkpoint: unexpected EOF");
  return v;
}

}  // namespace

void SaveCheckpoint(const std::string& path, const std::vector<Parameter*>& params) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("checkpoint: cannot open " + path + " for writing");
  WritePod(os, kMagic);
  WritePod(os, kVersion);
  WritePod(os, static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    WritePod(os, static_cast<std::uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    WritePod(os, static_cast<std::int32_t>(p->value.rows()));
    WritePod(os, static_cast<std::int32_t>(p->value.cols()));
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("checkpoint: write failed for " + path);
}

void LoadCheckpoint(const std::string& path, const std::vector<Parameter*>& params) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("checkpoint: cannot open " + path);
  if (ReadPod<std::uint32_t>(is) != kMagic) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  if (ReadPod<std::uint32_t>(is) != kVersion) {
    throw std::runtime_error("checkpoint: unsupported version in " + path);
  }
  const auto count = ReadPod<std::uint32_t>(is);

  std::map<std::string, Tensor> loaded;
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = ReadPod<std::uint32_t>(is);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    const auto rows = ReadPod<std::int32_t>(is);
    const auto cols = ReadPod<std::int32_t>(is);
    Tensor t(rows, cols);
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(t.size() * sizeof(float)));
    if (!is) throw std::runtime_error("checkpoint: truncated tensor " + name);
    loaded.emplace(std::move(name), std::move(t));
  }

  for (Parameter* p : params) {
    auto it = loaded.find(p->name);
    if (it == loaded.end()) {
      throw std::runtime_error("checkpoint: missing parameter " + p->name);
    }
    if (it->second.rows() != p->value.rows() || it->second.cols() != p->value.cols()) {
      throw std::runtime_error("checkpoint: shape mismatch for " + p->name);
    }
    p->value = it->second;
    p->grad = Tensor::Zeros(p->value.rows(), p->value.cols());
    p->adam_m = Tensor::Zeros(p->value.rows(), p->value.cols());
    p->adam_v = Tensor::Zeros(p->value.rows(), p->value.cols());
  }
}

bool IsCheckpointFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return is && magic == kMagic;
}

}  // namespace m3::ml
