#include "ml/checkpoint.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "util/fault.h"

#ifdef __unix__
#include <fcntl.h>
#include <unistd.h>
#endif

namespace m3::ml {
namespace {

namespace fs = std::filesystem;

constexpr std::uint32_t kMagic = 0x334D4C4Bu;  // "KLM3"
constexpr std::size_t kHeaderSizeV1 = 12;      // magic + version + count
constexpr std::size_t kHeaderSizeV2 = 20;      // magic + version + payload_size + crc
constexpr std::uint32_t kFlagOptimizer = 1u << 0;
constexpr std::uint32_t kFlagTrainer = 1u << 1;
// Bounds for declared sizes: anything beyond these is a corrupt or hostile
// file, rejected before any allocation is sized from it.
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::int32_t kMaxTensorDim = 1 << 24;

// ------------------------------------------------------------ payload I/O --

// Serializes PODs into a growable buffer; the whole payload is built in
// memory so the CRC can be computed before anything touches the disk.
class PayloadWriter {
 public:
  template <typename T>
  void Pod(const T& v) {
    const auto* p = reinterpret_cast<const char*>(&v);
    buf_.append(p, sizeof(T));
  }

  void Bytes(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  void TensorData(const Tensor& t) { Bytes(t.data(), t.size() * sizeof(float)); }

  const std::string& buf() const { return buf_; }

 private:
  std::string buf_;
};

// Bounds-checked reader over an in-memory payload. Every read validates the
// remaining length first, so a corrupt length field produces a clean
// std::runtime_error instead of a wild allocation or out-of-bounds read.
class PayloadReader {
 public:
  PayloadReader(const char* data, std::size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Pod() {
    Require(sizeof(T), "field");
    T v{};
    std::memcpy(&v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }

  std::string String(std::uint32_t len) {
    Require(len, "name");
    std::string s(data_ + off_, len);
    off_ += len;
    return s;
  }

  /// Validates the declared shape against the bounds and the remaining
  /// payload, then reads the tensor. The check precedes the allocation.
  Tensor TensorOf(std::int32_t rows, std::int32_t cols, const std::string& what) {
    if (rows <= 0 || cols <= 0 || rows > kMaxTensorDim || cols > kMaxTensorDim) {
      throw CheckpointError(StatusCode::kDataLoss, "checkpoint: invalid shape for " + what);
    }
    const std::uint64_t count =
        static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
    Require(count * sizeof(float), what.c_str());
    Tensor t(rows, cols);
    std::memcpy(t.data(), data_ + off_, count * sizeof(float));
    off_ += count * sizeof(float);
    return t;
  }

  bool AtEnd() const { return off_ == size_; }

 private:
  void Require(std::uint64_t n, const char* what) const {
    if (size_ - off_ < n) {
      throw CheckpointError(StatusCode::kDataLoss,
                            std::string("checkpoint: truncated payload reading ") + what);
    }
  }

  const char* data_;
  std::size_t size_;
  std::size_t off_ = 0;
};

struct NamedTensor {
  std::string name;
  Tensor value;
  Tensor adam_m;  // empty unless the optimizer section is present
  Tensor adam_v;
};

std::vector<NamedTensor> ParseParamSection(PayloadReader& r) {
  const auto count = r.Pod<std::uint32_t>();
  std::vector<NamedTensor> out;
  out.reserve(std::min<std::uint32_t>(count, 1024));
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto name_len = r.Pod<std::uint32_t>();
    if (name_len == 0 || name_len > kMaxNameLen) {
      throw CheckpointError(StatusCode::kDataLoss, "checkpoint: invalid parameter name length");
    }
    NamedTensor nt;
    nt.name = r.String(name_len);
    const auto rows = r.Pod<std::int32_t>();
    const auto cols = r.Pod<std::int32_t>();
    nt.value = r.TensorOf(rows, cols, "tensor " + nt.name);
    out.push_back(std::move(nt));
  }
  return out;
}

std::string BuildPayload(const std::vector<Parameter*>& params,
                         const CheckpointExtra* extra) {
  PayloadWriter w;
  std::uint32_t flags = 0;
  if (extra != nullptr && extra->has_optimizer) flags |= kFlagOptimizer;
  if (extra != nullptr && extra->has_trainer) flags |= kFlagTrainer;
  w.Pod(flags);
  w.Pod(static_cast<std::uint32_t>(params.size()));
  for (const Parameter* p : params) {
    w.Pod(static_cast<std::uint32_t>(p->name.size()));
    w.Bytes(p->name.data(), p->name.size());
    w.Pod(static_cast<std::int32_t>(p->value.rows()));
    w.Pod(static_cast<std::int32_t>(p->value.cols()));
    w.TensorData(p->value);
  }
  if (flags & kFlagOptimizer) {
    w.Pod(extra->adam_step);
    // Moments are stored in param-section order; shapes are implied.
    for (const Parameter* p : params) {
      w.TensorData(p->adam_m);
      w.TensorData(p->adam_v);
    }
  }
  if (flags & kFlagTrainer) {
    w.Pod(extra->epochs_done);
    w.Pod(extra->batch_offset);
    w.Pod(extra->partial_epoch_loss);
    w.Pod(extra->partial_epoch_samples);
    w.Pod(extra->lr);
    w.Pod(extra->split_seed);
    w.Pod(extra->shuffle_rng.state);
    w.Pod(extra->shuffle_rng.inc);
    w.Pod(extra->shuffle_rng.seed);
    w.Pod(extra->shuffle_rng.cached_normal);
    w.Pod(static_cast<std::uint8_t>(extra->shuffle_rng.has_cached_normal ? 1 : 0));
  }
  return w.buf();
}

std::string ReadWholeFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary | std::ios::ate);
  if (!is) throw CheckpointError(StatusCode::kNotFound, "checkpoint: cannot open " + path);
  const std::streamoff size = is.tellg();
  if (size < 0) throw CheckpointError(StatusCode::kUnavailable, "checkpoint: cannot stat " + path);
  std::string buf(static_cast<std::size_t>(size), '\0');
  is.seekg(0);
  is.read(buf.data(), size);
  if (!is) throw CheckpointError(StatusCode::kUnavailable, "checkpoint: short read on " + path);
  return buf;
}

#ifdef __unix__
// Flushes file contents (or, for directories, the rename) to stable storage;
// best-effort — a failure here does not invalidate the logical write.
void FsyncPath(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY : O_WRONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}
#endif

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t n) {
  // Standard reflected CRC-32; table built once on first use.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void SaveCheckpoint(const std::string& path, const std::vector<Parameter*>& params,
                    const CheckpointExtra* extra) {
  const std::string payload = BuildPayload(params, extra);
  const std::uint32_t crc = Crc32(payload.data(), payload.size());

  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
    if (ec) {
      throw CheckpointError(StatusCode::kUnavailable, "checkpoint: cannot create directory " +
                               target.parent_path().string() + ": " + ec.message());
    }
  }

  // Atomic write: everything goes to a sibling temp file which is renamed
  // over the target only after a successful flush, so a crash at any point
  // leaves either the old checkpoint or the complete new one — never a
  // partial file under the real name. The temp name carries the pid so
  // concurrent writers to the same target never interleave bytes or steal
  // each other's rename; last rename wins with a complete file either way.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) throw CheckpointError(StatusCode::kUnavailable, "checkpoint: cannot open " + tmp + " for writing");
    const std::uint32_t version = kCheckpointVersionLatest;
    const std::uint64_t payload_size = payload.size();
    os.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    os.write(reinterpret_cast<const char*>(&version), sizeof(version));
    os.write(reinterpret_cast<const char*>(&payload_size), sizeof(payload_size));
    os.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os) {
      std::error_code ec;
      fs::remove(tmp, ec);
      throw CheckpointError(StatusCode::kUnavailable, "checkpoint: write failed for " + tmp);
    }
  }
#ifdef __unix__
  FsyncPath(tmp, /*directory=*/false);
#endif
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    throw CheckpointError(StatusCode::kUnavailable, "checkpoint: cannot rename " + tmp + " to " + path);
  }
#ifdef __unix__
  if (target.has_parent_path()) FsyncPath(target.parent_path().string(), true);
#endif
}

CheckpointInfo LoadCheckpoint(const std::string& path,
                              const std::vector<Parameter*>& params) {
  M3_FAULT_POINT("checkpoint/load");
  const std::string file = ReadWholeFile(path);
  PayloadReader header(file.data(), std::min(file.size(), kHeaderSizeV2));
  if (file.size() < kHeaderSizeV1) {
    throw CheckpointError(StatusCode::kDataLoss, "checkpoint: file too short: " + path);
  }
  if (header.Pod<std::uint32_t>() != kMagic) {
    throw CheckpointError(StatusCode::kDataLoss, "checkpoint: bad magic in " + path);
  }
  const auto version = header.Pod<std::uint32_t>();

  CheckpointInfo info;
  info.version = version;
  std::vector<NamedTensor> loaded;

  if (version == 1) {
    // v1: [magic|version|count|entries...], no checksum, params only.
    PayloadReader r(file.data() + 8, file.size() - 8);
    loaded = ParseParamSection(r);
  } else if (version == 2) {
    if (file.size() < kHeaderSizeV2) {
      throw CheckpointError(StatusCode::kDataLoss, "checkpoint: truncated header in " + path);
    }
    const auto payload_size = header.Pod<std::uint64_t>();
    const auto crc = header.Pod<std::uint32_t>();
    if (payload_size != file.size() - kHeaderSizeV2) {
      throw CheckpointError(StatusCode::kDataLoss, "checkpoint: truncated file " + path);
    }
    if (Crc32(file.data() + kHeaderSizeV2, payload_size) != crc) {
      throw CheckpointError(StatusCode::kDataLoss, "checkpoint: CRC mismatch in " + path);
    }
    PayloadReader r(file.data() + kHeaderSizeV2, payload_size);
    const auto flags = r.Pod<std::uint32_t>();
    loaded = ParseParamSection(r);
    if (flags & kFlagOptimizer) {
      info.extra.has_optimizer = true;
      info.extra.adam_step = r.Pod<std::int64_t>();
      for (NamedTensor& nt : loaded) {
        nt.adam_m = r.TensorOf(nt.value.rows(), nt.value.cols(), "adam_m " + nt.name);
        nt.adam_v = r.TensorOf(nt.value.rows(), nt.value.cols(), "adam_v " + nt.name);
      }
    }
    if (flags & kFlagTrainer) {
      info.extra.has_trainer = true;
      info.extra.epochs_done = r.Pod<std::int32_t>();
      info.extra.batch_offset = r.Pod<std::int64_t>();
      info.extra.partial_epoch_loss = r.Pod<double>();
      info.extra.partial_epoch_samples = r.Pod<std::uint64_t>();
      info.extra.lr = r.Pod<float>();
      info.extra.split_seed = r.Pod<std::uint64_t>();
      info.extra.shuffle_rng.state = r.Pod<std::uint64_t>();
      info.extra.shuffle_rng.inc = r.Pod<std::uint64_t>();
      info.extra.shuffle_rng.seed = r.Pod<std::uint64_t>();
      info.extra.shuffle_rng.cached_normal = r.Pod<double>();
      info.extra.shuffle_rng.has_cached_normal = r.Pod<std::uint8_t>() != 0;
    }
  } else {
    throw CheckpointError(StatusCode::kInvalidArgument, "checkpoint: unsupported version in " + path);
  }

  // Validate everything against the destination parameters before applying
  // anything, so a throw never leaves `params` half-updated.
  std::unordered_map<std::string, const NamedTensor*> by_name;
  by_name.reserve(loaded.size());
  for (const NamedTensor& nt : loaded) by_name.emplace(nt.name, &nt);
  for (const Parameter* p : params) {
    auto it = by_name.find(p->name);
    if (it == by_name.end()) {
      throw CheckpointError(StatusCode::kInvalidArgument, "checkpoint: missing parameter " + p->name);
    }
    const Tensor& v = it->second->value;
    if (v.rows() != p->value.rows() || v.cols() != p->value.cols()) {
      throw CheckpointError(StatusCode::kInvalidArgument,
                            "checkpoint: shape mismatch for " + p->name + " (file " +
                                std::to_string(v.rows()) + "x" + std::to_string(v.cols()) +
                                ", model " + std::to_string(p->value.rows()) + "x" +
                                std::to_string(p->value.cols()) + ")");
    }
  }
  if (loaded.size() != params.size()) {
    // The file parsed cleanly but does not describe this model: either it
    // carries tensors no parameter claims (a different architecture) or
    // duplicate names. Reject rather than silently ignore the extras.
    std::unordered_set<std::string> want;
    want.reserve(params.size());
    for (const Parameter* p : params) want.insert(p->name);
    for (const NamedTensor& nt : loaded) {
      if (want.find(nt.name) == want.end()) {
        throw CheckpointError(StatusCode::kInvalidArgument,
                              "checkpoint: unknown parameter " + nt.name +
                                  " (file has " + std::to_string(loaded.size()) +
                                  " tensors, model has " + std::to_string(params.size()) +
                                  ")");
      }
    }
    throw CheckpointError(StatusCode::kInvalidArgument,
                          "checkpoint: duplicate parameter entries (file has " +
                              std::to_string(loaded.size()) + " tensors, model has " +
                              std::to_string(params.size()) + ")");
  }

  for (Parameter* p : params) {
    const NamedTensor& nt = *by_name.at(p->name);
    p->value = nt.value;
    p->grad = Tensor::Zeros(p->value.rows(), p->value.cols());
    if (info.extra.has_optimizer) {
      p->adam_m = nt.adam_m;
      p->adam_v = nt.adam_v;
    } else {
      p->adam_m = Tensor::Zeros(p->value.rows(), p->value.cols());
      p->adam_v = Tensor::Zeros(p->value.rows(), p->value.cols());
    }
  }
  return info;
}

bool IsCheckpointFile(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::uint32_t magic = 0;
  is.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return is && magic == kMagic;
}

std::vector<std::string> CheckpointRotationChain(const std::string& path, int keep) {
  std::vector<std::string> chain{path};
  for (int k = 1; k < keep; ++k) chain.push_back(path + "." + std::to_string(k));
  return chain;
}

void SaveCheckpointRotating(const std::string& path,
                            const std::vector<Parameter*>& params,
                            const CheckpointExtra* extra, int keep) {
  if (keep < 1) keep = 1;
  const std::vector<std::string> chain = CheckpointRotationChain(path, keep);
  std::error_code ec;
  // Shift oldest-first so each rename's destination is already free; a crash
  // mid-rotation at worst leaves a gap in the chain, never a corrupt file.
  fs::remove(chain.back(), ec);
  for (int k = keep - 1; k >= 1; --k) {
    if (fs::exists(chain[static_cast<std::size_t>(k - 1)], ec)) {
      fs::rename(chain[static_cast<std::size_t>(k - 1)],
                 chain[static_cast<std::size_t>(k)], ec);
    }
  }
  SaveCheckpoint(path, params, extra);
}

RecoveredCheckpoint LoadNewestValidCheckpoint(const std::string& path,
                                              const std::vector<Parameter*>& params,
                                              int keep) {
  if (keep < 1) keep = 1;
  std::string errors;
  for (const std::string& candidate : CheckpointRotationChain(path, keep)) {
    try {
      RecoveredCheckpoint rec;
      rec.info = LoadCheckpoint(candidate, params);
      rec.path = candidate;
      return rec;
    } catch (const std::runtime_error& e) {
      errors += std::string("\n  ") + e.what();
    }
  }
  throw CheckpointError(StatusCode::kNotFound,
                        "checkpoint: no loadable checkpoint for " + path + ":" +
                           errors);
}

}  // namespace m3::ml
