#include "ml/layers.h"

#include <cmath>

namespace m3::ml {

Linear::Linear(const std::string& name, int in, int out, Rng& rng)
    : w_(name + ".w", Tensor::Randn(in, out, rng, 1.0f / std::sqrt(static_cast<float>(in)))),
      b_(name + ".b", Tensor::Zeros(1, out)) {}

Var Linear::operator()(Graph& g, Var x, Act act) {
  return g.Linear(x, g.Param(&w_), g.Param(&b_), act);
}

void Linear::CollectParams(std::vector<Parameter*>& out) {
  out.push_back(&w_);
  out.push_back(&b_);
}

RmsNormLayer::RmsNormLayer(const std::string& name, int dim)
    : gain_(name + ".gain", Tensor::Zeros(1, dim)) {
  gain_.value.Fill(1.0f);
}

Var RmsNormLayer::operator()(Graph& g, Var x) { return g.RmsNorm(x, g.Param(&gain_)); }

void RmsNormLayer::CollectParams(std::vector<Parameter*>& out) { out.push_back(&gain_); }

Mlp::Mlp(const std::string& name, int in, int hidden, int out, Rng& rng)
    : fc1_(name + ".fc1", in, hidden, rng), fc2_(name + ".fc2", hidden, out, rng) {}

Var Mlp::operator()(Graph& g, Var x) { return fc2_(g, fc1_(g, x, Act::kRelu)); }

void Mlp::CollectParams(std::vector<Parameter*>& out) {
  fc1_.CollectParams(out);
  fc2_.CollectParams(out);
}

}  // namespace m3::ml
