#include "ml/arena.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace m3::ml {

TensorArena& TensorArena::ThreadLocal() {
  static thread_local TensorArena arena;
  return arena;
}

FloatVec TensorArena::Acquire(std::size_t n) {
  // Best fit: the smallest pooled buffer whose capacity covers the
  // request, rejected if it is more than kMaxSlack times too big.
  auto it = pool_.lower_bound(n);
  if (it != pool_.end() && it->first <= n * kMaxSlack) {
    FloatVec buf = std::move(it->second);
    pooled_bytes_ -= it->first * sizeof(float);
    pool_.erase(it);
    ++reuse_count_;
    return buf;
  }
  ++alloc_count_;
  return FloatVec();
}

Tensor TensorArena::GetZeros(int rows, int cols) {
  const std::size_t n = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  FloatVec buf = Acquire(n);
  buf.assign(n, 0.0f);  // within capacity for reused buffers: no realloc
  return Tensor(rows, cols, std::move(buf));
}

Tensor TensorArena::GetCopy(const Tensor& src) {
  const std::size_t n = src.size();
  FloatVec buf = Acquire(n);
  buf.resize(n);
  if (n > 0) std::memcpy(buf.data(), src.data(), n * sizeof(float));
  return Tensor(src.rows(), src.cols(), std::move(buf));
}

void TensorArena::Put(Tensor&& t) {
  if (t.empty()) return;
  FloatVec buf = t.ReleaseBuffer();
  const std::size_t cap = buf.capacity();
  pool_.emplace(cap, std::move(buf));
  pooled_bytes_ += cap * sizeof(float);
  // Evict largest-first once over budget: big buffers are the cheapest
  // to re-create relative to the memory they pin.
  while (pooled_bytes_ > kMaxPoolBytes && !pool_.empty()) {
    auto last = std::prev(pool_.end());
    pooled_bytes_ -= last->first * sizeof(float);
    pool_.erase(last);
  }
}

void TensorArena::Clear() {
  pool_.clear();
  pooled_bytes_ = 0;
}

}  // namespace m3::ml
