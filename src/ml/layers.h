// Trainable layers built on the autograd graph.
#pragma once

#include <string>
#include <vector>

#include "ml/autograd.h"
#include "ml/tensor.h"
#include "util/rng.h"

namespace m3::ml {

/// y = act(x W + b), with Kaiming-ish init (stddev = 1/sqrt(in)). The
/// whole layer is one fused tape op (Graph::Linear), including the
/// optional activation.
class Linear {
 public:
  Linear() = default;
  Linear(const std::string& name, int in, int out, Rng& rng);

  Var operator()(Graph& g, Var x, Act act = Act::kNone);
  void CollectParams(std::vector<Parameter*>& out);

  int in_features() const { return w_.value.rows(); }
  int out_features() const { return w_.value.cols(); }

 private:
  Parameter w_;  // [in, out]
  Parameter b_;  // [1, out]
};

/// Row-wise RMS norm with a learned gain (Llama-style).
class RmsNormLayer {
 public:
  RmsNormLayer() = default;
  RmsNormLayer(const std::string& name, int dim);

  Var operator()(Graph& g, Var x);
  void CollectParams(std::vector<Parameter*>& out);

 private:
  Parameter gain_;  // [1, dim]
};

/// Two-layer MLP: in -> hidden (ReLU) -> out.
class Mlp {
 public:
  Mlp() = default;
  Mlp(const std::string& name, int in, int hidden, int out, Rng& rng);

  Var operator()(Graph& g, Var x);
  void CollectParams(std::vector<Parameter*>& out);

 private:
  Linear fc1_;
  Linear fc2_;
};

}  // namespace m3::ml
