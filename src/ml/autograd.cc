#include "ml/autograd.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "ml/arena.h"
#include "ml/kernels.h"

namespace m3::ml {
namespace {

constexpr float kRmsEps = 1e-6f;

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
  }
}

// Tape tensors come from (and return to) the calling thread's arena, so
// steady-state training/inference on a thread performs no heap traffic
// for tape values, gradients, or saved activations.
Tensor ArenaZeros(int rows, int cols) {
  return TensorArena::ThreadLocal().GetZeros(rows, cols);
}

Tensor ArenaCopy(const Tensor& src) { return TensorArena::ThreadLocal().GetCopy(src); }

}  // namespace

Graph::~Graph() {
  TensorArena& arena = TensorArena::ThreadLocal();
  for (Node& n : nodes_) {
    arena.Put(std::move(n.val));
    arena.Put(std::move(n.grad));
    arena.Put(std::move(n.saved));
  }
}

Var Graph::Emit(Node node) {
  nodes_.push_back(std::move(node));
  return Var{static_cast<std::int32_t>(nodes_.size() - 1)};
}

Tensor& Graph::MutableGrad(std::int32_t id) {
  Node& n = nodes_[static_cast<std::size_t>(id)];
  if (n.op == Op::kParam) return ParamGradTarget(n);
  if (n.grad.empty()) {
    const Tensor& v = NodeValue(n);
    n.grad = ArenaZeros(v.rows(), v.cols());
  }
  return n.grad;
}

void Graph::AccumulateGrad(std::int32_t id, const Tensor& t) {
  Node& n = nodes_[static_cast<std::size_t>(id)];
  if (n.op == Op::kParam) {
    ParamGradTarget(n).AddInPlace(t);
    return;
  }
  // First touch copies instead of zero-filling then adding: the whole
  // tensor is overwritten either way.
  if (n.grad.empty()) {
    n.grad = ArenaCopy(t);
  } else {
    n.grad.AddInPlace(t);
  }
}

Var Graph::Input(const Tensor& value) {
  Node n;
  n.val = ArenaCopy(value);
  n.op = Op::kInput;
  return Emit(std::move(n));
}

Var Graph::Input(Tensor&& value) {
  Node n;
  n.val = std::move(value);
  n.op = Op::kInput;
  return Emit(std::move(n));
}

Var Graph::Param(Parameter* param) {
  Node n;
  n.ref = &param->value;  // aliased, not copied: ~40% of the old tape bytes
                          // were parameter copies (the param outlives the
                          // graph and is only updated between episodes)
  n.op = Op::kParam;
  n.param = param;
  return Emit(std::move(n));
}

Var Graph::MatMul(Var a, Var b) {
  const Tensor& A = value(a);
  const Tensor& B = value(b);
  if (A.cols() != B.rows()) throw std::invalid_argument("MatMul: inner dims differ");
  Tensor out = ArenaZeros(A.rows(), B.cols());
  kernels::GemmAccum(A.data(), B.data(), out.data(), A.rows(), A.cols(), B.cols());
  Node node;
  node.val = std::move(out);
  node.op = Op::kMatMul;
  node.in = {a.id, b.id};
  return Emit(std::move(node));
}

Var Graph::MatMulNT(Var a, Var b) {
  const Tensor& A = value(a);
  const Tensor& B = value(b);
  if (A.cols() != B.cols()) throw std::invalid_argument("MatMulNT: inner dims differ");
  Tensor out = ArenaZeros(A.rows(), B.rows());
  kernels::GemmAccumNT(A.data(), B.data(), out.data(), A.rows(), A.cols(), B.rows());
  Node node;
  node.val = std::move(out);
  node.op = Op::kMatMulNT;
  node.in = {a.id, b.id};
  return Emit(std::move(node));
}

Var Graph::Linear(Var x, Var w, Var b, Act act) {
  const Tensor& X = value(x);
  const Tensor& W = value(w);
  const Tensor& B = value(b);
  if (X.cols() != W.rows()) throw std::invalid_argument("Linear: inner dims differ");
  if (B.rows() != 1 || B.cols() != W.cols()) {
    throw std::invalid_argument("Linear: bias must be [1, out]");
  }
  const int m = X.rows(), k = X.cols(), n = W.cols();
  Tensor out = ArenaZeros(m, n);
  kernels::FillRowsWithBias(out.data(), B.data(), m, n);
  kernels::GemmAccum(X.data(), W.data(), out.data(), m, k, n);
  Node node;
  node.op = Op::kLinear;
  node.in = {x.id, w.id, b.id};
  node.aux = static_cast<int>(act);
  if (act == Act::kNone) {
    node.val = std::move(out);
  } else {
    // Keep the pre-activation for the backward pass; activate into a
    // fresh tape tensor.
    Tensor activated = ArenaZeros(m, n);
    if (act == Act::kRelu) {
      kernels::ReluForward(activated.data(), out.data(), out.size());
    } else {
      kernels::GeluForward(activated.data(), out.data(), out.size());
    }
    node.saved = std::move(out);
    node.val = std::move(activated);
  }
  return Emit(std::move(node));
}

Var Graph::Add(Var a, Var b) {
  const Tensor& A = value(a);
  const Tensor& B = value(b);
  Node node;
  if (B.rows() == 1 && A.rows() != 1 && B.cols() == A.cols()) {
    Tensor out = ArenaZeros(A.rows(), A.cols());
    kernels::BiasAddRows(out.data(), A.data(), B.data(), A.rows(), A.cols());
    node.val = std::move(out);
    node.op = Op::kAddBroadcast;
  } else {
    CheckSameShape(A, B, "Add");
    Tensor out = ArenaCopy(A);
    out.AddInPlace(B);
    node.val = std::move(out);
    node.op = Op::kAdd;
  }
  node.in = {a.id, b.id};
  return Emit(std::move(node));
}

Var Graph::Sub(Var a, Var b) {
  const Tensor& A = value(a);
  const Tensor& B = value(b);
  CheckSameShape(A, B, "Sub");
  Tensor out = ArenaCopy(A);
  kernels::AxpyAccum(out.data(), B.data(), -1.0f, out.size());
  Node node;
  node.val = std::move(out);
  node.op = Op::kSub;
  node.in = {a.id, b.id};
  return Emit(std::move(node));
}

Var Graph::Mul(Var a, Var b) {
  const Tensor& A = value(a);
  const Tensor& B = value(b);
  CheckSameShape(A, B, "Mul");
  Tensor out = ArenaCopy(A);
  for (std::size_t i = 0; i < out.size(); ++i) out.vec()[i] *= B.vec()[i];
  Node node;
  node.val = std::move(out);
  node.op = Op::kMul;
  node.in = {a.id, b.id};
  return Emit(std::move(node));
}

Var Graph::Scale(Var a, float s) {
  Tensor out = ArenaCopy(value(a));
  kernels::ScaleInPlace(out.data(), s, out.size());
  Node node;
  node.val = std::move(out);
  node.op = Op::kScale;
  node.in = {a.id};
  node.scalar = s;
  return Emit(std::move(node));
}

Var Graph::Relu(Var a) {
  const Tensor& A = value(a);
  Tensor out = ArenaZeros(A.rows(), A.cols());
  kernels::ReluForward(out.data(), A.data(), A.size());
  Node node;
  node.val = std::move(out);
  node.op = Op::kRelu;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::Gelu(Var a) {
  const Tensor& A = value(a);
  Tensor out = ArenaZeros(A.rows(), A.cols());
  kernels::GeluForward(out.data(), A.data(), A.size());
  Node node;
  node.val = std::move(out);
  node.op = Op::kGelu;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::Tanh(Var a) {
  Tensor out = ArenaCopy(value(a));
  for (float& v : out.vec()) v = std::tanh(v);
  Node node;
  node.val = std::move(out);
  node.op = Op::kTanh;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::Softmax(Var a) {
  Tensor out = ArenaCopy(value(a));
  kernels::SoftmaxRows(out.data(), out.rows(), out.cols());
  Node node;
  node.val = std::move(out);
  node.op = Op::kSoftmax;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::SoftmaxScaled(Var a, float scale) {
  Tensor out = ArenaCopy(value(a));
  kernels::SoftmaxScaledRows(out.data(), out.rows(), out.cols(), scale);
  Node node;
  node.val = std::move(out);
  node.op = Op::kScaledSoftmax;
  node.in = {a.id};
  node.scalar = scale;
  return Emit(std::move(node));
}

Var Graph::Transpose(Var a) {
  const Tensor& A = value(a);
  Tensor out = ArenaZeros(A.cols(), A.rows());
  for (int i = 0; i < A.rows(); ++i) {
    for (int j = 0; j < A.cols(); ++j) out.at(j, i) = A.at(i, j);
  }
  Node node;
  node.val = std::move(out);
  node.op = Op::kTranspose;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::RmsNorm(Var x, Var gain) {
  const Tensor& X = value(x);
  const Tensor& G = value(gain);
  if (G.rows() != 1 || G.cols() != X.cols()) {
    throw std::invalid_argument("RmsNorm: gain must be [1, cols]");
  }
  Tensor out = ArenaZeros(X.rows(), X.cols());
  Tensor inv_r = ArenaZeros(1, X.rows());
  kernels::RmsNormForward(out.data(), inv_r.data(), X.data(), G.data(), X.rows(),
                          X.cols(), kRmsEps);
  Node node;
  node.val = std::move(out);
  node.saved = std::move(inv_r);  // per-row 1/rms, reused by the backward pass
  node.op = Op::kRmsNorm;
  node.in = {x.id, gain.id};
  return Emit(std::move(node));
}

Var Graph::ConcatCols(const std::vector<Var>& xs) {
  if (xs.empty()) throw std::invalid_argument("ConcatCols: empty input");
  const int rows = value(xs[0]).rows();
  int cols = 0;
  for (Var v : xs) {
    if (value(v).rows() != rows) throw std::invalid_argument("ConcatCols: row mismatch");
    cols += value(v).cols();
  }
  Tensor out = ArenaZeros(rows, cols);
  int off = 0;
  for (Var v : xs) {
    const Tensor& X = value(v);
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < X.cols(); ++j) out.at(i, off + j) = X.at(i, j);
    }
    off += X.cols();
  }
  Node node;
  node.val = std::move(out);
  node.op = Op::kConcatCols;
  for (Var v : xs) node.in.push_back(v.id);
  return Emit(std::move(node));
}

Var Graph::SliceCols(Var a, int start, int len) {
  const Tensor& A = value(a);
  if (start < 0 || len <= 0 || start + len > A.cols()) {
    throw std::invalid_argument("SliceCols: out of range");
  }
  Tensor out = ArenaZeros(A.rows(), len);
  for (int i = 0; i < A.rows(); ++i) {
    for (int j = 0; j < len; ++j) out.at(i, j) = A.at(i, start + j);
  }
  Node node;
  node.val = std::move(out);
  node.op = Op::kSliceCols;
  node.in = {a.id};
  node.scalar = static_cast<float>(start);
  node.aux = len;
  return Emit(std::move(node));
}

Var Graph::SliceRows(Var a, int start, int len) {
  const Tensor& A = value(a);
  if (start < 0 || len <= 0 || start + len > A.rows()) {
    throw std::invalid_argument("SliceRows: out of range");
  }
  Tensor out = ArenaZeros(len, A.cols());
  std::memcpy(out.data(),
              A.data() + static_cast<std::size_t>(start) * A.cols(),
              static_cast<std::size_t>(len) * A.cols() * sizeof(float));
  Node node;
  node.val = std::move(out);
  node.op = Op::kSliceRows;
  node.in = {a.id};
  node.scalar = static_cast<float>(start);
  node.aux = len;
  return Emit(std::move(node));
}

Var Graph::MeanRows(Var a) {
  const Tensor& A = value(a);
  Tensor out = ArenaZeros(1, A.cols());
  kernels::ColSumAccum(out.data(), A.data(), A.rows(), A.cols());
  for (float& v : out.vec()) v /= static_cast<float>(A.rows());
  Node node;
  node.val = std::move(out);
  node.op = Op::kMeanRows;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::L1Loss(Var pred, Var target, Var mask) {
  const Tensor& P = value(pred);
  const Tensor& T = value(target);
  const Tensor& M = value(mask);
  CheckSameShape(P, T, "L1Loss");
  CheckSameShape(P, M, "L1Loss(mask)");
  float count = 0.0f;
  float total = 0.0f;
  for (std::size_t i = 0; i < P.size(); ++i) {
    total += std::abs(P.vec()[i] - T.vec()[i]) * M.vec()[i];
    count += M.vec()[i];
  }
  Tensor out(1, 1);
  out.at(0, 0) = total / std::max(count, 1.0f);
  Node node;
  node.val = std::move(out);
  node.op = Op::kL1Loss;
  node.in = {pred.id, target.id, mask.id};
  node.scalar = std::max(count, 1.0f);
  return Emit(std::move(node));
}

Var Graph::MseLoss(Var pred, Var target, Var mask) {
  const Tensor& P = value(pred);
  const Tensor& T = value(target);
  const Tensor& M = value(mask);
  CheckSameShape(P, T, "MseLoss");
  CheckSameShape(P, M, "MseLoss(mask)");
  float count = 0.0f;
  float total = 0.0f;
  for (std::size_t i = 0; i < P.size(); ++i) {
    const float d = P.vec()[i] - T.vec()[i];
    total += d * d * M.vec()[i];
    count += M.vec()[i];
  }
  Tensor out(1, 1);
  out.at(0, 0) = total / std::max(count, 1.0f);
  Node node;
  node.val = std::move(out);
  node.op = Op::kMseLoss;
  node.in = {pred.id, target.id, mask.id};
  node.scalar = std::max(count, 1.0f);
  return Emit(std::move(node));
}

void Graph::Backward(Var loss) {
  if (backward_done_) throw std::logic_error("Graph::Backward called twice");
  backward_done_ = true;
  const Tensor& L = value(loss);
  if (L.rows() != 1 || L.cols() != 1) {
    throw std::invalid_argument("Backward: loss must be scalar [1,1]");
  }
  {
    Tensor seed(1, 1);
    seed.at(0, 0) = 1.0f;
    AccumulateGrad(loss.id, seed);
  }

  for (std::int32_t id = static_cast<std::int32_t>(nodes_.size()) - 1; id >= 0; --id) {
    Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.grad.empty()) continue;  // no gradient flowed here
    const Tensor& go = n.grad;
    switch (n.op) {
      case Op::kInput:
        break;
      case Op::kParam:
        break;  // gradient already accumulated directly via ParamGradTarget
      case Op::kMatMul: {
        const Tensor& A = NodeValue(nodes_[static_cast<std::size_t>(n.in[0])]);
        const Tensor& B = NodeValue(nodes_[static_cast<std::size_t>(n.in[1])]);
        Tensor& ga = MutableGrad(n.in[0]);
        Tensor& gb = MutableGrad(n.in[1]);
        const int m = A.rows(), k = A.cols(), c = B.cols();
        kernels::GemmAccumNT(go.data(), B.data(), ga.data(), m, c, k);
        kernels::GemmAccumTN(A.data(), go.data(), gb.data(), m, k, c);
        break;
      }
      case Op::kMatMulNT: {
        // out = A * B^T with A [m,k], B [c,k]:
        //   dA += go * B   (plain GEMM), dB += go^T * A (TN GEMM).
        const Tensor& A = NodeValue(nodes_[static_cast<std::size_t>(n.in[0])]);
        const Tensor& B = NodeValue(nodes_[static_cast<std::size_t>(n.in[1])]);
        Tensor& ga = MutableGrad(n.in[0]);
        Tensor& gb = MutableGrad(n.in[1]);
        const int m = A.rows(), k = A.cols(), c = B.rows();
        kernels::GemmAccum(go.data(), B.data(), ga.data(), m, c, k);
        kernels::GemmAccumTN(go.data(), A.data(), gb.data(), m, c, k);
        break;
      }
      case Op::kLinear: {
        const Tensor& X = NodeValue(nodes_[static_cast<std::size_t>(n.in[0])]);
        const Tensor& W = NodeValue(nodes_[static_cast<std::size_t>(n.in[1])]);
        Tensor& gx = MutableGrad(n.in[0]);
        Tensor& gw = MutableGrad(n.in[1]);
        Tensor& gb = MutableGrad(n.in[2]);
        const int m = X.rows(), k = X.cols(), c = W.cols();
        const Act act = static_cast<Act>(n.aux);
        const float* d = go.data();
        if (act != Act::kNone) {
          // d = f'(pre) * go, overwriting the saved pre-activation in
          // place (strictly elementwise: saved[i] is read before written).
          float* pre = n.saved.data();
          if (act == Act::kRelu) {
            kernels::ReluBackwardInto(pre, go.data(), pre, go.size());
          } else {
            kernels::GeluBackwardInto(pre, go.data(), pre, go.size());
          }
          d = pre;
        }
        kernels::GemmAccumNT(d, W.data(), gx.data(), m, c, k);
        kernels::GemmAccumTN(X.data(), d, gw.data(), m, k, c);
        kernels::ColSumAccum(gb.data(), d, m, c);
        break;
      }
      case Op::kAdd: {
        AccumulateGrad(n.in[0], go);
        AccumulateGrad(n.in[1], go);
        break;
      }
      case Op::kAddBroadcast: {
        AccumulateGrad(n.in[0], go);
        Tensor& gb = MutableGrad(n.in[1]);
        kernels::ColSumAccum(gb.data(), go.data(), go.rows(), go.cols());
        break;
      }
      case Op::kSub: {
        AccumulateGrad(n.in[0], go);
        Tensor& gb = MutableGrad(n.in[1]);
        kernels::AxpyAccum(gb.data(), go.data(), -1.0f, go.size());
        break;
      }
      case Op::kMul: {
        const Tensor& A = NodeValue(nodes_[static_cast<std::size_t>(n.in[0])]);
        const Tensor& B = NodeValue(nodes_[static_cast<std::size_t>(n.in[1])]);
        Tensor& ga = MutableGrad(n.in[0]);
        Tensor& gb = MutableGrad(n.in[1]);
        for (std::size_t i = 0; i < go.size(); ++i) {
          ga.vec()[i] += go.vec()[i] * B.vec()[i];
          gb.vec()[i] += go.vec()[i] * A.vec()[i];
        }
        break;
      }
      case Op::kScale: {
        Tensor& ga = MutableGrad(n.in[0]);
        kernels::AxpyAccum(ga.data(), go.data(), n.scalar, go.size());
        break;
      }
      case Op::kRelu: {
        const Tensor& X = NodeValue(nodes_[static_cast<std::size_t>(n.in[0])]);
        Tensor& ga = MutableGrad(n.in[0]);
        kernels::ReluBackwardAccum(ga.data(), go.data(), X.data(), go.size());
        break;
      }
      case Op::kGelu: {
        const Tensor& X = NodeValue(nodes_[static_cast<std::size_t>(n.in[0])]);
        Tensor& ga = MutableGrad(n.in[0]);
        kernels::GeluBackwardAccum(ga.data(), go.data(), X.data(), go.size());
        break;
      }
      case Op::kTanh: {
        Tensor& ga = MutableGrad(n.in[0]);
        for (std::size_t i = 0; i < go.size(); ++i) {
          const float y = n.val.vec()[i];
          ga.vec()[i] += go.vec()[i] * (1.0f - y * y);
        }
        break;
      }
      case Op::kSoftmax: {
        Tensor& ga = MutableGrad(n.in[0]);
        kernels::SoftmaxBackwardAccum(ga.data(), go.data(), n.val.data(), n.val.rows(),
                                      n.val.cols());
        break;
      }
      case Op::kScaledSoftmax: {
        Tensor& ga = MutableGrad(n.in[0]);
        kernels::SoftmaxScaledBackwardAccum(ga.data(), go.data(), n.val.data(),
                                            n.val.rows(), n.val.cols(), n.scalar);
        break;
      }
      case Op::kTranspose: {
        Tensor& ga = MutableGrad(n.in[0]);
        for (int i = 0; i < go.rows(); ++i) {
          for (int j = 0; j < go.cols(); ++j) ga.at(j, i) += go.at(i, j);
        }
        break;
      }
      case Op::kRmsNorm: {
        const Tensor& X = NodeValue(nodes_[static_cast<std::size_t>(n.in[0])]);
        const Tensor& G = NodeValue(nodes_[static_cast<std::size_t>(n.in[1])]);
        Tensor& gx = MutableGrad(n.in[0]);
        Tensor& gg = MutableGrad(n.in[1]);
        kernels::RmsNormBackwardAccum(gx.data(), gg.data(), go.data(), X.data(),
                                      G.data(), n.saved.data(), X.rows(), X.cols());
        break;
      }
      case Op::kConcatCols: {
        int off = 0;
        for (std::int32_t in_id : n.in) {
          Tensor& g = MutableGrad(in_id);
          for (int i = 0; i < g.rows(); ++i) {
            for (int j = 0; j < g.cols(); ++j) g.at(i, j) += go.at(i, off + j);
          }
          off += g.cols();
        }
        break;
      }
      case Op::kSliceCols: {
        Tensor& ga = MutableGrad(n.in[0]);
        const int start = static_cast<int>(n.scalar);
        for (int i = 0; i < go.rows(); ++i) {
          for (int j = 0; j < go.cols(); ++j) ga.at(i, start + j) += go.at(i, j);
        }
        break;
      }
      case Op::kSliceRows: {
        Tensor& ga = MutableGrad(n.in[0]);
        const int start = static_cast<int>(n.scalar);
        kernels::AxpyAccum(ga.data() + static_cast<std::size_t>(start) * ga.cols(),
                           go.data(), 1.0f, go.size());
        break;
      }
      case Op::kMeanRows: {
        Tensor& ga = MutableGrad(n.in[0]);
        const float inv = 1.0f / static_cast<float>(ga.rows());
        for (int i = 0; i < ga.rows(); ++i) {
          for (int j = 0; j < ga.cols(); ++j) ga.at(i, j) += go.at(0, j) * inv;
        }
        break;
      }
      case Op::kL1Loss: {
        const Tensor& P = NodeValue(nodes_[static_cast<std::size_t>(n.in[0])]);
        const Tensor& T = NodeValue(nodes_[static_cast<std::size_t>(n.in[1])]);
        const Tensor& M = NodeValue(nodes_[static_cast<std::size_t>(n.in[2])]);
        Tensor& gp = MutableGrad(n.in[0]);
        const float g = go.at(0, 0) / n.scalar;
        for (std::size_t i = 0; i < P.size(); ++i) {
          const float d = P.vec()[i] - T.vec()[i];
          gp.vec()[i] += g * M.vec()[i] * (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f));
        }
        break;
      }
      case Op::kMseLoss: {
        const Tensor& P = NodeValue(nodes_[static_cast<std::size_t>(n.in[0])]);
        const Tensor& T = NodeValue(nodes_[static_cast<std::size_t>(n.in[1])]);
        const Tensor& M = NodeValue(nodes_[static_cast<std::size_t>(n.in[2])]);
        Tensor& gp = MutableGrad(n.in[0]);
        const float g = go.at(0, 0) / n.scalar;
        for (std::size_t i = 0; i < P.size(); ++i) {
          gp.vec()[i] += g * M.vec()[i] * 2.0f * (P.vec()[i] - T.vec()[i]);
        }
        break;
      }
    }
  }
}

}  // namespace m3::ml
