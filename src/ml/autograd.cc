#include "ml/autograd.h"

#include <cmath>
#include <stdexcept>

namespace m3::ml {
namespace {

constexpr float kRmsEps = 1e-6f;

float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
  }
}

}  // namespace

Var Graph::Emit(Node node) {
  nodes_.push_back(std::move(node));
  return Var{static_cast<std::int32_t>(nodes_.size() - 1)};
}

Tensor& Graph::MutableGrad(std::int32_t id) {
  Node& n = nodes_[static_cast<std::size_t>(id)];
  if (n.grad.empty()) n.grad = Tensor::Zeros(n.val.rows(), n.val.cols());
  return n.grad;
}

Var Graph::Input(Tensor value) {
  Node n;
  n.val = std::move(value);
  n.op = Op::kInput;
  return Emit(std::move(n));
}

Var Graph::Param(Parameter* param) {
  Node n;
  n.val = param->value;  // copy keeps the tape self-contained
  n.op = Op::kParam;
  n.param = param;
  return Emit(std::move(n));
}

Var Graph::MatMul(Var a, Var b) {
  const Tensor& A = value(a);
  const Tensor& B = value(b);
  if (A.cols() != B.rows()) throw std::invalid_argument("MatMul: inner dims differ");
  Tensor out(A.rows(), B.cols());
  const int m = A.rows(), k = A.cols(), n = B.cols();
  for (int i = 0; i < m; ++i) {
    for (int p = 0; p < k; ++p) {
      const float av = A.at(i, p);
      if (av == 0.0f) continue;
      const float* brow = B.data() + static_cast<std::size_t>(p) * n;
      float* orow = out.data() + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  Node node;
  node.val = std::move(out);
  node.op = Op::kMatMul;
  node.in = {a.id, b.id};
  return Emit(std::move(node));
}

Var Graph::Add(Var a, Var b) {
  const Tensor& A = value(a);
  const Tensor& B = value(b);
  Node node;
  if (B.rows() == 1 && A.rows() != 1 && B.cols() == A.cols()) {
    Tensor out = A;
    for (int i = 0; i < A.rows(); ++i) {
      for (int j = 0; j < A.cols(); ++j) out.at(i, j) += B.at(0, j);
    }
    node.val = std::move(out);
    node.op = Op::kAddBroadcast;
  } else {
    CheckSameShape(A, B, "Add");
    Tensor out = A;
    out.AddInPlace(B);
    node.val = std::move(out);
    node.op = Op::kAdd;
  }
  node.in = {a.id, b.id};
  return Emit(std::move(node));
}

Var Graph::Sub(Var a, Var b) {
  const Tensor& A = value(a);
  const Tensor& B = value(b);
  CheckSameShape(A, B, "Sub");
  Tensor out = A;
  for (std::size_t i = 0; i < out.size(); ++i) out.vec()[i] -= B.vec()[i];
  Node node;
  node.val = std::move(out);
  node.op = Op::kSub;
  node.in = {a.id, b.id};
  return Emit(std::move(node));
}

Var Graph::Mul(Var a, Var b) {
  const Tensor& A = value(a);
  const Tensor& B = value(b);
  CheckSameShape(A, B, "Mul");
  Tensor out = A;
  for (std::size_t i = 0; i < out.size(); ++i) out.vec()[i] *= B.vec()[i];
  Node node;
  node.val = std::move(out);
  node.op = Op::kMul;
  node.in = {a.id, b.id};
  return Emit(std::move(node));
}

Var Graph::Scale(Var a, float s) {
  Tensor out = value(a);
  for (float& v : out.vec()) v *= s;
  Node node;
  node.val = std::move(out);
  node.op = Op::kScale;
  node.in = {a.id};
  node.scalar = s;
  return Emit(std::move(node));
}

Var Graph::Relu(Var a) {
  Tensor out = value(a);
  for (float& v : out.vec()) v = v > 0.0f ? v : 0.0f;
  Node node;
  node.val = std::move(out);
  node.op = Op::kRelu;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::Gelu(Var a) {
  Tensor out = value(a);
  for (float& v : out.vec()) v = v * Sigmoid(1.702f * v);
  Node node;
  node.val = std::move(out);
  node.op = Op::kGelu;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::Tanh(Var a) {
  Tensor out = value(a);
  for (float& v : out.vec()) v = std::tanh(v);
  Node node;
  node.val = std::move(out);
  node.op = Op::kTanh;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::Softmax(Var a) {
  Tensor out = value(a);
  for (int i = 0; i < out.rows(); ++i) {
    float mx = out.at(i, 0);
    for (int j = 1; j < out.cols(); ++j) mx = std::max(mx, out.at(i, j));
    float sum = 0.0f;
    for (int j = 0; j < out.cols(); ++j) {
      out.at(i, j) = std::exp(out.at(i, j) - mx);
      sum += out.at(i, j);
    }
    for (int j = 0; j < out.cols(); ++j) out.at(i, j) /= sum;
  }
  Node node;
  node.val = std::move(out);
  node.op = Op::kSoftmax;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::Transpose(Var a) {
  const Tensor& A = value(a);
  Tensor out(A.cols(), A.rows());
  for (int i = 0; i < A.rows(); ++i) {
    for (int j = 0; j < A.cols(); ++j) out.at(j, i) = A.at(i, j);
  }
  Node node;
  node.val = std::move(out);
  node.op = Op::kTranspose;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::RmsNorm(Var x, Var gain) {
  const Tensor& X = value(x);
  const Tensor& G = value(gain);
  if (G.rows() != 1 || G.cols() != X.cols()) {
    throw std::invalid_argument("RmsNorm: gain must be [1, cols]");
  }
  Tensor out(X.rows(), X.cols());
  for (int i = 0; i < X.rows(); ++i) {
    float ss = 0.0f;
    for (int j = 0; j < X.cols(); ++j) ss += X.at(i, j) * X.at(i, j);
    const float r = std::sqrt(ss / static_cast<float>(X.cols()) + kRmsEps);
    for (int j = 0; j < X.cols(); ++j) out.at(i, j) = G.at(0, j) * X.at(i, j) / r;
  }
  Node node;
  node.val = std::move(out);
  node.op = Op::kRmsNorm;
  node.in = {x.id, gain.id};
  return Emit(std::move(node));
}

Var Graph::ConcatCols(const std::vector<Var>& xs) {
  if (xs.empty()) throw std::invalid_argument("ConcatCols: empty input");
  const int rows = value(xs[0]).rows();
  int cols = 0;
  for (Var v : xs) {
    if (value(v).rows() != rows) throw std::invalid_argument("ConcatCols: row mismatch");
    cols += value(v).cols();
  }
  Tensor out(rows, cols);
  int off = 0;
  for (Var v : xs) {
    const Tensor& X = value(v);
    for (int i = 0; i < rows; ++i) {
      for (int j = 0; j < X.cols(); ++j) out.at(i, off + j) = X.at(i, j);
    }
    off += X.cols();
  }
  Node node;
  node.val = std::move(out);
  node.op = Op::kConcatCols;
  for (Var v : xs) node.in.push_back(v.id);
  return Emit(std::move(node));
}

Var Graph::SliceCols(Var a, int start, int len) {
  const Tensor& A = value(a);
  if (start < 0 || len <= 0 || start + len > A.cols()) {
    throw std::invalid_argument("SliceCols: out of range");
  }
  Tensor out(A.rows(), len);
  for (int i = 0; i < A.rows(); ++i) {
    for (int j = 0; j < len; ++j) out.at(i, j) = A.at(i, start + j);
  }
  Node node;
  node.val = std::move(out);
  node.op = Op::kSliceCols;
  node.in = {a.id};
  node.scalar = static_cast<float>(start);
  node.aux = len;
  return Emit(std::move(node));
}

Var Graph::MeanRows(Var a) {
  const Tensor& A = value(a);
  Tensor out(1, A.cols());
  for (int i = 0; i < A.rows(); ++i) {
    for (int j = 0; j < A.cols(); ++j) out.at(0, j) += A.at(i, j);
  }
  for (float& v : out.vec()) v /= static_cast<float>(A.rows());
  Node node;
  node.val = std::move(out);
  node.op = Op::kMeanRows;
  node.in = {a.id};
  return Emit(std::move(node));
}

Var Graph::L1Loss(Var pred, Var target, Var mask) {
  const Tensor& P = value(pred);
  const Tensor& T = value(target);
  const Tensor& M = value(mask);
  CheckSameShape(P, T, "L1Loss");
  CheckSameShape(P, M, "L1Loss(mask)");
  float count = 0.0f;
  float total = 0.0f;
  for (std::size_t i = 0; i < P.size(); ++i) {
    total += std::abs(P.vec()[i] - T.vec()[i]) * M.vec()[i];
    count += M.vec()[i];
  }
  Tensor out(1, 1);
  out.at(0, 0) = total / std::max(count, 1.0f);
  Node node;
  node.val = std::move(out);
  node.op = Op::kL1Loss;
  node.in = {pred.id, target.id, mask.id};
  node.scalar = std::max(count, 1.0f);
  return Emit(std::move(node));
}

Var Graph::MseLoss(Var pred, Var target, Var mask) {
  const Tensor& P = value(pred);
  const Tensor& T = value(target);
  const Tensor& M = value(mask);
  CheckSameShape(P, T, "MseLoss");
  CheckSameShape(P, M, "MseLoss(mask)");
  float count = 0.0f;
  float total = 0.0f;
  for (std::size_t i = 0; i < P.size(); ++i) {
    const float d = P.vec()[i] - T.vec()[i];
    total += d * d * M.vec()[i];
    count += M.vec()[i];
  }
  Tensor out(1, 1);
  out.at(0, 0) = total / std::max(count, 1.0f);
  Node node;
  node.val = std::move(out);
  node.op = Op::kMseLoss;
  node.in = {pred.id, target.id, mask.id};
  node.scalar = std::max(count, 1.0f);
  return Emit(std::move(node));
}

void Graph::Backward(Var loss) {
  if (backward_done_) throw std::logic_error("Graph::Backward called twice");
  backward_done_ = true;
  const Tensor& L = value(loss);
  if (L.rows() != 1 || L.cols() != 1) {
    throw std::invalid_argument("Backward: loss must be scalar [1,1]");
  }
  MutableGrad(loss.id).at(0, 0) = 1.0f;

  for (std::int32_t id = static_cast<std::int32_t>(nodes_.size()) - 1; id >= 0; --id) {
    Node& n = nodes_[static_cast<std::size_t>(id)];
    if (n.grad.empty()) continue;  // no gradient flowed here
    const Tensor& go = n.grad;
    switch (n.op) {
      case Op::kInput:
        break;
      case Op::kParam:
        n.param->grad.AddInPlace(go);
        break;
      case Op::kMatMul: {
        const Tensor& A = nodes_[static_cast<std::size_t>(n.in[0])].val;
        const Tensor& B = nodes_[static_cast<std::size_t>(n.in[1])].val;
        Tensor& ga = MutableGrad(n.in[0]);
        Tensor& gb = MutableGrad(n.in[1]);
        const int m = A.rows(), k = A.cols(), c = B.cols();
        // ga += go * B^T
        for (int i = 0; i < m; ++i) {
          for (int j = 0; j < c; ++j) {
            const float g = go.at(i, j);
            if (g == 0.0f) continue;
            const float* brow = B.data();
            for (int p = 0; p < k; ++p) ga.at(i, p) += g * brow[static_cast<std::size_t>(p) * c + j];
          }
        }
        // gb += A^T * go
        for (int p = 0; p < k; ++p) {
          for (int i = 0; i < m; ++i) {
            const float a = A.at(i, p);
            if (a == 0.0f) continue;
            const float* grow = go.data() + static_cast<std::size_t>(i) * c;
            float* gbrow = gb.data() + static_cast<std::size_t>(p) * c;
            for (int j = 0; j < c; ++j) gbrow[j] += a * grow[j];
          }
        }
        break;
      }
      case Op::kAdd: {
        MutableGrad(n.in[0]).AddInPlace(go);
        MutableGrad(n.in[1]).AddInPlace(go);
        break;
      }
      case Op::kAddBroadcast: {
        MutableGrad(n.in[0]).AddInPlace(go);
        Tensor& gb = MutableGrad(n.in[1]);
        for (int i = 0; i < go.rows(); ++i) {
          for (int j = 0; j < go.cols(); ++j) gb.at(0, j) += go.at(i, j);
        }
        break;
      }
      case Op::kSub: {
        MutableGrad(n.in[0]).AddInPlace(go);
        Tensor& gb = MutableGrad(n.in[1]);
        for (std::size_t i = 0; i < go.size(); ++i) gb.vec()[i] -= go.vec()[i];
        break;
      }
      case Op::kMul: {
        const Tensor& A = nodes_[static_cast<std::size_t>(n.in[0])].val;
        const Tensor& B = nodes_[static_cast<std::size_t>(n.in[1])].val;
        Tensor& ga = MutableGrad(n.in[0]);
        Tensor& gb = MutableGrad(n.in[1]);
        for (std::size_t i = 0; i < go.size(); ++i) {
          ga.vec()[i] += go.vec()[i] * B.vec()[i];
          gb.vec()[i] += go.vec()[i] * A.vec()[i];
        }
        break;
      }
      case Op::kScale: {
        Tensor& ga = MutableGrad(n.in[0]);
        for (std::size_t i = 0; i < go.size(); ++i) ga.vec()[i] += go.vec()[i] * n.scalar;
        break;
      }
      case Op::kRelu: {
        const Tensor& X = nodes_[static_cast<std::size_t>(n.in[0])].val;
        Tensor& ga = MutableGrad(n.in[0]);
        for (std::size_t i = 0; i < go.size(); ++i) {
          if (X.vec()[i] > 0.0f) ga.vec()[i] += go.vec()[i];
        }
        break;
      }
      case Op::kGelu: {
        const Tensor& X = nodes_[static_cast<std::size_t>(n.in[0])].val;
        Tensor& ga = MutableGrad(n.in[0]);
        for (std::size_t i = 0; i < go.size(); ++i) {
          const float x = X.vec()[i];
          const float s = Sigmoid(1.702f * x);
          ga.vec()[i] += go.vec()[i] * (s + x * 1.702f * s * (1.0f - s));
        }
        break;
      }
      case Op::kTanh: {
        Tensor& ga = MutableGrad(n.in[0]);
        for (std::size_t i = 0; i < go.size(); ++i) {
          const float y = n.val.vec()[i];
          ga.vec()[i] += go.vec()[i] * (1.0f - y * y);
        }
        break;
      }
      case Op::kSoftmax: {
        Tensor& ga = MutableGrad(n.in[0]);
        for (int i = 0; i < n.val.rows(); ++i) {
          float dot = 0.0f;
          for (int j = 0; j < n.val.cols(); ++j) dot += go.at(i, j) * n.val.at(i, j);
          for (int j = 0; j < n.val.cols(); ++j) {
            ga.at(i, j) += n.val.at(i, j) * (go.at(i, j) - dot);
          }
        }
        break;
      }
      case Op::kTranspose: {
        Tensor& ga = MutableGrad(n.in[0]);
        for (int i = 0; i < go.rows(); ++i) {
          for (int j = 0; j < go.cols(); ++j) ga.at(j, i) += go.at(i, j);
        }
        break;
      }
      case Op::kRmsNorm: {
        const Tensor& X = nodes_[static_cast<std::size_t>(n.in[0])].val;
        const Tensor& G = nodes_[static_cast<std::size_t>(n.in[1])].val;
        Tensor& gx = MutableGrad(n.in[0]);
        Tensor& gg = MutableGrad(n.in[1]);
        const int c = X.cols();
        for (int i = 0; i < X.rows(); ++i) {
          float ss = 0.0f;
          for (int j = 0; j < c; ++j) ss += X.at(i, j) * X.at(i, j);
          const float r = std::sqrt(ss / static_cast<float>(c) + kRmsEps);
          // s = sum_j go_j * g_j * x_j
          float s = 0.0f;
          for (int j = 0; j < c; ++j) s += go.at(i, j) * G.at(0, j) * X.at(i, j);
          for (int j = 0; j < c; ++j) {
            gx.at(i, j) += go.at(i, j) * G.at(0, j) / r -
                           X.at(i, j) * s / (static_cast<float>(c) * r * r * r);
            gg.at(0, j) += go.at(i, j) * X.at(i, j) / r;
          }
        }
        break;
      }
      case Op::kConcatCols: {
        int off = 0;
        for (std::int32_t in_id : n.in) {
          Tensor& g = MutableGrad(in_id);
          for (int i = 0; i < g.rows(); ++i) {
            for (int j = 0; j < g.cols(); ++j) g.at(i, j) += go.at(i, off + j);
          }
          off += g.cols();
        }
        break;
      }
      case Op::kSliceCols: {
        Tensor& ga = MutableGrad(n.in[0]);
        const int start = static_cast<int>(n.scalar);
        for (int i = 0; i < go.rows(); ++i) {
          for (int j = 0; j < go.cols(); ++j) ga.at(i, start + j) += go.at(i, j);
        }
        break;
      }
      case Op::kMeanRows: {
        Tensor& ga = MutableGrad(n.in[0]);
        const float inv = 1.0f / static_cast<float>(ga.rows());
        for (int i = 0; i < ga.rows(); ++i) {
          for (int j = 0; j < ga.cols(); ++j) ga.at(i, j) += go.at(0, j) * inv;
        }
        break;
      }
      case Op::kL1Loss: {
        const Tensor& P = nodes_[static_cast<std::size_t>(n.in[0])].val;
        const Tensor& T = nodes_[static_cast<std::size_t>(n.in[1])].val;
        const Tensor& M = nodes_[static_cast<std::size_t>(n.in[2])].val;
        Tensor& gp = MutableGrad(n.in[0]);
        const float g = go.at(0, 0) / n.scalar;
        for (std::size_t i = 0; i < P.size(); ++i) {
          const float d = P.vec()[i] - T.vec()[i];
          gp.vec()[i] += g * M.vec()[i] * (d > 0.0f ? 1.0f : (d < 0.0f ? -1.0f : 0.0f));
        }
        break;
      }
      case Op::kMseLoss: {
        const Tensor& P = nodes_[static_cast<std::size_t>(n.in[0])].val;
        const Tensor& T = nodes_[static_cast<std::size_t>(n.in[1])].val;
        const Tensor& M = nodes_[static_cast<std::size_t>(n.in[2])].val;
        Tensor& gp = MutableGrad(n.in[0]);
        const float g = go.at(0, 0) / n.scalar;
        for (std::size_t i = 0; i < P.size(); ++i) {
          gp.vec()[i] += g * M.vec()[i] * 2.0f * (P.vec()[i] - T.vec()[i]);
        }
        break;
      }
    }
  }
}

}  // namespace m3::ml
