// Adam optimizer (Kingma & Ba, 2015).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/tensor.h"

namespace m3::ml {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float grad_clip = 1.0f;  // global-norm clip; <= 0 disables
};

class Adam {
 public:
  using Options = AdamOptions;

  explicit Adam(std::vector<Parameter*> params, Options opts = Options());

  /// Applies one update using the accumulated gradients, then zeroes them.
  void Step();
  void ZeroGrad();

  /// Scales all gradients by 1/n (for minibatch accumulation).
  void ScaleGrads(float factor);

  const Options& options() const { return opts_; }
  void set_lr(float lr) { opts_.lr = lr; }

  /// Update count so far; with the per-parameter first/second moments (which
  /// live in Parameter::adam_m / adam_v) this is the optimizer's entire
  /// state, so exporting {step(), moments} and re-importing them resumes
  /// training with identical bias correction.
  std::int64_t step() const;
  void set_step(std::int64_t step);

 private:
  std::vector<Parameter*> params_;
  Options opts_;
  std::int64_t step_ = 0;
};

}  // namespace m3::ml
