// Adam optimizer (Kingma & Ba, 2015).
#pragma once

#include <vector>

#include "ml/tensor.h"

namespace m3::ml {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float grad_clip = 1.0f;  // global-norm clip; <= 0 disables
};

class Adam {
 public:
  using Options = AdamOptions;

  explicit Adam(std::vector<Parameter*> params, Options opts = Options());

  /// Applies one update using the accumulated gradients, then zeroes them.
  void Step();
  void ZeroGrad();

  /// Scales all gradients by 1/n (for minibatch accumulation).
  void ScaleGrads(float factor);

  const Options& options() const { return opts_; }
  void set_lr(float lr) { opts_.lr = lr; }

 private:
  std::vector<Parameter*> params_;
  Options opts_;
  long step_ = 0;
};

}  // namespace m3::ml
