// Internal per-implementation entry points behind the ml/kernels.h
// dispatch seam. Each SIMD tier lives in its own translation unit compiled
// with exactly the ISA flags it needs (see src/CMakeLists.txt):
//
//   tiled   kernels.cc        cache-blocked portable C++ (autovectorized)
//   avx2    kernels_avx2.cc   256-bit FMA intrinsics (-mavx2 -mfma)
//   avx512  kernels_avx512.cc 512-bit intrinsics (-mavx512f)
//
// The AVX TUs are compiled whenever the *compiler* accepts the flags; the
// dispatcher additionally gates on runtime CPUID (util/cpu_features.h), so
// a binary built on/for an AVX-512 box still runs everywhere. When the
// compiler cannot target an ISA, the TU compiles as a stub whose
// Compiled() returns false and whose kernels abort if ever reached.
//
// This header is internal to the ml/ kernels; everything else goes through
// the dispatching functions in ml/kernels.h.
#pragma once

#include <cstddef>

namespace m3::ml::kernels {

namespace tiled {
void GemmAccum(const float* a, const float* b, float* c, int m, int k, int n);
void GemmAccumNT(const float* dc, const float* b, float* da, int m, int n, int k);
void GemmAccumTN(const float* a, const float* dc, float* db, int m, int k, int n);
}  // namespace tiled

// Scalar reference loops for the elementwise kernels (shared by the naive
// and tiled tiers, and the parity baseline for the AVX tiers).
namespace scalar {
void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols);
void ColSumAccum(float* bg, const float* go, int rows, int cols);
void AxpyAccum(float* y, const float* x, float alpha, std::size_t size);
void AddAndZero(float* dst, float* src, std::size_t size);
void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha);
}  // namespace scalar

namespace avx2 {
/// True when this TU was built with real AVX2/FMA code.
bool Compiled();
void GemmAccum(const float* a, const float* b, float* c, int m, int k, int n);
void GemmAccumNT(const float* dc, const float* b, float* da, int m, int n, int k);
void GemmAccumTN(const float* a, const float* dc, float* db, int m, int k, int n);
void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols);
void ColSumAccum(float* bg, const float* go, int rows, int cols);
void AxpyAccum(float* y, const float* x, float alpha, std::size_t size);
void AddAndZero(float* dst, float* src, std::size_t size);
void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha);
}  // namespace avx2

namespace avx512 {
/// True when this TU was built with real AVX-512 code.
bool Compiled();
void GemmAccum(const float* a, const float* b, float* c, int m, int k, int n);
void GemmAccumNT(const float* dc, const float* b, float* da, int m, int n, int k);
void GemmAccumTN(const float* a, const float* dc, float* db, int m, int k, int n);
void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols);
void ColSumAccum(float* bg, const float* go, int rows, int cols);
void AxpyAccum(float* y, const float* x, float alpha, std::size_t size);
void AddAndZero(float* dst, float* src, std::size_t size);
void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha);
}  // namespace avx512

}  // namespace m3::ml::kernels
