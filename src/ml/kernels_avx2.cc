// 256-bit AVX2/FMA kernel tier. Compiled with -mavx2 -mfma when the
// compiler supports it (src/CMakeLists.txt defines M3_KERNELS_AVX2); the
// dispatcher in kernels.cc additionally gates on runtime CPUID, so these
// bodies only ever execute on hardware with AVX2+FMA. Without the define
// the TU degrades to stubs so the build stays portable.
//
// Layout notes shared by all three GEMM entry points:
//   - everything is row-major and accumulates into the output;
//   - loads/stores are unaligned (Tensor buffers are 64B-aligned, but
//     tile edges and sliced views are not);
//   - column remainders < 8 use maskload/maskstore, so kernels never read
//     or write past the end of a row.
#include "ml/kernels_impl.h"

#if defined(M3_KERNELS_AVX2)

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

namespace m3::ml::kernels::avx2 {

bool Compiled() { return true; }

namespace {

// Mask with the low `rem` (1..7) lanes enabled, for ragged row tails.
inline __m256i TailMask8(int rem) {
  alignas(32) static const std::int32_t kMask[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                     0,  0,  0,  0,  0,  0,  0,  0};
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(kMask + 8 - rem));
}

inline float HSum(__m256 v) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

// ----------------------------------------------------------------------
// Generic register-tiled accumulation panel.
//
// Computes, for r in [0,MR) and a j-tile of NV*8 columns:
//   C[r, :] += sum_s a(r, s) * B[s, :]
// where a(r, s) = abase[r*ars + s*ass] and B row s starts at
// bbase + s*bstride. Instantiating the strides covers both GEMM flavors
// that broadcast from A:
//   forward C += A*B : a(r,s) = A[(i0+r)*k + s]      -> ars = k, ass = 1
//   TN  dB += A^T*dC : a(r,s) = A[s*k + (p0+r)]      -> ars = 1, ass = k
// The MR*NV accumulator tile lives in ymm registers for the whole s loop;
// MR=6, NV=2 uses 12 accumulators + 2 B vectors + 1 broadcast = 15 of the
// 16 ymm registers (an MR=4/NV=3 tile needs exactly 16 and measurably
// spills, costing ~35% on square_256).
// ----------------------------------------------------------------------
template <int MR, int NV>
inline void TileFull(const float* abase, std::ptrdiff_t ars, std::ptrdiff_t ass,
                     const float* bbase, std::ptrdiff_t bstride, int steps,
                     float* cbase, std::ptrdiff_t crs) {
  __m256 acc[MR][NV];
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) acc[r][v] = _mm256_loadu_ps(cbase + r * crs + v * 8);
  for (int s = 0; s < steps; ++s) {
    const float* brow = bbase + s * bstride;
    __m256 bv[NV];
    for (int v = 0; v < NV; ++v) bv[v] = _mm256_loadu_ps(brow + v * 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(abase[r * ars + s * ass]);
      for (int v = 0; v < NV; ++v) acc[r][v] = _mm256_fmadd_ps(av, bv[v], acc[r][v]);
    }
  }
  for (int r = 0; r < MR; ++r)
    for (int v = 0; v < NV; ++v) _mm256_storeu_ps(cbase + r * crs + v * 8, acc[r][v]);
}

// Masked variant for the final <8 columns.
template <int MR>
inline void TileMasked(const float* abase, std::ptrdiff_t ars, std::ptrdiff_t ass,
                       const float* bbase, std::ptrdiff_t bstride, int steps,
                       float* cbase, std::ptrdiff_t crs, __m256i mask) {
  __m256 acc[MR];
  for (int r = 0; r < MR; ++r) acc[r] = _mm256_maskload_ps(cbase + r * crs, mask);
  for (int s = 0; s < steps; ++s) {
    const __m256 bv = _mm256_maskload_ps(bbase + s * bstride, mask);
    for (int r = 0; r < MR; ++r) {
      const __m256 av = _mm256_set1_ps(abase[r * ars + s * ass]);
      acc[r] = _mm256_fmadd_ps(av, bv, acc[r]);
    }
  }
  for (int r = 0; r < MR; ++r) _mm256_maskstore_ps(cbase + r * crs, mask, acc[r]);
}

template <int NV>
inline void StripRows(const float* a, std::ptrdiff_t ars, std::ptrdiff_t ass, int rows,
                      const float* b, std::ptrdiff_t bstride, int steps, float* c,
                      std::ptrdiff_t crs) {
  int r0 = 0;
  for (; r0 + 6 <= rows; r0 += 6)
    TileFull<6, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs);
  switch (rows - r0) {
    case 5: TileFull<5, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs); break;
    case 4: TileFull<4, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs); break;
    case 3: TileFull<3, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs); break;
    case 2: TileFull<2, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs); break;
    case 1: TileFull<1, NV>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs); break;
    default: break;
  }
}

inline void StripRowsMasked(const float* a, std::ptrdiff_t ars, std::ptrdiff_t ass,
                            int rows, const float* b, std::ptrdiff_t bstride, int steps,
                            float* c, std::ptrdiff_t crs, __m256i mask) {
  int r0 = 0;
  for (; r0 + 6 <= rows; r0 += 6)
    TileMasked<6>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask);
  switch (rows - r0) {
    case 5: TileMasked<5>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask); break;
    case 4: TileMasked<4>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask); break;
    case 3: TileMasked<3>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask); break;
    case 2: TileMasked<2>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask); break;
    case 1: TileMasked<1>(a + r0 * ars, ars, ass, b, bstride, steps, c + r0 * crs, crs, mask); break;
    default: break;
  }
}

// Shared driver: C[r, j] += sum_s a(r,s) * B[s, j], j-strips of 16/8
// columns then a masked tail.
inline void GemmGeneric(const float* a, std::ptrdiff_t ars, std::ptrdiff_t ass, int rows,
                        const float* b, std::ptrdiff_t bstride, int steps, float* c,
                        std::ptrdiff_t crs, int n) {
  int j = 0;
  for (; j + 16 <= n; j += 16)
    StripRows<2>(a, ars, ass, rows, b + j, bstride, steps, c + j, crs);
  if (j + 8 <= n) {
    StripRows<1>(a, ars, ass, rows, b + j, bstride, steps, c + j, crs);
    j += 8;
  }
  if (j < n)
    StripRowsMasked(a, ars, ass, rows, b + j, bstride, steps, c + j, crs, TailMask8(n - j));
}

// ----------------------------------------------------------------------
// GEMV path for m == 1 (head_fc1 / head_fc2 and any 1-row slice):
// c[j] += sum_p a[p] * B[p, j]. A single output row lets the column tile
// widen to 64 (8 accumulators), so each broadcast of a[p] feeds 8 FMAs.
// ----------------------------------------------------------------------
template <int NV>
inline void GemvStrip(const float* a, const float* b, std::ptrdiff_t bstride, int k,
                      float* c) {
  __m256 acc[NV];
  for (int v = 0; v < NV; ++v) acc[v] = _mm256_loadu_ps(c + v * 8);
  for (int p = 0; p < k; ++p) {
    const __m256 av = _mm256_set1_ps(a[p]);
    const float* brow = b + p * bstride;
    for (int v = 0; v < NV; ++v)
      acc[v] = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + v * 8), acc[v]);
  }
  for (int v = 0; v < NV; ++v) _mm256_storeu_ps(c + v * 8, acc[v]);
}

inline void Gemv(const float* a, const float* b, float* c, int k, int n) {
  int j = 0;
  for (; j + 64 <= n; j += 64) GemvStrip<8>(a, b + j, n, k, c + j);
  for (; j + 32 <= n; j += 32) GemvStrip<4>(a, b + j, n, k, c + j);
  for (; j + 8 <= n; j += 8) GemvStrip<1>(a, b + j, n, k, c + j);
  if (j < n) {
    const __m256i mask = TailMask8(n - j);
    __m256 acc = _mm256_maskload_ps(c + j, mask);
    for (int p = 0; p < k; ++p)
      acc = _mm256_fmadd_ps(_mm256_set1_ps(a[p]), _mm256_maskload_ps(b + p * n + j, mask),
                            acc);
    _mm256_maskstore_ps(c + j, mask, acc);
  }
}

}  // namespace

void GemmAccum(const float* a, const float* b, float* c, int m, int k, int n) {
  if (m == 1) {
    Gemv(a, b, c, k, n);
    return;
  }
  // a(r,s) = A[r*k + s]: row stride k, step stride 1.
  GemmGeneric(a, k, 1, m, b, n, k, c, n, n);
}

void GemmAccumTN(const float* a, const float* dc, float* db, int m, int k, int n) {
  if (m == 1) {
    // Rank-1 update: dB[p, :] += a[p] * dC[0, :], one axpy per dB row.
    for (int p = 0; p < k; ++p) AxpyAccum(db + static_cast<std::size_t>(p) * n, dc, a[p], n);
    return;
  }
  // dB rows are indexed by p: a(r,s) = A[s*k + (p0+r)]: row stride 1,
  // step stride k, steps = m, B rows are dC rows.
  GemmGeneric(a, 1, k, k, dc, n, m, db, n, n);
}

// dA[i, p] += dot(dC[i, :], B[p, :]): four B rows share each loaded dC
// segment, two accumulators per row hide FMA latency, and the four dots
// reduce to one __m128 via hadd so the 4 outputs store with one add.
void GemmAccumNT(const float* dc, const float* b, float* da, int m, int n, int k) {
  for (int i = 0; i < m; ++i) {
    const float* gi = dc + static_cast<std::size_t>(i) * n;
    float* dai = da + static_cast<std::size_t>(i) * k;
    int p0 = 0;
    for (; p0 + 4 <= k; p0 += 4) {
      const float* b0 = b + static_cast<std::size_t>(p0 + 0) * n;
      const float* b1 = b + static_cast<std::size_t>(p0 + 1) * n;
      const float* b2 = b + static_cast<std::size_t>(p0 + 2) * n;
      const float* b3 = b + static_cast<std::size_t>(p0 + 3) * n;
      __m256 a00 = _mm256_setzero_ps(), a01 = _mm256_setzero_ps();
      __m256 a10 = _mm256_setzero_ps(), a11 = _mm256_setzero_ps();
      __m256 a20 = _mm256_setzero_ps(), a21 = _mm256_setzero_ps();
      __m256 a30 = _mm256_setzero_ps(), a31 = _mm256_setzero_ps();
      int j = 0;
      for (; j + 16 <= n; j += 16) {
        const __m256 g0 = _mm256_loadu_ps(gi + j);
        const __m256 g1 = _mm256_loadu_ps(gi + j + 8);
        a00 = _mm256_fmadd_ps(g0, _mm256_loadu_ps(b0 + j), a00);
        a01 = _mm256_fmadd_ps(g1, _mm256_loadu_ps(b0 + j + 8), a01);
        a10 = _mm256_fmadd_ps(g0, _mm256_loadu_ps(b1 + j), a10);
        a11 = _mm256_fmadd_ps(g1, _mm256_loadu_ps(b1 + j + 8), a11);
        a20 = _mm256_fmadd_ps(g0, _mm256_loadu_ps(b2 + j), a20);
        a21 = _mm256_fmadd_ps(g1, _mm256_loadu_ps(b2 + j + 8), a21);
        a30 = _mm256_fmadd_ps(g0, _mm256_loadu_ps(b3 + j), a30);
        a31 = _mm256_fmadd_ps(g1, _mm256_loadu_ps(b3 + j + 8), a31);
      }
      for (; j + 8 <= n; j += 8) {
        const __m256 g0 = _mm256_loadu_ps(gi + j);
        a00 = _mm256_fmadd_ps(g0, _mm256_loadu_ps(b0 + j), a00);
        a10 = _mm256_fmadd_ps(g0, _mm256_loadu_ps(b1 + j), a10);
        a20 = _mm256_fmadd_ps(g0, _mm256_loadu_ps(b2 + j), a20);
        a30 = _mm256_fmadd_ps(g0, _mm256_loadu_ps(b3 + j), a30);
      }
      float t0 = 0.0f, t1 = 0.0f, t2 = 0.0f, t3 = 0.0f;
      for (; j < n; ++j) {
        const float g = gi[j];
        t0 += g * b0[j];
        t1 += g * b1[j];
        t2 += g * b2[j];
        t3 += g * b3[j];
      }
      // hadd pairs lanes within each 128-bit half; two rounds interleave
      // the four row sums, the final cross-half add yields [s0 s1 s2 s3].
      const __m256 h0 = _mm256_hadd_ps(_mm256_add_ps(a00, a01), _mm256_add_ps(a10, a11));
      const __m256 h1 = _mm256_hadd_ps(_mm256_add_ps(a20, a21), _mm256_add_ps(a30, a31));
      const __m256 h2 = _mm256_hadd_ps(h0, h1);
      const __m128 sums =
          _mm_add_ps(_mm256_castps256_ps128(h2), _mm256_extractf128_ps(h2, 1));
      const __m128 tails = _mm_setr_ps(t0, t1, t2, t3);
      _mm_storeu_ps(dai + p0, _mm_add_ps(_mm_loadu_ps(dai + p0), _mm_add_ps(sums, tails)));
    }
    for (; p0 < k; ++p0) {
      const float* bp = b + static_cast<std::size_t>(p0) * n;
      __m256 a0 = _mm256_setzero_ps(), a1 = _mm256_setzero_ps();
      int j = 0;
      for (; j + 16 <= n; j += 16) {
        a0 = _mm256_fmadd_ps(_mm256_loadu_ps(gi + j), _mm256_loadu_ps(bp + j), a0);
        a1 = _mm256_fmadd_ps(_mm256_loadu_ps(gi + j + 8), _mm256_loadu_ps(bp + j + 8), a1);
      }
      for (; j + 8 <= n; j += 8)
        a0 = _mm256_fmadd_ps(_mm256_loadu_ps(gi + j), _mm256_loadu_ps(bp + j), a0);
      float s = HSum(_mm256_add_ps(a0, a1));
      for (; j < n; ++j) s += gi[j] * bp[j];
      dai[p0] += s;
    }
  }
}

// ----------------------------------------------------------------------
// Elementwise kernels. Scalar tails replicate the reference loops exactly,
// and lanes are independent elements, so these are bitwise identical to
// kernels.cc's scalar namespace except where FMA contraction applies
// (AxpyAccum), which the parity tests cover with a tolerance.
// ----------------------------------------------------------------------

void BiasAddRows(float* out, const float* x, const float* bias, int rows, int cols) {
  for (int r = 0; r < rows; ++r) {
    float* orow = out + static_cast<std::size_t>(r) * cols;
    const float* xrow = x + static_cast<std::size_t>(r) * cols;
    int j = 0;
    for (; j + 8 <= cols; j += 8)
      _mm256_storeu_ps(orow + j,
                       _mm256_add_ps(_mm256_loadu_ps(xrow + j), _mm256_loadu_ps(bias + j)));
    for (; j < cols; ++j) orow[j] = xrow[j] + bias[j];
  }
}

void ColSumAccum(float* bg, const float* go, int rows, int cols) {
  int j = 0;
  for (; j + 8 <= cols; j += 8) {
    __m256 acc = _mm256_loadu_ps(bg + j);
    for (int r = 0; r < rows; ++r)
      acc = _mm256_add_ps(acc, _mm256_loadu_ps(go + static_cast<std::size_t>(r) * cols + j));
    _mm256_storeu_ps(bg + j, acc);
  }
  for (; j < cols; ++j) {
    float acc = bg[j];
    for (int r = 0; r < rows; ++r) acc += go[static_cast<std::size_t>(r) * cols + j];
    bg[j] = acc;
  }
}

void AxpyAccum(float* y, const float* x, float alpha, std::size_t size) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8)
    _mm256_storeu_ps(y + i,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  for (; i < size; ++i) y[i] += alpha * x[i];
}

void AddAndZero(float* dst, float* src, std::size_t size) {
  const __m256 vz = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    _mm256_storeu_ps(dst + i,
                     _mm256_add_ps(_mm256_loadu_ps(dst + i), _mm256_loadu_ps(src + i)));
    _mm256_storeu_ps(src + i, vz);
  }
  for (; i < size; ++i) {
    dst[i] += src[i];
    src[i] = 0.0f;
  }
}

void ReduceScaleAndZero(float* dst, float* const* srcs, std::size_t nsrcs, std::size_t size,
                        float alpha) {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vz = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (std::size_t s = 0; s < nsrcs; ++s) {
      acc = _mm256_add_ps(acc, _mm256_loadu_ps(srcs[s] + i));
      _mm256_storeu_ps(srcs[s] + i, vz);
    }
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(acc, va));
  }
  for (; i < size; ++i) {
    float acc = 0.0f;
    for (std::size_t s = 0; s < nsrcs; ++s) {
      acc += srcs[s][i];
      srcs[s][i] = 0.0f;
    }
    dst[i] = acc * alpha;
  }
}

}  // namespace m3::ml::kernels::avx2

#else  // !M3_KERNELS_AVX2 — compiler cannot target AVX2; stub tier.

#include <cstdlib>

namespace m3::ml::kernels::avx2 {

bool Compiled() { return false; }

// The dispatcher never routes here when Compiled() is false; reaching a
// stub is a dispatch bug, so fail loudly.
void GemmAccum(const float*, const float*, float*, int, int, int) { std::abort(); }
void GemmAccumNT(const float*, const float*, float*, int, int, int) { std::abort(); }
void GemmAccumTN(const float*, const float*, float*, int, int, int) { std::abort(); }
void BiasAddRows(float*, const float*, const float*, int, int) { std::abort(); }
void ColSumAccum(float*, const float*, int, int) { std::abort(); }
void AxpyAccum(float*, const float*, float, std::size_t) { std::abort(); }
void AddAndZero(float*, float*, std::size_t) { std::abort(); }
void ReduceScaleAndZero(float*, float* const*, std::size_t, std::size_t, float) {
  std::abort();
}

}  // namespace m3::ml::kernels::avx2

#endif
