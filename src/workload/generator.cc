#include "workload/generator.h"

#include <algorithm>
#include <stdexcept>

#include "workload/arrivals.h"

namespace m3 {

std::vector<double> LinkLoads(const Topology& topo, const std::vector<Flow>& flows,
                              Ns duration) {
  std::vector<double> bytes(topo.num_links(), 0.0);
  for (const Flow& f : flows) {
    for (LinkId l : f.path) bytes[static_cast<std::size_t>(l)] += static_cast<double>(f.size);
  }
  std::vector<double> loads(topo.num_links(), 0.0);
  if (duration <= 0) return loads;
  for (std::size_t l = 0; l < loads.size(); ++l) {
    const Bpns rate = topo.link(static_cast<LinkId>(l)).rate;
    loads[l] = bytes[l] / (rate * static_cast<double>(duration));
  }
  return loads;
}

GeneratedWorkload GenerateWorkload(const FatTree& ft, const TrafficMatrix& tm,
                                   const SizeDist& sizes, const WorkloadSpec& spec) {
  if (spec.num_flows <= 0) throw std::invalid_argument("num_flows must be positive");
  if (spec.max_load <= 0.0 || spec.max_load >= 1.0) {
    throw std::invalid_argument("max_load must be in (0, 1)");
  }
  if (tm.num_racks() != ft.num_racks()) {
    throw std::invalid_argument("traffic matrix size does not match topology");
  }

  Rng rng(spec.seed);
  Rng size_rng = rng.Fork(1);
  Rng pair_rng = rng.Fork(2);
  Rng host_rng = rng.Fork(3);
  Rng arrival_rng = rng.Fork(4);

  const int hosts_per_rack = ft.config().hosts_per_rack;
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(spec.num_flows));
  for (int i = 0; i < spec.num_flows; ++i) {
    const auto [src_rack, dst_rack] = tm.SamplePair(pair_rng);
    const int src_host = src_rack * hosts_per_rack +
                         static_cast<int>(host_rng.NextBounded(static_cast<std::uint64_t>(hosts_per_rack)));
    const int dst_host = dst_rack * hosts_per_rack +
                         static_cast<int>(host_rng.NextBounded(static_cast<std::uint64_t>(hosts_per_rack)));
    Flow f;
    f.id = static_cast<FlowId>(i);
    f.src = ft.host(src_host);
    f.dst = ft.host(dst_host);
    f.size = sizes.Sample(size_rng);
    f.path = ft.RouteBetween(src_host, dst_host,
                             spec.seed ^ (static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL));
    flows.push_back(std::move(f));
  }

  // Duration so the busiest link sits exactly at max_load: the per-link byte
  // totals are fixed by the draw above, so T = max_l(bytes_l / rate_l) / load.
  const Topology& topo = ft.topo();
  std::vector<double> link_bytes(topo.num_links(), 0.0);
  for (const Flow& f : flows) {
    for (LinkId l : f.path) link_bytes[static_cast<std::size_t>(l)] += static_cast<double>(f.size);
  }
  double max_drain_time = 0.0;
  LinkId busiest = kInvalidLink;
  for (std::size_t l = 0; l < link_bytes.size(); ++l) {
    const double t = link_bytes[l] / topo.link(static_cast<LinkId>(l)).rate;
    if (t > max_drain_time) {
      max_drain_time = t;
      busiest = static_cast<LinkId>(l);
    }
  }
  const Ns duration = static_cast<Ns>(max_drain_time / spec.max_load) + 1;

  const std::vector<double> normalized =
      NormalizedLogNormalArrivals(spec.num_flows, spec.burstiness_sigma, arrival_rng);
  const std::vector<Ns> arrivals = ScaleArrivals(normalized, duration);
  for (int i = 0; i < spec.num_flows; ++i) {
    flows[static_cast<std::size_t>(i)].arrival = arrivals[static_cast<std::size_t>(i)];
  }
  std::sort(flows.begin(), flows.end(),
            [](const Flow& a, const Flow& b) { return a.arrival < b.arrival; });
  // Re-id in arrival order so downstream indexing by FlowId is stable.
  for (std::size_t i = 0; i < flows.size(); ++i) flows[i].id = static_cast<FlowId>(i);

  GeneratedWorkload out;
  out.flows = std::move(flows);
  out.duration = duration;
  out.busiest_link = busiest;
  const std::vector<double> loads = LinkLoads(topo, out.flows, duration);
  out.realized_max_load = loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
  return out;
}

}  // namespace m3
