// Flow-trace import/export: a plain-text interchange format so users can
// bring production traces to the estimator or archive generated workloads.
//
// Format (whitespace-separated, '#' comments):
//   m3-trace v1
//   <id> <src_host> <dst_host> <size_bytes> <arrival_ns> [priority]
//
// Hosts are fat-tree host indices (0..num_hosts-1). Routes are re-derived
// on load via ECMP keyed by flow id, matching the generator's convention;
// the exact spine choice may differ from the original run, but the route
// distribution is identical.
#pragma once

#include <string>
#include <vector>

#include "topo/fat_tree.h"
#include "util/status.h"
#include "workload/flow.h"

namespace m3 {

/// Writes `flows` (which must reference hosts of `ft`) to `path`.
/// kInvalidArgument for foreign endpoints, kUnavailable on I/O failure.
Status SaveTraceOr(const std::string& path, const FatTree& ft,
                   const std::vector<Flow>& flows);

/// Reads a trace and materializes flows on `ft` (routes re-derived).
/// kNotFound for a missing file, kInvalidArgument for malformed records
/// (with the offending path:line), kDataLoss for a record truncated at
/// end-of-file.
StatusOr<std::vector<Flow>> LoadTraceOr(const std::string& path, const FatTree& ft);

/// Throwing wrappers (std::runtime_error carrying Status::ToString()) for
/// callers without Status plumbing.
void SaveTrace(const std::string& path, const FatTree& ft, const std::vector<Flow>& flows);
std::vector<Flow> LoadTrace(const std::string& path, const FatTree& ft);

}  // namespace m3
