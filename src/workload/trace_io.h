// Flow-trace import/export: a plain-text interchange format so users can
// bring production traces to the estimator or archive generated workloads.
//
// Format (whitespace-separated, '#' comments):
//   m3-trace v1
//   <id> <src_host> <dst_host> <size_bytes> <arrival_ns> [priority]
//
// Hosts are fat-tree host indices (0..num_hosts-1). Routes are re-derived
// on load via ECMP keyed by flow id, matching the generator's convention;
// the exact spine choice may differ from the original run, but the route
// distribution is identical.
#pragma once

#include <string>
#include <vector>

#include "topo/fat_tree.h"
#include "workload/flow.h"

namespace m3 {

/// Writes `flows` (which must reference hosts of `ft`) to `path`.
/// Throws std::runtime_error on I/O failure or foreign endpoints.
void SaveTrace(const std::string& path, const FatTree& ft, const std::vector<Flow>& flows);

/// Reads a trace and materializes flows on `ft` (routes re-derived).
/// Throws std::runtime_error on parse errors or out-of-range hosts.
std::vector<Flow> LoadTrace(const std::string& path, const FatTree& ft);

}  // namespace m3
