// Network-wide workload generation: draws flows from a traffic matrix and a
// size distribution, routes them with ECMP, and scales arrival times so the
// busiest link reaches a target maximum utilization ("max load", Tables 2-3).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/fat_tree.h"
#include "workload/flow.h"
#include "workload/size_dist.h"
#include "workload/traffic_matrix.h"

namespace m3 {

struct WorkloadSpec {
  int num_flows = 10000;
  double burstiness_sigma = 1.0;  // log-normal inter-arrival shape
  double max_load = 0.5;          // target peak link utilization in (0, 1)
  std::uint64_t seed = 1;
};

struct GeneratedWorkload {
  std::vector<Flow> flows;   // sorted by arrival time
  Ns duration = 0;           // arrival-time horizon used for load scaling
  double realized_max_load = 0.0;
  LinkId busiest_link = kInvalidLink;
};

/// Generates `spec.num_flows` flows on the fat tree: rack pair from `tm`,
/// hosts uniform within racks, size from `sizes`, ECMP route keyed by flow
/// id, log-normal arrivals scaled to hit `spec.max_load` on the busiest
/// link.
GeneratedWorkload GenerateWorkload(const FatTree& ft, const TrafficMatrix& tm,
                                   const SizeDist& sizes, const WorkloadSpec& spec);

/// Per-link offered load (bytes carried / capacity / duration) of a flow
/// set; used for load verification and by the generator itself.
std::vector<double> LinkLoads(const Topology& topo, const std::vector<Flow>& flows,
                              Ns duration);

}  // namespace m3
