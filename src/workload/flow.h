// A flow: the unit of work in every simulator in this repository.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.h"
#include "util/units.h"

namespace m3 {

using FlowId = std::int32_t;

/// Number of strict-priority classes supported by the simulators. Class 0
/// is the highest priority. The paper leaves priority classes to future
/// work (§3.6); both substrate simulators support them here.
constexpr int kNumPriorities = 3;

struct Flow {
  FlowId id = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bytes size = 0;     // application bytes to transfer
  Ns arrival = 0;     // time the flow starts
  Route path;         // static route, known in advance (§3.2)
  std::uint8_t priority = 0;  // strict-priority class, 0 = highest
};

/// Result of simulating one flow.
struct FlowResult {
  FlowId id = 0;
  Bytes size = 0;
  Ns fct = 0;        // measured flow completion time
  Ns ideal_fct = 0;  // unloaded-network FCT for this size and path
  double slowdown = 1.0;  // fct / ideal_fct
  // Loss accounting (packet simulator only; fluid models never lose data).
  std::int32_t retransmits = 0;  // go-back-N recovery episodes
  std::int32_t timeouts = 0;     // RTO firings
};

}  // namespace m3
