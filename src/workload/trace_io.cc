#include "workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/fault.h"

namespace m3 {
namespace {

constexpr const char* kHeader = "m3-trace v1";

std::string At(const std::string& path, int lineno) {
  return path + ":" + std::to_string(lineno);
}

}  // namespace

Status SaveTraceOr(const std::string& path, const FatTree& ft,
                   const std::vector<Flow>& flows) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) return Status::Unavailable("SaveTrace: cannot open " + path);
  os << kHeader << "\n";
  os << "# id src_host dst_host size_bytes arrival_ns priority\n";
  for (const Flow& f : flows) {
    const int src = ft.HostIndexOf(f.src);
    const int dst = ft.HostIndexOf(f.dst);
    if (src < 0 || dst < 0) {
      return Status::InvalidArgument("SaveTrace: flow " + std::to_string(f.id) +
                                     " does not terminate at hosts of this topology");
    }
    os << f.id << ' ' << src << ' ' << dst << ' ' << f.size << ' ' << f.arrival << ' '
       << static_cast<int>(f.priority) << "\n";
  }
  if (!os) return Status::Unavailable("SaveTrace: write failed for " + path);
  return Status::Ok();
}

StatusOr<std::vector<Flow>> LoadTraceOr(const std::string& path, const FatTree& ft) {
  try {
    M3_FAULT_POINT("trace/parse");
  } catch (const FaultInjected& e) {
    return Status::Unavailable(e.what());
  }
  std::ifstream is(path);
  if (!is) return Status::NotFound("LoadTrace: cannot open " + path);
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    return Status::InvalidArgument("LoadTrace: bad header in " + path +
                                   " (expected '" + kHeader + "')");
  }
  std::vector<Flow> flows;
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    long long id = 0, src = 0, dst = 0, size = 0, arrival = 0;
    if (!(ls >> id >> src >> dst >> size >> arrival)) {
      // Blank or comment-only line.
      bool only_space = true;
      for (char c : line) only_space &= (c == ' ' || c == '\t' || c == '\r');
      if (only_space) continue;
      // A partial record on the final line with no trailing newline is the
      // signature of a truncated file (e.g. an interrupted copy) rather
      // than a malformed one; report it as data loss.
      if (is.eof()) {
        return Status::DataLoss("LoadTrace: truncated record at " + At(path, lineno));
      }
      return Status::InvalidArgument(
          "LoadTrace: parse error at " + At(path, lineno) +
          " (expected: id src_host dst_host size_bytes arrival_ns [priority])");
    }
    int priority = 0;
    ls >> priority;  // optional
    if (src < 0 || src >= ft.num_hosts() || dst < 0 || dst >= ft.num_hosts()) {
      return Status::InvalidArgument(
          "LoadTrace: host out of range at " + At(path, lineno) + " (src=" +
          std::to_string(src) + " dst=" + std::to_string(dst) + ", topology has " +
          std::to_string(ft.num_hosts()) + " hosts)");
    }
    if (src == dst) {
      return Status::InvalidArgument("LoadTrace: src == dst at " + At(path, lineno));
    }
    if (size <= 0) {
      return Status::InvalidArgument("LoadTrace: size " + std::to_string(size) + " at " +
                                     At(path, lineno) + " (must be > 0)");
    }
    if (arrival < 0) {
      return Status::InvalidArgument("LoadTrace: arrival " + std::to_string(arrival) +
                                     " at " + At(path, lineno) + " (must be >= 0)");
    }
    if (priority < 0 || priority >= kNumPriorities) {
      return Status::InvalidArgument("LoadTrace: priority " + std::to_string(priority) +
                                     " at " + At(path, lineno) + " (must be in [0, " +
                                     std::to_string(kNumPriorities) + "))");
    }
    Flow f;
    f.id = static_cast<FlowId>(id);
    f.src = ft.host(static_cast<int>(src));
    f.dst = ft.host(static_cast<int>(dst));
    f.size = size;
    f.arrival = arrival;
    f.priority = static_cast<std::uint8_t>(priority);
    f.path = ft.RouteBetween(static_cast<int>(src), static_cast<int>(dst),
                             static_cast<std::uint64_t>(id));
    flows.push_back(std::move(f));
  }
  return flows;
}

void SaveTrace(const std::string& path, const FatTree& ft, const std::vector<Flow>& flows) {
  const Status st = SaveTraceOr(path, ft, flows);
  if (!st.ok()) throw std::runtime_error(st.ToString());
}

std::vector<Flow> LoadTrace(const std::string& path, const FatTree& ft) {
  StatusOr<std::vector<Flow>> flows = LoadTraceOr(path, ft);
  if (!flows.ok()) throw std::runtime_error(flows.status().ToString());
  return std::move(flows).value();
}

}  // namespace m3
