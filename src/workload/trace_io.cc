#include "workload/trace_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace m3 {
namespace {

constexpr const char* kHeader = "m3-trace v1";

}  // namespace

void SaveTrace(const std::string& path, const FatTree& ft, const std::vector<Flow>& flows) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("SaveTrace: cannot open " + path);
  os << kHeader << "\n";
  os << "# id src_host dst_host size_bytes arrival_ns priority\n";
  for (const Flow& f : flows) {
    const int src = ft.HostIndexOf(f.src);
    const int dst = ft.HostIndexOf(f.dst);
    if (src < 0 || dst < 0) {
      throw std::runtime_error("SaveTrace: flow " + std::to_string(f.id) +
                               " does not terminate at hosts of this topology");
    }
    os << f.id << ' ' << src << ' ' << dst << ' ' << f.size << ' ' << f.arrival << ' '
       << static_cast<int>(f.priority) << "\n";
  }
  if (!os) throw std::runtime_error("SaveTrace: write failed for " + path);
}

std::vector<Flow> LoadTrace(const std::string& path, const FatTree& ft) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("LoadTrace: cannot open " + path);
  std::string line;
  if (!std::getline(is, line) || line != kHeader) {
    throw std::runtime_error("LoadTrace: bad header in " + path);
  }
  std::vector<Flow> flows;
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    long long id = 0, src = 0, dst = 0, size = 0, arrival = 0;
    if (!(ls >> id >> src >> dst >> size >> arrival)) {
      // Blank or comment-only line.
      bool only_space = true;
      for (char c : line) only_space &= (c == ' ' || c == '\t' || c == '\r');
      if (only_space) continue;
      throw std::runtime_error("LoadTrace: parse error at " + path + ":" +
                               std::to_string(lineno));
    }
    int priority = 0;
    ls >> priority;  // optional
    if (src < 0 || src >= ft.num_hosts() || dst < 0 || dst >= ft.num_hosts() || src == dst) {
      throw std::runtime_error("LoadTrace: bad hosts at " + path + ":" +
                               std::to_string(lineno));
    }
    if (size <= 0 || arrival < 0) {
      throw std::runtime_error("LoadTrace: bad size/arrival at " + path + ":" +
                               std::to_string(lineno));
    }
    Flow f;
    f.id = static_cast<FlowId>(id);
    f.src = ft.host(static_cast<int>(src));
    f.dst = ft.host(static_cast<int>(dst));
    f.size = size;
    f.arrival = arrival;
    f.priority = static_cast<std::uint8_t>(priority);
    f.path = ft.RouteBetween(static_cast<int>(src), static_cast<int>(dst),
                             static_cast<std::uint64_t>(id));
    flows.push_back(std::move(f));
  }
  return flows;
}

}  // namespace m3
