// Flow-size distributions.
//
// Empirical distributions model the published Meta workloads
// (CacheFollower, WebServer, Hadoop) as piecewise-linear CDFs; parametric
// families (Pareto, Exponential, Gaussian, Log-normal) with a continuous
// size parameter theta are used for the synthetic training set (Table 2).
#pragma once

#include <memory>
#include <string>

#include "util/cdf.h"
#include "util/rng.h"
#include "util/units.h"

namespace m3 {

class SizeDist {
 public:
  virtual ~SizeDist() = default;

  /// Draws one flow size in bytes (always >= 1).
  virtual Bytes Sample(Rng& rng) const = 0;

  /// Mean flow size in bytes.
  virtual double Mean() const = 0;

  virtual const std::string& name() const = 0;
};

/// The paper's three production workloads (Fig. 18(b)); shapes encode the
/// published heavy-tailed characteristics (see DESIGN.md substitutions).
std::unique_ptr<SizeDist> MakeCacheFollower();
std::unique_ptr<SizeDist> MakeWebServer();
std::unique_ptr<SizeDist> MakeHadoop();

/// Named lookup over the production workloads; throws on unknown name.
std::unique_ptr<SizeDist> MakeProductionDist(const std::string& name);

/// Parametric families used for the synthetic training set (Table 2). The
/// `theta` parameter is the target mean size in bytes (5k "small" to 50k
/// "large" in the paper).
std::unique_ptr<SizeDist> MakePareto(double theta);
std::unique_ptr<SizeDist> MakeExponentialSize(double theta);
std::unique_ptr<SizeDist> MakeGaussianSize(double theta);
std::unique_ptr<SizeDist> MakeLogNormalSize(double theta);

enum class ParametricFamily { kPareto, kExponential, kGaussian, kLogNormal };

std::unique_ptr<SizeDist> MakeParametric(ParametricFamily family, double theta);

}  // namespace m3
