#include "workload/arrivals.h"

#include <cmath>

namespace m3 {

std::vector<double> NormalizedLogNormalArrivals(int n, double sigma, Rng& rng,
                                                double span) {
  std::vector<double> times(static_cast<std::size_t>(n));
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += rng.LogNormal(0.0, sigma);
    times[static_cast<std::size_t>(i)] = t;
  }
  if (t > 0.0) {
    const double scale = span / t;
    for (double& v : times) v *= scale;
  }
  return times;
}

std::vector<Ns> ScaleArrivals(const std::vector<double>& normalized, Ns duration) {
  std::vector<Ns> out;
  out.reserve(normalized.size());
  for (double v : normalized) {
    out.push_back(static_cast<Ns>(v * static_cast<double>(duration)));
  }
  return out;
}

std::vector<double> NormalizedDiurnalArrivals(int n, double sigma, double depth,
                                              double cycles, Rng& rng) {
  // Draw a stationary log-normal gap process, then warp time through the
  // inverse of the cumulative modulation Lambda(t) = t - (depth/w)*
  // (cos(w t)-1)/..., approximated numerically: thinning would discard
  // samples, so instead map each stationary arrival u in [0,1] to the t
  // where Lambda(t)/Lambda(1) = u, with Lambda'(t) = 1 + depth*sin(w t).
  std::vector<double> stationary = NormalizedLogNormalArrivals(n, sigma, rng);
  const double w = 2.0 * M_PI * cycles;
  auto lambda = [&](double t) {
    // integral of 1 + depth*sin(w s) ds from 0 to t
    return t + depth * (1.0 - std::cos(w * t)) / w;
  };
  const double total = lambda(1.0);
  std::vector<double> out;
  out.reserve(stationary.size());
  for (double u : stationary) {
    // Invert lambda by bisection (lambda is strictly increasing for
    // depth < 1).
    const double target = u * total;
    double lo = 0.0, hi = 1.0;
    for (int it = 0; it < 40; ++it) {
      const double mid = 0.5 * (lo + hi);
      (lambda(mid) < target ? lo : hi) = mid;
    }
    out.push_back(0.5 * (lo + hi));
  }
  // Inversion maps high-rate phases to densely packed arrivals; times stay
  // sorted because lambda is monotone.
  return out;
}

double GapCoefficientOfVariation(const std::vector<Ns>& arrivals) {
  if (arrivals.size() < 3) return 0.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  const std::size_t n = arrivals.size() - 1;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    const double gap = static_cast<double>(arrivals[i] - arrivals[i - 1]);
    sum += gap;
    sum_sq += gap * gap;
  }
  const double mean = sum / static_cast<double>(n);
  if (mean <= 0.0) return 0.0;
  const double var = sum_sq / static_cast<double>(n) - mean * mean;
  return var > 0.0 ? std::sqrt(var) / mean : 0.0;
}

}  // namespace m3
