// Rack-to-rack traffic matrices modeled after the paper's matrices A, B, C
// (Fig. 18(a)): A is pod-locality-heavy, B is near-uniform, and C is highly
// skewed with a few hot rack pairs. All are generated deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace m3 {

class TrafficMatrix {
 public:
  /// Builds from an explicit weight matrix (row = source rack). Diagonal
  /// entries are forced to zero (traffic is rack-to-rack).
  TrafficMatrix(std::string name, std::vector<std::vector<double>> weights);

  /// Matrix A: strong intra-pod locality plus moderate hotspots.
  static TrafficMatrix MatrixA(int num_racks, int racks_per_pod,
                               std::uint64_t seed = 0xA);
  /// Matrix B: near-uniform all-to-all.
  static TrafficMatrix MatrixB(int num_racks, int racks_per_pod,
                               std::uint64_t seed = 0xB);
  /// Matrix C: heavy-tailed pair weights; the most skewed of the three.
  static TrafficMatrix MatrixC(int num_racks, int racks_per_pod,
                               std::uint64_t seed = 0xC);

  static TrafficMatrix ByName(const std::string& name, int num_racks,
                              int racks_per_pod);

  int num_racks() const { return static_cast<int>(weights_.size()); }
  const std::string& name() const { return name_; }
  double weight(int src_rack, int dst_rack) const {
    return weights_[static_cast<std::size_t>(src_rack)][static_cast<std::size_t>(dst_rack)];
  }

  /// Samples a (src_rack, dst_rack) pair with probability proportional to
  /// weight. O(log N^2) via a precomputed cumulative table.
  std::pair<int, int> SamplePair(Rng& rng) const;

  /// Skew diagnostic: fraction of total weight carried by the top 1% of
  /// rack pairs. Higher means more skewed (C > A > B).
  double Top1PercentShare() const;

 private:
  std::string name_;
  std::vector<std::vector<double>> weights_;
  std::vector<double> cumulative_;  // flattened prefix sums for sampling
};

}  // namespace m3
