// Flow inter-arrival processes. The paper uses log-normal inter-arrival
// gaps whose shape parameter sigma sets the burstiness level (sigma = 1 low,
// sigma = 2 high).
#pragma once

#include <vector>

#include "util/rng.h"
#include "util/units.h"

namespace m3 {

/// Draws `n` arrival times with log-normal(0, sigma) gaps, normalized so the
/// last arrival lands at fraction `span` of 1.0 (i.e., returned times are in
/// [0, span], ready to be scaled to a workload duration).
std::vector<double> NormalizedLogNormalArrivals(int n, double sigma, Rng& rng,
                                                double span = 1.0);

/// Scales normalized arrival times (in [0,1]) to nanoseconds over `duration`.
std::vector<Ns> ScaleArrivals(const std::vector<double>& normalized, Ns duration);

/// Coefficient of variation of the gaps of an arrival-time sequence; a
/// direct burstiness measure used in tests.
double GapCoefficientOfVariation(const std::vector<Ns>& arrivals);

/// Non-stationary ("diurnal") arrivals: a log-normal(0, sigma) gap process
/// whose instantaneous rate is modulated by 1 + depth*sin(2*pi*cycles*t),
/// t in [0,1]. depth in [0,1); depth=0 degenerates to the stationary
/// process. Returned times are normalized to [0, 1]. The paper (§2.2)
/// singles out diurnal patterns as workloads that summary statistics
/// cannot represent but flowSim featurization can.
std::vector<double> NormalizedDiurnalArrivals(int n, double sigma, double depth,
                                              double cycles, Rng& rng);

}  // namespace m3
