#include "workload/traffic_matrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace m3 {

TrafficMatrix::TrafficMatrix(std::string name, std::vector<std::vector<double>> weights)
    : name_(std::move(name)), weights_(std::move(weights)) {
  const std::size_t n = weights_.size();
  if (n == 0) throw std::invalid_argument("TrafficMatrix: empty matrix");
  for (std::size_t i = 0; i < n; ++i) {
    if (weights_[i].size() != n) {
      throw std::invalid_argument("TrafficMatrix: matrix must be square");
    }
    weights_[i][i] = 0.0;
    for (double w : weights_[i]) {
      if (w < 0.0) throw std::invalid_argument("TrafficMatrix: negative weight");
    }
  }
  cumulative_.reserve(n * n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sum += weights_[i][j];
      cumulative_.push_back(sum);
    }
  }
  if (sum <= 0.0) throw std::invalid_argument("TrafficMatrix: all-zero matrix");
}

std::pair<int, int> TrafficMatrix::SamplePair(Rng& rng) const {
  const double total = cumulative_.back();
  const double target = rng.NextDouble() * total;
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), target);
  std::size_t idx = static_cast<std::size_t>(it - cumulative_.begin());
  if (idx >= cumulative_.size()) idx = cumulative_.size() - 1;
  const int n = num_racks();
  return {static_cast<int>(idx) / n, static_cast<int>(idx) % n};
}

double TrafficMatrix::Top1PercentShare() const {
  std::vector<double> flat;
  flat.reserve(weights_.size() * weights_.size());
  double total = 0.0;
  for (const auto& row : weights_) {
    for (double w : row) {
      flat.push_back(w);
      total += w;
    }
  }
  std::sort(flat.begin(), flat.end(), std::greater<>());
  const std::size_t top = std::max<std::size_t>(1, flat.size() / 100);
  double top_sum = 0.0;
  for (std::size_t i = 0; i < top; ++i) top_sum += flat[i];
  return total > 0.0 ? top_sum / total : 0.0;
}

TrafficMatrix TrafficMatrix::MatrixA(int num_racks, int racks_per_pod, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> w(static_cast<std::size_t>(num_racks),
                                     std::vector<double>(static_cast<std::size_t>(num_racks)));
  // A few "hot" racks amplify whole rows/columns, on top of 4x intra-pod
  // locality.
  std::vector<double> rack_heat(static_cast<std::size_t>(num_racks));
  for (auto& h : rack_heat) h = (rng.NextDouble() < 0.15) ? 3.0 : 1.0;
  for (int i = 0; i < num_racks; ++i) {
    for (int j = 0; j < num_racks; ++j) {
      if (i == j) continue;
      const bool same_pod = (i / racks_per_pod) == (j / racks_per_pod);
      const double locality = same_pod ? 4.0 : 1.0;
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          locality * rack_heat[static_cast<std::size_t>(i)] *
          rack_heat[static_cast<std::size_t>(j)] * rng.Uniform(0.5, 1.5);
    }
  }
  return TrafficMatrix("A", std::move(w));
}

TrafficMatrix TrafficMatrix::MatrixB(int num_racks, int racks_per_pod, std::uint64_t seed) {
  (void)racks_per_pod;
  Rng rng(seed);
  std::vector<std::vector<double>> w(static_cast<std::size_t>(num_racks),
                                     std::vector<double>(static_cast<std::size_t>(num_racks)));
  for (int i = 0; i < num_racks; ++i) {
    for (int j = 0; j < num_racks; ++j) {
      if (i == j) continue;
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = rng.Uniform(0.8, 1.2);
    }
  }
  return TrafficMatrix("B", std::move(w));
}

TrafficMatrix TrafficMatrix::MatrixC(int num_racks, int racks_per_pod, std::uint64_t seed) {
  (void)racks_per_pod;
  Rng rng(seed);
  std::vector<std::vector<double>> w(static_cast<std::size_t>(num_racks),
                                     std::vector<double>(static_cast<std::size_t>(num_racks)));
  for (int i = 0; i < num_racks; ++i) {
    for (int j = 0; j < num_racks; ++j) {
      if (i == j) continue;
      // Pareto(alpha=1.1) pair weights: a few rack pairs dominate.
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = rng.Pareto(1.0, 1.1);
    }
  }
  return TrafficMatrix("C", std::move(w));
}

TrafficMatrix TrafficMatrix::ByName(const std::string& name, int num_racks,
                                    int racks_per_pod) {
  if (name == "A") return MatrixA(num_racks, racks_per_pod);
  if (name == "B") return MatrixB(num_racks, racks_per_pod);
  if (name == "C") return MatrixC(num_racks, racks_per_pod);
  throw std::invalid_argument("unknown traffic matrix: " + name);
}

}  // namespace m3
