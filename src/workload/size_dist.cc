#include "workload/size_dist.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace m3 {
namespace {

Bytes ClampSize(double v) {
  return static_cast<Bytes>(std::max(1.0, std::round(v)));
}

class EmpiricalDist final : public SizeDist {
 public:
  EmpiricalDist(std::string name, std::vector<PiecewiseCdf::Point> points)
      : name_(std::move(name)), cdf_(std::move(points)), mean_(cdf_.Mean()) {}

  Bytes Sample(Rng& rng) const override { return ClampSize(cdf_.Sample(rng)); }
  double Mean() const override { return mean_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  PiecewiseCdf cdf_;
  double mean_;
};

class ParetoDist final : public SizeDist {
 public:
  explicit ParetoDist(double theta)
      : name_("Pareto"), alpha_(2.0), xm_(theta * (alpha_ - 1.0) / alpha_), mean_(theta) {}

  Bytes Sample(Rng& rng) const override { return ClampSize(rng.Pareto(xm_, alpha_)); }
  double Mean() const override { return mean_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  double alpha_;
  double xm_;
  double mean_;
};

class ExpDist final : public SizeDist {
 public:
  explicit ExpDist(double theta) : name_("Exp"), mean_(theta) {}

  Bytes Sample(Rng& rng) const override { return ClampSize(rng.Exponential(mean_)); }
  double Mean() const override { return mean_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  double mean_;
};

class GaussianDist final : public SizeDist {
 public:
  explicit GaussianDist(double theta) : name_("Gaussian"), mean_(theta), stddev_(theta / 2.0) {}

  Bytes Sample(Rng& rng) const override {
    // Truncate below at 100B; the truncation shifts the mean only slightly
    // for the theta range we use (5k-50k).
    return ClampSize(std::max(100.0, rng.Normal(mean_, stddev_)));
  }
  double Mean() const override { return mean_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  double mean_;
  double stddev_;
};

class LogNormalDist final : public SizeDist {
 public:
  explicit LogNormalDist(double theta) : name_("LogNormal") {
    // sigma of the underlying normal fixed at 1; mu set so E[X] = theta.
    sigma_ = 1.0;
    mu_ = std::log(theta) - sigma_ * sigma_ / 2.0;
    mean_ = theta;
  }

  Bytes Sample(Rng& rng) const override { return ClampSize(rng.LogNormal(mu_, sigma_)); }
  double Mean() const override { return mean_; }
  const std::string& name() const override { return name_; }

 private:
  std::string name_;
  double mu_;
  double sigma_;
  double mean_;
};

}  // namespace

std::unique_ptr<SizeDist> MakeCacheFollower() {
  // Bimodal: many sub-KB cache lookups plus a heavy tail of large responses.
  return std::make_unique<EmpiricalDist>(
      "CacheFollower",
      std::vector<PiecewiseCdf::Point>{
          {70, 0.08}, {200, 0.25}, {350, 0.40}, {500, 0.50}, {1000, 0.61},
          {2000, 0.68}, {5000, 0.76}, {10000, 0.82}, {50000, 0.90},
          {200000, 0.95}, {1000000, 0.99}, {10000000, 1.0}});
}

std::unique_ptr<SizeDist> MakeWebServer() {
  // Dominated by small request/response flows.
  return std::make_unique<EmpiricalDist>(
      "WebServer",
      std::vector<PiecewiseCdf::Point>{
          {100, 0.04}, {200, 0.15}, {300, 0.30}, {500, 0.47}, {1000, 0.63},
          {2000, 0.75}, {5000, 0.88}, {10000, 0.93}, {30000, 0.97},
          {100000, 0.99}, {1000000, 0.999}, {5000000, 1.0}});
}

std::unique_ptr<SizeDist> MakeHadoop() {
  // Shuffle-style traffic: more mass in the medium/large range.
  return std::make_unique<EmpiricalDist>(
      "Hadoop",
      std::vector<PiecewiseCdf::Point>{
          {150, 0.10}, {300, 0.26}, {500, 0.40}, {1000, 0.55}, {2000, 0.65},
          {10000, 0.78}, {100000, 0.90}, {1000000, 0.97}, {10000000, 1.0}});
}

std::unique_ptr<SizeDist> MakeProductionDist(const std::string& name) {
  if (name == "CacheFollower") return MakeCacheFollower();
  if (name == "WebServer") return MakeWebServer();
  if (name == "Hadoop") return MakeHadoop();
  throw std::invalid_argument("unknown production workload: " + name);
}

std::unique_ptr<SizeDist> MakePareto(double theta) {
  return std::make_unique<ParetoDist>(theta);
}
std::unique_ptr<SizeDist> MakeExponentialSize(double theta) {
  return std::make_unique<ExpDist>(theta);
}
std::unique_ptr<SizeDist> MakeGaussianSize(double theta) {
  return std::make_unique<GaussianDist>(theta);
}
std::unique_ptr<SizeDist> MakeLogNormalSize(double theta) {
  return std::make_unique<LogNormalDist>(theta);
}

std::unique_ptr<SizeDist> MakeParametric(ParametricFamily family, double theta) {
  switch (family) {
    case ParametricFamily::kPareto:
      return MakePareto(theta);
    case ParametricFamily::kExponential:
      return MakeExponentialSize(theta);
    case ParametricFamily::kGaussian:
      return MakeGaussianSize(theta);
    case ParametricFamily::kLogNormal:
      return MakeLogNormalSize(theta);
  }
  throw std::invalid_argument("unknown parametric family");
}

}  // namespace m3
