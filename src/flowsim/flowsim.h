// flowSim: the max-min fair fluid flow-level simulator (paper Algorithm 1).
//
// Flows are fluids served at their instantaneous max-min fair share across
// the links of their static route; rates are recomputed on every flow
// arrival or completion. flowSim does not model queueing, packet loss, or
// congestion control -- that is the point: it is a fast, coarse featurizer
// whose output m3's ML model corrects (§3.3).
#pragma once

#include <vector>

#include "topo/topology.h"
#include "workload/flow.h"

namespace m3 {

struct FlowSimOptions {
  // Framing used to align fluid goodput with the packet simulator: fluid
  // link capacity is scaled by mtu/(mtu+hdr).
  Bytes mtu = 1000;
  Bytes hdr = 48;
};

/// Runs flowSim over `flows` on `topo`. Returns one result per flow, in the
/// same order as the input. Each flow must have a non-empty, valid path.
///
/// FCT model: fluid completion time plus a path-specific base-latency term
/// chosen so that a flow alone on its path gets exactly IdealFct (hence
/// slowdown exactly 1 when unloaded).
std::vector<FlowResult> RunFlowSim(const Topology& topo, const std::vector<Flow>& flows,
                                   const FlowSimOptions& opts = {});

}  // namespace m3
