#include "flowsim/flowsim.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace m3 {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ActiveFlow {
  std::size_t flow_idx;    // index into the input vector
  double remaining;        // fluid bytes left
  double rate = 0.0;       // current max-min rate (effective bytes/ns)
};

// Waterfills one priority class of flows against the remaining capacities
// in `cap`, consuming capacity as flows freeze. `group` holds indices into
// `active`; `link_slot` maps LinkId -> slot in `cap`.
void WaterfillGroup(std::vector<ActiveFlow>& active, const std::vector<Route>& paths,
                    const std::vector<std::size_t>& group,
                    const std::vector<std::int32_t>& link_slot, std::vector<double>& cap) {
  if (group.empty()) return;
  // Per-slot unfrozen counts and membership limited to this group.
  std::vector<std::vector<std::size_t>> members(cap.size());
  std::vector<int> unfrozen(cap.size(), 0);
  for (std::size_t a : group) {
    for (LinkId l : paths[active[a].flow_idx]) {
      const auto s = static_cast<std::size_t>(link_slot[static_cast<std::size_t>(l)]);
      members[s].push_back(a);
      ++unfrozen[s];
    }
  }

  std::vector<char> frozen_flag(active.size(), 0);
  std::size_t num_frozen = 0;
  while (num_frozen < group.size()) {
    double best_share = kInf;
    std::size_t best = 0;
    bool found = false;
    for (std::size_t s = 0; s < cap.size(); ++s) {
      if (unfrozen[s] <= 0) continue;
      const double share = cap[s] / unfrozen[s];
      if (share < best_share) {
        best_share = share;
        best = s;
        found = true;
      }
    }
    if (!found) break;  // defensive; cannot happen while flows remain

    for (std::size_t a : members[best]) {
      if (frozen_flag[a]) continue;
      frozen_flag[a] = 1;
      ++num_frozen;
      active[a].rate = best_share;
      for (LinkId l : paths[active[a].flow_idx]) {
        const auto s = static_cast<std::size_t>(link_slot[static_cast<std::size_t>(l)]);
        cap[s] -= best_share;
        if (cap[s] < 0.0) cap[s] = 0.0;
        unfrozen[s] -= 1;
      }
    }
  }
}

// Computes rates for the active flows: strict-priority layered max-min.
// Class 0 is waterfilled first; each lower class only sees the leftover
// capacity (fluid analogue of strict-priority queueing).
void ComputeMaxMinRates(const Topology& topo, std::vector<ActiveFlow>& active,
                        const std::vector<Route>& paths,
                        const std::vector<std::uint8_t>& priorities, double efficiency) {
  if (active.empty()) return;

  // Gather the set of links in use.
  std::vector<LinkId> used_links;
  std::vector<std::int32_t> link_slot(topo.num_links(), -1);
  for (const ActiveFlow& af : active) {
    for (LinkId l : paths[af.flow_idx]) {
      if (link_slot[static_cast<std::size_t>(l)] < 0) {
        link_slot[static_cast<std::size_t>(l)] = static_cast<std::int32_t>(used_links.size());
        used_links.push_back(l);
      }
    }
  }
  std::vector<double> cap(used_links.size());
  for (std::size_t s = 0; s < used_links.size(); ++s) {
    cap[s] = topo.link(used_links[s]).rate * efficiency;
  }

  std::array<std::vector<std::size_t>, kNumPriorities> groups;
  for (std::size_t a = 0; a < active.size(); ++a) {
    const std::size_t prio = std::min<std::size_t>(priorities[active[a].flow_idx],
                                                   kNumPriorities - 1);
    groups[prio].push_back(a);
  }
  for (auto& group : groups) {
    WaterfillGroup(active, paths, group, link_slot, cap);
  }
}

}  // namespace

std::vector<FlowResult> RunFlowSim(const Topology& topo, const std::vector<Flow>& flows,
                                   const FlowSimOptions& opts) {
  const double efficiency =
      static_cast<double>(opts.mtu) / static_cast<double>(opts.mtu + opts.hdr);

  std::vector<FlowResult> results(flows.size());
  std::vector<Route> paths(flows.size());
  std::vector<std::uint8_t> priorities(flows.size(), 0);
  std::vector<double> base_latency(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& f = flows[i];
    if (f.path.empty() || f.size <= 0) {
      throw std::invalid_argument("RunFlowSim: every flow needs a path and positive size");
    }
    paths[i] = f.path;
    priorities[i] = f.priority;
    results[i].id = f.id;
    results[i].size = f.size;
    results[i].ideal_fct = IdealFct(topo, f.path, f.size, opts.mtu, opts.hdr);
    const double min_rate = topo.RouteMinRate(f.path) * efficiency;
    const double fluid_unloaded = static_cast<double>(f.size) / min_rate;
    base_latency[i] =
        std::max(0.0, static_cast<double>(results[i].ideal_fct) - fluid_unloaded);
  }

  // Flows ordered by arrival.
  std::vector<std::size_t> order(flows.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&flows](std::size_t a, std::size_t b) {
    return flows[a].arrival < flows[b].arrival;
  });

  std::vector<ActiveFlow> active;
  std::size_t next_arrival = 0;
  double now = flows.empty() ? 0.0 : static_cast<double>(flows[order[0]].arrival);

  while (next_arrival < order.size() || !active.empty()) {
    // Next completion under current rates.
    double completion_at = kInf;
    std::size_t completion_idx = 0;
    for (std::size_t a = 0; a < active.size(); ++a) {
      if (active[a].rate <= 0.0) continue;
      const double t = now + active[a].remaining / active[a].rate;
      if (t < completion_at) {
        completion_at = t;
        completion_idx = a;
      }
    }
    const double arrival_at =
        next_arrival < order.size()
            ? static_cast<double>(flows[order[next_arrival]].arrival)
            : kInf;

    const bool is_arrival = arrival_at <= completion_at;
    const double t_event = is_arrival ? arrival_at : completion_at;

    // Serve all active flows up to the event time.
    const double dt = t_event - now;
    if (dt > 0.0) {
      for (ActiveFlow& a : active) a.remaining -= a.rate * dt;
    }
    now = t_event;

    if (is_arrival) {
      const std::size_t idx = order[next_arrival++];
      active.push_back(ActiveFlow{idx, static_cast<double>(flows[idx].size), 0.0});
    } else {
      const std::size_t idx = active[completion_idx].flow_idx;
      const Flow& f = flows[idx];
      const double fct = (now - static_cast<double>(f.arrival)) + base_latency[idx];
      results[idx].fct = static_cast<Ns>(std::llround(fct));
      results[idx].slowdown =
          results[idx].ideal_fct > 0
              ? fct / static_cast<double>(results[idx].ideal_fct)
              : 1.0;
      active[completion_idx] = active.back();
      active.pop_back();
    }

    ComputeMaxMinRates(topo, active, paths, priorities, efficiency);
  }

  return results;
}

}  // namespace m3
