// Content-addressed LRU result caches for the estimation service.
//
// Keys are 128-bit content hashes (util/hash.h) over everything that
// determines the cached value — see serve/wire.h for the exact key
// definitions — so a hit is *bitwise identical* to a recompute by
// construction: equal keys imply equal inputs, and the estimation pipeline
// is deterministic in its inputs (including across thread counts, PR 1).
//
// The cache is a plain bounded LRU: thread-safe, entry-count bounded,
// eviction from the least-recently-used end, with hit/miss/eviction/insert
// counters. It deliberately has no TTLs or size-adaptive policies — model
// hot-reloads change the model digest, which changes every key, so stale
// entries age out through normal LRU pressure.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/fault.h"
#include "util/hash.h"

namespace m3::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  // current occupancy

  /// e.g. "42 hits, 7 misses, 7 inserts, 3 evictions, 4 entries".
  std::string ToString() const;
};

struct Hash128Hasher {
  std::size_t operator()(const Hash128& h) const noexcept {
    // The key is already uniformly mixed; fold the lanes.
    return static_cast<std::size_t>(h.hi ^ h.lo);
  }
};

template <typename V>
class LruCache {
 public:
  /// `capacity` = max entries; 0 disables the cache (every lookup misses,
  /// inserts are dropped).
  explicit LruCache(std::size_t capacity, const char* fault_site = nullptr)
      : capacity_(capacity), fault_site_(fault_site) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns a copy of the cached value and promotes the entry to
  /// most-recently-used. The serve-layer fault site (when configured) fires
  /// *before* the probe so an injected cache outage is indistinguishable
  /// from a real one to the caller.
  std::optional<V> Lookup(const Hash128& key) {
    if (fault_site_ != nullptr) M3_FAULT_POINT(fault_site_);
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++stats_.hits;
    return it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting from the LRU end as needed.
  /// Returns true only when the key was newly inserted — the signal
  /// persistence call-sites use to spill each entry exactly once.
  bool Insert(const Hash128& key, V value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (capacity_ == 0) return false;
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Deterministic inputs mean the value can only be byte-identical;
      // refresh recency, keep the original bytes.
      order_.splice(order_.begin(), order_, it->second);
      return false;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    ++stats_.inserts;
    while (order_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++stats_.evictions;
    }
    return true;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    index_.clear();
    order_.clear();
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    CacheStats s = stats_;
    s.entries = order_.size();
    return s;
  }

  std::size_t capacity() const { return capacity_; }

  /// Keys from most- to least-recently-used (test introspection).
  std::vector<Hash128> KeysByRecency() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Hash128> keys;
    keys.reserve(order_.size());
    for (const auto& kv : order_) keys.push_back(kv.first);
    return keys;
  }

 private:
  const std::size_t capacity_;
  const char* const fault_site_;
  mutable std::mutex mu_;
  std::list<std::pair<Hash128, V>> order_;  // front = most recent
  std::unordered_map<Hash128, typename std::list<std::pair<Hash128, V>>::iterator,
                     Hash128Hasher>
      index_;
  CacheStats stats_;
};

}  // namespace m3::serve
