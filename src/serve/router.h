// m3d-router: a failure-tolerant scatter-gather front-end over N shard
// m3d daemons.
//
// One client query is decomposed exactly as a single daemon would — the
// deterministic (topology, flows, seed, num_paths) path sample — and each
// sample slot is placed on the consistent-hash ring by its *path cache
// key* (serve/wire.h PathCacheKey with a zero model-digest term, so a
// model reload does not reshuffle placement). Hashing by content, not by
// slot index, means the same path scenario lands on the same shard across
// queries: each shard's per-path LRU concentrates on its ring segment and
// the fleet's effective cache is the sum of the shards', not N copies of
// one working set.
//
// Slots are grouped per owning shard and dispatched as ShardQueryRequests;
// shards estimate only their slots and return raw per-slot estimates,
// which the router merges positionally and re-aggregates with the same
// Clamp/Aggregate/Combine sequence the single-host pipeline uses — a
// fault-free scattered answer is bitwise identical to a one-daemon answer.
//
// Robustness (the reason this binary exists):
//   per-shard breaker  — serve/shardmap.h ShardBreaker; opened by repeated
//                        dispatch/health failures, half-open probes after a
//                        cooloff, closed by any success. Keys owned by an
//                        open shard route to their next ring replica
//                        without burning a timeout.
//   retry ladder       — a failed sub-request re-dispatches each of its
//                        slots to the slot's next distinct ring replica,
//                        with exponential backoff between rounds.
//   hedging (optional) — hedge_seconds > 0 bounds how long round 0 waits:
//                        a straggler shard's slots are re-dispatched to the
//                        next replica without charging its breaker.
//   degradation ladder — slots no replica could serve fall back to a
//                        router-side flowSim estimate (counted degraded),
//                        then to a reweighted drop; the merged
//                        DegradationReport plus per-shard ShardReportWire
//                        rows attribute every slot.
//
// A router with every shard down still answers every query (all-fallback,
// status kDegraded) — degraded, never failed.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/exec.h"
#include "serve/persist.h"
#include "serve/shardmap.h"
#include "serve/wire.h"
#include "util/socket.h"

namespace m3::serve {

struct RouterOptions {
  // Shard endpoint specs: "tcp:host:port", "unix:/path", or a bare socket
  // path. At least one is required.
  std::vector<std::string> shards;
  int vnodes = 64;    // ring points per shard
  int replicas = 2;   // distinct shards tried per slot before fallback
  double connect_timeout_seconds = 2.0;
  // Per-sub-request answer bound (<= 0: wait indefinitely). The client
  // query's own deadline, when tighter, wins.
  double shard_timeout_seconds = 30.0;
  double retry_backoff_ms = 25.0;  // doubled per retry round
  // > 0: round 0 waits only this long before re-dispatching a straggler's
  // slots to the next replica (no breaker charge). 0 disables hedging.
  double hedge_seconds = 0.0;
  double health_interval_seconds = 0.5;
  ShardBreakerOptions breaker;
  // Thread width for placement-key hashing and the flowSim fallback
  // (M3Options::num_threads semantics; 0 = hardware).
  unsigned fallback_threads = 0;
  std::size_t topo_memo_entries = 8;
  // Idle connections kept per shard between queries.
  std::size_t pool_per_shard = 4;
  // Router-side per-path result cache: merged slot estimates keyed by the
  // same zero-digest PathCacheKey used for ring placement, consulted
  // before scatter so shard restarts don't re-cold the fleet. Entries are
  // validated by model *content CRC* (learned from shard pings), which
  // survives restarts. 0 disables it.
  std::size_t path_cache_entries = 4096;
  // Durable-cache directory (serve/persist.h). Empty disables persistence.
  std::string cache_dir;
  double cache_flush_interval_seconds = 2.0;
};

class Router {
 public:
  explicit Router(const RouterOptions& opts);
  ~Router();  // Stop()s

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Parses the shard specs, builds the ring, runs one synchronous health
  /// probe round (so a query issued right after Start sees live shards),
  /// and starts the prober thread. kInvalidArgument on no/malformed shards
  /// or if already started.
  Status Start();

  /// Joins the prober and closes pooled connections. Idempotent.
  void Stop();

  /// Scatter-gathers one query across the fleet. Always returns an answer
  /// (possibly fully degraded); see the file comment for the ladder.
  /// Thread-safe.
  QueryResponse Query(const QueryRequest& req);

  /// Router readiness: ready when >= 1 shard is healthy.
  PingResponse Ping() const;

  /// Router counters + per-shard health rows (router_mode stats).
  ServerStatsWire Stats() const;

  std::size_t num_shards() const { return shards_.size(); }

  /// Synchronously spills everything queued for persistence (no-op without
  /// cache_dir). Test/shutdown hook.
  Status FlushPersistNow();
  /// Blocks until boot-time cache recovery has finished (no-op without
  /// cache_dir). Test hook.
  void WaitForPersistRecovery();

 private:
  struct Shard {
    Endpoint ep;
    std::string name;  // canonical endpoint string (ring + report identity)
    ShardBreaker breaker;
    std::atomic<bool> healthy{false};
    std::atomic<std::uint64_t> model_version{0};
    std::atomic<std::uint32_t> model_crc{0};  // content CRC from v4 pings
    // Cumulative counters (ShardHealthWire).
    std::atomic<std::uint64_t> dispatches{0};
    std::atomic<std::uint64_t> failures{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> hedges{0};
    std::atomic<std::uint64_t> slots_fallback{0};
    std::atomic<std::uint64_t> slots_dropped{0};
    std::mutex pool_mu;
    std::vector<UnixFd> pool;  // idle connections

    Shard(Endpoint e, std::string n, const ShardBreakerOptions& b)
        : ep(std::move(e)), name(std::move(n)), breaker(b) {}
  };

  /// One framed request/response exchange with a shard: pooled or fresh
  /// connection, send + bounded recv, decode. A stale pooled connection
  /// (closed by the shard between queries) gets one fresh-connection retry;
  /// a recv timeout never does (the shard may be mid-compute — resending
  /// would double the work). Updates dispatches/failures and the healthy
  /// flag on connect-level failures; breaker accounting stays with the
  /// caller (a hedge timeout must not charge it).
  StatusOr<ShardQueryResponse> CallShard(Shard& s, const std::string& payload,
                                         double recv_timeout_seconds);

  /// One liveness probe: ping over a throwaway connection. Success (ready)
  /// closes the breaker; failure charges it.
  void ProbeShard(Shard& s);
  void HealthLoop();

  /// The fleet's current model identity: (version, param CRC) of the
  /// highest-versioned healthy shard; (0, 0) when none is healthy.
  std::pair<std::uint64_t, std::uint32_t> FleetModel() const;

  /// Boot-time durable-cache replay (recovery_ thread, concurrent with
  /// serving): entries whose model CRC differs from the live fleet's are
  /// dropped; runs after Start's synchronous probe round so the CRC is
  /// known.
  void RecoverPersistedCache();

  const RouterOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<HashRing> ring_;
  mutable TopoMemo topos_;

  // Router-side per-path result cache + its durable spill.
  mutable LruCache<RouterPathValue> path_cache_;
  std::unique_ptr<CachePersister> persister_;
  CacheDirLock dir_lock_;
  std::mutex recovery_mu_;
  std::thread recovery_;

  std::thread prober_;
  mutable std::mutex mu_;  // started_/stopping_ + prober wakeup
  std::condition_variable stop_cv_;
  bool started_ = false;
  bool stopping_ = false;

  std::atomic<std::uint64_t> queries_received_{0};
  std::atomic<std::uint64_t> queries_ok_{0};
  std::atomic<std::uint64_t> queries_failed_{0};
  // Queries the router shed because the deadline budget could not cover a
  // dispatch (ShedReason kRouterBudget); disjoint from ok/failed.
  std::atomic<std::uint64_t> queries_shed_{0};
};

}  // namespace m3::serve
