// Shard placement + per-shard failure tracking for the m3d-router fleet.
//
// HashRing: consistent hashing with virtual nodes. Each shard contributes
// `vnodes` points on a u64 ring (hashed from its address string, so the
// mapping is stable across router restarts and across routers pointed at
// the same fleet); a key is owned by the first point clockwise from it.
// Preference(key) walks further clockwise collecting *distinct* shards —
// the retry/hedge order for that key. Adding or removing one shard moves
// only the keys that shard owned (the property that makes a shard bounce
// cheap: every other shard's path-cache working set is untouched).
//
// ShardBreaker: a recoverable circuit breaker, one per shard. Unlike the
// supervisor's per-model-digest breaker (serve/supervisor.h) — where a
// quarantined digest stays quarantined for the life of the process because
// a crashing *model* does not heal — a shard is a *peer* that can come
// back, so an open breaker re-closes: `threshold` failures within
// `window_seconds` open it for `cooloff_seconds`; after the cooloff one
// probe dispatch is let through (half-open), and any recorded success
// closes the breaker and clears the window. While open, the router routes
// the shard's keys to the next ring replica instead of burning a timeout
// per query on a peer that is known-down.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "util/hash.h"

namespace m3::serve {

class HashRing {
 public:
  /// `vnodes` points per shard (>= 1; clamped). Shard indices in lookups
  /// refer to positions in `shards`.
  HashRing(const std::vector<std::string>& shards, int vnodes = 64);

  std::size_t num_shards() const { return num_shards_; }

  /// The shard owning `key`, or -1 on an empty ring.
  int Owner(const Hash128& key) const;

  /// Up to `max_shards` distinct shards in clockwise order from `key`'s
  /// owner (0 = all shards). The owner is always first; this is the
  /// dispatch order for the key's retries and hedges.
  std::vector<int> Preference(const Hash128& key, std::size_t max_shards = 0) const;

 private:
  // (ring point, shard index), sorted by point.
  std::vector<std::pair<std::uint64_t, int>> ring_;
  std::size_t num_shards_ = 0;
};

struct ShardBreakerOptions {
  int threshold = 3;              // failures within the window that trip it
  double window_seconds = 10.0;
  double cooloff_seconds = 2.0;   // open duration before the half-open probe
};

class ShardBreaker {
 public:
  explicit ShardBreaker(const ShardBreakerOptions& opts = ShardBreakerOptions());

  /// May a dispatch go to this shard right now? Closed: always true.
  /// Open: false until the cooloff expires, then true exactly once per
  /// cooloff period (the half-open probe — callers that get true while
  /// open own the probe). Thread-safe.
  bool Allow();

  /// Charges one failure; trips the breaker at the threshold. Failures
  /// while open (a failed probe) re-arm the full cooloff.
  void RecordFailure();

  /// Closes the breaker and clears the failure window.
  void RecordSuccess();

  bool open() const;
  std::uint64_t trips() const;

 private:
  using Clock = std::chrono::steady_clock;

  const ShardBreakerOptions opts_;
  mutable std::mutex mu_;
  std::deque<Clock::time_point> failures_;  // within the window
  bool open_ = false;
  Clock::time_point probe_at_{};  // while open: when the next probe may go
  std::uint64_t trips_ = 0;
};

}  // namespace m3::serve
