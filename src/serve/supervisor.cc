#include "serve/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <optional>
#include <utility>

#include "serve/worker.h"
#include "util/fault.h"

namespace m3::serve {
namespace {

using Clock = std::chrono::steady_clock;

constexpr auto kReaperTick = std::chrono::milliseconds(10);
// How long Stop() waits for workers to honor EOF before SIGKILL.
constexpr int kStopGraceTicks = 50;  // x 10ms

}  // namespace

WorkerSupervisor::WorkerSupervisor(const SupervisorOptions& opts, SnapshotProvider provider)
    : opts_(opts), provider_(std::move(provider)) {}

WorkerSupervisor::~WorkerSupervisor() { Stop(); }

int WorkerSupervisor::BackoffDelayMs(int consecutive_failures, int initial_ms,
                                     int max_ms) {
  if (consecutive_failures <= 1) return std::min(initial_ms, max_ms);
  long long delay = initial_ms;
  for (int i = 1; i < consecutive_failures && delay < max_ms; ++i) delay *= 2;
  return static_cast<int>(std::min<long long>(delay, max_ms));
}

int WorkerSupervisor::JitteredBackoffMs(int delay_ms, std::uint64_t seed, std::uint64_t slot,
                                        std::uint64_t failure) {
  // splitmix64 over (seed, slot, failure): every slot and every retry round
  // lands on its own point of the [0.5, 1.5) factor range, deterministically
  // for a fixed seed.
  std::uint64_t z = seed ^ (slot * 0x9e3779b97f4a7c15ull) ^ (failure * 0xbf58476d1ce4e5b9ull);
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const double factor = 0.5 + static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
  return std::max(1, static_cast<int>(static_cast<double>(delay_ms) * factor));
}

Status WorkerSupervisor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::InvalidArgument("worker supervisor already running");
  running_ = true;
  stopping_ = false;
  generation_ = 1;
  // Pid-derived default: every daemon in a fleet gets its own jitter
  // stream even when launched from identical configs.
  jitter_seed_ = opts_.backoff_jitter_seed != 0
                     ? opts_.backoff_jitter_seed
                     : static_cast<std::uint64_t>(::getpid()) * 0x9e3779b97f4a7c15ull + 1;
  slots_ = std::vector<Slot>(static_cast<std::size_t>(std::max(1, opts_.num_workers)));
  const auto now = Clock::now();
  for (Slot& s : slots_) {
    s.respawn_at = now;
    SpawnLocked(s);  // no model yet -> stays kWaitRespawn; reaper retries
  }
  reaper_ = std::thread([this] { ReaperLoop(); });
  return Status::Ok();
}

void WorkerSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stopping_ = true;
  }
  lease_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();

  // Single-threaded from here (the embedding service drains its scheduler
  // before stopping the pool; a racing Execute fails its lease on stopping_).
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& s : slots_) s.fd.Close();  // EOF: workers drain and _exit(0)
  for (Slot& s : slots_) {
    if (s.pid <= 0) continue;
    int status = 0;
    pid_t reaped = 0;
    for (int i = 0; i < kStopGraceTicks; ++i) {
      reaped = ::waitpid(s.pid, &status, WNOHANG);
      if (reaped != 0) break;
      std::this_thread::sleep_for(kReaperTick);
    }
    if (reaped == 0) {
      // Hung or wedged: EOF was ignored, escalate. SIGKILL cannot be
      // blocked, so the blocking waitpid below always returns.
      ::kill(s.pid, SIGKILL);
      ::waitpid(s.pid, &status, 0);
    }
    s.pid = -1;
    s.state = SlotState::kEmpty;
  }
  running_ = false;
  stopping_ = false;
}

bool WorkerSupervisor::SpawnLocked(Slot& s) {
  const auto retry_later = [&](std::chrono::milliseconds delay) {
    s.state = SlotState::kWaitRespawn;
    s.respawn_at = Clock::now() + delay;
    return false;
  };

  std::shared_ptr<const ModelSnapshot> snap = provider_ ? provider_() : nullptr;
  if (snap == nullptr) return retry_later(std::chrono::milliseconds(50));

  UnixFd parent_end, child_end;
  if (!MakeSocketPair(&parent_end, &child_end).ok()) {
    return retry_later(std::chrono::milliseconds(opts_.backoff_initial_ms));
  }

  WorkerOptions wopts;
  wopts.threads_per_query = opts_.threads_per_query;
  wopts.path_cache_entries = opts_.path_cache_entries;

  // Hold the fault-registry lock across fork(): another thread may be
  // inside a fault point, and the child must not inherit a mid-held mutex
  // it can never unlock (see FaultRegistry::AcquireForkLock).
  FaultRegistry::Instance().AcquireForkLock();
  const pid_t pid = ::fork();
  if (pid == 0) {
    FaultRegistry::Instance().ReleaseForkLock();
    PrepareWorkerChild(child_end.get());
    if (!opts_.worker_faults.empty()) {
      (void)FaultRegistry::Instance().ArmFromString(opts_.worker_faults);
    }
    WorkerMain(child_end, *snap, wopts);
    ::_exit(0);  // no unwinding/static destructors in a fork-no-exec child
  }
  FaultRegistry::Instance().ReleaseForkLock();
  if (pid < 0) return retry_later(std::chrono::milliseconds(opts_.backoff_initial_ms));

  s.fd = std::move(parent_end);  // child_end closes at scope exit
  s.pid = pid;
  s.state = SlotState::kIdle;
  s.generation = generation_;
  s.snap_version = snap->version;
  s.snap_digest = snap->digest;
  s.kill_intentional = false;
  ++spawns_;
  return true;
}

void WorkerSupervisor::FailBusyWorkerLocked(Slot& s, bool intentional) {
  if (s.pid > 0) ::kill(s.pid, SIGKILL);  // idempotent if already dead
  s.fd.Close();
  s.state = SlotState::kReaping;
  s.kill_intentional = intentional;
  const auto now = Clock::now();
  if (intentional) {
    s.consecutive_failures = 0;
    s.respawn_at = now;
  } else {
    ++s.consecutive_failures;
    ++restarts_;
    s.respawn_at = now + std::chrono::milliseconds(JitteredBackoffMs(
                             BackoffDelayMs(s.consecutive_failures, opts_.backoff_initial_ms,
                                            opts_.backoff_max_ms),
                             jitter_seed_, static_cast<std::uint64_t>(&s - slots_.data()),
                             static_cast<std::uint64_t>(s.consecutive_failures)));
  }
}

std::optional<Hash128> WorkerSupervisor::RecordFailureLocked(const Hash128& digest) {
  const auto now = Clock::now();
  failures_.emplace_back(now, digest);
  const auto cutoff =
      now - std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(opts_.breaker_window_seconds));
  while (!failures_.empty() && failures_.front().first < cutoff) failures_.pop_front();
  if (quarantined_.count(digest) != 0) return std::nullopt;  // already tripped
  int in_window = 0;
  for (const auto& [when, d] : failures_) {
    if (d == digest) ++in_window;
  }
  if (in_window < opts_.breaker_threshold) return std::nullopt;
  quarantined_.insert(digest);
  ++breaker_trips_;
  return digest;
}

int WorkerSupervisor::LeaseWorker() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(opts_.lease_timeout_seconds));
  for (;;) {
    if (!running_ || stopping_) return -1;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      // Lowest idle index: deterministic lease order for fault tests.
      if (slots_[i].state == SlotState::kIdle && slots_[i].generation == generation_) {
        slots_[i].state = SlotState::kBusy;
        return static_cast<int>(i);
      }
    }
    if (lease_cv_.wait_until(lock, deadline) == std::cv_status::timeout) return -1;
  }
}

QueryResponse WorkerSupervisor::Execute(const QueryRequest& req) {
  const std::string payload = EncodeQueryRequest(req);
  // Two-tier deadline: the worker's estimator honors req.deadline_seconds
  // itself (partial kDeadlineExceeded answer); the watchdog only fires for
  // a worker so wedged it cannot even answer, at deadline + grace.
  const double budget = req.deadline_seconds > 0
                            ? req.deadline_seconds + opts_.grace_seconds
                            : opts_.default_watchdog_seconds;
  int attempts_left = 1 + std::max(0, opts_.crash_retries);
  for (;;) {
    const int idx = LeaseWorker();
    if (idx < 0) {
      QueryResponse resp;
      resp.status = Status::Unavailable(
          "no live worker available (pool respawning, exhausted, or stopping)");
      return resp;
    }
    // While kBusy this thread owns the slot's channel; slots_ never
    // resizes after Start, so the reference stays valid without the lock.
    Slot& s = slots_[static_cast<std::size_t>(idx)];
    --attempts_left;

    Status send = SendFrame(s.fd, static_cast<std::uint32_t>(MsgType::kQueryRequest),
                            payload);
    StatusOr<Frame> reply = send;
    if (send.ok()) {
      (void)SetRecvTimeout(s.fd, budget);
      reply = RecvFrame(s.fd);
    }

    // Decode through to a response; any shape mismatch is "garbage".
    std::optional<QueryResponse> decoded;
    bool garbage = false;
    if (reply.ok()) {
      if (reply->type == static_cast<std::uint32_t>(MsgType::kQueryResponse)) {
        StatusOr<QueryResponse> r = DecodeQueryResponse(reply->payload);
        if (r.ok()) decoded = std::move(*r);
        else garbage = true;
      } else {
        garbage = true;
      }
    } else if (reply.status().code() == StatusCode::kInvalidArgument) {
      garbage = true;  // bad frame magic / hostile length: junk on the wire
    }

    if (decoded.has_value()) {
      std::lock_guard<std::mutex> lock(mu_);
      s.consecutive_failures = 0;
      if (s.generation != generation_) {
        // Pool rolled mid-query (model reload): the answer stands, but the
        // worker pins a stale snapshot — replace it before the next lease.
        FailBusyWorkerLocked(s, /*intentional=*/true);
      } else {
        s.state = SlotState::kIdle;
      }
      lease_cv_.notify_all();
      return std::move(*decoded);
    }

    const bool hang = !garbage && reply.status().code() == StatusCode::kDeadlineExceeded;
    std::optional<Hash128> tripped;
    std::uint64_t failed_version = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      failed_version = s.snap_version;
      if (hang) {
        ++watchdog_kills_;
      } else if (garbage) {
        ++garbage_replies_;
      } else {
        ++crashes_;
      }
      FailBusyWorkerLocked(s, /*intentional=*/false);
      tripped = RecordFailureLocked(s.snap_digest);
      if (!hang && attempts_left > 0) ++crash_retried_queries_;
    }
    if (tripped.has_value() && on_trip_) on_trip_(*tripped);

    if (hang) {
      // No retry: the query itself may be pathological, and its deadline
      // is already blown. Answer what the estimator would have.
      QueryResponse resp;
      resp.status = Status::DeadlineExceeded(
          "query exceeded its deadline plus the " +
          std::to_string(opts_.grace_seconds) +
          "s grace period; the worker executing it was killed");
      resp.model_version = failed_version;
      return resp;
    }
    if (attempts_left > 0) continue;  // crash/garbage: once more, fresh worker

    QueryResponse resp;
    resp.status = Status::Unavailable(
        garbage ? "worker answered garbage and its retry was exhausted"
                : "worker crashed while executing the query (retry exhausted)");
    resp.model_version = failed_version;
    return resp;
  }
}

void WorkerSupervisor::ReaperLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    const auto now = Clock::now();
    bool spawned = false;
    std::optional<Hash128> tripped;
    for (Slot& s : slots_) {
      // Only the reaper calls waitpid, per-pid with WNOHANG — never -1,
      // so unrelated children of an embedding process are left alone.
      // Busy slots belong to their Execute thread (it observes the death
      // as EOF and moves the slot to kReaping for us).
      if (s.pid > 0 && (s.state == SlotState::kIdle || s.state == SlotState::kReaping)) {
        int status = 0;
        const pid_t reaped = ::waitpid(s.pid, &status, WNOHANG);
        if (reaped == s.pid) {
          if (s.state == SlotState::kIdle) {
            // Died while idle: external kill (chaos) or startup crash.
            s.fd.Close();
            ++s.consecutive_failures;
            ++restarts_;
            s.respawn_at =
                now + std::chrono::milliseconds(JitteredBackoffMs(
                          BackoffDelayMs(s.consecutive_failures, opts_.backoff_initial_ms,
                                         opts_.backoff_max_ms),
                          jitter_seed_, static_cast<std::uint64_t>(&s - slots_.data()),
                          static_cast<std::uint64_t>(s.consecutive_failures)));
            tripped = RecordFailureLocked(s.snap_digest);
          }
          s.pid = -1;
          s.state = SlotState::kWaitRespawn;
        }
      } else if (s.pid <= 0 && s.state == SlotState::kReaping) {
        s.state = SlotState::kWaitRespawn;
      }
      if ((s.state == SlotState::kWaitRespawn || s.state == SlotState::kEmpty) &&
          s.respawn_at <= now) {
        if (SpawnLocked(s)) spawned = true;
      }
    }
    if (spawned) lease_cv_.notify_all();
    if (tripped.has_value() && on_trip_) {
      // Fire the trip callback off the lock: it re-enters the supervisor
      // (RestartWorkers) and the registry.
      const Hash128 digest = *tripped;
      lock.unlock();
      on_trip_(digest);
      lock.lock();
      continue;
    }
    lease_cv_.wait_for(lock, kReaperTick);  // also woken by Stop()
  }
}

void WorkerSupervisor::RestartWorkers() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return;
  ++generation_;
  const auto now = Clock::now();
  for (Slot& s : slots_) {
    if (s.state == SlotState::kIdle) {
      FailBusyWorkerLocked(s, /*intentional=*/true);
      s.respawn_at = now;
    }
    // kBusy workers finish their in-flight query first; the Execute thread
    // retires them on reply (generation mismatch). Respawning slots pick
    // up the new snapshot when they spawn.
  }
}

bool WorkerSupervisor::IsQuarantined(const Hash128& digest) const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantined_.count(digest) != 0;
}

WorkerPoolStats WorkerSupervisor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WorkerPoolStats st;
  st.configured = static_cast<std::uint32_t>(slots_.size());
  for (const Slot& s : slots_) {
    if (s.pid > 0 && (s.state == SlotState::kIdle || s.state == SlotState::kBusy)) {
      ++st.alive;
    }
  }
  st.spawns = spawns_;
  st.restarts = restarts_;
  st.crashes = crashes_;
  st.watchdog_kills = watchdog_kills_;
  st.garbage_replies = garbage_replies_;
  st.crash_retried_queries = crash_retried_queries_;
  st.breaker_trips = breaker_trips_;
  st.quarantined_digests = static_cast<std::uint32_t>(quarantined_.size());
  if (provider_) {
    if (const auto snap = provider_()) {
      st.breaker_open = quarantined_.count(snap->digest) != 0;
    }
  }
  return st;
}

std::vector<pid_t> WorkerSupervisor::worker_pids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<pid_t> pids;
  for (const Slot& s : slots_) {
    if (s.pid > 0 && s.state != SlotState::kReaping && s.state != SlotState::kWaitRespawn) {
      pids.push_back(s.pid);
    }
  }
  return pids;
}

}  // namespace m3::serve
