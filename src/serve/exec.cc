#include "serve/exec.h"

#include <cstring>
#include <string>

namespace m3::serve {

TopoMemo::TopoMemo(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const FatTree> TopoMemo::For(double oversub) {
  std::uint64_t bits;  // bit-pattern key: exactly the double off the wire
  std::memcpy(&bits, &oversub, sizeof bits);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = topos_.begin(); it != topos_.end(); ++it) {
    if (it->first == bits) {
      auto ft = it->second;
      topos_.erase(it);
      topos_.emplace_back(bits, ft);  // refresh recency
      return ft;
    }
  }
  auto ft = std::make_shared<const FatTree>(FatTreeConfig::Small(oversub));
  if (topos_.size() >= capacity_) topos_.erase(topos_.begin());
  topos_.emplace_back(bits, ft);
  return ft;
}

std::size_t TopoMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return topos_.size();
}

bool IsAnsweredCode(StatusCode code) {
  return code == StatusCode::kOk || code == StatusCode::kDegraded ||
         code == StatusCode::kDeadlineExceeded;
}

QueryResponse ExecuteQueryOnSnapshot(const QueryRequest& req, const ModelSnapshot& snap,
                                     const ExecContext& ctx) {
  QueryResponse resp;
  resp.model_version = snap.version;
  resp.model_crc = snap.param_crc;

  if (!(req.oversub >= 0.0625 && req.oversub <= 64.0)) {
    resp.status = Status::InvalidArgument(
        "oversub: " + std::to_string(req.oversub) + " (must be in [0.0625, 64])");
    return resp;
  }
  const std::shared_ptr<const FatTree> ft = ctx.topos->For(req.oversub);

  std::vector<Flow> flows;
  flows.reserve(req.flows.size());
  const int num_hosts = ft->num_hosts();
  for (std::size_t i = 0; i < req.flows.size(); ++i) {
    const WireFlow& wf = req.flows[i];
    const auto bad = [&](const std::string& field, long long v, const std::string& want) {
      return Status::InvalidArgument("flows[" + std::to_string(i) + "]." + field + ": " +
                                     std::to_string(v) + " (" + want + ")");
    };
    Status st;
    if (wf.src_host < 0 || wf.src_host >= num_hosts) {
      st = bad("src", wf.src_host, "host index in [0, " + std::to_string(num_hosts) + ")");
    } else if (wf.dst_host < 0 || wf.dst_host >= num_hosts) {
      st = bad("dst", wf.dst_host, "host index in [0, " + std::to_string(num_hosts) + ")");
    } else if (wf.src_host == wf.dst_host) {
      st = bad("dst", wf.dst_host, "must differ from src");
    } else if (wf.priority >= kNumPriorities) {
      st = bad("priority", wf.priority, "class in [0, " + std::to_string(kNumPriorities) + ")");
    }
    if (!st.ok()) {
      resp.status = st;
      resp.degradation.errors_validation = 1;
      return resp;
    }
    Flow f;
    f.id = wf.id;
    f.src = ft->host(wf.src_host);
    f.dst = ft->host(wf.dst_host);
    f.size = wf.size;
    f.arrival = wf.arrival;
    f.priority = wf.priority;
    // Route re-derivation, same ECMP-on-id convention as trace_io.
    f.path = ft->RouteBetween(wf.src_host, wf.dst_host, static_cast<std::uint64_t>(wf.id));
    flows.push_back(std::move(f));
  }

  M3Options mopts;
  mopts.num_paths = req.num_paths;
  mopts.seed = req.seed;
  mopts.use_context = req.use_context;
  mopts.strict = req.strict;
  mopts.deadline_seconds = req.deadline_seconds;
  mopts.max_attempts = req.max_attempts;
  mopts.num_threads = ctx.threads_per_query;

  PathCacheHooks hooks;
  if (!req.no_cache && ctx.path_cache != nullptr) {
    hooks.lookup = [&ctx, &req, &snap](const PathScenario& sc) {
      return ctx.path_cache->Lookup(
          PathCacheKey(sc, req.cfg, req.use_context, snap.digest));
    };
    hooks.insert = [&ctx, &req, &snap](const PathScenario& sc, const PathEstimate& pe) {
      ctx.path_cache->Insert(PathCacheKey(sc, req.cfg, req.use_context, snap.digest), pe);
    };
    mopts.path_cache = &hooks;
  }

  NetworkEstimate est = RunM3(ft->topo(), flows, req.cfg, snap.model, mopts);

  resp.status = est.status;
  resp.bucket_pct = std::move(est.bucket_pct);
  resp.total_counts = est.total_counts;
  resp.combined_pct = std::move(est.combined_pct);
  resp.wall_seconds = est.wall_seconds;
  resp.degradation = est.degradation;
  return resp;
}

}  // namespace m3::serve
