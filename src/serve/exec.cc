#include "serve/exec.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <string>

namespace m3::serve {
namespace {

// Bounds for an explicit (v3) topology shape. The large paper testbed is
// 6144 hosts; the cap leaves headroom without letting a hostile request
// allocate an arbitrarily large fabric.
constexpr int kMaxTopoDim = 512;
constexpr int kMaxTopoHosts = 16384;

Status ValidateTopoShape(const WireTopo& t) {
  const auto bad = [](const char* field, int v, const std::string& want) {
    return Status::InvalidArgument(std::string("topo.") + field + ": " + std::to_string(v) +
                                   " (" + want + ")");
  };
  const auto dim = [&](const char* field, int v) {
    return v >= 1 && v <= kMaxTopoDim
               ? Status::Ok()
               : bad(field, v, "must be in [1, " + std::to_string(kMaxTopoDim) + "]");
  };
  M3_RETURN_IF_ERROR(dim("pods", t.pods));
  M3_RETURN_IF_ERROR(dim("racks_per_pod", t.racks_per_pod));
  M3_RETURN_IF_ERROR(dim("hosts_per_rack", t.hosts_per_rack));
  M3_RETURN_IF_ERROR(dim("fabric_per_pod", t.fabric_per_pod));
  M3_RETURN_IF_ERROR(dim("spines_per_plane", t.spines_per_plane));
  const long long hosts = static_cast<long long>(t.pods) * t.racks_per_pod * t.hosts_per_rack;
  if (hosts > kMaxTopoHosts) {
    return bad("hosts", static_cast<int>(hosts),
               "total hosts must be <= " + std::to_string(kMaxTopoHosts));
  }
  return Status::Ok();
}

FatTreeConfig ConfigForRequest(const QueryRequest& req) {
  if (req.topo.IsDefault()) return FatTreeConfig::Small(req.oversub);
  FatTreeConfig cfg;
  cfg.pods = req.topo.pods;
  cfg.racks_per_pod = req.topo.racks_per_pod;
  cfg.hosts_per_rack = req.topo.hosts_per_rack;
  cfg.fabric_per_pod = req.topo.fabric_per_pod;
  cfg.spines_per_plane = req.topo.spines_per_plane;
  return cfg;
}

}  // namespace

TopoMemo::TopoMemo(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const FatTree> TopoMemo::For(double oversub, const WireTopo& topo) {
  Key key;
  key.topo = topo;
  // Bit-pattern term: exactly the double off the wire.
  std::memcpy(&key.oversub_bits, &oversub, sizeof key.oversub_bits);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = topos_.begin(); it != topos_.end(); ++it) {
    if (it->first == key) {
      auto ft = it->second;
      topos_.erase(it);
      topos_.emplace_back(key, ft);  // refresh recency
      return ft;
    }
  }
  QueryRequest shape;
  shape.oversub = oversub;
  shape.topo = topo;
  auto ft = std::make_shared<const FatTree>(ConfigForRequest(shape));
  if (topos_.size() >= capacity_) topos_.erase(topos_.begin());
  topos_.emplace_back(key, ft);
  return ft;
}

std::size_t TopoMemo::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return topos_.size();
}

bool IsAnsweredCode(StatusCode code) {
  return code == StatusCode::kOk || code == StatusCode::kDegraded ||
         code == StatusCode::kDeadlineExceeded;
}

StatusOr<std::shared_ptr<const FatTree>> TopoForRequest(const QueryRequest& req,
                                                        TopoMemo* memo) {
  if (req.topo.IsDefault()) {
    if (!(req.oversub >= 0.0625 && req.oversub <= 64.0)) {
      return Status::InvalidArgument("oversub: " + std::to_string(req.oversub) +
                                     " (must be in [0.0625, 64])");
    }
  } else {
    M3_RETURN_IF_ERROR(ValidateTopoShape(req.topo));
  }
  return memo->For(req.oversub, req.topo);
}

Status BuildRequestFlows(const QueryRequest& req, const FatTree& ft, std::vector<Flow>* out) {
  std::vector<Flow> flows;
  flows.reserve(req.flows.size());
  const int num_hosts = ft.num_hosts();
  for (std::size_t i = 0; i < req.flows.size(); ++i) {
    const WireFlow& wf = req.flows[i];
    const auto bad = [&](const std::string& field, long long v, const std::string& want) {
      return Status::InvalidArgument("flows[" + std::to_string(i) + "]." + field + ": " +
                                     std::to_string(v) + " (" + want + ")");
    };
    if (wf.src_host < 0 || wf.src_host >= num_hosts) {
      return bad("src", wf.src_host, "host index in [0, " + std::to_string(num_hosts) + ")");
    }
    if (wf.dst_host < 0 || wf.dst_host >= num_hosts) {
      return bad("dst", wf.dst_host, "host index in [0, " + std::to_string(num_hosts) + ")");
    }
    if (wf.src_host == wf.dst_host) {
      return bad("dst", wf.dst_host, "must differ from src");
    }
    if (wf.priority >= kNumPriorities) {
      return bad("priority", wf.priority, "class in [0, " + std::to_string(kNumPriorities) + ")");
    }
    Flow f;
    f.id = wf.id;
    f.src = ft.host(wf.src_host);
    f.dst = ft.host(wf.dst_host);
    f.size = wf.size;
    f.arrival = wf.arrival;
    f.priority = wf.priority;
    // Route re-derivation, same ECMP-on-id convention as trace_io.
    f.path = ft.RouteBetween(wf.src_host, wf.dst_host, static_cast<std::uint64_t>(wf.id));
    flows.push_back(std::move(f));
  }
  *out = std::move(flows);
  return Status::Ok();
}

namespace {

// Shared setup for full and shard execution: validated topology, routed
// flows, and the request's M3Options (minus the slot filter).
struct PreparedQuery {
  std::shared_ptr<const FatTree> ft;
  std::vector<Flow> flows;
  M3Options mopts;
  Status status;  // non-ok => validation failed, nothing else populated
};

PreparedQuery PrepareQuery(const QueryRequest& req, const ExecContext& ctx) {
  PreparedQuery p;
  StatusOr<std::shared_ptr<const FatTree>> ft = TopoForRequest(req, ctx.topos);
  if (!ft.ok()) {
    p.status = ft.status();
    return p;
  }
  p.ft = std::move(*ft);
  if (Status st = BuildRequestFlows(req, *p.ft, &p.flows); !st.ok()) {
    p.status = st;
    return p;
  }
  p.mopts.num_paths = req.num_paths;
  p.mopts.seed = req.seed;
  p.mopts.use_context = req.use_context;
  p.mopts.strict = req.strict;
  p.mopts.deadline_seconds = req.deadline_seconds;
  p.mopts.max_attempts = req.max_attempts;
  p.mopts.num_threads = ctx.threads_per_query;
  return p;
}

// Brownout attribution + status upgrade (DESIGN.md §13). A browned-out
// answer is never silent: even when the reduced-quality run succeeds, the
// status is forced to kDegraded with the brownout named, and the
// DegradationReport carries the level and affected path count. Since only
// kOk answers are cached, a browned-out answer can never poison a cache.
void StampBrownout(std::uint8_t level, int paths_brownout, NetworkEstimate* est) {
  if (level == 0) return;
  est->degradation.brownout_level = level;
  est->degradation.paths_brownout = paths_brownout;
  if (est->status.ok()) {
    est->status = Status::Degraded(
        level >= 2 ? "brownout level 2: flowSim substituted for the model"
                   : "brownout level 1: path sample reduced under load");
  }
}

}  // namespace

QueryResponse ExecuteQueryOnSnapshot(const QueryRequest& req, const ModelSnapshot& snap,
                                     const ExecContext& ctx) {
  QueryResponse resp;
  resp.model_version = snap.version;
  resp.model_crc = snap.param_crc;

  PreparedQuery p = PrepareQuery(req, ctx);
  if (!p.status.ok()) {
    resp.status = p.status;
    resp.degradation.errors_validation = 1;
    return resp;
  }

  // Brownout level 1: halve the path sample (floor 16) — fewer model
  // invocations, wider per-path weights, same estimator ladder.
  int paths_brownout = 0;
  if (req.brownout == 1) {
    const std::int32_t reduced = std::max<std::int32_t>(16, req.num_paths / 2);
    if (reduced < req.num_paths) {
      p.mopts.num_paths = reduced;
      paths_brownout = static_cast<int>(req.num_paths - reduced);
    }
  }

  PathCacheHooks hooks;
  if (!req.no_cache && ctx.path_cache != nullptr) {
    hooks.lookup = [&ctx, &req, &snap](const PathScenario& sc) {
      return ctx.path_cache->Lookup(
          PathCacheKey(sc, req.cfg, req.use_context, snap.digest));
    };
    if (req.brownout < 2) {
      // flowSim-substitute estimates must never be cached under the
      // model-digest key (a later full-quality query would replay them).
      hooks.insert = [&ctx, &req, &snap](const PathScenario& sc, const PathEstimate& pe) {
        const Hash128 key = PathCacheKey(sc, req.cfg, req.use_context, snap.digest);
        if (ctx.path_cache->Insert(key, pe) && ctx.persist_path) {
          ctx.persist_path(key, snap.digest, pe);
        }
      };
    }
    p.mopts.path_cache = &hooks;
  }

  // Brownout level 2: substitute flowSim for the model — Parsimon's bet
  // that a cheap flow-level estimate beats a timeout under overload.
  NetworkEstimate est =
      req.brownout >= 2
          ? RunFlowSimOnly(p.ft->topo(), p.flows, req.cfg, p.mopts)
          : RunM3(p.ft->topo(), p.flows, req.cfg, snap.model, p.mopts);
  StampBrownout(req.brownout,
                req.brownout >= 2 ? static_cast<int>(p.mopts.num_paths)
                                  : paths_brownout,
                &est);

  resp.status = est.status;
  resp.bucket_pct = std::move(est.bucket_pct);
  resp.total_counts = est.total_counts;
  resp.combined_pct = std::move(est.combined_pct);
  resp.wall_seconds = est.wall_seconds;
  resp.degradation = est.degradation;
  return resp;
}

ShardQueryResponse ExecuteShardOnSnapshot(const ShardQueryRequest& req,
                                          const ModelSnapshot& snap, const ExecContext& ctx) {
  ShardQueryResponse resp;
  resp.model_version = snap.version;
  resp.model_crc = snap.param_crc;

  PreparedQuery p = PrepareQuery(req.query, ctx);
  if (!p.status.ok()) {
    resp.status = p.status;
    resp.degradation.errors_validation = 1;
    return resp;
  }
  // Shard brownout level 1 must not touch num_paths (slot indices are
  // derived from the full sample); instead serve only the first half of
  // the requested slots. The router's own ladder covers the omitted rest,
  // so the *shard's* model work halves while every slot still resolves.
  std::vector<std::uint32_t> reduced_slots;
  int paths_brownout = 0;
  if (req.query.brownout == 1 && req.slots.size() > 1) {
    reduced_slots.assign(req.slots.begin(),
                         req.slots.begin() +
                             static_cast<std::ptrdiff_t>((req.slots.size() + 1) / 2));
    paths_brownout = static_cast<int>(req.slots.size() - reduced_slots.size());
    p.mopts.sample_slots = &reduced_slots;
  } else {
    p.mopts.sample_slots = &req.slots;
  }

  PathCacheHooks hooks;
  if (!req.query.no_cache && ctx.path_cache != nullptr) {
    hooks.lookup = [&ctx, &req, &snap](const PathScenario& sc) {
      return ctx.path_cache->Lookup(
          PathCacheKey(sc, req.query.cfg, req.query.use_context, snap.digest));
    };
    if (req.query.brownout < 2) {
      // As in ExecuteQueryOnSnapshot: never cache flowSim substitutes
      // under the model-digest key.
      hooks.insert = [&ctx, &req, &snap](const PathScenario& sc, const PathEstimate& pe) {
        const Hash128 key =
            PathCacheKey(sc, req.query.cfg, req.query.use_context, snap.digest);
        if (ctx.path_cache->Insert(key, pe) && ctx.persist_path) {
          ctx.persist_path(key, snap.digest, pe);
        }
      };
    }
    p.mopts.path_cache = &hooks;
  }

  NetworkEstimate est =
      req.query.brownout >= 2
          ? RunFlowSimOnly(p.ft->topo(), p.flows, req.query.cfg, p.mopts)
          : RunM3(p.ft->topo(), p.flows, req.query.cfg, snap.model, p.mopts);
  StampBrownout(req.query.brownout,
                req.query.brownout >= 2 ? static_cast<int>(req.slots.size())
                                        : paths_brownout,
                &est);

  resp.status = est.status;
  resp.degradation = est.degradation;
  resp.wall_seconds = est.wall_seconds;
  if (est.status.code() != StatusCode::kInvalidArgument) {
    resp.estimates.reserve(req.slots.size());
    for (std::uint32_t slot : req.slots) {
      if (slot >= est.paths.size()) continue;  // rejected above; belt & braces
      const PathEstimate& pe = est.paths[slot];
      // A dropped slot is all-zero (no estimate); omit it so the router can
      // climb its own ladder for that slot instead of aggregating a blank.
      bool has_weight = false;
      for (double c : pe.counts) has_weight = has_weight || c > 0.0;
      if (!has_weight) continue;
      resp.estimates.push_back(SlotEstimateWire{slot, pe});
    }
  }
  return resp;
}

}  // namespace m3::serve
