#include "serve/wire.h"

#include <cstring>

#include "pathdecomp/path_topology.h"

namespace m3::serve {
namespace {

// Cache-key schema tags: bump when the hashed field set changes so old and
// new processes can never alias keys. v2 query key: + topology shape.
constexpr const char* kQueryKeySchema = "m3d/query-key/v2";
constexpr const char* kPathKeySchema = "m3d/path-key/v1";

// Upper bound on decoded vector lengths (percentile vectors are 100 wide;
// this is pure overread/OOM protection).
constexpr std::uint64_t kMaxVecLen = 1u << 20;
constexpr std::uint64_t kMaxStrLen = 1u << 20;
// Bytes per wire flow record (id, src, dst: i32; size, arrival: i64; prio: u8).
constexpr std::uint64_t kWireFlowBytes = 3 * 4 + 2 * 8 + 1;
// Bytes per slot estimate (slot u32 + 4x100 pct doubles + 4 count doubles).
constexpr std::uint64_t kSlotEstimateBytes =
    4 + std::uint64_t{kNumOutputBuckets} * kNumPercentiles * 8 + kNumOutputBuckets * 8;
// Minimum bytes per shard report (empty shard string: u64 len + 6 u32 + bool).
constexpr std::uint64_t kMinShardReportBytes = 8 + 6 * 4 + 1;
// Minimum bytes per shard health record (empty address: u64 len + 2 bools +
// 7 u64 counters).
constexpr std::uint64_t kMinShardHealthBytes = 8 + 2 + 7 * 8;

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) { Raw(&v, 4); }
  void U64(std::uint64_t v) { Raw(&v, 8); }
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  void F64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    U64(bits);
  }
  void Str(const std::string& s) {
    U64(s.size());
    out_.append(s);
  }
  void VecF64(const std::vector<double>& v) {
    U64(v.size());
    for (double d : v) F64(d);
  }
  std::string Take() { return std::move(out_); }

 private:
  void Raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);  // little-endian hosts
  }
  std::string out_;
};

class Reader {
 public:
  explicit Reader(const std::string& s) : s_(s) {}

  Status U8(std::uint8_t* v) {
    M3_RETURN_IF_ERROR(Need(1));
    *v = static_cast<std::uint8_t>(s_[pos_++]);
    return Status::Ok();
  }
  Status U32(std::uint32_t* v) { return Raw(v, 4); }
  Status U64(std::uint64_t* v) { return Raw(v, 8); }
  Status I32(std::int32_t* v) { return Raw(v, 4); }
  Status I64(std::int64_t* v) { return Raw(v, 8); }
  Status Bool(bool* v) {
    std::uint8_t b;
    M3_RETURN_IF_ERROR(U8(&b));
    if (b > 1) return Status::InvalidArgument("wire: bool byte " + std::to_string(b));
    *v = b != 0;
    return Status::Ok();
  }
  Status F64(double* v) {
    std::uint64_t bits;
    M3_RETURN_IF_ERROR(U64(&bits));
    std::memcpy(v, &bits, 8);
    return Status::Ok();
  }
  Status Str(std::string* v) {
    std::uint64_t len;
    M3_RETURN_IF_ERROR(U64(&len));
    if (len > kMaxStrLen) {
      return Status::InvalidArgument("wire: string length " + std::to_string(len));
    }
    M3_RETURN_IF_ERROR(Need(len));
    v->assign(s_, pos_, static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return Status::Ok();
  }
  Status VecF64(std::vector<double>* v) {
    std::uint64_t len;
    M3_RETURN_IF_ERROR(U64(&len));
    if (len > kMaxVecLen) {
      return Status::InvalidArgument("wire: vector length " + std::to_string(len));
    }
    M3_RETURN_IF_ERROR(Need(len * 8));
    v->resize(static_cast<std::size_t>(len));
    for (double& d : *v) M3_RETURN_IF_ERROR(F64(&d));
    return Status::Ok();
  }

  std::size_t remaining() const { return s_.size() - pos_; }

  Status ExpectEnd() const {
    if (pos_ != s_.size()) {
      return Status::InvalidArgument("wire: " + std::to_string(remaining()) +
                                     " trailing bytes after message");
    }
    return Status::Ok();
  }

 private:
  Status Need(std::uint64_t n) const {
    if (n > remaining()) {
      return Status::DataLoss("wire: truncated message (need " + std::to_string(n) +
                              " bytes at offset " + std::to_string(pos_) + ", have " +
                              std::to_string(remaining()) + ")");
    }
    return Status::Ok();
  }
  Status Raw(void* p, std::size_t n) {
    M3_RETURN_IF_ERROR(Need(n));
    std::memcpy(p, s_.data() + pos_, n);
    pos_ += n;
    return Status::Ok();
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Reads the leading version tag, accepting any version this build can
// decode. v4-only fields are gated on `*out >= 4` at each use site.
Status ReadVersion(Reader& r, std::uint32_t* out) {
  std::uint32_t v;
  M3_RETURN_IF_ERROR(r.U32(&v));
  if (v < kMinWireVersion || v > kWireVersion) {
    return Status::InvalidArgument("wire: protocol version " + std::to_string(v) +
                                   " (this build speaks " + std::to_string(kMinWireVersion) +
                                   ".." + std::to_string(kWireVersion) + ")");
  }
  *out = v;
  return Status::Ok();
}

// Encoders clamp the requested version into the supported band so a caller
// echoing a sniffed version can never emit something undecodable.
std::uint32_t ClampVersion(std::uint32_t v) {
  if (v < kMinWireVersion) return kMinWireVersion;
  if (v > kWireVersion) return kWireVersion;
  return v;
}

void EncodeNetConfig(Writer& w, const NetConfig& cfg) {
  w.U8(static_cast<std::uint8_t>(cfg.cc));
  w.I64(cfg.init_window);
  w.I64(cfg.buffer);
  w.Bool(cfg.pfc);
  w.I64(cfg.dctcp_k);
  w.I64(cfg.dcqcn_kmin);
  w.I64(cfg.dcqcn_kmax);
  w.F64(cfg.hpcc_eta);
  w.F64(cfg.hpcc_rate_ai_gbps);
  w.I64(cfg.timely_tlow);
  w.I64(cfg.timely_thigh);
  w.I64(cfg.mtu);
  w.I64(cfg.hdr);
  w.U64(cfg.seed);
}

Status DecodeNetConfig(Reader& r, NetConfig* cfg) {
  std::uint8_t cc;
  M3_RETURN_IF_ERROR(r.U8(&cc));
  if (cc >= kNumCcTypes) {
    return Status::InvalidArgument("wire: cc protocol " + std::to_string(cc));
  }
  cfg->cc = static_cast<CcType>(cc);
  M3_RETURN_IF_ERROR(r.I64(&cfg->init_window));
  M3_RETURN_IF_ERROR(r.I64(&cfg->buffer));
  M3_RETURN_IF_ERROR(r.Bool(&cfg->pfc));
  M3_RETURN_IF_ERROR(r.I64(&cfg->dctcp_k));
  M3_RETURN_IF_ERROR(r.I64(&cfg->dcqcn_kmin));
  M3_RETURN_IF_ERROR(r.I64(&cfg->dcqcn_kmax));
  M3_RETURN_IF_ERROR(r.F64(&cfg->hpcc_eta));
  M3_RETURN_IF_ERROR(r.F64(&cfg->hpcc_rate_ai_gbps));
  M3_RETURN_IF_ERROR(r.I64(&cfg->timely_tlow));
  M3_RETURN_IF_ERROR(r.I64(&cfg->timely_thigh));
  M3_RETURN_IF_ERROR(r.I64(&cfg->mtu));
  M3_RETURN_IF_ERROR(r.I64(&cfg->hdr));
  M3_RETURN_IF_ERROR(r.U64(&cfg->seed));
  return Status::Ok();
}

void HashNetConfig(Hasher& h, const NetConfig& cfg) {
  h.U8(static_cast<std::uint8_t>(cfg.cc));
  h.I64(cfg.init_window);
  h.I64(cfg.buffer);
  h.Bool(cfg.pfc);
  h.I64(cfg.dctcp_k);
  h.I64(cfg.dcqcn_kmin);
  h.I64(cfg.dcqcn_kmax);
  h.F64(cfg.hpcc_eta);
  h.F64(cfg.hpcc_rate_ai_gbps);
  h.I64(cfg.timely_tlow);
  h.I64(cfg.timely_thigh);
  h.I64(cfg.mtu);
  h.I64(cfg.hdr);
  h.U64(cfg.seed);
}

void EncodeTopo(Writer& w, const WireTopo& t) {
  w.I32(t.pods);
  w.I32(t.racks_per_pod);
  w.I32(t.hosts_per_rack);
  w.I32(t.fabric_per_pod);
  w.I32(t.spines_per_plane);
}

Status DecodeTopo(Reader& r, WireTopo* t) {
  M3_RETURN_IF_ERROR(r.I32(&t->pods));
  M3_RETURN_IF_ERROR(r.I32(&t->racks_per_pod));
  M3_RETURN_IF_ERROR(r.I32(&t->hosts_per_rack));
  M3_RETURN_IF_ERROR(r.I32(&t->fabric_per_pod));
  M3_RETURN_IF_ERROR(r.I32(&t->spines_per_plane));
  return Status::Ok();
}

void EncodePathEstimate(Writer& w, const PathEstimate& pe) {
  for (const auto& bucket : pe.pct) {
    for (double v : bucket) w.F64(v);
  }
  for (double c : pe.counts) w.F64(c);
}

Status DecodePathEstimate(Reader& r, PathEstimate* pe) {
  for (auto& bucket : pe->pct) {
    for (double& v : bucket) M3_RETURN_IF_ERROR(r.F64(&v));
  }
  for (double& c : pe->counts) M3_RETURN_IF_ERROR(r.F64(&c));
  return Status::Ok();
}

void EncodeShardReports(Writer& w, const std::vector<ShardReportWire>& shards) {
  w.U64(shards.size());
  for (const ShardReportWire& s : shards) {
    w.Str(s.shard);
    w.U32(s.slots_assigned);
    w.U32(s.slots_ok);
    w.U32(s.slots_fallback);
    w.U32(s.slots_dropped);
    w.U32(s.retries);
    w.U32(s.hedges);
    w.Bool(s.breaker_open);
  }
}

Status DecodeShardReports(Reader& r, std::vector<ShardReportWire>* shards) {
  std::uint64_t n;
  M3_RETURN_IF_ERROR(r.U64(&n));
  // Division form so a hostile 64-bit count cannot wrap past the check.
  if (n > r.remaining() / kMinShardReportBytes) {
    return Status::DataLoss("wire: shard report count " + std::to_string(n) +
                            " exceeds the remaining payload");
  }
  shards->resize(static_cast<std::size_t>(n));
  for (ShardReportWire& s : *shards) {
    M3_RETURN_IF_ERROR(r.Str(&s.shard));
    M3_RETURN_IF_ERROR(r.U32(&s.slots_assigned));
    M3_RETURN_IF_ERROR(r.U32(&s.slots_ok));
    M3_RETURN_IF_ERROR(r.U32(&s.slots_fallback));
    M3_RETURN_IF_ERROR(r.U32(&s.slots_dropped));
    M3_RETURN_IF_ERROR(r.U32(&s.retries));
    M3_RETURN_IF_ERROR(r.U32(&s.hedges));
    M3_RETURN_IF_ERROR(r.Bool(&s.breaker_open));
  }
  return Status::Ok();
}

void EncodeStatus(Writer& w, const Status& st) {
  w.I32(static_cast<std::int32_t>(st.code()));
  w.Str(st.message());
}

Status DecodeStatus(Reader& r, Status* st) {
  std::int32_t code;
  std::string msg;
  M3_RETURN_IF_ERROR(r.I32(&code));
  M3_RETURN_IF_ERROR(r.Str(&msg));
  if (code < 0 || code >= kNumStatusCodes) {
    return Status::InvalidArgument("wire: status code " + std::to_string(code));
  }
  *st = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::Ok();
}

void EncodeDegradation(Writer& w, const DegradationReport& d, std::uint32_t v) {
  w.I32(d.paths_ok);
  w.I32(d.paths_cached);
  w.I32(d.paths_retried);
  w.I32(d.paths_degraded);
  w.I32(d.paths_dropped);
  w.I32(d.errors_exception);
  w.I32(d.errors_nonfinite);
  w.I32(d.errors_deadline);
  w.I32(d.errors_validation);
  w.I64(d.clamped_values);
  w.Str(d.first_error);
  if (v >= 4) {
    w.I32(d.brownout_level);
    w.I32(d.paths_brownout);
  }
}

Status DecodeDegradation(Reader& r, DegradationReport* d, std::uint32_t v) {
  M3_RETURN_IF_ERROR(r.I32(&d->paths_ok));
  M3_RETURN_IF_ERROR(r.I32(&d->paths_cached));
  M3_RETURN_IF_ERROR(r.I32(&d->paths_retried));
  M3_RETURN_IF_ERROR(r.I32(&d->paths_degraded));
  M3_RETURN_IF_ERROR(r.I32(&d->paths_dropped));
  M3_RETURN_IF_ERROR(r.I32(&d->errors_exception));
  M3_RETURN_IF_ERROR(r.I32(&d->errors_nonfinite));
  M3_RETURN_IF_ERROR(r.I32(&d->errors_deadline));
  M3_RETURN_IF_ERROR(r.I32(&d->errors_validation));
  std::int64_t clamped = 0;  // DegradationReport uses `long long`
  M3_RETURN_IF_ERROR(r.I64(&clamped));
  d->clamped_values = clamped;
  M3_RETURN_IF_ERROR(r.Str(&d->first_error));
  if (v >= 4) {
    M3_RETURN_IF_ERROR(r.I32(&d->brownout_level));
    M3_RETURN_IF_ERROR(r.I32(&d->paths_brownout));
  }
  return Status::Ok();
}

void EncodeStatsBody(Writer& w, const ServerStatsWire& s, std::uint32_t v) {
  w.U64(s.queries_received);
  w.U64(s.queries_ok);
  w.U64(s.queries_rejected);
  w.U64(s.queries_failed);
  for (std::uint64_t v : s.query_cache) w.U64(v);
  for (std::uint64_t v : s.path_cache) w.U64(v);
  w.U32(s.queue_depth);
  w.U32(s.queue_capacity);
  w.U32(s.workers);
  w.U64(s.model_version);
  w.U32(s.model_crc);
  w.U64(s.reloads_ok);
  w.U64(s.reloads_failed);
  w.Str(s.model_path);
  w.Bool(s.worker_mode);
  w.U32(s.workers_configured);
  w.U32(s.workers_alive);
  w.U64(s.worker_spawns);
  w.U64(s.worker_restarts);
  w.U64(s.worker_crashes);
  w.U64(s.watchdog_kills);
  w.U64(s.garbage_replies);
  w.U64(s.crash_retried_queries);
  w.U64(s.breaker_trips);
  w.Bool(s.breaker_open);
  w.U32(s.quarantined_digests);
  w.Bool(s.router_mode);
  w.U64(s.shards.size());
  for (const ShardHealthWire& sh : s.shards) {
    w.Str(sh.address);
    w.Bool(sh.healthy);
    w.Bool(sh.breaker_open);
    w.U64(sh.model_version);
    w.U64(sh.dispatches);
    w.U64(sh.failures);
    w.U64(sh.retries);
    w.U64(sh.hedges);
    w.U64(sh.slots_fallback);
    w.U64(sh.slots_dropped);
  }
  if (v >= 4) {
    w.U64(s.queries_shed);
    for (std::uint64_t c : s.shed_by_reason) w.U64(c);
    w.U64(s.brownout_queries);
    w.U32(s.brownout_level);
    w.F64(s.in_flight_cost);
    w.F64(s.cost_budget);
    // Persistence tail (v4 additive): appended last so decoders written
    // before it see a clean end-of-body, and this decoder length-gates it.
    w.Bool(s.persist_enabled);
    w.U64(s.persist_segments_loaded);
    w.U64(s.persist_entries_loaded);
    w.U64(s.persist_entries_flushed);
    w.U64(s.persist_records_corrupt);
    w.U64(s.persist_digest_dropped);
    w.U64(s.persist_flush_backlog);
  }
}

// Size of the v4 persistence tail: enabled bool + 6 u64 counters. The
// stats body is always the last element of its payload, so remaining()
// tells us whether the peer's build had it.
constexpr std::size_t kPersistTailBytes = 1 + 6 * 8;

Status DecodeStatsBody(Reader& r, ServerStatsWire* s, std::uint32_t v) {
  M3_RETURN_IF_ERROR(r.U64(&s->queries_received));
  M3_RETURN_IF_ERROR(r.U64(&s->queries_ok));
  M3_RETURN_IF_ERROR(r.U64(&s->queries_rejected));
  M3_RETURN_IF_ERROR(r.U64(&s->queries_failed));
  for (std::uint64_t& v : s->query_cache) M3_RETURN_IF_ERROR(r.U64(&v));
  for (std::uint64_t& v : s->path_cache) M3_RETURN_IF_ERROR(r.U64(&v));
  M3_RETURN_IF_ERROR(r.U32(&s->queue_depth));
  M3_RETURN_IF_ERROR(r.U32(&s->queue_capacity));
  M3_RETURN_IF_ERROR(r.U32(&s->workers));
  M3_RETURN_IF_ERROR(r.U64(&s->model_version));
  M3_RETURN_IF_ERROR(r.U32(&s->model_crc));
  M3_RETURN_IF_ERROR(r.U64(&s->reloads_ok));
  M3_RETURN_IF_ERROR(r.U64(&s->reloads_failed));
  M3_RETURN_IF_ERROR(r.Str(&s->model_path));
  M3_RETURN_IF_ERROR(r.Bool(&s->worker_mode));
  M3_RETURN_IF_ERROR(r.U32(&s->workers_configured));
  M3_RETURN_IF_ERROR(r.U32(&s->workers_alive));
  M3_RETURN_IF_ERROR(r.U64(&s->worker_spawns));
  M3_RETURN_IF_ERROR(r.U64(&s->worker_restarts));
  M3_RETURN_IF_ERROR(r.U64(&s->worker_crashes));
  M3_RETURN_IF_ERROR(r.U64(&s->watchdog_kills));
  M3_RETURN_IF_ERROR(r.U64(&s->garbage_replies));
  M3_RETURN_IF_ERROR(r.U64(&s->crash_retried_queries));
  M3_RETURN_IF_ERROR(r.U64(&s->breaker_trips));
  M3_RETURN_IF_ERROR(r.Bool(&s->breaker_open));
  M3_RETURN_IF_ERROR(r.U32(&s->quarantined_digests));
  M3_RETURN_IF_ERROR(r.Bool(&s->router_mode));
  std::uint64_t n;
  M3_RETURN_IF_ERROR(r.U64(&n));
  if (n > r.remaining() / kMinShardHealthBytes) {
    return Status::DataLoss("wire: shard health count " + std::to_string(n) +
                            " exceeds the remaining payload");
  }
  s->shards.resize(static_cast<std::size_t>(n));
  for (ShardHealthWire& sh : s->shards) {
    M3_RETURN_IF_ERROR(r.Str(&sh.address));
    M3_RETURN_IF_ERROR(r.Bool(&sh.healthy));
    M3_RETURN_IF_ERROR(r.Bool(&sh.breaker_open));
    M3_RETURN_IF_ERROR(r.U64(&sh.model_version));
    M3_RETURN_IF_ERROR(r.U64(&sh.dispatches));
    M3_RETURN_IF_ERROR(r.U64(&sh.failures));
    M3_RETURN_IF_ERROR(r.U64(&sh.retries));
    M3_RETURN_IF_ERROR(r.U64(&sh.hedges));
    M3_RETURN_IF_ERROR(r.U64(&sh.slots_fallback));
    M3_RETURN_IF_ERROR(r.U64(&sh.slots_dropped));
  }
  if (v >= 4) {
    M3_RETURN_IF_ERROR(r.U64(&s->queries_shed));
    for (std::uint64_t& c : s->shed_by_reason) M3_RETURN_IF_ERROR(r.U64(&c));
    M3_RETURN_IF_ERROR(r.U64(&s->brownout_queries));
    M3_RETURN_IF_ERROR(r.U32(&s->brownout_level));
    M3_RETURN_IF_ERROR(r.F64(&s->in_flight_cost));
    M3_RETURN_IF_ERROR(r.F64(&s->cost_budget));
    if (r.remaining() >= kPersistTailBytes) {
      M3_RETURN_IF_ERROR(r.Bool(&s->persist_enabled));
      M3_RETURN_IF_ERROR(r.U64(&s->persist_segments_loaded));
      M3_RETURN_IF_ERROR(r.U64(&s->persist_entries_loaded));
      M3_RETURN_IF_ERROR(r.U64(&s->persist_entries_flushed));
      M3_RETURN_IF_ERROR(r.U64(&s->persist_records_corrupt));
      M3_RETURN_IF_ERROR(r.U64(&s->persist_digest_dropped));
      M3_RETURN_IF_ERROR(r.U64(&s->persist_flush_backlog));
    }
  }
  return Status::Ok();
}

}  // namespace

std::uint32_t PeekWireVersion(const std::string& payload) {
  if (payload.size() < 4) return kMinWireVersion;
  std::uint32_t v;
  std::memcpy(&v, payload.data(), 4);
  return (v >= kMinWireVersion && v <= kWireVersion) ? v : kMinWireVersion;
}

std::string EncodeQueryRequest(const QueryRequest& req, std::uint32_t version) {
  const std::uint32_t v = ClampVersion(version);
  Writer w;
  w.U32(v);
  w.F64(req.oversub);
  EncodeTopo(w, req.topo);
  EncodeNetConfig(w, req.cfg);
  w.I32(req.num_paths);
  w.U64(req.seed);
  w.Bool(req.use_context);
  w.Bool(req.strict);
  w.F64(req.deadline_seconds);
  w.I32(req.max_attempts);
  w.Bool(req.no_cache);
  if (v >= 4) {
    w.U8(req.priority);
    w.U8(req.brownout);
  }
  w.U64(req.flows.size());
  for (const WireFlow& f : req.flows) {
    w.I32(f.id);
    w.I32(f.src_host);
    w.I32(f.dst_host);
    w.I64(f.size);
    w.I64(f.arrival);
    w.U8(f.priority);
  }
  return w.Take();
}

StatusOr<QueryRequest> DecodeQueryRequest(const std::string& payload) {
  Reader r(payload);
  QueryRequest req;
  M3_RETURN_IF_ERROR(ReadVersion(r, &req.wire_version));
  M3_RETURN_IF_ERROR(r.F64(&req.oversub));
  M3_RETURN_IF_ERROR(DecodeTopo(r, &req.topo));
  M3_RETURN_IF_ERROR(DecodeNetConfig(r, &req.cfg));
  M3_RETURN_IF_ERROR(r.I32(&req.num_paths));
  M3_RETURN_IF_ERROR(r.U64(&req.seed));
  M3_RETURN_IF_ERROR(r.Bool(&req.use_context));
  M3_RETURN_IF_ERROR(r.Bool(&req.strict));
  M3_RETURN_IF_ERROR(r.F64(&req.deadline_seconds));
  M3_RETURN_IF_ERROR(r.I32(&req.max_attempts));
  M3_RETURN_IF_ERROR(r.Bool(&req.no_cache));
  if (req.wire_version >= 4) {
    M3_RETURN_IF_ERROR(r.U8(&req.priority));
    if (req.priority >= kNumPriorityClasses) {
      return Status::InvalidArgument("wire: priority class " +
                                     std::to_string(req.priority));
    }
    M3_RETURN_IF_ERROR(r.U8(&req.brownout));
    if (req.brownout > 2) {
      return Status::InvalidArgument("wire: brownout level " +
                                     std::to_string(req.brownout));
    }
  }
  std::uint64_t n;
  M3_RETURN_IF_ERROR(r.U64(&n));
  // Division form: `n * kWireFlowBytes` can wrap for a hostile 64-bit count
  // (the record size is odd, so every product value is reachable mod 2^64),
  // which would let the resize below throw past the bounds check.
  if (n > r.remaining() / kWireFlowBytes) {
    return Status::DataLoss("wire: flow count " + std::to_string(n) +
                            " exceeds the remaining payload");
  }
  req.flows.resize(static_cast<std::size_t>(n));
  for (WireFlow& f : req.flows) {
    M3_RETURN_IF_ERROR(r.I32(&f.id));
    M3_RETURN_IF_ERROR(r.I32(&f.src_host));
    M3_RETURN_IF_ERROR(r.I32(&f.dst_host));
    M3_RETURN_IF_ERROR(r.I64(&f.size));
    M3_RETURN_IF_ERROR(r.I64(&f.arrival));
    M3_RETURN_IF_ERROR(r.U8(&f.priority));
  }
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

std::string EncodeQueryResponse(const QueryResponse& resp, std::uint32_t version) {
  const std::uint32_t v = ClampVersion(version);
  Writer w;
  w.U32(v);
  EncodeStatus(w, resp.status);
  for (const auto& pct : resp.bucket_pct) w.VecF64(pct);
  for (double c : resp.total_counts) w.F64(c);
  w.VecF64(resp.combined_pct);
  w.F64(resp.wall_seconds);
  EncodeDegradation(w, resp.degradation, v);
  w.U64(resp.model_version);
  w.U32(resp.model_crc);
  w.Bool(resp.query_cache_hit);
  if (v >= 4) w.U8(resp.shed_reason);
  EncodeShardReports(w, resp.shards);
  EncodeStatsBody(w, resp.stats, v);
  return w.Take();
}

StatusOr<QueryResponse> DecodeQueryResponse(const std::string& payload) {
  Reader r(payload);
  QueryResponse resp;
  std::uint32_t v;
  M3_RETURN_IF_ERROR(ReadVersion(r, &v));
  M3_RETURN_IF_ERROR(DecodeStatus(r, &resp.status));
  for (auto& pct : resp.bucket_pct) M3_RETURN_IF_ERROR(r.VecF64(&pct));
  for (double& c : resp.total_counts) M3_RETURN_IF_ERROR(r.F64(&c));
  M3_RETURN_IF_ERROR(r.VecF64(&resp.combined_pct));
  M3_RETURN_IF_ERROR(r.F64(&resp.wall_seconds));
  M3_RETURN_IF_ERROR(DecodeDegradation(r, &resp.degradation, v));
  M3_RETURN_IF_ERROR(r.U64(&resp.model_version));
  M3_RETURN_IF_ERROR(r.U32(&resp.model_crc));
  M3_RETURN_IF_ERROR(r.Bool(&resp.query_cache_hit));
  if (v >= 4) {
    M3_RETURN_IF_ERROR(r.U8(&resp.shed_reason));
    if (resp.shed_reason >= kNumShedReasons) {
      return Status::InvalidArgument("wire: shed reason " +
                                     std::to_string(resp.shed_reason));
    }
  }
  M3_RETURN_IF_ERROR(DecodeShardReports(r, &resp.shards));
  M3_RETURN_IF_ERROR(DecodeStatsBody(r, &resp.stats, v));
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return resp;
}

std::string EncodeStatsRequest(std::uint32_t version) {
  Writer w;
  w.U32(ClampVersion(version));
  return w.Take();
}

std::string EncodeStats(const ServerStatsWire& stats, std::uint32_t version) {
  const std::uint32_t v = ClampVersion(version);
  Writer w;
  w.U32(v);
  EncodeStatsBody(w, stats, v);
  return w.Take();
}

StatusOr<ServerStatsWire> DecodeStats(const std::string& payload) {
  Reader r(payload);
  ServerStatsWire s;
  std::uint32_t v;
  M3_RETURN_IF_ERROR(ReadVersion(r, &v));
  M3_RETURN_IF_ERROR(DecodeStatsBody(r, &s, v));
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

std::string EncodeReloadRequest(const ReloadRequest& req, std::uint32_t version) {
  Writer w;
  w.U32(ClampVersion(version));
  w.Str(req.checkpoint_path);
  return w.Take();
}

StatusOr<ReloadRequest> DecodeReloadRequest(const std::string& payload) {
  Reader r(payload);
  ReloadRequest req;
  M3_RETURN_IF_ERROR(ReadVersion(r, &req.wire_version));
  M3_RETURN_IF_ERROR(r.Str(&req.checkpoint_path));
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

std::string EncodeReloadResponse(const ReloadResponse& resp, std::uint32_t version) {
  Writer w;
  w.U32(ClampVersion(version));
  EncodeStatus(w, resp.status);
  w.U64(resp.model_version);
  w.U32(resp.model_crc);
  return w.Take();
}

StatusOr<ReloadResponse> DecodeReloadResponse(const std::string& payload) {
  Reader r(payload);
  ReloadResponse resp;
  std::uint32_t v;
  M3_RETURN_IF_ERROR(ReadVersion(r, &v));
  M3_RETURN_IF_ERROR(DecodeStatus(r, &resp.status));
  M3_RETURN_IF_ERROR(r.U64(&resp.model_version));
  M3_RETURN_IF_ERROR(r.U32(&resp.model_crc));
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return resp;
}

std::string EncodePingRequest(std::uint32_t version) {
  Writer w;
  w.U32(ClampVersion(version));
  return w.Take();
}

Status DecodePingRequest(const std::string& payload) {
  Reader r(payload);
  std::uint32_t v;
  M3_RETURN_IF_ERROR(ReadVersion(r, &v));
  return r.ExpectEnd();
}

std::string EncodePingResponse(const PingResponse& resp, std::uint32_t version) {
  const std::uint32_t v = ClampVersion(version);
  Writer w;
  w.U32(v);
  w.Bool(resp.ready);
  w.Bool(resp.worker_mode);
  w.U64(resp.model_version);
  w.U32(resp.workers_alive);
  w.Bool(resp.router_mode);
  w.U32(resp.shards_healthy);
  w.U32(resp.shards_total);
  if (v >= 4) w.U32(resp.model_crc);
  return w.Take();
}

StatusOr<PingResponse> DecodePingResponse(const std::string& payload) {
  Reader r(payload);
  PingResponse resp;
  std::uint32_t v;
  M3_RETURN_IF_ERROR(ReadVersion(r, &v));
  M3_RETURN_IF_ERROR(r.Bool(&resp.ready));
  M3_RETURN_IF_ERROR(r.Bool(&resp.worker_mode));
  M3_RETURN_IF_ERROR(r.U64(&resp.model_version));
  M3_RETURN_IF_ERROR(r.U32(&resp.workers_alive));
  M3_RETURN_IF_ERROR(r.Bool(&resp.router_mode));
  M3_RETURN_IF_ERROR(r.U32(&resp.shards_healthy));
  M3_RETURN_IF_ERROR(r.U32(&resp.shards_total));
  // model_crc is a v4 additive tail: absent from older v4 builds' payloads.
  if (v >= 4 && r.remaining() >= 4) M3_RETURN_IF_ERROR(r.U32(&resp.model_crc));
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return resp;
}

std::string EncodeShardQueryRequest(const ShardQueryRequest& req, std::uint32_t version) {
  const std::uint32_t v = ClampVersion(version);
  Writer w;
  w.U32(v);
  // The embedded query reuses its own codec (version tag and all) as a
  // length-prefixed blob, so the two stay in lockstep by construction.
  w.Str(EncodeQueryRequest(req.query, v));
  w.U64(req.slots.size());
  for (std::uint32_t s : req.slots) w.U32(s);
  return w.Take();
}

StatusOr<ShardQueryRequest> DecodeShardQueryRequest(const std::string& payload) {
  Reader r(payload);
  ShardQueryRequest req;
  std::uint32_t v;
  M3_RETURN_IF_ERROR(ReadVersion(r, &v));
  std::string query_blob;
  M3_RETURN_IF_ERROR(r.Str(&query_blob));
  StatusOr<QueryRequest> q = DecodeQueryRequest(query_blob);
  if (!q.ok()) return q.status().Annotate("wire: embedded shard query");
  req.query = std::move(*q);
  std::uint64_t n;
  M3_RETURN_IF_ERROR(r.U64(&n));
  if (n > r.remaining() / 4) {
    return Status::DataLoss("wire: slot count " + std::to_string(n) +
                            " exceeds the remaining payload");
  }
  req.slots.resize(static_cast<std::size_t>(n));
  for (std::uint32_t& s : req.slots) M3_RETURN_IF_ERROR(r.U32(&s));
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

std::string EncodeShardQueryResponse(const ShardQueryResponse& resp,
                                     std::uint32_t version) {
  const std::uint32_t v = ClampVersion(version);
  Writer w;
  w.U32(v);
  EncodeStatus(w, resp.status);
  EncodeDegradation(w, resp.degradation, v);
  w.U64(resp.model_version);
  w.U32(resp.model_crc);
  w.F64(resp.wall_seconds);
  w.U64(resp.estimates.size());
  for (const SlotEstimateWire& se : resp.estimates) {
    w.U32(se.slot);
    EncodePathEstimate(w, se.estimate);
  }
  return w.Take();
}

StatusOr<ShardQueryResponse> DecodeShardQueryResponse(const std::string& payload) {
  Reader r(payload);
  ShardQueryResponse resp;
  std::uint32_t v;
  M3_RETURN_IF_ERROR(ReadVersion(r, &v));
  M3_RETURN_IF_ERROR(DecodeStatus(r, &resp.status));
  M3_RETURN_IF_ERROR(DecodeDegradation(r, &resp.degradation, v));
  M3_RETURN_IF_ERROR(r.U64(&resp.model_version));
  M3_RETURN_IF_ERROR(r.U32(&resp.model_crc));
  M3_RETURN_IF_ERROR(r.F64(&resp.wall_seconds));
  std::uint64_t n;
  M3_RETURN_IF_ERROR(r.U64(&n));
  // Division form: the record size is fixed, so a hostile count that would
  // wrap `n * kSlotEstimateBytes` fails here instead of in resize().
  if (n > r.remaining() / kSlotEstimateBytes) {
    return Status::DataLoss("wire: estimate count " + std::to_string(n) +
                            " exceeds the remaining payload");
  }
  resp.estimates.resize(static_cast<std::size_t>(n));
  for (SlotEstimateWire& se : resp.estimates) {
    M3_RETURN_IF_ERROR(r.U32(&se.slot));
    M3_RETURN_IF_ERROR(DecodePathEstimate(r, &se.estimate));
  }
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return resp;
}

std::string EncodePathEstimateValue(const PathEstimate& pe, std::uint32_t version) {
  Writer w;
  w.U32(ClampVersion(version));
  EncodePathEstimate(w, pe);
  return w.Take();
}

StatusOr<PathEstimate> DecodePathEstimateValue(const std::string& payload) {
  Reader r(payload);
  std::uint32_t v;
  M3_RETURN_IF_ERROR(ReadVersion(r, &v));
  PathEstimate pe{};
  M3_RETURN_IF_ERROR(DecodePathEstimate(r, &pe));
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return pe;
}

std::string EncodeRouterPathValue(const RouterPathValue& rv, std::uint32_t version) {
  Writer w;
  w.U32(ClampVersion(version));
  w.U64(rv.model_version);
  w.U32(rv.model_crc);
  EncodePathEstimate(w, rv.estimate);
  return w.Take();
}

StatusOr<RouterPathValue> DecodeRouterPathValue(const std::string& payload) {
  Reader r(payload);
  std::uint32_t v;
  M3_RETURN_IF_ERROR(ReadVersion(r, &v));
  RouterPathValue rv;
  M3_RETURN_IF_ERROR(r.U64(&rv.model_version));
  M3_RETURN_IF_ERROR(r.U32(&rv.model_crc));
  M3_RETURN_IF_ERROR(DecodePathEstimate(r, &rv.estimate));
  M3_RETURN_IF_ERROR(r.ExpectEnd());
  return rv;
}

Hash128 QueryCacheKey(const QueryRequest& req, const Hash128& model_digest) {
  Hasher h;
  h.Str(kQueryKeySchema);
  h.U64(model_digest.hi).U64(model_digest.lo);
  h.Bool(req.use_context);
  h.F64(req.oversub);
  h.I32(req.topo.pods).I32(req.topo.racks_per_pod).I32(req.topo.hosts_per_rack);
  h.I32(req.topo.fabric_per_pod).I32(req.topo.spines_per_plane);
  HashNetConfig(h, req.cfg);
  h.I32(req.num_paths);
  h.U64(req.seed);
  h.U64(req.flows.size());
  for (const WireFlow& f : req.flows) {
    h.I32(f.id).I32(f.src_host).I32(f.dst_host).I64(f.size).I64(f.arrival).U8(f.priority);
  }
  return h.Finish();
}

Hash128 PathCacheKey(const PathScenario& scenario, const NetConfig& cfg,
                     bool use_context, const Hash128& model_digest) {
  Hasher h;
  h.Str(kPathKeySchema);
  h.U64(model_digest.hi).U64(model_digest.lo);
  h.Bool(use_context);
  HashNetConfig(h, cfg);
  h.I32(scenario.num_links);
  // Lot geometry: node/link numbering is deterministic in construction
  // order, so hashing every link pins rates, delays, and wiring.
  const Topology& topo = scenario.lot->topo();
  h.U64(topo.num_links());
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(static_cast<LinkId>(l));
    h.I32(link.src).I32(link.dst).F64(link.rate).I64(link.delay);
  }
  h.U64(scenario.flows.size());
  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    const Flow& f = scenario.flows[i];
    h.I32(f.src).I32(f.dst).I64(f.size).I64(f.arrival).U8(f.priority);
    h.Bool(scenario.is_fg[i] != 0);
    h.I32(scenario.entry_hop[i]).I32(scenario.exit_hop[i]);
    h.U64(f.path.size());
    for (LinkId l : f.path) h.I32(l);
  }
  return h.Finish();
}

}  // namespace m3::serve
