#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <optional>
#include <utility>

#include "core/validate.h"
#include "pathdecomp/path_topology.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace m3::serve {
namespace {

using Clock = std::chrono::steady_clock;

constexpr double kInfSeconds = std::numeric_limits<double>::infinity();

// Same injection site as the service's caches: an armed "serve/cache_lookup"
// fault makes router cache lookups fail, and the query must fall through to
// a plain scatter (same answer, no reuse).
constexpr const char* kCacheFaultSite = "serve/cache_lookup";

double Elapsed(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

bool HasWeight(const PathEstimate& pe) {
  for (double c : pe.counts) {
    if (c > 0.0) return true;
  }
  return false;
}

}  // namespace

Router::Router(const RouterOptions& opts)
    : opts_(opts),
      topos_(opts.topo_memo_entries),
      path_cache_(opts.path_cache_entries, kCacheFaultSite) {}

Router::~Router() { Stop(); }

Status Router::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("router already started");
  }
  if (opts_.shards.empty()) {
    return Status::InvalidArgument("router needs at least one shard endpoint");
  }
  std::vector<std::string> names;
  std::vector<std::unique_ptr<Shard>> shards;
  for (const std::string& spec : opts_.shards) {
    StatusOr<Endpoint> ep = ParseEndpoint(spec);
    if (!ep.ok()) return ep.status().Annotate("shard spec '" + spec + "'");
    std::string name = ep->ToString();
    for (const auto& s : shards) {
      if (s->name == name) return Status::InvalidArgument("duplicate shard " + name);
    }
    shards.push_back(std::make_unique<Shard>(std::move(*ep), name, opts_.breaker));
    names.push_back(shards.back()->name);
  }
  shards_ = std::move(shards);
  ring_ = std::make_unique<HashRing>(names, opts_.vnodes);
  // Durable router cache: validate + lock the directory before probing so a
  // bad --cache-dir fails Start with a clear status.
  bool first_persist_start = false;
  if (!opts_.cache_dir.empty() && opts_.path_cache_entries > 0) {
    if (!dir_lock_.held()) {
      M3_RETURN_IF_ERROR(AcquireCacheDir(opts_.cache_dir, &dir_lock_));
    }
    if (persister_ == nullptr) {
      PersistOptions popts;
      popts.dir = opts_.cache_dir;
      popts.flush_interval_seconds = opts_.cache_flush_interval_seconds;
      persister_ = std::make_unique<CachePersister>(popts);
      first_persist_start = true;
    }
    if (Status st = persister_->Start(); !st.ok()) {
      if (first_persist_start) persister_.reset();
      return st.Annotate("cache persistence");
    }
  }
  // Synchronous first probe round (parallel: a down shard costs one connect
  // timeout, not one per shard): a query issued right after Start() must
  // see the shards that are already up, not wait out a health interval.
  {
    std::vector<std::thread> th;
    th.reserve(shards_.size());
    for (auto& s : shards_) th.emplace_back([this, &s] { ProbeShard(*s); });
    for (auto& t : th) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  prober_ = std::thread([this] { HealthLoop(); });
  // Recovery runs after the synchronous probe round (the fleet's model CRC
  // is the validity guard) and concurrently with serving: readiness never
  // waits on disk. Only the first Start replays.
  if (first_persist_start) {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    recovery_ = std::thread([this] { RecoverPersistedCache(); });
  }
  return Status::Ok();
}

Status Router::FlushPersistNow() {
  if (persister_ == nullptr) return Status::Ok();
  return persister_->FlushNow();
}

void Router::WaitForPersistRecovery() {
  std::lock_guard<std::mutex> lock(recovery_mu_);
  if (recovery_.joinable()) recovery_.join();
}

std::pair<std::uint64_t, std::uint32_t> Router::FleetModel() const {
  std::uint64_t mv = 0;
  std::uint32_t crc = 0;
  for (const auto& s : shards_) {
    if (!s->healthy.load(std::memory_order_relaxed)) continue;
    const std::uint64_t v = s->model_version.load(std::memory_order_relaxed);
    const std::uint32_t c = s->model_crc.load(std::memory_order_relaxed);
    // Highest version wins; with equal versions any healthy shard's CRC
    // serves (a converged fleet agrees on it).
    if (v > mv || (crc == 0 && c != 0)) {
      mv = std::max(mv, v);
      crc = c;
    }
  }
  return {mv, crc};
}

void Router::RecoverPersistedCache() {
  const std::uint32_t fleet_crc = FleetModel().second;
  persister_->Recover([this, fleet_crc](CacheKind kind, const Hash128& /*digest*/,
                                        const Hash128& key, const std::string& value)
                          -> CachePersister::Recovered {
    if (kind != CacheKind::kRouterPath) return CachePersister::Recovered::kCorrupt;
    StatusOr<RouterPathValue> rv = DecodeRouterPathValue(value);
    if (!rv.ok()) return CachePersister::Recovered::kCorrupt;
    // No healthy shard at boot (crc 0) or a model swap across the restart:
    // the entry cannot be validated against the live fleet — drop it.
    if (fleet_crc == 0 || rv->model_crc != fleet_crc) {
      return CachePersister::Recovered::kDigestMismatch;
    }
    path_cache_.Insert(key, std::move(*rv));
    return CachePersister::Recovered::kLoaded;
  });
}

void Router::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->pool_mu);
    s->pool.clear();
  }
  WaitForPersistRecovery();
  // Final drain flush so a clean shutdown persists everything it gathered.
  if (persister_ != nullptr) persister_->Stop();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  stopping_ = false;
}

void Router::HealthLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    stop_cv_.wait_for(lock,
                      std::chrono::duration<double>(std::max(0.05, opts_.health_interval_seconds)),
                      [this] { return stopping_; });
    if (stopping_) return;
    lock.unlock();
    std::vector<std::thread> th;
    th.reserve(shards_.size());
    for (auto& s : shards_) th.emplace_back([this, &s] { ProbeShard(*s); });
    for (auto& t : th) t.join();
    lock.lock();
  }
}

void Router::ProbeShard(Shard& s) {
  const double t = opts_.connect_timeout_seconds;
  StatusOr<UnixFd> fd = ConnectEndpoint(s.ep, t);
  bool ready = false;
  if (fd.ok()) {
    const double io = t > 0 ? std::max(t, 1.0) : 5.0;
    SetRecvTimeout(*fd, io);
    SetSendTimeout(*fd, io);
    if (SendFrame(*fd, static_cast<std::uint32_t>(MsgType::kPingRequest), EncodePingRequest())
            .ok()) {
      StatusOr<Frame> f = RecvFrame(*fd);
      if (f.ok() && f->type == static_cast<std::uint32_t>(MsgType::kPingResponse)) {
        if (StatusOr<PingResponse> p = DecodePingResponse(f->payload); p.ok()) {
          ready = p->ready;
          s.model_version.store(p->model_version, std::memory_order_relaxed);
          if (p->model_crc != 0) {
            s.model_crc.store(p->model_crc, std::memory_order_relaxed);
          }
        }
      }
    }
  }
  s.healthy.store(ready, std::memory_order_relaxed);
  if (ready) {
    s.breaker.RecordSuccess();
  } else if (!fd.ok()) {
    // Unreachable: charge the breaker so the shard's keys stop burning a
    // timeout per query. Reachable-but-not-ready (no model yet) only clears
    // `healthy` — the peer is alive, just not serving.
    s.breaker.RecordFailure();
  }
}

StatusOr<ShardQueryResponse> Router::CallShard(Shard& s, const std::string& payload,
                                               double recv_timeout_seconds) {
  s.dispatches.fetch_add(1, std::memory_order_relaxed);
  UnixFd fd;
  {
    std::lock_guard<std::mutex> lock(s.pool_mu);
    if (!s.pool.empty()) {
      fd = std::move(s.pool.back());
      s.pool.pop_back();
    }
  }
  bool pooled = fd.valid();
  Status err;
  for (;;) {
    if (!fd.valid()) {
      StatusOr<UnixFd> c = ConnectEndpoint(s.ep, opts_.connect_timeout_seconds);
      if (!c.ok()) {
        s.failures.fetch_add(1, std::memory_order_relaxed);
        s.healthy.store(false, std::memory_order_relaxed);
        return c.status().Annotate("shard " + s.name);
      }
      fd = std::move(*c);
      pooled = false;
    }
    SetRecvTimeout(fd, recv_timeout_seconds);
    SetSendTimeout(fd, recv_timeout_seconds);
    const Status sent =
        SendFrame(fd, static_cast<std::uint32_t>(MsgType::kShardQueryRequest), payload);
    if (sent.ok()) {
      StatusOr<Frame> frame = RecvFrame(fd);
      if (frame.ok()) {
        if (frame->type != static_cast<std::uint32_t>(MsgType::kShardQueryResponse)) {
          err = Status::Internal("shard " + s.name + ": unexpected frame type " +
                                 std::to_string(frame->type));
          break;
        }
        StatusOr<ShardQueryResponse> resp = DecodeShardQueryResponse(frame->payload);
        if (!resp.ok()) {
          err = resp.status().Annotate("shard " + s.name + " reply");
          break;
        }
        std::lock_guard<std::mutex> lock(s.pool_mu);
        if (s.pool.size() < opts_.pool_per_shard) s.pool.push_back(std::move(fd));
        return resp;
      }
      // Clean EOF on a pooled connection: the shard closed it while idle.
      // Retry once on a fresh connection. A recv *timeout* never retries —
      // the shard may be mid-compute, and resending would double the work.
      if (pooled && frame.status().code() == StatusCode::kNotFound) {
        fd.Close();
        pooled = false;
        continue;
      }
      err = frame.status().Annotate("shard " + s.name);
      break;
    }
    if (pooled) {  // stale pooled fd failed the send; one fresh retry
      fd.Close();
      pooled = false;
      continue;
    }
    err = sent.Annotate("shard " + s.name);
    break;
  }
  fd.Close();  // failed exchange: connection state unknown, never pool it
  s.failures.fetch_add(1, std::memory_order_relaxed);
  return err;
}

QueryResponse Router::Query(const QueryRequest& req) {
  const auto t0 = Clock::now();
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  QueryResponse resp;

  const auto fail = [&](const Status& st) {
    resp.status = st;
    resp.degradation.errors_validation = 1;
    resp.degradation.first_error = st.ToString();
    resp.wall_seconds = Elapsed(t0);
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    resp.stats = Stats();
    return resp;
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) {
      resp.status = Status::Unavailable("router not started");
      queries_failed_.fetch_add(1, std::memory_order_relaxed);
      resp.stats = Stats();
      return resp;
    }
  }

  // ---- validation + the deterministic sample (identical to any shard) ----
  StatusOr<std::shared_ptr<const FatTree>> ft_or = TopoForRequest(req, &topos_);
  if (!ft_or.ok()) return fail(ft_or.status());
  const std::shared_ptr<const FatTree> ft = std::move(*ft_or);
  std::vector<Flow> flows;
  if (Status st = BuildRequestFlows(req, *ft, &flows); !st.ok()) return fail(st);

  M3Options mopts;
  mopts.num_paths = req.num_paths;
  mopts.seed = req.seed;
  mopts.use_context = req.use_context;
  mopts.strict = req.strict;
  mopts.deadline_seconds = req.deadline_seconds;
  mopts.max_attempts = req.max_attempts;
  mopts.num_threads = opts_.fallback_threads;
  if (Status st = ValidateEstimatorInputs(ft->topo(), flows, req.cfg, mopts); !st.ok()) {
    return fail(st);
  }

  PathDecomposition decomp(ft->topo(), flows);
  Rng rng(mopts.seed);
  const std::vector<std::size_t> sample = SamplePaths(decomp, mopts.num_paths, rng);
  const std::size_t n = sample.size();

  // ---- placement: per-slot path cache key -> ring preference list ----
  // Zero model-digest term: a reload must not reshuffle placement (the
  // shard-side cache keys still carry the real digest).
  std::vector<Hash128> keys(n);
  ParallelFor(
      n,
      [&](std::size_t i) {
        const PathScenario sc = BuildPathScenario(ft->topo(), flows, decomp, sample[i]);
        keys[i] = PathCacheKey(sc, req.cfg, req.use_context, Hash128{});
      },
      opts_.fallback_threads);

  const std::size_t replicas = static_cast<std::size_t>(std::max(1, opts_.replicas));
  std::vector<std::vector<int>> pref(n);
  for (std::size_t i = 0; i < n; ++i) pref[i] = ring_->Preference(keys[i], replicas);

  // Availability snapshot: one breaker decision per shard per query — an
  // open breaker's half-open probe budget must not be drained per-slot.
  std::vector<char> avail(shards_.size(), 0);
  std::vector<ShardReportWire> report(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    report[s].shard = shards_[s]->name;
    report[s].breaker_open = shards_[s]->breaker.open();
    avail[s] =
        (shards_[s]->healthy.load(std::memory_order_relaxed) && shards_[s]->breaker.Allow()) ? 1
                                                                                             : 0;
  }

  std::vector<int> cursor(n, -1);  // index into pref[i] of the current target
  std::vector<std::optional<PathEstimate>> got(n);
  std::vector<std::uint32_t> missing;  // slots headed for the router ladder
  std::vector<char> in_missing(n, 0);
  const auto push_missing = [&](std::uint32_t slot) {
    if (!in_missing[slot]) {
      in_missing[slot] = 1;
      missing.push_back(slot);
    }
  };

  // ---- router result cache, consulted before scatter ----
  // A slot answered here never touches the fleet, so freshly restarted
  // shards are not re-colded by the full working set. Entries are only
  // valid while their model *content CRC* matches the live fleet's (the
  // registry version is per-process and cannot survive a shard restart).
  std::uint64_t router_cache_hits = 0;
  const std::pair<std::uint64_t, std::uint32_t> fleet_model = FleetModel();
  const std::uint32_t fleet_crc = fleet_model.second;
  const bool cache_on = !req.no_cache && path_cache_.capacity() > 0 && fleet_crc != 0;
  if (cache_on) {
    for (std::size_t i = 0; i < n; ++i) {
      std::optional<RouterPathValue> hit;
      try {
        hit = path_cache_.Lookup(keys[i]);
      } catch (const FaultInjected&) {
        break;  // injected cache outage: serve this query by plain scatter
      }
      if (hit && hit->model_crc == fleet_crc) {
        got[i] = hit->estimate;
        ++router_cache_hits;
      }
    }
  }

  struct Dispatch {
    int shard = -1;
    std::vector<std::uint32_t> slots;
  };
  std::vector<Dispatch> queue;
  {
    std::map<int, std::vector<std::uint32_t>> groups;
    for (std::size_t i = 0; i < n; ++i) {
      report[static_cast<std::size_t>(pref[i][0])].slots_assigned++;
      if (got[i]) {
        // Served from the router cache; attribute the slot to its primary
        // ring owner so sums over slots_* still equal num_paths.
        report[static_cast<std::size_t>(pref[i][0])].slots_ok++;
        continue;
      }
      int c = -1;
      for (std::size_t k = 0; k < pref[i].size(); ++k) {
        if (avail[static_cast<std::size_t>(pref[i][k])]) {
          c = static_cast<int>(k);
          break;
        }
      }
      if (c < 0) {
        push_missing(static_cast<std::uint32_t>(i));
        continue;
      }
      cursor[i] = c;
      groups[pref[i][static_cast<std::size_t>(c)]].push_back(static_cast<std::uint32_t>(i));
    }
    for (auto& [sh, slots] : groups) queue.push_back(Dispatch{sh, std::move(slots)});
  }

  DegradationReport rep;
  rep.paths_cached += router_cache_hits;
  std::string shard_error;  // first transport/infra failure, for annotation
  Status strict_abort;      // strict mode: a shard's own error aborts the query
  bool deadline_hit = false;
  std::uint64_t model_version = 0;
  std::uint32_t model_crc = 0;
  if (router_cache_hits > 0) {
    // Cache-served slots carry the fleet's model identity; without this a
    // fully-cached answer would report model v0, breaking bitwise identity
    // with the recomputed response's metadata.
    model_version = fleet_model.first;
    model_crc = fleet_model.second;
  }
  const bool has_deadline = req.deadline_seconds > 0.0;
  const auto remaining = [&]() -> double {
    return has_deadline ? req.deadline_seconds - Elapsed(t0) : kInfSeconds;
  };

  // Router-level shed: if validation + placement already consumed the whole
  // deadline budget, dispatching would only burn shard capacity on answers
  // nobody can use. Answer typed immediately (ShedReason kRouterBudget)
  // without touching the fleet.
  if (has_deadline && remaining() <= 0.0) {
    resp.status = Status::DeadlineExceeded(
        "router shed: deadline of " + std::to_string(req.deadline_seconds) +
        "s expired before dispatch");
    resp.shed_reason = static_cast<std::uint8_t>(ShedReason::kRouterBudget);
    resp.wall_seconds = Elapsed(t0);
    queries_shed_.fetch_add(1, std::memory_order_relaxed);
    resp.stats = Stats();
    return resp;
  }

  // ---- scatter rounds: dispatch, then re-dispatch failures replica-wise ----
  int round = 0;
  int retry_rounds = 0;
  while (!queue.empty() && strict_abort.ok()) {
    double window = opts_.shard_timeout_seconds > 0 ? opts_.shard_timeout_seconds : kInfSeconds;
    const double rem = remaining();
    if (rem <= 0.0) {
      deadline_hit = true;
      break;
    }
    window = std::min(window, rem);
    const bool hedged_round =
        round == 0 && opts_.hedge_seconds > 0.0 && opts_.hedge_seconds < window;
    if (hedged_round) window = opts_.hedge_seconds;
    const double recv_timeout = std::isfinite(window) ? window : 0.0;  // 0 = unbounded

    std::vector<StatusOr<ShardQueryResponse>> results(queue.size(),
                                                      Status::Internal("dispatch pending"));
    {
      std::vector<std::thread> th;
      th.reserve(queue.size());
      // Deadline propagation: each sub-request carries what is *left* of
      // the client's budget at dispatch time — the elapsed scatter time
      // (placement, earlier rounds, backoff sleeps) is already spent, and
      // a shard that inherited the full deadline would happily compute
      // past the moment the router has to answer.
      const double shard_budget = has_deadline ? std::max(rem, 1e-9) : 0.0;
      for (std::size_t d = 0; d < queue.size(); ++d) {
        th.emplace_back([&, d] {
          ShardQueryRequest sub;
          sub.query = req;
          if (has_deadline) sub.query.deadline_seconds = shard_budget;
          sub.slots = queue[d].slots;
          // Encoded at the client's own wire version: a v3 client routed
          // across a mixed v3/v4 fleet keeps working.
          results[d] = CallShard(*shards_[static_cast<std::size_t>(queue[d].shard)],
                                 EncodeShardQueryRequest(sub, req.wire_version),
                                 recv_timeout);
        });
      }
      for (auto& t : th) t.join();
    }

    std::map<int, std::vector<std::uint32_t>> next;
    bool any_retry = false;
    for (std::size_t d = 0; d < queue.size() && strict_abort.ok(); ++d) {
      const Dispatch& disp = queue[d];
      Shard& s = *shards_[static_cast<std::size_t>(disp.shard)];
      bool reroute = false;
      bool as_hedge = false;
      if (results[d].ok()) {
        ShardQueryResponse& r = *results[d];
        if (IsAnsweredCode(r.status.code())) {
          s.breaker.RecordSuccess();
          s.healthy.store(true, std::memory_order_relaxed);
          if (r.model_version > model_version) {
            model_version = r.model_version;
            model_crc = r.model_crc;
          }
          std::vector<char> in_group(n, 0);
          for (std::uint32_t slot : disp.slots) in_group[slot] = 1;
          // Only a *strictly* kOk sub-answer may populate the router cache:
          // degraded/browned-out shard answers would otherwise be replayed
          // as full-quality hits for the cache's lifetime.
          const bool cacheable = cache_on && r.status.ok() && r.model_crc != 0;
          for (const SlotEstimateWire& e : r.estimates) {
            if (e.slot < n && in_group[e.slot] && !got[e.slot]) {
              got[e.slot] = e.estimate;
              report[static_cast<std::size_t>(disp.shard)].slots_ok++;
              if (cacheable) {
                RouterPathValue rv;
                rv.model_version = r.model_version;
                rv.model_crc = r.model_crc;
                rv.estimate = e.estimate;
                std::string blob;
                if (persister_ != nullptr) blob = EncodeRouterPathValue(rv);
                if (path_cache_.Insert(keys[e.slot], std::move(rv)) && persister_ != nullptr) {
                  // Zero digest term, matching the placement key; validity
                  // is carried by the CRC inside the value.
                  persister_->Enqueue(CacheKind::kRouterPath, Hash128{}, keys[e.slot],
                                      std::move(blob));
                }
              }
            }
          }
          // Merge the shard's ladder accounting. Its *dropped* slots are
          // not summed — they re-enter the router's own ladder below and
          // land in exactly one merged class (no double counting).
          rep.paths_ok += r.degradation.paths_ok;
          rep.paths_cached += r.degradation.paths_cached;
          rep.paths_retried += r.degradation.paths_retried;
          rep.paths_degraded += r.degradation.paths_degraded;
          rep.errors_exception += r.degradation.errors_exception;
          rep.errors_nonfinite += r.degradation.errors_nonfinite;
          rep.errors_deadline += r.degradation.errors_deadline;
          rep.errors_validation += r.degradation.errors_validation;
          rep.clamped_values += r.degradation.clamped_values;
          // Brownout attribution survives the scatter: the merged answer
          // reports the worst level any shard served at, and the total
          // paths served at reduced quality.
          rep.brownout_level = std::max(rep.brownout_level, r.degradation.brownout_level);
          rep.paths_brownout += r.degradation.paths_brownout;
          if (rep.first_error.empty() && !r.degradation.first_error.empty()) {
            rep.first_error = r.degradation.first_error;
          }
          for (std::uint32_t slot : disp.slots) {
            if (!got[slot]) push_missing(slot);  // shard-dropped
          }
        } else {
          // The shard answered "can't" (no model, version skew, strict
          // fault). Charged like a failure so a persistently unready shard
          // opens its breaker; the slots move to the next replica.
          s.breaker.RecordFailure();
          if (shard_error.empty()) shard_error = "shard " + s.name + ": " + r.status.ToString();
          if (req.strict) {
            strict_abort = r.status.Annotate("shard " + s.name);
            break;
          }
          reroute = true;
        }
      } else {
        // Transport-level failure. In a hedged first round a recv timeout
        // is a *straggler*, not a fault: re-dispatch without charging the
        // breaker (the shard may answer fine at the next query).
        const bool straggler =
            hedged_round && results[d].status().code() == StatusCode::kDeadlineExceeded;
        if (straggler) {
          as_hedge = true;
        } else {
          s.breaker.RecordFailure();
        }
        if (shard_error.empty()) shard_error = results[d].status().ToString();
        reroute = true;
      }
      if (reroute) {
        for (std::uint32_t slot : disp.slots) {
          if (got[slot]) continue;
          int c = -1;
          for (int k = cursor[slot] + 1; k < static_cast<int>(pref[slot].size()); ++k) {
            if (avail[static_cast<std::size_t>(pref[slot][static_cast<std::size_t>(k)])]) {
              c = k;
              break;
            }
          }
          if (c < 0) {  // every replica tried or unavailable
            push_missing(slot);
            continue;
          }
          cursor[slot] = c;
          const int target = pref[slot][static_cast<std::size_t>(c)];
          next[target].push_back(slot);
          Shard& ts = *shards_[static_cast<std::size_t>(target)];
          if (as_hedge) {
            ts.hedges.fetch_add(1, std::memory_order_relaxed);
            report[static_cast<std::size_t>(target)].hedges++;
          } else {
            ts.retries.fetch_add(1, std::memory_order_relaxed);
            report[static_cast<std::size_t>(target)].retries++;
            any_retry = true;
          }
        }
      }
    }
    queue.clear();
    for (auto& [sh, slots] : next) queue.push_back(Dispatch{sh, std::move(slots)});
    if (!queue.empty() && any_retry) {
      // Exponential backoff before a retry round; hedge-only rounds fire
      // immediately (the whole point of hedging is not to wait).
      const double delay_ms =
          std::min(1000.0, opts_.retry_backoff_ms * std::pow(2.0, retry_rounds));
      ++retry_rounds;
      const double sleep_s = std::min(delay_ms / 1000.0, std::max(0.0, remaining()));
      if (sleep_s > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      }
    }
    ++round;
    if (round > static_cast<int>(replicas) + 2) {  // safety net; unreachable via cursors
      for (const Dispatch& d : queue) {
        for (std::uint32_t slot : d.slots) push_missing(slot);
      }
      break;
    }
  }
  // Slots still queued when the scatter loop exited (deadline or strict
  // abort) drop through to the ladder below.
  for (const Dispatch& d : queue) {
    for (std::uint32_t slot : d.slots) push_missing(slot);
  }

  // ---- degradation ladder for unserved slots: flowSim, then drop ----
  std::sort(missing.begin(), missing.end());
  const auto drop_slot = [&](std::uint32_t slot) {
    const std::size_t owner = static_cast<std::size_t>(pref[slot][0]);
    rep.paths_dropped++;
    report[owner].slots_dropped++;
    shards_[owner]->slots_dropped.fetch_add(1, std::memory_order_relaxed);
  };
  if (!missing.empty() && strict_abort.ok() && !req.strict) {
    const double rem = remaining();
    if (rem <= 0.0) {
      deadline_hit = true;
      for (std::uint32_t slot : missing) drop_slot(slot);
    } else {
      M3Options fopts = mopts;
      fopts.sample_slots = &missing;
      fopts.strict = false;
      if (has_deadline) fopts.deadline_seconds = rem;
      NetworkEstimate fb = RunFlowSimOnly(ft->topo(), flows, req.cfg, fopts);
      rep.errors_exception += fb.degradation.errors_exception;
      rep.errors_nonfinite += fb.degradation.errors_nonfinite;
      rep.errors_deadline += fb.degradation.errors_deadline;
      rep.clamped_values += fb.degradation.clamped_values;
      if (fb.status.code() == StatusCode::kDeadlineExceeded) deadline_hit = true;
      for (std::uint32_t slot : missing) {
        const std::size_t owner = static_cast<std::size_t>(pref[slot][0]);
        if (slot < fb.paths.size() && HasWeight(fb.paths[slot])) {
          got[slot] = fb.paths[slot];
          rep.paths_degraded++;
          report[owner].slots_fallback++;
          shards_[owner]->slots_fallback.fetch_add(1, std::memory_order_relaxed);
        } else {
          drop_slot(slot);
        }
      }
    }
  } else if (!missing.empty()) {
    // Strict mode never substitutes an estimator: unserved slots are
    // dropped (and the answer reweighted), whether the shards were
    // unreachable or answered with their own error.
    for (std::uint32_t slot : missing) drop_slot(slot);
  }

  // ---- merge + re-aggregate (the single-host Clamp/Aggregate/Combine) ----
  std::vector<PathEstimate> paths(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (got[i]) paths[i] = *got[i];
  }
  // The clamp re-runs over shard-supplied bytes: both sources pre-clamp, so
  // this is 0 unless a shard shipped non-finite values — the aggregation
  // guard holds even against a corrupted peer.
  rep.clamped_values += ClampPathEstimates(paths);
  resp.bucket_pct = AggregateBuckets(paths);
  for (const PathEstimate& pe : paths) {
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      resp.total_counts[static_cast<std::size_t>(b)] += pe.counts[static_cast<std::size_t>(b)];
    }
  }
  resp.combined_pct = CombineBuckets(resp.bucket_pct, resp.total_counts);

  if (rep.first_error.empty() && !shard_error.empty()) rep.first_error = shard_error;
  resp.degradation = rep;
  resp.model_version = model_version;
  resp.model_crc = model_crc;
  resp.shards.assign(report.begin(), report.end());
  if (!strict_abort.ok()) {
    resp.status = strict_abort;
  } else if (deadline_hit) {
    resp.status = Status::DeadlineExceeded("deadline of " + std::to_string(req.deadline_seconds) +
                                           "s expired; " + rep.ToString());
    if (rep.paths_ok == 0 && rep.paths_cached == 0 && rep.paths_degraded == 0) {
      // Nothing was served before the budget ran out: this is a router
      // shed (typed, attributed), not a partially-degraded answer.
      resp.shed_reason = static_cast<std::uint8_t>(ShedReason::kRouterBudget);
    }
  } else if (rep.Degraded()) {
    resp.status = Status::Degraded(rep.ToString());
  }
  resp.wall_seconds = Elapsed(t0);
  if (resp.shed_reason == static_cast<std::uint8_t>(ShedReason::kRouterBudget)) {
    queries_shed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    (IsAnsweredCode(resp.status.code()) ? queries_ok_ : queries_failed_)
        .fetch_add(1, std::memory_order_relaxed);
  }
  resp.stats = Stats();
  return resp;
}

PingResponse Router::Ping() const {
  PingResponse p;
  p.router_mode = true;
  p.shards_total = static_cast<std::uint32_t>(shards_.size());
  std::uint64_t mv = 0;
  for (const auto& s : shards_) {
    if (s->healthy.load(std::memory_order_relaxed)) {
      p.shards_healthy++;
      mv = std::max(mv, s->model_version.load(std::memory_order_relaxed));
    }
  }
  p.model_version = mv;
  p.model_crc = FleetModel().second;
  p.ready = p.shards_healthy > 0;
  return p;
}

ServerStatsWire Router::Stats() const {
  ServerStatsWire st;
  st.queries_received = queries_received_.load(std::memory_order_relaxed);
  st.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  st.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  st.queries_shed = queries_shed_.load(std::memory_order_relaxed);
  st.shed_by_reason[static_cast<std::size_t>(ShedReason::kRouterBudget)] =
      st.queries_shed;
  st.router_mode = true;
  std::uint64_t mv = 0;
  st.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    ShardHealthWire h;
    h.address = s->name;
    h.healthy = s->healthy.load(std::memory_order_relaxed);
    h.breaker_open = s->breaker.open();
    h.model_version = s->model_version.load(std::memory_order_relaxed);
    h.dispatches = s->dispatches.load(std::memory_order_relaxed);
    h.failures = s->failures.load(std::memory_order_relaxed);
    h.retries = s->retries.load(std::memory_order_relaxed);
    h.hedges = s->hedges.load(std::memory_order_relaxed);
    h.slots_fallback = s->slots_fallback.load(std::memory_order_relaxed);
    h.slots_dropped = s->slots_dropped.load(std::memory_order_relaxed);
    if (h.healthy) mv = std::max(mv, h.model_version);
    st.shards.push_back(std::move(h));
  }
  st.model_version = mv;
  st.model_crc = FleetModel().second;
  {
    const CacheStats c = path_cache_.stats();
    st.path_cache[0] = c.hits;
    st.path_cache[1] = c.misses;
    st.path_cache[2] = c.inserts;
    st.path_cache[3] = c.evictions;
    st.path_cache[4] = c.entries;
  }
  if (persister_ != nullptr) {
    const PersistStats p = persister_->stats();
    st.persist_enabled = true;
    st.persist_segments_loaded = p.segments_loaded;
    st.persist_entries_loaded = p.entries_loaded;
    st.persist_entries_flushed = p.entries_flushed;
    st.persist_records_corrupt = p.records_corrupt;
    st.persist_digest_dropped = p.digest_dropped;
    st.persist_flush_backlog = p.flush_backlog;
  }
  return st;
}

}  // namespace m3::serve
