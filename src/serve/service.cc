#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <utility>

namespace m3::serve {
namespace {

// Both caches share one injection site: an armed "serve/cache_lookup"
// fault makes every lookup fail, and the service must degrade to plain
// recompute (same answer, no reuse) rather than failing queries.
constexpr const char* kCacheFaultSite = "serve/cache_lookup";

// Distinct fat trees a daemon keeps alive at once. Real deployments use a
// handful of oversubscription ratios; the bound exists because the ratio is
// a client-supplied double (any bit pattern in range is admissible).
constexpr std::size_t kTopoCacheEntries = 8;

void CopyCacheStats(const CacheStats& in, std::uint64_t out[5]) {
  out[0] = in.hits;
  out[1] = in.misses;
  out[2] = in.inserts;
  out[3] = in.evictions;
  out[4] = in.entries;
}

}  // namespace

EstimationService::EstimationService(const ServiceOptions& opts)
    : opts_(opts),
      registry_(opts.model_config),
      query_cache_(opts.query_cache_entries, kCacheFaultSite),
      path_cache_(opts.path_cache_entries, kCacheFaultSite),
      topos_(kTopoCacheEntries) {
  if (opts_.worker_processes > 0) {
    SupervisorOptions sopts = opts_.supervisor;
    sopts.num_workers = opts_.worker_processes;
    sopts.threads_per_query = opts_.threads_per_query;
    sopts.path_cache_entries = opts_.path_cache_entries;
    supervisor_ = std::make_unique<WorkerSupervisor>(
        sopts, [this] { return registry_.Current(); });
    supervisor_->set_trip_callback([this](const Hash128& d) { OnBreakerTrip(d); });
  }
}

EstimationService::~EstimationService() { Stop(); }

Status EstimationService::ReloadModel(const std::string& checkpoint_path) {
  if (supervisor_ == nullptr) return registry_.Reload(checkpoint_path);

  // Worker mode splits load from publish so the quarantine check can sit
  // between them; reload_mu_ restores load->publish atomicity.
  std::lock_guard<std::mutex> lock(reload_mu_);
  StatusOr<std::shared_ptr<ModelSnapshot>> snap = registry_.Load(checkpoint_path);
  if (!snap.ok()) return snap.status();
  if (supervisor_->IsQuarantined((*snap)->digest)) {
    registry_.NoteReloadRefused();
    return Status::Unavailable(
        "reload refused: this checkpoint's model version is quarantined by the "
        "worker circuit breaker (it kept crashing workers)");
  }
  const std::shared_ptr<const ModelSnapshot> prev = registry_.Current();
  registry_.Publish(std::move(*snap));
  if (prev != nullptr && !supervisor_->IsQuarantined(prev->digest)) {
    last_good_ = prev;  // the rollback target if the new model misbehaves
  }
  supervisor_->RestartWorkers();  // roll the pool onto the new snapshot
  return Status::Ok();
}

void EstimationService::OnBreakerTrip(const Hash128& digest) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  const std::shared_ptr<const ModelSnapshot> cur = registry_.Current();
  if (cur == nullptr || !(cur->digest == digest)) return;  // already replaced
  if (last_good_ == nullptr || last_good_->digest == digest ||
      supervisor_->IsQuarantined(last_good_->digest)) {
    // Nothing safe to roll back to: the trip stays advisory (breaker_open
    // in --stats) and respawn backoff caps the churn — a crashing model
    // still beats no model.
    return;
  }
  registry_.Republish(last_good_);
  supervisor_->RestartWorkers();
}

Status EstimationService::Start() {
  if (supervisor_ != nullptr) {
    // If the service is already running, so is the supervisor, and this
    // returns the same kInvalidArgument the scheduler check would.
    M3_RETURN_IF_ERROR(supervisor_->Start());
  }
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (running_) return Status::InvalidArgument("service already running");
  running_ = true;
  stopping_ = false;
  const int n = std::max(1, opts_.num_workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void EstimationService::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_) {
      if (supervisor_ != nullptr) supervisor_->Stop();  // Start() may have half-run
      return;
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    running_ = false;
    stopping_ = false;
  }
  // The scheduler is drained (every accepted query answered), so no
  // Execute() is in flight on the pool.
  if (supervisor_ != nullptr) supervisor_->Stop();
}

void EstimationService::WorkerLoop() {
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      p = std::move(queue_.front());
      queue_.pop_front();
    }
    if (p.req.deadline_seconds > 0) {
      // The client's deadline covers time spent queued behind other work,
      // not just compute; shrink the budget Execute may spend by the
      // observed wait. A fully blown deadline keeps a nominal budget so
      // the estimator's own deadline machinery reports it uniformly
      // (kDeadlineExceeded with a partial estimate).
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - p.enqueued)
              .count();
      p.req.deadline_seconds = std::max(p.req.deadline_seconds - waited, 1e-9);
    }
    QueryResponse resp = Execute(p.req);
    if (p.done) p.done(std::move(resp));
  }
}

Status EstimationService::Submit(QueryRequest req, DoneFn done) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_ || stopping_) {
      return Status::Unavailable("estimation service is not running");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      queries_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission control: request queue full (" +
          std::to_string(opts_.queue_capacity) + " pending)");
    }
    queue_.push_back(
        Pending{std::move(req), std::move(done), std::chrono::steady_clock::now()});
  }
  queue_cv_.notify_one();
  return Status::Ok();
}

QueryResponse EstimationService::Query(const QueryRequest& req) {
  bool scheduled;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    scheduled = running_ && !stopping_;
  }
  if (!scheduled) return ExecuteInline(req);

  std::promise<QueryResponse> promise;
  std::future<QueryResponse> result = promise.get_future();
  const Status st =
      Submit(req, [&promise](QueryResponse r) { promise.set_value(std::move(r)); });
  if (!st.ok()) {
    QueryResponse resp;
    resp.status = st;
    resp.stats = Stats();
    return resp;
  }
  return result.get();
}

QueryResponse EstimationService::ExecuteInline(const QueryRequest& req) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  return Execute(req);
}

ShardQueryResponse EstimationService::ExecuteShard(const ShardQueryRequest& req) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  ShardQueryResponse resp;
  const std::shared_ptr<const ModelSnapshot> snap = registry_.Current();
  if (snap == nullptr) {
    resp.status = Status::Unavailable(
        "no model loaded (start m3d with --model, or send a reload request)");
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return resp;
  }
  ExecContext ctx;
  ctx.topos = &topos_;
  ctx.path_cache = opts_.path_cache_entries > 0 ? &path_cache_ : nullptr;
  ctx.threads_per_query = opts_.threads_per_query;
  resp = ExecuteShardOnSnapshot(req, *snap, ctx);
  (IsAnsweredCode(resp.status.code()) ? queries_ok_ : queries_failed_)
      .fetch_add(1, std::memory_order_relaxed);
  return resp;
}

std::size_t EstimationService::TopologyCacheSize() const { return topos_.size(); }

QueryResponse EstimationService::Execute(const QueryRequest& req) {
  QueryResponse resp;
  const std::shared_ptr<const ModelSnapshot> snap = registry_.Current();
  if (snap == nullptr) {
    resp.status = Status::Unavailable(
        "no model loaded (start m3d with --model, or send a reload request)");
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    resp.stats = Stats();
    return resp;
  }
  resp.model_version = snap->version;
  resp.model_crc = snap->param_crc;

  const Hash128 query_key = QueryCacheKey(req, snap->digest);
  if (!req.no_cache) {
    try {
      if (std::optional<QueryResponse> hit = query_cache_.Lookup(query_key)) {
        resp = std::move(*hit);
        resp.model_version = snap->version;
        resp.model_crc = snap->param_crc;
        resp.query_cache_hit = true;
        queries_ok_.fetch_add(1, std::memory_order_relaxed);
        resp.stats = Stats();
        return resp;
      }
    } catch (...) {
      // Cache outage (injected or real): recompute. Never fail the query.
    }
  }

  if (supervisor_ != nullptr) {
    resp = supervisor_->Execute(req);
  } else {
    ExecContext ctx;
    ctx.topos = &topos_;
    ctx.path_cache = opts_.path_cache_entries > 0 ? &path_cache_ : nullptr;
    ctx.threads_per_query = opts_.threads_per_query;
    resp = ExecuteQueryOnSnapshot(req, *snap, ctx);
  }

  (IsAnsweredCode(resp.status.code()) ? queries_ok_ : queries_failed_)
      .fetch_add(1, std::memory_order_relaxed);

  // Only full-quality answers are content-addressable: a degraded or
  // partial answer depends on fault timing, not just on the inputs. The
  // version check matters in worker mode: during a reload roll a worker
  // pinning the *old* snapshot may answer, and its result must not be
  // cached under the new digest's key.
  if (resp.status.ok() && !req.no_cache && resp.model_version == snap->version) {
    QueryResponse cached = resp;  // stats/hit-flag fields stay default
    query_cache_.Insert(query_key, std::move(cached));
  }
  resp.stats = Stats();
  return resp;
}

ServerStatsWire EstimationService::Stats() const {
  ServerStatsWire s;
  s.queries_received = queries_received_.load(std::memory_order_relaxed);
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  CopyCacheStats(query_cache_.stats(), s.query_cache);
  CopyCacheStats(path_cache_.stats(), s.path_cache);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.queue_depth = static_cast<std::uint32_t>(queue_.size());
  }
  s.queue_capacity = static_cast<std::uint32_t>(opts_.queue_capacity);
  s.workers = static_cast<std::uint32_t>(std::max(1, opts_.num_workers));
  if (const auto snap = registry_.Current()) {
    s.model_version = snap->version;
    s.model_crc = snap->param_crc;
    s.model_path = snap->checkpoint_path;
  }
  s.reloads_ok = registry_.reloads_ok();
  s.reloads_failed = registry_.reloads_failed();
  if (supervisor_ != nullptr) {
    const WorkerPoolStats w = supervisor_->stats();
    s.worker_mode = true;
    s.workers_configured = w.configured;
    s.workers_alive = w.alive;
    s.worker_spawns = w.spawns;
    s.worker_restarts = w.restarts;
    s.worker_crashes = w.crashes;
    s.watchdog_kills = w.watchdog_kills;
    s.garbage_replies = w.garbage_replies;
    s.crash_retried_queries = w.crash_retried_queries;
    s.breaker_trips = w.breaker_trips;
    s.breaker_open = w.breaker_open;
    s.quarantined_digests = w.quarantined_digests;
  }
  return s;
}

PingResponse EstimationService::Ping() const {
  PingResponse p;
  const auto snap = registry_.Current();
  if (snap != nullptr) p.model_version = snap->version;
  if (supervisor_ != nullptr) {
    p.worker_mode = true;
    p.workers_alive = supervisor_->stats().alive;
    p.ready = snap != nullptr && p.workers_alive > 0;
  } else {
    p.ready = snap != nullptr;
  }
  return p;
}

void EstimationService::ClearCaches() {
  query_cache_.Clear();
  path_cache_.Clear();
}

void EstimationService::ClearQueryCache() { query_cache_.Clear(); }

}  // namespace m3::serve
