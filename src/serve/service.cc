#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <utility>

namespace m3::serve {
namespace {

// Both caches share one injection site: an armed "serve/cache_lookup"
// fault makes every lookup fail, and the service must degrade to plain
// recompute (same answer, no reuse) rather than failing queries.
constexpr const char* kCacheFaultSite = "serve/cache_lookup";

// Distinct fat trees a daemon keeps alive at once. Real deployments use a
// handful of oversubscription ratios; the bound exists because the ratio is
// a client-supplied double (any bit pattern in range is admissible).
constexpr std::size_t kTopoCacheEntries = 8;

void CopyCacheStats(const CacheStats& in, std::uint64_t out[5]) {
  out[0] = in.hits;
  out[1] = in.misses;
  out[2] = in.inserts;
  out[3] = in.evictions;
  out[4] = in.entries;
}

}  // namespace

EstimationService::EstimationService(const ServiceOptions& opts)
    : opts_(opts),
      registry_(opts.model_config),
      query_cache_(opts.query_cache_entries, kCacheFaultSite),
      path_cache_(opts.path_cache_entries, kCacheFaultSite) {}

EstimationService::~EstimationService() { Stop(); }

Status EstimationService::ReloadModel(const std::string& checkpoint_path) {
  return registry_.Reload(checkpoint_path);
}

Status EstimationService::Start() {
  std::lock_guard<std::mutex> lock(queue_mu_);
  if (running_) return Status::InvalidArgument("service already running");
  running_ = true;
  stopping_ = false;
  const int n = std::max(1, opts_.num_workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void EstimationService::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  std::lock_guard<std::mutex> lock(queue_mu_);
  running_ = false;
  stopping_ = false;
}

void EstimationService::WorkerLoop() {
  for (;;) {
    Pending p;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      p = std::move(queue_.front());
      queue_.pop_front();
    }
    if (p.req.deadline_seconds > 0) {
      // The client's deadline covers time spent queued behind other work,
      // not just compute; shrink the budget Execute may spend by the
      // observed wait. A fully blown deadline keeps a nominal budget so
      // the estimator's own deadline machinery reports it uniformly
      // (kDeadlineExceeded with a partial estimate).
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - p.enqueued)
              .count();
      p.req.deadline_seconds = std::max(p.req.deadline_seconds - waited, 1e-9);
    }
    QueryResponse resp = Execute(p.req);
    if (p.done) p.done(std::move(resp));
  }
}

Status EstimationService::Submit(QueryRequest req, DoneFn done) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_ || stopping_) {
      return Status::Unavailable("estimation service is not running");
    }
    if (queue_.size() >= opts_.queue_capacity) {
      queries_rejected_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "admission control: request queue full (" +
          std::to_string(opts_.queue_capacity) + " pending)");
    }
    queue_.push_back(
        Pending{std::move(req), std::move(done), std::chrono::steady_clock::now()});
  }
  queue_cv_.notify_one();
  return Status::Ok();
}

QueryResponse EstimationService::Query(const QueryRequest& req) {
  bool scheduled;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    scheduled = running_ && !stopping_;
  }
  if (!scheduled) return ExecuteInline(req);

  std::promise<QueryResponse> promise;
  std::future<QueryResponse> result = promise.get_future();
  const Status st =
      Submit(req, [&promise](QueryResponse r) { promise.set_value(std::move(r)); });
  if (!st.ok()) {
    QueryResponse resp;
    resp.status = st;
    resp.stats = Stats();
    return resp;
  }
  return result.get();
}

QueryResponse EstimationService::ExecuteInline(const QueryRequest& req) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  return Execute(req);
}

std::shared_ptr<const FatTree> EstimationService::TopologyFor(double oversub) {
  std::uint64_t bits;  // bit-pattern key: exactly the double off the wire
  std::memcpy(&bits, &oversub, sizeof bits);
  std::lock_guard<std::mutex> lock(topo_mu_);
  for (auto it = topos_.begin(); it != topos_.end(); ++it) {
    if (it->first == bits) {
      auto ft = it->second;
      topos_.erase(it);
      topos_.emplace_back(bits, ft);  // refresh recency
      return ft;
    }
  }
  auto ft = std::make_shared<const FatTree>(FatTreeConfig::Small(oversub));
  if (topos_.size() >= kTopoCacheEntries) topos_.erase(topos_.begin());
  topos_.emplace_back(bits, ft);
  return ft;
}

std::size_t EstimationService::TopologyCacheSize() const {
  std::lock_guard<std::mutex> lock(topo_mu_);
  return topos_.size();
}

QueryResponse EstimationService::Execute(const QueryRequest& req) {
  QueryResponse resp;
  const std::shared_ptr<const ModelSnapshot> snap = registry_.Current();
  if (snap == nullptr) {
    resp.status = Status::Unavailable(
        "no model loaded (start m3d with --model, or send a reload request)");
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    resp.stats = Stats();
    return resp;
  }
  resp.model_version = snap->version;
  resp.model_crc = snap->param_crc;

  const Hash128 query_key = QueryCacheKey(req, snap->digest);
  if (!req.no_cache) {
    try {
      if (std::optional<QueryResponse> hit = query_cache_.Lookup(query_key)) {
        resp = std::move(*hit);
        resp.model_version = snap->version;
        resp.model_crc = snap->param_crc;
        resp.query_cache_hit = true;
        queries_ok_.fetch_add(1, std::memory_order_relaxed);
        resp.stats = Stats();
        return resp;
      }
    } catch (...) {
      // Cache outage (injected or real): recompute. Never fail the query.
    }
  }

  if (!(req.oversub >= 0.0625 && req.oversub <= 64.0)) {
    resp.status = Status::InvalidArgument(
        "oversub: " + std::to_string(req.oversub) + " (must be in [0.0625, 64])");
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    resp.stats = Stats();
    return resp;
  }
  const std::shared_ptr<const FatTree> ft = TopologyFor(req.oversub);

  std::vector<Flow> flows;
  flows.reserve(req.flows.size());
  const int num_hosts = ft->num_hosts();
  for (std::size_t i = 0; i < req.flows.size(); ++i) {
    const WireFlow& wf = req.flows[i];
    const auto bad = [&](const std::string& field, long long v, const std::string& want) {
      return Status::InvalidArgument("flows[" + std::to_string(i) + "]." + field + ": " +
                                     std::to_string(v) + " (" + want + ")");
    };
    Status st;
    if (wf.src_host < 0 || wf.src_host >= num_hosts) {
      st = bad("src", wf.src_host, "host index in [0, " + std::to_string(num_hosts) + ")");
    } else if (wf.dst_host < 0 || wf.dst_host >= num_hosts) {
      st = bad("dst", wf.dst_host, "host index in [0, " + std::to_string(num_hosts) + ")");
    } else if (wf.src_host == wf.dst_host) {
      st = bad("dst", wf.dst_host, "must differ from src");
    } else if (wf.priority >= kNumPriorities) {
      st = bad("priority", wf.priority, "class in [0, " + std::to_string(kNumPriorities) + ")");
    }
    if (!st.ok()) {
      resp.status = st;
      resp.degradation.errors_validation = 1;
      queries_failed_.fetch_add(1, std::memory_order_relaxed);
      resp.stats = Stats();
      return resp;
    }
    Flow f;
    f.id = wf.id;
    f.src = ft->host(wf.src_host);
    f.dst = ft->host(wf.dst_host);
    f.size = wf.size;
    f.arrival = wf.arrival;
    f.priority = wf.priority;
    // Route re-derivation, same ECMP-on-id convention as trace_io.
    f.path = ft->RouteBetween(wf.src_host, wf.dst_host, static_cast<std::uint64_t>(wf.id));
    flows.push_back(std::move(f));
  }

  M3Options mopts;
  mopts.num_paths = req.num_paths;
  mopts.seed = req.seed;
  mopts.use_context = req.use_context;
  mopts.strict = req.strict;
  mopts.deadline_seconds = req.deadline_seconds;
  mopts.max_attempts = req.max_attempts;
  mopts.num_threads = opts_.threads_per_query;

  PathCacheHooks hooks;
  if (!req.no_cache && opts_.path_cache_entries > 0) {
    hooks.lookup = [this, &req, &snap](const PathScenario& sc) {
      return path_cache_.Lookup(PathCacheKey(sc, req.cfg, req.use_context, snap->digest));
    };
    hooks.insert = [this, &req, &snap](const PathScenario& sc, const PathEstimate& pe) {
      path_cache_.Insert(PathCacheKey(sc, req.cfg, req.use_context, snap->digest), pe);
    };
    mopts.path_cache = &hooks;
  }

  NetworkEstimate est = RunM3(ft->topo(), flows, req.cfg, snap->model, mopts);

  resp.status = est.status;
  resp.bucket_pct = std::move(est.bucket_pct);
  resp.total_counts = est.total_counts;
  resp.combined_pct = std::move(est.combined_pct);
  resp.wall_seconds = est.wall_seconds;
  resp.degradation = est.degradation;

  const StatusCode code = est.status.code();
  const bool answered = est.status.ok() || code == StatusCode::kDegraded ||
                        code == StatusCode::kDeadlineExceeded;
  (answered ? queries_ok_ : queries_failed_).fetch_add(1, std::memory_order_relaxed);

  // Only full-quality answers are content-addressable: a degraded or
  // partial answer depends on fault timing, not just on the inputs.
  if (est.status.ok() && !req.no_cache) {
    QueryResponse cached = resp;  // stats/hit-flag fields stay default
    query_cache_.Insert(query_key, std::move(cached));
  }
  resp.stats = Stats();
  return resp;
}

ServerStatsWire EstimationService::Stats() const {
  ServerStatsWire s;
  s.queries_received = queries_received_.load(std::memory_order_relaxed);
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  CopyCacheStats(query_cache_.stats(), s.query_cache);
  CopyCacheStats(path_cache_.stats(), s.path_cache);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.queue_depth = static_cast<std::uint32_t>(queue_.size());
  }
  s.queue_capacity = static_cast<std::uint32_t>(opts_.queue_capacity);
  s.workers = static_cast<std::uint32_t>(std::max(1, opts_.num_workers));
  if (const auto snap = registry_.Current()) {
    s.model_version = snap->version;
    s.model_crc = snap->param_crc;
    s.model_path = snap->checkpoint_path;
  }
  s.reloads_ok = registry_.reloads_ok();
  s.reloads_failed = registry_.reloads_failed();
  return s;
}

void EstimationService::ClearCaches() {
  query_cache_.Clear();
  path_cache_.Clear();
}

void EstimationService::ClearQueryCache() { query_cache_.Clear(); }

}  // namespace m3::serve
