#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <future>
#include <utility>

namespace m3::serve {
namespace {

// Both caches share one injection site: an armed "serve/cache_lookup"
// fault makes every lookup fail, and the service must degrade to plain
// recompute (same answer, no reuse) rather than failing queries.
constexpr const char* kCacheFaultSite = "serve/cache_lookup";

// Distinct fat trees a daemon keeps alive at once. Real deployments use a
// handful of oversubscription ratios; the bound exists because the ratio is
// a client-supplied double (any bit pattern in range is admissible).
constexpr std::size_t kTopoCacheEntries = 8;

void CopyCacheStats(const CacheStats& in, std::uint64_t out[5]) {
  out[0] = in.hits;
  out[1] = in.misses;
  out[2] = in.inserts;
  out[3] = in.evictions;
  out[4] = in.entries;
}

}  // namespace

EstimationService::EstimationService(const ServiceOptions& opts)
    : opts_(opts),
      registry_(opts.model_config),
      query_cache_(opts.query_cache_entries, kCacheFaultSite),
      path_cache_(opts.path_cache_entries, kCacheFaultSite),
      topos_(kTopoCacheEntries) {
  cost_budget_ = opts_.cost_budget > 0
                     ? opts_.cost_budget
                     : static_cast<double>(opts_.queue_capacity +
                                           static_cast<std::size_t>(
                                               std::max(1, opts_.num_workers))) *
                           128.0;
  if (opts_.worker_processes > 0) {
    SupervisorOptions sopts = opts_.supervisor;
    sopts.num_workers = opts_.worker_processes;
    sopts.threads_per_query = opts_.threads_per_query;
    sopts.path_cache_entries = opts_.path_cache_entries;
    supervisor_ = std::make_unique<WorkerSupervisor>(
        sopts, [this] { return registry_.Current(); });
    supervisor_->set_trip_callback([this](const Hash128& d) { OnBreakerTrip(d); });
  }
}

EstimationService::~EstimationService() { Stop(); }

Status EstimationService::ReloadModel(const std::string& checkpoint_path) {
  if (supervisor_ == nullptr) return registry_.Reload(checkpoint_path);

  // Worker mode splits load from publish so the quarantine check can sit
  // between them; reload_mu_ restores load->publish atomicity.
  std::lock_guard<std::mutex> lock(reload_mu_);
  StatusOr<std::shared_ptr<ModelSnapshot>> snap = registry_.Load(checkpoint_path);
  if (!snap.ok()) return snap.status();
  if (supervisor_->IsQuarantined((*snap)->digest)) {
    registry_.NoteReloadRefused();
    return Status::Unavailable(
        "reload refused: this checkpoint's model version is quarantined by the "
        "worker circuit breaker (it kept crashing workers)");
  }
  const std::shared_ptr<const ModelSnapshot> prev = registry_.Current();
  registry_.Publish(std::move(*snap));
  if (prev != nullptr && !supervisor_->IsQuarantined(prev->digest)) {
    last_good_ = prev;  // the rollback target if the new model misbehaves
  }
  supervisor_->RestartWorkers();  // roll the pool onto the new snapshot
  return Status::Ok();
}

void EstimationService::OnBreakerTrip(const Hash128& digest) {
  std::lock_guard<std::mutex> lock(reload_mu_);
  const std::shared_ptr<const ModelSnapshot> cur = registry_.Current();
  if (cur == nullptr || !(cur->digest == digest)) return;  // already replaced
  if (last_good_ == nullptr || last_good_->digest == digest ||
      supervisor_->IsQuarantined(last_good_->digest)) {
    // Nothing safe to roll back to: the trip stays advisory (breaker_open
    // in --stats) and respawn backoff caps the churn — a crashing model
    // still beats no model.
    return;
  }
  registry_.Republish(last_good_);
  supervisor_->RestartWorkers();
}

Status EstimationService::Start() {
  if (supervisor_ != nullptr) {
    // If the service is already running, so is the supervisor, and this
    // returns the same kInvalidArgument the scheduler check would.
    M3_RETURN_IF_ERROR(supervisor_->Start());
  }
  // Durable caches: validate + lock the directory and start the flusher
  // before any worker can compute (so the first fresh entry can spill).
  // A bad --cache-dir fails Start with a clear status instead of failing
  // the first background flush.
  bool first_persist_start = false;
  if (!opts_.cache_dir.empty()) {
    if (!dir_lock_.held()) {
      if (Status st = AcquireCacheDir(opts_.cache_dir, &dir_lock_); !st.ok()) {
        if (supervisor_ != nullptr) supervisor_->Stop();
        return st;
      }
    }
    if (persister_ == nullptr) {
      PersistOptions popts;
      popts.dir = opts_.cache_dir;
      popts.flush_interval_seconds = opts_.cache_flush_interval_seconds;
      persister_ = std::make_unique<CachePersister>(popts);
      first_persist_start = true;
    }
    if (Status st = persister_->Start(); !st.ok()) {
      if (first_persist_start) persister_.reset();
      if (supervisor_ != nullptr) supervisor_->Stop();
      return st.Annotate("cache persistence");
    }
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (running_) return Status::InvalidArgument("service already running");
    running_ = true;
    stopping_ = false;
    const int n = std::max(1, opts_.num_workers);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  // Recovery replays surviving segments *concurrently with serving*:
  // readiness never waits on disk. Only the first Start replays — a
  // Stop/Start cycle keeps its in-memory caches.
  if (first_persist_start) {
    std::lock_guard<std::mutex> lock(recovery_mu_);
    recovery_ = std::thread([this] { RecoverPersistedCaches(); });
  }
  return Status::Ok();
}

void EstimationService::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_) {
      if (supervisor_ != nullptr) supervisor_->Stop();  // Start() may have half-run
      return;
    }
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    running_ = false;
    stopping_ = false;
  }
  // The scheduler is drained (every accepted query answered), so no
  // Execute() is in flight on the pool.
  if (supervisor_ != nullptr) supervisor_->Stop();
  WaitForPersistRecovery();
  // Final drain flush so a clean shutdown persists everything it computed.
  if (persister_ != nullptr) persister_->Stop();
}

Status EstimationService::FlushPersistNow() {
  if (persister_ == nullptr) return Status::Ok();
  return persister_->FlushNow();
}

void EstimationService::WaitForPersistRecovery() {
  std::lock_guard<std::mutex> lock(recovery_mu_);
  if (recovery_.joinable()) recovery_.join();
}

void EstimationService::RecoverPersistedCaches() {
  // The snapshot is pinned once for the whole replay: recovered entries
  // must match the model this process serves, not whatever it may reload
  // into later (a reload changes the digest, so stale keys simply miss).
  const std::shared_ptr<const ModelSnapshot> snap = registry_.Current();
  persister_->Recover([this, &snap](CacheKind kind, const Hash128& digest,
                                    const Hash128& key, const std::string& value)
                          -> CachePersister::Recovered {
    if (snap == nullptr || !(digest == snap->digest)) {
      return CachePersister::Recovered::kDigestMismatch;
    }
    switch (kind) {
      case CacheKind::kQuery: {
        StatusOr<QueryResponse> qr = DecodeQueryResponse(value);
        // Only full-quality kOk answers were ever written; anything else
        // surviving the framing checks is still not servable.
        if (!qr.ok() || !qr->status.ok()) return CachePersister::Recovered::kCorrupt;
        qr->model_version = snap->version;
        qr->model_crc = snap->param_crc;
        query_cache_.Insert(key, std::move(*qr));
        return CachePersister::Recovered::kLoaded;
      }
      case CacheKind::kPath: {
        StatusOr<PathEstimate> pe = DecodePathEstimateValue(value);
        if (!pe.ok()) return CachePersister::Recovered::kCorrupt;
        path_cache_.Insert(key, std::move(*pe));
        return CachePersister::Recovered::kLoaded;
      }
      default:
        // kRouterPath (or an unknown kind) does not belong to a daemon's
        // directory; directory locking should make this unreachable.
        return CachePersister::Recovered::kCorrupt;
    }
  });
}

std::size_t EstimationService::QueueDepthLocked() const {
  std::size_t depth = 0;
  for (const std::deque<Pending>& q : queues_) depth += q.size();
  return depth;
}

double EstimationService::OldestSojournLocked(
    std::chrono::steady_clock::time_point now) const {
  double oldest = 0.0;
  for (const std::deque<Pending>& q : queues_) {
    if (q.empty()) continue;
    const double age = std::chrono::duration<double>(now - q.front().enqueued).count();
    oldest = std::max(oldest, age);
  }
  return oldest;
}

double EstimationService::EstimateCost(const QueryRequest& req) const {
  const auto hit_rate = [](const CacheStats& s) {
    const std::uint64_t probes = s.hits + s.misses;
    return probes == 0 ? 0.0 : static_cast<double>(s.hits) / static_cast<double>(probes);
  };
  const double q_hit = req.no_cache ? 0.0 : hit_rate(query_cache_.stats());
  const double p_hit = req.no_cache ? 0.0 : hit_rate(path_cache_.stats());
  const double paths = static_cast<double>(std::max<std::int32_t>(req.num_paths, 0));
  // Base work + flow ingestion + per-path model work, each discounted by
  // the chance the cache absorbs it (a query-cache hit skips everything; a
  // path-cache hit skips ~90% of that path's cost).
  return 1.0 + static_cast<double>(req.flows.size()) / 10000.0 +
         (1.0 - q_hit) * paths * (1.0 - 0.9 * p_hit);
}

void EstimationService::ReapExpiredLocked(std::chrono::steady_clock::time_point now,
                                          std::vector<Pending>* reaped) {
  for (std::deque<Pending>& q : queues_) {
    for (auto it = q.begin(); it != q.end();) {
      const double age = std::chrono::duration<double>(now - it->enqueued).count();
      if (it->req.deadline_seconds > 0 && age >= it->req.deadline_seconds) {
        in_flight_cost_ = std::max(0.0, in_flight_cost_ - it->cost);
        reaped->push_back(std::move(*it));
        it = q.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void EstimationService::UpdateBrownoutLocked(
    double sojourn_seconds, bool escalate,
    std::chrono::steady_clock::time_point now) {
  if (!opts_.brownout_enabled) return;
  int observed = 0;
  if (sojourn_seconds >= opts_.brownout2_sojourn_seconds) {
    observed = 2;
  } else if (sojourn_seconds >= opts_.brownout1_sojourn_seconds) {
    observed = 1;
  }
  if (escalate) observed = std::max(observed, 1);
  if (observed >= brownout_level_) {
    // Pressure persists (or worsens): move to the observed level and
    // restart the hold window.
    if (observed > 0) {
      brownout_level_ = observed;
      brownout_until_ =
          now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(opts_.brownout_hold_seconds));
    }
  } else if (now >= brownout_until_) {
    // Pressure subsided and the hold expired: recover (possibly straight
    // to full quality).
    brownout_level_ = observed;
  }
}

void EstimationService::AnswerShed(Pending p, ShedReason reason) {
  queries_shed_.fetch_add(1, std::memory_order_relaxed);
  shed_by_reason_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
  if (!p.done) return;
  QueryResponse resp;
  resp.shed_reason = static_cast<std::uint8_t>(reason);
  if (reason == ShedReason::kExpired) {
    resp.status = Status::DeadlineExceeded(
        "shed: deadline expired while queued (never executed)");
  } else {
    resp.status = Status::ResourceExhausted(
        "shed: displaced by a higher-priority request");
  }
  resp.stats = Stats();
  p.done(std::move(resp));
}

void EstimationService::WorkerLoop() {
  for (;;) {
    Pending p;
    bool expired = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stopping_ || QueueDepthLocked() > 0; });
      if (QueueDepthLocked() == 0) return;  // stopping_ && drained
      // Highest priority class first; FIFO within a class.
      for (int cls = kNumPriorityClasses - 1; cls >= 0; --cls) {
        std::deque<Pending>& q = queues_[cls];
        if (q.empty()) continue;
        p = std::move(q.front());
        q.pop_front();
        break;
      }
      const auto now = std::chrono::steady_clock::now();
      const double sojourn =
          std::chrono::duration<double>(now - p.enqueued).count();
      UpdateBrownoutLocked(sojourn, /*escalate=*/false, now);
      expired = p.req.deadline_seconds > 0 && sojourn >= p.req.deadline_seconds;
      if (expired) {
        in_flight_cost_ = std::max(0.0, in_flight_cost_ - p.cost);
      } else if (brownout_level_ > 0 &&
                 p.req.priority <
                     static_cast<std::uint8_t>(Priority::kCritical) &&
                 p.req.brownout == 0) {
        // Brownout applies only below kCritical, and never overrides a
        // level the client pinned explicitly (tests do).
        p.req.brownout = static_cast<std::uint8_t>(brownout_level_);
      }
    }
    if (expired) {
      // Its deadline is already blown; executing would only burn budget
      // other queries still need. Answer typed, immediately.
      AnswerShed(std::move(p), ShedReason::kExpired);
      continue;
    }
    if (p.req.brownout > 0) {
      brownout_queries_.fetch_add(1, std::memory_order_relaxed);
    }
    if (p.req.deadline_seconds > 0) {
      // The client's deadline covers time spent queued behind other work,
      // not just compute; shrink the budget Execute may spend by the
      // observed wait. A fully blown deadline keeps a nominal budget so
      // the estimator's own deadline machinery reports it uniformly
      // (kDeadlineExceeded with a partial estimate).
      const double waited =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - p.enqueued)
              .count();
      p.req.deadline_seconds = std::max(p.req.deadline_seconds - waited, 1e-9);
    }
    if (pre_execute_hook_) pre_execute_hook_(p.req);
    QueryResponse resp = Execute(p.req);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      in_flight_cost_ = std::max(0.0, in_flight_cost_ - p.cost);
    }
    if (p.done) p.done(std::move(resp));
  }
}

Status EstimationService::Submit(QueryRequest req, DoneFn done,
                                 ShedReason* shed_out) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  if (shed_out != nullptr) *shed_out = ShedReason::kNone;
  const int cls = std::min<int>(req.priority, kNumPriorityClasses - 1);
  req.priority = static_cast<std::uint8_t>(cls);

  std::vector<Pending> shed;  // answered outside queue_mu_ (AnswerShed → Stats)
  Status result = Status::Ok();
  ShedReason reason = ShedReason::kNone;
  bool displaced_victim = false;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (!running_ || stopping_) {
      return Status::Unavailable("estimation service is not running");
    }
    const auto now = std::chrono::steady_clock::now();
    // Satellite fix: expired entries stop displacing admissible work the
    // moment any new work arrives, not when a worker finally reaches them.
    ReapExpiredLocked(now, &shed);

    const bool critical =
        cls == static_cast<int>(Priority::kCritical);
    const double cost = EstimateCost(req);
    if (!critical && opts_.shed_sojourn_seconds > 0 &&
        OldestSojournLocked(now) >= opts_.shed_sojourn_seconds) {
      // CoDel-style: queue *delay*, not queue length, is the overload
      // signal — once standing sojourn passes the target, adding more
      // work only pushes everyone past their deadline.
      reason = ShedReason::kSojourn;
      result = Status::ResourceExhausted(
          "admission control: queue sojourn above shed threshold (" +
          std::to_string(opts_.shed_sojourn_seconds) + "s)");
    } else if (!critical && in_flight_cost_ > 0.0 &&
               in_flight_cost_ + cost > cost_budget_) {
      reason = ShedReason::kCostBudget;
      result = Status::ResourceExhausted(
          "admission control: in-flight cost budget exhausted");
    } else if (QueueDepthLocked() >= opts_.queue_capacity) {
      // Full queue: displace the newest entry of the lowest class that is
      // strictly below this request's class; same-or-higher classes are
      // never displaced, so a same-class burst still sees the original
      // FIFO queue-full rejection.
      int victim_cls = -1;
      for (int c = 0; c < cls; ++c) {
        if (!queues_[c].empty()) {
          victim_cls = c;
          break;
        }
      }
      if (victim_cls >= 0) {
        Pending victim = std::move(queues_[victim_cls].back());
        queues_[victim_cls].pop_back();
        in_flight_cost_ = std::max(0.0, in_flight_cost_ - victim.cost);
        shed.push_back(std::move(victim));
        displaced_victim = true;
        // Displacement is a pressure signal: brown out before sojourns grow.
        UpdateBrownoutLocked(0.0, /*escalate=*/true, now);
      } else {
        reason = ShedReason::kQueueFull;
        result = Status::ResourceExhausted(
            "admission control: request queue full (" +
            std::to_string(opts_.queue_capacity) + " pending)");
      }
    }
    if (result.ok()) {
      in_flight_cost_ += cost;
      queues_[cls].push_back(
          Pending{std::move(req), std::move(done), now, cost});
    }
  }
  // Everything reaped is kExpired; the displaced victim (appended last,
  // if any) is kPriority.
  const std::size_t expired_count = shed.size() - (displaced_victim ? 1 : 0);
  for (std::size_t i = 0; i < shed.size(); ++i) {
    AnswerShed(std::move(shed[i]),
               i < expired_count ? ShedReason::kExpired : ShedReason::kPriority);
  }
  if (!result.ok()) {
    queries_rejected_.fetch_add(1, std::memory_order_relaxed);
    shed_by_reason_[static_cast<std::size_t>(reason)].fetch_add(
        1, std::memory_order_relaxed);
    if (shed_out != nullptr) *shed_out = reason;
    return result;
  }
  queue_cv_.notify_one();
  return Status::Ok();
}

QueryResponse EstimationService::Query(const QueryRequest& req) {
  bool scheduled;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    scheduled = running_ && !stopping_;
  }
  if (!scheduled) return ExecuteInline(req);

  std::promise<QueryResponse> promise;
  std::future<QueryResponse> result = promise.get_future();
  ShedReason shed = ShedReason::kNone;
  const Status st = Submit(
      req, [&promise](QueryResponse r) { promise.set_value(std::move(r)); }, &shed);
  if (!st.ok()) {
    QueryResponse resp;
    resp.status = st;
    resp.shed_reason = static_cast<std::uint8_t>(shed);
    resp.stats = Stats();
    return resp;
  }
  return result.get();
}

QueryResponse EstimationService::ExecuteInline(const QueryRequest& req) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  return Execute(req);
}

ShardQueryResponse EstimationService::ExecuteShard(const ShardQueryRequest& req) {
  queries_received_.fetch_add(1, std::memory_order_relaxed);
  ShardQueryResponse resp;
  const std::shared_ptr<const ModelSnapshot> snap = registry_.Current();
  if (snap == nullptr) {
    resp.status = Status::Unavailable(
        "no model loaded (start m3d with --model, or send a reload request)");
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    return resp;
  }
  ExecContext ctx;
  ctx.topos = &topos_;
  ctx.path_cache = opts_.path_cache_entries > 0 ? &path_cache_ : nullptr;
  ctx.threads_per_query = opts_.threads_per_query;
  if (persister_ != nullptr) {
    ctx.persist_path = [this](const Hash128& key, const Hash128& digest,
                              const PathEstimate& pe) {
      persister_->Enqueue(CacheKind::kPath, digest, key, EncodePathEstimateValue(pe));
    };
  }
  resp = ExecuteShardOnSnapshot(req, *snap, ctx);
  (IsAnsweredCode(resp.status.code()) ? queries_ok_ : queries_failed_)
      .fetch_add(1, std::memory_order_relaxed);
  return resp;
}

std::size_t EstimationService::TopologyCacheSize() const { return topos_.size(); }

QueryResponse EstimationService::Execute(const QueryRequest& req) {
  QueryResponse resp;
  const std::shared_ptr<const ModelSnapshot> snap = registry_.Current();
  if (snap == nullptr) {
    resp.status = Status::Unavailable(
        "no model loaded (start m3d with --model, or send a reload request)");
    queries_failed_.fetch_add(1, std::memory_order_relaxed);
    resp.stats = Stats();
    return resp;
  }
  resp.model_version = snap->version;
  resp.model_crc = snap->param_crc;

  const Hash128 query_key = QueryCacheKey(req, snap->digest);
  if (!req.no_cache) {
    try {
      if (std::optional<QueryResponse> hit = query_cache_.Lookup(query_key)) {
        resp = std::move(*hit);
        resp.model_version = snap->version;
        resp.model_crc = snap->param_crc;
        resp.query_cache_hit = true;
        queries_ok_.fetch_add(1, std::memory_order_relaxed);
        resp.stats = Stats();
        return resp;
      }
    } catch (...) {
      // Cache outage (injected or real): recompute. Never fail the query.
    }
  }

  if (supervisor_ != nullptr) {
    // Worker subprocesses keep private path caches that die with them;
    // only the daemon-level query cache (below) persists in this mode.
    resp = supervisor_->Execute(req);
  } else {
    ExecContext ctx;
    ctx.topos = &topos_;
    ctx.path_cache = opts_.path_cache_entries > 0 ? &path_cache_ : nullptr;
    ctx.threads_per_query = opts_.threads_per_query;
    if (persister_ != nullptr) {
      ctx.persist_path = [this](const Hash128& key, const Hash128& digest,
                                const PathEstimate& pe) {
        persister_->Enqueue(CacheKind::kPath, digest, key,
                            EncodePathEstimateValue(pe));
      };
    }
    resp = ExecuteQueryOnSnapshot(req, *snap, ctx);
  }

  (IsAnsweredCode(resp.status.code()) ? queries_ok_ : queries_failed_)
      .fetch_add(1, std::memory_order_relaxed);

  // Only full-quality answers are content-addressable: a degraded or
  // partial answer depends on fault timing, not just on the inputs. The
  // version check matters in worker mode: during a reload roll a worker
  // pinning the *old* snapshot may answer, and its result must not be
  // cached under the new digest's key.
  if (resp.status.ok() && !req.no_cache && resp.model_version == snap->version) {
    QueryResponse cached = resp;  // stats/hit-flag fields stay default
    // Encode before the move; Insert's return gates the spill so refreshes
    // (and recovered entries) are never written twice.
    std::string blob;
    if (persister_ != nullptr) blob = EncodeQueryResponse(cached);
    if (query_cache_.Insert(query_key, std::move(cached)) &&
        persister_ != nullptr) {
      persister_->Enqueue(CacheKind::kQuery, snap->digest, query_key,
                          std::move(blob));
    }
  }
  resp.stats = Stats();
  return resp;
}

ServerStatsWire EstimationService::Stats() const {
  ServerStatsWire s;
  s.queries_received = queries_received_.load(std::memory_order_relaxed);
  s.queries_ok = queries_ok_.load(std::memory_order_relaxed);
  s.queries_rejected = queries_rejected_.load(std::memory_order_relaxed);
  s.queries_failed = queries_failed_.load(std::memory_order_relaxed);
  s.queries_shed = queries_shed_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kNumShedReasons; ++i) {
    s.shed_by_reason[i] = shed_by_reason_[i].load(std::memory_order_relaxed);
  }
  s.brownout_queries = brownout_queries_.load(std::memory_order_relaxed);
  CopyCacheStats(query_cache_.stats(), s.query_cache);
  CopyCacheStats(path_cache_.stats(), s.path_cache);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    s.queue_depth = static_cast<std::uint32_t>(QueueDepthLocked());
    s.brownout_level = static_cast<std::uint32_t>(brownout_level_);
    s.in_flight_cost = in_flight_cost_;
    s.cost_budget = cost_budget_;
  }
  s.queue_capacity = static_cast<std::uint32_t>(opts_.queue_capacity);
  s.workers = static_cast<std::uint32_t>(std::max(1, opts_.num_workers));
  if (const auto snap = registry_.Current()) {
    s.model_version = snap->version;
    s.model_crc = snap->param_crc;
    s.model_path = snap->checkpoint_path;
  }
  s.reloads_ok = registry_.reloads_ok();
  s.reloads_failed = registry_.reloads_failed();
  if (supervisor_ != nullptr) {
    const WorkerPoolStats w = supervisor_->stats();
    s.worker_mode = true;
    s.workers_configured = w.configured;
    s.workers_alive = w.alive;
    s.worker_spawns = w.spawns;
    s.worker_restarts = w.restarts;
    s.worker_crashes = w.crashes;
    s.watchdog_kills = w.watchdog_kills;
    s.garbage_replies = w.garbage_replies;
    s.crash_retried_queries = w.crash_retried_queries;
    s.breaker_trips = w.breaker_trips;
    s.breaker_open = w.breaker_open;
    s.quarantined_digests = w.quarantined_digests;
  }
  if (persister_ != nullptr) {
    const PersistStats p = persister_->stats();
    s.persist_enabled = true;
    s.persist_segments_loaded = p.segments_loaded;
    s.persist_entries_loaded = p.entries_loaded;
    s.persist_entries_flushed = p.entries_flushed;
    s.persist_records_corrupt = p.records_corrupt;
    s.persist_digest_dropped = p.digest_dropped;
    s.persist_flush_backlog = p.flush_backlog;
  }
  return s;
}

PingResponse EstimationService::Ping() const {
  PingResponse p;
  const auto snap = registry_.Current();
  if (snap != nullptr) {
    p.model_version = snap->version;
    p.model_crc = snap->param_crc;
  }
  if (supervisor_ != nullptr) {
    p.worker_mode = true;
    p.workers_alive = supervisor_->stats().alive;
    p.ready = snap != nullptr && p.workers_alive > 0;
  } else {
    p.ready = snap != nullptr;
  }
  return p;
}

void EstimationService::ClearCaches() {
  query_cache_.Clear();
  path_cache_.Clear();
}

void EstimationService::ClearQueryCache() { query_cache_.Clear(); }

}  // namespace m3::serve
