#include "serve/persist.h"

#include <cstdio>
#include <cstring>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#ifdef __unix__
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "ml/checkpoint.h"  // Crc32
#include "util/fault.h"

namespace m3::serve {

namespace fs = std::filesystem;

namespace {

// On-disk framing. All integers little-endian (the project targets x86-64;
// wire.cc makes the same choice explicitly).
constexpr std::uint32_t kSegmentMagic = 0x4d334353u;  // "SC3M" on disk
constexpr std::uint32_t kRecordMagic = 0x4d335243u;   // "CR3M" on disk
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kSegmentHeaderSize = 8;   // magic + version
constexpr std::size_t kRecordHeaderSize = 12;   // magic + len + crc
// kind(1) + digest(16) + key(16) + value-hash(16)
constexpr std::size_t kPayloadPrefixSize = 49;
constexpr std::size_t kMaxPayloadBytes = 16u << 20;

template <typename T>
void Put(std::string& out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.append(buf, sizeof(T));
}

template <typename T>
T Get(const char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

std::string SegmentName(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%08llu.m3c",
                static_cast<unsigned long long>(seq));
  return buf;
}

/// Parses a segment sequence number out of "seg-%08llu.m3c"; returns false
/// for anything else (LOCK, temp files, stray data).
bool ParseSegmentName(const std::string& name, std::uint64_t* seq) {
  if (name.size() < 9 || name.rfind("seg-", 0) != 0) return false;
  if (name.size() < 4 + 4 || name.substr(name.size() - 4) != ".m3c") return false;
  const std::string digits = name.substr(4, name.size() - 8);
  if (digits.empty()) return false;
  std::uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *seq = v;
  return true;
}

#ifdef __unix__
// Best-effort flush to stable storage (same discipline as checkpoint.cc);
// a failure here does not invalidate the logical write.
void FsyncPath(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY : O_WRONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}
#endif

}  // namespace

CacheDirLock& CacheDirLock::operator=(CacheDirLock&& o) noexcept {
  if (this != &o) {
    Release();
    fd_ = o.fd_;
    path_ = std::move(o.path_);
    o.fd_ = -1;
  }
  return *this;
}

void CacheDirLock::Release() {
#ifdef __unix__
  if (fd_ >= 0) {
    ::flock(fd_, LOCK_UN);
    ::close(fd_);
  }
#endif
  fd_ = -1;
  path_.clear();
}

Status AcquireCacheDir(const std::string& dir, CacheDirLock* lock) {
  if (dir.empty()) return Status::InvalidArgument("cache dir: empty path");
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Unavailable("cache dir: cannot create " + dir + ": " +
                               ec.message());
  }
#ifdef __unix__
  const long pid = static_cast<long>(::getpid());
  // Writability probe: the failure mode we want to report at startup, not
  // at the first background flush.
  const std::string probe = dir + "/.probe." + std::to_string(pid);
  {
    std::ofstream os(probe, std::ios::binary | std::ios::trunc);
    os << 'w';
    os.flush();
    if (!os) {
      fs::remove(probe, ec);
      return Status::Unavailable("cache dir: not writable: " + dir);
    }
  }
  fs::remove(probe, ec);

  const std::string lock_path = dir + "/LOCK";
  const int fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::Unavailable("cache dir: cannot open " + lock_path + ": " +
                               std::strerror(errno));
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    char buf[32] = {0};
    const ssize_t n = ::pread(fd, buf, sizeof(buf) - 1, 0);
    ::close(fd);
    std::string holder = n > 0 ? std::string(buf) : "unknown";
    while (!holder.empty() && (holder.back() == '\n' || holder.back() == ' ')) {
      holder.pop_back();
    }
    return Status::Unavailable("cache dir: " + dir + " locked by pid " + holder +
                               " (refusing to share a cache dir between daemons)");
  }
  const std::string stamp = std::to_string(pid) + "\n";
  if (::ftruncate(fd, 0) != 0 ||
      ::pwrite(fd, stamp.data(), stamp.size(), 0) < 0) {
    // Lock is held regardless; the stamp is diagnostics only.
  }
  lock->Release();
  lock->fd_ = fd;
  lock->path_ = lock_path;
#else
  (void)lock;
#endif
  return Status::Ok();
}

CachePersister::CachePersister(PersistOptions opts) : opts_(std::move(opts)) {}

CachePersister::~CachePersister() { Stop(); }

Status CachePersister::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (running_) return Status::Ok();
    // Continue the segment sequence past anything already on disk so a
    // restart never overwrites segments it is about to recover from.
    std::error_code ec;
    std::uint64_t max_seq = 0;
    bool any = false;
    for (const auto& entry : fs::directory_iterator(opts_.dir, ec)) {
      std::uint64_t seq = 0;
      if (ParseSegmentName(entry.path().filename().string(), &seq)) {
        max_seq = std::max(max_seq, seq);
        any = true;
      }
    }
    if (ec) {
      return Status::Unavailable("persist: cannot scan " + opts_.dir + ": " +
                                 ec.message());
    }
    next_seq_ = any ? max_seq + 1 : 0;
    running_ = true;
    stop_ = false;
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
  return Status::Ok();
}

void CachePersister::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  // Final drain so a clean shutdown persists everything it computed.
  FlushNow();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void CachePersister::Enqueue(CacheKind kind, const Hash128& digest,
                             const Hash128& key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!running_) return;
  pending_.push_back(Pending{kind, digest, key, std::move(value)});
  // Bounded backlog: these are cache entries, so dropping the oldest
  // un-flushed one loses warmth, never correctness.
  while (pending_.size() > opts_.max_pending) pending_.pop_front();
}

Status CachePersister::FlushNow() {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  return FlushLocked();
}

Status CachePersister::FlushLocked() {
  std::deque<Pending> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty()) return Status::Ok();
    batch.swap(pending_);
  }
  try {
    M3_FAULT_POINT(kPersistFlushFaultSite);
  } catch (const FaultInjected&) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.flush_failures;
    // Retain the batch (newest-first insert keeps original order).
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
      pending_.push_front(std::move(*it));
    }
    while (pending_.size() > opts_.max_pending) pending_.pop_front();
    return Status::Unavailable("persist: flush fault injected");
  }

  // Serialize the batch into one or more segment bodies, splitting at
  // max_segment_bytes so no single write grows unbounded.
  Status result = Status::Ok();
  std::size_t done = 0;  // records durably written so far
  std::string body;
  std::size_t body_records = 0;
  auto write_body = [&]() -> bool {
    std::uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seq = next_seq_++;
    }
    Status st = WriteSegment(body, seq);
    std::lock_guard<std::mutex> lock(mu_);
    if (!st.ok()) {
      ++stats_.flush_failures;
      result = st;
      return false;
    }
    stats_.entries_flushed += body_records;
    ++stats_.flush_rounds;
    done += body_records;
    body.clear();
    body_records = 0;
    return true;
  };

  for (const Pending& p : batch) {
    std::string payload;
    payload.reserve(kPayloadPrefixSize + p.value.size());
    Put<std::uint8_t>(payload, static_cast<std::uint8_t>(p.kind));
    Put<std::uint64_t>(payload, p.digest.hi);
    Put<std::uint64_t>(payload, p.digest.lo);
    Put<std::uint64_t>(payload, p.key.hi);
    Put<std::uint64_t>(payload, p.key.lo);
    const Hash128 vhash = HashBytes(p.value.data(), p.value.size());
    Put<std::uint64_t>(payload, vhash.hi);
    Put<std::uint64_t>(payload, vhash.lo);
    payload.append(p.value);
    if (payload.size() > kMaxPayloadBytes) continue;  // oversized: never framed
    Put<std::uint32_t>(body, kRecordMagic);
    Put<std::uint32_t>(body, static_cast<std::uint32_t>(payload.size()));
    Put<std::uint32_t>(body, ml::Crc32(payload.data(), payload.size()));
    body.append(payload);
    ++body_records;
    if (body.size() >= opts_.max_segment_bytes && !write_body()) break;
  }
  if (result.ok() && body_records > 0) write_body();

  if (!result.ok()) {
    // Re-queue the records that never reached disk, ahead of anything
    // enqueued meanwhile, preserving order.
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = batch.size(); i > done;) {
      --i;
      pending_.push_front(std::move(batch[i]));
    }
    while (pending_.size() > opts_.max_pending) pending_.pop_front();
    return result;
  }
  EnforceRetention();
  return Status::Ok();
}

Status CachePersister::WriteSegment(const std::string& body, std::uint64_t seq) {
  try {
    M3_FAULT_POINT(kPersistWriteFaultSite);
  } catch (const FaultInjected&) {
    return Status::Unavailable("persist: segment_write fault injected");
  }
  const std::string path = opts_.dir + "/" + SegmentName(seq);
#ifdef __unix__
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
  const std::string tmp = path + ".tmp";
#endif
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return Status::Unavailable("persist: cannot open " + tmp);
    std::string header;
    Put<std::uint32_t>(header, kSegmentMagic);
    Put<std::uint32_t>(header, kFormatVersion);
    os.write(header.data(), static_cast<std::streamsize>(header.size()));
    os.write(body.data(), static_cast<std::streamsize>(body.size()));
    os.flush();
    if (!os) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return Status::Unavailable("persist: write failed for " + tmp);
    }
  }
#ifdef __unix__
  FsyncPath(tmp, /*directory=*/false);
#endif
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::Unavailable("persist: cannot rename " + tmp + " to " + path);
  }
#ifdef __unix__
  FsyncPath(opts_.dir, /*directory=*/true);
#endif
  return Status::Ok();
}

void CachePersister::EnforceRetention() {
  std::error_code ec;
  std::vector<std::uint64_t> seqs;
  for (const auto& entry : fs::directory_iterator(opts_.dir, ec)) {
    std::uint64_t seq = 0;
    if (ParseSegmentName(entry.path().filename().string(), &seq)) {
      seqs.push_back(seq);
    }
  }
  if (ec || seqs.size() <= opts_.max_segments) return;
  std::sort(seqs.begin(), seqs.end());
  const std::size_t excess = seqs.size() - opts_.max_segments;
  for (std::size_t i = 0; i < excess; ++i) {
    fs::remove(opts_.dir + "/" + SegmentName(seqs[i]), ec);
  }
}

void CachePersister::FlusherLoop() {
  const auto interval = std::chrono::duration<double>(
      opts_.flush_interval_seconds > 0 ? opts_.flush_interval_seconds : 2.0);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock, interval, [this] { return stop_; });
      if (stop_) return;
      if (pending_.empty()) continue;
    }
    std::lock_guard<std::mutex> flush_lock(flush_mu_);
    FlushLocked();  // failures counted in stats; retried next round
  }
}

void CachePersister::Recover(const RecoverFn& fn) {
  // Snapshot the segment list up front: anything the concurrent flusher
  // writes afterwards was enqueued by this process and is already warm.
  std::vector<std::uint64_t> seqs;
  {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(opts_.dir, ec)) {
      std::uint64_t seq = 0;
      if (ParseSegmentName(entry.path().filename().string(), &seq)) {
        seqs.push_back(seq);
      }
    }
  }
  std::sort(seqs.begin(), seqs.end());

  const char magic_bytes[4] = {
      static_cast<char>(kRecordMagic & 0xFF),
      static_cast<char>((kRecordMagic >> 8) & 0xFF),
      static_cast<char>((kRecordMagic >> 16) & 0xFF),
      static_cast<char>((kRecordMagic >> 24) & 0xFF)};
  const std::string magic_str(magic_bytes, 4);

  for (std::uint64_t seq : seqs) {
    const std::string path = opts_.dir + "/" + SegmentName(seq);
    std::string file;
    try {
      M3_FAULT_POINT(kPersistReadFaultSite);
      std::ifstream is(path, std::ios::binary | std::ios::ate);
      if (!is) throw std::runtime_error("open failed");
      const std::streamoff size = is.tellg();
      if (size < 0) throw std::runtime_error("stat failed");
      file.resize(static_cast<std::size_t>(size));
      is.seekg(0);
      is.read(file.data(), size);
      if (!is) throw std::runtime_error("short read");
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.records_corrupt;
      continue;
    }

    // Recovery ladder, per record:
    //   bad segment header            -> count, skip segment
    //   bad record magic / wild len   -> count, resync-scan for next magic
    //   len past end of file          -> count, stop (truncated tail)
    //   CRC / value-hash / kind fail  -> count, skip to claimed boundary
    if (file.size() < kSegmentHeaderSize ||
        Get<std::uint32_t>(file.data()) != kSegmentMagic ||
        Get<std::uint32_t>(file.data() + 4) != kFormatVersion) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.records_corrupt;
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.segments_loaded;
    }

    std::size_t pos = kSegmentHeaderSize;
    while (pos < file.size()) {
      if (file.size() - pos < kRecordHeaderSize) {  // truncated frame header
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.records_corrupt;
        break;
      }
      const std::uint32_t magic = Get<std::uint32_t>(file.data() + pos);
      const std::uint32_t len = Get<std::uint32_t>(file.data() + pos + 4);
      const std::uint32_t crc = Get<std::uint32_t>(file.data() + pos + 8);
      if (magic != kRecordMagic || len < kPayloadPrefixSize ||
          len > kMaxPayloadBytes) {
        // Hostile or damaged framing: resync by scanning for the next
        // record magic so one bad header costs one record, not the tail.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.records_corrupt;
        }
        const std::size_t next = file.find(magic_str, pos + 1);
        if (next == std::string::npos) break;
        pos = next;
        continue;
      }
      if (len > file.size() - pos - kRecordHeaderSize) {  // truncated tail
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.records_corrupt;
        break;
      }
      const char* payload = file.data() + pos + kRecordHeaderSize;
      const std::size_t next_pos = pos + kRecordHeaderSize + len;
      if (ml::Crc32(payload, len) != crc) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.records_corrupt;
        pos = next_pos;
        continue;
      }
      const auto kind_raw = static_cast<std::uint8_t>(payload[0]);
      Hash128 digest{Get<std::uint64_t>(payload + 1), Get<std::uint64_t>(payload + 9)};
      Hash128 key{Get<std::uint64_t>(payload + 17), Get<std::uint64_t>(payload + 25)};
      Hash128 vhash{Get<std::uint64_t>(payload + 33), Get<std::uint64_t>(payload + 41)};
      const std::string value(payload + kPayloadPrefixSize,
                              len - kPayloadPrefixSize);
      // Second integrity gate past CRC32: the value's own 128-bit content
      // hash, recomputed here. A record passes both or serves nothing.
      const Hash128 vcheck = HashBytes(value.data(), value.size());
      if (kind_raw < 1 || kind_raw > 3 || vcheck.hi != vhash.hi ||
          vcheck.lo != vhash.lo) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.records_corrupt;
        pos = next_pos;
        continue;
      }
      Recovered outcome = Recovered::kCorrupt;
      try {
        outcome = fn(static_cast<CacheKind>(kind_raw), digest, key, value);
      } catch (...) {
        outcome = Recovered::kCorrupt;  // recovery must never throw upward
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        switch (outcome) {
          case Recovered::kLoaded: ++stats_.entries_loaded; break;
          case Recovered::kDigestMismatch: ++stats_.digest_dropped; break;
          case Recovered::kCorrupt: ++stats_.records_corrupt; break;
        }
      }
      pos = next_pos;
    }
  }
}

PersistStats CachePersister::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PersistStats s = stats_;
  s.flush_backlog = pending_.size();
  return s;
}

}  // namespace m3::serve
