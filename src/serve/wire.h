// m3d wire protocol: message payloads + the cache-key definitions.
//
// Transport framing (magic/type/length) lives in util/socket.h; this layer
// defines what goes inside a frame. Everything is little-endian; integers
// are fixed-width; doubles travel by bit pattern; strings and vectors are
// u64-length-prefixed. Payloads start with a u32 wire version so an old
// client talking to a new daemon gets a clean INVALID_ARGUMENT instead of a
// garbage parse. Decoding is fully bounds-checked: a truncated or hostile
// payload yields kDataLoss / kInvalidArgument, never an overread.
//
// Cache keys (the "content address" of a result) are also defined here so
// the definition lives next to the serialized fields it must cover:
//
//   query key = H(schema tag, model digest, use_context, oversub,
//                 topology shape, NetConfig (every field), num_paths,
//                 sampling seed,
//                 flows (id, src, dst, size, arrival, priority))
//   path key  = H(schema tag, model digest, use_context,
//                 NetConfig (every field), path scenario content: chain
//                 length, every lot link (src, dst, rate, delay), every
//                 flow (endpoints, route, size, arrival, priority, fg/bg,
//                 entry/exit hop))
//
// Deliberately *excluded* from both keys: strict, deadline_seconds,
// max_attempts (they shape fault handling, not the fault-free answer — and
// only full-quality kOk answers are ever cached), the no_cache flag, and
// the v4 overload fields (priority, brownout): they are serving policy, and
// a browned-out answer is never kOk, so it can never poison the cache.
// The model digest term means a hot-reload implicitly invalidates every
// cached result; stale entries age out via LRU.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "pktsim/config.h"
#include "util/hash.h"
#include "util/status.h"

namespace m3::serve {

/// v4: overload control — priority class + brownout level in QueryRequest,
/// shed_reason in QueryResponse, brownout attribution in DegradationReport,
/// shed/brownout/cost counters in ServerStatsWire. Back-compatible: every
/// decoder also accepts v3 payloads (new fields take their defaults), and
/// encoders can emit v3 so a response echoes the version the request spoke
/// — an un-upgraded m3_client keeps working against a v4 daemon.
/// (v3 added the sharded-fleet messages; v2 the Ping pair + worker fields.)
constexpr std::uint32_t kWireVersion = 4;
/// Oldest version this build still decodes and can echo back.
constexpr std::uint32_t kMinWireVersion = 3;

/// Frame types (util/socket.h `type` field).
enum class MsgType : std::uint32_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kReloadRequest = 5,
  kReloadResponse = 6,
  kPingRequest = 7,
  kPingResponse = 8,
  // Fleet-internal scatter-gather (m3d-router <-> shard m3d).
  kShardQueryRequest = 9,
  kShardQueryResponse = 10,
};

/// One flow as it travels on the wire: fat-tree host indices, route
/// re-derived daemon-side by ECMP on the flow id (the trace_io convention).
struct WireFlow {
  std::int32_t id = 0;
  std::int32_t src_host = 0;
  std::int32_t dst_host = 0;
  std::int64_t size = 0;
  std::int64_t arrival = 0;
  std::uint8_t priority = 0;
};

/// Explicit fat-tree shape (v3). All-zero — the default — means "the
/// paper's small testbed at the request's oversub", i.e.
/// FatTreeConfig::Small(oversub), which is what every pre-v3 client meant.
/// Non-zero pins the full shape (the large `M3_SCALE` topologies travel
/// this way); `oversub` is then implied by racks_per_pod/spines_per_plane
/// and the standalone field is ignored for topology construction.
struct WireTopo {
  std::int32_t pods = 0;
  std::int32_t racks_per_pod = 0;
  std::int32_t hosts_per_rack = 0;
  std::int32_t fabric_per_pod = 0;
  std::int32_t spines_per_plane = 0;

  bool IsDefault() const {
    return pods == 0 && racks_per_pod == 0 && hosts_per_rack == 0 && fabric_per_pod == 0 &&
           spines_per_plane == 0;
  }
  bool operator==(const WireTopo& o) const {
    return pods == o.pods && racks_per_pod == o.racks_per_pod &&
           hosts_per_rack == o.hosts_per_rack && fabric_per_pod == o.fabric_per_pod &&
           spines_per_plane == o.spines_per_plane;
  }
};

/// Request priority classes (v4). Under overload the service sheds lower
/// classes first; kCritical is never displaced and never browned out.
enum class Priority : std::uint8_t {
  kBackground = 0,
  kNormal = 1,      // the default (and what every v3 client means)
  kInteractive = 2,
  kCritical = 3,
};
constexpr std::uint8_t kNumPriorityClasses = 4;

/// Why a query was shed instead of computed (v4, QueryResponse). kNone on
/// every computed answer. Shed answers always carry a non-OK status too
/// (kResourceExhausted or kDeadlineExceeded); the reason says which rung of
/// the overload ladder fired, so load generators and dashboards can tell a
/// full queue from a priority eviction from an expired wait.
enum class ShedReason : std::uint8_t {
  kNone = 0,
  kQueueFull = 1,     // admission: queue full, no lower-class victim
  kPriority = 2,      // admitted, then displaced by a higher class
  kExpired = 3,       // deadline expired while queued; reaped unexecuted
  kSojourn = 4,       // CoDel-style: queue sojourn over threshold at admit
  kCostBudget = 5,    // admission: in-flight cost budget exhausted
  kRouterBudget = 6,  // router: deadline budget spent before dispatch
};
constexpr std::uint8_t kNumShedReasons = 7;

struct QueryRequest {
  double oversub = 2.0;  // daemon builds FatTreeConfig::Small(oversub)
  WireTopo topo;         // explicit shape override (v3); default = Small
  std::vector<WireFlow> flows;
  NetConfig cfg;
  // M3Options subset (num_threads stays a server-side policy knob).
  std::int32_t num_paths = 100;
  std::uint64_t seed = 1;
  bool use_context = true;
  bool strict = false;
  double deadline_seconds = 0.0;
  std::int32_t max_attempts = 2;
  // Bypass both result caches for this query (still computes + reports).
  bool no_cache = false;
  // Priority class (v4); see Priority. v3 payloads decode as kNormal.
  std::uint8_t priority = static_cast<std::uint8_t>(Priority::kNormal);
  // Brownout level this query executes at (v4): 0 full quality, 1 reduced
  // path sample, 2 flowSim substitute. Stamped by the *service* under
  // sustained pressure — clients send 0; a non-zero value in a client
  // request is honored (useful for tests) but never required.
  std::uint8_t brownout = 0;
  // Not on the wire: the version the decoded payload spoke, so responses
  // can echo it (kWireVersion when built in-process).
  std::uint32_t wire_version = kWireVersion;
};

/// Cumulative per-shard counters in router stats (ServerStatsWire::shards).
struct ShardHealthWire {
  std::string address;             // endpoint string, e.g. "tcp:10.0.0.2:9000"
  bool healthy = false;            // last health probe succeeded
  bool breaker_open = false;
  std::uint64_t model_version = 0; // from the last successful probe
  std::uint64_t dispatches = 0;    // sub-requests sent (incl. retries/hedges)
  std::uint64_t failures = 0;      // sub-requests that did not answer
  std::uint64_t retries = 0;       // re-dispatches after a failure
  std::uint64_t hedges = 0;        // duplicate dispatches for stragglers
  std::uint64_t slots_fallback = 0;  // this shard's slots served by flowSim
  std::uint64_t slots_dropped = 0;   // this shard's slots reweighted away
};

/// Serving-side counters returned with every response and by kStatsRequest.
struct ServerStatsWire {
  std::uint64_t queries_received = 0;
  std::uint64_t queries_ok = 0;        // includes degraded/deadline answers
  std::uint64_t queries_rejected = 0;  // admission control (queue full)
  std::uint64_t queries_failed = 0;    // validation / no-model / internal
  // cache counters: {hits, misses, inserts, evictions, entries}
  std::uint64_t query_cache[5] = {0, 0, 0, 0, 0};
  std::uint64_t path_cache[5] = {0, 0, 0, 0, 0};
  std::uint32_t queue_depth = 0;
  std::uint32_t queue_capacity = 0;
  std::uint32_t workers = 0;
  std::uint64_t model_version = 0;
  std::uint32_t model_crc = 0;
  std::uint64_t reloads_ok = 0;
  std::uint64_t reloads_failed = 0;
  std::string model_path;
  // Worker-pool health (all zero when queries execute in-process).
  bool worker_mode = false;
  std::uint32_t workers_configured = 0;
  std::uint32_t workers_alive = 0;
  std::uint64_t worker_spawns = 0;        // forks, incl. the initial pool
  std::uint64_t worker_restarts = 0;      // respawns after an unexpected death
  std::uint64_t worker_crashes = 0;       // died mid-query
  std::uint64_t watchdog_kills = 0;       // SIGKILLed past deadline + grace
  std::uint64_t garbage_replies = 0;      // undecodable reply -> worker replaced
  std::uint64_t crash_retried_queries = 0;  // re-run on a fresh worker
  std::uint64_t breaker_trips = 0;
  bool breaker_open = false;              // current model version quarantined
  std::uint32_t quarantined_digests = 0;
  // Router fleet health (router_mode daemons only; empty otherwise).
  bool router_mode = false;
  std::vector<ShardHealthWire> shards;
  // Overload control (v4; zero when decoded from a v3 peer).
  std::uint64_t queries_shed = 0;     // admitted, then shed (priority/expiry)
  // Sheds by ShedReason (gate rejections and evictions both attributed).
  std::uint64_t shed_by_reason[kNumShedReasons] = {0};
  std::uint64_t brownout_queries = 0;  // executed at brownout level >= 1
  std::uint32_t brownout_level = 0;    // current gauge (0 = full quality)
  double in_flight_cost = 0.0;         // admitted-but-unanswered cost units
  double cost_budget = 0.0;            // admission budget (0 = derived)
  // Durable-cache persistence (v4 additive tail; zero when the peer
  // predates it or runs without --cache-dir). See serve/persist.h.
  bool persist_enabled = false;
  std::uint64_t persist_segments_loaded = 0;
  std::uint64_t persist_entries_loaded = 0;
  std::uint64_t persist_entries_flushed = 0;
  std::uint64_t persist_records_corrupt = 0;
  std::uint64_t persist_digest_dropped = 0;
  std::uint64_t persist_flush_backlog = 0;
};

/// Per-shard attribution for one answer assembled by m3d-router (empty when
/// a single daemon answered). Sums over `slots_*` equal the query's
/// num_paths; fallback/dropped slots also appear in the merged
/// DegradationReport as degraded/dropped paths.
struct ShardReportWire {
  std::string shard;                // endpoint string
  std::uint32_t slots_assigned = 0; // sample slots hashed to this shard
  std::uint32_t slots_ok = 0;       // estimated by the shard (any replica)
  std::uint32_t slots_fallback = 0; // router-side flowSim fallback
  std::uint32_t slots_dropped = 0;  // reweighted drop
  std::uint32_t retries = 0;        // re-dispatches for this query
  std::uint32_t hedges = 0;         // hedged duplicates for this query
  bool breaker_open = false;        // breaker state seen at dispatch
};

struct QueryResponse {
  Status status;  // estimator status, or the service's rejection status
  // NetworkEstimate payload (per-path estimates are not shipped; the
  // aggregate is the product).
  std::array<std::vector<double>, kNumOutputBuckets> bucket_pct;
  std::array<double, kNumOutputBuckets> total_counts{};
  std::vector<double> combined_pct;
  double wall_seconds = 0.0;  // compute time (original compute on a hit)
  DegradationReport degradation;
  // Serving metadata.
  std::uint64_t model_version = 0;
  std::uint32_t model_crc = 0;
  bool query_cache_hit = false;
  // Why this query was shed (v4); kNone on computed answers. See ShedReason.
  std::uint8_t shed_reason = static_cast<std::uint8_t>(ShedReason::kNone);
  // Per-shard attribution (v3); populated only by m3d-router.
  std::vector<ShardReportWire> shards;
  ServerStatsWire stats;
};

/// Scatter unit (v3): the full client query plus the sample slots this
/// shard owns. The shard re-derives the deterministic path sample from
/// (topology, flows, seed, num_paths) — identical to what a single host
/// would compute — and estimates only `slots`
/// (M3Options::sample_slots), so disjoint slot sets from different shards
/// merge positionally into one bitwise-reproducible answer.
struct ShardQueryRequest {
  QueryRequest query;
  std::vector<std::uint32_t> slots;
};

/// One per-slot estimate: the 4x100 percentile grid plus per-bucket
/// foreground counts (core/aggregate.h PathEstimate).
struct SlotEstimateWire {
  std::uint32_t slot = 0;
  PathEstimate estimate{};
};

struct ShardQueryResponse {
  Status status;                  // estimator status for this shard's slots
  DegradationReport degradation;  // covers only this shard's slots
  std::uint64_t model_version = 0;
  std::uint32_t model_crc = 0;
  double wall_seconds = 0.0;
  std::vector<SlotEstimateWire> estimates;
};

struct ReloadRequest {
  std::string checkpoint_path;
  // Not on the wire: the version the decoded payload spoke (echoed back).
  std::uint32_t wire_version = kWireVersion;
};

/// Liveness/readiness probe (`m3_client --ping`). The request has no body
/// beyond the wire version.
struct PingResponse {
  bool ready = false;  // model loaded and (in worker mode) >=1 worker alive
  bool worker_mode = false;
  std::uint64_t model_version = 0;
  std::uint32_t workers_alive = 0;
  // Router fleet readiness (v3; zero on plain daemons). A router is
  // `ready` when at least one shard is healthy — it can always answer,
  // via flowSim fallback at worst.
  bool router_mode = false;
  std::uint32_t shards_healthy = 0;
  std::uint32_t shards_total = 0;
  // Content CRC of the served model parameters (v4 additive tail; zero
  // from older peers). Unlike model_version — a per-process load counter —
  // this survives restarts, so the router uses it to validate persisted
  // per-path cache entries against the live fleet.
  std::uint32_t model_crc = 0;
};

struct ReloadResponse {
  Status status;
  std::uint64_t model_version = 0;  // serving version after the attempt
  std::uint32_t model_crc = 0;
};

// ----- serialization (payload <-> struct) -----
//
// Every encoder takes the wire version to emit (default: this build's
// kWireVersion); versions below kMinWireVersion are clamped up. Decoders
// accept [kMinWireVersion, kWireVersion] — v4-only fields keep their
// defaults when the payload spoke v3. A server answers in the version the
// request spoke (QueryRequest::wire_version / PeekWireVersion), so old
// clients never see fields they cannot parse.

/// Best-effort version sniff for request bodies a handler does not decode
/// (ping, stats): the leading u32 when it is a known version, else
/// kMinWireVersion (covers the empty legacy stats-request body).
std::uint32_t PeekWireVersion(const std::string& payload);

std::string EncodeQueryRequest(const QueryRequest& req,
                               std::uint32_t version = kWireVersion);
StatusOr<QueryRequest> DecodeQueryRequest(const std::string& payload);

std::string EncodeQueryResponse(const QueryResponse& resp,
                                std::uint32_t version = kWireVersion);
StatusOr<QueryResponse> DecodeQueryResponse(const std::string& payload);

/// The stats *request* body (v4 clients; previously an empty payload).
/// Servers ignore unknown bytes here, so this is safe to send to old
/// daemons; it exists so a v4 server knows which version to answer in.
std::string EncodeStatsRequest(std::uint32_t version = kWireVersion);

std::string EncodeStats(const ServerStatsWire& stats,
                        std::uint32_t version = kWireVersion);
StatusOr<ServerStatsWire> DecodeStats(const std::string& payload);

std::string EncodeReloadRequest(const ReloadRequest& req,
                                std::uint32_t version = kWireVersion);
StatusOr<ReloadRequest> DecodeReloadRequest(const std::string& payload);

std::string EncodeReloadResponse(const ReloadResponse& resp,
                                 std::uint32_t version = kWireVersion);
StatusOr<ReloadResponse> DecodeReloadResponse(const std::string& payload);

std::string EncodePingRequest(std::uint32_t version = kWireVersion);
Status DecodePingRequest(const std::string& payload);

std::string EncodePingResponse(const PingResponse& resp,
                               std::uint32_t version = kWireVersion);
StatusOr<PingResponse> DecodePingResponse(const std::string& payload);

std::string EncodeShardQueryRequest(const ShardQueryRequest& req,
                                    std::uint32_t version = kWireVersion);
StatusOr<ShardQueryRequest> DecodeShardQueryRequest(const std::string& payload);

std::string EncodeShardQueryResponse(const ShardQueryResponse& resp,
                                     std::uint32_t version = kWireVersion);
StatusOr<ShardQueryResponse> DecodeShardQueryResponse(const std::string& payload);

// ----- persisted cache values (serve/persist.h segment payloads) -----

/// Standalone PathEstimate codec for the durable per-path cache. Same
/// field order as the in-response encoding; versioned like every payload.
std::string EncodePathEstimateValue(const PathEstimate& pe,
                                    std::uint32_t version = kWireVersion);
StatusOr<PathEstimate> DecodePathEstimateValue(const std::string& payload);

/// A router-side persisted per-path result: the estimate plus the model
/// identity it was computed under. `model_crc` (content-derived) is the
/// cross-restart validity guard; `model_version` is advisory diagnostics.
struct RouterPathValue {
  std::uint64_t model_version = 0;
  std::uint32_t model_crc = 0;
  PathEstimate estimate{};
};

std::string EncodeRouterPathValue(const RouterPathValue& v,
                                  std::uint32_t version = kWireVersion);
StatusOr<RouterPathValue> DecodeRouterPathValue(const std::string& payload);

// ----- cache keys -----

/// Whole-query content address (definition at the top of this header).
Hash128 QueryCacheKey(const QueryRequest& req, const Hash128& model_digest);

/// Per-path content address over the materialized scenario. Shared across
/// queries that sample the same path with the same flows — e.g. the same
/// workload queried with a different `num_paths` or sampling seed still
/// reuses every overlapping path.
Hash128 PathCacheKey(const PathScenario& scenario, const NetConfig& cfg,
                     bool use_context, const Hash128& model_digest);

}  // namespace m3::serve
