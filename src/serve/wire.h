// m3d wire protocol: message payloads + the cache-key definitions.
//
// Transport framing (magic/type/length) lives in util/socket.h; this layer
// defines what goes inside a frame. Everything is little-endian; integers
// are fixed-width; doubles travel by bit pattern; strings and vectors are
// u64-length-prefixed. Payloads start with a u32 wire version so an old
// client talking to a new daemon gets a clean INVALID_ARGUMENT instead of a
// garbage parse. Decoding is fully bounds-checked: a truncated or hostile
// payload yields kDataLoss / kInvalidArgument, never an overread.
//
// Cache keys (the "content address" of a result) are also defined here so
// the definition lives next to the serialized fields it must cover:
//
//   query key = H(schema tag, model digest, use_context, oversub,
//                 NetConfig (every field), num_paths, sampling seed,
//                 flows (id, src, dst, size, arrival, priority))
//   path key  = H(schema tag, model digest, use_context,
//                 NetConfig (every field), path scenario content: chain
//                 length, every lot link (src, dst, rate, delay), every
//                 flow (endpoints, route, size, arrival, priority, fg/bg,
//                 entry/exit hop))
//
// Deliberately *excluded* from both keys: strict, deadline_seconds,
// max_attempts (they shape fault handling, not the fault-free answer — and
// only full-quality kOk answers are ever cached), and the no_cache flag.
// The model digest term means a hot-reload implicitly invalidates every
// cached result; stale entries age out via LRU.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "pktsim/config.h"
#include "util/hash.h"
#include "util/status.h"

namespace m3::serve {

/// v2: Ping message pair + worker-pool fields in ServerStatsWire.
constexpr std::uint32_t kWireVersion = 2;

/// Frame types (util/socket.h `type` field).
enum class MsgType : std::uint32_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kReloadRequest = 5,
  kReloadResponse = 6,
  kPingRequest = 7,
  kPingResponse = 8,
};

/// One flow as it travels on the wire: fat-tree host indices, route
/// re-derived daemon-side by ECMP on the flow id (the trace_io convention).
struct WireFlow {
  std::int32_t id = 0;
  std::int32_t src_host = 0;
  std::int32_t dst_host = 0;
  std::int64_t size = 0;
  std::int64_t arrival = 0;
  std::uint8_t priority = 0;
};

struct QueryRequest {
  double oversub = 2.0;  // daemon builds FatTreeConfig::Small(oversub)
  std::vector<WireFlow> flows;
  NetConfig cfg;
  // M3Options subset (num_threads stays a server-side policy knob).
  std::int32_t num_paths = 100;
  std::uint64_t seed = 1;
  bool use_context = true;
  bool strict = false;
  double deadline_seconds = 0.0;
  std::int32_t max_attempts = 2;
  // Bypass both result caches for this query (still computes + reports).
  bool no_cache = false;
};

/// Serving-side counters returned with every response and by kStatsRequest.
struct ServerStatsWire {
  std::uint64_t queries_received = 0;
  std::uint64_t queries_ok = 0;        // includes degraded/deadline answers
  std::uint64_t queries_rejected = 0;  // admission control (queue full)
  std::uint64_t queries_failed = 0;    // validation / no-model / internal
  // cache counters: {hits, misses, inserts, evictions, entries}
  std::uint64_t query_cache[5] = {0, 0, 0, 0, 0};
  std::uint64_t path_cache[5] = {0, 0, 0, 0, 0};
  std::uint32_t queue_depth = 0;
  std::uint32_t queue_capacity = 0;
  std::uint32_t workers = 0;
  std::uint64_t model_version = 0;
  std::uint32_t model_crc = 0;
  std::uint64_t reloads_ok = 0;
  std::uint64_t reloads_failed = 0;
  std::string model_path;
  // Worker-pool health (all zero when queries execute in-process).
  bool worker_mode = false;
  std::uint32_t workers_configured = 0;
  std::uint32_t workers_alive = 0;
  std::uint64_t worker_spawns = 0;        // forks, incl. the initial pool
  std::uint64_t worker_restarts = 0;      // respawns after an unexpected death
  std::uint64_t worker_crashes = 0;       // died mid-query
  std::uint64_t watchdog_kills = 0;       // SIGKILLed past deadline + grace
  std::uint64_t garbage_replies = 0;      // undecodable reply -> worker replaced
  std::uint64_t crash_retried_queries = 0;  // re-run on a fresh worker
  std::uint64_t breaker_trips = 0;
  bool breaker_open = false;              // current model version quarantined
  std::uint32_t quarantined_digests = 0;
};

struct QueryResponse {
  Status status;  // estimator status, or the service's rejection status
  // NetworkEstimate payload (per-path estimates are not shipped; the
  // aggregate is the product).
  std::array<std::vector<double>, kNumOutputBuckets> bucket_pct;
  std::array<double, kNumOutputBuckets> total_counts{};
  std::vector<double> combined_pct;
  double wall_seconds = 0.0;  // compute time (original compute on a hit)
  DegradationReport degradation;
  // Serving metadata.
  std::uint64_t model_version = 0;
  std::uint32_t model_crc = 0;
  bool query_cache_hit = false;
  ServerStatsWire stats;
};

struct ReloadRequest {
  std::string checkpoint_path;
};

/// Liveness/readiness probe (`m3_client --ping`). The request has no body
/// beyond the wire version.
struct PingResponse {
  bool ready = false;  // model loaded and (in worker mode) >=1 worker alive
  bool worker_mode = false;
  std::uint64_t model_version = 0;
  std::uint32_t workers_alive = 0;
};

struct ReloadResponse {
  Status status;
  std::uint64_t model_version = 0;  // serving version after the attempt
  std::uint32_t model_crc = 0;
};

// ----- serialization (payload <-> struct) -----

std::string EncodeQueryRequest(const QueryRequest& req);
StatusOr<QueryRequest> DecodeQueryRequest(const std::string& payload);

std::string EncodeQueryResponse(const QueryResponse& resp);
StatusOr<QueryResponse> DecodeQueryResponse(const std::string& payload);

std::string EncodeStats(const ServerStatsWire& stats);
StatusOr<ServerStatsWire> DecodeStats(const std::string& payload);

std::string EncodeReloadRequest(const ReloadRequest& req);
StatusOr<ReloadRequest> DecodeReloadRequest(const std::string& payload);

std::string EncodeReloadResponse(const ReloadResponse& resp);
StatusOr<ReloadResponse> DecodeReloadResponse(const std::string& payload);

std::string EncodePingRequest();
Status DecodePingRequest(const std::string& payload);

std::string EncodePingResponse(const PingResponse& resp);
StatusOr<PingResponse> DecodePingResponse(const std::string& payload);

// ----- cache keys -----

/// Whole-query content address (definition at the top of this header).
Hash128 QueryCacheKey(const QueryRequest& req, const Hash128& model_digest);

/// Per-path content address over the materialized scenario. Shared across
/// queries that sample the same path with the same flows — e.g. the same
/// workload queried with a different `num_paths` or sampling seed still
/// reuses every overlapping path.
Hash128 PathCacheKey(const PathScenario& scenario, const NetConfig& cfg,
                     bool use_context, const Hash128& model_digest);

}  // namespace m3::serve
