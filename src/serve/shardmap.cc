#include "serve/shardmap.h"

#include <algorithm>

namespace m3::serve {
namespace {

// One 64-bit ring point for (shard address, vnode). Uses the same fixed-seed
// Hasher as the cache keys so ring placement is stable across processes.
std::uint64_t RingPoint(const std::string& shard, int vnode) {
  Hasher h;
  h.Str("m3d/ring/v1").Str(shard).U32(static_cast<std::uint32_t>(vnode));
  const Hash128 d = h.Finish();
  return d.hi ^ d.lo;
}

// Where a key lands on the ring. Folding both words keeps the full 128 bits
// in play (cache keys are already uniform, but cheap insurance).
std::uint64_t KeyPoint(const Hash128& key) { return key.hi ^ (key.lo * 0x9e3779b97f4a7c15ull); }

}  // namespace

HashRing::HashRing(const std::vector<std::string>& shards, int vnodes)
    : num_shards_(shards.size()) {
  const int v = std::max(1, vnodes);
  ring_.reserve(shards.size() * static_cast<std::size_t>(v));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (int k = 0; k < v; ++k) {
      ring_.emplace_back(RingPoint(shards[s], k), static_cast<int>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
  // A full-collision tie (two shards hashing one vnode to the same point)
  // resolves by shard index via the pair ordering — deterministic either way.
}

int HashRing::Owner(const Hash128& key) const {
  if (ring_.empty()) return -1;
  const std::uint64_t p = KeyPoint(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), p,
                             [](const auto& e, std::uint64_t v) { return e.first < v; });
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<int> HashRing::Preference(const Hash128& key, std::size_t max_shards) const {
  std::vector<int> pref;
  if (ring_.empty()) return pref;
  const std::size_t want =
      max_shards == 0 ? num_shards_ : std::min(max_shards, num_shards_);
  pref.reserve(want);
  const std::uint64_t p = KeyPoint(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), p,
                             [](const auto& e, std::uint64_t v) { return e.first < v; });
  std::vector<char> seen(num_shards_, 0);
  for (std::size_t walked = 0; walked < ring_.size() && pref.size() < want; ++walked) {
    if (it == ring_.end()) it = ring_.begin();
    const int shard = it->second;
    if (!seen[static_cast<std::size_t>(shard)]) {
      seen[static_cast<std::size_t>(shard)] = 1;
      pref.push_back(shard);
    }
    ++it;
  }
  return pref;
}

ShardBreaker::ShardBreaker(const ShardBreakerOptions& opts) : opts_(opts) {}

bool ShardBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) return true;
  const auto now = Clock::now();
  if (now < probe_at_) return false;
  // Half-open: this caller owns the probe; the next one waits a full
  // cooloff unless a success closes the breaker first.
  probe_at_ = now + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(opts_.cooloff_seconds));
  return true;
}

void ShardBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mu_);
  const auto now = Clock::now();
  const auto horizon = now - std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(opts_.window_seconds));
  failures_.push_back(now);
  while (!failures_.empty() && failures_.front() < horizon) failures_.pop_front();
  const bool over = static_cast<int>(failures_.size()) >= std::max(1, opts_.threshold);
  if (over || open_) {
    if (!open_ && over) ++trips_;  // count closed->open transitions only
    open_ = true;
    probe_at_ = now + std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(opts_.cooloff_seconds));
  }
}

void ShardBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  open_ = false;
  failures_.clear();
}

bool ShardBreaker::open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

std::uint64_t ShardBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

}  // namespace m3::serve
