#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "serve/service.h"

namespace m3::serve {

ServerHooks ServiceHooks(EstimationService& service) {
  ServerHooks h;
  h.query = [&service](const QueryRequest& req) { return service.Query(req); };
  h.stats = [&service] { return service.Stats(); };
  h.ping = [&service] { return service.Ping(); };
  h.reload = [&service](const ReloadRequest& req) {
    ReloadResponse resp;
    resp.status = service.ReloadModel(req.checkpoint_path);
    const ServerStatsWire stats = service.Stats();
    resp.model_version = stats.model_version;
    resp.model_crc = stats.model_crc;
    return resp;
  };
  h.shard_query = [&service](const ShardQueryRequest& req) { return service.ExecuteShard(req); };
  return h;
}

SocketServer::SocketServer(EstimationService& service) : hooks_(ServiceHooks(service)) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start(const std::string& socket_path) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = socket_path;
  return Start(ep);
}

Status SocketServer::Start(const Endpoint& ep) {
  StatusOr<UnixFd> listener = ListenEndpoint(ep);
  if (!listener.ok()) return listener.status();
  Listener* l;
  {
    std::lock_guard<std::mutex> lock(mu_);
    listeners_.emplace_back();
    l = &listeners_.back();
    l->fd = std::move(*listener);
    if (ep.kind == Endpoint::Kind::kUnix) {
      l->unlink_path = ep.path;
      if (path_.empty()) path_ = ep.path;
    }
    started_ = true;
    stopping_ = false;
  }
  l->acceptor = std::thread([this, l] { AcceptLoop(l); });
  return Status::Ok();
}

void SocketServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
    // Unblock every parked read: each acceptor's accept() and each live
    // connection thread's recv(). Exited handlers (done) already closed
    // their fd, which may have been recycled — never shutdown() those.
    for (Listener& l : listeners_) {
      if (l.fd.valid()) ::shutdown(l.fd.get(), SHUT_RDWR);
    }
    for (const Conn& c : conns_) {
      if (!c.done) ::shutdown(c.fd, SHUT_RDWR);
    }
  }
  for (Listener& l : listeners_) {
    if (l.acceptor.joinable()) l.acceptor.join();
  }
  // After the acceptors exit no new connection threads appear; join the
  // existing ones (their recv() has been shut down).
  std::list<Conn> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.splice(conns.end(), conns_);
  }
  for (Conn& c : conns) c.t.join();
  for (Listener& l : listeners_) {
    l.fd.Close();
    if (!l.unlink_path.empty()) ::unlink(l.unlink_path.c_str());
  }
  std::lock_guard<std::mutex> lock(mu_);
  listeners_.clear();
  path_.clear();
  started_ = false;
  stopping_ = false;
}

std::size_t SocketServer::connection_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

void SocketServer::AcceptLoop(Listener* l) {
  for (;;) {
    StatusOr<UnixFd> conn = AcceptUnix(l->fd);
    ReapFinished();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // shutdown() woke us; drop any race-winner conn
    if (!conn.ok()) return;  // listener broken: no way to serve further
    conns_.emplace_back();
    const auto it = std::prev(conns_.end());
    it->fd = conn->get();
    // mu_ is held until the thread handle lands in the Conn, and the
    // handler's first touch of `it` (the done flag) also takes mu_ — so
    // the publication of `it->t` always happens-before its reap.
    it->t = std::thread([this, it, fd = std::move(*conn)]() mutable {
      ServeConnection(std::move(fd), it);
    });
  }
}

void SocketServer::ReapFinished() {
  std::list<Conn> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      const auto next = std::next(it);
      if (it->done) finished.splice(finished.end(), conns_, it);
      it = next;
    }
  }
  for (Conn& c : finished) c.t.join();  // near-instant: done is their last act
}

void SocketServer::ServeConnection(UnixFd fd, std::list<Conn>::iterator self) {
  for (;;) {
    StatusOr<Frame> frame = RecvFrame(fd);
    if (!frame.ok()) break;  // clean close, peer error, or shutdown
    Status send;
    try {
      switch (static_cast<MsgType>(frame->type)) {
        case MsgType::kQueryRequest: {
          StatusOr<QueryRequest> req = DecodeQueryRequest(frame->payload);
          // Responses speak the version the request spoke: a v3 client on a
          // v4 daemon gets byte-identical v3 replies. Decode failures echo
          // the claimed version when recognizable, else the floor.
          const std::uint32_t v =
              req.ok() ? req->wire_version : PeekWireVersion(frame->payload);
          QueryResponse resp;
          if (!req.ok()) {
            resp.status = req.status().Annotate("decoding query request");
            if (hooks_.stats) resp.stats = hooks_.stats();
          } else if (!hooks_.query) {
            resp.status = Status::Unavailable("this daemon does not serve queries");
          } else {
            resp = hooks_.query(*req);
          }
          send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kQueryResponse),
                           EncodeQueryResponse(resp, v));
          break;
        }
        case MsgType::kPingRequest: {
          // Liveness probes must answer even for a malformed body version
          // — the prober wants "is anyone home", not a parse verdict.
          PingResponse resp;
          if (hooks_.ping) resp = hooks_.ping();
          send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kPingResponse),
                           EncodePingResponse(resp, PeekWireVersion(frame->payload)));
          break;
        }
        case MsgType::kStatsRequest: {
          // Pre-v4 clients send an empty stats payload; PeekWireVersion
          // maps that to the floor so they get the v3 body they expect.
          ServerStatsWire stats;
          if (hooks_.stats) stats = hooks_.stats();
          send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kStatsResponse),
                           EncodeStats(stats, PeekWireVersion(frame->payload)));
          break;
        }
        case MsgType::kReloadRequest: {
          StatusOr<ReloadRequest> req = DecodeReloadRequest(frame->payload);
          const std::uint32_t v =
              req.ok() ? req->wire_version : PeekWireVersion(frame->payload);
          ReloadResponse resp;
          if (!req.ok()) {
            resp.status = req.status().Annotate("decoding reload request");
          } else if (!hooks_.reload) {
            resp.status = Status::Unavailable("this daemon does not serve reloads");
          } else {
            resp = hooks_.reload(*req);
          }
          send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kReloadResponse),
                           EncodeReloadResponse(resp, v));
          break;
        }
        case MsgType::kShardQueryRequest: {
          StatusOr<ShardQueryRequest> req = DecodeShardQueryRequest(frame->payload);
          const std::uint32_t v = req.ok() ? req->query.wire_version
                                           : PeekWireVersion(frame->payload);
          ShardQueryResponse resp;
          if (!req.ok()) {
            resp.status = req.status().Annotate("decoding shard query");
          } else if (!hooks_.shard_query) {
            resp.status = Status::Unavailable("this daemon does not serve shard queries");
          } else {
            resp = hooks_.shard_query(*req);
          }
          send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kShardQueryResponse),
                           EncodeShardQueryResponse(resp, v));
          break;
        }
        default:
          // Unknown type: the peer's expected response shape is unknowable,
          // so the only safe protocol action is to hang up.
          send = Status::InvalidArgument("unknown frame type");
          break;
      }
    } catch (...) {
      // Belt-and-braces: decoding is Status-based and should never throw,
      // but an escaped exception here would std::terminate the daemon. One
      // hostile frame may cost its own connection, never the process.
      send = Status::Internal("exception while handling frame");
    }
    if (!send.ok()) break;
  }
  // Publish completion *before* the fd closes (it is destroyed after this
  // scope): once done is visible, Stop() skips the shutdown() and an
  // acceptor may join this thread; the fd number cannot have been recycled
  // while done was still false.
  std::lock_guard<std::mutex> lock(mu_);
  self->done = true;
}

}  // namespace m3::serve
