#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace m3::serve {

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start(const std::string& socket_path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("server already started");
  }
  StatusOr<UnixFd> listener = ListenUnix(socket_path);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  path_ = socket_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
    // Unblock every parked read: the acceptor's accept() and each live
    // connection thread's recv(). Exited handlers (done) already closed
    // their fd, which may have been recycled — never shutdown() those.
    if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
    for (const Conn& c : conns_) {
      if (!c.done) ::shutdown(c.fd, SHUT_RDWR);
    }
  }
  if (acceptor_.joinable()) acceptor_.join();
  // After the acceptor exits no new connection threads appear; join the
  // existing ones (their recv() has been shut down).
  std::list<Conn> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.splice(conns.end(), conns_);
  }
  for (Conn& c : conns) c.t.join();
  listener_.Close();
  if (!path_.empty()) ::unlink(path_.c_str());
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  stopping_ = false;
}

std::size_t SocketServer::connection_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

void SocketServer::AcceptLoop() {
  for (;;) {
    StatusOr<UnixFd> conn = AcceptUnix(listener_);
    ReapFinished();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // shutdown() woke us; drop any race-winner conn
    if (!conn.ok()) return;  // listener broken: no way to serve further
    conns_.emplace_back();
    const auto it = std::prev(conns_.end());
    it->fd = conn->get();
    // mu_ is held until the thread handle lands in the Conn, and the
    // handler's first touch of `it` (the done flag) also takes mu_ — so
    // the publication of `it->t` always happens-before its reap.
    it->t = std::thread([this, it, fd = std::move(*conn)]() mutable {
      ServeConnection(std::move(fd), it);
    });
  }
}

void SocketServer::ReapFinished() {
  std::list<Conn> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      const auto next = std::next(it);
      if (it->done) finished.splice(finished.end(), conns_, it);
      it = next;
    }
  }
  for (Conn& c : finished) c.t.join();  // near-instant: done is their last act
}

void SocketServer::ServeConnection(UnixFd fd, std::list<Conn>::iterator self) {
  for (;;) {
    StatusOr<Frame> frame = RecvFrame(fd);
    if (!frame.ok()) break;  // clean close, peer error, or shutdown
    Status send;
    try {
      switch (static_cast<MsgType>(frame->type)) {
        case MsgType::kQueryRequest: {
          StatusOr<QueryRequest> req = DecodeQueryRequest(frame->payload);
          QueryResponse resp;
          if (!req.ok()) {
            resp.status = req.status().Annotate("decoding query request");
            resp.stats = service_.Stats();
          } else {
            resp = service_.Query(*req);
          }
          send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kQueryResponse),
                           EncodeQueryResponse(resp));
          break;
        }
        case MsgType::kPingRequest: {
          // Liveness probes must answer even for a malformed body version
          // — the prober wants "is anyone home", not a parse verdict.
          send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kPingResponse),
                           EncodePingResponse(service_.Ping()));
          break;
        }
        case MsgType::kStatsRequest: {
          send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kStatsResponse),
                           EncodeStats(service_.Stats()));
          break;
        }
        case MsgType::kReloadRequest: {
          StatusOr<ReloadRequest> req = DecodeReloadRequest(frame->payload);
          ReloadResponse resp;
          if (!req.ok()) {
            resp.status = req.status().Annotate("decoding reload request");
          } else {
            resp.status = service_.ReloadModel(req->checkpoint_path);
          }
          const ServerStatsWire stats = service_.Stats();
          resp.model_version = stats.model_version;
          resp.model_crc = stats.model_crc;
          send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kReloadResponse),
                           EncodeReloadResponse(resp));
          break;
        }
        default:
          // Unknown type: the peer's expected response shape is unknowable,
          // so the only safe protocol action is to hang up.
          send = Status::InvalidArgument("unknown frame type");
          break;
      }
    } catch (...) {
      // Belt-and-braces: decoding is Status-based and should never throw,
      // but an escaped exception here would std::terminate the daemon. One
      // hostile frame may cost its own connection, never the process.
      send = Status::Internal("exception while handling frame");
    }
    if (!send.ok()) break;
  }
  // Publish completion *before* the fd closes (it is destroyed after this
  // scope): once done is visible, Stop() skips the shutdown() and the
  // acceptor may join this thread; the fd number cannot have been recycled
  // while done was still false.
  std::lock_guard<std::mutex> lock(mu_);
  self->done = true;
}

}  // namespace m3::serve
