#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace m3::serve {

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start(const std::string& socket_path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return Status::InvalidArgument("server already started");
  }
  StatusOr<UnixFd> listener = ListenUnix(socket_path);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(*listener);
  path_ = socket_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stopping_ = false;
  }
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
    // Unblock every parked read: the acceptor's accept() and each
    // connection thread's recv().
    if (listener_.valid()) ::shutdown(listener_.get(), SHUT_RDWR);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  // After the acceptor exits no new connection threads appear; join the
  // existing ones (their recv() has been shut down).
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (std::thread& t : conns) t.join();
  listener_.Close();
  if (!path_.empty()) ::unlink(path_.c_str());
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  stopping_ = false;
  conn_fds_.clear();
}

void SocketServer::AcceptLoop() {
  for (;;) {
    StatusOr<UnixFd> conn = AcceptUnix(listener_);
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;  // shutdown() woke us; drop any race-winner conn
    if (!conn.ok()) return;  // listener broken: no way to serve further
    conn_fds_.push_back(conn->get());
    conns_.emplace_back(
        [this, fd = std::move(*conn)]() mutable { ServeConnection(std::move(fd)); });
  }
}

void SocketServer::ServeConnection(UnixFd fd) {
  const int raw_fd = fd.get();
  for (;;) {
    StatusOr<Frame> frame = RecvFrame(fd);
    if (!frame.ok()) break;  // clean close, peer error, or shutdown
    Status send;
    switch (static_cast<MsgType>(frame->type)) {
      case MsgType::kQueryRequest: {
        StatusOr<QueryRequest> req = DecodeQueryRequest(frame->payload);
        QueryResponse resp;
        if (!req.ok()) {
          resp.status = req.status().Annotate("decoding query request");
          resp.stats = service_.Stats();
        } else {
          resp = service_.Query(*req);
        }
        send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kQueryResponse),
                         EncodeQueryResponse(resp));
        break;
      }
      case MsgType::kStatsRequest: {
        send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kStatsResponse),
                         EncodeStats(service_.Stats()));
        break;
      }
      case MsgType::kReloadRequest: {
        StatusOr<ReloadRequest> req = DecodeReloadRequest(frame->payload);
        ReloadResponse resp;
        if (!req.ok()) {
          resp.status = req.status().Annotate("decoding reload request");
        } else {
          resp.status = service_.ReloadModel(req->checkpoint_path);
        }
        const ServerStatsWire stats = service_.Stats();
        resp.model_version = stats.model_version;
        resp.model_crc = stats.model_crc;
        send = SendFrame(fd, static_cast<std::uint32_t>(MsgType::kReloadResponse),
                         EncodeReloadResponse(resp));
        break;
      }
      default:
        // Unknown type: the peer's expected response shape is unknowable,
        // so the only safe protocol action is to hang up.
        send = Status::InvalidArgument("unknown frame type");
        break;
    }
    if (!send.ok()) break;
  }
  // Deregister so Stop() does not shutdown() a recycled fd number.
  std::lock_guard<std::mutex> lock(mu_);
  conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), raw_fd),
                  conn_fds_.end());
}

}  // namespace m3::serve
