#include "serve/cache.h"

namespace m3::serve {

std::string CacheStats::ToString() const {
  return std::to_string(hits) + " hits, " + std::to_string(misses) + " misses, " +
         std::to_string(inserts) + " inserts, " + std::to_string(evictions) +
         " evictions, " + std::to_string(entries) + " entries";
}

}  // namespace m3::serve
