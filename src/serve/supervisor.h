// WorkerSupervisor: a crash-proof pool of forked query workers.
//
// The supervisor owns every worker subprocess the daemon runs queries in:
// it forks them (serve/worker.h), leases them to Execute() calls, detects
// death three ways (EOF mid-query, reaper waitpid while idle, undecodable
// reply), SIGKILLs workers that blow their per-query watchdog, respawns
// with exponential backoff, retries a crashed query once on a fresh
// worker, and trips a per-model-version circuit breaker when one model
// keeps killing workers.
//
// Failure semantics, per query:
//   worker crash   -> retried once on a fresh worker; a second crash
//                     answers kUnavailable (the client's retry loop takes
//                     it from there)
//   worker hang    -> SIGKILL at deadline + grace (or the default
//                     watchdog for deadline-less queries); the query
//                     answers kDeadlineExceeded; other queries on other
//                     workers are never blocked
//   garbage reply  -> the worker is killed and replaced; the query is
//                     retried like a crash (junk is never surfaced)
//
// Circuit breaker: every worker failure is charged to the model digest
// the worker was serving. More than `breaker_threshold` failures within
// `breaker_window_seconds` quarantines that digest for the life of the
// process and fires the trip callback once (the service uses it to roll
// back to the last good snapshot); reloads of a quarantined digest are
// refused at the service layer. A trip with nothing to roll back to is
// advisory — the pool keeps respawning (backoff caps the churn) because a
// crashing model beats no model.
//
// Threading: Execute() may be called from many scheduler threads; each
// call leases one worker (lowest idle index — deterministic for tests)
// and owns that worker's channel until the query resolves. Only the
// reaper thread calls waitpid (per-pid WNOHANG; never -1, so unrelated
// children of the embedding process are left alone).
#pragma once

#include <sys/types.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/registry.h"
#include "serve/wire.h"
#include "util/hash.h"
#include "util/socket.h"
#include "util/status.h"

namespace m3::serve {

struct SupervisorOptions {
  int num_workers = 2;
  unsigned threads_per_query = 1;
  std::size_t path_cache_entries = 4096;  // per worker (worker-local LRU)
  // Respawn backoff: delay after the k-th consecutive failure of one slot
  // is min(backoff_max_ms, backoff_initial_ms * 2^(k-1)), then scaled by a
  // jitter factor in [0.5, 1.5) drawn deterministically from
  // (backoff_jitter_seed, slot index, failure count). Without the jitter a
  // fleet-wide crash puts every slot — and every daemon in a sharded fleet,
  // since the schedule was identical everywhere — on the same respawn tick,
  // thundering-herd style, against the model registry. Seed 0 (the
  // default) derives a per-process seed from the pid so daemons decorrelate
  // on their own; tests pin a nonzero seed for reproducible schedules.
  int backoff_initial_ms = 25;
  int backoff_max_ms = 2000;
  std::uint64_t backoff_jitter_seed = 0;
  // Watchdog: a query with a deadline may run to deadline + grace before
  // its worker is SIGKILLed; a deadline-less query gets the default budget.
  double grace_seconds = 2.0;
  double default_watchdog_seconds = 120.0;
  int crash_retries = 1;  // re-runs of a crashed query on a fresh worker
  // How long Execute() waits for a leasable worker before kUnavailable.
  double lease_timeout_seconds = 10.0;
  // Circuit breaker (see file comment).
  double breaker_window_seconds = 30.0;
  int breaker_threshold = 5;
  // M3_FAULTS-syntax spec armed inside every spawned worker (tests drive
  // the chaos sites with this; production leaves it empty).
  std::string worker_faults;
};

/// A stats() snapshot; field meanings match ServerStatsWire's worker block.
struct WorkerPoolStats {
  std::uint32_t configured = 0;
  std::uint32_t alive = 0;
  std::uint64_t spawns = 0;
  std::uint64_t restarts = 0;
  std::uint64_t crashes = 0;
  std::uint64_t watchdog_kills = 0;
  std::uint64_t garbage_replies = 0;
  std::uint64_t crash_retried_queries = 0;
  std::uint64_t breaker_trips = 0;
  bool breaker_open = false;  // current provider snapshot is quarantined
  std::uint32_t quarantined_digests = 0;
};

class WorkerSupervisor {
 public:
  /// Returns the snapshot new workers should pin (nullptr = no model yet;
  /// spawning is deferred until one exists).
  using SnapshotProvider = std::function<std::shared_ptr<const ModelSnapshot>()>;
  /// Invoked (once per digest, off every supervisor lock) when the breaker
  /// trips on `digest`.
  using TripCallback = std::function<void(const Hash128& digest)>;

  WorkerSupervisor(const SupervisorOptions& opts, SnapshotProvider provider);
  ~WorkerSupervisor();  // Stop()s if running

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  void set_trip_callback(TripCallback cb) { on_trip_ = std::move(cb); }

  /// Forks the initial pool and starts the reaper. kInvalidArgument if
  /// already running.
  Status Start();

  /// Kills and reaps every worker (EOF first, SIGKILL for stragglers),
  /// then joins the reaper. No zombies survive. Idempotent.
  void Stop();

  /// Runs one query on a leased worker, with the crash/hang/garbage
  /// semantics described in the file comment. Thread-safe.
  QueryResponse Execute(const QueryRequest& req);

  /// Rolls the pool onto the provider's current snapshot: idle workers are
  /// replaced immediately, busy ones right after their in-flight query.
  /// Used after a model reload (and by the breaker rollback).
  void RestartWorkers();

  /// True once `digest` has tripped the breaker (permanent per process).
  bool IsQuarantined(const Hash128& digest) const;

  WorkerPoolStats stats() const;

  /// Live worker pids (test/ops hook: chaos harnesses kill these).
  std::vector<pid_t> worker_pids() const;

  /// Exposed for tests: the deterministic backoff schedule.
  static int BackoffDelayMs(int consecutive_failures, int initial_ms, int max_ms);

  /// Exposed for tests: `delay_ms` scaled by the [0.5, 1.5) jitter factor
  /// for (seed, slot, failure). Pure function of its arguments.
  static int JitteredBackoffMs(int delay_ms, std::uint64_t seed, std::uint64_t slot,
                               std::uint64_t failure);

 private:
  // Slot lifecycle: kEmpty -> (spawn) -> kIdle <-> kBusy
  //   kIdle/kBusy -> kReaping (death noticed / intentional kill; pid still
  //   needs waitpid) -> kWaitRespawn -> (backoff elapses, spawn) -> kIdle.
  enum class SlotState { kEmpty, kIdle, kBusy, kReaping, kWaitRespawn };

  struct Slot {
    UnixFd fd;  // parent end of the socketpair
    pid_t pid = -1;
    SlotState state = SlotState::kEmpty;
    std::uint64_t generation = 0;      // pool generation the worker was forked in
    std::uint64_t snap_version = 0;    // snapshot the worker pinned
    Hash128 snap_digest;
    int consecutive_failures = 0;      // drives the backoff schedule
    bool kill_intentional = false;     // restart/stale kill: not a crash
    std::chrono::steady_clock::time_point respawn_at;
  };

  void ReaperLoop();
  /// Forks a worker into `slot` (mu_ held). False if no snapshot yet.
  bool SpawnLocked(Slot& slot);
  /// Marks a busy worker dead after Execute noticed (mu_ held): SIGKILL
  /// (idempotent for already-dead pids), state -> kReaping.
  void FailBusyWorkerLocked(Slot& slot, bool intentional);
  /// Charges one failure to `digest` and trips the breaker at threshold.
  /// Returns the digest to report via the trip callback, if it tripped.
  std::optional<Hash128> RecordFailureLocked(const Hash128& digest);
  /// Leases the lowest idle current-generation worker. -1 on timeout/stop.
  int LeaseWorker();

  const SupervisorOptions opts_;
  const SnapshotProvider provider_;
  TripCallback on_trip_;
  std::uint64_t jitter_seed_ = 0;  // resolved in Start() (0 -> pid-derived)

  mutable std::mutex mu_;
  std::condition_variable lease_cv_;  // signaled when a worker turns idle
  std::vector<Slot> slots_;
  std::uint64_t generation_ = 0;
  bool running_ = false;
  bool stopping_ = false;
  std::thread reaper_;

  // Breaker state (under mu_): recent failures and quarantined digests.
  std::deque<std::pair<std::chrono::steady_clock::time_point, Hash128>> failures_;
  std::set<Hash128> quarantined_;

  // Counters (under mu_).
  std::uint64_t spawns_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t watchdog_kills_ = 0;
  std::uint64_t garbage_replies_ = 0;
  std::uint64_t crash_retried_queries_ = 0;
  std::uint64_t breaker_trips_ = 0;
};

}  // namespace m3::serve
