// Snapshot-level query execution: the part of the serving pipeline that is
// identical whether a query runs inside the daemon process (PR-4 style) or
// inside a supervised worker subprocess (serve/worker.h).
//
// ExecuteQueryOnSnapshot owns validation, topology memoization, flow/route
// building, and RunM3 against one pinned model snapshot. It deliberately
// excludes everything process-topology-specific: the whole-query result
// cache, service counters, and admission control stay with the caller
// (EstimationService in-process; WorkerSupervisor/worker split them across
// the socketpair). Keeping this core shared is what makes the acceptance
// bar "worker-mode answers are bitwise identical to in-process answers"
// checkable instead of aspirational.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/cache.h"
#include "serve/registry.h"
#include "serve/wire.h"
#include "topo/fat_tree.h"

namespace m3::serve {

/// Small LRU of immutable fat trees keyed by the oversubscription double's
/// bit pattern — exactly the value off the wire. Bounded because the ratio
/// is client-supplied (any admissible bit pattern would otherwise grow the
/// process without limit). Thread-safe.
class TopoMemo {
 public:
  explicit TopoMemo(std::size_t capacity = 8);

  /// The fat tree for `oversub`, built on first use.
  std::shared_ptr<const FatTree> For(double oversub);

  std::size_t size() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  // back = most recently used.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const FatTree>>> topos_;
};

/// Caller-owned resources ExecuteQueryOnSnapshot draws on.
struct ExecContext {
  TopoMemo* topos = nullptr;                     // required
  LruCache<PathEstimate>* path_cache = nullptr;  // nullptr = no path reuse
  unsigned threads_per_query = 1;                // M3Options::num_threads
};

/// Runs one query against one model snapshot on the calling thread:
/// oversub/flow validation, ECMP route re-derivation, RunM3 with the
/// request's options and (unless no_cache) the shared per-path cache.
/// Fills every QueryResponse field except `stats` and `query_cache_hit`
/// (model_version/model_crc come from `snap`). Never throws.
QueryResponse ExecuteQueryOnSnapshot(const QueryRequest& req, const ModelSnapshot& snap,
                                     const ExecContext& ctx);

/// True when `code` counts as an answer the client can use: full-quality,
/// degraded, or a partial deadline answer (the service's queries_ok bucket).
bool IsAnsweredCode(StatusCode code);

}  // namespace m3::serve
