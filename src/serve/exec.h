// Snapshot-level query execution: the part of the serving pipeline that is
// identical whether a query runs inside the daemon process (PR-4 style) or
// inside a supervised worker subprocess (serve/worker.h).
//
// ExecuteQueryOnSnapshot owns validation, topology memoization, flow/route
// building, and RunM3 against one pinned model snapshot. It deliberately
// excludes everything process-topology-specific: the whole-query result
// cache, service counters, and admission control stay with the caller
// (EstimationService in-process; WorkerSupervisor/worker split them across
// the socketpair). Keeping this core shared is what makes the acceptance
// bar "worker-mode answers are bitwise identical to in-process answers"
// checkable instead of aspirational.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/cache.h"
#include "serve/registry.h"
#include "serve/wire.h"
#include "topo/fat_tree.h"

namespace m3::serve {

/// Small LRU of immutable fat trees keyed by the request's topology terms:
/// the oversubscription double's bit pattern — exactly the value off the
/// wire — plus the explicit v3 shape (all-zero for the default Small
/// testbed). Bounded because both are client-supplied (any admissible bit
/// pattern would otherwise grow the process without limit). Thread-safe.
class TopoMemo {
 public:
  explicit TopoMemo(std::size_t capacity = 8);

  /// The fat tree for (oversub, shape), built on first use. A default
  /// (all-zero) shape means FatTreeConfig::Small(oversub).
  std::shared_ptr<const FatTree> For(double oversub, const WireTopo& topo = WireTopo{});

  std::size_t size() const;

 private:
  struct Key {
    std::uint64_t oversub_bits = 0;
    WireTopo topo;
    bool operator==(const Key& o) const {
      return oversub_bits == o.oversub_bits && topo == o.topo;
    }
  };
  const std::size_t capacity_;
  mutable std::mutex mu_;
  // back = most recently used.
  std::vector<std::pair<Key, std::shared_ptr<const FatTree>>> topos_;
};

/// Caller-owned resources ExecuteQueryOnSnapshot draws on.
struct ExecContext {
  TopoMemo* topos = nullptr;                     // required
  LruCache<PathEstimate>* path_cache = nullptr;  // nullptr = no path reuse
  unsigned threads_per_query = 1;                // M3Options::num_threads
  // Invoked once per *newly inserted* path-cache entry with (cache key,
  // model digest, estimate) — the durable-cache spill hook (serve/persist.h).
  // Refreshes and recovered entries never re-fire it, which is what bounds
  // write amplification to the fresh-compute rate.
  std::function<void(const Hash128&, const Hash128&, const PathEstimate&)> persist_path;
};

/// Runs one query against one model snapshot on the calling thread:
/// oversub/flow validation, ECMP route re-derivation, RunM3 with the
/// request's options and (unless no_cache) the shared per-path cache.
/// Fills every QueryResponse field except `stats` and `query_cache_hit`
/// (model_version/model_crc come from `snap`). Never throws.
QueryResponse ExecuteQueryOnSnapshot(const QueryRequest& req, const ModelSnapshot& snap,
                                     const ExecContext& ctx);

/// The shard's share of a scattered query: same validation, topology, and
/// options as ExecuteQueryOnSnapshot, but only `req.slots` of the
/// deterministic path sample are estimated (M3Options::sample_slots) and
/// the reply carries the raw per-slot estimates instead of the aggregate.
/// Slots the ladder dropped are omitted from `estimates` (the router runs
/// its own fallback for them); the shard's DegradationReport covers only
/// its assigned slots. Never throws.
ShardQueryResponse ExecuteShardOnSnapshot(const ShardQueryRequest& req,
                                          const ModelSnapshot& snap, const ExecContext& ctx);

/// Validates the request's topology terms (oversub range for the default
/// shape; per-field and total-size bounds for an explicit v3 shape) and
/// returns the memoized fat tree. Shared by the daemon execution path and
/// the router's decomposition step so both sides of a scattered query build
/// the identical tree.
StatusOr<std::shared_ptr<const FatTree>> TopoForRequest(const QueryRequest& req,
                                                        TopoMemo* memo);

/// Validates `req.flows` against the tree (host ranges, src != dst,
/// priority class) and builds the routed core flows, re-deriving ECMP
/// routes from the flow id (the trace_io convention). On error `out` is
/// left untouched and the status names the offending flow and field.
Status BuildRequestFlows(const QueryRequest& req, const FatTree& ft, std::vector<Flow>* out);

/// True when `code` counts as an answer the client can use: full-quality,
/// degraded, or a partial deadline answer (the service's queries_ok bucket).
bool IsAnsweredCode(StatusCode code);

}  // namespace m3::serve
