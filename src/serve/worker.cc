#include "serve/worker.h"

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "serve/cache.h"
#include "serve/exec.h"
#include "serve/wire.h"
#include "util/fault.h"
#include "util/parallel.h"

namespace m3::serve {
namespace {

// True when an armed fault at `site` fires on this hit (the mode is
// irrelevant for worker sites: the *site* names the behavior).
bool WorkerFaultFires(const char* site) {
  FaultRegistry& reg = FaultRegistry::Instance();
  if (!reg.any_armed()) return false;
  return reg.Hit(site).has_value();
}

}  // namespace

void PrepareWorkerChild(int keep_fd) {
  // Close inherited fds. Without this, each worker holds the parent ends
  // of every *other* worker's socketpair, so a sibling's death would not
  // surface as EOF to the supervisor. /proc/self/fd enumerates exactly the
  // open set (a blind 3..OPEN_MAX loop can be a million syscalls).
  std::vector<int> to_close;
  if (DIR* dir = ::opendir("/proc/self/fd")) {
    const int dir_fd = ::dirfd(dir);
    while (const dirent* e = ::readdir(dir)) {
      if (e->d_name[0] == '.') continue;
      const int fd = std::atoi(e->d_name);
      if (fd > 2 && fd != keep_fd && fd != dir_fd) to_close.push_back(fd);
    }
    ::closedir(dir);
  } else {
    for (int fd = 3; fd < 1024; ++fd) {
      if (fd != keep_fd) to_close.push_back(fd);
    }
  }
  for (int fd : to_close) ::close(fd);

  // The daemon's SIGINT/SIGTERM handling belongs to the parent; a worker
  // should just die on either.
  ::signal(SIGINT, SIG_DFL);
  ::signal(SIGTERM, SIG_DFL);

  ThreadPool::ReinitAfterForkIfLive();
}

void WorkerMain(const UnixFd& fd, const ModelSnapshot& snap, const WorkerOptions& opts) {
  // Worker-local execution resources. The parent's shared path cache is
  // not reachable across the process boundary; each worker warms its own
  // (the parent-side whole-query cache still provides cross-query reuse).
  TopoMemo topos;
  LruCache<PathEstimate> path_cache(opts.path_cache_entries, "serve/cache_lookup");
  ExecContext ctx;
  ctx.topos = &topos;
  ctx.path_cache = opts.path_cache_entries > 0 ? &path_cache : nullptr;
  ctx.threads_per_query = opts.threads_per_query;

  for (;;) {
    StatusOr<Frame> frame = RecvFrame(fd);
    if (!frame.ok()) return;  // supervisor closed or channel broke: exit

    // Chaos sites fire after the request is read and before execution —
    // the "worker dies between accept and reply" window the supervisor
    // must survive.
    if (WorkerFaultFires(kWorkerCrashSite)) std::abort();
    if (WorkerFaultFires(kWorkerHangSite)) {
      for (;;) ::pause();  // wedged until the watchdog SIGKILLs us
    }

    QueryResponse resp;
    if (frame->type != static_cast<std::uint32_t>(MsgType::kQueryRequest)) {
      resp.status = Status::InvalidArgument("worker: unexpected frame type " +
                                            std::to_string(frame->type));
    } else if (StatusOr<QueryRequest> req = DecodeQueryRequest(frame->payload);
               !req.ok()) {
      resp.status = req.status();
    } else {
      resp = ExecuteQueryOnSnapshot(*req, snap, ctx);
    }

    if (WorkerFaultFires(kWorkerGarbageSite)) {
      // A wrong answer in the wrong shape: raw junk where a frame should
      // be. The supervisor must detect, replace us, and retry elsewhere.
      const char junk[] = "\xde\xad\xbe\xef worker went sideways";
      (void)!::write(fd.get(), junk, sizeof(junk));
      continue;
    }

    const Status sent =
        SendFrame(fd, static_cast<std::uint32_t>(MsgType::kQueryResponse),
                  EncodeQueryResponse(resp));
    if (!sent.ok()) return;
  }
}

}  // namespace m3::serve
