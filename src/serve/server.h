// SocketServer: the m3d daemon's transport loop.
//
// Accepts connections on a Unix-domain socket and speaks the serve/wire.h
// protocol: each connection is handled by its own I/O thread that decodes
// frames, hands queries to the EstimationService scheduler (blocking until
// the answer is computed — so admission control naturally bounds the number
// of in-flight queries per daemon), and writes the response frame back.
// Compute never happens on I/O threads; they only park in Query().
//
// A malformed frame gets an error response where the expected response type
// is known (bad query payload -> kQueryResponse carrying the decode error);
// an unknown frame type or transport-level garbage closes the connection.
#pragma once

#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"
#include "util/socket.h"

namespace m3::serve {

class SocketServer {
 public:
  explicit SocketServer(EstimationService& service) : service_(service) {}
  ~SocketServer();  // Stop()s

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds `socket_path` and spawns the acceptor thread.
  Status Start(const std::string& socket_path);

  /// Shuts down the listener and every open connection, joins all threads,
  /// and unlinks the socket file. Idempotent.
  void Stop();

  const std::string& socket_path() const { return path_; }

 private:
  void AcceptLoop();
  void ServeConnection(UnixFd fd);

  EstimationService& service_;
  UnixFd listener_;
  std::string path_;
  std::thread acceptor_;
  std::mutex mu_;  // guards conns_, conn_fds_, stopping_
  std::vector<std::thread> conns_;
  std::vector<int> conn_fds_;  // raw fds of live connections, for shutdown()
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace m3::serve
