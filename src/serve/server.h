// SocketServer: the m3d daemon's transport loop.
//
// Accepts connections on a Unix-domain socket and speaks the serve/wire.h
// protocol: each connection is handled by its own I/O thread that decodes
// frames, hands queries to the EstimationService scheduler (blocking until
// the answer is computed — so admission control naturally bounds the number
// of in-flight queries per daemon), and writes the response frame back.
// Compute never happens on I/O threads; they only park in Query().
//
// A malformed frame gets an error response where the expected response type
// is known (bad query payload -> kQueryResponse carrying the decode error);
// an unknown frame type or transport-level garbage closes the connection.
#pragma once

#include <list>
#include <mutex>
#include <string>
#include <thread>

#include "serve/service.h"
#include "util/socket.h"

namespace m3::serve {

class SocketServer {
 public:
  explicit SocketServer(EstimationService& service) : service_(service) {}
  ~SocketServer();  // Stop()s

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds `socket_path` and spawns the acceptor thread.
  Status Start(const std::string& socket_path);

  /// Shuts down the listener and every open connection, joins all threads,
  /// and unlinks the socket file. Idempotent.
  void Stop();

  const std::string& socket_path() const { return path_; }

  /// Connection threads not yet reaped (test/ops visibility; exited handlers
  /// are joined on the next accept, so this tracks live connections ±1).
  std::size_t connection_threads() const;

 private:
  // One accepted connection: its handler thread, the raw fd (so Stop can
  // shutdown() a parked recv), and a completion flag the handler sets —
  // under mu_, before closing the fd — so the acceptor can join exited
  // threads and Stop never shutdown()s a recycled fd number.
  struct Conn {
    std::thread t;
    int fd = -1;
    bool done = false;
  };

  void AcceptLoop();
  void ServeConnection(UnixFd fd, std::list<Conn>::iterator self);
  /// Joins handler threads that have finished. Called by the acceptor after
  /// every accept so a long-running daemon serving short-lived connections
  /// does not accrete joinable-thread stacks until shutdown.
  void ReapFinished();

  EstimationService& service_;
  UnixFd listener_;
  std::string path_;
  std::thread acceptor_;
  mutable std::mutex mu_;  // guards conns_ (list + done flags), stopping_
  std::list<Conn> conns_;  // std::list: handlers hold stable iterators
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace m3::serve
