// SocketServer: the transport loop shared by m3d and m3d-router.
//
// Accepts connections on a Unix-domain or TCP listener and speaks the
// serve/wire.h protocol: each connection is handled by its own I/O thread
// that decodes frames, hands queries to the backing handler (blocking until
// the answer is computed — so admission control naturally bounds the number
// of in-flight queries per daemon), and writes the response frame back.
// Compute never happens on I/O threads; they only park in the handler.
//
// The backing handler is a set of hooks (ServerHooks): m3d binds them to an
// EstimationService (including the fleet-internal shard-query handler);
// m3d-router binds them to a Router. Hooks left empty answer with a clean
// kUnavailable response of the matching type (e.g. a router has no reload).
//
// A malformed frame gets an error response where the expected response type
// is known (bad query payload -> kQueryResponse carrying the decode error);
// an unknown frame type or transport-level garbage closes the connection.
#pragma once

#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <thread>
#include <utility>

#include "serve/wire.h"
#include "util/socket.h"

namespace m3::serve {

class EstimationService;

/// What a SocketServer serves. query/stats/ping are required; reload and
/// shard_query are optional (empty = answered kUnavailable).
struct ServerHooks {
  std::function<QueryResponse(const QueryRequest&)> query;
  std::function<ServerStatsWire()> stats;
  std::function<PingResponse()> ping;
  std::function<ReloadResponse(const ReloadRequest&)> reload;
  std::function<ShardQueryResponse(const ShardQueryRequest&)> shard_query;
};

/// m3d's hook binding: Query/Stats/Ping/ReloadModel/ExecuteShard on the
/// service.
ServerHooks ServiceHooks(EstimationService& service);

class SocketServer {
 public:
  explicit SocketServer(ServerHooks hooks) : hooks_(std::move(hooks)) {}
  /// Convenience: serve an EstimationService (the ServiceHooks binding).
  explicit SocketServer(EstimationService& service);
  ~SocketServer();  // Stop()s

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds the Unix socket `socket_path` and spawns an acceptor thread.
  Status Start(const std::string& socket_path);

  /// Binds an endpoint of either kind ("unix:/path" or "tcp:host:port")
  /// and spawns an acceptor thread. May be called again while running to
  /// add a listener — m3d serves its Unix socket and, with --listen-tcp,
  /// a TCP port at the same time.
  Status Start(const Endpoint& ep);

  /// Shuts down every listener and open connection, joins all threads, and
  /// unlinks Unix socket files. Idempotent.
  void Stop();

  /// The first Unix listener's path (empty for TCP-only servers).
  const std::string& socket_path() const { return path_; }

  /// Connection threads not yet reaped (test/ops visibility; exited handlers
  /// are joined on the next accept, so this tracks live connections ±1).
  std::size_t connection_threads() const;

 private:
  // One accepted connection: its handler thread, the raw fd (so Stop can
  // shutdown() a parked recv), and a completion flag the handler sets —
  // under mu_, before closing the fd — so an acceptor can join exited
  // threads and Stop never shutdown()s a recycled fd number.
  struct Conn {
    std::thread t;
    int fd = -1;
    bool done = false;
  };
  // One bound listener + its acceptor thread (m3d may run two: unix + tcp).
  struct Listener {
    UnixFd fd;
    std::thread acceptor;
    std::string unlink_path;  // non-empty for unix listeners
  };

  void AcceptLoop(Listener* l);
  void ServeConnection(UnixFd fd, std::list<Conn>::iterator self);
  /// Joins handler threads that have finished. Called by acceptors after
  /// every accept so a long-running daemon serving short-lived connections
  /// does not accrete joinable-thread stacks until shutdown.
  void ReapFinished();

  const ServerHooks hooks_;
  std::list<Listener> listeners_;  // std::list: acceptors hold stable pointers
  std::string path_;
  mutable std::mutex mu_;  // guards conns_ (list + done flags), stopping_
  std::list<Conn> conns_;  // std::list: handlers hold stable iterators
  bool stopping_ = false;
  bool started_ = false;
};

}  // namespace m3::serve
