#include "serve/registry.h"

#include "ml/checkpoint.h"
#include "util/fault.h"

namespace m3::serve {
namespace {

void ComputeIdentity(M3Model& model, std::uint32_t* crc, Hash128* digest) {
  Hasher h;
  std::uint32_t running_crc = 0;
  // Parameter order is fixed by the model's layer structure, so iterating
  // params() is a canonical traversal.
  for (const ml::Parameter* p : model.params()) {
    h.Str(p->name);
    h.I32(p->value.rows());
    h.I32(p->value.cols());
    h.Bytes(p->value.data(), p->value.size() * sizeof(float));
    running_crc ^= ml::Crc32(p->value.data(), p->value.size() * sizeof(float));
  }
  *crc = running_crc;
  *digest = h.Finish();
}

}  // namespace

Status ModelRegistry::Reload(const std::string& path) {
  // Hold reload_mu_ across load *and* publish so publication order equals
  // call order: a slow reload of an older checkpoint can never overwrite a
  // newer one.
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  StatusOr<std::shared_ptr<ModelSnapshot>> snap = LoadLocked(path);
  if (!snap.ok()) return snap.status();
  Publish(std::move(*snap));
  return Status::Ok();
}

StatusOr<std::shared_ptr<ModelSnapshot>> ModelRegistry::Load(const std::string& path) {
  // One load at a time (see reload_mu_ in the header). Current() only
  // takes mu_, so queries never wait on a checkpoint load. Callers that
  // need load->publish atomicity serialize their own reload path (the
  // service's reload handler does).
  std::lock_guard<std::mutex> reload_lock(reload_mu_);
  return LoadLocked(path);
}

StatusOr<std::shared_ptr<ModelSnapshot>> ModelRegistry::LoadLocked(
    const std::string& path) {
  try {
    M3_FAULT_POINT("serve/registry_reload");
  } catch (const std::exception& e) {
    reloads_failed_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable(e.what()).Annotate("reloading " + path);
  }

  // Load off to the side: in-flight queries keep their snapshot, and a
  // failure here publishes nothing.
  auto snap = std::make_shared<ModelSnapshot>(cfg_);
  StatusOr<ml::CheckpointInfo> info = snap->model.TryLoad(path);
  if (!info.ok()) {
    reloads_failed_.fetch_add(1, std::memory_order_relaxed);
    return info.status();
  }
  snap->info = *info;
  snap->checkpoint_path = path;
  ComputeIdentity(snap->model, &snap->param_crc, &snap->digest);
  return snap;
}

void ModelRegistry::Publish(std::shared_ptr<ModelSnapshot> snap) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap->version = next_version_++;
    current_ = std::move(snap);
  }
  reloads_ok_.fetch_add(1, std::memory_order_relaxed);
}

void ModelRegistry::Republish(std::shared_ptr<const ModelSnapshot> snap) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(snap);
}

void ModelRegistry::NoteReloadRefused() {
  reloads_failed_.fetch_add(1, std::memory_order_relaxed);
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

}  // namespace m3::serve
