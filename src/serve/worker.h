// The query loop that runs inside a forked worker subprocess.
//
// A worker is the blast-radius boundary of the serving stack: model
// inference and path simulation run here, so a crash, hang, or memory
// corruption takes down one fork()ed child — never the daemon. The
// supervisor (serve/supervisor.h) owns the process lifecycle; this file is
// only the child-side loop plus the post-fork hygiene that makes
// fork-without-exec safe in a threaded parent.
//
// Protocol: the worker reads kQueryRequest frames off its socketpair end
// (serve/wire.h payloads over util/socket.h framing), executes each with
// the shared snapshot-level core (serve/exec.h), and writes back one
// kQueryResponse per request. A clean EOF from the supervisor means
// "drain and exit". The worker pins the model snapshot it inherited at
// fork time — a hot-reload in the parent is rolled out by replacing
// workers, not by mutating them.
//
// Chaos fault sites (armed via SupervisorOptions::worker_faults or the
// inherited M3_FAULTS environment):
//   serve/worker_crash         — std::abort() after reading a request
//   serve/worker_hang          — sleep forever (drives the watchdog)
//   serve/worker_garbage_reply — answer with unframed junk bytes
#pragma once

#include <cstddef>

#include "serve/registry.h"
#include "util/socket.h"

namespace m3::serve {

inline constexpr const char* kWorkerCrashSite = "serve/worker_crash";
inline constexpr const char* kWorkerHangSite = "serve/worker_hang";
inline constexpr const char* kWorkerGarbageSite = "serve/worker_garbage_reply";

struct WorkerOptions {
  unsigned threads_per_query = 1;     // M3Options::num_threads
  std::size_t path_cache_entries = 4096;  // worker-local per-path LRU
};

/// Post-fork hygiene for a child that will never exec: closes every fd
/// except `keep_fd` and stdio (a sibling worker inheriting our parent-end
/// socketpair fd would otherwise hold it open and mask our EOF-on-death),
/// restores default SIGINT/SIGTERM dispositions, and rebuilds the
/// process-wide ThreadPool (fork copies only the calling thread).
void PrepareWorkerChild(int keep_fd);

/// The worker's serve loop: blocks on `fd` for request frames until the
/// supervisor closes its end (or the channel errors), answering each
/// query against `snap`. Runs on the calling thread; never throws. The
/// caller should _exit(0) when this returns — stack unwinding and static
/// destructors belong to the parent's lifetime, not the fork's.
void WorkerMain(const UnixFd& fd, const ModelSnapshot& snap, const WorkerOptions& opts);

}  // namespace m3::serve
