// ModelRegistry: immutable, shared model snapshots with atomic hot-reload.
//
// The daemon serves every query from a snapshot obtained via Current();
// queries hold the snapshot's shared_ptr for their whole lifetime, so a
// concurrent Reload can publish a new snapshot without dropping or tearing
// in-flight work — the old model is destroyed only when its last query
// finishes. Reload is all-or-nothing: the new checkpoint is loaded into a
// *fresh* model off to the side and only published on success, so a corrupt
// or mismatched checkpoint leaves the serving snapshot untouched (the error
// is returned and counted, never propagated to queries).
//
// Snapshots carry identity for cache keying and reporting: a monotonically
// increasing registry version, a CRC32 over the raw parameter bytes (cheap,
// human-comparable), and a 128-bit content digest of all parameters (the
// component of every cache key that ties results to exact model weights).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/model.h"
#include "util/hash.h"
#include "util/status.h"

namespace m3::serve {

struct ModelSnapshot {
  explicit ModelSnapshot(const M3ModelConfig& cfg) : model(cfg) {}

  // `mutable` because Predict() builds a per-call graph and is therefore
  // non-const; concurrent Predict on one model is safe (the estimator
  // already does it across path workers). By convention nothing mutates
  // parameters after publication.
  mutable M3Model model;
  ml::CheckpointInfo info;     // what the checkpoint file carried
  std::string checkpoint_path;
  std::uint64_t version = 0;   // registry load counter, 1 = initial load
  std::uint32_t param_crc = 0; // CRC32 over raw parameter floats
  Hash128 digest;              // content hash of (name, shape, data) per param
};

class ModelRegistry {
 public:
  /// Snapshots are compiled with `cfg`; checkpoints whose tensors do not
  /// match these dimensions are rejected by Reload (kInvalidArgument).
  explicit ModelRegistry(const M3ModelConfig& cfg = M3ModelConfig()) : cfg_(cfg) {}
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Loads `path` into a fresh snapshot and atomically publishes it. Used
  /// both for the initial load and for hot-reload; on failure the
  /// previously published snapshot (if any) keeps serving. Never throws.
  /// Fault site "serve/registry_reload" fires before the checkpoint is
  /// opened (an injected failure behaves like an unreadable file).
  Status Reload(const std::string& path);

  /// Loads `path` into a snapshot *without* publishing it (version stays 0).
  /// Lets a caller inspect the load — e.g. check the digest against a
  /// quarantine list — before deciding to Publish. Counts reloads_failed on
  /// failure; the matching Publish counts reloads_ok.
  StatusOr<std::shared_ptr<ModelSnapshot>> Load(const std::string& path);

  /// Publishes a snapshot from Load(): assigns the next version and makes
  /// it Current(). Counts reloads_ok.
  void Publish(std::shared_ptr<ModelSnapshot> snap);

  /// Re-publishes a previously served snapshot verbatim — version and
  /// identity are kept, no counters move. This is the circuit-breaker
  /// rollback: when a freshly published model keeps crashing workers, the
  /// supervisor swaps the last good snapshot back in, so Current()'s
  /// version can legitimately move backwards.
  void Republish(std::shared_ptr<const ModelSnapshot> snap);

  /// Records a reload that was refused before any load was attempted
  /// (e.g. the checkpoint's digest is quarantined).
  void NoteReloadRefused();

  /// The currently published snapshot, or nullptr before the first
  /// successful Reload. Cheap enough for the per-query hot path.
  std::shared_ptr<const ModelSnapshot> Current() const;

  std::uint64_t reloads_ok() const { return reloads_ok_.load(std::memory_order_relaxed); }
  std::uint64_t reloads_failed() const {
    return reloads_failed_.load(std::memory_order_relaxed);
  }

 private:
  StatusOr<std::shared_ptr<ModelSnapshot>> LoadLocked(const std::string& path);

  const M3ModelConfig cfg_;
  // Held for the whole of Reload (loads are rare, seconds-scale is fine):
  // serializing load+publish makes publication order equal call order, so a
  // slow reload of an older checkpoint can never overwrite a newer one.
  std::mutex reload_mu_;
  mutable std::mutex mu_;  // guards current_ swap and version assignment
  std::shared_ptr<const ModelSnapshot> current_;
  std::uint64_t next_version_ = 1;
  std::atomic<std::uint64_t> reloads_ok_{0};
  std::atomic<std::uint64_t> reloads_failed_{0};
};

}  // namespace m3::serve
