// EstimationService: the m3d daemon's core, usable in-process.
//
// One service owns the three serving-side resources and wires them to the
// estimation pipeline:
//
//   ModelRegistry     — shared immutable model snapshots, atomic hot-reload
//   request scheduler — a bounded MPMC queue + worker threads; Submit()
//                       rejects with kResourceExhausted when the queue is
//                       full (admission control), per-request deadlines map
//                       onto M3Options::deadline_seconds
//   result caches     — whole-query and per-path content-addressed LRUs
//                       (serve/cache.h); only full-quality kOk answers are
//                       cached, so a hit is always bitwise identical to a
//                       fault-free recompute
//
// Cross-query batching happens at two levels: concurrent queries share the
// process-wide ThreadPool for their path work, and the per-path cache lets
// overlapping queries reuse each other's path estimates (the paper's §3.1
// decomposition makes paths the natural unit of reuse).
//
// Threading: Submit/Query/Stats/ReloadModel are all thread-safe. Workers
// execute queries with `threads_per_query` pool threads each (default 1:
// with several workers, query-level parallelism beats intra-query
// parallelism for throughput; a single-worker service should use 0 = full
// pool width for latency).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/registry.h"
#include "serve/wire.h"
#include "topo/fat_tree.h"

namespace m3::serve {

struct ServiceOptions {
  int num_workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t query_cache_entries = 256;
  std::size_t path_cache_entries = 4096;
  // ThreadPool width per query (M3Options::num_threads); 0 = full pool.
  unsigned threads_per_query = 1;
  // Compiled model dimensions; checkpoints must match (tests use small ones).
  M3ModelConfig model_config;
};

class EstimationService {
 public:
  explicit EstimationService(const ServiceOptions& opts = ServiceOptions());
  ~EstimationService();  // Stop()s if running

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Loads (or hot-reloads) the serving checkpoint. Safe under load: on
  /// failure the current snapshot keeps serving and the error is returned.
  Status ReloadModel(const std::string& checkpoint_path);

  /// Spawns the worker threads. kInvalidArgument if already running.
  Status Start();

  /// Drains the queue (every accepted query is answered), then joins the
  /// workers. Idempotent.
  void Stop();

  using DoneFn = std::function<void(QueryResponse)>;

  /// Admission-controlled enqueue. `done` is invoked exactly once on a
  /// worker thread. Returns kResourceExhausted (and does not invoke `done`)
  /// when the queue is full, kUnavailable when the service is not running.
  Status Submit(QueryRequest req, DoneFn done);

  /// Synchronous query: through the scheduler when running (admission
  /// rejections surface in the response status), directly on the calling
  /// thread otherwise.
  QueryResponse Query(const QueryRequest& req);

  /// Executes a query on the calling thread, bypassing the scheduler (no
  /// admission control). The cache/registry path is identical to scheduled
  /// execution; used by tests and benchmarks.
  QueryResponse ExecuteInline(const QueryRequest& req);

  ServerStatsWire Stats() const;

  /// Drops every cached result (test/ops hook; counters are kept).
  void ClearCaches();
  /// Drops only the whole-query cache (lets tests drive path-cache hits).
  void ClearQueryCache();

  ModelRegistry& registry() { return registry_; }
  const ServiceOptions& options() const { return opts_; }

  /// Topology memo entries (see TopologyFor). Test/ops visibility.
  std::size_t TopologyCacheSize() const;

 private:
  struct Pending {
    QueryRequest req;
    DoneFn done;
    // When the request was admitted; queue wait counts against the
    // client's deadline (WorkerLoop shrinks deadline_seconds by it).
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  /// The full query path: registry snapshot, validation, cache probes, RunM3.
  QueryResponse Execute(const QueryRequest& req);
  /// Fat trees are immutable post-build; memoize by oversubscription so
  /// repeated queries skip topology construction. Bounded: any double in
  /// the valid range is accepted on the wire, so an unbounded memo would
  /// let a client iterating bit patterns grow the daemon without limit.
  std::shared_ptr<const FatTree> TopologyFor(double oversub);

  const ServiceOptions opts_;
  ModelRegistry registry_;
  LruCache<QueryResponse> query_cache_;
  LruCache<PathEstimate> path_cache_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool running_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  mutable std::mutex topo_mu_;
  // Small LRU keyed by the oversub double's bit pattern; back = most recent.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const FatTree>>> topos_;

  std::atomic<std::uint64_t> queries_received_{0};
  std::atomic<std::uint64_t> queries_ok_{0};
  std::atomic<std::uint64_t> queries_rejected_{0};
  std::atomic<std::uint64_t> queries_failed_{0};
};

}  // namespace m3::serve
