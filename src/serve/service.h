// EstimationService: the m3d daemon's core, usable in-process.
//
// One service owns the three serving-side resources and wires them to the
// estimation pipeline:
//
//   ModelRegistry     — shared immutable model snapshots, atomic hot-reload
//   request scheduler — a bounded MPMC queue + worker threads; Submit()
//                       rejects with kResourceExhausted when the queue is
//                       full (admission control), per-request deadlines map
//                       onto M3Options::deadline_seconds
//   result caches     — whole-query and per-path content-addressed LRUs
//                       (serve/cache.h); only full-quality kOk answers are
//                       cached, so a hit is always bitwise identical to a
//                       fault-free recompute
//
// Cross-query batching happens at two levels: concurrent queries share the
// process-wide ThreadPool for their path work, and the per-path cache lets
// overlapping queries reuse each other's path estimates (the paper's §3.1
// decomposition makes paths the natural unit of reuse).
//
// Threading: Submit/Query/Stats/ReloadModel are all thread-safe. Workers
// execute queries with `threads_per_query` pool threads each (default 1:
// with several workers, query-level parallelism beats intra-query
// parallelism for throughput; a single-worker service should use 0 = full
// pool width for latency).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/exec.h"
#include "serve/registry.h"
#include "serve/supervisor.h"
#include "serve/wire.h"
#include "topo/fat_tree.h"

namespace m3::serve {

struct ServiceOptions {
  int num_workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t query_cache_entries = 256;
  std::size_t path_cache_entries = 4096;
  // ThreadPool width per query (M3Options::num_threads); 0 = full pool.
  unsigned threads_per_query = 1;
  // Compiled model dimensions; checkpoints must match (tests use small ones).
  M3ModelConfig model_config;
  // > 0: execute queries in this many supervised worker *subprocesses*
  // (crash isolation — a worker crash/hang never takes down the daemon).
  // 0 (default): execute in-process, exactly the pre-supervisor behavior.
  // Fault-free answers are bitwise identical either way (both run
  // serve/exec.h on the same snapshot).
  int worker_processes = 0;
  // Supervisor tuning for worker mode. num_workers / threads_per_query /
  // path_cache_entries inside are overridden from the fields above.
  SupervisorOptions supervisor;
};

class EstimationService {
 public:
  explicit EstimationService(const ServiceOptions& opts = ServiceOptions());
  ~EstimationService();  // Stop()s if running

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Loads (or hot-reloads) the serving checkpoint. Safe under load: on
  /// failure the current snapshot keeps serving and the error is returned.
  /// In worker mode a checkpoint whose digest the circuit breaker has
  /// quarantined is refused (kUnavailable) without being published, and a
  /// successful reload rolls the worker pool onto the new snapshot.
  Status ReloadModel(const std::string& checkpoint_path);

  /// Spawns the worker threads. kInvalidArgument if already running.
  Status Start();

  /// Drains the queue (every accepted query is answered), then joins the
  /// workers. Idempotent.
  void Stop();

  using DoneFn = std::function<void(QueryResponse)>;

  /// Admission-controlled enqueue. `done` is invoked exactly once on a
  /// worker thread. Returns kResourceExhausted (and does not invoke `done`)
  /// when the queue is full, kUnavailable when the service is not running.
  Status Submit(QueryRequest req, DoneFn done);

  /// Synchronous query: through the scheduler when running (admission
  /// rejections surface in the response status), directly on the calling
  /// thread otherwise.
  QueryResponse Query(const QueryRequest& req);

  /// Executes a query on the calling thread, bypassing the scheduler (no
  /// admission control). The cache/registry path is identical to scheduled
  /// execution; used by tests and benchmarks.
  QueryResponse ExecuteInline(const QueryRequest& req);

  /// Executes a shard's share of a scattered query (serve/exec.h
  /// ExecuteShardOnSnapshot) on the calling thread against the current
  /// snapshot, with the shared path cache. Runs in-process even in worker
  /// mode: the fleet's crash-failure domain is the whole shard daemon, and
  /// m3d-router — not this process — supervises it. Admission control for
  /// shard queries is likewise the router's job (it bounds in-flight
  /// sub-requests to one per shard per client query). kUnavailable when no
  /// model is loaded.
  ShardQueryResponse ExecuteShard(const ShardQueryRequest& req);

  ServerStatsWire Stats() const;

  /// Liveness/readiness for `m3_client --ping`: ready once a model is
  /// loaded and, in worker mode, at least one worker is alive.
  PingResponse Ping() const;

  /// Drops every cached result (test/ops hook; counters are kept).
  void ClearCaches();
  /// Drops only the whole-query cache (lets tests drive path-cache hits).
  void ClearQueryCache();

  ModelRegistry& registry() { return registry_; }
  const ServiceOptions& options() const { return opts_; }

  /// The worker-process pool, or nullptr when executing in-process.
  /// Test/ops hook (chaos harnesses read worker_pids() off it).
  WorkerSupervisor* supervisor() { return supervisor_.get(); }

  /// Topology memo entries (see TopologyFor). Test/ops visibility.
  std::size_t TopologyCacheSize() const;

 private:
  struct Pending {
    QueryRequest req;
    DoneFn done;
    // When the request was admitted; queue wait counts against the
    // client's deadline (WorkerLoop shrinks deadline_seconds by it).
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();
  /// The full query path: registry snapshot, validation, cache probes, RunM3
  /// (or, in worker mode, dispatch to a supervised subprocess).
  QueryResponse Execute(const QueryRequest& req);
  /// Circuit-breaker trip handler: rolls back to the last good snapshot
  /// when the freshly published model is the one killing workers.
  void OnBreakerTrip(const Hash128& digest);

  const ServiceOptions opts_;
  ModelRegistry registry_;
  LruCache<QueryResponse> query_cache_;
  LruCache<PathEstimate> path_cache_;
  std::unique_ptr<WorkerSupervisor> supervisor_;  // null in in-process mode

  // Serializes reload/rollback decisions (quarantine check + publish must
  // be atomic against each other); also guards last_good_.
  std::mutex reload_mu_;
  // The snapshot a breaker trip rolls back to: the previously serving
  // snapshot at the time of the last successful reload.
  std::shared_ptr<const ModelSnapshot> last_good_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool running_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // Fat-tree memo (serve/exec.h): fat trees are immutable post-build, so
  // repeated queries skip topology construction.
  TopoMemo topos_;

  std::atomic<std::uint64_t> queries_received_{0};
  std::atomic<std::uint64_t> queries_ok_{0};
  std::atomic<std::uint64_t> queries_rejected_{0};
  std::atomic<std::uint64_t> queries_failed_{0};
};

}  // namespace m3::serve
