// EstimationService: the m3d daemon's core, usable in-process.
//
// One service owns the three serving-side resources and wires them to the
// estimation pipeline:
//
//   ModelRegistry     — shared immutable model snapshots, atomic hot-reload
//   request scheduler — bounded MPMC per-priority-class queues + worker
//                       threads; admission control sheds by priority class,
//                       cost budget, and queue sojourn instead of plain
//                       FIFO rejection (DESIGN.md §13); per-request
//                       deadlines map onto M3Options::deadline_seconds and
//                       expired queued requests are reaped eagerly
//   result caches     — whole-query and per-path content-addressed LRUs
//                       (serve/cache.h); only full-quality kOk answers are
//                       cached, so a hit is always bitwise identical to a
//                       fault-free recompute
//
// Cross-query batching happens at two levels: concurrent queries share the
// process-wide ThreadPool for their path work, and the per-path cache lets
// overlapping queries reuse each other's path estimates (the paper's §3.1
// decomposition makes paths the natural unit of reuse).
//
// Threading: Submit/Query/Stats/ReloadModel are all thread-safe. Workers
// execute queries with `threads_per_query` pool threads each (default 1:
// with several workers, query-level parallelism beats intra-query
// parallelism for throughput; a single-worker service should use 0 = full
// pool width for latency).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/cache.h"
#include "serve/exec.h"
#include "serve/persist.h"
#include "serve/registry.h"
#include "serve/supervisor.h"
#include "serve/wire.h"
#include "topo/fat_tree.h"

namespace m3::serve {

struct ServiceOptions {
  int num_workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t query_cache_entries = 256;
  std::size_t path_cache_entries = 4096;
  // ThreadPool width per query (M3Options::num_threads); 0 = full pool.
  unsigned threads_per_query = 1;
  // Compiled model dimensions; checkpoints must match (tests use small ones).
  M3ModelConfig model_config;
  // > 0: execute queries in this many supervised worker *subprocesses*
  // (crash isolation — a worker crash/hang never takes down the daemon).
  // 0 (default): execute in-process, exactly the pre-supervisor behavior.
  // Fault-free answers are bitwise identical either way (both run
  // serve/exec.h on the same snapshot).
  int worker_processes = 0;
  // Supervisor tuning for worker mode. num_workers / threads_per_query /
  // path_cache_entries inside are overridden from the fields above.
  SupervisorOptions supervisor;

  // ---- Overload control (DESIGN.md §13) ----
  // In-flight cost budget for cost-aware admission. Each query's cost is
  // estimated from its flow/path counts discounted by the measured cache
  // hit rates; admission rejects (kResourceExhausted, ShedReason
  // kCostBudget) when admitting would push the committed cost past the
  // budget. <= 0 picks the default (queue_capacity + workers) * 128, which
  // is deliberately generous: it exists to stop a burst of maximum-size
  // queries from monopolizing the daemon, not to meter normal load. A
  // kCritical query, or any query arriving when nothing is in flight, is
  // always admitted.
  double cost_budget = 0.0;
  // CoDel-style sojourn gate: when > 0 and the oldest queued request has
  // already waited longer than this, new non-critical arrivals are shed at
  // admission (ShedReason kSojourn) *before* the queue fills — bounding
  // queue delay instead of queue length. 0 (default) disables the gate.
  double shed_sojourn_seconds = 0.0;
  // Brownout: under sustained pressure (observed dequeue sojourn past the
  // thresholds below, or priority displacement) the service stamps
  // QueryRequest::brownout on non-critical queries so exec reduces the
  // path sample (level 1) or substitutes flowSim (level 2). Browned-out
  // answers are always kDegraded with brownout attribution in the
  // DegradationReport — never silent, never cached.
  bool brownout_enabled = true;
  double brownout1_sojourn_seconds = 0.25;  // sojourn that triggers level 1
  double brownout2_sojourn_seconds = 1.0;   // sojourn that triggers level 2
  // How long a brownout level is held after the pressure signal stops;
  // bounds recovery time back to full quality.
  double brownout_hold_seconds = 2.0;

  // ---- Durable result caches (DESIGN.md §14) ----
  // Directory for append-only cache segments. Empty (default) disables
  // persistence entirely. Start() validates it (create-if-missing, reject
  // unwritable, refuse a directory another live daemon holds locked) and
  // recovers any surviving warm set concurrently with serving.
  std::string cache_dir;
  // Background flusher wakeup period; each round spills only entries
  // inserted since the last one (bounded write amplification).
  double cache_flush_interval_seconds = 2.0;
};

class EstimationService {
 public:
  explicit EstimationService(const ServiceOptions& opts = ServiceOptions());
  ~EstimationService();  // Stop()s if running

  EstimationService(const EstimationService&) = delete;
  EstimationService& operator=(const EstimationService&) = delete;

  /// Loads (or hot-reloads) the serving checkpoint. Safe under load: on
  /// failure the current snapshot keeps serving and the error is returned.
  /// In worker mode a checkpoint whose digest the circuit breaker has
  /// quarantined is refused (kUnavailable) without being published, and a
  /// successful reload rolls the worker pool onto the new snapshot.
  Status ReloadModel(const std::string& checkpoint_path);

  /// Spawns the worker threads. kInvalidArgument if already running.
  Status Start();

  /// Drains the queue (every accepted query is answered), then joins the
  /// workers. Idempotent.
  void Stop();

  using DoneFn = std::function<void(QueryResponse)>;

  /// Admission-controlled enqueue. `done` is invoked exactly once on a
  /// worker thread. Returns kResourceExhausted (and does not invoke `done`)
  /// when admission sheds the request — queue full with no lower-priority
  /// victim, sojourn gate, or cost budget — and kUnavailable when the
  /// service is not running. `shed_out` (optional) reports why a rejected
  /// submission was shed so callers can surface a typed status. A full
  /// queue with a strictly lower-priority entry queued admits the new
  /// request and sheds the victim instead: the victim's `done` fires with
  /// kResourceExhausted / ShedReason kPriority. Expired queued requests
  /// are reaped eagerly on every Submit (and at dequeue) so they stop
  /// displacing admissible work; their `done` fires with
  /// kDeadlineExceeded / ShedReason kExpired.
  Status Submit(QueryRequest req, DoneFn done, ShedReason* shed_out = nullptr);

  /// Synchronous query: through the scheduler when running (admission
  /// rejections surface in the response status), directly on the calling
  /// thread otherwise.
  QueryResponse Query(const QueryRequest& req);

  /// Executes a query on the calling thread, bypassing the scheduler (no
  /// admission control). The cache/registry path is identical to scheduled
  /// execution; used by tests and benchmarks.
  QueryResponse ExecuteInline(const QueryRequest& req);

  /// Executes a shard's share of a scattered query (serve/exec.h
  /// ExecuteShardOnSnapshot) on the calling thread against the current
  /// snapshot, with the shared path cache. Runs in-process even in worker
  /// mode: the fleet's crash-failure domain is the whole shard daemon, and
  /// m3d-router — not this process — supervises it. Admission control for
  /// shard queries is likewise the router's job (it bounds in-flight
  /// sub-requests to one per shard per client query). kUnavailable when no
  /// model is loaded.
  ShardQueryResponse ExecuteShard(const ShardQueryRequest& req);

  ServerStatsWire Stats() const;

  /// Liveness/readiness for `m3_client --ping`: ready once a model is
  /// loaded and, in worker mode, at least one worker is alive.
  PingResponse Ping() const;

  /// Drops every cached result (test/ops hook; counters are kept).
  void ClearCaches();
  /// Drops only the whole-query cache (lets tests drive path-cache hits).
  void ClearQueryCache();

  /// Synchronously spills everything queued for persistence (no-op without
  /// --cache-dir). Test/shutdown hook; the background flusher normally
  /// handles this on its interval.
  Status FlushPersistNow();
  /// Blocks until boot-time cache recovery (which runs concurrent with
  /// serving) has finished. Test hook; no-op without --cache-dir.
  void WaitForPersistRecovery();

  ModelRegistry& registry() { return registry_; }
  const ServiceOptions& options() const { return opts_; }

  /// The worker-process pool, or nullptr when executing in-process.
  /// Test/ops hook (chaos harnesses read worker_pids() off it).
  WorkerSupervisor* supervisor() { return supervisor_.get(); }

  /// Topology memo entries (see TopologyFor). Test/ops visibility.
  std::size_t TopologyCacheSize() const;

  /// Test hook: invoked on the worker thread just before Execute() for
  /// every dequeued (non-reaped) request. Lets tests hold workers busy to
  /// build queue pressure deterministically. Not for production use.
  void set_pre_execute_hook(std::function<void(const QueryRequest&)> hook) {
    pre_execute_hook_ = std::move(hook);
  }

 private:
  struct Pending {
    QueryRequest req;
    DoneFn done;
    // When the request was admitted; queue wait counts against the
    // client's deadline (WorkerLoop shrinks deadline_seconds by it).
    std::chrono::steady_clock::time_point enqueued;
    // Admission-time cost estimate; released from in_flight_cost_ when the
    // request is answered or shed.
    double cost = 0.0;
  };

  void WorkerLoop();
  /// The full query path: registry snapshot, validation, cache probes, RunM3
  /// (or, in worker mode, dispatch to a supervised subprocess).
  QueryResponse Execute(const QueryRequest& req);

  /// Admission-time cost estimate for cost-aware admission: base work plus
  /// flow-count and path-count terms discounted by measured cache hit
  /// rates (a likely query-cache hit is nearly free; path-cache hits make
  /// each path cheaper).
  double EstimateCost(const QueryRequest& req) const;
  /// Removes queued entries whose deadline already expired (they can no
  /// longer be answered in time) into *reaped. Caller answers them outside
  /// queue_mu_. Requires queue_mu_ held.
  void ReapExpiredLocked(std::chrono::steady_clock::time_point now,
                         std::vector<Pending>* reaped);
  /// Total entries across all priority class queues. Requires queue_mu_.
  std::size_t QueueDepthLocked() const;
  /// Age of the oldest queued entry, in seconds. Requires queue_mu_.
  double OldestSojournLocked(std::chrono::steady_clock::time_point now) const;
  /// Feeds one observed dequeue sojourn into the brownout controller;
  /// escalate=true forces at least level 1 (priority displacement is a
  /// pressure signal even when sojourns are still short). Requires
  /// queue_mu_.
  void UpdateBrownoutLocked(double sojourn_seconds, bool escalate,
                            std::chrono::steady_clock::time_point now);
  /// Builds the typed response for a shed request and fires its done
  /// callback. Must be called *without* queue_mu_ held (fills stats).
  void AnswerShed(Pending p, ShedReason reason);
  /// Circuit-breaker trip handler: rolls back to the last good snapshot
  /// when the freshly published model is the one killing workers.
  void OnBreakerTrip(const Hash128& digest);
  /// Boot-time durable-cache replay (runs on recovery_, concurrent with
  /// serving): decodes each surviving record, drops entries whose model
  /// digest no longer matches the registry, inserts the rest.
  void RecoverPersistedCaches();

  const ServiceOptions opts_;
  ModelRegistry registry_;
  LruCache<QueryResponse> query_cache_;
  LruCache<PathEstimate> path_cache_;
  std::unique_ptr<WorkerSupervisor> supervisor_;  // null in in-process mode

  // Durable-cache persistence (null / unheld without --cache-dir).
  std::unique_ptr<CachePersister> persister_;
  CacheDirLock dir_lock_;
  std::mutex recovery_mu_;  // guards recovery_ join
  std::thread recovery_;

  // Serializes reload/rollback decisions (quarantine check + publish must
  // be atomic against each other); also guards last_good_.
  std::mutex reload_mu_;
  // The snapshot a breaker trip rolls back to: the previously serving
  // snapshot at the time of the last successful reload.
  std::shared_ptr<const ModelSnapshot> last_good_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  // One FIFO per priority class; workers drain the highest non-empty
  // class first, and a full queue sheds from the lowest class first.
  std::deque<Pending> queues_[kNumPriorityClasses];
  bool running_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  // ---- Overload control state (guarded by queue_mu_) ----
  double in_flight_cost_ = 0.0;  // committed cost: queued + executing
  double cost_budget_ = 0.0;     // resolved from opts (default if <= 0)
  int brownout_level_ = 0;       // 0 none, 1 reduced paths, 2 flowSim
  std::chrono::steady_clock::time_point brownout_until_{};

  std::function<void(const QueryRequest&)> pre_execute_hook_;

  // Fat-tree memo (serve/exec.h): fat trees are immutable post-build, so
  // repeated queries skip topology construction.
  TopoMemo topos_;

  std::atomic<std::uint64_t> queries_received_{0};
  std::atomic<std::uint64_t> queries_ok_{0};
  std::atomic<std::uint64_t> queries_rejected_{0};
  std::atomic<std::uint64_t> queries_failed_{0};
  // Admitted-then-shed (priority displacement, expiry reap); disjoint from
  // queries_rejected_ (turned away at the admission gate). The serving
  // invariant: received = ok + rejected + failed + shed.
  std::atomic<std::uint64_t> queries_shed_{0};
  std::atomic<std::uint64_t> shed_by_reason_[kNumShedReasons] = {};
  std::atomic<std::uint64_t> brownout_queries_{0};
};

}  // namespace m3::serve
