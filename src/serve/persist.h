// Durable result caches: append-only, CRC32-framed segment files that spill
// LruCache contents under a --cache-dir so a daemon restart recovers its
// warm set instead of dropping into the cold-path regime.
//
// Design (DESIGN.md §14):
//  - CachePersister owns a background flusher thread. Call-sites enqueue
//    (kind, model digest, cache key, wire-encoded value) tuples at cache
//    insert time; the flusher batches them into delta segments on a fixed
//    interval, so write amplification is bounded by the insert rate, never
//    by cache size.
//  - Each segment is written with the checkpoint.cc atomic discipline:
//    temp file + fsync + rename + parent-dir fsync. A crash mid-flush
//    leaves either a complete segment or none under the real name.
//  - Every record is independently framed (magic | length | CRC32) and the
//    payload carries a 128-bit content hash of the value, recomputed at
//    load. Recovery tolerates arbitrary byte-level damage: a torn write,
//    truncated tail, bit flip, or hostile length field skips the bad record
//    (or the remainder of the segment) with a typed counter — it never
//    throws out of Recover() and never yields a corrupt value.
//  - Cache keys are content hashes of the inputs and values are
//    deterministic functions of those inputs, so a fault-free recovered hit
//    is bitwise identical to a recompute — the same invariant as the
//    in-memory caches.
//  - Disk growth is bounded by segment-count retention (oldest segments
//    deleted past max_segments); these are caches, so dropping the oldest
//    spill is always safe.
//
// A pid-stamped flock-held LOCK file refuses directory sharing between
// daemons; the kernel releases it on any process death (including SIGKILL),
// so chaos restarts reacquire immediately.
#pragma once

#include <cstdint>

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "util/hash.h"
#include "util/status.h"

namespace m3::serve {

/// Fault-injection sites (see util/fault.h) for deterministic disk faults.
inline constexpr const char* kPersistFlushFaultSite = "persist/flush";
inline constexpr const char* kPersistWriteFaultSite = "persist/segment_write";
inline constexpr const char* kPersistReadFaultSite = "persist/segment_read";

/// Counters exported through ServerStatsWire (wire v4 additive fields).
struct PersistStats {
  std::uint64_t segments_loaded = 0;   // segments with a parseable header
  std::uint64_t entries_loaded = 0;    // records recovered into a cache
  std::uint64_t entries_flushed = 0;   // records durably written
  std::uint64_t records_corrupt = 0;   // records/segments skipped as damaged
  std::uint64_t digest_dropped = 0;    // records dropped on model mismatch
  std::uint64_t flush_backlog = 0;     // enqueued records awaiting a flush
  std::uint64_t flush_rounds = 0;      // flusher wakeups that wrote data
  std::uint64_t flush_failures = 0;    // flush/write rounds that failed
};

/// Which cache a persisted record belongs to. Values are on-disk ABI.
enum class CacheKind : std::uint8_t {
  kQuery = 1,       // EstimationService whole-query cache
  kPath = 2,        // EstimationService per-path cache
  kRouterPath = 3,  // m3d_router per-path result cache
};

/// Holds the flock on a cache directory's LOCK file. Move-only; releases
/// on destruction. The kernel drops the lock on process death, so a
/// SIGKILLed daemon never wedges its directory.
class CacheDirLock {
 public:
  CacheDirLock() = default;
  ~CacheDirLock() { Release(); }
  CacheDirLock(CacheDirLock&& o) noexcept : fd_(o.fd_), path_(std::move(o.path_)) {
    o.fd_ = -1;
  }
  CacheDirLock& operator=(CacheDirLock&& o) noexcept;
  CacheDirLock(const CacheDirLock&) = delete;
  CacheDirLock& operator=(const CacheDirLock&) = delete;

  bool held() const { return fd_ >= 0; }
  void Release();

 private:
  friend Status AcquireCacheDir(const std::string& dir, CacheDirLock* lock);
  int fd_ = -1;
  std::string path_;
};

/// Validates `dir` for use as a cache directory: creates it if missing
/// (like checkpoint.cc), probes writability, and takes an exclusive
/// pid-stamped flock on `dir`/LOCK. Returns kUnavailable with the holder's
/// pid if another live daemon owns the directory.
Status AcquireCacheDir(const std::string& dir, CacheDirLock* lock);

struct PersistOptions {
  std::string dir;                      // segment directory (required)
  double flush_interval_seconds = 2.0;  // flusher wakeup period
  std::size_t max_pending = 65536;      // enqueue bound; oldest dropped past it
  std::size_t max_segment_bytes = 8u << 20;  // split flush batches at this size
  std::size_t max_segments = 256;       // retention: delete oldest past this
};

/// Append-only segment writer + corruption-tolerant reader for cache
/// contents. One instance per daemon; thread-safe.
class CachePersister {
 public:
  explicit CachePersister(PersistOptions opts);
  ~CachePersister();
  CachePersister(const CachePersister&) = delete;
  CachePersister& operator=(const CachePersister&) = delete;

  /// Scans the directory for existing segments (to continue the sequence)
  /// and starts the background flusher thread.
  Status Start();

  /// Stops the flusher after a final drain flush. Idempotent.
  void Stop();

  /// Queues one cache entry for the next flush round. `value` is the
  /// wire-encoded cache value; `digest` identifies the model it was
  /// computed under. Never blocks on I/O; past max_pending the oldest
  /// queued record is dropped (it is only a cache).
  void Enqueue(CacheKind kind, const Hash128& digest, const Hash128& key,
               std::string value);

  /// Synchronously flushes everything queued. Test/shutdown hook.
  Status FlushNow();

  /// Outcome of offering one recovered record to the owning cache.
  enum class Recovered : std::uint8_t {
    kLoaded,          // decoded and inserted
    kDigestMismatch,  // model digest no longer matches the registry
    kCorrupt,         // framing was intact but the value failed to decode
  };
  using RecoverFn = std::function<Recovered(
      CacheKind kind, const Hash128& digest, const Hash128& key,
      const std::string& value)>;

  /// Replays every segment in sequence order through `fn`, tolerating
  /// arbitrary byte-level damage (typed counters, never throws). Safe to
  /// run concurrently with Enqueue/flushing: only segments present when
  /// Recover begins are replayed.
  void Recover(const RecoverFn& fn);

  PersistStats stats() const;
  const PersistOptions& options() const { return opts_; }

 private:
  struct Pending {
    CacheKind kind;
    Hash128 digest;
    Hash128 key;
    std::string value;
  };

  Status FlushLocked();  // caller holds flush_mu_
  Status WriteSegment(const std::string& body, std::uint64_t seq);
  void EnforceRetention();
  void FlusherLoop();

  PersistOptions opts_;

  mutable std::mutex mu_;  // guards pending_, stats_, next_seq_
  std::condition_variable cv_;
  std::deque<Pending> pending_;
  PersistStats stats_;
  std::uint64_t next_seq_ = 0;
  bool running_ = false;
  bool stop_ = false;

  std::mutex flush_mu_;  // serializes flush rounds (flusher vs FlushNow)
  std::thread flusher_;
};

}  // namespace m3::serve
