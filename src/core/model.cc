#include "core/model.h"

#include <limits>

#include "ml/checkpoint.h"
#include "util/fault.h"

namespace m3 {
namespace {

ml::TransformerConfig EncoderConfig(const M3ModelConfig& cfg) {
  ml::TransformerConfig tc;
  tc.input_dim = cfg.feat_dim;
  tc.d_model = cfg.d_model;
  tc.num_heads = cfg.num_heads;
  tc.num_layers = cfg.num_layers;
  tc.ff_dim = cfg.ff_dim;
  tc.max_seq = cfg.max_seq;
  return tc;
}

}  // namespace

M3Model::M3Model(const M3ModelConfig& cfg) : cfg_(cfg) {
  Rng rng(cfg.init_seed);
  Rng enc_rng = rng.Fork(1);
  Rng head_rng = rng.Fork(2);
  bg_encoder_ = ml::TransformerEncoder("bg", EncoderConfig(cfg), enc_rng);
  head_ = ml::Mlp("head", cfg.feat_dim + cfg.d_model + cfg.spec_dim, cfg.mlp_hidden,
                  cfg.out_dim, head_rng);
}

ml::Var M3Model::Forward(ml::Graph& g, const ml::Tensor& fg_feat, const ml::Tensor& bg_seq,
                         const ml::Tensor& spec, bool use_context) {
  // Upper bound on tape length: encoder prologue + per-block ops (which
  // grow with the head count) + the MLP head and loss nodes.
  g.Reserve(32 + static_cast<std::size_t>(cfg_.num_layers) *
                     (48 + 16 * static_cast<std::size_t>(cfg_.num_heads)));
  ml::Var ctx = use_context ? bg_encoder_.Encode(g, bg_seq)
                            : g.Input(ml::Tensor::Zeros(1, cfg_.d_model));
  ml::Var in = g.ConcatCols({g.Input(fg_feat), ctx, g.Input(spec)});
  return head_(g, in);
}

std::array<std::array<double, kNumPercentiles>, kNumOutputBuckets> M3Model::Predict(
    const ml::Tensor& fg_feat, const ml::Tensor& bg_seq, const ml::Tensor& spec,
    bool use_context, const ml::Tensor* baseline, int* num_nonfinite) {
  ml::Graph g;
  ml::Var out = Forward(g, fg_feat, bg_seq, spec, use_context);
  if (baseline != nullptr) out = g.Add(out, g.Input(*baseline));
  ml::Tensor raw = g.value(out);
  if (M3_FAULT_POINT_NAN("model/forward")) {
    // Fault injection: a poisoned forward pass, as a diverged or corrupted
    // model would produce. Callers must detect it via num_nonfinite.
    raw.Fill(std::numeric_limits<float>::quiet_NaN());
  }
  return DecodeOutput(raw, num_nonfinite);
}

std::vector<ml::Parameter*> M3Model::params() {
  std::vector<ml::Parameter*> out;
  bg_encoder_.CollectParams(out);
  head_.CollectParams(out);
  return out;
}

std::size_t M3Model::num_parameters() {
  std::size_t n = 0;
  for (const ml::Parameter* p : params()) n += p->value.size();
  return n;
}

void M3Model::Save(const std::string& path) { ml::SaveCheckpoint(path, params()); }
ml::CheckpointInfo M3Model::Load(const std::string& path) {
  return ml::LoadCheckpoint(path, params());
}

StatusOr<ml::CheckpointInfo> M3Model::TryLoad(const std::string& path) {
  try {
    return ml::LoadCheckpoint(path, params());
  } catch (const ml::CheckpointError& e) {
    return Status(e.code(), e.what()).Annotate("loading " + path);
  } catch (const std::exception& e) {
    return Status::Internal(e.what()).Annotate("loading " + path);
  }
}

}  // namespace m3
