// Network-wide aggregation (§3.5): per-size-bucket uniform pooling across
// the flow-count-weighted path sample, then a count-weighted mixture of the
// bucket distributions into a single network-wide slowdown CDF.
#pragma once

#include <array>
#include <vector>

#include "core/feature_map.h"
#include "workload/flow.h"

namespace m3 {

/// One sampled path's contribution: predicted slowdown percentiles and the
/// number of foreground flows per output bucket.
struct PathEstimate {
  std::array<std::array<double, kNumPercentiles>, kNumOutputBuckets> pct{};
  std::array<double, kNumOutputBuckets> counts{};
};

/// Network-wide per-bucket percentile vectors. Each path contributes its
/// 100 percentile values weighted by its per-bucket flow count (the path
/// sample itself is already flow-weighted, so pooling is uniform across
/// sample entries, weighted only within by bucket occupancy).
std::array<std::vector<double>, kNumOutputBuckets> AggregateBuckets(
    const std::vector<PathEstimate>& paths);

/// Count-weighted mixture of the bucket distributions: a single 100-point
/// percentile vector of the network-wide slowdown distribution.
std::vector<double> CombineBuckets(
    const std::array<std::vector<double>, kNumOutputBuckets>& bucket_pct,
    const std::array<double, kNumOutputBuckets>& total_counts);

/// Weighted percentile over (value, weight) pairs; p in [0, 100].
double WeightedPercentile(std::vector<std::pair<double, double>> weighted, double p);

// ----- ground-truth helpers (for comparisons) -----

/// Buckets raw per-flow results into the 4 output buckets.
std::array<std::vector<double>, kNumOutputBuckets> BucketSlowdowns(
    const std::vector<FlowResult>& results);

/// Per-bucket p-th percentile (0 for empty buckets).
std::array<double, kNumOutputBuckets> BucketPercentile(
    const std::array<std::vector<double>, kNumOutputBuckets>& buckets, double p);

}  // namespace m3
