#include "core/aggregate.h"

#include <algorithm>

#include "util/stats.h"

namespace m3 {

double WeightedPercentile(std::vector<std::pair<double, double>> weighted, double p) {
  if (weighted.empty()) return 0.0;
  std::sort(weighted.begin(), weighted.end());
  double total = 0.0;
  for (const auto& [v, w] : weighted) total += w;
  if (total <= 0.0) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 * total;
  double cum = 0.0;
  for (const auto& [v, w] : weighted) {
    cum += w;
    if (cum >= target) return v;
  }
  return weighted.back().first;
}

std::array<std::vector<double>, kNumOutputBuckets> AggregateBuckets(
    const std::vector<PathEstimate>& paths) {
  std::array<std::vector<double>, kNumOutputBuckets> out;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    std::vector<std::pair<double, double>> weighted;
    for (const PathEstimate& pe : paths) {
      const double w = pe.counts[static_cast<std::size_t>(b)];
      if (w <= 0.0) continue;
      for (int p = 0; p < kNumPercentiles; ++p) {
        weighted.emplace_back(pe.pct[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)],
                              w / kNumPercentiles);
      }
    }
    auto& pct = out[static_cast<std::size_t>(b)];
    pct.reserve(kNumPercentiles);
    if (weighted.empty()) continue;
    std::sort(weighted.begin(), weighted.end());
    double total = 0.0;
    for (const auto& [v, w] : weighted) total += w;
    // Single sweep for all 100 percentiles.
    double cum = 0.0;
    std::size_t idx = 0;
    for (int p = 1; p <= kNumPercentiles; ++p) {
      const double target = static_cast<double>(p) / 100.0 * total;
      while (idx < weighted.size() && cum + weighted[idx].second < target) {
        cum += weighted[idx].second;
        ++idx;
      }
      pct.push_back(weighted[std::min(idx, weighted.size() - 1)].first);
    }
  }
  return out;
}

std::vector<double> CombineBuckets(
    const std::array<std::vector<double>, kNumOutputBuckets>& bucket_pct,
    const std::array<double, kNumOutputBuckets>& total_counts) {
  std::vector<std::pair<double, double>> weighted;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    const auto& pct = bucket_pct[static_cast<std::size_t>(b)];
    const double w = total_counts[static_cast<std::size_t>(b)];
    if (pct.empty() || w <= 0.0) continue;
    for (double v : pct) weighted.emplace_back(v, w / static_cast<double>(pct.size()));
  }
  std::vector<double> out;
  out.reserve(kNumPercentiles);
  for (int p = 1; p <= kNumPercentiles; ++p) {
    out.push_back(WeightedPercentile(weighted, static_cast<double>(p)));
  }
  return out;
}

std::array<std::vector<double>, kNumOutputBuckets> BucketSlowdowns(
    const std::vector<FlowResult>& results) {
  std::array<std::vector<double>, kNumOutputBuckets> out;
  for (const FlowResult& r : results) {
    out[static_cast<std::size_t>(OutputBucketOf(r.size))].push_back(r.slowdown);
  }
  return out;
}

std::array<double, kNumOutputBuckets> BucketPercentile(
    const std::array<std::vector<double>, kNumOutputBuckets>& buckets, double p) {
  std::array<double, kNumOutputBuckets> out{};
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    out[static_cast<std::size_t>(b)] = Percentile(buckets[static_cast<std::size_t>(b)], p);
  }
  return out;
}

}  // namespace m3
