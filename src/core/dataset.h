// Training samples: flowSim features + ground-truth (packet simulator)
// slowdown distributions for path-level scenarios.
#pragma once

#include <cstdint>
#include <vector>

#include "core/feature_map.h"
#include "core/net_config.h"
#include "core/scenario.h"
#include "pktsim/config.h"
#include "util/status.h"

namespace m3 {

struct Sample {
  ml::Tensor fg_feat;  // [1, kFeatureDim]
  ml::Tensor bg_seq;   // [num_links, kFeatureDim]
  ml::Tensor spec;     // [1, kSpecDim]
  ml::Tensor target;    // [1, 400] log-slowdown (ground truth)
  ml::Tensor baseline;  // [1, 400] log-slowdown from flowSim (residual base)
  ml::Tensor mask;      // [1, 400]
  TargetDist gt;       // decoded ground truth (for evaluation)
  TargetDist flowsim;  // flowSim's own fg distribution (ablation baseline)
};

/// Extracts the model inputs from a scenario given flowSim results: the
/// foreground feature map and one background feature map per chain link
/// (flows whose span covers that link).
struct ScenarioFeatures {
  ml::Tensor fg_feat;
  ml::Tensor bg_seq;
  TargetDist flowsim_fg;  // flowSim's fg distribution
};
ScenarioFeatures ExtractFeatures(const PathScenario& scenario,
                                 const std::vector<FlowResult>& flowsim_results);

/// Runs flowSim + packet simulator on the scenario and assembles a sample.
Sample BuildSample(const PathScenario& scenario, const NetConfig& cfg);

struct DatasetOptions {
  int num_scenarios = 200;
  int num_fg = 800;          // fg flows per scenario (paper: 20000)
  // By default the per-scenario foreground count varies log-uniformly in
  // [num_fg/20, 2*num_fg] (sparse real paths, see SyntheticSpec::Sample);
  // set false for the paper's fixed-density setting.
  bool vary_num_fg = true;
  std::uint64_t seed = 7;
  unsigned num_threads = 0;  // scenario-level parallelism
};

/// Synthetic Table-2 training set: each scenario draws a fresh workload
/// spec and a fresh Table-4 network configuration. Throws on invalid
/// options or a generation failure; prefer MakeSyntheticDatasetOr at
/// service boundaries.
std::vector<Sample> MakeSyntheticDataset(const DatasetOptions& opts);

/// Status-returning variant: kInvalidArgument for bad options (checked
/// before any compute), kInternal if scenario generation fails.
StatusOr<std::vector<Sample>> MakeSyntheticDatasetOr(const DatasetOptions& opts);

}  // namespace m3
