// Training loop: minibatch Adam on L1 loss over the 400 percentile outputs
// (§3.4 step 8), with a held-out validation split.
//
// Crash safety: when `checkpoint_path` is set, the trainer periodically
// writes full-state checkpoints (parameters, Adam moments and step count,
// epoch counter, learning rate, shuffle RNG state) with last-K rotation, and
// `resume_from` restores that state so that an interrupted run continues
// bitwise identically to one that was never interrupted. A SIGINT/SIGTERM
// (after InstallGracefulShutdownHandlers) or RequestTrainStop() finishes the
// in-flight batch, saves a mid-epoch checkpoint, and returns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/model.h"

namespace m3 {

struct TrainOptions {
  int epochs = 40;
  int batch_size = 16;
  float lr = 1e-3f;
  int lr_decay_every = 30;      // halve the learning rate every N epochs
  float lr_decay_factor = 0.5f;
  double val_frac = 0.1;
  std::uint64_t seed = 5;
  bool use_context = true;   // false trains the "m3 w/o context" ablation
  bool use_baseline = true;  // false trains an absolute (non-residual) head
  bool verbose = false;
  // Worker cap for data-parallel batches (0 = full thread pool). Training
  // is deterministic for any value: gradients reduce in a fixed slot
  // order, so the final parameters are bitwise identical at any width.
  unsigned num_threads = 0;
  // When set, a full-state checkpoint is written here every
  // `checkpoint_every` epochs, on graceful stop, and at the end of
  // training. The previous `checkpoint_keep - 1` checkpoints are kept as
  // `path.1`, `path.2`, ... (newest first) so recovery can fall back past a
  // file truncated by a crash.
  std::string checkpoint_path;
  int checkpoint_every = 10;
  int checkpoint_keep = 3;
  // When set, restores the newest valid checkpoint in this path's rotation
  // chain (parameters, optimizer, epoch, LR, RNG) and continues training
  // from there. With the same samples and options, train(N) is bitwise
  // identical to train(k) -> crash -> resume -> train(N-k), including a
  // crash mid-epoch. The train/val split is re-derived from the seed stored
  // in the checkpoint, so `seed` here is ignored on resume.
  std::string resume_from;
};

struct TrainReport {
  std::vector<double> train_loss;  // per epoch actually run this call
  std::vector<double> val_loss;    // per epoch (empty if no val split)
  int start_epoch = 0;             // first epoch index run (> 0 on resume)
  bool interrupted = false;        // stopped early by a graceful-stop request
  std::string resumed_from;        // checkpoint file restored (empty if none)
};

/// Trains `model` on `samples`. If the training split is empty (no samples,
/// or val_frac rounds to everything), returns immediately with an empty
/// report instead of running degenerate epochs.
TrainReport TrainModel(M3Model& model, const std::vector<Sample>& samples,
                       const TrainOptions& opts);

/// Mean masked L1 loss of the model over a sample set (no training).
/// Samples are evaluated on pool workers; the result is deterministic
/// (per-sample losses are summed in index order).
double EvaluateLoss(M3Model& model, const std::vector<Sample>& samples,
                    bool use_context = true, bool use_baseline = true,
                    unsigned num_threads = 0);

/// Installs SIGINT/SIGTERM handlers that request a graceful training stop:
/// TrainModel finishes the batch in flight, saves a checkpoint (when
/// checkpoint_path is set), and returns with report.interrupted = true.
void InstallGracefulShutdownHandlers();

/// Programmatic equivalents of the signals, usable from tests/embedders.
/// The flag is sticky: clear it before starting a run that should not stop.
void RequestTrainStop();
void ClearTrainStop();
bool TrainStopRequested();

}  // namespace m3
