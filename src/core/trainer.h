// Training loop: minibatch Adam on L1 loss over the 400 percentile outputs
// (§3.4 step 8), with a held-out validation split.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/model.h"

namespace m3 {

struct TrainOptions {
  int epochs = 40;
  int batch_size = 16;
  float lr = 1e-3f;
  int lr_decay_every = 30;      // halve the learning rate every N epochs
  float lr_decay_factor = 0.5f;
  double val_frac = 0.1;
  std::uint64_t seed = 5;
  bool use_context = true;   // false trains the "m3 w/o context" ablation
  bool use_baseline = true;  // false trains an absolute (non-residual) head
  bool verbose = false;
  // Worker cap for data-parallel batches (0 = full thread pool). Training
  // is deterministic for any value: gradients reduce in a fixed slot
  // order, so the final parameters are bitwise identical at any width.
  unsigned num_threads = 0;
  // When set, the model is checkpointed here every `checkpoint_every`
  // epochs (and training can be resumed or interrupted safely).
  std::string checkpoint_path;
  int checkpoint_every = 10;
};

struct TrainReport {
  std::vector<double> train_loss;  // per epoch
  std::vector<double> val_loss;    // per epoch (empty if no val split)
};

TrainReport TrainModel(M3Model& model, const std::vector<Sample>& samples,
                       const TrainOptions& opts);

/// Mean masked L1 loss of the model over a sample set (no training).
/// Samples are evaluated on pool workers; the result is deterministic
/// (per-sample losses are summed in index order).
double EvaluateLoss(M3Model& model, const std::vector<Sample>& samples,
                    bool use_context = true, bool use_baseline = true,
                    unsigned num_threads = 0);

}  // namespace m3
