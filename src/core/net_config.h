// Encoding of network configuration + path specification into the model's
// spec feature vector (§3.4 step 5: BDP, CC protocol one-hot, protocol
// parameters, and path geometry).
#pragma once

#include "ml/tensor.h"
#include "pathdecomp/path_topology.h"
#include "pktsim/config.h"
#include "util/units.h"

namespace m3 {

constexpr int kSpecDim = 21;

/// Geometry of the foreground path, computed from a PathScenario.
struct PathSpecInfo {
  int num_links = 0;
  Ns base_rtt = 0;      // unloaded fg round trip
  Bytes bdp = 0;        // fg NIC rate x base_rtt
  Bpns min_rate = 0.0;  // fg path bottleneck rate
  double num_fg = 0.0;
};

PathSpecInfo ComputePathSpec(const PathScenario& scenario, const NetConfig& cfg);

/// [1, kSpecDim] normalized feature vector.
ml::Tensor EncodeSpec(const NetConfig& cfg, const PathSpecInfo& path);

}  // namespace m3
