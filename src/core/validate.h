// Input validation for the estimation pipeline. Every validator returns a
// precise kInvalidArgument Status — which field, which index, why — so a
// malformed query is rejected before any compute runs instead of crashing
// (or silently corrupting) a path worker deep inside the pipeline.
#pragma once

#include <vector>

#include "core/dataset.h"
#include "core/estimator.h"
#include "pathdecomp/path_topology.h"
#include "pktsim/config.h"
#include "topo/topology.h"
#include "util/status.h"
#include "workload/flow.h"

namespace m3 {

/// Structural soundness: at least one node, every link endpoint in range,
/// no self-loop links, positive finite rates, non-negative delays.
Status ValidateTopology(const Topology& topo);

/// Per-flow soundness against `topo`: positive sizes, non-negative and
/// monotonically non-decreasing arrivals, host endpoints, src != dst, a
/// connected route from src to dst, and a priority class in range.
Status ValidateFlows(const Topology& topo, const std::vector<Flow>& flows);

/// Sanity bounds on the Table-4 knobs: positive window/buffer within sane
/// magnitudes, mtu > hdr, consistent CC thresholds, finite parameters.
Status ValidateNetConfig(const NetConfig& cfg);

/// Estimator knobs: num_paths >= 1, finite non-negative deadline.
Status ValidateM3Options(const M3Options& opts);

/// Internal consistency of a materialized path scenario (parallel array
/// sizes, hop spans within [0, num_links)).
Status ValidatePathScenario(const PathScenario& scenario);

/// Dataset generation knobs: num_scenarios >= 1, num_fg >= 1.
Status ValidateDatasetOptions(const DatasetOptions& opts);

/// Everything RunM3/RunNs3Path/RunFlowSimOnly need checked up front.
Status ValidateEstimatorInputs(const Topology& topo, const std::vector<Flow>& flows,
                               const NetConfig& cfg, const M3Options& opts);

}  // namespace m3
