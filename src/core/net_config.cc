#include "core/net_config.h"

#include <cmath>

namespace m3 {

PathSpecInfo ComputePathSpec(const PathScenario& scenario, const NetConfig& cfg) {
  PathSpecInfo info;
  info.num_links = scenario.num_links;
  const Topology& topo = scenario.lot->topo();

  // The foreground route runs over the chain links 0..n-1.
  Route fg_route;
  fg_route.reserve(static_cast<std::size_t>(scenario.num_links));
  for (int i = 0; i < scenario.num_links; ++i) fg_route.push_back(scenario.lot->path_link(i));

  Ns rtt = 0;
  for (LinkId l : fg_route) {
    const Link& lk = topo.link(l);
    rtt += lk.delay + TransmissionTime(cfg.mtu + cfg.hdr, lk.rate);
    const LinkId rev = topo.ReverseLink(l);
    const Link& rlk = topo.link(rev);
    rtt += rlk.delay + TransmissionTime(cfg.hdr, rlk.rate);
  }
  info.base_rtt = rtt;
  info.min_rate = topo.RouteMinRate(fg_route);
  info.bdp = static_cast<Bytes>(topo.link(fg_route.front()).rate * static_cast<double>(rtt));
  info.num_fg = static_cast<double>(scenario.num_fg());
  return info;
}

ml::Tensor EncodeSpec(const NetConfig& cfg, const PathSpecInfo& path) {
  ml::Tensor spec(1, kSpecDim);
  int i = 0;
  // CC one-hot (4).
  for (int c = 0; c < kNumCcTypes; ++c) {
    spec.at(0, i++) = (static_cast<int>(cfg.cc) == c) ? 1.0f : 0.0f;
  }
  spec.at(0, i++) = static_cast<float>(cfg.init_window) / 30e3f;
  spec.at(0, i++) = static_cast<float>(cfg.buffer) / 500e3f;
  spec.at(0, i++) = cfg.pfc ? 1.0f : 0.0f;
  spec.at(0, i++) = static_cast<float>(cfg.dctcp_k) / 20e3f;
  spec.at(0, i++) = static_cast<float>(cfg.dcqcn_kmin) / 50e3f;
  spec.at(0, i++) = static_cast<float>(cfg.dcqcn_kmax) / 100e3f;
  spec.at(0, i++) = static_cast<float>(cfg.hpcc_eta);
  spec.at(0, i++) = static_cast<float>(cfg.hpcc_rate_ai_gbps);
  spec.at(0, i++) = static_cast<float>(cfg.timely_tlow) / 60e3f;
  spec.at(0, i++) = static_cast<float>(cfg.timely_thigh) / 150e3f;
  // Path geometry.
  spec.at(0, i++) = static_cast<float>(path.num_links) / 6.0f;
  spec.at(0, i++) = static_cast<float>(path.base_rtt) / 100e3f;
  spec.at(0, i++) = static_cast<float>(path.bdp) / 100e3f;
  spec.at(0, i++) = static_cast<float>(BpnsToGbps(path.min_rate)) / 40.0f;
  spec.at(0, i++) = static_cast<float>(std::log1p(path.num_fg) / 10.0);
  // Ratio of init window to BDP: the quantity that drives the Table 5
  // window-limited regime.
  spec.at(0, i++) = path.bdp > 0
                        ? static_cast<float>(static_cast<double>(cfg.init_window) /
                                             static_cast<double>(path.bdp))
                        : 0.0f;
  return spec;
}

}  // namespace m3
