#include "core/trainer.h"

#include <cstdio>
#include <numeric>

namespace m3 {

double EvaluateLoss(M3Model& model, const std::vector<Sample>& samples, bool use_context,
                    bool use_baseline) {
  if (samples.empty()) return 0.0;
  double total = 0.0;
  for (const Sample& s : samples) {
    ml::Graph g;
    ml::Var pred = model.Forward(g, s.fg_feat, s.bg_seq, s.spec, use_context);
    if (use_baseline) pred = g.Add(pred, g.Input(s.baseline));
    const ml::Var loss = g.L1Loss(pred, g.Input(s.target), g.Input(s.mask));
    total += static_cast<double>(g.value(loss).at(0, 0));
  }
  return total / static_cast<double>(samples.size());
}

TrainReport TrainModel(M3Model& model, const std::vector<Sample>& samples,
                       const TrainOptions& opts) {
  Rng rng(opts.seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Deterministic shuffle for the train/val split.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  const std::size_t val_count =
      static_cast<std::size_t>(opts.val_frac * static_cast<double>(samples.size()));
  std::vector<std::size_t> val_idx(order.begin(), order.begin() + static_cast<long>(val_count));
  std::vector<std::size_t> train_idx(order.begin() + static_cast<long>(val_count), order.end());

  std::vector<Sample> val_set;
  val_set.reserve(val_idx.size());
  for (std::size_t i : val_idx) val_set.push_back(samples[i]);

  ml::Adam adam(model.params(), {.lr = opts.lr,
                                 .beta1 = 0.9f,
                                 .beta2 = 0.999f,
                                 .eps = 1e-8f,
                                 .grad_clip = 1.0f});

  TrainReport report;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    if (opts.lr_decay_every > 0 && epoch > 0 && epoch % opts.lr_decay_every == 0) {
      adam.set_lr(adam.options().lr * opts.lr_decay_factor);
    }
    // Shuffle the training order each epoch.
    for (std::size_t i = train_idx.size(); i > 1; --i) {
      std::swap(train_idx[i - 1], train_idx[rng.NextBounded(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < train_idx.size();
         start += static_cast<std::size_t>(opts.batch_size)) {
      const std::size_t end =
          std::min(train_idx.size(), start + static_cast<std::size_t>(opts.batch_size));
      double batch_loss = 0.0;
      for (std::size_t k = start; k < end; ++k) {
        const Sample& s = samples[train_idx[k]];
        ml::Graph g;
        ml::Var pred = model.Forward(g, s.fg_feat, s.bg_seq, s.spec, opts.use_context);
        if (opts.use_baseline) pred = g.Add(pred, g.Input(s.baseline));
        const ml::Var loss = g.L1Loss(pred, g.Input(s.target), g.Input(s.mask));
        batch_loss += static_cast<double>(g.value(loss).at(0, 0));
        g.Backward(loss);
      }
      adam.ScaleGrads(1.0f / static_cast<float>(end - start));
      adam.Step();
      epoch_loss += batch_loss / static_cast<double>(end - start);
      ++batches;
    }
    report.train_loss.push_back(batches ? epoch_loss / static_cast<double>(batches) : 0.0);
    if (!val_set.empty()) {
      report.val_loss.push_back(
          EvaluateLoss(model, val_set, opts.use_context, opts.use_baseline));
    }
    if (opts.verbose) {
      std::printf("epoch %3d  train %.4f  val %.4f\n", epoch, report.train_loss.back(),
                  val_set.empty() ? 0.0 : report.val_loss.back());
      std::fflush(stdout);
    }
    if (!opts.checkpoint_path.empty() && opts.checkpoint_every > 0 &&
        (epoch + 1) % opts.checkpoint_every == 0) {
      model.Save(opts.checkpoint_path);
    }
  }
  return report;
}

}  // namespace m3
