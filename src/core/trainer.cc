#include "core/trainer.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <numeric>
#include <unordered_map>

#include "ml/kernels.h"
#include "util/parallel.h"

namespace m3 {
namespace {

// Per-slot parameter-gradient buffers for data-parallel minibatches.
//
// A batch is split into kGradSlots contiguous sample ranges ("slots"); each
// slot accumulates its samples' gradients, in sample order, into its own
// buffers, and the slots are then reduced into Parameter::grad in slot
// order. Both orders depend only on the batch layout — never on thread
// count or scheduling — so training is bitwise deterministic for any
// number of workers (float addition is not associative, so a fixed
// reduction tree is the only way to get identical parameters).
constexpr std::size_t kGradSlots = 8;

class GradSlots {
 public:
  explicit GradSlots(const std::vector<ml::Parameter*>& params) : params_(params) {
    index_.reserve(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) index_[params[i]] = i;
    for (auto& slot : grads_) {
      slot.resize(params.size());
      for (std::size_t i = 0; i < params.size(); ++i) {
        slot[i] = ml::Tensor::Zeros(params[i]->value.rows(), params[i]->value.cols());
      }
    }
  }

  /// Gradient sink for Graph::Backward routing parameter grads to `slot`.
  std::function<ml::Tensor&(ml::Parameter&)> SinkFor(std::size_t slot) {
    return [this, slot](ml::Parameter& p) -> ml::Tensor& {
      return grads_[slot][index_.at(&p)];
    };
  }

  /// Reduces all slots into Parameter::grad in slot order (scaled by
  /// `alpha`, the minibatch 1/n factor) and zeroes the buffers for the
  /// next batch. Single pass over memory per parameter; the element-wise
  /// addition order is the slot order, so the result is bitwise identical
  /// to summing the slots one at a time.
  void ReduceIntoParams(std::size_t slots_used, float alpha) {
    std::array<float*, kGradSlots> srcs;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      for (std::size_t s = 0; s < slots_used; ++s) srcs[s] = grads_[s][i].data();
      ml::kernels::ReduceScaleAndZero(params_[i]->grad.data(), srcs.data(), slots_used,
                                      grads_[0][i].size(), alpha);
    }
  }

 private:
  const std::vector<ml::Parameter*>& params_;
  std::unordered_map<const ml::Parameter*, std::size_t> index_;
  std::array<std::vector<ml::Tensor>, kGradSlots> grads_;
};

double SampleLoss(M3Model& model, const Sample& s, bool use_context, bool use_baseline,
                  ml::Graph& g, ml::Var* loss_out) {
  ml::Var pred = model.Forward(g, s.fg_feat, s.bg_seq, s.spec, use_context);
  if (use_baseline) pred = g.Add(pred, g.Input(s.baseline));
  const ml::Var loss = g.L1Loss(pred, g.Input(s.target), g.Input(s.mask));
  if (loss_out != nullptr) *loss_out = loss;
  return static_cast<double>(g.value(loss).at(0, 0));
}

}  // namespace

double EvaluateLoss(M3Model& model, const std::vector<Sample>& samples, bool use_context,
                    bool use_baseline, unsigned num_threads) {
  if (samples.empty()) return 0.0;
  // Forward passes only touch shared state read-only, so samples can run
  // on pool workers; per-sample losses are summed in index order so the
  // result is independent of thread count.
  std::vector<double> losses(samples.size());
  ParallelFor(
      samples.size(),
      [&](std::size_t i) {
        ml::Graph g;
        losses[i] = SampleLoss(model, samples[i], use_context, use_baseline, g, nullptr);
      },
      num_threads);
  double total = 0.0;
  for (double l : losses) total += l;
  return total / static_cast<double>(samples.size());
}

TrainReport TrainModel(M3Model& model, const std::vector<Sample>& samples,
                       const TrainOptions& opts) {
  Rng rng(opts.seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Deterministic shuffle for the train/val split.
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.NextBounded(i)]);
  }
  const std::size_t val_count =
      static_cast<std::size_t>(opts.val_frac * static_cast<double>(samples.size()));
  std::vector<std::size_t> val_idx(order.begin(), order.begin() + static_cast<long>(val_count));
  std::vector<std::size_t> train_idx(order.begin() + static_cast<long>(val_count), order.end());

  std::vector<Sample> val_set;
  val_set.reserve(val_idx.size());
  for (std::size_t i : val_idx) val_set.push_back(samples[i]);

  ml::Adam adam(model.params(), {.lr = opts.lr,
                                 .beta1 = 0.9f,
                                 .beta2 = 0.999f,
                                 .eps = 1e-8f,
                                 .grad_clip = 1.0f});
  const std::vector<ml::Parameter*> params = model.params();
  GradSlots slots(params);
  std::vector<double> sample_loss(static_cast<std::size_t>(opts.batch_size));

  TrainReport report;
  for (int epoch = 0; epoch < opts.epochs; ++epoch) {
    if (opts.lr_decay_every > 0 && epoch > 0 && epoch % opts.lr_decay_every == 0) {
      adam.set_lr(adam.options().lr * opts.lr_decay_factor);
    }
    // Shuffle the training order each epoch.
    for (std::size_t i = train_idx.size(); i > 1; --i) {
      std::swap(train_idx[i - 1], train_idx[rng.NextBounded(i)]);
    }
    double epoch_loss = 0.0;
    std::size_t epoch_samples = 0;
    for (std::size_t start = 0; start < train_idx.size();
         start += static_cast<std::size_t>(opts.batch_size)) {
      const std::size_t end =
          std::min(train_idx.size(), start + static_cast<std::size_t>(opts.batch_size));
      const std::size_t b = end - start;
      // Slot layout depends only on the batch size: slot s owns the
      // contiguous samples [s*per, (s+1)*per). Each slot runs its samples
      // sequentially on one worker; slots run concurrently.
      const std::size_t slots_used = std::min(b, kGradSlots);
      const std::size_t per = (b + slots_used - 1) / slots_used;
      ParallelFor(
          slots_used,
          [&](std::size_t s) {
            const std::size_t k_begin = std::min(b, s * per);
            const std::size_t k_end = std::min(b, (s + 1) * per);
            for (std::size_t k = k_begin; k < k_end; ++k) {
              const Sample& smp = samples[train_idx[start + k]];
              ml::Graph g;
              g.set_param_grad_sink(slots.SinkFor(s));
              ml::Var loss;
              sample_loss[k] =
                  SampleLoss(model, smp, opts.use_context, opts.use_baseline, g, &loss);
              g.Backward(loss);
            }
          },
          opts.num_threads);
      slots.ReduceIntoParams(slots_used, 1.0f / static_cast<float>(b));
      adam.Step();
      // Per-sample batch loss summed in sample order (deterministic), and
      // epoch loss weighted by batch size so unequal final batches do not
      // skew the reported per-sample mean.
      for (std::size_t k = 0; k < b; ++k) epoch_loss += sample_loss[k];
      epoch_samples += b;
    }
    report.train_loss.push_back(
        epoch_samples ? epoch_loss / static_cast<double>(epoch_samples) : 0.0);
    if (!val_set.empty()) {
      report.val_loss.push_back(EvaluateLoss(model, val_set, opts.use_context,
                                             opts.use_baseline, opts.num_threads));
    }
    if (opts.verbose) {
      std::printf("epoch %3d  train %.4f  val %.4f\n", epoch, report.train_loss.back(),
                  val_set.empty() ? 0.0 : report.val_loss.back());
      std::fflush(stdout);
    }
    if (!opts.checkpoint_path.empty() && opts.checkpoint_every > 0 &&
        (epoch + 1) % opts.checkpoint_every == 0) {
      model.Save(opts.checkpoint_path);
    }
  }
  return report;
}

}  // namespace m3
