#include "core/trainer.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <numeric>
#include <unordered_map>

#include "ml/checkpoint.h"
#include "ml/kernels.h"
#include "util/parallel.h"

namespace m3 {
namespace {

// Graceful-stop flag, set from the signal handler (or RequestTrainStop) and
// polled by the trainer at batch boundaries. Lock-free atomics are
// async-signal-safe.
std::atomic<bool> g_train_stop{false};

void StopSignalHandler(int /*signum*/) { g_train_stop.store(true, std::memory_order_relaxed); }

// Per-slot parameter-gradient buffers for data-parallel minibatches.
//
// A batch is split into kGradSlots contiguous sample ranges ("slots"); each
// slot accumulates its samples' gradients, in sample order, into its own
// buffers, and the slots are then reduced into Parameter::grad in slot
// order. Both orders depend only on the batch layout — never on thread
// count or scheduling — so training is bitwise deterministic for any
// number of workers (float addition is not associative, so a fixed
// reduction tree is the only way to get identical parameters).
constexpr std::size_t kGradSlots = 8;

class GradSlots {
 public:
  explicit GradSlots(const std::vector<ml::Parameter*>& params) : params_(params) {
    index_.reserve(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) index_[params[i]] = i;
    for (auto& slot : grads_) {
      slot.resize(params.size());
      for (std::size_t i = 0; i < params.size(); ++i) {
        slot[i] = ml::Tensor::Zeros(params[i]->value.rows(), params[i]->value.cols());
      }
    }
  }

  /// Gradient sink for Graph::Backward routing parameter grads to `slot`.
  std::function<ml::Tensor&(ml::Parameter&)> SinkFor(std::size_t slot) {
    return [this, slot](ml::Parameter& p) -> ml::Tensor& {
      return grads_[slot][index_.at(&p)];
    };
  }

  /// Reduces all slots into Parameter::grad in slot order (scaled by
  /// `alpha`, the minibatch 1/n factor) and zeroes the buffers for the
  /// next batch. Single pass over memory per parameter; the element-wise
  /// addition order is the slot order, so the result is bitwise identical
  /// to summing the slots one at a time.
  void ReduceIntoParams(std::size_t slots_used, float alpha) {
    std::array<float*, kGradSlots> srcs;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      for (std::size_t s = 0; s < slots_used; ++s) srcs[s] = grads_[s][i].data();
      ml::kernels::ReduceScaleAndZero(params_[i]->grad.data(), srcs.data(), slots_used,
                                      grads_[0][i].size(), alpha);
    }
  }

 private:
  const std::vector<ml::Parameter*>& params_;
  std::unordered_map<const ml::Parameter*, std::size_t> index_;
  std::array<std::vector<ml::Tensor>, kGradSlots> grads_;
};

// Fisher-Yates with the project's deterministic Rng; used for both the
// train/val split and the per-epoch reshuffles, so the entire shuffle
// history is a pure function of the seed and the number of shuffles — which
// is what lets resume reconstruct the permutation state.
void ShuffleIndices(std::vector<std::size_t>& idx, Rng& rng) {
  for (std::size_t i = idx.size(); i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.NextBounded(i)]);
  }
}

double SampleLoss(M3Model& model, const Sample& s, bool use_context, bool use_baseline,
                  ml::Graph& g, ml::Var* loss_out) {
  ml::Var pred = model.Forward(g, s.fg_feat, s.bg_seq, s.spec, use_context);
  if (use_baseline) pred = g.Add(pred, g.Input(s.baseline));
  const ml::Var loss = g.L1Loss(pred, g.Input(s.target), g.Input(s.mask));
  if (loss_out != nullptr) *loss_out = loss;
  return static_cast<double>(g.value(loss).at(0, 0));
}

}  // namespace

double EvaluateLoss(M3Model& model, const std::vector<Sample>& samples, bool use_context,
                    bool use_baseline, unsigned num_threads) {
  if (samples.empty()) return 0.0;
  // Forward passes only touch shared state read-only, so samples can run
  // on pool workers; per-sample losses are summed in index order so the
  // result is independent of thread count.
  std::vector<double> losses(samples.size());
  ParallelFor(
      samples.size(),
      [&](std::size_t i) {
        ml::Graph g;
        losses[i] = SampleLoss(model, samples[i], use_context, use_baseline, g, nullptr);
      },
      num_threads);
  double total = 0.0;
  for (double l : losses) total += l;
  return total / static_cast<double>(samples.size());
}

void InstallGracefulShutdownHandlers() {
  std::signal(SIGINT, StopSignalHandler);
  std::signal(SIGTERM, StopSignalHandler);
}

void RequestTrainStop() { g_train_stop.store(true, std::memory_order_relaxed); }
void ClearTrainStop() { g_train_stop.store(false, std::memory_order_relaxed); }
bool TrainStopRequested() { return g_train_stop.load(std::memory_order_relaxed); }

TrainReport TrainModel(M3Model& model, const std::vector<Sample>& samples,
                       const TrainOptions& opts) {
  TrainReport report;
  const std::vector<ml::Parameter*> params = model.params();
  const int keep = std::max(1, opts.checkpoint_keep);

  ml::Adam adam(params, {.lr = opts.lr,
                         .beta1 = 0.9f,
                         .beta2 = 0.999f,
                         .eps = 1e-8f,
                         .grad_clip = 1.0f});

  // Resume: restore parameters + Adam moments + trainer state before the
  // split is computed, because the stored seed decides the split.
  ml::CheckpointExtra restored;
  bool resumed = false;
  if (!opts.resume_from.empty()) {
    const ml::RecoveredCheckpoint rec =
        ml::LoadNewestValidCheckpoint(opts.resume_from, params, keep);
    report.resumed_from = rec.path;
    restored = rec.info.extra;
    if (restored.has_optimizer) adam.set_step(restored.adam_step);
    if (restored.has_trainer) {
      adam.set_lr(restored.lr);
      resumed = true;
    }
  }

  const std::uint64_t split_seed = resumed ? restored.split_seed : opts.seed;
  Rng rng(split_seed);
  std::vector<std::size_t> order(samples.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Deterministic shuffle for the train/val split.
  ShuffleIndices(order, rng);
  const std::size_t val_count = std::min(
      samples.size(),
      static_cast<std::size_t>(opts.val_frac * static_cast<double>(samples.size())));
  std::vector<std::size_t> val_idx(order.begin(), order.begin() + static_cast<long>(val_count));
  std::vector<std::size_t> train_idx(order.begin() + static_cast<long>(val_count), order.end());
  if (train_idx.empty()) return report;  // nothing to train on: report nothing

  std::vector<Sample> val_set;
  val_set.reserve(val_idx.size());
  for (std::size_t i : val_idx) val_set.push_back(samples[i]);

  int start_epoch = 0;
  std::size_t resume_batch_offset = 0;
  if (resumed) {
    start_epoch = restored.epochs_done;
    resume_batch_offset = static_cast<std::size_t>(restored.batch_offset);
    // Rebuild train_idx's permutation history: each completed epoch
    // shuffled it once, plus once more if the interrupted epoch had already
    // started. The stored RNG state (captured at save time) is then
    // installed as the authoritative continuation point.
    const int shuffles = start_epoch + (resume_batch_offset > 0 ? 1 : 0);
    for (int e = 0; e < shuffles; ++e) ShuffleIndices(train_idx, rng);
    rng.RestoreState(restored.shuffle_rng);
  }
  report.start_epoch = start_epoch;

  GradSlots slots(params);
  std::vector<double> sample_loss(static_cast<std::size_t>(opts.batch_size));

  // Snapshot full training state. `epochs_done`/`batch_offset` name the
  // exact point in the schedule; everything else makes the continuation
  // bitwise identical.
  const auto save_state = [&](int epochs_done, std::size_t batch_offset,
                              double partial_loss, std::size_t partial_samples) {
    ml::CheckpointExtra extra;
    extra.has_optimizer = true;
    extra.adam_step = adam.step();
    extra.has_trainer = true;
    extra.epochs_done = epochs_done;
    extra.batch_offset = static_cast<std::int64_t>(batch_offset);
    extra.partial_epoch_loss = partial_loss;
    extra.partial_epoch_samples = partial_samples;
    extra.lr = adam.options().lr;
    extra.split_seed = split_seed;
    extra.shuffle_rng = rng.SaveState();
    ml::SaveCheckpointRotating(opts.checkpoint_path, params, &extra, keep);
  };

  for (int epoch = start_epoch; epoch < opts.epochs; ++epoch) {
    // On a mid-epoch resume the first epoch's LR decay and shuffle already
    // happened before the checkpoint was taken; redoing either would fork
    // the schedule.
    const bool mid_epoch_resume = epoch == start_epoch && resume_batch_offset > 0;
    if (!mid_epoch_resume) {
      if (opts.lr_decay_every > 0 && epoch > 0 && epoch % opts.lr_decay_every == 0) {
        adam.set_lr(adam.options().lr * opts.lr_decay_factor);
      }
      // Shuffle the training order each epoch.
      ShuffleIndices(train_idx, rng);
    }
    double epoch_loss = mid_epoch_resume ? restored.partial_epoch_loss : 0.0;
    std::size_t epoch_samples =
        mid_epoch_resume ? static_cast<std::size_t>(restored.partial_epoch_samples) : 0;
    for (std::size_t start = mid_epoch_resume ? resume_batch_offset : 0;
         start < train_idx.size(); start += static_cast<std::size_t>(opts.batch_size)) {
      const std::size_t end =
          std::min(train_idx.size(), start + static_cast<std::size_t>(opts.batch_size));
      const std::size_t b = end - start;
      // Slot layout depends only on the batch size: slot s owns the
      // contiguous samples [s*per, (s+1)*per). Each slot runs its samples
      // sequentially on one worker; slots run concurrently.
      const std::size_t slots_used = std::min(b, kGradSlots);
      const std::size_t per = (b + slots_used - 1) / slots_used;
      ParallelFor(
          slots_used,
          [&](std::size_t s) {
            const std::size_t k_begin = std::min(b, s * per);
            const std::size_t k_end = std::min(b, (s + 1) * per);
            for (std::size_t k = k_begin; k < k_end; ++k) {
              const Sample& smp = samples[train_idx[start + k]];
              ml::Graph g;
              g.set_param_grad_sink(slots.SinkFor(s));
              ml::Var loss;
              sample_loss[k] =
                  SampleLoss(model, smp, opts.use_context, opts.use_baseline, g, &loss);
              g.Backward(loss);
            }
          },
          opts.num_threads);
      slots.ReduceIntoParams(slots_used, 1.0f / static_cast<float>(b));
      adam.Step();
      // Per-sample batch loss summed in sample order (deterministic), and
      // epoch loss weighted by batch size so unequal final batches do not
      // skew the reported per-sample mean.
      for (std::size_t k = 0; k < b; ++k) epoch_loss += sample_loss[k];
      epoch_samples += b;
      if (TrainStopRequested() && end < train_idx.size()) {
        // Graceful stop with the epoch unfinished: the in-flight batch has
        // fully applied, so checkpoint exactly here and bail out.
        if (!opts.checkpoint_path.empty()) {
          save_state(epoch, end, epoch_loss, epoch_samples);
        }
        report.interrupted = true;
        return report;
      }
    }
    report.train_loss.push_back(
        epoch_samples ? epoch_loss / static_cast<double>(epoch_samples) : 0.0);
    if (!val_set.empty()) {
      report.val_loss.push_back(EvaluateLoss(model, val_set, opts.use_context,
                                             opts.use_baseline, opts.num_threads));
    }
    if (opts.verbose) {
      std::printf("epoch %3d  train %.4f  val %.4f\n", epoch, report.train_loss.back(),
                  val_set.empty() ? 0.0 : report.val_loss.back());
      std::fflush(stdout);
    }
    // A stop that landed on the epoch's final batch is handled here, at the
    // boundary, so the saved state is a clean epoch boundary.
    const bool stop_at_boundary = TrainStopRequested();
    const bool last_epoch = epoch + 1 == opts.epochs;
    const bool periodic = opts.checkpoint_every > 0 && (epoch + 1) % opts.checkpoint_every == 0;
    if (!opts.checkpoint_path.empty() && (periodic || last_epoch || stop_at_boundary)) {
      save_state(epoch + 1, 0, 0.0, 0);
    }
    if (stop_at_boundary && !last_epoch) {
      report.interrupted = true;
      return report;
    }
  }
  return report;
}

}  // namespace m3
