#include "core/dataset.h"

#include <stdexcept>

#include "core/validate.h"
#include "util/parallel.h"

namespace m3 {

ScenarioFeatures ExtractFeatures(const PathScenario& scenario,
                                 const std::vector<FlowResult>& flowsim_results) {
  const int n = scenario.num_links;
  std::vector<SizedSlowdown> fg;
  std::vector<std::vector<SizedSlowdown>> bg_per_link(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    const SizedSlowdown s{flowsim_results[i].size, flowsim_results[i].slowdown};
    if (scenario.is_fg[i]) {
      fg.push_back(s);
    } else {
      for (int h = scenario.entry_hop[i]; h < scenario.exit_hop[i]; ++h) {
        bg_per_link[static_cast<std::size_t>(h)].push_back(s);
      }
    }
  }

  ScenarioFeatures out;
  out.fg_feat = FlattenFeature(BuildFeatureMap(fg));
  out.flowsim_fg = BuildTarget(fg);
  out.bg_seq = ml::Tensor(n, kFeatureDim);
  for (int h = 0; h < n; ++h) {
    const ml::Tensor row = FlattenFeature(BuildFeatureMap(bg_per_link[static_cast<std::size_t>(h)]));
    for (int j = 0; j < kFeatureDim; ++j) out.bg_seq.at(h, j) = row.at(0, j);
  }
  return out;
}

Sample BuildSample(const PathScenario& scenario, const NetConfig& cfg) {
  const std::vector<FlowResult> fluid = RunPathFlowSim(scenario);
  const std::vector<FlowResult> truth = RunPathPktSim(scenario, cfg);

  ScenarioFeatures feats = ExtractFeatures(scenario, fluid);
  const TargetDist gt = BuildTarget(ForegroundSlowdowns(scenario, truth));

  Sample s;
  s.fg_feat = std::move(feats.fg_feat);
  s.bg_seq = std::move(feats.bg_seq);
  s.spec = EncodeSpec(cfg, ComputePathSpec(scenario, cfg));
  s.target = TargetToTensor(gt);
  s.baseline = TargetToTensor(feats.flowsim_fg);
  s.mask = TargetMask(gt);
  s.gt = gt;
  s.flowsim = feats.flowsim_fg;
  return s;
}

std::vector<Sample> MakeSyntheticDataset(const DatasetOptions& opts) {
  StatusOr<std::vector<Sample>> samples = MakeSyntheticDatasetOr(opts);
  if (!samples.ok()) throw std::runtime_error(samples.status().ToString());
  return std::move(samples).value();
}

StatusOr<std::vector<Sample>> MakeSyntheticDatasetOr(const DatasetOptions& opts) {
  M3_RETURN_IF_ERROR(ValidateDatasetOptions(opts));
  Rng rng(opts.seed);
  // Pre-draw all specs/configs so generation order is independent of
  // thread scheduling.
  std::vector<SyntheticSpec> specs;
  std::vector<NetConfig> cfgs;
  specs.reserve(static_cast<std::size_t>(opts.num_scenarios));
  cfgs.reserve(static_cast<std::size_t>(opts.num_scenarios));
  for (int i = 0; i < opts.num_scenarios; ++i) {
    Rng wl_rng = rng.Fork(static_cast<std::uint64_t>(2 * i));
    Rng cfg_rng = rng.Fork(static_cast<std::uint64_t>(2 * i + 1));
    SyntheticSpec spec = SyntheticSpec::Sample(wl_rng, opts.num_fg);
    if (!opts.vary_num_fg) spec.num_fg = opts.num_fg;
    specs.push_back(spec);
    cfgs.push_back(NetConfig::Sample(cfg_rng));
  }

  std::vector<Sample> samples(static_cast<std::size_t>(opts.num_scenarios));
  try {
    ParallelFor(
        static_cast<std::size_t>(opts.num_scenarios),
        [&](std::size_t i) {
          const PathScenario scenario = BuildSyntheticScenario(specs[i]);
          samples[i] = BuildSample(scenario, cfgs[i]);
        },
        opts.num_threads);
  } catch (const std::exception& e) {
    return Status::Internal(e.what()).Annotate("dataset generation");
  }
  return samples;
}

}  // namespace m3
