#include "core/estimator.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <functional>
#include <mutex>
#include <optional>

#include "core/dataset.h"
#include "core/validate.h"
#include "util/fault.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace m3 {
namespace {

using Clock = std::chrono::steady_clock;

// Raised by a path estimator when the model forward emitted NaN/inf raw
// outputs; classified separately from generic exceptions in the report.
class NonFiniteOutput : public std::runtime_error {
 public:
  explicit NonFiniteOutput(int count)
      : std::runtime_error("non-finite model output (" + std::to_string(count) +
                           " of " + std::to_string(kNumOutputBuckets * kNumPercentiles) +
                           " values)") {}
};

std::array<double, kNumOutputBuckets> FgBucketCounts(const PathScenario& scenario) {
  std::array<double, kNumOutputBuckets> counts{};
  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    if (scenario.is_fg[i]) {
      counts[static_cast<std::size_t>(OutputBucketOf(scenario.flows[i].size))] += 1.0;
    }
  }
  return counts;
}

PathEstimate FromTarget(const TargetDist& t) {
  PathEstimate pe;
  pe.pct = t.pct;
  pe.counts = t.counts;
  return pe;
}

// Post-success check for estimates built from raw simulator slowdowns (the
// model path reports non-finite raw outputs itself, pre-clamp).
int CountNonFinite(const PathEstimate& pe) {
  int n = 0;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    if (pe.counts[static_cast<std::size_t>(b)] <= 0.0) continue;
    for (int p = 0; p < kNumPercentiles; ++p) {
      if (!std::isfinite(pe.pct[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)])) ++n;
    }
  }
  return n;
}

using PathFn = std::function<PathEstimate(const PathScenario&)>;

// Runs sampling + per-path estimation + aggregation with per-path fault
// isolation. Each path climbs the degradation ladder independently:
// primary attempt -> retry (opts.max_attempts total) -> `fallback` (when
// provided; nullptr means failures drop the path) -> dropped. Dropped paths
// keep zero bucket counts, so aggregation reweights around them.
NetworkEstimate RunPathPipeline(const Topology& topo, const std::vector<Flow>& flows,
                                const NetConfig& cfg, const M3Options& opts,
                                const PathFn& estimate_path, const PathFn& fallback) {
  const auto t0 = Clock::now();
  NetworkEstimate est;

  if (Status v = ValidateEstimatorInputs(topo, flows, cfg, opts); !v.ok()) {
    est.status = v;
    est.degradation.errors_validation = 1;
    est.degradation.first_error = v.ToString();
    est.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    return est;
  }

  PathDecomposition decomp(topo, flows);
  Rng rng(opts.seed);
  const std::vector<std::size_t> sample = SamplePaths(decomp, opts.num_paths, rng);
  est.paths.resize(sample.size());

  // Slot filter (distributed serving): `work` lists the sample slots this
  // run estimates — all of them by default, or the caller's subset. The
  // sampling above stays identical either way, so shards given disjoint
  // subsets of the same (seed, num_paths) query reproduce exactly the slots
  // a single host would have computed.
  std::vector<std::size_t> work;
  if (opts.sample_slots != nullptr) {
    std::vector<bool> seen(sample.size(), false);
    work.reserve(opts.sample_slots->size());
    for (std::uint32_t slot : *opts.sample_slots) {
      if (slot >= sample.size() || seen[slot]) {
        est.status = Status::InvalidArgument(
            "sample_slots: " + std::to_string(slot) +
            (slot < sample.size() ? " duplicated" : " out of range [0, " +
                                                        std::to_string(sample.size()) + ")"));
        est.degradation.errors_validation = 1;
        est.degradation.first_error = est.status.ToString();
        est.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
        return est;
      }
      seen[slot] = true;
      work.push_back(slot);
    }
  } else {
    work.resize(sample.size());
    for (std::size_t i = 0; i < work.size(); ++i) work[i] = i;
  }

  // Shared failure bookkeeping. Outcomes are computed lock-free per path;
  // the report is updated under one short lock per path.
  std::mutex mu;
  DegradationReport rep;
  std::size_t first_error_idx = sample.size();
  Status first_error_status;
  enum CancelCause : int { kNone = 0, kStrict = 1, kDeadline = 2 };
  std::atomic<int> cancel{kNone};

  const bool has_deadline = opts.deadline_seconds > 0.0;
  auto past_deadline = [&] {
    return has_deadline &&
           std::chrono::duration<double>(Clock::now() - t0).count() >= opts.deadline_seconds;
  };

  ParallelFor(
      work.size(),
      [&](std::size_t w) {
        const std::size_t i = work[w];
        // Cooperative cancellation: a strict-mode fault or an expired
        // deadline stops remaining paths before they start.
        if (cancel.load(std::memory_order_relaxed) != kNone || past_deadline()) {
          const bool deadline = cancel.load(std::memory_order_relaxed) != kStrict;
          if (deadline) cancel.store(kDeadline, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mu);
          rep.paths_dropped += 1;
          if (deadline) rep.errors_deadline += 1;
          return;
        }

        std::optional<PathScenario> scenario;
        auto ensure_scenario = [&]() -> const PathScenario& {
          if (!scenario.has_value()) {
            scenario = BuildPathScenario(topo, flows, decomp, sample[i]);
            if (Status v = ValidatePathScenario(*scenario); !v.ok()) {
              throw std::runtime_error(v.ToString());
            }
          }
          return *scenario;
        };

        PathEstimate result{};
        int exceptions = 0, nonfinite = 0;
        Status last_fail;
        auto attempt = [&](const PathFn& fn) {
          try {
            PathEstimate pe = fn(ensure_scenario());
            if (const int bad = CountNonFinite(pe); bad > 0) throw NonFiniteOutput(bad);
            result = pe;
            return true;
          } catch (const NonFiniteOutput& e) {
            nonfinite += 1;
            last_fail = Status::DataLoss(e.what());
          } catch (const std::exception& e) {
            exceptions += 1;
            last_fail = Status::Internal(e.what());
          }
          return false;
        };

        // Per-path reuse: a cache hit bypasses the whole ladder. Hook
        // failures are swallowed — the cache accelerates, it never fails a
        // path (see PathCacheHooks).
        bool cached = false;
        if (opts.path_cache != nullptr && opts.path_cache->lookup) {
          try {
            if (std::optional<PathEstimate> hit = opts.path_cache->lookup(ensure_scenario())) {
              result = *hit;
              cached = true;
            }
          } catch (...) {
          }
        }

        bool ok = cached;
        int attempts = 0;
        for (; attempts < opts.max_attempts && !ok; ++attempts) ok = attempt(estimate_path);
        if (ok && !cached && opts.path_cache != nullptr && opts.path_cache->insert) {
          try {
            opts.path_cache->insert(*scenario, result);
          } catch (...) {
          }
        }
        bool degraded = false, dropped = false;
        if (!ok) {
          if (opts.strict) {
            cancel.store(kStrict, std::memory_order_relaxed);
            dropped = true;
          } else if (fallback != nullptr && !past_deadline()) {
            degraded = attempt(fallback);
            dropped = !degraded;
          } else {
            dropped = true;
          }
        }
        est.paths[i] = dropped ? PathEstimate{} : result;

        std::lock_guard<std::mutex> lock(mu);
        rep.paths_ok += ok ? 1 : 0;
        rep.paths_cached += cached ? 1 : 0;
        rep.paths_retried += attempts > 1 ? 1 : 0;
        rep.paths_degraded += degraded ? 1 : 0;
        rep.paths_dropped += dropped ? 1 : 0;
        rep.errors_exception += exceptions;
        rep.errors_nonfinite += nonfinite;
        if (!last_fail.ok() && i < first_error_idx) {
          first_error_idx = i;
          first_error_status = last_fail;
        }
      },
      opts.num_threads);

  if (first_error_idx < sample.size()) {
    rep.first_error = "path " + std::to_string(first_error_idx) + ": " +
                      first_error_status.ToString();
  }

  rep.clamped_values = ClampPathEstimates(est.paths);
  est.bucket_pct = AggregateBuckets(est.paths);
  for (const PathEstimate& pe : est.paths) {
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      est.total_counts[static_cast<std::size_t>(b)] += pe.counts[static_cast<std::size_t>(b)];
    }
  }
  est.combined_pct = CombineBuckets(est.bucket_pct, est.total_counts);

  est.degradation = rep;
  const int cause = cancel.load(std::memory_order_relaxed);
  if (opts.strict && cause == kStrict) {
    est.status = first_error_status.Annotate(
        "strict: path " + std::to_string(first_error_idx) + " failed");
  } else if (cause == kDeadline) {
    est.status = Status::DeadlineExceeded(
        "deadline of " + std::to_string(opts.deadline_seconds) + "s expired; " +
        rep.ToString());
  } else if (rep.Degraded()) {
    est.status = Status::Degraded(rep.ToString());
  }
  est.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return est;
}

}  // namespace

std::string DegradationReport::ToString() const {
  std::string s = "paths: " + std::to_string(paths_ok) + " ok" +
                  (paths_cached > 0 ? " (" + std::to_string(paths_cached) + " cached)"
                                    : std::string()) +
                  ", " +
                  std::to_string(paths_retried) + " retried, " +
                  std::to_string(paths_degraded) + " degraded, " +
                  std::to_string(paths_dropped) + " dropped (" +
                  std::to_string(errors_exception) + " exceptions, " +
                  std::to_string(errors_nonfinite) + " non-finite, " +
                  std::to_string(errors_deadline) + " deadline); " +
                  std::to_string(clamped_values) + " values clamped";
  if (brownout_level > 0 || paths_brownout > 0) {
    s += "; brownout level " + std::to_string(brownout_level) + " (" +
         std::to_string(paths_brownout) + " paths reduced)";
  }
  return s;
}

long long ClampPathEstimates(std::vector<PathEstimate>& paths) {
  long long clamped = 0;
  for (PathEstimate& pe : paths) {
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (pe.counts[static_cast<std::size_t>(b)] <= 0.0) continue;
      for (int p = 0; p < kNumPercentiles; ++p) {
        double& v = pe.pct[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)];
        // flowSim legitimately emits slowdowns a few ulps below 1.0
        // (fct/ideal rounding), so finite values in (0, 1) pass through
        // unchanged — clamping them would break bitwise reproducibility of
        // fault-free runs. Only non-finite and physically impossible
        // (<= 0) values are corrupt.
        if (!std::isfinite(v) || v <= 0.0) {
          v = 1.0;
          ++clamped;
        }
      }
    }
  }
  return clamped;
}

std::array<double, kNumOutputBuckets> NetworkEstimate::BucketP99() const {
  std::array<double, kNumOutputBuckets> out{};
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    const auto& pct = bucket_pct[static_cast<std::size_t>(b)];
    if (!pct.empty()) out[static_cast<std::size_t>(b)] = pct[98];
  }
  return out;
}

NetworkEstimate RunM3(const Topology& topo, const std::vector<Flow>& flows,
                      const NetConfig& cfg, M3Model& model, const M3Options& opts) {
  const PathFn primary = [&](const PathScenario& scenario) {
    M3_FAULT_POINT("estimator/path_forward");
    const std::vector<FlowResult> fluid = RunPathFlowSim(scenario);
    const ScenarioFeatures feats = ExtractFeatures(scenario, fluid);
    const ml::Tensor spec = EncodeSpec(cfg, ComputePathSpec(scenario, cfg));
    const ml::Tensor baseline = TargetToTensor(feats.flowsim_fg);
    PathEstimate pe;
    int bad_raw = 0;
    pe.pct = model.Predict(feats.fg_feat, feats.bg_seq, spec, opts.use_context, &baseline,
                           &bad_raw);
    if (bad_raw > 0) throw NonFiniteOutput(bad_raw);
    pe.counts = FgBucketCounts(scenario);
    return pe;
  };
  // Degraded mode: the flowSim-only estimate (no ML correction) for this
  // path — strictly worse accuracy, but always an answer.
  const PathFn fallback = [&](const PathScenario& scenario) {
    const std::vector<FlowResult> res = RunPathFlowSim(scenario);
    return FromTarget(BuildTarget(ForegroundSlowdowns(scenario, res)));
  };
  return RunPathPipeline(topo, flows, cfg, opts, primary, fallback);
}

NetworkEstimate RunNs3Path(const Topology& topo, const std::vector<Flow>& flows,
                           const NetConfig& cfg, const M3Options& opts) {
  const PathFn primary = [&](const PathScenario& scenario) {
    M3_FAULT_POINT("estimator/path_pktsim");
    const std::vector<FlowResult> res = RunPathPktSim(scenario, cfg);
    return FromTarget(BuildTarget(ForegroundSlowdowns(scenario, res)));
  };
  const PathFn fallback = [&](const PathScenario& scenario) {
    const std::vector<FlowResult> res = RunPathFlowSim(scenario);
    return FromTarget(BuildTarget(ForegroundSlowdowns(scenario, res)));
  };
  return RunPathPipeline(topo, flows, cfg, opts, primary, fallback);
}

NetworkEstimate RunFlowSimOnly(const Topology& topo, const std::vector<Flow>& flows,
                               const NetConfig& cfg, const M3Options& opts) {
  const PathFn primary = [&](const PathScenario& scenario) {
    const std::vector<FlowResult> res = RunPathFlowSim(scenario);
    return FromTarget(BuildTarget(ForegroundSlowdowns(scenario, res)));
  };
  // flowSim is itself the degradation floor: no further fallback.
  return RunPathPipeline(topo, flows, cfg, opts, primary, nullptr);
}

NetworkEstimate SummarizeGroundTruth(const std::vector<FlowResult>& results) {
  NetworkEstimate est;
  const auto buckets = BucketSlowdowns(results);
  std::vector<std::pair<double, double>> all;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    auto sorted = buckets[static_cast<std::size_t>(b)];
    est.total_counts[static_cast<std::size_t>(b)] = static_cast<double>(sorted.size());
    est.bucket_pct[static_cast<std::size_t>(b)] = PercentileVector100(std::move(sorted));
  }
  std::vector<double> slowdowns;
  slowdowns.reserve(results.size());
  for (const FlowResult& r : results) slowdowns.push_back(r.slowdown);
  est.combined_pct = PercentileVector100(std::move(slowdowns));
  return est;
}

}  // namespace m3
