#include "core/estimator.h"

#include <chrono>
#include <functional>

#include "core/dataset.h"
#include "util/parallel.h"
#include "util/stats.h"

namespace m3 {
namespace {

using Clock = std::chrono::steady_clock;

std::array<double, kNumOutputBuckets> FgBucketCounts(const PathScenario& scenario) {
  std::array<double, kNumOutputBuckets> counts{};
  for (std::size_t i = 0; i < scenario.flows.size(); ++i) {
    if (scenario.is_fg[i]) {
      counts[static_cast<std::size_t>(OutputBucketOf(scenario.flows[i].size))] += 1.0;
    }
  }
  return counts;
}

PathEstimate FromTarget(const TargetDist& t) {
  PathEstimate pe;
  pe.pct = t.pct;
  pe.counts = t.counts;
  return pe;
}

NetworkEstimate RunPathPipeline(
    const Topology& topo, const std::vector<Flow>& flows, const M3Options& opts,
    const std::function<PathEstimate(const PathScenario&)>& estimate_path) {
  const auto t0 = Clock::now();

  PathDecomposition decomp(topo, flows);
  Rng rng(opts.seed);
  const std::vector<std::size_t> sample = SamplePaths(decomp, opts.num_paths, rng);

  NetworkEstimate est;
  est.paths.resize(sample.size());
  ParallelFor(
      sample.size(),
      [&](std::size_t i) {
        const PathScenario scenario = BuildPathScenario(topo, flows, decomp, sample[i]);
        est.paths[i] = estimate_path(scenario);
      },
      opts.num_threads);

  est.bucket_pct = AggregateBuckets(est.paths);
  for (const PathEstimate& pe : est.paths) {
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      est.total_counts[static_cast<std::size_t>(b)] += pe.counts[static_cast<std::size_t>(b)];
    }
  }
  est.combined_pct = CombineBuckets(est.bucket_pct, est.total_counts);
  est.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  return est;
}

}  // namespace

std::array<double, kNumOutputBuckets> NetworkEstimate::BucketP99() const {
  std::array<double, kNumOutputBuckets> out{};
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    const auto& pct = bucket_pct[static_cast<std::size_t>(b)];
    if (!pct.empty()) out[static_cast<std::size_t>(b)] = pct[98];
  }
  return out;
}

NetworkEstimate RunM3(const Topology& topo, const std::vector<Flow>& flows,
                      const NetConfig& cfg, M3Model& model, const M3Options& opts) {
  return RunPathPipeline(topo, flows, opts, [&](const PathScenario& scenario) {
    const std::vector<FlowResult> fluid = RunPathFlowSim(scenario);
    const ScenarioFeatures feats = ExtractFeatures(scenario, fluid);
    const ml::Tensor spec = EncodeSpec(cfg, ComputePathSpec(scenario, cfg));
    const ml::Tensor baseline = TargetToTensor(feats.flowsim_fg);
    PathEstimate pe;
    pe.pct = model.Predict(feats.fg_feat, feats.bg_seq, spec, opts.use_context, &baseline);
    pe.counts = FgBucketCounts(scenario);
    return pe;
  });
}

NetworkEstimate RunNs3Path(const Topology& topo, const std::vector<Flow>& flows,
                           const NetConfig& cfg, const M3Options& opts) {
  return RunPathPipeline(topo, flows, opts, [&](const PathScenario& scenario) {
    const std::vector<FlowResult> res = RunPathPktSim(scenario, cfg);
    return FromTarget(BuildTarget(ForegroundSlowdowns(scenario, res)));
  });
}

NetworkEstimate RunFlowSimOnly(const Topology& topo, const std::vector<Flow>& flows,
                               const NetConfig& cfg, const M3Options& opts) {
  (void)cfg;
  return RunPathPipeline(topo, flows, opts, [&](const PathScenario& scenario) {
    const std::vector<FlowResult> res = RunPathFlowSim(scenario);
    return FromTarget(BuildTarget(ForegroundSlowdowns(scenario, res)));
  });
}

NetworkEstimate SummarizeGroundTruth(const std::vector<FlowResult>& results) {
  NetworkEstimate est;
  const auto buckets = BucketSlowdowns(results);
  std::vector<std::pair<double, double>> all;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    auto sorted = buckets[static_cast<std::size_t>(b)];
    est.total_counts[static_cast<std::size_t>(b)] = static_cast<double>(sorted.size());
    est.bucket_pct[static_cast<std::size_t>(b)] = PercentileVector100(std::move(sorted));
  }
  std::vector<double> slowdowns;
  slowdowns.reserve(results.size());
  for (const FlowResult& r : results) slowdowns.push_back(r.slowdown);
  est.combined_pct = PercentileVector100(std::move(slowdowns));
  return est;
}

}  // namespace m3
