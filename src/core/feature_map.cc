#include "core/feature_map.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace m3 {

const std::array<Bytes, kNumSizeBuckets - 1>& SizeBucketEdges() {
  static const std::array<Bytes, kNumSizeBuckets - 1> edges{
      250, 500, 1000, 2000, 5000, 10000, 20000, 30000, 50000};
  return edges;
}

const std::array<Bytes, kNumOutputBuckets - 1>& OutputBucketEdges() {
  static const std::array<Bytes, kNumOutputBuckets - 1> edges{1000, 10000, 50000};
  return edges;
}

int SizeBucketOf(Bytes size) {
  const auto& edges = SizeBucketEdges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (size <= edges[i]) return static_cast<int>(i);
  }
  return kNumSizeBuckets - 1;
}

int OutputBucketOf(Bytes size) {
  const auto& edges = OutputBucketEdges();
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (size <= edges[i]) return static_cast<int>(i);
  }
  return kNumOutputBuckets - 1;
}

FeatureMap BuildFeatureMap(const std::vector<SizedSlowdown>& flows) {
  std::array<std::vector<double>, kNumSizeBuckets> buckets;
  for (const SizedSlowdown& f : flows) {
    buckets[static_cast<std::size_t>(SizeBucketOf(f.size))].push_back(f.slowdown);
  }
  FeatureMap map;
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    auto& v = buckets[static_cast<std::size_t>(b)];
    map.counts[static_cast<std::size_t>(b)] = static_cast<double>(v.size());
    if (v.empty()) continue;
    const std::vector<double> pct = PercentileVector100(std::move(v));
    for (int p = 0; p < kNumPercentiles; ++p) {
      map.pct[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)] = pct[static_cast<std::size_t>(p)];
    }
  }
  return map;
}

ml::Tensor FlattenFeature(const FeatureMap& map) {
  ml::Tensor out(1, kFeatureDim);
  int idx = 0;
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    for (int p = 0; p < kNumPercentiles; ++p) {
      const double s = map.pct[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)];
      out.at(0, idx++) = s > 0.0 ? static_cast<float>(std::log(s)) : 0.0f;
    }
  }
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    out.at(0, idx++) =
        static_cast<float>(std::log1p(map.counts[static_cast<std::size_t>(b)]) / 10.0);
  }
  return out;
}

TargetDist BuildTarget(const std::vector<SizedSlowdown>& flows) {
  std::array<std::vector<double>, kNumOutputBuckets> buckets;
  for (const SizedSlowdown& f : flows) {
    buckets[static_cast<std::size_t>(OutputBucketOf(f.size))].push_back(f.slowdown);
  }
  TargetDist t;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    auto& v = buckets[static_cast<std::size_t>(b)];
    t.counts[static_cast<std::size_t>(b)] = static_cast<double>(v.size());
    if (v.empty()) continue;
    t.has[static_cast<std::size_t>(b)] = true;
    const std::vector<double> pct = PercentileVector100(std::move(v));
    for (int p = 0; p < kNumPercentiles; ++p) {
      t.pct[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)] = pct[static_cast<std::size_t>(p)];
    }
  }
  return t;
}

ml::Tensor TargetToTensor(const TargetDist& t) {
  ml::Tensor out(1, kNumOutputBuckets * kNumPercentiles);
  int idx = 0;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    for (int p = 0; p < kNumPercentiles; ++p) {
      const double s = t.pct[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)];
      out.at(0, idx++) = s > 0.0 ? static_cast<float>(std::log(s)) : 0.0f;
    }
  }
  return out;
}

ml::Tensor TargetMask(const TargetDist& t) {
  ml::Tensor out(1, kNumOutputBuckets * kNumPercentiles);
  int idx = 0;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    const float m = t.has[static_cast<std::size_t>(b)] ? 1.0f : 0.0f;
    for (int p = 0; p < kNumPercentiles; ++p) out.at(0, idx++) = m;
  }
  return out;
}

std::array<std::array<double, kNumPercentiles>, kNumOutputBuckets> DecodeOutput(
    const ml::Tensor& out, int* num_nonfinite) {
  std::array<std::array<double, kNumPercentiles>, kNumOutputBuckets> dist{};
  int bad = 0;
  int idx = 0;
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    for (int p = 0; p < kNumPercentiles; ++p) {
      const double raw = std::exp(static_cast<double>(out.at(0, idx++)));
      // NaN would silently survive std::max (max(1.0, NaN) == 1.0); make the
      // clamp explicit and count what it absorbed.
      if (!std::isfinite(raw)) ++bad;
      dist[static_cast<std::size_t>(b)][static_cast<std::size_t>(p)] =
          std::isfinite(raw) ? std::max(1.0, raw) : 1.0;
    }
    // Percentile vectors are monotone by construction; enforce it on the
    // decoded prediction as well.
    for (int p = 1; p < kNumPercentiles; ++p) {
      auto& row = dist[static_cast<std::size_t>(b)];
      row[static_cast<std::size_t>(p)] =
          std::max(row[static_cast<std::size_t>(p)], row[static_cast<std::size_t>(p - 1)]);
    }
  }
  if (num_nonfinite != nullptr) *num_nonfinite = bad;
  return dist;
}

}  // namespace m3
