#include "core/validate.h"

#include <cmath>
#include <string>

namespace m3 {
namespace {

std::string Idx(const char* array, std::size_t i, const char* field) {
  return std::string(array) + "[" + std::to_string(i) + "]." + field;
}

Status BadField(std::string field, const std::string& value, const char* why) {
  return Status::InvalidArgument(std::move(field) + ": " + value + " (" + why + ")");
}

}  // namespace

Status ValidateTopology(const Topology& topo) {
  if (topo.num_nodes() == 0) {
    return Status::InvalidArgument("topology: no nodes");
  }
  const NodeId n = static_cast<NodeId>(topo.num_nodes());
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& lk = topo.link(static_cast<LinkId>(l));
    if (lk.src < 0 || lk.src >= n) {
      return BadField(Idx("topology.link", l, "src"), std::to_string(lk.src),
                      "dangling node id");
    }
    if (lk.dst < 0 || lk.dst >= n) {
      return BadField(Idx("topology.link", l, "dst"), std::to_string(lk.dst),
                      "dangling node id");
    }
    if (lk.src == lk.dst) {
      return BadField(Idx("topology.link", l, "dst"), std::to_string(lk.dst),
                      "self-loop link");
    }
    if (!std::isfinite(lk.rate) || lk.rate <= 0.0) {
      return BadField(Idx("topology.link", l, "rate"), std::to_string(lk.rate),
                      "must be finite and > 0");
    }
    if (lk.delay < 0) {
      return BadField(Idx("topology.link", l, "delay"), std::to_string(lk.delay),
                      "must be >= 0");
    }
  }
  return Status::Ok();
}

Status ValidateFlows(const Topology& topo, const std::vector<Flow>& flows) {
  if (flows.empty()) {
    return Status::InvalidArgument("flows: empty (nothing to estimate)");
  }
  const NodeId n = static_cast<NodeId>(topo.num_nodes());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& f = flows[i];
    if (f.size <= 0) {
      return BadField(Idx("flows", i, "size"), std::to_string(f.size), "must be > 0");
    }
    if (f.arrival < 0) {
      return BadField(Idx("flows", i, "arrival"), std::to_string(f.arrival),
                      "must be >= 0");
    }
    if (i > 0 && f.arrival < flows[i - 1].arrival) {
      return BadField(Idx("flows", i, "arrival"), std::to_string(f.arrival),
                      "arrivals must be non-decreasing");
    }
    if (f.src < 0 || f.src >= n) {
      return BadField(Idx("flows", i, "src"), std::to_string(f.src), "dangling node id");
    }
    if (f.dst < 0 || f.dst >= n) {
      return BadField(Idx("flows", i, "dst"), std::to_string(f.dst), "dangling node id");
    }
    if (f.src == f.dst) {
      return BadField(Idx("flows", i, "dst"), std::to_string(f.dst),
                      "src and dst must differ");
    }
    if (topo.kind(f.src) != NodeKind::kHost) {
      return BadField(Idx("flows", i, "src"), std::to_string(f.src), "not a host");
    }
    if (topo.kind(f.dst) != NodeKind::kHost) {
      return BadField(Idx("flows", i, "dst"), std::to_string(f.dst), "not a host");
    }
    if (f.priority >= kNumPriorities) {
      return BadField(Idx("flows", i, "priority"), std::to_string(f.priority),
                      "priority class out of range");
    }
    if (!topo.ValidateRoute(f.src, f.dst, f.path)) {
      return Status::InvalidArgument(
          Idx("flows", i, "path") + ": not a connected src->dst chain (" +
          std::to_string(f.path.size()) + " links)");
    }
  }
  return Status::Ok();
}

Status ValidateNetConfig(const NetConfig& cfg) {
  constexpr Bytes kMaxSane = 1024 * kMB;  // way past any Table-4 setting
  if (cfg.mtu <= 0 || cfg.mtu > kMaxSane) {
    return BadField("net_config.mtu", std::to_string(cfg.mtu), "must be in (0, 1GB]");
  }
  if (cfg.hdr < 0 || cfg.hdr >= cfg.mtu) {
    return BadField("net_config.hdr", std::to_string(cfg.hdr),
                    "must be in [0, mtu)");
  }
  if (cfg.init_window <= 0 || cfg.init_window > kMaxSane) {
    return BadField("net_config.init_window", std::to_string(cfg.init_window),
                    "must be in (0, 1GB]");
  }
  if (cfg.buffer < cfg.mtu || cfg.buffer > kMaxSane) {
    return BadField("net_config.buffer", std::to_string(cfg.buffer),
                    "must be in [mtu, 1GB]");
  }
  if (cfg.dctcp_k <= 0) {
    return BadField("net_config.dctcp_k", std::to_string(cfg.dctcp_k), "must be > 0");
  }
  if (cfg.dcqcn_kmin <= 0 || cfg.dcqcn_kmax < cfg.dcqcn_kmin) {
    return BadField("net_config.dcqcn_kmin/kmax",
                    std::to_string(cfg.dcqcn_kmin) + "/" + std::to_string(cfg.dcqcn_kmax),
                    "need 0 < kmin <= kmax");
  }
  if (!std::isfinite(cfg.hpcc_eta) || cfg.hpcc_eta <= 0.0 || cfg.hpcc_eta > 1.0) {
    return BadField("net_config.hpcc_eta", std::to_string(cfg.hpcc_eta),
                    "must be in (0, 1]");
  }
  if (!std::isfinite(cfg.hpcc_rate_ai_gbps) || cfg.hpcc_rate_ai_gbps <= 0.0) {
    return BadField("net_config.hpcc_rate_ai_gbps", std::to_string(cfg.hpcc_rate_ai_gbps),
                    "must be finite and > 0");
  }
  if (cfg.timely_tlow <= 0 || cfg.timely_thigh < cfg.timely_tlow) {
    return BadField("net_config.timely_tlow/thigh",
                    std::to_string(cfg.timely_tlow) + "/" + std::to_string(cfg.timely_thigh),
                    "need 0 < tlow <= thigh");
  }
  return Status::Ok();
}

Status ValidateM3Options(const M3Options& opts) {
  if (opts.num_paths < 1 || opts.num_paths > 10'000'000) {
    return BadField("options.num_paths", std::to_string(opts.num_paths),
                    "must be in [1, 10000000]");
  }
  if (!std::isfinite(opts.deadline_seconds) || opts.deadline_seconds < 0.0) {
    return BadField("options.deadline_seconds", std::to_string(opts.deadline_seconds),
                    "must be finite and >= 0 (0 = unbounded)");
  }
  if (opts.max_attempts < 1 || opts.max_attempts > 16) {
    return BadField("options.max_attempts", std::to_string(opts.max_attempts),
                    "must be in [1, 16]");
  }
  return Status::Ok();
}

Status ValidatePathScenario(const PathScenario& scenario) {
  if (scenario.lot == nullptr) {
    return Status::InvalidArgument("scenario.lot: null");
  }
  if (scenario.num_links < 1) {
    return BadField("scenario.num_links", std::to_string(scenario.num_links),
                    "must be >= 1");
  }
  const std::size_t n = scenario.flows.size();
  if (scenario.is_fg.size() != n || scenario.orig_id.size() != n ||
      scenario.entry_hop.size() != n || scenario.exit_hop.size() != n) {
    return Status::InvalidArgument(
        "scenario: parallel arrays disagree on flow count (flows=" + std::to_string(n) +
        " is_fg=" + std::to_string(scenario.is_fg.size()) +
        " orig_id=" + std::to_string(scenario.orig_id.size()) +
        " entry_hop=" + std::to_string(scenario.entry_hop.size()) +
        " exit_hop=" + std::to_string(scenario.exit_hop.size()) + ")");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (scenario.entry_hop[i] < 0 || scenario.exit_hop[i] > scenario.num_links ||
        scenario.entry_hop[i] >= scenario.exit_hop[i]) {
      return Status::InvalidArgument(
          Idx("scenario.flows", i, "hop_span") + ": [" +
          std::to_string(scenario.entry_hop[i]) + ", " +
          std::to_string(scenario.exit_hop[i]) + ") not a non-empty span within [0, " +
          std::to_string(scenario.num_links) + "]");
    }
  }
  return Status::Ok();
}

Status ValidateDatasetOptions(const DatasetOptions& opts) {
  if (opts.num_scenarios < 1) {
    return BadField("dataset.num_scenarios", std::to_string(opts.num_scenarios),
                    "must be >= 1");
  }
  if (opts.num_fg < 1) {
    return BadField("dataset.num_fg", std::to_string(opts.num_fg), "must be >= 1");
  }
  return Status::Ok();
}

Status ValidateEstimatorInputs(const Topology& topo, const std::vector<Flow>& flows,
                               const NetConfig& cfg, const M3Options& opts) {
  M3_RETURN_IF_ERROR(ValidateTopology(topo));
  M3_RETURN_IF_ERROR(ValidateFlows(topo, flows));
  M3_RETURN_IF_ERROR(ValidateNetConfig(cfg));
  M3_RETURN_IF_ERROR(ValidateM3Options(opts));
  return Status::Ok();
}

}  // namespace m3
