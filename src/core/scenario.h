// Synthetic path-level training scenarios (paper Table 2): parking-lot
// topologies of 2/4/6 links with parametric flow-size distributions,
// log-normal burstiness, and a target maximum link load.
#pragma once

#include <cstdint>

#include "pathdecomp/path_topology.h"
#include "util/rng.h"
#include "workload/size_dist.h"

namespace m3 {

struct SyntheticSpec {
  int num_links = 4;  // 2, 4, or 6 (Table 2 "path length")
  ParametricFamily family = ParametricFamily::kLogNormal;
  double theta = 20000.0;    // size parameter: 5k (small) to 50k (large)
  double sigma = 1.5;        // burstiness: 1 (low) to 2 (high)
  double max_load = 0.5;     // 20% to 80%
  int num_fg = 2000;         // paper uses 20000; scaled for CPU training
  double bg_ratio = 2.0;     // background flows per foreground flow
  std::uint64_t seed = 1;

  /// Uniform draw over the Table 2 space (path length, family, theta,
  /// sigma, load). The foreground flow count is drawn log-uniformly in
  /// [num_fg/20, 2*num_fg] so sparse paths are represented.
  static SyntheticSpec Sample(Rng& rng, int num_fg = 2000);
};

/// Builds the parking-lot scenario: foreground flows span the whole chain;
/// background flows enter/leave at random interior spans; arrivals are
/// scaled so the busiest chain link sits at `max_load`.
PathScenario BuildSyntheticScenario(const SyntheticSpec& spec);

}  // namespace m3
