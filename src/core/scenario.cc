#include "core/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workload/arrivals.h"

namespace m3 {

SyntheticSpec SyntheticSpec::Sample(Rng& rng, int num_fg) {
  SyntheticSpec s;
  const int lengths[3] = {2, 4, 6};
  s.num_links = lengths[rng.NextBounded(3)];
  s.family = static_cast<ParametricFamily>(rng.NextBounded(4));
  s.theta = rng.Uniform(5e3, 50e3);
  s.sigma = rng.Uniform(1.0, 2.0);
  s.max_load = rng.Uniform(0.2, 0.8);
  // Real decomposed paths carry anywhere from a handful to thousands of
  // foreground flows (Fig. 2d); vary the count log-uniformly so the model
  // sees sparse paths too (the paper notes degradation on few-flow paths).
  const double lo = std::log(std::max(10.0, num_fg / 20.0));
  const double hi = std::log(2.0 * num_fg);
  s.num_fg = static_cast<int>(std::exp(rng.Uniform(lo, hi)));
  s.bg_ratio = rng.Uniform(0.5, 4.0);
  s.seed = rng.NextU64();
  return s;
}

PathScenario BuildSyntheticScenario(const SyntheticSpec& spec) {
  if (spec.num_links < 1 || spec.num_fg < 1) {
    throw std::invalid_argument("BuildSyntheticScenario: bad spec");
  }
  Rng rng(spec.seed);
  Rng size_rng = rng.Fork(1);
  Rng span_rng = rng.Fork(2);
  Rng arrival_rng = rng.Fork(3);
  Rng shape_rng = rng.Fork(4);

  const int n = spec.num_links;
  // Link rates: ends are host-like 10G; with probability 1/2 the interior
  // runs at 40G (core links), else the whole chain is 10G.
  const Bpns host_rate = GbpsToBpns(10.0);
  const bool fast_core = n > 2 && shape_rng.NextDouble() < 0.5;
  std::vector<Bpns> rates(static_cast<std::size_t>(n), host_rate);
  if (fast_core) {
    for (int i = 1; i + 1 < n; ++i) rates[static_cast<std::size_t>(i)] = GbpsToBpns(40.0);
  }
  std::vector<Ns> delays(static_cast<std::size_t>(n), 1000);

  PathScenario sc;
  sc.num_links = n;
  sc.lot = std::make_unique<ParkingLot>(rates, delays, /*hosts_at_ends=*/true);
  ParkingLot& lot = *sc.lot;
  const NodeId head = lot.switch_at(0);
  const NodeId tail = lot.switch_at(n);

  const auto sizes = MakeParametric(spec.family, spec.theta);

  // Foreground flows.
  const Route fg_route = lot.RouteBetween(head, 0, tail, n);
  for (int i = 0; i < spec.num_fg; ++i) {
    Flow f;
    f.id = static_cast<FlowId>(sc.flows.size());
    f.src = head;
    f.dst = tail;
    f.size = sizes->Sample(size_rng);
    f.path = fg_route;
    sc.flows.push_back(std::move(f));
    sc.is_fg.push_back(1);
    sc.orig_id.push_back(-1);
    sc.entry_hop.push_back(0);
    sc.exit_hop.push_back(n);
  }

  // Background flows over random non-full spans.
  const int num_bg = static_cast<int>(spec.bg_ratio * spec.num_fg);
  for (int i = 0; i < num_bg; ++i) {
    int entry = 0, exit = n;
    // Rejection-sample a span that is not the full path. Always succeeds
    // for n >= 2 (e.g. (0,1)).
    do {
      entry = static_cast<int>(span_rng.NextBounded(static_cast<std::uint64_t>(n)));
      exit = entry + 1 +
             static_cast<int>(span_rng.NextBounded(static_cast<std::uint64_t>(n - entry)));
    } while (entry == 0 && exit == n);

    const std::uint64_t src_key = 1000 + span_rng.NextBounded(64);  // a pool of
    const std::uint64_t dst_key = 2000 + span_rng.NextBounded(64);  // 64 endpoints
    const NodeId src = entry == 0 ? head : lot.AttachHost(entry, host_rate, src_key);
    const NodeId dst = exit == n ? tail : lot.AttachHost(exit, host_rate, dst_key);
    Flow f;
    f.id = static_cast<FlowId>(sc.flows.size());
    f.src = src;
    f.dst = dst;
    f.size = sizes->Sample(size_rng);
    f.path = lot.RouteBetween(src, entry, dst, exit);
    sc.flows.push_back(std::move(f));
    sc.is_fg.push_back(0);
    sc.orig_id.push_back(-1);
    sc.entry_hop.push_back(entry);
    sc.exit_hop.push_back(exit);
  }

  // Arrival times: joint log-normal process scaled so the busiest chain
  // link hits max_load.
  std::vector<double> chain_bytes(static_cast<std::size_t>(n), 0.0);
  for (std::size_t i = 0; i < sc.flows.size(); ++i) {
    for (int h = sc.entry_hop[i]; h < sc.exit_hop[i]; ++h) {
      chain_bytes[static_cast<std::size_t>(h)] += static_cast<double>(sc.flows[i].size);
    }
  }
  double max_drain = 0.0;
  for (int h = 0; h < n; ++h) {
    max_drain = std::max(max_drain, chain_bytes[static_cast<std::size_t>(h)] /
                                        rates[static_cast<std::size_t>(h)]);
  }
  const Ns duration = static_cast<Ns>(max_drain / spec.max_load) + 1;
  const auto normalized = NormalizedLogNormalArrivals(
      static_cast<int>(sc.flows.size()), spec.sigma, arrival_rng);
  const auto arrivals = ScaleArrivals(normalized, duration);
  // Shuffle assignment so fg/bg arrivals interleave (flows were pushed fg
  // first, but the arrival process is a single joint stream).
  std::vector<std::size_t> order(sc.flows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[arrival_rng.NextBounded(i)]);
  }
  for (std::size_t i = 0; i < order.size(); ++i) {
    sc.flows[order[i]].arrival = arrivals[i];
  }
  return sc;
}

}  // namespace m3
