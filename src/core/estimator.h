// End-to-end m3 (§3.1): decompose the network into paths, sample them by
// foreground flow count, run flowSim + the ML model on each, and aggregate
// into network-wide slowdown distributions. Also provides the "ns-3-path"
// estimator (packet-level simulation of each sampled path, §2.1) used for
// the paper's decomposition-error ablations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/aggregate.h"
#include "core/model.h"
#include "pathdecomp/decompose.h"
#include "pathdecomp/sampling.h"
#include "pktsim/config.h"

namespace m3 {

struct M3Options {
  int num_paths = 100;       // paper: 500 bounds p99 error to ~10% (Fig. 5)
  std::uint64_t seed = 1;
  bool use_context = true;   // Fig. 16 ablation switch
  unsigned num_threads = 0;  // path-level parallelism (0 = hardware)
};

struct NetworkEstimate {
  std::vector<PathEstimate> paths;
  std::array<std::vector<double>, kNumOutputBuckets> bucket_pct;  // 100 each
  std::array<double, kNumOutputBuckets> total_counts{};
  std::vector<double> combined_pct;  // network-wide mixture, 100 points
  double wall_seconds = 0.0;

  double CombinedP99() const { return combined_pct.empty() ? 0.0 : combined_pct[98]; }
  std::array<double, kNumOutputBuckets> BucketP99() const;
};

/// Full m3 pipeline with a trained model.
NetworkEstimate RunM3(const Topology& topo, const std::vector<Flow>& flows,
                      const NetConfig& cfg, M3Model& model, const M3Options& opts);

/// ns-3-path: identical sampling/aggregation, but each path is simulated at
/// packet level (the decomposition-only upper bound on m3's accuracy).
NetworkEstimate RunNs3Path(const Topology& topo, const std::vector<Flow>& flows,
                           const NetConfig& cfg, const M3Options& opts);

/// flowSim-only variant (no ML correction): the Fig. 16 baseline.
NetworkEstimate RunFlowSimOnly(const Topology& topo, const std::vector<Flow>& flows,
                               const NetConfig& cfg, const M3Options& opts);

/// Ground-truth network-wide distribution from full packet simulation
/// results (for comparisons): bucket percentiles + combined percentiles.
NetworkEstimate SummarizeGroundTruth(const std::vector<FlowResult>& results);

}  // namespace m3
