// End-to-end m3 (§3.1): decompose the network into paths, sample them by
// foreground flow count, run flowSim + the ML model on each, and aggregate
// into network-wide slowdown distributions. Also provides the "ns-3-path"
// estimator (packet-level simulation of each sampled path, §2.1) used for
// the paper's decomposition-error ablations.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/aggregate.h"
#include "core/model.h"
#include "pathdecomp/decompose.h"
#include "pathdecomp/sampling.h"
#include "pktsim/config.h"
#include "util/status.h"

namespace m3 {

/// Cross-query reuse hooks for per-path estimates (the serving layer's
/// content-addressed path cache plugs in here; see src/serve/service.h).
/// `lookup` runs before the primary estimator — returning a value skips all
/// compute for that path and counts it as ok. `insert` runs after a
/// successful *primary* estimate only, never after a fallback, so degraded
/// answers are never cached. Both are called concurrently from path workers
/// and must be thread-safe. The cache is an accelerator, never a
/// correctness dependency: a hook that throws is treated as a miss (lookup)
/// or a no-op (insert) and the path proceeds normally.
struct PathCacheHooks {
  std::function<std::optional<PathEstimate>(const PathScenario&)> lookup;
  std::function<void(const PathScenario&, const PathEstimate&)> insert;
};

struct M3Options {
  int num_paths = 100;       // paper: 500 bounds p99 error to ~10% (Fig. 5)
  std::uint64_t seed = 1;
  bool use_context = true;   // Fig. 16 ablation switch
  unsigned num_threads = 0;  // path-level parallelism (0 = hardware)

  // --- resilience ---
  // strict: the first path fault cancels the query and is surfaced as a
  // non-OK NetworkEstimate::status instead of being degraded around.
  bool strict = false;
  // Wall-clock budget for the whole query; 0 = unbounded. When it expires,
  // remaining paths are cooperatively cancelled and the partial estimate is
  // returned with status kDeadlineExceeded.
  double deadline_seconds = 0.0;
  // Attempts of the primary estimator per path before degrading (2 = one
  // retry, the default degradation ladder).
  int max_attempts = 2;

  // Optional per-path result reuse (not owned; must outlive the call).
  // nullptr disables reuse. Hit paths are reported in
  // DegradationReport::paths_cached.
  const PathCacheHooks* path_cache = nullptr;

  // --- distributed serving ---
  // When non-null, only these sample slots (positions in the deterministic
  // SamplePaths order, each in [0, num_paths)) are estimated; every other
  // slot is skipped outright — zero bucket counts and absent from the
  // degradation report, unlike a drop. NetworkEstimate::paths keeps full
  // num_paths length, so a scatter-gather front-end can merge disjoint slot
  // sets from different shards positionally and re-aggregate. Duplicate or
  // out-of-range slots are rejected as kInvalidArgument. Not owned; must
  // outlive the call.
  const std::vector<std::uint32_t>* sample_slots = nullptr;
};

/// Answer-quality accounting for one estimation run. Every sampled path
/// lands in exactly one of ok / degraded / dropped; `paths_retried` counts
/// paths that needed more than one primary attempt (whatever the outcome).
struct DegradationReport {
  int paths_ok = 0;        // primary estimator produced the estimate
  int paths_cached = 0;    // served from M3Options::path_cache (subset of ok)
  int paths_retried = 0;   // needed >= 1 retry (may still be ok)
  int paths_degraded = 0;  // fell back to the flowSim-only estimate
  int paths_dropped = 0;   // no estimate; aggregation reweights around them

  // Per-class counts of failed attempts (an attempt is one primary or
  // fallback execution of a path estimator).
  int errors_exception = 0;  // a path worker threw
  int errors_nonfinite = 0;  // model forward produced NaN/inf outputs
  int errors_deadline = 0;   // path cancelled by the wall-clock budget
  int errors_validation = 0; // inputs rejected before any compute

  // Non-finite or non-positive slowdown values clamped to the 1.0 floor by
  // the aggregation guard (accepted estimates only; a clamp never poisons
  // combined_pct).
  long long clamped_values = 0;

  // First failure observed (lowest path index), as "path 12: INTERNAL: ...".
  std::string first_error;

  // Brownout attribution (serving overload control, DESIGN.md §13): level 0
  // means full quality; level 1 means the path sample was reduced; level 2
  // means flowSim substituted for the model. `paths_brownout` counts paths
  // whose quality the brownout reduced (the skipped sample slots at level
  // 1; every estimated path at level 2). A browned-out answer is never
  // silent: Degraded() is true and the serving layer forces kDegraded.
  int brownout_level = 0;
  int paths_brownout = 0;

  bool Degraded() const {
    return paths_degraded > 0 || paths_dropped > 0 || clamped_values > 0 ||
           brownout_level > 0 || paths_brownout > 0;
  }
  /// One-line summary, e.g. "paths: 98 ok, 1 retried, 1 degraded, 1 dropped
  /// (2 exceptions, 0 non-finite, 1 deadline); 0 values clamped".
  std::string ToString() const;
};

struct NetworkEstimate {
  std::vector<PathEstimate> paths;
  std::array<std::vector<double>, kNumOutputBuckets> bucket_pct;  // 100 each
  std::array<double, kNumOutputBuckets> total_counts{};
  std::vector<double> combined_pct;  // network-wide mixture, 100 points
  double wall_seconds = 0.0;

  // kOk: full-quality answer. kDegraded / kDeadlineExceeded: a populated
  // partial answer; see `degradation` for what was lost. kInvalidArgument:
  // inputs rejected, no compute ran. In strict mode, the first path fault's
  // own code.
  Status status;
  DegradationReport degradation;

  double CombinedP99() const { return combined_pct.empty() ? 0.0 : combined_pct[98]; }
  std::array<double, kNumOutputBuckets> BucketP99() const;
};

/// Full m3 pipeline with a trained model.
NetworkEstimate RunM3(const Topology& topo, const std::vector<Flow>& flows,
                      const NetConfig& cfg, M3Model& model, const M3Options& opts);

/// ns-3-path: identical sampling/aggregation, but each path is simulated at
/// packet level (the decomposition-only upper bound on m3's accuracy).
NetworkEstimate RunNs3Path(const Topology& topo, const std::vector<Flow>& flows,
                           const NetConfig& cfg, const M3Options& opts);

/// flowSim-only variant (no ML correction): the Fig. 16 baseline.
NetworkEstimate RunFlowSimOnly(const Topology& topo, const std::vector<Flow>& flows,
                               const NetConfig& cfg, const M3Options& opts);

/// Ground-truth network-wide distribution from full packet simulation
/// results (for comparisons): bucket percentiles + combined percentiles.
NetworkEstimate SummarizeGroundTruth(const std::vector<FlowResult>& results);

/// Aggregation guard: clamps non-finite or non-positive slowdown values in
/// the populated buckets of `paths` to the 1.0 floor so a stray NaN can
/// never poison combined_pct. Finite values in (0, 1) pass through: flowSim
/// emits slowdowns a few ulps below 1.0 (fct/ideal rounding), and clamping
/// those would break bitwise reproducibility of fault-free runs. Returns
/// the number of values clamped. Called by the pipeline before aggregation;
/// exposed for tests.
long long ClampPathEstimates(std::vector<PathEstimate>& paths);

}  // namespace m3
