// flowSim feature maps (§3.4, Eq. 3): per-size-bucket percentile vectors of
// FCT slowdown. Inputs use 10 size buckets x 100 percentiles; the model's
// output uses 4 size buckets x 100 percentiles.
#pragma once

#include <array>
#include <vector>

#include "ml/tensor.h"
#include "pathdecomp/path_topology.h"
#include "util/units.h"

namespace m3 {

constexpr int kNumSizeBuckets = 10;
constexpr int kNumPercentiles = 100;
constexpr int kNumOutputBuckets = 4;

/// Flattened feature width: 10 buckets x 100 percentiles + 10 log-counts.
constexpr int kFeatureDim = kNumSizeBuckets * kNumPercentiles + kNumSizeBuckets;

/// Upper bucket edges (inclusive), in bytes. The last bucket is open.
/// Mirrors the paper: "single packet under 250B" up to "exceeding 50KB".
const std::array<Bytes, kNumSizeBuckets - 1>& SizeBucketEdges();
/// Output buckets: (0,1KB], (1KB,10KB], (10KB,50KB], (50KB,inf).
const std::array<Bytes, kNumOutputBuckets - 1>& OutputBucketEdges();

int SizeBucketOf(Bytes size);
int OutputBucketOf(Bytes size);

struct FeatureMap {
  std::array<double, kNumSizeBuckets> counts{};
  // pct[b][p] = (p+1)-percentile of slowdown in bucket b (0 if empty).
  std::array<std::array<double, kNumPercentiles>, kNumSizeBuckets> pct{};
};

FeatureMap BuildFeatureMap(const std::vector<SizedSlowdown>& flows);

/// Flattens to a [1, kFeatureDim] tensor: log(slowdown) percentiles (0 for
/// empty buckets) followed by log1p(count) per bucket.
ml::Tensor FlattenFeature(const FeatureMap& map);

/// Ground-truth / model target: 4 output buckets x 100 percentiles of
/// slowdown, with a validity flag per bucket.
struct TargetDist {
  std::array<std::array<double, kNumPercentiles>, kNumOutputBuckets> pct{};
  std::array<bool, kNumOutputBuckets> has{};
  std::array<double, kNumOutputBuckets> counts{};
};

TargetDist BuildTarget(const std::vector<SizedSlowdown>& flows);

/// Target/mask tensors in log-slowdown space, [1, 400] each.
ml::Tensor TargetToTensor(const TargetDist& t);
ml::Tensor TargetMask(const TargetDist& t);

/// Inverse of the model output encoding: [1,400] log-slowdowns -> bucketed
/// slowdown percentiles (clamped to >= 1). When `num_nonfinite` is non-null
/// it receives the number of raw values that were NaN/inf before clamping
/// (the clamp would otherwise silently absorb them — callers use the count
/// to detect a poisoned forward pass).
std::array<std::array<double, kNumPercentiles>, kNumOutputBuckets> DecodeOutput(
    const ml::Tensor& out, int* num_nonfinite = nullptr);

}  // namespace m3
