// The m3 model (§3.4): a transformer encoder summarizes the per-hop
// background feature maps into a context vector; a two-layer MLP maps
// [foreground feature map, context, network spec] to the corrected
// foreground slowdown distribution (4 size buckets x 100 percentiles, in
// log-slowdown space).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "core/feature_map.h"
#include "core/net_config.h"
#include "ml/checkpoint.h"
#include "ml/layers.h"
#include "ml/optimizer.h"
#include "ml/transformer.h"
#include "util/status.h"

namespace m3 {

struct M3ModelConfig {
  int feat_dim = kFeatureDim;
  int d_model = 96;
  int num_heads = 4;
  int num_layers = 2;
  int ff_dim = 192;
  int spec_dim = kSpecDim;
  int mlp_hidden = 256;
  int out_dim = kNumOutputBuckets * kNumPercentiles;
  int max_seq = 8;
  std::uint64_t init_seed = 1234;
};

class M3Model {
 public:
  explicit M3Model(const M3ModelConfig& cfg = M3ModelConfig());

  /// Builds the forward pass. `bg_seq` is [n_hops, feat_dim] (n >= 1; pass
  /// a zero row if a hop has no background traffic). When `use_context` is
  /// false the context vector is replaced with zeros (the paper's "m3 w/o
  /// context" ablation, Fig. 16).
  ml::Var Forward(ml::Graph& g, const ml::Tensor& fg_feat, const ml::Tensor& bg_seq,
                  const ml::Tensor& spec, bool use_context = true);

  /// Inference: decoded slowdown percentiles per output bucket. The model
  /// output is a log-space *correction* added to `baseline` (flowSim's own
  /// bucketed log-slowdown percentiles, [1, 400]); pass nullptr for a zero
  /// baseline (absolute prediction). When `num_nonfinite` is non-null it
  /// receives the number of raw output values that were NaN/inf before the
  /// decode clamp — a non-zero count means the forward pass was poisoned
  /// and the decoded floor values should not be trusted.
  std::array<std::array<double, kNumPercentiles>, kNumOutputBuckets> Predict(
      const ml::Tensor& fg_feat, const ml::Tensor& bg_seq, const ml::Tensor& spec,
      bool use_context = true, const ml::Tensor* baseline = nullptr,
      int* num_nonfinite = nullptr);

  std::vector<ml::Parameter*> params();
  std::size_t num_parameters();

  /// Writes a params-only checkpoint (atomic; parent directories are
  /// created). TrainModel's checkpoint_path saves carry optimizer/trainer
  /// state as well — prefer those for resumable training runs.
  void Save(const std::string& path);
  /// Loads any checkpoint version; returns what the file carried (version,
  /// optimizer/trainer sections). Throws on corrupt or mismatched files
  /// without modifying the model.
  ml::CheckpointInfo Load(const std::string& path);

  /// Status-returning Load for service boundaries: kNotFound for a missing
  /// file, kDataLoss for corruption/truncation, kInvalidArgument when the
  /// checkpoint's tensors do not match this model's compiled dimensions.
  /// Never throws; on error the model is unchanged.
  StatusOr<ml::CheckpointInfo> TryLoad(const std::string& path);

  const M3ModelConfig& config() const { return cfg_; }

 private:
  M3ModelConfig cfg_;
  ml::TransformerEncoder bg_encoder_;
  ml::Mlp head_;
};

}  // namespace m3
