#include "topo/routing.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/rng.h"

namespace m3 {
namespace {

// Distances from every node to `dst` in hops, or -1 if unreachable.
std::vector<int> DistancesTo(const Topology& topo, NodeId dst) {
  std::vector<int> dist(topo.num_nodes(), -1);
  // Reverse adjacency via a forward scan of all links.
  std::vector<std::vector<NodeId>> rev(topo.num_nodes());
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const Link& lk = topo.link(static_cast<LinkId>(l));
    rev[static_cast<std::size_t>(lk.dst)].push_back(lk.src);
  }
  std::queue<NodeId> q;
  dist[static_cast<std::size_t>(dst)] = 0;
  q.push(dst);
  while (!q.empty()) {
    const NodeId n = q.front();
    q.pop();
    for (NodeId p : rev[static_cast<std::size_t>(n)]) {
      if (dist[static_cast<std::size_t>(p)] < 0) {
        dist[static_cast<std::size_t>(p)] = dist[static_cast<std::size_t>(n)] + 1;
        q.push(p);
      }
    }
  }
  return dist;
}

}  // namespace

Route ShortestPathEcmp(const Topology& topo, NodeId src, NodeId dst,
                       std::uint64_t flow_key) {
  if (src == dst) return {};
  const std::vector<int> dist = DistancesTo(topo, dst);
  if (dist[static_cast<std::size_t>(src)] < 0) return {};

  Route route;
  NodeId at = src;
  std::uint64_t hop = 0;
  while (at != dst) {
    // Candidate links that make progress toward dst.
    std::vector<LinkId> next;
    const int d = dist[static_cast<std::size_t>(at)];
    for (LinkId l : topo.OutLinks(at)) {
      const Link& lk = topo.link(l);
      if (dist[static_cast<std::size_t>(lk.dst)] == d - 1) next.push_back(l);
    }
    SplitMix64 sm(flow_key ^ ((hop + 1) * 0x9e3779b97f4a7c15ULL));
    const LinkId chosen = next[sm.Next() % next.size()];
    route.push_back(chosen);
    at = topo.link(chosen).dst;
    ++hop;
  }
  return route;
}

double CountShortestPaths(const Topology& topo, NodeId src, NodeId dst) {
  if (src == dst) return 1.0;
  const std::vector<int> dist = DistancesTo(topo, dst);
  if (dist[static_cast<std::size_t>(src)] < 0) return 0.0;

  // DP over nodes ordered by decreasing distance-to-dst, starting from src.
  // count(n) = sum of count(m) over next hops m with dist(m) = dist(n)-1.
  std::vector<double> count(topo.num_nodes(), -1.0);
  count[static_cast<std::size_t>(dst)] = 1.0;

  // Memoized recursion without recursion: process nodes by distance layers.
  const int dsrc = dist[static_cast<std::size_t>(src)];
  std::vector<std::vector<NodeId>> layers(static_cast<std::size_t>(dsrc) + 1);
  for (std::size_t n = 0; n < topo.num_nodes(); ++n) {
    const int d = dist[n];
    if (d >= 0 && d <= dsrc) layers[static_cast<std::size_t>(d)].push_back(static_cast<NodeId>(n));
  }
  for (int d = 1; d <= dsrc; ++d) {
    for (NodeId n : layers[static_cast<std::size_t>(d)]) {
      double c = 0.0;
      for (LinkId l : topo.OutLinks(n)) {
        const Link& lk = topo.link(l);
        if (dist[static_cast<std::size_t>(lk.dst)] == d - 1) {
          c += count[static_cast<std::size_t>(lk.dst)];
        }
      }
      count[static_cast<std::size_t>(n)] =
          std::min(c, 1e18);
    }
  }
  return count[static_cast<std::size_t>(src)];
}

}  // namespace m3
