#include "topo/topology.h"

#include <algorithm>

namespace m3 {

NodeId Topology::AddNode(NodeKind kind) {
  kinds_.push_back(kind);
  out_links_.emplace_back();
  return static_cast<NodeId>(kinds_.size() - 1);
}

LinkId Topology::AddLink(NodeId src, NodeId dst, Bpns rate, Ns delay) {
  const LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{src, dst, rate, delay});
  out_links_[static_cast<std::size_t>(src)].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Topology::AddDuplexLink(NodeId a, NodeId b, Bpns rate,
                                                  Ns delay) {
  return {AddLink(a, b, rate, delay), AddLink(b, a, rate, delay)};
}

LinkId Topology::FindLink(NodeId src, NodeId dst) const {
  for (LinkId l : out_links_[static_cast<std::size_t>(src)]) {
    if (links_[static_cast<std::size_t>(l)].dst == dst) return l;
  }
  return kInvalidLink;
}

LinkId Topology::ReverseLink(LinkId l) const {
  const Link& fwd = link(l);
  return FindLink(fwd.dst, fwd.src);
}

Ns Topology::RouteDelay(const Route& route) const {
  Ns total = 0;
  for (LinkId l : route) total += link(l).delay;
  return total;
}

Bpns Topology::RouteMinRate(const Route& route) const {
  Bpns min_rate = 0.0;
  bool first = true;
  for (LinkId l : route) {
    const Bpns r = link(l).rate;
    if (first || r < min_rate) {
      min_rate = r;
      first = false;
    }
  }
  return min_rate;
}

bool Topology::ValidateRoute(NodeId src, NodeId dst, const Route& route) const {
  if (route.empty()) return false;
  NodeId at = src;
  for (LinkId l : route) {
    if (l < 0 || static_cast<std::size_t>(l) >= links_.size()) return false;
    const Link& lk = link(l);
    if (lk.src != at) return false;
    at = lk.dst;
  }
  return at == dst;
}

Ns IdealFct(const Topology& topo, const Route& route, Bytes size, Bytes mtu,
            Bytes hdr) {
  if (route.empty() || size <= 0) return 0;
  const Bytes first_payload = std::min(size, mtu);
  Ns fct = 0;
  // First packet: store-and-forward through every hop.
  for (LinkId l : route) {
    const Link& lk = topo.link(l);
    fct += lk.delay + TransmissionTime(first_payload + hdr, lk.rate);
  }
  // Remaining bytes stream behind the first packet at the bottleneck rate,
  // one MTU-sized frame at a time (last frame may be short).
  Bytes remaining = size - first_payload;
  if (remaining > 0) {
    const Bpns bottleneck = topo.RouteMinRate(route);
    const Bytes full_frames = remaining / mtu;
    const Bytes tail = remaining % mtu;
    fct += full_frames * TransmissionTime(mtu + hdr, bottleneck);
    if (tail > 0) fct += TransmissionTime(tail + hdr, bottleneck);
  }
  return fct;
}

}  // namespace m3
