// Generic shortest-path ECMP routing over an arbitrary Topology. Used for
// small topologies and to cross-validate the structural fat-tree router.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace m3 {

/// Computes a shortest path (fewest hops) from `src` to `dst`. When several
/// shortest paths exist, `flow_key` picks among them with a deterministic
/// per-hop hash, emulating ECMP. Returns an empty route if unreachable.
Route ShortestPathEcmp(const Topology& topo, NodeId src, NodeId dst,
                       std::uint64_t flow_key);

/// Number of distinct shortest paths from `src` to `dst` (counted exactly via
/// BFS DP; saturates at 1e18). Used in tests.
double CountShortestPaths(const Topology& topo, NodeId src, NodeId dst);

}  // namespace m3
