// Directed network topology: hosts and switches connected by unidirectional
// links. Duplex cables are modeled as a pair of unidirectional links.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/units.h"

namespace m3 {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

constexpr NodeId kInvalidNode = -1;
constexpr LinkId kInvalidLink = -1;

enum class NodeKind : std::uint8_t { kHost, kSwitch };

struct Link {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Bpns rate = 0.0;  // bytes per nanosecond
  Ns delay = 0;     // propagation delay
};

/// A route is the ordered list of links a flow traverses.
using Route = std::vector<LinkId>;

class Topology {
 public:
  NodeId AddNode(NodeKind kind);
  LinkId AddLink(NodeId src, NodeId dst, Bpns rate, Ns delay);

  /// Adds a duplex cable; returns {a->b, b->a} link ids.
  std::pair<LinkId, LinkId> AddDuplexLink(NodeId a, NodeId b, Bpns rate, Ns delay);

  NodeKind kind(NodeId n) const { return kinds_[static_cast<std::size_t>(n)]; }
  const Link& link(LinkId l) const { return links_[static_cast<std::size_t>(l)]; }
  std::size_t num_nodes() const { return kinds_.size(); }
  std::size_t num_links() const { return links_.size(); }

  /// Outgoing links of a node.
  const std::vector<LinkId>& OutLinks(NodeId n) const {
    return out_links_[static_cast<std::size_t>(n)];
  }

  /// Direct link src->dst, or kInvalidLink.
  LinkId FindLink(NodeId src, NodeId dst) const;

  /// The reverse of `l` (dst->src), or kInvalidLink if none exists.
  LinkId ReverseLink(LinkId l) const;

  /// Sum of propagation delays along a route.
  Ns RouteDelay(const Route& route) const;

  /// Minimum link rate along a route (the route's nominal bottleneck).
  Bpns RouteMinRate(const Route& route) const;

  /// Checks that `route` is a connected chain starting at `src` and ending
  /// at `dst`. Used for validation in tests and debug builds.
  bool ValidateRoute(NodeId src, NodeId dst, const Route& route) const;

 private:
  std::vector<NodeKind> kinds_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_links_;
};

/// FCT of `size` bytes on an otherwise idle `route`: propagation, per-hop
/// serialization of the first packet, then pipelined serialization of the
/// rest at the bottleneck. `mtu`/`hdr` mirror the packet simulator framing.
/// Both the packet simulator and flowSim normalize slowdowns by this value.
Ns IdealFct(const Topology& topo, const Route& route, Bytes size, Bytes mtu = 1000,
            Bytes hdr = 48);

}  // namespace m3
