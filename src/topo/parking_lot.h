// Parking-lot (linear) topologies: the building block of m3's path-level
// simulations. A chain of switches s0 - s1 - ... - sn connected by the
// "original" path links; foreground and background endpoints attach to the
// chain through dedicated "synthetic" access links so that flows only
// contend on the original links (§3.2).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "topo/topology.h"

namespace m3 {

class ParkingLot {
 public:
  /// Builds a chain of `num_links` forward links, all with rate `link_rate`
  /// and per-hop `delay`. If `hosts_at_ends` is set, the first and last
  /// chain nodes are hosts (the path's original source/destination
  /// endpoints); interior nodes are always switches.
  ParkingLot(int num_links, Bpns link_rate, Ns delay, bool hosts_at_ends = false);

  /// Builds a chain with per-link rates/delays (e.g. copied from a sampled
  /// path in a full topology).
  ParkingLot(const std::vector<Bpns>& rates, const std::vector<Ns>& delays,
             bool hosts_at_ends = false);

  Topology& topo() { return topo_; }
  const Topology& topo() const { return topo_; }

  int num_links() const { return static_cast<int>(path_links_.size()); }

  /// i-th original link of the chain (s_i -> s_{i+1}).
  LinkId path_link(int i) const { return path_links_[static_cast<std::size_t>(i)]; }

  /// Switch s_i (i in [0, num_links]).
  NodeId switch_at(int i) const { return switches_[static_cast<std::size_t>(i)]; }

  /// Attaches (or reuses) a host at chain node `i` with an access link of
  /// rate `access_rate` in both directions. Hosts are deduplicated by
  /// (`endpoint_key`, i) so flows from the same original endpoint share
  /// their NIC, as they would in the full network.
  NodeId AttachHost(int i, Bpns access_rate, std::uint64_t endpoint_key,
                    Ns access_delay = 1000);

  /// Route from `src_host` joining the chain at node `i` to `dst_host`
  /// leaving at node `j` (i < j). If `src_host` IS chain node `i` (a
  /// hosts_at_ends endpoint) no ingress access link is used; likewise for
  /// the egress side.
  Route RouteBetween(NodeId src_host, int i, NodeId dst_host, int j) const;

 private:
  Topology topo_;
  std::vector<NodeId> switches_;
  std::vector<LinkId> path_links_;
  std::map<std::pair<std::uint64_t, int>, NodeId> attached_;
};

}  // namespace m3
