// Three-tier Clos ("fat-tree") topology in the style of Meta's data center
// fabric: hosts -> top-of-rack (ToR) switches -> per-pod fabric switches ->
// spine planes. Oversubscription is controlled by the number of spines per
// plane, matching the paper's "variable spine counts" methodology (§5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.h"

namespace m3 {

struct FatTreeConfig {
  int pods = 2;
  int racks_per_pod = 16;
  int hosts_per_rack = 8;
  int fabric_per_pod = 4;    // also the number of spine planes
  int spines_per_plane = 8;  // controls oversubscription
  double host_gbps = 10.0;
  double core_gbps = 40.0;
  Ns link_delay = 1000;  // 1us per hop

  int num_racks() const { return pods * racks_per_pod; }
  int num_hosts() const { return num_racks() * hosts_per_rack; }

  /// Fabric-to-spine oversubscription ratio (downlink / uplink capacity at a
  /// fabric switch). 1.0 means full bisection.
  double Oversubscription() const {
    const double down = racks_per_pod * core_gbps;
    const double up = spines_per_plane * core_gbps;
    return down / up;
  }

  /// The paper's small-scale testbed: 32 racks, 256 hosts.
  static FatTreeConfig Small(double oversub = 1.0);
  /// The paper's large-scale testbed shape: 384 racks, 6144 hosts.
  static FatTreeConfig Large(double oversub = 2.0);
};

class FatTree {
 public:
  explicit FatTree(const FatTreeConfig& cfg);

  const Topology& topo() const { return topo_; }
  const FatTreeConfig& config() const { return cfg_; }

  int num_hosts() const { return cfg_.num_hosts(); }
  int num_racks() const { return cfg_.num_racks(); }

  NodeId host(int host_idx) const { return hosts_[static_cast<std::size_t>(host_idx)]; }

  /// Host index of a node, or -1 if the node is not a host of this tree.
  int HostIndexOf(NodeId n) const {
    if (n < 0 || static_cast<std::size_t>(n) >= host_index_.size()) return -1;
    return host_index_[static_cast<std::size_t>(n)];
  }
  NodeId tor(int rack_idx) const { return tors_[static_cast<std::size_t>(rack_idx)]; }

  int RackOfHost(int host_idx) const { return host_idx / cfg_.hosts_per_rack; }
  int PodOfRack(int rack_idx) const { return rack_idx / cfg_.racks_per_pod; }
  int HostIndexInRack(int host_idx) const { return host_idx % cfg_.hosts_per_rack; }

  /// ECMP route between two hosts (by host index). `flow_key` selects among
  /// the equal-cost choices deterministically, emulating a 5-tuple hash.
  /// Same-host src/dst is invalid. Paths have 2 links (same rack), 4 links
  /// (same pod), or 6 links (cross-pod).
  Route RouteBetween(int src_host, int dst_host, std::uint64_t flow_key) const;

 private:
  FatTreeConfig cfg_;
  Topology topo_;
  std::vector<NodeId> hosts_;
  std::vector<int> host_index_;  // node id -> host index (-1 for switches)
  std::vector<NodeId> tors_;
  // fabric_[pod][plane], spines_[plane][index]
  std::vector<std::vector<NodeId>> fabric_;
  std::vector<std::vector<NodeId>> spines_;
};

}  // namespace m3
