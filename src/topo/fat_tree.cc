#include "topo/fat_tree.h"

#include <stdexcept>

#include "util/rng.h"

namespace m3 {
namespace {

// Deterministic per-hop ECMP hash: mixes the flow key with a hop label.
std::uint64_t EcmpHash(std::uint64_t flow_key, std::uint64_t hop) {
  SplitMix64 sm(flow_key ^ (hop * 0x9e3779b97f4a7c15ULL));
  return sm.Next();
}

}  // namespace

FatTreeConfig FatTreeConfig::Small(double oversub) {
  FatTreeConfig cfg;
  cfg.pods = 2;
  cfg.racks_per_pod = 16;
  cfg.hosts_per_rack = 8;
  cfg.fabric_per_pod = 4;
  // down = 16 racks * 40G = 640G per fabric switch; up = spines * 40G.
  if (oversub <= 1.0) {
    cfg.spines_per_plane = 16;
  } else if (oversub <= 2.0) {
    cfg.spines_per_plane = 8;
  } else {
    cfg.spines_per_plane = 4;  // 4-to-1
  }
  return cfg;
}

FatTreeConfig FatTreeConfig::Large(double oversub) {
  FatTreeConfig cfg;
  cfg.pods = 8;
  cfg.racks_per_pod = 48;
  cfg.hosts_per_rack = 16;
  cfg.fabric_per_pod = 4;
  if (oversub <= 1.0) {
    cfg.spines_per_plane = 48;
  } else if (oversub <= 2.0) {
    cfg.spines_per_plane = 24;
  } else {
    cfg.spines_per_plane = 12;
  }
  return cfg;
}

FatTree::FatTree(const FatTreeConfig& cfg) : cfg_(cfg) {
  if (cfg.pods < 1 || cfg.racks_per_pod < 1 || cfg.hosts_per_rack < 1 ||
      cfg.fabric_per_pod < 1 || cfg.spines_per_plane < 1) {
    throw std::invalid_argument("FatTreeConfig fields must be positive");
  }
  const Bpns host_rate = GbpsToBpns(cfg.host_gbps);
  const Bpns core_rate = GbpsToBpns(cfg.core_gbps);

  // Spines: one group ("plane") per fabric index.
  spines_.resize(static_cast<std::size_t>(cfg.fabric_per_pod));
  for (auto& plane : spines_) {
    plane.reserve(static_cast<std::size_t>(cfg.spines_per_plane));
    for (int s = 0; s < cfg.spines_per_plane; ++s) {
      plane.push_back(topo_.AddNode(NodeKind::kSwitch));
    }
  }

  fabric_.resize(static_cast<std::size_t>(cfg.pods));
  for (int p = 0; p < cfg.pods; ++p) {
    auto& pod_fabric = fabric_[static_cast<std::size_t>(p)];
    pod_fabric.reserve(static_cast<std::size_t>(cfg.fabric_per_pod));
    for (int f = 0; f < cfg.fabric_per_pod; ++f) {
      const NodeId fs = topo_.AddNode(NodeKind::kSwitch);
      pod_fabric.push_back(fs);
      for (int s = 0; s < cfg.spines_per_plane; ++s) {
        topo_.AddDuplexLink(fs, spines_[static_cast<std::size_t>(f)][static_cast<std::size_t>(s)],
                            core_rate, cfg.link_delay);
      }
    }
  }

  tors_.reserve(static_cast<std::size_t>(cfg.num_racks()));
  hosts_.reserve(static_cast<std::size_t>(cfg.num_hosts()));
  for (int r = 0; r < cfg.num_racks(); ++r) {
    const int pod = PodOfRack(r);
    const NodeId tor = topo_.AddNode(NodeKind::kSwitch);
    tors_.push_back(tor);
    for (int f = 0; f < cfg.fabric_per_pod; ++f) {
      topo_.AddDuplexLink(tor, fabric_[static_cast<std::size_t>(pod)][static_cast<std::size_t>(f)],
                          core_rate, cfg.link_delay);
    }
    for (int h = 0; h < cfg.hosts_per_rack; ++h) {
      const NodeId host = topo_.AddNode(NodeKind::kHost);
      hosts_.push_back(host);
      topo_.AddDuplexLink(host, tor, host_rate, cfg.link_delay);
    }
  }
  host_index_.assign(topo_.num_nodes(), -1);
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    host_index_[static_cast<std::size_t>(hosts_[i])] = static_cast<int>(i);
  }
}

Route FatTree::RouteBetween(int src_host, int dst_host, std::uint64_t flow_key) const {
  if (src_host == dst_host) {
    throw std::invalid_argument("RouteBetween: src and dst hosts must differ");
  }
  const NodeId src = host(src_host);
  const NodeId dst = host(dst_host);
  const int src_rack = RackOfHost(src_host);
  const int dst_rack = RackOfHost(dst_host);
  const NodeId src_tor = tor(src_rack);
  const NodeId dst_tor = tor(dst_rack);

  Route route;
  route.push_back(topo_.FindLink(src, src_tor));
  if (src_rack == dst_rack) {
    route.push_back(topo_.FindLink(dst_tor, dst));
    return route;
  }

  const int src_pod = PodOfRack(src_rack);
  const int dst_pod = PodOfRack(dst_rack);
  const int plane = static_cast<int>(
      EcmpHash(flow_key, 1) % static_cast<std::uint64_t>(cfg_.fabric_per_pod));
  const NodeId up_fabric =
      fabric_[static_cast<std::size_t>(src_pod)][static_cast<std::size_t>(plane)];
  route.push_back(topo_.FindLink(src_tor, up_fabric));

  if (src_pod == dst_pod) {
    route.push_back(topo_.FindLink(up_fabric, dst_tor));
    route.push_back(topo_.FindLink(dst_tor, dst));
    return route;
  }

  const int spine_idx = static_cast<int>(
      EcmpHash(flow_key, 2) % static_cast<std::uint64_t>(cfg_.spines_per_plane));
  const NodeId spine =
      spines_[static_cast<std::size_t>(plane)][static_cast<std::size_t>(spine_idx)];
  const NodeId down_fabric =
      fabric_[static_cast<std::size_t>(dst_pod)][static_cast<std::size_t>(plane)];
  route.push_back(topo_.FindLink(up_fabric, spine));
  route.push_back(topo_.FindLink(spine, down_fabric));
  route.push_back(topo_.FindLink(down_fabric, dst_tor));
  route.push_back(topo_.FindLink(dst_tor, dst));
  return route;
}

}  // namespace m3
