#include "topo/parking_lot.h"

#include <stdexcept>

namespace m3 {

ParkingLot::ParkingLot(int num_links, Bpns link_rate, Ns delay, bool hosts_at_ends)
    : ParkingLot(std::vector<Bpns>(static_cast<std::size_t>(num_links), link_rate),
                 std::vector<Ns>(static_cast<std::size_t>(num_links), delay),
                 hosts_at_ends) {}

ParkingLot::ParkingLot(const std::vector<Bpns>& rates, const std::vector<Ns>& delays,
                       bool hosts_at_ends) {
  if (rates.empty() || rates.size() != delays.size()) {
    throw std::invalid_argument("ParkingLot: rates/delays must be non-empty and equal-sized");
  }
  switches_.reserve(rates.size() + 1);
  for (std::size_t i = 0; i <= rates.size(); ++i) {
    const bool endpoint = hosts_at_ends && (i == 0 || i == rates.size());
    switches_.push_back(topo_.AddNode(endpoint ? NodeKind::kHost : NodeKind::kSwitch));
  }
  path_links_.reserve(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    // Only the forward direction carries foreground data; the reverse link
    // exists for ACK traffic.
    auto [fwd, rev] = topo_.AddDuplexLink(switches_[i], switches_[i + 1], rates[i], delays[i]);
    (void)rev;
    path_links_.push_back(fwd);
  }
}

NodeId ParkingLot::AttachHost(int i, Bpns access_rate, std::uint64_t endpoint_key,
                              Ns access_delay) {
  if (topo_.kind(switch_at(i)) == NodeKind::kHost) {
    // Attaching at an endpoint node means the flow originates/terminates at
    // the path endpoint itself; no synthetic access link is needed.
    return switch_at(i);
  }
  const auto key = std::make_pair(endpoint_key, i);
  if (auto it = attached_.find(key); it != attached_.end()) return it->second;
  const NodeId host = topo_.AddNode(NodeKind::kHost);
  topo_.AddDuplexLink(host, switch_at(i), access_rate, access_delay);
  attached_.emplace(key, host);
  return host;
}

Route ParkingLot::RouteBetween(NodeId src_host, int i, NodeId dst_host, int j) const {
  if (i >= j) throw std::invalid_argument("ParkingLot::RouteBetween requires i < j");
  Route route;
  if (src_host != switch_at(i)) route.push_back(topo_.FindLink(src_host, switch_at(i)));
  for (int k = i; k < j; ++k) route.push_back(path_links_[static_cast<std::size_t>(k)]);
  if (dst_host != switch_at(j)) route.push_back(topo_.FindLink(switch_at(j), dst_host));
  return route;
}

}  // namespace m3
