#include "pktsim/event_queue.h"

namespace m3 {

void EventQueue::Push(Ns t, EvType type, std::int32_t a, std::int32_t b) {
  heap_.push(Event{t, next_seq_++, type, a, b});
}

Event EventQueue::Pop() {
  Event e = heap_.top();
  heap_.pop();
  return e;
}

}  // namespace m3
