#include "pktsim/config.h"

#include <sstream>
#include <stdexcept>

namespace m3 {

const char* CcName(CcType cc) {
  switch (cc) {
    case CcType::kDctcp:
      return "DCTCP";
    case CcType::kTimely:
      return "TIMELY";
    case CcType::kDcqcn:
      return "DCQCN";
    case CcType::kHpcc:
      return "HPCC";
  }
  return "?";
}

CcType CcFromName(const std::string& name) {
  if (name == "DCTCP") return CcType::kDctcp;
  if (name == "TIMELY") return CcType::kTimely;
  if (name == "DCQCN") return CcType::kDcqcn;
  if (name == "HPCC") return CcType::kHpcc;
  throw std::invalid_argument("unknown CC protocol: " + name);
}

NetConfig NetConfig::Sample(Rng& rng) {
  NetConfig cfg;
  cfg.cc = static_cast<CcType>(rng.NextBounded(kNumCcTypes));
  cfg.init_window = static_cast<Bytes>(rng.Uniform(5e3, 30e3));
  cfg.buffer = static_cast<Bytes>(rng.Uniform(200e3, 500e3));
  cfg.pfc = rng.NextDouble() < 0.5;
  cfg.dctcp_k = static_cast<Bytes>(rng.Uniform(5e3, 20e3));
  cfg.dcqcn_kmin = static_cast<Bytes>(rng.Uniform(20e3, 50e3));
  cfg.dcqcn_kmax = static_cast<Bytes>(rng.Uniform(50e3, 100e3));
  cfg.hpcc_eta = rng.Uniform(0.70, 0.95);
  cfg.hpcc_rate_ai_gbps = rng.Uniform(0.5, 1.0);
  cfg.timely_tlow = static_cast<Ns>(rng.Uniform(40e3, 60e3));
  cfg.timely_thigh = static_cast<Ns>(rng.Uniform(100e3, 150e3));
  cfg.seed = rng.NextU64();
  return cfg;
}

std::string NetConfig::ToString() const {
  std::ostringstream os;
  os << CcName(cc) << " initW=" << init_window / 1000 << "KB buf=" << buffer / 1000
     << "KB pfc=" << (pfc ? 1 : 0);
  switch (cc) {
    case CcType::kDctcp:
      os << " K=" << dctcp_k / 1000 << "KB";
      break;
    case CcType::kDcqcn:
      os << " Kmin=" << dcqcn_kmin / 1000 << "KB Kmax=" << dcqcn_kmax / 1000 << "KB";
      break;
    case CcType::kHpcc:
      os << " eta=" << hpcc_eta << " rateAI=" << hpcc_rate_ai_gbps << "Gbps";
      break;
    case CcType::kTimely:
      os << " Tlow=" << timely_tlow / 1000 << "us Thigh=" << timely_thigh / 1000 << "us";
      break;
  }
  return os.str();
}

}  // namespace m3
