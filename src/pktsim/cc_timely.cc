// TIMELY (Mittal et al., SIGCOMM 2015), RTT-gradient rate control.
//
// Below Tlow: additive increase. Above Thigh: multiplicative decrease
// proportional to the overshoot. In between: gradient tracking -- increase
// (with hyperactive increase after several consecutive steps) when the RTT
// is flat or falling, decrease proportionally to the normalized gradient
// when it is rising.
#include "pktsim/cc.h"

#include <algorithm>

namespace m3 {
namespace {

class Timely final : public CcModule {
 public:
  Timely(const NetConfig& cfg, const CcContext& ctx)
      : tlow_(cfg.timely_tlow),
        thigh_(cfg.timely_thigh),
        min_rtt_(std::max<Ns>(ctx.base_rtt, 1)),
        min_rate_(ctx.nic_rate / 1000.0),
        max_rate_(ctx.nic_rate),
        delta_(0.01 * ctx.nic_rate),
        window_cap_(static_cast<double>(
            std::max<Bytes>(2 * ctx.bdp, std::max(cfg.init_window, ctx.mtu)))),
        rate_(ctx.nic_rate) {}

  void OnAck(Bytes /*newly_acked*/, bool /*marked*/, Ns rtt, double /*int_u*/, Ns /*now*/) override {
    if (prev_rtt_ == 0) {
      prev_rtt_ = rtt;
      return;
    }
    const double new_diff = static_cast<double>(rtt - prev_rtt_);
    prev_rtt_ = rtt;
    rtt_diff_ewma_ = (1.0 - kAlpha) * rtt_diff_ewma_ + kAlpha * new_diff;
    const double norm_grad = rtt_diff_ewma_ / static_cast<double>(min_rtt_);

    if (rtt < tlow_) {
      rate_ = std::min(max_rate_, rate_ + delta_);
      hai_count_ = 0;
      return;
    }
    if (rtt > thigh_) {
      rate_ = std::max(min_rate_,
                       rate_ * (1.0 - kBeta * (1.0 - static_cast<double>(thigh_) /
                                                         static_cast<double>(rtt))));
      hai_count_ = 0;
      return;
    }
    if (norm_grad <= 0.0) {
      ++hai_count_;
      const double n = hai_count_ >= kHaiThresh ? 5.0 : 1.0;
      rate_ = std::min(max_rate_, rate_ + n * delta_);
    } else {
      hai_count_ = 0;
      rate_ = std::max(min_rate_, rate_ * std::max(0.5, 1.0 - kBeta * norm_grad));
    }
  }

  void OnTimeout(Ns /*now*/) override {
    rate_ = std::max(min_rate_, rate_ / 2.0);
    hai_count_ = 0;
  }

  double cwnd() const override { return window_cap_; }
  double rate() const override { return rate_; }

 private:
  static constexpr double kAlpha = 0.3;  // gradient EWMA weight
  static constexpr double kBeta = 0.8;   // multiplicative decrease factor
  static constexpr int kHaiThresh = 5;

  Ns tlow_;
  Ns thigh_;
  Ns min_rtt_;
  double min_rate_;
  double max_rate_;
  double delta_;
  double window_cap_;
  double rate_;
  Ns prev_rtt_ = 0;
  double rtt_diff_ewma_ = 0.0;
  int hai_count_ = 0;
};

}  // namespace

std::unique_ptr<CcModule> MakeTimely(const NetConfig& cfg, const CcContext& ctx) {
  return std::make_unique<Timely>(cfg, ctx);
}

}  // namespace m3
