// Min-heap event queue for the packet simulator. Ties on time are broken by
// insertion sequence so runs are fully deterministic.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/units.h"

namespace m3 {

enum class EvType : std::uint8_t {
  kFlowArrival,  // a = flow index
  kTxDone,       // a = link id (port finished serializing its current packet)
  kDeliver,      // a = link id, b = packet ref (propagation finished)
  kPace,         // a = flow index (rate-based sender may emit)
  kRto,          // a = flow index (check retransmission deadline)
};

struct Event {
  Ns t = 0;
  std::uint64_t seq = 0;  // FIFO tie-break
  EvType type = EvType::kFlowArrival;
  std::int32_t a = 0;
  std::int32_t b = 0;
};

class EventQueue {
 public:
  void Push(Ns t, EvType type, std::int32_t a, std::int32_t b = 0);
  Event Pop();
  bool Empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  std::uint64_t total_pushed() const { return next_seq_; }

 private:
  struct Later {
    bool operator()(const Event& x, const Event& y) const {
      if (x.t != y.t) return x.t > y.t;
      return x.seq > y.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace m3
