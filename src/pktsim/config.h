// Network configuration knobs (paper Table 4): congestion control protocol
// and parameters, initial window, switch buffer size, and the PFC flag.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.h"
#include "util/units.h"

namespace m3 {

enum class CcType : std::uint8_t { kDctcp = 0, kTimely = 1, kDcqcn = 2, kHpcc = 3 };

constexpr int kNumCcTypes = 4;

const char* CcName(CcType cc);
CcType CcFromName(const std::string& name);

struct NetConfig {
  CcType cc = CcType::kDctcp;
  Bytes init_window = 15 * kKB;  // Table 4: 5-30KB
  Bytes buffer = 300 * kKB;      // per egress port; Table 4: 200-500KB
  bool pfc = false;

  // DCTCP: single marking threshold K (5-20KB).
  Bytes dctcp_k = 10 * kKB;
  // DCQCN: RED-style marking between (Kmin, Kmax) (20-50KB, 50-100KB).
  Bytes dcqcn_kmin = 30 * kKB;
  Bytes dcqcn_kmax = 70 * kKB;
  // HPCC: target utilization eta (0.70-0.95) and additive rate (500-1000 Mbps).
  double hpcc_eta = 0.90;
  double hpcc_rate_ai_gbps = 0.75;
  // TIMELY: RTT thresholds (Tlow 40-60us, Thigh 100-150us).
  Ns timely_tlow = 50 * kUs;
  Ns timely_thigh = 120 * kUs;

  // Framing.
  Bytes mtu = 1000;
  Bytes hdr = 48;

  // Seed for the simulator's internal randomness (probabilistic marking).
  std::uint64_t seed = 7;

  /// Uniformly samples a configuration from the Table 4 space.
  static NetConfig Sample(Rng& rng);

  /// One-line human-readable description for logs and reports.
  std::string ToString() const;
};

}  // namespace m3
