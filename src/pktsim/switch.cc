#include "pktsim/switch.h"

#include <algorithm>

namespace m3 {

bool ShouldMarkEcn(const NetConfig& cfg, Bytes qbytes_after, Rng& rng) {
  switch (cfg.cc) {
    case CcType::kDctcp:
      return qbytes_after >= cfg.dctcp_k;
    case CcType::kDcqcn: {
      if (qbytes_after < cfg.dcqcn_kmin) return false;
      if (qbytes_after >= cfg.dcqcn_kmax) return true;
      constexpr double kPmax = 0.2;
      const double frac = static_cast<double>(qbytes_after - cfg.dcqcn_kmin) /
                          static_cast<double>(cfg.dcqcn_kmax - cfg.dcqcn_kmin);
      return rng.NextDouble() < frac * kPmax;
    }
    case CcType::kHpcc:   // HPCC senders use INT, not ECN
    case CcType::kTimely:  // TIMELY is purely RTT-driven
      return false;
  }
  return false;
}

void UpdatePortUtil(Port& port, Bpns rate, Bytes bytes, Ns now) {
  constexpr Ns kWindow = 10 * kUs;
  constexpr double kWeight = 0.3;
  if (port.util_win_start == 0) port.util_win_start = now;
  port.util_win_bytes += bytes;
  const Ns elapsed = now - port.util_win_start;
  if (elapsed >= kWindow) {
    const double inst = std::min(
        1.0, static_cast<double>(port.util_win_bytes) / (rate * static_cast<double>(elapsed)));
    port.util_ewma = (1.0 - kWeight) * port.util_ewma + kWeight * inst;
    port.util_win_start = now;
    port.util_win_bytes = 0;
  }
}

double HpccUtilization(const Port& port, Bpns rate, Ns t_ref) {
  const double queue_term =
      static_cast<double>(port.qbytes) / (rate * static_cast<double>(t_ref));
  return queue_term + port.util_ewma;
}

}  // namespace m3
