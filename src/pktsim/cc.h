// Congestion-control modules. Each sender owns one CcModule; the simulator
// feeds it ACK feedback (newly acked bytes, echoed ECN mark, measured RTT,
// and HPCC inline-telemetry utilization) and reads back the current window
// and pacing rate.
//
// Protocol models follow the published algorithms with the simplifications
// documented in each implementation file; all four respond to the same
// Table 4 parameters as the paper.
#pragma once

#include <limits>
#include <memory>

#include "pktsim/config.h"
#include "util/units.h"

namespace m3 {

constexpr double kNoPacing = std::numeric_limits<double>::infinity();

/// Per-flow inputs fixed at flow setup.
struct CcContext {
  Bpns nic_rate = 0.0;  // first-hop (NIC) rate; the fastest a flow can send
  Ns base_rtt = 0;      // unloaded round-trip (data out + ack back)
  Bytes bdp = 0;        // nic_rate * base_rtt
  Bytes mtu = 1000;
  Bytes hdr = 48;
};

class CcModule {
 public:
  virtual ~CcModule() = default;

  /// New cumulative ACK: `newly_acked` > 0 bytes acked, `marked` = echoed
  /// CE bit, `rtt` = measured round-trip, `int_u` = HPCC max utilization.
  virtual void OnAck(Bytes newly_acked, bool marked, Ns rtt, double int_u, Ns now) = 0;

  /// Retransmission timeout (or third duplicate ACK; see simulator docs).
  virtual void OnTimeout(Ns now) = 0;

  /// Current window in bytes; the sender keeps in-flight below this.
  virtual double cwnd() const = 0;

  /// Pacing rate in bytes/ns; kNoPacing means NIC-limited (window only).
  virtual double rate() const = 0;
};

std::unique_ptr<CcModule> MakeDctcp(const NetConfig& cfg, const CcContext& ctx);
std::unique_ptr<CcModule> MakeDcqcn(const NetConfig& cfg, const CcContext& ctx);
std::unique_ptr<CcModule> MakeTimely(const NetConfig& cfg, const CcContext& ctx);
std::unique_ptr<CcModule> MakeHpcc(const NetConfig& cfg, const CcContext& ctx);

/// Dispatch on cfg.cc.
std::unique_ptr<CcModule> MakeCc(const NetConfig& cfg, const CcContext& ctx);

}  // namespace m3
