// DCTCP (Alizadeh et al., SIGCOMM 2010), window-based.
//
// The sender tracks the fraction of ECN-marked bytes per window ("epoch"),
// maintains the EWMA alpha, and multiplicatively decreases by alpha/2 once
// per epoch that saw any mark. Slow start doubles the window each RTT until
// the first mark; afterwards, additive increase of one MSS per RTT.
#include "pktsim/cc.h"

#include <algorithm>

namespace m3 {
namespace {

class Dctcp final : public CcModule {
 public:
  Dctcp(const NetConfig& cfg, const CcContext& ctx)
      : mtu_(static_cast<double>(ctx.mtu)),
        cwnd_(static_cast<double>(std::max(cfg.init_window, ctx.mtu))),
        epoch_budget_(cwnd_) {}

  void OnAck(Bytes newly_acked, bool marked, Ns /*rtt*/, double /*int_u*/, Ns /*now*/) override {
    const double acked = static_cast<double>(newly_acked);
    epoch_acked_ += acked;
    if (marked) {
      epoch_marked_ += acked;
      in_slow_start_ = false;
    }

    if (in_slow_start_) {
      cwnd_ += acked;  // double per RTT
    } else {
      cwnd_ += mtu_ * acked / cwnd_;  // one MSS per RTT
    }

    if (epoch_acked_ >= epoch_budget_) {
      const double frac = epoch_marked_ / epoch_acked_;
      alpha_ = (1.0 - kG) * alpha_ + kG * frac;
      if (epoch_marked_ > 0.0) {
        cwnd_ = std::max(mtu_, cwnd_ * (1.0 - alpha_ / 2.0));
      }
      epoch_acked_ = 0.0;
      epoch_marked_ = 0.0;
      epoch_budget_ = cwnd_;
    }
  }

  void OnTimeout(Ns /*now*/) override {
    in_slow_start_ = false;
    alpha_ = 1.0;
    cwnd_ = mtu_;
    epoch_acked_ = 0.0;
    epoch_marked_ = 0.0;
    epoch_budget_ = cwnd_;
  }

  double cwnd() const override { return cwnd_; }
  double rate() const override { return kNoPacing; }

 private:
  static constexpr double kG = 1.0 / 16.0;

  double mtu_;
  double cwnd_;
  double alpha_ = 0.0;
  bool in_slow_start_ = true;
  double epoch_acked_ = 0.0;
  double epoch_marked_ = 0.0;
  double epoch_budget_;
};

}  // namespace

std::unique_ptr<CcModule> MakeDctcp(const NetConfig& cfg, const CcContext& ctx) {
  return std::make_unique<Dctcp>(cfg, ctx);
}

}  // namespace m3
