// Output port state for the packet simulator. Every link has exactly one
// transmitter (the "port") owned by the link's source node; switch egress
// ports apply buffering, ECN marking, and PFC policies, host ports are
// self-limited by the sender windows and never mark or drop.
#pragma once

#include <array>
#include <deque>

#include "pktsim/config.h"
#include "pktsim/packet.h"
#include "util/rng.h"
#include "util/units.h"
#include "workload/flow.h"

namespace m3 {

struct Port {
  // One FIFO per strict-priority class (class 0 served first); `qbytes`
  // counts all classes (buffer accounting, ECN and PFC thresholds apply to
  // the aggregate, as with shared-buffer switches).
  std::array<std::deque<PacketRef>, kNumPriorities> q;
  Bytes qbytes = 0;         // bytes queued (excludes the in-flight packet)
  bool busy = false;        // currently serializing
  bool paused = false;      // PFC pause asserted by the downstream node
  PacketRef tx_pkt = kNoPacket;

  bool QueuesEmpty() const {
    for (const auto& dq : q) {
      if (!dq.empty()) return false;
    }
    return true;
  }

  /// Pops the head of the highest-priority non-empty queue; kNoPacket if
  /// all queues are empty.
  PacketRef PopHighestPriority() {
    for (auto& dq : q) {
      if (!dq.empty()) {
        const PacketRef r = dq.front();
        dq.pop_front();
        return r;
      }
    }
    return kNoPacket;
  }

  // HPCC inline telemetry: EWMA of link utilization over ~10us windows.
  double util_ewma = 0.0;
  Ns util_win_start = 0;
  Bytes util_win_bytes = 0;

  Bytes max_qbytes = 0;  // high-water mark, for stats
};

/// Marking decision for a data packet entering a switch egress queue, per
/// the configured protocol: DCTCP/HPCC use a step threshold at K; DCQCN uses
/// RED-style probabilistic marking between Kmin and Kmax; TIMELY never
/// marks. `qbytes_after` is the queue length including this packet.
bool ShouldMarkEcn(const NetConfig& cfg, Bytes qbytes_after, Rng& rng);

/// Updates a port's utilization EWMA after serializing `bytes` ending at
/// `now` (10us windows, weight 0.3).
void UpdatePortUtil(Port& port, Bpns rate, Bytes bytes, Ns now);

/// HPCC per-hop utilization sample: queue term plus throughput term.
double HpccUtilization(const Port& port, Bpns rate, Ns t_ref = 10 * kUs);

}  // namespace m3
