// DCQCN (Zhu et al., SIGCOMM 2015), rate-based.
//
// Congestion notifications (we model the CNP as the echoed ECN mark,
// rate-limited to one reaction per 50us) trigger a multiplicative decrease
// governed by the EWMA alpha. Recovery alternates fast recovery (binary
// search back to the target rate) and additive/hyper increase, driven by a
// 55us timer that we advance from ACK processing (ACKs arrive much more
// often than the timer period while the flow is active).
#include "pktsim/cc.h"

#include <algorithm>

namespace m3 {
namespace {

class Dcqcn final : public CcModule {
 public:
  Dcqcn(const NetConfig& cfg, const CcContext& ctx)
      : min_rate_(ctx.nic_rate / 1000.0),
        max_rate_(ctx.nic_rate),
        rate_ai_(GbpsToBpns(0.04 * BpnsToGbps(ctx.nic_rate))),  // 40 Mbps at 10G
        window_cap_(static_cast<double>(
            std::max<Bytes>(2 * ctx.bdp, std::max(cfg.init_window, ctx.mtu)))),
        rc_(ctx.nic_rate),
        rt_(ctx.nic_rate) {}

  void OnAck(Bytes /*newly_acked*/, bool marked, Ns /*rtt*/, double /*int_u*/, Ns now) override {
    if (last_event_ == 0) last_event_ = now;
    if (marked && now - last_cnp_ >= kCnpInterval) {
      last_cnp_ = now;
      alpha_ = (1.0 - kG) * alpha_ + kG;
      rt_ = rc_;
      rc_ = std::max(min_rate_, rc_ * (1.0 - alpha_ / 2.0));
      stage_ = 0;
      last_event_ = now;
      return;
    }
    // Advance the increase timer; possibly several periods at once if ACKs
    // were sparse.
    while (now - last_event_ >= kTimer) {
      last_event_ += kTimer;
      alpha_ = (1.0 - kG) * alpha_;
      ++stage_;
      if (stage_ > kFastRecoverySteps) {
        rt_ = std::min(max_rate_, rt_ + rate_ai_);
      }
      rc_ = std::min(max_rate_, (rc_ + rt_) / 2.0);
    }
  }

  void OnTimeout(Ns now) override {
    rc_ = std::max(min_rate_, rc_ / 2.0);
    rt_ = rc_;
    stage_ = 0;
    last_event_ = now;
  }

  double cwnd() const override { return window_cap_; }
  double rate() const override { return rc_; }

 private:
  static constexpr double kG = 1.0 / 16.0;
  static constexpr Ns kCnpInterval = 50 * kUs;
  static constexpr Ns kTimer = 55 * kUs;
  static constexpr int kFastRecoverySteps = 5;

  double min_rate_;
  double max_rate_;
  double rate_ai_;
  double window_cap_;
  double rc_;
  double rt_;
  double alpha_ = 1.0;
  int stage_ = 0;
  Ns last_cnp_ = -kCnpInterval;
  Ns last_event_ = 0;
};

}  // namespace

std::unique_ptr<CcModule> MakeDcqcn(const NetConfig& cfg, const CcContext& ctx) {
  return std::make_unique<Dcqcn>(cfg, ctx);
}

}  // namespace m3
