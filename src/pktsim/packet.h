// Packet representation and pool for the discrete-event packet simulator.
//
// Packets live in a pooled vector and are referenced by index, so the hot
// path never allocates.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.h"
#include "util/units.h"
#include "workload/flow.h"

namespace m3 {

using PacketRef = std::int32_t;
constexpr PacketRef kNoPacket = -1;

struct Packet {
  FlowId flow = 0;
  std::int64_t seq = 0;    // data: payload byte offset; ack: cumulative bytes
  std::int32_t payload = 0;  // payload bytes (0 for pure ACKs)
  std::uint8_t hop = 0;      // next index into the (forward or reverse) route
  bool is_ack = false;
  bool ecn = false;          // data: CE mark; ack: echoed mark
  float int_u = 0.0f;        // HPCC inline telemetry: max utilization seen
  Ns sent_time = 0;          // data: departure time; ack: echoed for RTT
  LinkId in_link = kInvalidLink;  // link the packet arrived on (PFC accounting)
  std::uint8_t priority = 0;      // strict-priority class (0 = highest)
};

class PacketPool {
 public:
  PacketRef Alloc() {
    if (!free_.empty()) {
      const PacketRef r = free_.back();
      free_.pop_back();
      pool_[static_cast<std::size_t>(r)] = Packet{};
      return r;
    }
    pool_.emplace_back();
    return static_cast<PacketRef>(pool_.size() - 1);
  }

  void Free(PacketRef r) { free_.push_back(r); }

  Packet& operator[](PacketRef r) { return pool_[static_cast<std::size_t>(r)]; }
  const Packet& operator[](PacketRef r) const { return pool_[static_cast<std::size_t>(r)]; }

  std::size_t capacity() const { return pool_.size(); }
  std::size_t num_live() const { return pool_.size() - free_.size(); }

 private:
  std::vector<Packet> pool_;
  std::vector<PacketRef> free_;
};

}  // namespace m3
