#include "pktsim/simulator.h"

#include <algorithm>

namespace m3 {
namespace {

constexpr Ns kDefaultMaxTime = 10'000 * kSec;

}  // namespace

PacketSimulator::PacketSimulator(const Topology& topo, std::vector<Flow> flows,
                                 const NetConfig& cfg)
    : topo_(topo),
      flows_(std::move(flows)),
      cfg_(cfg),
      mark_rng_(cfg.seed),
      ports_(topo.num_links()),
      pfc_ingress_(topo.num_links(), 0),
      senders_(flows_.size()),
      receivers_(flows_.size()),
      results_(flows_.size()) {
  pfc_xoff_ = cfg_.buffer / 2;
  pfc_xon_ = cfg_.buffer / 4;

  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const Flow& f = flows_[i];
    if (f.size <= 0 || f.path.empty() || !topo_.ValidateRoute(f.src, f.dst, f.path)) {
      throw std::invalid_argument("PacketSimulator: flow " + std::to_string(i) +
                                  " has an invalid path or size");
    }
    Sender& s = senders_[i];
    s.rev_path.reserve(f.path.size());
    for (auto it = f.path.rbegin(); it != f.path.rend(); ++it) {
      const LinkId rev = topo_.ReverseLink(*it);
      if (rev == kInvalidLink) {
        throw std::invalid_argument("PacketSimulator: path link has no reverse link");
      }
      s.rev_path.push_back(rev);
    }

    // Unloaded RTT: first data packet out plus header-only ACK back.
    Ns rtt = 0;
    for (LinkId l : f.path) {
      const Link& lk = topo_.link(l);
      rtt += lk.delay + TransmissionTime(std::min(f.size, cfg_.mtu) + cfg_.hdr, lk.rate);
    }
    for (LinkId l : s.rev_path) {
      const Link& lk = topo_.link(l);
      rtt += lk.delay + TransmissionTime(cfg_.hdr, lk.rate);
    }
    s.base_rtt = rtt;

    CcContext ctx;
    ctx.nic_rate = topo_.link(f.path.front()).rate;
    ctx.base_rtt = rtt;
    ctx.bdp = static_cast<Bytes>(ctx.nic_rate * static_cast<double>(rtt));
    ctx.mtu = cfg_.mtu;
    ctx.hdr = cfg_.hdr;
    s.cc = MakeCc(cfg_, ctx);

    results_[i].id = f.id;
    results_[i].size = f.size;
    results_[i].ideal_fct = IdealFct(topo_, f.path, f.size, cfg_.mtu, cfg_.hdr);

    events_.Push(f.arrival, EvType::kFlowArrival, static_cast<std::int32_t>(i));
  }
}

std::vector<FlowResult> PacketSimulator::Run(Ns max_time) {
  if (max_time <= 0) max_time = kDefaultMaxTime;
  while (!events_.Empty() && completed_ < flows_.size()) {
    const Event e = events_.Pop();
    now_ = e.t;
    ++stats_.events;
    if (now_ > max_time) {
      throw std::runtime_error("PacketSimulator exceeded max simulated time (" +
                               std::to_string(completed_) + "/" +
                               std::to_string(flows_.size()) + " flows completed)");
    }
    switch (e.type) {
      case EvType::kFlowArrival:
        HandleArrival(e.a);
        break;
      case EvType::kTxDone:
        HandleTxDone(e.a);
        break;
      case EvType::kDeliver:
        HandleDeliver(e.a, e.b);
        break;
      case EvType::kPace: {
        senders_[static_cast<std::size_t>(e.a)].pace_scheduled = false;
        TrySend(e.a);
        break;
      }
      case EvType::kRto:
        HandleRtoEvent(e.a);
        break;
    }
  }
  if (completed_ < flows_.size()) {
    throw std::runtime_error("PacketSimulator: event queue drained with " +
                             std::to_string(flows_.size() - completed_) +
                             " incomplete flows");
  }
  stats_.end_time = now_;
  return results_;
}

void PacketSimulator::HandleArrival(std::int32_t f) {
  senders_[static_cast<std::size_t>(f)].started = true;
  TrySend(f);
}

void PacketSimulator::TrySend(std::int32_t f) {
  Sender& s = senders_[static_cast<std::size_t>(f)];
  const Flow& flow = flows_[static_cast<std::size_t>(f)];
  if (!s.started || s.done) return;

  while (s.next_seq < flow.size) {
    const double cwnd = s.cc->cwnd();
    const std::int64_t inflight = s.next_seq - s.snd_una;
    if (static_cast<double>(inflight) + 1.0 > cwnd) break;  // window-limited

    const double pace_rate = s.cc->rate();
    if (pace_rate != kNoPacing) {
      if (now_ < s.next_pace) {
        if (!s.pace_scheduled) {
          s.pace_scheduled = true;
          events_.Push(s.next_pace, EvType::kPace, f);
        }
        break;
      }
    }

    const std::int32_t payload =
        static_cast<std::int32_t>(std::min<std::int64_t>(cfg_.mtu, flow.size - s.next_seq));
    EmitData(f, s.next_seq, payload);
    s.next_seq += payload;

    if (pace_rate != kNoPacing) {
      const double gap = static_cast<double>(payload + cfg_.hdr) / pace_rate;
      s.next_pace = now_ + static_cast<Ns>(gap) + 1;
    }
  }
  if (s.rto_deadline == kNever && s.snd_una < flow.size && s.next_seq > s.snd_una) {
    ArmRto(f);
  }
}

void PacketSimulator::EmitData(std::int32_t f, std::int64_t seq, std::int32_t payload) {
  const Flow& flow = flows_[static_cast<std::size_t>(f)];
  const PacketRef ref = pool_.Alloc();
  Packet& p = pool_[ref];
  p.flow = static_cast<FlowId>(f);
  p.seq = seq;
  p.payload = payload;
  p.hop = 0;
  p.is_ack = false;
  p.sent_time = now_;
  p.in_link = kInvalidLink;
  p.priority = flow.priority;
  ++stats_.data_pkts;
  EnqueueAtPort(flow.path.front(), ref);
}

void PacketSimulator::EnqueueAtPort(LinkId l, PacketRef ref) {
  Port& port = ports_[static_cast<std::size_t>(l)];
  const Link& lk = topo_.link(l);
  Packet& p = pool_[ref];
  const Bytes bytes = PacketBytes(p);
  const bool switch_port = topo_.kind(lk.src) == NodeKind::kSwitch;

  if (switch_port && !cfg_.pfc && port.qbytes + bytes > cfg_.buffer) {
    ++stats_.drops;
    pool_.Free(ref);
    return;
  }
  // ECN marking applies at every egress queue, including the sender's own
  // NIC (as with qdisc/RED marking in standard DC simulation setups);
  // without it, source-bottlenecked flows would see no congestion signal.
  if (!p.is_ack && ShouldMarkEcn(cfg_, port.qbytes + bytes, mark_rng_)) {
    p.ecn = true;
    ++stats_.ecn_marks;
  }
  if (switch_port) {
    if (cfg_.pfc && p.in_link != kInvalidLink) {
      Bytes& ingress = pfc_ingress_[static_cast<std::size_t>(p.in_link)];
      ingress += bytes;
      Port& upstream = ports_[static_cast<std::size_t>(p.in_link)];
      if (ingress > pfc_xoff_ && !upstream.paused) upstream.paused = true;
    }
  }

  port.q[std::min<std::size_t>(p.priority, kNumPriorities - 1)].push_back(ref);
  port.qbytes += bytes;
  port.max_qbytes = std::max(port.max_qbytes, port.qbytes);
  stats_.max_qbytes = std::max(stats_.max_qbytes, port.qbytes);
  if (!port.busy && !port.paused) StartTx(l);
}

void PacketSimulator::StartTx(LinkId l) {
  Port& port = ports_[static_cast<std::size_t>(l)];
  if (port.busy || port.paused) return;
  const PacketRef ref = port.PopHighestPriority();
  if (ref == kNoPacket) return;
  Packet& p = pool_[ref];
  const Bytes bytes = PacketBytes(p);
  port.qbytes -= bytes;
  port.busy = true;
  port.tx_pkt = ref;

  const Link& lk = topo_.link(l);
  if (!p.is_ack && cfg_.cc == CcType::kHpcc) {
    p.int_u = std::max(p.int_u, static_cast<float>(HpccUtilization(port, lk.rate)));
  }
  events_.Push(now_ + TransmissionTime(bytes, lk.rate), EvType::kTxDone, l);
}

void PacketSimulator::HandleTxDone(LinkId l) {
  Port& port = ports_[static_cast<std::size_t>(l)];
  const PacketRef ref = port.tx_pkt;
  port.tx_pkt = kNoPacket;
  port.busy = false;
  const Link& lk = topo_.link(l);
  Packet& p = pool_[ref];
  const Bytes bytes = PacketBytes(p);

  UpdatePortUtil(port, lk.rate, bytes, now_);

  // The packet has fully left this node's buffer: release PFC accounting.
  if (cfg_.pfc && p.in_link != kInvalidLink &&
      topo_.kind(lk.src) == NodeKind::kSwitch) {
    Bytes& ingress = pfc_ingress_[static_cast<std::size_t>(p.in_link)];
    ingress -= bytes;
    Port& upstream = ports_[static_cast<std::size_t>(p.in_link)];
    if (upstream.paused && ingress < pfc_xon_) {
      upstream.paused = false;
      StartTx(p.in_link);
    }
  }

  events_.Push(now_ + lk.delay, EvType::kDeliver, l, ref);
  if (!port.paused) StartTx(l);
}

void PacketSimulator::HandleDeliver(LinkId l, PacketRef ref) {
  Packet& p = pool_[ref];
  p.in_link = l;
  const NodeId node = topo_.link(l).dst;
  if (topo_.kind(node) == NodeKind::kSwitch) {
    const Sender& s = senders_[static_cast<std::size_t>(p.flow)];
    const Route& route =
        p.is_ack ? s.rev_path : flows_[static_cast<std::size_t>(p.flow)].path;
    ++p.hop;
    EnqueueAtPort(route[p.hop], ref);
    return;
  }
  if (p.is_ack) {
    HandleAckAtSender(ref);
  } else {
    HandleDataAtHost(ref);
  }
}

void PacketSimulator::HandleDataAtHost(PacketRef ref) {
  // Copy: pool_.Alloc() below may reallocate the pool and invalidate
  // references into it.
  const Packet p = pool_[ref];
  const std::size_t f = static_cast<std::size_t>(p.flow);
  const Flow& flow = flows_[f];
  Receiver& r = receivers_[f];

  if (p.seq == r.recv_next) {
    r.recv_next += p.payload;
    if (r.recv_next >= flow.size && !r.completed) {
      r.completed = true;
      ++completed_;
      FlowResult& res = results_[f];
      res.fct = now_ - flow.arrival;
      res.slowdown = res.ideal_fct > 0
                         ? static_cast<double>(res.fct) / static_cast<double>(res.ideal_fct)
                         : 1.0;
    }
  }
  // Cumulative ACK (also for out-of-order / duplicate data).
  const PacketRef ack_ref = pool_.Alloc();
  Packet& ack = pool_[ack_ref];
  ack.flow = p.flow;
  ack.seq = r.recv_next;
  ack.payload = 0;
  ack.hop = 0;
  ack.is_ack = true;
  ack.ecn = p.ecn;
  ack.int_u = p.int_u;
  ack.sent_time = p.sent_time;
  ack.in_link = kInvalidLink;
  ack.priority = flow.priority;
  ++stats_.acks;
  pool_.Free(ref);
  EnqueueAtPort(senders_[f].rev_path.front(), ack_ref);
}

void PacketSimulator::HandleAckAtSender(PacketRef ref) {
  Packet& p = pool_[ref];
  const std::int32_t f = p.flow;
  Sender& s = senders_[static_cast<std::size_t>(f)];
  const Flow& flow = flows_[static_cast<std::size_t>(f)];

  if (p.seq > s.snd_una) {
    const Bytes newly = p.seq - s.snd_una;
    s.snd_una = p.seq;
    s.dupacks = 0;
    s.rto_backoff = 0;
    s.in_recovery = false;
    const Ns rtt = now_ - p.sent_time;
    s.srtt = s.srtt == 0 ? rtt : (7 * s.srtt + rtt) / 8;
    s.cc->OnAck(newly, p.ecn, rtt, p.int_u, now_);
    if (s.snd_una >= flow.size) {
      s.done = true;
      s.rto_deadline = kNever;
    } else {
      s.rto_deadline = now_ + CurrentRto(s);
      ArmRto(f);
      TrySend(f);
    }
  } else if (!s.done) {
    // Go-back-N retransmissions themselves generate duplicate ACKs; only
    // count duplicates toward a new fast retransmit once the previous
    // recovery finished (a new cumulative ACK arrived).
    if (!s.in_recovery && ++s.dupacks >= 3) {
      s.dupacks = 0;
      s.in_recovery = true;
      ++stats_.retransmissions;
      ++results_[static_cast<std::size_t>(f)].retransmits;
      s.next_seq = s.snd_una;
      s.cc->OnTimeout(now_);
      s.rto_deadline = now_ + CurrentRto(s);
      TrySend(f);
    }
  }
  pool_.Free(ref);
}

Ns PacketSimulator::CurrentRto(const Sender& s) const {
  // Adaptive base: queueing can push the real RTT far beyond the unloaded
  // RTT, so the timer tracks the smoothed measurement.
  const Ns effective_rtt = std::max(s.base_rtt, 3 * s.srtt);
  Ns rto = RtoFor(effective_rtt, s.rto_backoff);
  // Rate-paced senders can legitimately go several pacing gaps between
  // ACKs; a pure RTT-based RTO would fire spuriously and spiral the rate
  // down. Give the timer at least eight pacing gaps of slack.
  const double r = s.cc->rate();
  if (r != kNoPacing && r > 0.0) {
    const Ns gap = static_cast<Ns>(8.0 * static_cast<double>(cfg_.mtu + cfg_.hdr) / r);
    rto = std::max(rto, gap);
  }
  return rto;
}

void PacketSimulator::ArmRto(std::int32_t f) {
  Sender& s = senders_[static_cast<std::size_t>(f)];
  if (s.rto_deadline == kNever) {
    s.rto_deadline = now_ + CurrentRto(s);
  }
  if (!s.rto_event_pending) {
    s.rto_event_pending = true;
    events_.Push(s.rto_deadline, EvType::kRto, f);
  }
}

void PacketSimulator::HandleRtoEvent(std::int32_t f) {
  Sender& s = senders_[static_cast<std::size_t>(f)];
  s.rto_event_pending = false;
  if (s.done || s.rto_deadline == kNever) return;
  if (now_ < s.rto_deadline) {
    s.rto_event_pending = true;
    events_.Push(s.rto_deadline, EvType::kRto, f);
    return;
  }
  DoTimeout(f);
}

void PacketSimulator::DoTimeout(std::int32_t f) {
  Sender& s = senders_[static_cast<std::size_t>(f)];
  ++stats_.timeouts;
  ++stats_.retransmissions;
  ++results_[static_cast<std::size_t>(f)].retransmits;
  ++results_[static_cast<std::size_t>(f)].timeouts;
  s.in_recovery = true;
  s.next_seq = s.snd_una;
  s.cc->OnTimeout(now_);
  ++s.rto_backoff;
  s.rto_deadline = now_ + CurrentRto(s);
  ArmRto(f);
  TrySend(f);
}

std::vector<FlowResult> RunPacketSim(const Topology& topo, std::vector<Flow> flows,
                                     const NetConfig& cfg, Ns max_time) {
  PacketSimulator sim(topo, std::move(flows), cfg);
  return sim.Run(max_time);
}

}  // namespace m3
