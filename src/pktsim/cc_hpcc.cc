// HPCC (Li et al., SIGCOMM 2019), window-based with inline telemetry (INT).
//
// Switches stamp each data packet with the maximum normalized utilization
// u = qlen/(rate*T) + txRate/rate seen along the path; the sender steers
// its window toward W = Wc * eta / u + W_ai, updating the reference window
// Wc once per RTT. Pacing rate follows the window (W / baseRTT).
//
// Simplification vs. the paper: we carry a single max-utilization scalar
// rather than per-hop (qlen, txBytes, ts) triples; this preserves the
// control law's response (multiplicative convergence toward eta with
// additive probing) while keeping packets small.
#include "pktsim/cc.h"

#include <algorithm>

namespace m3 {
namespace {

class Hpcc final : public CcModule {
 public:
  Hpcc(const NetConfig& cfg, const CcContext& ctx)
      : eta_(cfg.hpcc_eta),
        mtu_(static_cast<double>(ctx.mtu)),
        base_rtt_(std::max<Ns>(ctx.base_rtt, 1)),
        max_window_(static_cast<double>(
            std::max<Bytes>(2 * ctx.bdp, std::max(cfg.init_window, ctx.mtu)))),
        w_ai_(GbpsToBpns(cfg.hpcc_rate_ai_gbps) * static_cast<double>(base_rtt_) /
              100.0),  // RateAI spread over ~100 ACKs per RTT
        w_(static_cast<double>(std::max(cfg.init_window, ctx.mtu))),
        wc_(w_) {}

  void OnAck(Bytes /*newly_acked*/, bool /*marked*/, Ns /*rtt*/, double int_u, Ns now) override {
    const double u = std::max(int_u, 1e-3);
    // Multiplicative steering toward target utilization plus additive probe.
    double next = wc_ * eta_ / u + w_ai_;
    w_ = std::clamp(next, mtu_, max_window_);
    if (now - last_update_ >= base_rtt_) {
      wc_ = w_;
      last_update_ = now;
    }
  }

  void OnTimeout(Ns now) override {
    w_ = std::max(mtu_, w_ / 2.0);
    wc_ = w_;
    last_update_ = now;
  }

  double cwnd() const override { return w_; }
  double rate() const override { return w_ / static_cast<double>(base_rtt_); }

 private:
  double eta_;
  double mtu_;
  Ns base_rtt_;
  double max_window_;
  double w_ai_;
  double w_;
  double wc_;
  Ns last_update_ = 0;
};

}  // namespace

std::unique_ptr<CcModule> MakeHpcc(const NetConfig& cfg, const CcContext& ctx) {
  return std::make_unique<Hpcc>(cfg, ctx);
}

std::unique_ptr<CcModule> MakeCc(const NetConfig& cfg, const CcContext& ctx) {
  switch (cfg.cc) {
    case CcType::kDctcp:
      return MakeDctcp(cfg, ctx);
    case CcType::kTimely:
      return MakeTimely(cfg, ctx);
    case CcType::kDcqcn:
      return MakeDcqcn(cfg, ctx);
    case CcType::kHpcc:
      return MakeHpcc(cfg, ctx);
  }
  return MakeDctcp(cfg, ctx);
}

}  // namespace m3
