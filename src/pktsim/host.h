// Per-flow endpoint state: the sender (window/pacing, go-back-N recovery)
// and the receiver (cumulative in-order byte counter, ACK generation).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "pktsim/cc.h"
#include "topo/topology.h"
#include "util/units.h"

namespace m3 {

constexpr Ns kNever = std::numeric_limits<Ns>::max();

struct Sender {
  std::int64_t next_seq = 0;  // next payload byte to send
  std::int64_t snd_una = 0;   // lowest unacked byte
  std::unique_ptr<CcModule> cc;
  Route rev_path;  // ACK route, reverse of the flow's path
  Ns base_rtt = 0;
  Ns srtt = 0;  // smoothed measured RTT (EWMA 1/8), for the adaptive RTO
  bool started = false;
  bool done = false;  // fully acked

  // Pacing (rate-based protocols).
  Ns next_pace = 0;
  bool pace_scheduled = false;

  // Loss recovery: lazy retransmission timer + duplicate-ACK counter.
  Ns rto_deadline = kNever;
  bool rto_event_pending = false;
  int rto_backoff = 0;
  int dupacks = 0;
  bool in_recovery = false;  // suppress dup-ACK retransmits until a new ACK
};

struct Receiver {
  std::int64_t recv_next = 0;  // cumulative in-order bytes received
  bool completed = false;
};

/// Retransmission timeout for the given backoff stage: 3x base RTT plus a
/// fixed floor, doubled per consecutive timeout (capped).
Ns RtoFor(Ns base_rtt, int backoff);

}  // namespace m3
