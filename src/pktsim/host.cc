#include "pktsim/host.h"

#include <algorithm>

namespace m3 {

Ns RtoFor(Ns base_rtt, int backoff) {
  const Ns base = 3 * base_rtt + 100 * kUs;
  const int shift = std::min(backoff, 6);
  return base << shift;
}

}  // namespace m3
