// The packet-level discrete-event simulator: m3's ground-truth substrate
// (the role ns-3 plays in the paper).
//
// Model summary:
//  - Output-queued store-and-forward switches, one FIFO byte queue per
//    egress port, finite per-port buffers with tail drop (PFC off) or
//    ingress-accounted link-level pause (PFC on).
//  - ECN marking at switch egress per the configured protocol (see
//    ShouldMarkEcn); HPCC inline telemetry stamped at dequeue.
//  - Per-flow senders run DCTCP / DCQCN / TIMELY / HPCC (window and/or
//    pacing), with go-back-N loss recovery (triple-dup-ACK fast retransmit
//    treated as a timeout-grade event, plus an RTO with exponential
//    backoff).
//  - ACKs are real packets that traverse the reverse path through the same
//    queues (they carry header bytes only).
//
// A flow's FCT is the time its last payload byte reaches the receiver,
// minus its arrival time; slowdown is FCT / IdealFct for its size and path.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "pktsim/config.h"
#include "pktsim/event_queue.h"
#include "pktsim/host.h"
#include "pktsim/packet.h"
#include "pktsim/switch.h"
#include "topo/topology.h"
#include "workload/flow.h"

namespace m3 {

class PacketSimulator {
 public:
  struct Stats {
    std::uint64_t events = 0;
    std::uint64_t data_pkts = 0;
    std::uint64_t acks = 0;
    std::uint64_t drops = 0;
    std::uint64_t ecn_marks = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t timeouts = 0;
    Bytes max_qbytes = 0;
    Ns end_time = 0;
  };

  /// `flows` must have valid host-to-host paths in `topo` and positive
  /// sizes. The topology reference must outlive the simulator.
  PacketSimulator(const Topology& topo, std::vector<Flow> flows, const NetConfig& cfg);

  /// Runs until every flow completes. `max_time` (0 = default guard of
  /// 10,000 simulated seconds) bounds runaway simulations; exceeding it
  /// throws std::runtime_error.
  std::vector<FlowResult> Run(Ns max_time = 0);

  const Stats& stats() const { return stats_; }

 private:
  void HandleArrival(std::int32_t f);
  void TrySend(std::int32_t f);
  void EmitData(std::int32_t f, std::int64_t seq, std::int32_t payload);
  void EnqueueAtPort(LinkId l, PacketRef p);
  void StartTx(LinkId l);
  void HandleTxDone(LinkId l);
  void HandleDeliver(LinkId l, PacketRef p);
  void HandleDataAtHost(PacketRef p);
  void HandleAckAtSender(PacketRef p);
  Ns CurrentRto(const Sender& s) const;
  void ArmRto(std::int32_t f);
  void HandleRtoEvent(std::int32_t f);
  void DoTimeout(std::int32_t f);
  Bytes PacketBytes(const Packet& p) const {
    return static_cast<Bytes>(p.payload) + cfg_.hdr;
  }

  const Topology& topo_;
  std::vector<Flow> flows_;
  NetConfig cfg_;
  Rng mark_rng_;

  EventQueue events_;
  PacketPool pool_;
  std::vector<Port> ports_;            // one per link
  std::vector<Bytes> pfc_ingress_;     // bytes buffered downstream, per in-link
  std::vector<Sender> senders_;        // one per flow
  std::vector<Receiver> receivers_;    // one per flow
  std::vector<FlowResult> results_;
  std::size_t completed_ = 0;
  Ns now_ = 0;
  Stats stats_;

  Bytes pfc_xoff_ = 0;
  Bytes pfc_xon_ = 0;
};

/// One-shot convenience wrapper.
std::vector<FlowResult> RunPacketSim(const Topology& topo, std::vector<Flow> flows,
                                     const NetConfig& cfg, Ns max_time = 0);

}  // namespace m3
