// Units used throughout m3.
//
// Time is integral nanoseconds (Ns). Data sizes are integral bytes. Link
// rates are carried as double bytes-per-nanosecond internally (1 Gbps ==
// 0.125 B/ns) so that transmission times divide exactly for common
// rate/packet-size combinations.
#pragma once

#include <cstdint>

namespace m3 {

/// Simulation time in nanoseconds.
using Ns = std::int64_t;

/// Data size in bytes.
using Bytes = std::int64_t;

/// Link / flow rate in bytes per nanosecond (1 Gbps == 0.125 B/ns).
using Bpns = double;

constexpr Ns kUs = 1'000;
constexpr Ns kMs = 1'000'000;
constexpr Ns kSec = 1'000'000'000;

constexpr Bytes kKB = 1'000;
constexpr Bytes kMB = 1'000'000;

/// Converts a rate expressed in gigabits per second to bytes per nanosecond.
constexpr Bpns GbpsToBpns(double gbps) noexcept { return gbps / 8.0; }

/// Converts bytes-per-nanosecond back to gigabits per second.
constexpr double BpnsToGbps(Bpns r) noexcept { return r * 8.0; }

/// Time to serialize `size` bytes at rate `r`, rounded up to a whole ns.
constexpr Ns TransmissionTime(Bytes size, Bpns r) noexcept {
  const double t = static_cast<double>(size) / r;
  const Ns whole = static_cast<Ns>(t);
  return (static_cast<double>(whole) < t) ? whole + 1 : whole;
}

/// Converts nanoseconds to (double) seconds, for reporting.
constexpr double NsToSec(Ns t) noexcept { return static_cast<double>(t) / 1e9; }

}  // namespace m3
