#include "util/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace m3 {
namespace {

struct SiteState {
  FaultSpec spec;
  bool armed = false;
  std::uint64_t hits = 0;  // hits recorded while armed (survives Disarm)
};

// Fast path: fault points skip the registry lock entirely when nothing is
// armed, so instrumented hot paths cost one relaxed load in production.
std::atomic<int> g_armed_count{0};

}  // namespace

struct FaultRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, SiteState> sites;
};

FaultInjected::FaultInjected(const std::string& site)
    : std::runtime_error("fault injected at " + site), site_(site) {}

FaultRegistry::FaultRegistry() : impl_(new Impl) {
  if (const char* env = std::getenv("M3_FAULTS"); env != nullptr && *env != '\0') {
    const Status st = ArmFromString(env);
    if (!st.ok()) {
      std::fprintf(stderr, "m3: ignoring malformed M3_FAULTS entry: %s\n",
                   st.message().c_str());
    }
  }
}

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* registry = new FaultRegistry();  // leaked: process-lifetime
  return *registry;
}

void FaultRegistry::Arm(const std::string& site, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  SiteState& s = impl_->sites[site];
  if (!s.armed) g_armed_count.fetch_add(1, std::memory_order_relaxed);
  s.spec = spec;
  s.armed = true;
  s.hits = 0;
}

void FaultRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->sites.find(site);
  if (it != impl_->sites.end() && it->second.armed) {
    it->second.armed = false;
    g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, s] : impl_->sites) {
    if (s.armed) g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
  impl_->sites.clear();
}

bool FaultRegistry::any_armed() const {
  return g_armed_count.load(std::memory_order_relaxed) > 0;
}

std::optional<FaultMode> FaultRegistry::Hit(const char* site) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->sites.find(site);
  if (it == impl_->sites.end() || !it->second.armed) return std::nullopt;
  SiteState& s = it->second;
  const std::uint64_t h = ++s.hits;
  if (h < s.spec.fire_from) return std::nullopt;
  if (s.spec.fire_count >= 0 &&
      h >= s.spec.fire_from + static_cast<std::uint64_t>(s.spec.fire_count)) {
    return std::nullopt;  // window exhausted: the site has healed
  }
  return s.spec.mode;
}

std::uint64_t FaultRegistry::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->sites.find(site);
  return it == impl_->sites.end() ? 0 : it->second.hits;
}

void FaultRegistry::AcquireForkLock() { impl_->mu.lock(); }

void FaultRegistry::ReleaseForkLock() { impl_->mu.unlock(); }

Status FaultRegistry::ArmFromString(const std::string& spec) {
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return Status::InvalidArgument("'" + entry + "' (expected site=mode[@FROM][xCOUNT])");
    }
    const std::string site = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    FaultSpec fs;
    // Split off the optional xCOUNT and @FROM suffixes (in that order from
    // the right, so "throw@2x3" parses as FROM=2, COUNT=3).
    const std::size_t x = rest.find('x');
    std::string count_str;
    if (x != std::string::npos) {
      count_str = rest.substr(x + 1);
      rest = rest.substr(0, x);
    }
    const std::size_t at = rest.find('@');
    std::string from_str;
    if (at != std::string::npos) {
      from_str = rest.substr(at + 1);
      rest = rest.substr(0, at);
    }

    if (rest == "throw") fs.mode = FaultMode::kThrow;
    else if (rest == "nan") fs.mode = FaultMode::kNan;
    else return Status::InvalidArgument("'" + entry + "' (mode must be throw or nan)");

    auto parse_u64 = [](const std::string& s, std::uint64_t* out) {
      // strtoull accepts "-3" by wrapping it to a huge value; require a
      // leading digit so signed or padded input is rejected.
      if (s.empty() || s[0] < '0' || s[0] > '9') return false;
      char* endp = nullptr;
      const unsigned long long v = std::strtoull(s.c_str(), &endp, 10);
      if (endp == s.c_str() || *endp != '\0' || v == 0) return false;
      *out = v;
      return true;
    };
    if (!from_str.empty() && !parse_u64(from_str, &fs.fire_from)) {
      return Status::InvalidArgument("'" + entry + "' (bad @FROM)");
    }
    if (!count_str.empty() && count_str != "*") {
      std::uint64_t c = 0;
      if (!parse_u64(count_str, &c)) {
        return Status::InvalidArgument("'" + entry + "' (bad xCOUNT)");
      }
      fs.fire_count = static_cast<std::int64_t>(c);
    }
    Arm(site, fs);
  }
  return Status::Ok();
}

void FaultPointThrow(const char* site) {
  if (!FaultRegistry::Instance().any_armed()) return;
  const auto mode = FaultRegistry::Instance().Hit(site);
  if (mode.has_value() && *mode == FaultMode::kThrow) throw FaultInjected(site);
}

bool FaultPointNan(const char* site) {
  if (!FaultRegistry::Instance().any_armed()) return false;
  const auto mode = FaultRegistry::Instance().Hit(site);
  return mode.has_value() && *mode == FaultMode::kNan;
}

}  // namespace m3
