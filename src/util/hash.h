// Stable 128-bit content hashing for cache keys.
//
// The serving layer addresses cached results by the hash of everything that
// determines the answer (topology, flows, NetConfig, estimation options,
// model parameters). The hash must therefore be (a) stable across processes
// and runs — no per-process seeding — and (b) well-mixed enough that
// scenarios differing in a single field land in different buckets. This is
// MurmurHash3 x64/128 (public-domain construction) behind a streaming
// `Hasher` that absorbs typed fields; it is NOT cryptographic and must not
// be used where an adversary controls inputs and collisions matter.
//
// All multi-byte values are absorbed in little-endian order; floating-point
// values are absorbed by bit pattern, so two keys are equal exactly when
// every absorbed field is bitwise equal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace m3 {

struct Hash128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) { return !(a == b); }
  friend bool operator<(const Hash128& a, const Hash128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  /// 32 lowercase hex digits, hi first: "3c6e0b8a9c15224a8228b9a98ca1531d".
  std::string ToHex() const;
};

/// Streaming 128-bit hasher. Absorb fields in a fixed documented order, then
/// Finish(). Field order matters: U64(1),U64(2) != U64(2),U64(1).
class Hasher {
 public:
  Hasher() = default;

  Hasher& Bytes(const void* data, std::size_t n);
  Hasher& U8(std::uint8_t v) { return Bytes(&v, 1); }
  Hasher& U32(std::uint32_t v);
  Hasher& U64(std::uint64_t v);
  Hasher& I32(std::int32_t v) { return U32(static_cast<std::uint32_t>(v)); }
  Hasher& I64(std::int64_t v) { return U64(static_cast<std::uint64_t>(v)); }
  Hasher& Bool(bool v) { return U8(v ? 1 : 0); }
  /// Bit pattern of the double (so -0.0 != +0.0 and every NaN payload is
  /// distinct — bitwise identity is exactly the cache's contract).
  Hasher& F64(double v);
  Hasher& F32(float v);
  /// Length-prefixed, so ("ab","c") != ("a","bc").
  Hasher& Str(const std::string& s);

  Hash128 Finish() const;

 private:
  void Absorb(std::uint64_t k1, std::uint64_t k2);

  std::uint64_t h1_ = 0x9368e53c2f6af274ULL;  // fixed seeds: stability across runs
  std::uint64_t h2_ = 0x586dcd208f7cd3fdULL;
  unsigned char buf_[16] = {};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// One-shot convenience.
Hash128 HashBytes(const void* data, std::size_t n);

}  // namespace m3
