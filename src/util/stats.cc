#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace m3 {

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return PercentileOfSorted(values, p);
}

std::vector<double> PercentileVector100(std::vector<double> values) {
  std::vector<double> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  out.reserve(100);
  for (int p = 1; p <= 100; ++p) {
    out.push_back(PercentileOfSorted(values, static_cast<double>(p)));
  }
  return out;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = Mean(values);
  double s = 0.0;
  for (double v : values) s += (v - m) * (v - m);
  return std::sqrt(s / static_cast<double>(values.size() - 1));
}

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) return 0.0;
  return (estimate - truth) / truth;
}

Summary Summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.mean = Mean(values);
  s.p50 = PercentileOfSorted(values, 50.0);
  s.p90 = PercentileOfSorted(values, 90.0);
  s.p99 = PercentileOfSorted(values, 99.0);
  s.max = values.back();
  return s;
}

}  // namespace m3
