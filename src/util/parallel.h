// Parallel-for over an index range, backed by a lazily-initialized
// persistent thread pool. Used for independent path-level / link-level
// simulations (the paper's path simulations are embarrassingly parallel,
// §3.1) and for data-parallel minibatch training (core/trainer.cc).
//
// The pool is created on first use and sized from the M3_NUM_THREADS
// environment variable when set, otherwise std::thread::hardware_concurrency().
// Work is distributed as chunked index ranges: each participant owns a
// contiguous shard of [0, n) and steals from the fullest remaining shard
// once its own is drained, so uneven per-item cost (e.g. variable-length
// background sequences) does not serialize the tail. The calling thread
// participates as a worker, so ParallelFor is cheap enough for inner
// loops — dispatch is one mutex acquisition plus a condition-variable
// wake, with no thread spawn.
//
// Exceptions thrown by `fn` are captured and the first one is rethrown on
// the caller thread after all items have run (matching the original
// spawn-per-call implementation). Nested ParallelFor calls execute inline
// on the calling participant to avoid deadlocking the single job slot.
#pragma once

#include <cstddef>
#include <functional>

namespace m3 {

class ThreadPool {
 public:
  /// The process-wide pool, created (and its threads started) on first call.
  static ThreadPool& Instance();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum concurrency (worker threads + the calling thread).
  unsigned num_threads() const { return num_threads_; }

  /// Runs fn(i) for i in [0, n). `max_threads` caps the participants for
  /// this call (0 = no cap beyond the pool size).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                   unsigned max_threads);

  /// Call in a freshly fork()ed child before any ParallelFor: fork copies
  /// only the calling thread, so a pool instantiated in the parent exists in
  /// the child with no worker threads behind it — dispatching to it would
  /// hang forever. Rebuilds the pool's internals (the parent-era state,
  /// whose mutexes may have been mid-held at fork, is abandoned) and spawns
  /// fresh workers. A no-op when the pool was never instantiated.
  static void ReinitAfterForkIfLive();

 private:
  ThreadPool();
  ~ThreadPool();

  struct Impl;
  Impl* impl_;
  unsigned num_threads_ = 1;
};

/// Runs fn(i) for i in [0, n) across up to `num_threads` threads (0 = use
/// the pool's full width). Exceptions from workers are captured and the
/// first one is rethrown on the caller thread.
inline void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                        unsigned num_threads = 0) {
  ThreadPool::Instance().ParallelFor(n, fn, num_threads);
}

}  // namespace m3
