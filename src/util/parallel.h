// Minimal parallel-for over an index range. Used to run independent
// path-level / link-level simulations concurrently (the paper's path
// simulations are embarrassingly parallel, §3.1).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace m3 {

/// Runs fn(i) for i in [0, n) across up to `num_threads` threads (0 = use
/// hardware concurrency). Exceptions from workers are captured and the
/// first one is rethrown on the caller thread.
inline void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                        unsigned num_threads = 0) {
  if (n == 0) return;
  unsigned hw = num_threads ? num_threads : std::thread::hardware_concurrency();
  hw = std::max(1u, std::min<unsigned>(hw, static_cast<unsigned>(n)));
  if (hw == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(hw);
  for (unsigned t = 0; t < hw; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace m3
