#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace m3 {
namespace {

// Set while a thread (pool worker or participating caller) is executing
// items of a job; nested ParallelFor calls from inside `fn` run inline.
thread_local bool t_in_parallel_region = false;

unsigned EnvThreadCount() {
  if (const char* env = std::getenv("M3_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

// Set once the singleton pool has been constructed; lets a forked child
// know whether there is parent-era pool state to abandon (see
// ReinitAfterForkIfLive) without instantiating the pool just to ask.
std::atomic<bool> g_pool_live{false};

struct Shard {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  // Shard storage lives in Impl::shard_buf (reused across dispatches;
  // top-level callers are serialized by dispatch_mu), so a training run's
  // thousands of ParallelFor calls allocate nothing.
  Shard* shards = nullptr;
  std::size_t nshards = 0;
  std::size_t chunk = 1;
  unsigned workers_needed = 0;           // pool workers participating (excl. caller)
  std::atomic<unsigned> workers_active{0};
  std::exception_ptr error;
  std::mutex error_mu;

  void Record(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!error) error = std::move(e);
  }

  // Drains the participant's own shard, then steals from the fullest
  // remaining shard until every index range is claimed.
  void Run(std::size_t self) {
    t_in_parallel_region = true;
    for (;;) {
      Shard& own = shards[self];
      const std::size_t i = own.next.fetch_add(chunk, std::memory_order_relaxed);
      if (i < own.end) {
        RunRange(i, std::min(i + chunk, own.end));
        continue;
      }
      // Own shard drained: steal from the shard with the most work left.
      std::size_t victim = nshards;
      std::size_t best_left = 0;
      for (std::size_t s = 0; s < nshards; ++s) {
        if (s == self) continue;
        const std::size_t nxt = shards[s].next.load(std::memory_order_relaxed);
        const std::size_t left = nxt < shards[s].end ? shards[s].end - nxt : 0;
        if (left > best_left) {
          best_left = left;
          victim = s;
        }
      }
      if (victim == nshards) break;  // nothing left anywhere
      Shard& v = shards[victim];
      const std::size_t j = v.next.fetch_add(chunk, std::memory_order_relaxed);
      if (j < v.end) RunRange(j, std::min(j + chunk, v.end));
    }
    t_in_parallel_region = false;
  }

  void RunRange(std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*fn)(i);
      } catch (...) {
        Record(std::current_exception());
      }
    }
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::mutex mu;                    // guards job / generation / stop
  std::condition_variable work_cv;  // workers wait here for a new job
  std::condition_variable done_cv;  // caller waits here for workers_active == 0
  Job* job = nullptr;
  std::uint64_t generation = 0;
  bool stop = false;
  std::mutex dispatch_mu;  // serializes top-level ParallelFor callers
  std::vector<Shard> shard_buf;  // guarded by dispatch_mu; grows to max width
  std::vector<std::thread> threads;

  void WorkerLoop(std::size_t worker_idx) {
    std::uint64_t seen = 0;
    for (;;) {
      Job* my_job = nullptr;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_cv.wait(lock, [&] { return stop || generation != seen; });
        if (stop) return;
        seen = generation;
        // Worker w runs shard w + 1 (the caller owns shard 0).
        if (job != nullptr && worker_idx < job->workers_needed) my_job = job;
      }
      if (my_job == nullptr) continue;
      my_job->Run(worker_idx + 1);
      if (my_job->workers_active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool& ThreadPool::Instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : impl_(new Impl) {
  num_threads_ = std::max(1u, EnvThreadCount());
  impl_->threads.reserve(num_threads_ - 1);
  for (unsigned w = 0; w + 1 < num_threads_; ++w) {
    impl_->threads.emplace_back([this, w] { impl_->WorkerLoop(w); });
  }
  g_pool_live.store(true, std::memory_order_release);
}

void ThreadPool::ReinitAfterForkIfLive() {
  if (!g_pool_live.load(std::memory_order_acquire)) return;
  ThreadPool& pool = Instance();
  // The old Impl is deliberately leaked: its thread handles refer to
  // parent-only threads (joining them would terminate), and its mutexes may
  // have been held by a parent thread at the instant of fork.
  pool.impl_ = new Impl;
  pool.impl_->threads.reserve(pool.num_threads_ - 1);
  for (unsigned w = 0; w + 1 < pool.num_threads_; ++w) {
    pool.impl_->threads.emplace_back([&pool, w] { pool.impl_->WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->threads) t.join();
  delete impl_;
}

void ThreadPool::ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn,
                             unsigned max_threads) {
  if (n == 0) return;
  unsigned p = max_threads ? std::min(max_threads, num_threads_) : num_threads_;
  p = std::max(1u, std::min<unsigned>(p, static_cast<unsigned>(n)));
  if (p == 1 || t_in_parallel_region) {
    // Serial width, or nested inside another parallel region: run inline.
    const bool was_nested = t_in_parallel_region;
    t_in_parallel_region = true;
    std::exception_ptr error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    t_in_parallel_region = was_nested;
    if (error) std::rethrow_exception(error);
    return;
  }

  std::lock_guard<std::mutex> dispatch(impl_->dispatch_mu);
  if (impl_->shard_buf.size() < p) impl_->shard_buf = std::vector<Shard>(p);
  Job job;
  job.fn = &fn;
  job.shards = impl_->shard_buf.data();
  job.nshards = p;
  job.chunk = std::max<std::size_t>(1, n / (static_cast<std::size_t>(p) * 8));
  const std::size_t per = (n + p - 1) / p;
  for (unsigned s = 0; s < p; ++s) {
    const std::size_t begin = std::min<std::size_t>(n, per * s);
    job.shards[s].next.store(begin, std::memory_order_relaxed);
    job.shards[s].end = std::min<std::size_t>(n, per * (s + 1));
  }
  job.workers_needed = p - 1;
  job.workers_active.store(p - 1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  job.Run(0);  // the caller works shard 0

  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(
        lock, [&] { return job.workers_active.load(std::memory_order_acquire) == 0; });
    impl_->job = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

}  // namespace m3
