// Percentiles, summary statistics, and fixed-grid percentile vectors.
#pragma once

#include <cstddef>
#include <vector>

namespace m3 {

/// Linearly-interpolated percentile of `values`, p in [0, 100].
/// Sorts a copy; for repeated queries use PercentileGrid or sort once and
/// call PercentileOfSorted.
double Percentile(std::vector<double> values, double p);

/// Percentile of an already-sorted ascending vector.
double PercentileOfSorted(const std::vector<double>& sorted, double p);

/// The m3 feature/output convention: percentiles 1%,2%,...,100% (100 values)
/// of `values`. Returns an empty vector if `values` is empty.
std::vector<double> PercentileVector100(std::vector<double> values);

double Mean(const std::vector<double>& values);
double StdDev(const std::vector<double>& values);

/// Relative error (estimate - truth) / truth; the paper's Eq. 4.
double RelativeError(double estimate, double truth);

/// Summary of a sample used in reports.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

Summary Summarize(std::vector<double> values);

}  // namespace m3
