#include "util/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>

namespace m3 {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Returns bytes read (0 only at clean end-of-stream on the first byte).
StatusOr<std::size_t> ReadFull(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired (SetRecvTimeout): the peer is alive but not
        // talking. Distinct from kUnavailable so callers can treat a
        // wedged peer as a deadline, not a transport fault.
        return Status::DeadlineExceeded("socket read timed out");
      }
      return Status::Unavailable(Errno("socket read"));
    }
    if (r == 0) break;  // peer closed
    got += static_cast<std::size_t>(r);
  }
  return got;
}

// Gathered write of `iovcnt` buffers: retries EINTR, keeps pushing through
// short writes (routine on TCP), classifies an expired SO_SNDTIMEO as
// kDeadlineExceeded, and uses MSG_NOSIGNAL so EPIPE on a closed peer
// surfaces as a Status instead of killing the process. Mutates the iovec
// array as data drains. One sendmsg per kernel round keeps a small frame in
// one TCP segment instead of a header packet plus a payload packet.
Status SendAllVec(int fd, iovec* iov, int iovcnt) {
  int first = 0;
  while (first < iovcnt) {
    msghdr msg{};
    msg.msg_iov = iov + first;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt - first);
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("socket write timed out");
      }
      return Status::Unavailable(Errno("socket write"));
    }
    std::size_t done = static_cast<std::size_t>(w);
    while (first < iovcnt && done >= iov[first].iov_len) {
      done -= iov[first].iov_len;
      ++first;
    }
    if (first < iovcnt && done > 0) {
      iov[first].iov_base = static_cast<char*>(iov[first].iov_base) + done;
      iov[first].iov_len -= done;
    }
  }
  return Status::Ok();
}

// Shared SO_RCVTIMEO / SO_SNDTIMEO plumbing.
Status SetTimeoutOpt(int fd, int optname, double seconds, const char* what) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    // Sub-microsecond budgets round to zero, which the kernel reads as
    // "block forever" — the opposite of what the caller asked for.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  if (::setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Status::Unavailable(Errno(std::string("setsockopt ") + what));
  }
  return Status::Ok();
}

StatusOr<sockaddr_un> MakeAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path '" + path + "': length must be in [1, " +
                                   std::to_string(sizeof(addr.sun_path) - 1) + "]");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixFd& UnixFd::operator=(UnixFd&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void UnixFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<UnixFd> ListenUnix(const std::string& path, int backlog) {
  StatusOr<sockaddr_un> addr = MakeAddr(path);
  if (!addr.ok()) return addr.status();

  // Unlink only a stale *socket* file; refuse to clobber a regular file the
  // user pointed us at by mistake.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) {
    ::unlink(path.c_str());
  }

  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Unavailable(Errno("socket"));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    return Status::Unavailable(Errno("bind " + path));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::Unavailable(Errno("listen " + path));
  }
  return fd;
}

StatusOr<UnixFd> AcceptUnix(const UnixFd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return UnixFd(fd);
    // EINTR: signal during accept. ECONNABORTED/EPROTO: the pending client
    // died between connect and accept — its problem, not the listener's.
    if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
    return Status::Unavailable(Errno("accept"));
  }
}

StatusOr<UnixFd> ConnectUnix(const std::string& path) {
  StatusOr<sockaddr_un> addr = MakeAddr(path);
  if (!addr.ok()) return addr.status();
  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Unavailable(Errno("socket"));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    if (errno == ENOENT || errno == ECONNREFUSED) {
      return Status::NotFound("no m3d daemon listening at " + path + " (" +
                              std::strerror(errno) + ")");
    }
    return Status::Unavailable(Errno("connect " + path));
  }
  return fd;
}

StatusOr<UnixFd> ConnectUnixTimeout(const std::string& path, double timeout_seconds) {
  if (timeout_seconds <= 0) return ConnectUnix(path);
  StatusOr<sockaddr_un> addr = MakeAddr(path);
  if (!addr.ok()) return addr.status();
  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Unavailable(Errno("socket"));

  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Unavailable(Errno("fcntl O_NONBLOCK"));
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    if (errno == ENOENT || errno == ECONNREFUSED) {
      return Status::NotFound("no m3d daemon listening at " + path + " (" +
                              std::strerror(errno) + ")");
    }
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return Status::Unavailable(Errno("connect " + path));
    }
    // AF_UNIX connect blocks only when the listener's backlog is full; wait
    // for writability up to the deadline.
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int timeout_ms = static_cast<int>(std::ceil(timeout_seconds * 1000.0));
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return Status::Unavailable(Errno("poll connect " + path));
    if (rc == 0) {
      return Status::DeadlineExceeded("connect " + path + " timed out after " +
                                      std::to_string(timeout_seconds) + "s");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      if (errno == ENOENT || errno == ECONNREFUSED) {
        return Status::NotFound("no m3d daemon listening at " + path + " (" +
                                std::strerror(errno) + ")");
      }
      return Status::Unavailable(Errno("connect " + path));
    }
  }
  if (::fcntl(fd.get(), F_SETFL, flags) != 0) {
    return Status::Unavailable(Errno("fcntl restore flags"));
  }
  return fd;
}

Status SetRecvTimeout(const UnixFd& fd, double seconds) {
  return SetTimeoutOpt(fd.get(), SO_RCVTIMEO, seconds, "SO_RCVTIMEO");
}

Status SetSendTimeout(const UnixFd& fd, double seconds) {
  return SetTimeoutOpt(fd.get(), SO_SNDTIMEO, seconds, "SO_SNDTIMEO");
}

StatusOr<UnixFd> ListenTcp(const std::string& host, std::uint16_t port, int backlog) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE | AI_NUMERICSERV;
  const std::string service = std::to_string(port);
  addrinfo* res = nullptr;
  if (const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(), service.c_str(),
                                   &hints, &res);
      rc != 0) {
    return Status::InvalidArgument("resolve " + host + ": " + ::gai_strerror(rc));
  }
  Status last = Status::Unavailable("no usable address for " + host + ":" + service);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    UnixFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = Status::Unavailable(Errno("socket"));
      continue;
    }
    // A restarted daemon must be able to rebind while old connections sit
    // in TIME_WAIT.
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last = Status::Unavailable(Errno("bind " + host + ":" + service));
      continue;
    }
    if (::listen(fd.get(), backlog) != 0) {
      last = Status::Unavailable(Errno("listen " + host + ":" + service));
      continue;
    }
    ::freeaddrinfo(res);
    return fd;
  }
  ::freeaddrinfo(res);
  return last;
}

StatusOr<UnixFd> ConnectTcpTimeout(const std::string& host, std::uint16_t port,
                                   double timeout_seconds) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_NUMERICSERV;
  const std::string service = std::to_string(port);
  const std::string where = host + ":" + service;
  addrinfo* res = nullptr;
  if (const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res); rc != 0) {
    return Status::InvalidArgument("resolve " + host + ": " + ::gai_strerror(rc));
  }
  Status last = Status::Unavailable("no usable address for " + where);
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    UnixFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = Status::Unavailable(Errno("socket"));
      continue;
    }
    const int flags = ::fcntl(fd.get(), F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
      last = Status::Unavailable(Errno("fcntl O_NONBLOCK"));
      continue;
    }
    bool ok = ::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) == 0;
    if (!ok && (errno == EINPROGRESS || errno == EAGAIN)) {
      pollfd pfd{fd.get(), POLLOUT, 0};
      const int timeout_ms =
          timeout_seconds <= 0 ? -1 : static_cast<int>(std::ceil(timeout_seconds * 1000.0));
      int rc;
      do {
        rc = ::poll(&pfd, 1, timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (rc < 0) {
        last = Status::Unavailable(Errno("poll connect " + where));
        continue;
      }
      if (rc == 0) {
        ::freeaddrinfo(res);
        return Status::DeadlineExceeded("connect " + where + " timed out after " +
                                        std::to_string(timeout_seconds) + "s");
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      ok = ::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) == 0 && err == 0;
      if (!ok && err != 0) errno = err;
    }
    if (!ok) {
      if (errno == ECONNREFUSED) {
        last = Status::NotFound("no m3d daemon listening at " + where + " (" +
                                std::strerror(errno) + ")");
      } else {
        last = Status::Unavailable(Errno("connect " + where));
      }
      continue;
    }
    if (::fcntl(fd.get(), F_SETFL, flags) != 0) {
      last = Status::Unavailable(Errno("fcntl restore flags"));
      continue;
    }
    // Strict request/response protocol: Nagle buys nothing and costs a
    // delayed-ACK round trip on small frames.
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }
  ::freeaddrinfo(res);
  return last;
}

std::string Endpoint::ToString() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

StatusOr<Endpoint> ParseEndpoint(const std::string& spec) {
  Endpoint ep;
  if (spec.rfind("tcp:", 0) == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    std::size_t colon;
    if (!rest.empty() && rest[0] == '[') {
      // Bracketed IPv6 literal: tcp:[::1]:9000.
      const std::size_t close = rest.find("]:");
      if (close == std::string::npos) {
        return Status::InvalidArgument("endpoint '" + spec + "': expected tcp:[host]:port");
      }
      ep.host = rest.substr(1, close - 1);
      colon = close + 1;
    } else {
      colon = rest.rfind(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("endpoint '" + spec + "': expected tcp:host:port");
      }
      ep.host = rest.substr(0, colon);
    }
    if (ep.host.empty()) {
      return Status::InvalidArgument("endpoint '" + spec + "': empty host");
    }
    const std::string port_str = rest.substr(colon + 1);
    char* end = nullptr;
    errno = 0;
    const unsigned long port = std::strtoul(port_str.c_str(), &end, 10);
    if (port_str.empty() || end == nullptr || *end != '\0' || errno != 0 || port == 0 ||
        port > 65535) {
      return Status::InvalidArgument("endpoint '" + spec + "': port must be in [1, 65535]");
    }
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = spec.rfind("unix:", 0) == 0 ? spec.substr(5) : spec;
  if (ep.path.empty()) {
    return Status::InvalidArgument("endpoint '" + spec + "': empty socket path");
  }
  return ep;
}

StatusOr<UnixFd> ConnectEndpoint(const Endpoint& ep, double timeout_seconds) {
  if (ep.kind == Endpoint::Kind::kTcp) {
    return ConnectTcpTimeout(ep.host, ep.port, timeout_seconds);
  }
  return ConnectUnixTimeout(ep.path, timeout_seconds);
}

StatusOr<UnixFd> ListenEndpoint(const Endpoint& ep, int backlog) {
  if (ep.kind == Endpoint::Kind::kTcp) return ListenTcp(ep.host, ep.port, backlog);
  return ListenUnix(ep.path, backlog);
}

Status MakeSocketPair(UnixFd* a, UnixFd* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::Unavailable(Errno("socketpair"));
  }
  *a = UnixFd(fds[0]);
  *b = UnixFd(fds[1]);
  return Status::Ok();
}

Status SendFrame(const UnixFd& fd, std::uint32_t type, const std::string& payload) {
  char header[16];
  const std::uint32_t magic = kM3dFrameMagic;
  const std::uint64_t len = payload.size();
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &type, 4);
  std::memcpy(header + 8, &len, 8);
  iovec iov[2] = {{header, sizeof(header)},
                  {const_cast<char*>(payload.data()), payload.size()}};
  return SendAllVec(fd.get(), iov, payload.empty() ? 1 : 2);
}

StatusOr<Frame> RecvFrame(const UnixFd& fd) {
  char header[16];
  StatusOr<std::size_t> got = ReadFull(fd.get(), header, sizeof(header));
  if (!got.ok()) return got.status();
  if (*got == 0) return Status::NotFound("end of stream");
  if (*got < sizeof(header)) {
    return Status::DataLoss("peer closed mid-frame (got " + std::to_string(*got) +
                            " of 16 header bytes)");
  }
  std::uint32_t magic, type;
  std::uint64_t len;
  std::memcpy(&magic, header, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&len, header + 8, 8);
  if (magic != kM3dFrameMagic) {
    return Status::InvalidArgument("bad frame magic (not an m3d peer?)");
  }
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxFramePayload) + "-byte cap");
  }
  Frame f;
  f.type = type;
  f.payload.resize(static_cast<std::size_t>(len));
  if (len > 0) {
    got = ReadFull(fd.get(), f.payload.data(), f.payload.size());
    if (!got.ok()) return got.status();
    if (*got < f.payload.size()) {
      return Status::DataLoss("peer closed mid-frame (got " + std::to_string(*got) +
                              " of " + std::to_string(len) + " payload bytes)");
    }
  }
  return f;
}

}  // namespace m3
