#include "util/socket.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstring>

namespace m3 {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// EPIPE on a closed peer must surface as a Status, not kill the process;
// writes use MSG_NOSIGNAL so no global SIGPIPE handler is required.
ssize_t SendSome(int fd, const void* buf, std::size_t n) {
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

Status WriteFull(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = SendSome(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("socket write"));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

// Returns bytes read (0 only at clean end-of-stream on the first byte).
StatusOr<std::size_t> ReadFull(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired (SetRecvTimeout): the peer is alive but not
        // talking. Distinct from kUnavailable so callers can treat a
        // wedged peer as a deadline, not a transport fault.
        return Status::DeadlineExceeded("socket read timed out");
      }
      return Status::Unavailable(Errno("socket read"));
    }
    if (r == 0) break;  // peer closed
    got += static_cast<std::size_t>(r);
  }
  return got;
}

StatusOr<sockaddr_un> MakeAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path '" + path + "': length must be in [1, " +
                                   std::to_string(sizeof(addr.sun_path) - 1) + "]");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixFd& UnixFd::operator=(UnixFd&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void UnixFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<UnixFd> ListenUnix(const std::string& path, int backlog) {
  StatusOr<sockaddr_un> addr = MakeAddr(path);
  if (!addr.ok()) return addr.status();

  // Unlink only a stale *socket* file; refuse to clobber a regular file the
  // user pointed us at by mistake.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) {
    ::unlink(path.c_str());
  }

  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Unavailable(Errno("socket"));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    return Status::Unavailable(Errno("bind " + path));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::Unavailable(Errno("listen " + path));
  }
  return fd;
}

StatusOr<UnixFd> AcceptUnix(const UnixFd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return UnixFd(fd);
    if (errno == EINTR) continue;
    return Status::Unavailable(Errno("accept"));
  }
}

StatusOr<UnixFd> ConnectUnix(const std::string& path) {
  StatusOr<sockaddr_un> addr = MakeAddr(path);
  if (!addr.ok()) return addr.status();
  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Unavailable(Errno("socket"));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    if (errno == ENOENT || errno == ECONNREFUSED) {
      return Status::NotFound("no m3d daemon listening at " + path + " (" +
                              std::strerror(errno) + ")");
    }
    return Status::Unavailable(Errno("connect " + path));
  }
  return fd;
}

StatusOr<UnixFd> ConnectUnixTimeout(const std::string& path, double timeout_seconds) {
  if (timeout_seconds <= 0) return ConnectUnix(path);
  StatusOr<sockaddr_un> addr = MakeAddr(path);
  if (!addr.ok()) return addr.status();
  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Unavailable(Errno("socket"));

  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Unavailable(Errno("fcntl O_NONBLOCK"));
  }
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    if (errno == ENOENT || errno == ECONNREFUSED) {
      return Status::NotFound("no m3d daemon listening at " + path + " (" +
                              std::strerror(errno) + ")");
    }
    if (errno != EINPROGRESS && errno != EAGAIN) {
      return Status::Unavailable(Errno("connect " + path));
    }
    // AF_UNIX connect blocks only when the listener's backlog is full; wait
    // for writability up to the deadline.
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int timeout_ms = static_cast<int>(std::ceil(timeout_seconds * 1000.0));
    int rc;
    do {
      rc = ::poll(&pfd, 1, timeout_ms);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) return Status::Unavailable(Errno("poll connect " + path));
    if (rc == 0) {
      return Status::DeadlineExceeded("connect " + path + " timed out after " +
                                      std::to_string(timeout_seconds) + "s");
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      if (errno == ENOENT || errno == ECONNREFUSED) {
        return Status::NotFound("no m3d daemon listening at " + path + " (" +
                                std::strerror(errno) + ")");
      }
      return Status::Unavailable(Errno("connect " + path));
    }
  }
  if (::fcntl(fd.get(), F_SETFL, flags) != 0) {
    return Status::Unavailable(Errno("fcntl restore flags"));
  }
  return fd;
}

Status SetRecvTimeout(const UnixFd& fd, double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    // Sub-microsecond budgets round to zero, which the kernel reads as
    // "block forever" — the opposite of what the caller asked for.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Unavailable(Errno("setsockopt SO_RCVTIMEO"));
  }
  return Status::Ok();
}

Status MakeSocketPair(UnixFd* a, UnixFd* b) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return Status::Unavailable(Errno("socketpair"));
  }
  *a = UnixFd(fds[0]);
  *b = UnixFd(fds[1]);
  return Status::Ok();
}

Status SendFrame(const UnixFd& fd, std::uint32_t type, const std::string& payload) {
  char header[16];
  const std::uint32_t magic = kM3dFrameMagic;
  const std::uint64_t len = payload.size();
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &type, 4);
  std::memcpy(header + 8, &len, 8);
  M3_RETURN_IF_ERROR(WriteFull(fd.get(), header, sizeof(header)));
  return WriteFull(fd.get(), payload.data(), payload.size());
}

StatusOr<Frame> RecvFrame(const UnixFd& fd) {
  char header[16];
  StatusOr<std::size_t> got = ReadFull(fd.get(), header, sizeof(header));
  if (!got.ok()) return got.status();
  if (*got == 0) return Status::NotFound("end of stream");
  if (*got < sizeof(header)) {
    return Status::DataLoss("peer closed mid-frame (got " + std::to_string(*got) +
                            " of 16 header bytes)");
  }
  std::uint32_t magic, type;
  std::uint64_t len;
  std::memcpy(&magic, header, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&len, header + 8, 8);
  if (magic != kM3dFrameMagic) {
    return Status::InvalidArgument("bad frame magic (not an m3d peer?)");
  }
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxFramePayload) + "-byte cap");
  }
  Frame f;
  f.type = type;
  f.payload.resize(static_cast<std::size_t>(len));
  if (len > 0) {
    got = ReadFull(fd.get(), f.payload.data(), f.payload.size());
    if (!got.ok()) return got.status();
    if (*got < f.payload.size()) {
      return Status::DataLoss("peer closed mid-frame (got " + std::to_string(*got) +
                              " of " + std::to_string(len) + " payload bytes)");
    }
  }
  return f;
}

}  // namespace m3
