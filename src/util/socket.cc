#include "util/socket.h"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>

namespace m3 {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// EPIPE on a closed peer must surface as a Status, not kill the process;
// writes use MSG_NOSIGNAL so no global SIGPIPE handler is required.
ssize_t SendSome(int fd, const void* buf, std::size_t n) {
  return ::send(fd, buf, n, MSG_NOSIGNAL);
}

Status WriteFull(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = SendSome(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("socket write"));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

// Returns bytes read (0 only at clean end-of-stream on the first byte).
StatusOr<std::size_t> ReadFull(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(Errno("socket read"));
    }
    if (r == 0) break;  // peer closed
    got += static_cast<std::size_t>(r);
  }
  return got;
}

StatusOr<sockaddr_un> MakeAddr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path '" + path + "': length must be in [1, " +
                                   std::to_string(sizeof(addr.sun_path) - 1) + "]");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

UnixFd& UnixFd::operator=(UnixFd&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void UnixFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<UnixFd> ListenUnix(const std::string& path, int backlog) {
  StatusOr<sockaddr_un> addr = MakeAddr(path);
  if (!addr.ok()) return addr.status();

  // Unlink only a stale *socket* file; refuse to clobber a regular file the
  // user pointed us at by mistake.
  struct stat st{};
  if (::lstat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) {
    ::unlink(path.c_str());
  }

  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Unavailable(Errno("socket"));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    return Status::Unavailable(Errno("bind " + path));
  }
  if (::listen(fd.get(), backlog) != 0) {
    return Status::Unavailable(Errno("listen " + path));
  }
  return fd;
}

StatusOr<UnixFd> AcceptUnix(const UnixFd& listener) {
  for (;;) {
    const int fd = ::accept(listener.get(), nullptr, nullptr);
    if (fd >= 0) return UnixFd(fd);
    if (errno == EINTR) continue;
    return Status::Unavailable(Errno("accept"));
  }
}

StatusOr<UnixFd> ConnectUnix(const std::string& path) {
  StatusOr<sockaddr_un> addr = MakeAddr(path);
  if (!addr.ok()) return addr.status();
  UnixFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) return Status::Unavailable(Errno("socket"));
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&*addr), sizeof(*addr)) != 0) {
    if (errno == ENOENT || errno == ECONNREFUSED) {
      return Status::NotFound("no m3d daemon listening at " + path + " (" +
                              std::strerror(errno) + ")");
    }
    return Status::Unavailable(Errno("connect " + path));
  }
  return fd;
}

Status SendFrame(const UnixFd& fd, std::uint32_t type, const std::string& payload) {
  char header[16];
  const std::uint32_t magic = kM3dFrameMagic;
  const std::uint64_t len = payload.size();
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &type, 4);
  std::memcpy(header + 8, &len, 8);
  M3_RETURN_IF_ERROR(WriteFull(fd.get(), header, sizeof(header)));
  return WriteFull(fd.get(), payload.data(), payload.size());
}

StatusOr<Frame> RecvFrame(const UnixFd& fd) {
  char header[16];
  StatusOr<std::size_t> got = ReadFull(fd.get(), header, sizeof(header));
  if (!got.ok()) return got.status();
  if (*got == 0) return Status::NotFound("end of stream");
  if (*got < sizeof(header)) {
    return Status::DataLoss("peer closed mid-frame (got " + std::to_string(*got) +
                            " of 16 header bytes)");
  }
  std::uint32_t magic, type;
  std::uint64_t len;
  std::memcpy(&magic, header, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&len, header + 8, 8);
  if (magic != kM3dFrameMagic) {
    return Status::InvalidArgument("bad frame magic (not an m3d peer?)");
  }
  if (len > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload of " + std::to_string(len) +
                                   " bytes exceeds the " +
                                   std::to_string(kMaxFramePayload) + "-byte cap");
  }
  Frame f;
  f.type = type;
  f.payload.resize(static_cast<std::size_t>(len));
  if (len > 0) {
    got = ReadFull(fd.get(), f.payload.data(), f.payload.size());
    if (!got.ok()) return got.status();
    if (*got < f.payload.size()) {
      return Status::DataLoss("peer closed mid-frame (got " + std::to_string(*got) +
                              " of " + std::to_string(len) + " payload bytes)");
    }
  }
  return f;
}

}  // namespace m3
