#include "util/cdf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace m3 {

PiecewiseCdf::PiecewiseCdf(std::vector<Point> points) : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("PiecewiseCdf requires at least one point");
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) { return a.value < b.value; });
  double prev = 0.0;
  for (auto& p : points_) {
    if (p.value <= 0.0) {
      throw std::invalid_argument("PiecewiseCdf values must be positive");
    }
    p.prob = std::clamp(p.prob, prev, 1.0);
    prev = p.prob;
  }
  points_.back().prob = 1.0;
}

double PiecewiseCdf::Quantile(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  // Before the first breakpoint the CDF rises linearly from (0, 0).
  if (u <= points_.front().prob) {
    const double p0 = points_.front().prob;
    if (p0 <= 0.0) return points_.front().value;
    return points_.front().value * (u / p0);
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].prob) {
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      const double span = b.prob - a.prob;
      if (span <= 0.0) return b.value;
      const double frac = (u - a.prob) / span;
      return a.value + frac * (b.value - a.value);
    }
  }
  return points_.back().value;
}

double PiecewiseCdf::Sample(Rng& rng) const { return Quantile(rng.NextDouble()); }

double PiecewiseCdf::Cdf(double v) const {
  if (v <= 0.0) return 0.0;
  if (v <= points_.front().value) {
    return points_.front().prob * (v / points_.front().value);
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (v <= points_[i].value) {
      const auto& a = points_[i - 1];
      const auto& b = points_[i];
      const double span = b.value - a.value;
      if (span <= 0.0) return b.prob;
      return a.prob + (b.prob - a.prob) * ((v - a.value) / span);
    }
  }
  return 1.0;
}

double PiecewiseCdf::Mean() const {
  // Each linear segment of the CDF is a uniform chunk of probability mass;
  // its contribution to the mean is mass * midpoint.
  double mean = points_.front().prob * (points_.front().value / 2.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& a = points_[i - 1];
    const auto& b = points_[i];
    mean += (b.prob - a.prob) * (a.value + b.value) / 2.0;
  }
  return mean;
}

}  // namespace m3
