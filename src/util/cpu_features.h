// Runtime CPU SIMD feature detection for the kernel dispatch seam
// (ml/kernels.h). Detection runs once (CPUID + OS XSAVE state via the
// compiler builtins, which check both the instruction sets and that the
// OS preserves the wider register files) and is cached; all queries after
// the first are a plain struct read.
#pragma once

#include <string>

namespace m3 {

struct CpuFeatures {
  bool avx2 = false;      // AVX2 integer/permute ISA
  bool fma = false;       // FMA3
  bool avx512f = false;   // AVX-512 Foundation (implies 512-bit FMA)
};

/// Detected features of the executing CPU (cached after the first call).
const CpuFeatures& GetCpuFeatures();

/// True when the 256-bit kernels (ml/kernels_avx2.cc) can run here.
bool CpuSupportsAvx2Fma();

/// True when the 512-bit kernels (ml/kernels_avx512.cc) can run here.
bool CpuSupportsAvx512();

/// Human-readable summary, e.g. "avx2+fma avx512f" or "scalar-only"
/// (bench provenance and startup logs).
std::string CpuFeatureSummary();

}  // namespace m3
