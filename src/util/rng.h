// Deterministic random number generation.
//
// All stochastic components in m3 draw from Pcg32 seeded through SplitMix64,
// with hand-written inverse-transform / Box-Muller samplers so that a given
// seed produces identical streams on every platform and standard library.
#pragma once

#include <cstdint>
#include <vector>

namespace m3 {

/// SplitMix64: used to expand user seeds into well-mixed state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Complete serializable state of an Rng. Capturing and later restoring it
/// resumes the stream exactly where it left off (including the cached
/// Box-Muller variate), which is what checkpoint/resume relies on for
/// bitwise-reproducible training.
struct RngState {
  std::uint64_t state = 0;
  std::uint64_t inc = 0;
  std::uint64_t seed = 0;
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// PCG-XSH-RR 32-bit generator (O'Neill 2014).
class Rng {
 public:
  /// Constructs a generator whose stream is fully determined by `seed`.
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 32-bit value.
  std::uint32_t NextU32() noexcept;

  /// Uniform 64-bit value.
  std::uint64_t NextU64() noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling, so
  /// the result is unbiased.
  std::uint64_t NextBounded(std::uint64_t n) noexcept;

  /// Standard normal via Box-Muller (caches the second variate).
  double Normal() noexcept;

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev) noexcept;

  /// Exponential with the given mean (inverse transform).
  double Exponential(double mean) noexcept;

  /// Log-normal parameterized by the underlying normal's mu and sigma.
  double LogNormal(double mu, double sigma) noexcept;

  /// Pareto with scale xm > 0 and shape alpha > 0.
  double Pareto(double xm, double alpha) noexcept;

  /// Samples an index in [0, weights.size()) with probability proportional
  /// to weights[i]. Requires at least one strictly positive weight.
  std::size_t WeightedIndex(const std::vector<double>& weights) noexcept;

  /// Derives an independent child generator; distinct labels give
  /// statistically independent streams.
  Rng Fork(std::uint64_t label) noexcept;

  /// Snapshot of the full generator state for checkpointing.
  RngState SaveState() const noexcept;

  /// Restores a state captured by SaveState(); the stream continues exactly
  /// from the capture point.
  void RestoreState(const RngState& s) noexcept;

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
  std::uint64_t seed_;  // retained for Fork()
};

}  // namespace m3
