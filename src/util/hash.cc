#include "util/hash.h"

#include <algorithm>

namespace m3 {
namespace {

inline std::uint64_t Rotl64(std::uint64_t x, int r) {
  return (x << r) | (x >> (64 - r));
}

inline std::uint64_t FMix64(std::uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

constexpr std::uint64_t kC1 = 0x87c37b91114253d5ULL;
constexpr std::uint64_t kC2 = 0x4cf5ad432745937fULL;

inline std::uint64_t LoadLE64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);  // little-endian hosts only (matches the repo's
                          // checkpoint format assumption)
  return v;
}

}  // namespace

std::string Hash128::ToHex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t word = i < 8 ? hi : lo;
    const int shift = 56 - 8 * (i % 8);
    const unsigned byte = static_cast<unsigned>((word >> shift) & 0xff);
    out[static_cast<std::size_t>(2 * i)] = kHex[byte >> 4];
    out[static_cast<std::size_t>(2 * i + 1)] = kHex[byte & 0xf];
  }
  return out;
}

void Hasher::Absorb(std::uint64_t k1, std::uint64_t k2) {
  k1 *= kC1;
  k1 = Rotl64(k1, 31);
  k1 *= kC2;
  h1_ ^= k1;
  h1_ = Rotl64(h1_, 27);
  h1_ += h2_;
  h1_ = h1_ * 5 + 0x52dce729;

  k2 *= kC2;
  k2 = Rotl64(k2, 33);
  k2 *= kC1;
  h2_ ^= k2;
  h2_ = Rotl64(h2_, 31);
  h2_ += h1_;
  h2_ = h2_ * 5 + 0x38495ab5;
}

Hasher& Hasher::Bytes(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  total_len_ += n;
  // Top up a partial block first.
  if (buf_len_ > 0) {
    const std::size_t take = std::min(n, 16 - buf_len_);
    std::memcpy(buf_ + buf_len_, p, take);
    buf_len_ += take;
    p += take;
    n -= take;
    if (buf_len_ == 16) {
      Absorb(LoadLE64(buf_), LoadLE64(buf_ + 8));
      buf_len_ = 0;
    }
  }
  while (n >= 16) {
    Absorb(LoadLE64(p), LoadLE64(p + 8));
    p += 16;
    n -= 16;
  }
  if (n > 0) {
    std::memcpy(buf_, p, n);
    buf_len_ = n;
  }
  return *this;
}

Hasher& Hasher::U32(std::uint32_t v) { return Bytes(&v, 4); }
Hasher& Hasher::U64(std::uint64_t v) { return Bytes(&v, 8); }

Hasher& Hasher::F64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return U64(bits);
}

Hasher& Hasher::F32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  return U32(bits);
}

Hasher& Hasher::Str(const std::string& s) {
  U64(s.size());
  return Bytes(s.data(), s.size());
}

Hash128 Hasher::Finish() const {
  std::uint64_t h1 = h1_, h2 = h2_;

  // Tail (the MurmurHash3 x64/128 tail schedule over the buffered bytes).
  std::uint64_t k1 = 0, k2 = 0;
  for (std::size_t i = buf_len_; i > 8; --i) {
    k2 = (k2 << 8) | buf_[i - 1];
  }
  for (std::size_t i = std::min<std::size_t>(buf_len_, 8); i > 0; --i) {
    k1 = (k1 << 8) | buf_[i - 1];
  }
  if (buf_len_ > 8) {
    k2 *= kC2;
    k2 = Rotl64(k2, 33);
    k2 *= kC1;
    h2 ^= k2;
  }
  if (buf_len_ > 0) {
    k1 *= kC1;
    k1 = Rotl64(k1, 31);
    k1 *= kC2;
    h1 ^= k1;
  }

  h1 ^= total_len_;
  h2 ^= total_len_;
  h1 += h2;
  h2 += h1;
  h1 = FMix64(h1);
  h2 = FMix64(h2);
  h1 += h2;
  h2 += h1;
  return Hash128{h1, h2};
}

Hash128 HashBytes(const void* data, std::size_t n) {
  Hasher h;
  h.Bytes(data, n);
  return h.Finish();
}

}  // namespace m3
