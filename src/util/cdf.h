// Piecewise-linear empirical CDFs, used for flow-size distributions given as
// (value, cumulative-probability) breakpoints, as in the published Meta
// workload data.
#pragma once

#include <vector>

#include "util/rng.h"

namespace m3 {

/// A piecewise-linear CDF over positive values.
///
/// Invariants: points are sorted by value; probabilities are non-decreasing;
/// the last probability is 1.0.
class PiecewiseCdf {
 public:
  struct Point {
    double value;
    double prob;  // P(X <= value)
  };

  /// Builds from breakpoints; validates and normalizes (sorts by value and
  /// forces the final probability to 1). Requires at least one point with
  /// positive value.
  explicit PiecewiseCdf(std::vector<Point> points);

  /// Inverse-transform sample.
  double Sample(Rng& rng) const;

  /// Quantile (inverse CDF) at probability u in [0, 1].
  double Quantile(double u) const;

  /// P(X <= v).
  double Cdf(double v) const;

  /// Mean of the piecewise-linear distribution (closed form per segment).
  double Mean() const;

  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

}  // namespace m3
