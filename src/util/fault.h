// Deterministic fault injection for resilience testing.
//
// Production code marks fault boundaries with named fault points:
//
//   M3_FAULT_POINT("estimator/path_forward");          // throw-type site
//   if (M3_FAULT_POINT_NAN("model/forward")) { ... }   // poison-type site
//
// When nothing is armed a fault point is a single relaxed atomic load.
// Tests (or the M3_FAULTS environment variable) arm sites with a FaultSpec
// that fires on an exact hit window — "fail the 3rd hit, twice, then heal" —
// so every degradation path can be driven deterministically, independent of
// thread scheduling, and the same binary re-runs identically.
//
// M3_FAULTS syntax (parsed on first registry use):
//   site=mode[@FROM][xCOUNT][,site=...]
// where mode is "throw" or "nan", FROM is the 1-based hit index of the
// first firing (default 1), and COUNT is the number of firing hits
// (default unlimited; "x*" is also unlimited). Example:
//   M3_FAULTS="estimator/path_forward=throw@2x1,model/forward=nan"
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/status.h"

namespace m3 {

enum class FaultMode { kThrow, kNan };

struct FaultSpec {
  FaultMode mode = FaultMode::kThrow;
  std::uint64_t fire_from = 1;   // 1-based hit index of the first firing hit
  std::int64_t fire_count = -1;  // firing hits before the site heals; -1 = unlimited
};

/// Thrown by throw-type fault points when an armed fault fires.
class FaultInjected : public std::runtime_error {
 public:
  explicit FaultInjected(const std::string& site);
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

class FaultRegistry {
 public:
  /// Process-wide registry. The first call parses M3_FAULTS (if set).
  static FaultRegistry& Instance();

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  void Arm(const std::string& site, const FaultSpec& spec = FaultSpec());
  void Disarm(const std::string& site);
  /// Disarms every site and zeroes all hit counters.
  void Reset();

  /// True if any site is armed (cheap; safe to call from hot paths).
  bool any_armed() const;

  /// Registers a hit at `site` and returns the armed mode if this hit
  /// fires, nullopt otherwise. Hits are only counted for armed sites.
  std::optional<FaultMode> Hit(const char* site);

  /// Hits recorded at `site` since it was armed (0 if never armed).
  std::uint64_t hits(const std::string& site) const;

  /// Arms sites from an M3_FAULTS-syntax string. On a malformed entry
  /// returns kInvalidArgument naming the entry; earlier entries stay armed.
  Status ArmFromString(const std::string& spec);

  /// fork() bracketing. A forked child inherits this registry's mutex in
  /// whatever state it was at the instant of fork — if another parent
  /// thread held it (any fault-point Hit takes it while sites are armed),
  /// the child's first fault point would deadlock on a lock nobody in the
  /// child can release. The forking code holds the lock across fork():
  ///   AcquireForkLock(); pid = fork(); ReleaseForkLock();  // both sides
  /// so both processes resume with the registry consistent and unlocked.
  void AcquireForkLock();
  void ReleaseForkLock();

 private:
  FaultRegistry();
  ~FaultRegistry() = default;

  struct Impl;
  Impl* impl_;
};

/// Throws FaultInjected if a throw-mode fault armed at `site` fires now.
void FaultPointThrow(const char* site);
/// True if a nan-mode fault armed at `site` fires now.
bool FaultPointNan(const char* site);

#define M3_FAULT_POINT(site) ::m3::FaultPointThrow(site)
#define M3_FAULT_POINT_NAN(site) ::m3::FaultPointNan(site)

}  // namespace m3
