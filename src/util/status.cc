#include "util/status.h"

namespace m3 {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDegraded: return "DEGRADED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

Status Status::Annotate(const std::string& context) const {
  if (ok()) return *this;
  return Status(code_, context + ": " + message_);
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace m3
