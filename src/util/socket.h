// Stream sockets (Unix-domain and TCP) + length-prefixed frame transport:
// the wire substrate of the m3d estimation service and the sharded fleet.
//
// Frame layout (all little-endian):
//   magic u32 ("m3d\1") | type u32 | payload_len u64 | payload bytes
//
// The framing layer is payload-agnostic; message payloads are defined in
// serve/wire.h. Reads and writes retry on EINTR and handle short transfers
// (routine on TCP, not just possible); a peer that closes mid-frame yields
// kDataLoss, a clean close before the magic yields kNotFound (end of
// stream), and oversized or bad-magic frames yield kInvalidArgument without
// reading the payload. A read or write that exceeds a configured
// SetRecvTimeout/SetSendTimeout bound yields kDeadlineExceeded.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace m3 {

/// Bytes on the wire: 'm' '3' 'd' 0x01, read as a little-endian u32.
constexpr std::uint32_t kM3dFrameMagic = 0x0164336d;

/// Hard cap on a single frame payload; protects the daemon from a hostile
/// or corrupt length field. 64 MB fits ~2M wire flows.
constexpr std::uint64_t kMaxFramePayload = 64ull * 1024 * 1024;

struct Frame {
  std::uint32_t type = 0;
  std::string payload;
};

/// An owned file descriptor (closes on destruction; movable, not copyable).
class UnixFd {
 public:
  UnixFd() = default;
  explicit UnixFd(int fd) : fd_(fd) {}
  ~UnixFd() { Close(); }
  UnixFd(UnixFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  UnixFd& operator=(UnixFd&& o) noexcept;
  UnixFd(const UnixFd&) = delete;
  UnixFd& operator=(const UnixFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

/// Creates, binds, and listens on a Unix-domain socket at `path`. An
/// existing socket file at `path` is unlinked first (stale socket from a
/// crashed daemon); a non-socket file at `path` is left alone and the bind
/// fails. kInvalidArgument for over-long paths, kUnavailable for OS errors.
StatusOr<UnixFd> ListenUnix(const std::string& path, int backlog = 64);

/// Accepts one connection on any stream listener (Unix or TCP); blocks.
/// kUnavailable on error. EINTR is retried, and so are ECONNABORTED /
/// EPROTO — a client that connects and dies before accept() must not kill
/// the accept loop.
StatusOr<UnixFd> AcceptUnix(const UnixFd& listener);

/// Connects to the daemon socket at `path`. kNotFound when nothing is bound
/// there, kUnavailable for other OS errors.
StatusOr<UnixFd> ConnectUnix(const std::string& path);

/// ConnectUnix with a wall-clock bound (non-blocking connect + poll): a
/// daemon whose accept queue is wedged cannot hang the client forever.
/// kDeadlineExceeded when the timeout expires; timeout_seconds <= 0 means
/// block indefinitely (identical to ConnectUnix).
StatusOr<UnixFd> ConnectUnixTimeout(const std::string& path, double timeout_seconds);

/// Bounds every subsequent read on `fd` (SO_RCVTIMEO): a recv that sits
/// longer than `seconds` with no bytes arriving fails, surfacing from
/// RecvFrame as kDeadlineExceeded. seconds <= 0 clears the bound. This is
/// both the client-side "wedged daemon" guard and the supervisor's
/// per-query watchdog primitive (deadline + grace, then SIGKILL).
Status SetRecvTimeout(const UnixFd& fd, double seconds);

/// Bounds every subsequent write on `fd` (SO_SNDTIMEO): a peer that stops
/// reading while we push a large frame fails the send as kDeadlineExceeded
/// instead of wedging the writer forever. seconds <= 0 clears the bound.
Status SetSendTimeout(const UnixFd& fd, double seconds);

/// Creates, binds, and listens on a TCP socket at host:port (SO_REUSEADDR
/// set so a restarted daemon can rebind immediately). `host` may be a
/// numeric address or a resolvable name; empty means all interfaces.
/// kUnavailable on OS errors, kInvalidArgument for unresolvable hosts.
StatusOr<UnixFd> ListenTcp(const std::string& host, std::uint16_t port, int backlog = 64);

/// Connects to a TCP peer with a wall-clock bound (non-blocking connect +
/// poll), then sets TCP_NODELAY — the protocol is strict request/response,
/// so Nagle only adds latency. timeout_seconds <= 0 blocks indefinitely.
/// kNotFound when nothing listens there, kDeadlineExceeded on timeout.
StatusOr<UnixFd> ConnectTcpTimeout(const std::string& host, std::uint16_t port,
                                   double timeout_seconds);

/// A parsed listen/connect address: "unix:/path", "tcp:host:port", or a
/// bare path (treated as unix). This is the shard-address format used by
/// m3d-router and m3_client.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;         // kUnix
  std::string host;         // kTcp
  std::uint16_t port = 0;   // kTcp

  std::string ToString() const;
};

/// Parses an endpoint spec. kInvalidArgument on malformed specs (missing
/// port, port out of range, empty path).
StatusOr<Endpoint> ParseEndpoint(const std::string& spec);

/// Connects to an endpoint of either kind with a wall-clock bound.
StatusOr<UnixFd> ConnectEndpoint(const Endpoint& ep, double timeout_seconds);

/// Listens on an endpoint of either kind.
StatusOr<UnixFd> ListenEndpoint(const Endpoint& ep, int backlog = 64);

/// A connected AF_UNIX stream socketpair (the supervisor <-> worker
/// channel; both ends speak the same framed protocol as daemon sockets).
Status MakeSocketPair(UnixFd* a, UnixFd* b);

/// Writes the whole frame. kUnavailable on any I/O failure (incl. EPIPE).
Status SendFrame(const UnixFd& fd, std::uint32_t type, const std::string& payload);

/// Reads one frame. kNotFound on clean end-of-stream (peer closed between
/// frames), kDataLoss on mid-frame close, kInvalidArgument on bad magic or
/// an oversized declared payload.
StatusOr<Frame> RecvFrame(const UnixFd& fd);

}  // namespace m3
