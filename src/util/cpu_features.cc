#include "util/cpu_features.h"

namespace m3 {
namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports checks CPUID *and* OS support for the register
  // state (XGETBV), so a kernel that does not save ZMM state reports false.
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
  f.avx512f = __builtin_cpu_supports("avx512f") != 0;
#endif
  return f;
}

}  // namespace

const CpuFeatures& GetCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

bool CpuSupportsAvx2Fma() {
  const CpuFeatures& f = GetCpuFeatures();
  return f.avx2 && f.fma;
}

bool CpuSupportsAvx512() { return GetCpuFeatures().avx512f; }

std::string CpuFeatureSummary() {
  const CpuFeatures& f = GetCpuFeatures();
  std::string s;
  if (f.avx2 && f.fma) s += "avx2+fma";
  if (f.avx512f) s += s.empty() ? "avx512f" : " avx512f";
  if (s.empty()) s = "scalar-only";
  return s;
}

}  // namespace m3
