#include "util/rng.h"

#include <cmath>

namespace m3 {

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  SplitMix64 sm(seed);
  state_ = sm.Next();
  inc_ = sm.Next() | 1ULL;  // stream selector must be odd
  NextU32();                // advance past the low-entropy first output
}

std::uint32_t Rng::NextU32() noexcept {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const std::uint32_t xorshifted =
      static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
  const std::uint32_t rot = static_cast<std::uint32_t>(old >> 59);
  return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31));
}

std::uint64_t Rng::NextU64() noexcept {
  return (static_cast<std::uint64_t>(NextU32()) << 32) | NextU32();
}

double Rng::NextDouble() noexcept {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::NextBounded(std::uint64_t n) noexcept {
  // Lemire-style rejection on 64 bits would need 128-bit math; the classic
  // modulo-threshold rejection is fine here.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) noexcept {
  return mean + stddev * Normal();
}

double Rng::Exponential(double mean) noexcept {
  return -mean * std::log(1.0 - NextDouble());
}

double Rng::LogNormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * Normal());
}

double Rng::Pareto(double xm, double alpha) noexcept {
  const double u = 1.0 - NextDouble();  // in (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  double target = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (target < w) return i;
    target -= w;
  }
  // Floating-point slop: fall back to the last positive weight.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return 0;
}

RngState Rng::SaveState() const noexcept {
  return RngState{state_, inc_, seed_, cached_normal_, has_cached_normal_};
}

void Rng::RestoreState(const RngState& s) noexcept {
  state_ = s.state;
  inc_ = s.inc;
  seed_ = s.seed;
  cached_normal_ = s.cached_normal;
  has_cached_normal_ = s.has_cached_normal;
}

Rng Rng::Fork(std::uint64_t label) noexcept {
  SplitMix64 sm(seed_ ^ (label * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL));
  return Rng(sm.Next());
}

}  // namespace m3
