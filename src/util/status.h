// Lightweight Status / StatusOr<T> error layer: the cross-subsystem error
// ABI for the estimation pipeline. Subsystem boundaries (estimator, dataset,
// trace_io, checkpoint load, tools) report failures as typed Status values
// with precise messages instead of letting exceptions unwind across layers;
// exceptions remain an intra-subsystem implementation detail.
#pragma once

#include <string>
#include <utility>

namespace m3 {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,  // caller-supplied input failed validation
  kNotFound = 2,         // a named resource (file, path) does not exist
  kDataLoss = 3,         // corrupt / truncated / non-finite data
  kDeadlineExceeded = 4, // a wall-clock budget expired before completion
  kInternal = 5,         // unexpected failure inside a subsystem
  kDegraded = 6,         // an answer was produced, but at reduced quality
  kUnavailable = 7,      // transient environment failure (I/O, resources)
  kResourceExhausted = 8,  // a bounded resource (queue, cache, budget) is full
};

constexpr int kNumStatusCodes = 9;

/// Stable upper-case name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  /// Default Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status DataLoss(std::string m) { return {StatusCode::kDataLoss, std::move(m)}; }
  static Status DeadlineExceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status Degraded(std::string m) { return {StatusCode::kDegraded, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Prepends context, preserving the code: st.Annotate("loading trace")
  /// turns "bad header" into "loading trace: bad header". Chainable.
  Status Annotate(const std::string& context) const;

  /// "CODE_NAME: message" (or "OK").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-OK Status. T must be default-constructible and
/// movable (true of every payload used at the repo's boundaries). Accessing
/// value() on an error is undefined; check ok() first.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT: implicit
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT: implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return value_; }
  const T& value() const& { return value_; }
  T&& value() && { return std::move(value_); }

  T& operator*() & { return value_; }
  const T& operator*() const& { return value_; }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK Status to the caller.
#define M3_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::m3::Status m3_status_ = (expr);         \
    if (!m3_status_.ok()) return m3_status_;  \
  } while (0)

}  // namespace m3
