// Parsimon baseline (Zhao et al., NSDI 2023): link-level decomposition.
//
// Each link is simulated independently at packet level with the flows that
// traverse it, sources and destinations attached directly through access
// links. A flow's end-to-end FCT estimate is its ideal path FCT plus the
// sum of per-link queueing/transport delays observed in each link-level
// simulation. Summing per-link slowdown is exactly the assumption the m3
// paper critiques (§5.3): when the bottleneck is the transport itself
// (e.g. a small initial window) the delay is over-counted.
#pragma once

#include <vector>

#include "pktsim/config.h"
#include "topo/topology.h"
#include "workload/flow.h"

namespace m3 {

struct ParsimonOptions {
  NetConfig cfg;
  unsigned num_threads = 0;  // 0 = hardware concurrency
  /// Skip simulating links whose offered load is negligible (< min_flows
  /// flows); their delta contribution is ~0.
  int min_flows = 1;
};

/// Returns estimated per-flow results, aligned with `flows`.
std::vector<FlowResult> RunParsimon(const Topology& topo, const std::vector<Flow>& flows,
                                    const ParsimonOptions& opts);

}  // namespace m3
