#include "parsimon/parsimon.h"

#include <algorithm>

#include "pktsim/simulator.h"
#include "topo/parking_lot.h"
#include "util/parallel.h"

namespace m3 {
namespace {

struct LinkDelta {
  FlowId flow;
  Ns delta;  // FCT - ideal in the link-level simulation (>= 0)
};

// Simulates one link with all its flows; returns per-flow extra delay.
std::vector<LinkDelta> SimulateLink(const Topology& topo, const std::vector<Flow>& flows,
                                    LinkId link, const std::vector<FlowId>& on_link,
                                    const NetConfig& cfg) {
  const Link& lk = topo.link(link);
  ParkingLot lot({lk.rate}, {lk.delay});

  std::vector<Flow> local;
  local.reserve(on_link.size());
  for (FlowId id : on_link) {
    const Flow& orig = flows[static_cast<std::size_t>(id)];
    // Preserve the flow's end-to-end base RTT by splitting the remaining
    // path propagation across the two access links, so transport-limited
    // behavior (window vs. RTT) matches the full network.
    const Ns rest_delay =
        std::max<Ns>(1, (topo.RouteDelay(orig.path) - lk.delay) / 2);
    const NodeId src = lot.AttachHost(0, topo.link(orig.path.front()).rate,
                                      static_cast<std::uint64_t>(orig.src), rest_delay);
    const NodeId dst = lot.AttachHost(1, topo.link(orig.path.back()).rate,
                                      static_cast<std::uint64_t>(orig.dst), rest_delay);
    Flow f;
    f.id = static_cast<FlowId>(local.size());
    f.src = src;
    f.dst = dst;
    f.size = orig.size;
    f.arrival = orig.arrival;
    f.path = lot.RouteBetween(src, 0, dst, 1);
    local.push_back(std::move(f));
  }

  const std::vector<FlowResult> res = RunPacketSim(lot.topo(), local, cfg);
  std::vector<LinkDelta> deltas;
  deltas.reserve(res.size());
  for (std::size_t i = 0; i < res.size(); ++i) {
    deltas.push_back({on_link[i], std::max<Ns>(0, res[i].fct - res[i].ideal_fct)});
  }
  return deltas;
}

}  // namespace

std::vector<FlowResult> RunParsimon(const Topology& topo, const std::vector<Flow>& flows,
                                    const ParsimonOptions& opts) {
  // Index flows by link.
  std::vector<std::vector<FlowId>> link_flows(topo.num_links());
  for (const Flow& f : flows) {
    for (LinkId l : f.path) link_flows[static_cast<std::size_t>(l)].push_back(f.id);
  }
  std::vector<LinkId> active_links;
  for (std::size_t l = 0; l < link_flows.size(); ++l) {
    if (static_cast<int>(link_flows[l].size()) >= opts.min_flows) {
      active_links.push_back(static_cast<LinkId>(l));
    }
  }

  // Per-link simulations in parallel; results merged deterministically.
  std::vector<std::vector<LinkDelta>> per_link(active_links.size());
  ParallelFor(
      active_links.size(),
      [&](std::size_t i) {
        const LinkId l = active_links[i];
        per_link[i] =
            SimulateLink(topo, flows, l, link_flows[static_cast<std::size_t>(l)], opts.cfg);
      },
      opts.num_threads);

  std::vector<Ns> delta_sum(flows.size(), 0);
  for (const auto& deltas : per_link) {
    for (const LinkDelta& d : deltas) {
      delta_sum[static_cast<std::size_t>(d.flow)] += d.delta;
    }
  }

  std::vector<FlowResult> out(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& f = flows[i];
    FlowResult& r = out[i];
    r.id = f.id;
    r.size = f.size;
    r.ideal_fct = IdealFct(topo, f.path, f.size);
    r.fct = r.ideal_fct + delta_sum[i];
    r.slowdown = r.ideal_fct > 0
                     ? static_cast<double>(r.fct) / static_cast<double>(r.ideal_fct)
                     : 1.0;
  }
  return out;
}

}  // namespace m3
