// Evaluates a model checkpoint on a held-out synthetic path set and on a
// small full-network suite: per-bucket p99 error vs flowSim, plus
// network-wide p99 error vs the packet simulator.
//
// Usage: eval_model <checkpoint> [num_paths=60] [num_net_scenarios=3]
#include <cstdio>
#include <cstdlib>

#include "bench/common.h"
#include "core/dataset.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: eval_model <checkpoint> [paths] [net_scenarios]\n");
    return 2;
  }
  const int num_paths = argc > 2 ? std::atoi(argv[2]) : 60;
  const int num_net = argc > 3 ? std::atoi(argv[3]) : 3;

  M3Model model;
  model.Load(argv[1]);

  // Held-out synthetic paths (fixed eval seed).
  DatasetOptions eopts;
  eopts.num_scenarios = num_paths;
  eopts.num_fg = 600;
  eopts.seed = 987654;
  const auto eval = MakeSyntheticDataset(eopts);

  std::vector<double> fs_err, m3_err;
  for (const Sample& s : eval) {
    const auto pred = model.Predict(s.fg_feat, s.bg_seq, s.spec, true, &s.baseline);
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (!s.gt.has[static_cast<std::size_t>(b)]) continue;
      const double t99 = s.gt.pct[static_cast<std::size_t>(b)][98];
      if (t99 <= 0) continue;
      if (s.flowsim.has[static_cast<std::size_t>(b)]) {
        fs_err.push_back(AbsErrPct(s.flowsim.pct[static_cast<std::size_t>(b)][98], t99));
      }
      m3_err.push_back(AbsErrPct(pred[static_cast<std::size_t>(b)][98], t99));
    }
  }
  std::printf("held-out paths (%d): per-bucket |p99 err| flowSim mean=%.1f%% median=%.1f%% "
              "| m3 mean=%.1f%% median=%.1f%%\n",
              num_paths, Mean(fs_err), Percentile(fs_err, 50), Mean(m3_err),
              Percentile(m3_err, 50));

  // Full-network probes.
  Rng rng(135);
  std::vector<double> net_err;
  for (int s = 0; s < num_net; ++s) {
    Mix mix = Table1Mixes()[static_cast<std::size_t>(s) % 3];
    mix.max_load = rng.Uniform(0.35, 0.65);
    BuiltMix built = BuildMix(mix, 20000, 7000 + static_cast<std::uint64_t>(s));
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    M3Options opts;
    opts.num_paths = 100;
    const NetworkEstimate est = RunM3(built.ft->topo(), built.wl.flows, built.cfg, model, opts);
    const double err = AbsErrPct(est.CombinedP99(), P99Slowdown(truth));
    net_err.push_back(err);
    std::printf("net scenario %d (%s, load %.0f%%): |p99 err| = %.1f%%\n", s,
                mix.name.c_str(), 100 * mix.max_load, err);
  }
  std::printf("network-wide mean |p99 err| = %.1f%%\n", Mean(net_err));
  return 0;
}
