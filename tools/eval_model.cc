// Evaluates a model checkpoint on a held-out synthetic path set and on a
// small full-network suite: per-bucket p99 error vs flowSim, plus
// network-wide p99 error vs the packet simulator.
//
// Exit codes: 0 OK, 2 usage, 4 checkpoint not found, 5 checkpoint corrupt.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/common.h"
#include "core/dataset.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

namespace {

constexpr const char* kUsage =
    "Usage: eval_model --model PATH [options]\n"
    "\n"
    "  --model PATH        checkpoint to evaluate (required)\n"
    "  --paths N           held-out synthetic paths, >= 1       (60)\n"
    "  --net-scenarios N   full-network probe scenarios, >= 0   (3)\n"
    "  --help              show this message\n"
    "\n"
    "Positional form `eval_model <checkpoint> [paths] [net_scenarios]` is\n"
    "also accepted for compatibility; values are validated either way.\n";

[[noreturn]] void UsageError(const std::string& msg) {
  std::fprintf(stderr, "eval_model: %s\n\n%s", msg.c_str(), kUsage);
  std::exit(2);
}

// Strict parse: the whole token must be an integer in range (std::atoi's
// silent garbage acceptance turned typos into 0-path evals).
long ParseInt(const std::string& key, const char* arg, long min, long max) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || v < min || v > max) {
    UsageError("invalid " + key + " '" + arg + "' (expected integer in [" +
               std::to_string(min) + ", " + std::to_string(max) + "])");
  }
  return v;
}

struct Args {
  std::string model_path;
  int num_paths = 60;
  int num_net = 3;
};

Args Parse(int argc, char** argv) {
  Args a;
  // Positional compatibility: eval_model <ckpt> [paths] [net].
  if (argc >= 2 && argv[1][0] != '-') {
    if (argc > 4) UsageError("too many positional arguments");
    a.model_path = argv[1];
    if (argc > 2) a.num_paths = static_cast<int>(ParseInt("paths", argv[2], 1, 1'000'000));
    if (argc > 3) a.num_net = static_cast<int>(ParseInt("net_scenarios", argv[3], 0, 10'000));
    return a;
  }
  int i = 1;
  while (i < argc) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") {
      std::printf("%s", kUsage);
      std::exit(0);
    }
    if (key.rfind("--", 0) != 0) UsageError("unexpected argument '" + key + "'");
    if (i + 1 >= argc) UsageError("missing value for " + key);
    const char* v = argv[i + 1];
    if (key == "--model") a.model_path = v;
    else if (key == "--paths") a.num_paths = static_cast<int>(ParseInt(key, v, 1, 1'000'000));
    else if (key == "--net-scenarios") a.num_net = static_cast<int>(ParseInt(key, v, 0, 10'000));
    else UsageError("unknown flag '" + key + "'");
    i += 2;
  }
  if (a.model_path.empty()) UsageError("--model is required");
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = Parse(argc, argv);

  M3Model model;
  {
    StatusOr<ml::CheckpointInfo> info = model.TryLoad(a.model_path);
    if (!info.ok()) {
      std::fprintf(stderr, "eval_model: %s\n", info.status().ToString().c_str());
      if (info.status().code() == StatusCode::kNotFound) {
        std::fprintf(stderr, "eval_model: run tools/train_m3 first to produce %s\n",
                     a.model_path.c_str());
        return 4;
      }
      return 5;
    }
  }

  // Held-out synthetic paths (fixed eval seed).
  DatasetOptions eopts;
  eopts.num_scenarios = a.num_paths;
  eopts.num_fg = 600;
  eopts.seed = 987654;
  const auto eval = MakeSyntheticDataset(eopts);

  std::vector<double> fs_err, m3_err;
  for (const Sample& s : eval) {
    const auto pred = model.Predict(s.fg_feat, s.bg_seq, s.spec, true, &s.baseline);
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (!s.gt.has[static_cast<std::size_t>(b)]) continue;
      const double t99 = s.gt.pct[static_cast<std::size_t>(b)][98];
      if (t99 <= 0) continue;
      if (s.flowsim.has[static_cast<std::size_t>(b)]) {
        fs_err.push_back(AbsErrPct(s.flowsim.pct[static_cast<std::size_t>(b)][98], t99));
      }
      m3_err.push_back(AbsErrPct(pred[static_cast<std::size_t>(b)][98], t99));
    }
  }
  std::printf("held-out paths (%d): per-bucket |p99 err| flowSim mean=%.1f%% median=%.1f%% "
              "| m3 mean=%.1f%% median=%.1f%%\n",
              a.num_paths, Mean(fs_err), Percentile(fs_err, 50), Mean(m3_err),
              Percentile(m3_err, 50));

  // Full-network probes.
  Rng rng(135);
  std::vector<double> net_err;
  for (int s = 0; s < a.num_net; ++s) {
    Mix mix = Table1Mixes()[static_cast<std::size_t>(s) % 3];
    mix.max_load = rng.Uniform(0.35, 0.65);
    BuiltMix built = BuildMix(mix, 20000, 7000 + static_cast<std::uint64_t>(s));
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    M3Options opts;
    opts.num_paths = 100;
    const NetworkEstimate est = RunM3(built.ft->topo(), built.wl.flows, built.cfg, model, opts);
    const double err = AbsErrPct(est.CombinedP99(), P99Slowdown(truth));
    net_err.push_back(err);
    std::printf("net scenario %d (%s, load %.0f%%): |p99 err| = %.1f%%\n", s,
                mix.name.c_str(), 100 * mix.max_load, err);
  }
  if (a.num_net > 0) {
    std::printf("network-wide mean |p99 err| = %.1f%%\n", Mean(net_err));
  }
  return 0;
}
