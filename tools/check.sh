#!/usr/bin/env bash
# PR gate: tier-1 build + full test suite, then an AddressSanitizer build of
# the checkpoint/trainer suites so the corruption-handling paths (truncated
# files, bit flips, hostile length fields) are exercised under ASan, then a
# UBSan build of the resilience suites so the fault-injection and validation
# paths (injected throws, NaN forwards, malformed traces) are checked for
# undefined behaviour under fault, then a ThreadSanitizer build of the
# serving suites so hot-reload-under-load, the shared result caches, and the
# scheduler/socket shutdown paths are checked for data races.
#
# Usage: tools/check.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: build + ctest =="
cmake -B build -S . "$@"
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== ASan: checkpoint/trainer robustness suites =="
cmake -B build-asan -S . -DM3_SANITIZE=address "$@"
cmake --build build-asan -j"$JOBS" --target m3_tests
ctest --test-dir build-asan --output-on-failure -j"$JOBS" \
  -R 'CheckpointV2|Checkpoint\.|Resume|Trainer|ThreadPool'

echo "== UBSan: resilience / fault-injection suites =="
cmake -B build-ubsan -S . -DM3_SANITIZE=undefined "$@"
cmake --build build-ubsan -j"$JOBS" --target m3_tests
ctest --test-dir build-ubsan --output-on-failure -j"$JOBS" \
  -R 'Status|FaultRegistry|Validate|EstimatorResilience|AggregationGuard|CheckpointResilience|TraceIo'

echo "== TSan: serving / hot-reload / scheduler suites =="
cmake -B build-tsan -S . -DM3_SANITIZE=thread "$@"
cmake --build build-tsan -j"$JOBS" --target m3_tests
ctest --test-dir build-tsan --output-on-failure -j"$JOBS" \
  -R 'Service|SocketServer|ModelRegistry|LruCache|ThreadPool'

echo "== all checks passed =="
