#!/usr/bin/env bash
# PR gate: tier-1 build + full test suite, then an AddressSanitizer build of
# the checkpoint/trainer suites so the corruption-handling paths (truncated
# files, bit flips, hostile length fields) are exercised under ASan, then a
# UBSan build of the resilience suites so the fault-injection and validation
# paths (injected throws, NaN forwards, malformed traces) are checked for
# undefined behaviour under fault, then a ThreadSanitizer build of the
# serving suites so hot-reload-under-load, the shared result caches, and the
# scheduler/socket shutdown paths are checked for data races, and finally
# the chaos tier: the supervised-worker suites under ASan (fork + crash +
# watchdog + breaker paths) plus a live mini-soak — a real m3d with 4
# supervised workers serving m3_client load-gen while every worker is
# SIGKILLed over and over; every query must answer and no zombies may
# survive shutdown. The chaos suites are kept out of the TSan tier on
# purpose: fork() and ThreadSanitizer do not mix. Last, the distributed
# tier: a real m3d_router over three real m3d shards serving load-gen while
# one shard is SIGKILLed mid-load — every query must come back answered
# (ok or degraded, never failed) and the whole fleet must shut down without
# orphans. Finally the overload tier: a deliberately undersized m3d driven
# at ~4x its capacity with per-query deadlines — every query must resolve
# (answered or shed with a typed status, zero failed, zero silent
# timeouts), the p99 of admitted queries must stay under the deadline, and
# once the burst stops the daemon must recover to shedding nothing. Last,
# the warm-restart tier: an m3d with --cache-dir serves a cacheable working
# set, is SIGKILLed mid-flush, and restarts on the same directory — the
# recovery must come up immediately (the kernel released the dir lock),
# skip any torn segment with a typed counter, and serve >= 90% of the
# previously flushed keys as warm cache hits.
#
# Usage: tools/check.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: build + ctest =="
cmake -B build -S . "$@"
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== ASan: checkpoint/trainer robustness suites =="
cmake -B build-asan -S . -DM3_SANITIZE=address "$@"
cmake --build build-asan -j"$JOBS" --target m3_tests
ctest --test-dir build-asan --output-on-failure -j"$JOBS" \
  -R 'CheckpointV2|Checkpoint\.|Resume|Trainer|ThreadPool|Persist'

echo "== kernels: SIMD parity suites under ASan+UBSan for every M3_KERNEL =="
# Every dispatchable tier (including forced-but-unavailable values, which
# must fall back gracefully) runs the kernel parity + fused-op + trainer
# determinism suites under both sanitizers: masked tail loads/stores, the
# arena recycling, and the fused backward passes are exactly where an
# out-of-bounds lane or UB would hide.
cmake -B build-ubsan -S . -DM3_SANITIZE=undefined "$@"
cmake --build build-ubsan -j"$JOBS" --target m3_tests
for kernel_impl in naive tiled avx2 avx512; do
  for san_build in build-asan build-ubsan; do
    echo "--  M3_KERNEL=$kernel_impl ($san_build)"
    M3_KERNEL="$kernel_impl" ctest --test-dir "$san_build" --output-on-failure -j"$JOBS" \
      -R 'Kernels|KernelDispatch|AutogradFused|TensorArena|TensorAlignment|TrainerParallel\.'
  done
done

echo "== UBSan: resilience / fault-injection suites =="
cmake -B build-ubsan -S . -DM3_SANITIZE=undefined "$@"
cmake --build build-ubsan -j"$JOBS" --target m3_tests
ctest --test-dir build-ubsan --output-on-failure -j"$JOBS" \
  -R 'Status|FaultRegistry|Validate|EstimatorResilience|AggregationGuard|CheckpointResilience|TraceIo'

echo "== TSan: serving / hot-reload / scheduler suites =="
cmake -B build-tsan -S . -DM3_SANITIZE=thread "$@"
cmake --build build-tsan -j"$JOBS" --target m3_tests
ctest --test-dir build-tsan --output-on-failure -j"$JOBS" \
  -R 'Service|SocketServer|ModelRegistry|LruCache|ThreadPool|Persist'

echo "== chaos: supervised-worker + router fleet suites under ASan =="
ctest --test-dir build-asan --output-on-failure -j"$JOBS" \
  -R 'WorkerPool|Supervisor|ChaosSoak|SocketTimeout|HashRing|ShardBreaker|ShardWire|ShardExec|RouterChaos'

echo "== chaos: live kill-storm mini-soak (m3d + load-gen vs SIGKILL) =="
cmake --build build -j"$JOBS" --target m3d m3_client train_m3
SOAK_DIR="$(mktemp -d)"
SOAK_SOCK="$SOAK_DIR/m3d.sock"
M3D_PID=""
cleanup_soak() {
  [ -n "$M3D_PID" ] && kill -KILL "$M3D_PID" 2>/dev/null || true
  rm -rf "$SOAK_DIR"
}
trap cleanup_soak EXIT

# A tiny (1-epoch) checkpoint is plenty: the soak tests supervision, not
# accuracy.
./build/tools/train_m3 2 10 1 "$SOAK_DIR/model.ckpt" > /dev/null
./build/tools/m3d --socket "$SOAK_SOCK" --model "$SOAK_DIR/model.ckpt" \
  --workers 4 > "$SOAK_DIR/m3d.log" 2>&1 &
M3D_PID=$!
for _ in $(seq 1 100); do
  ./build/tools/m3_client --socket "$SOAK_SOCK" --ping > /dev/null 2>&1 && break
  sleep 0.2
done

# SIGKILL every worker four times a second while load-gen runs (~30s of
# storm cap; the killer dies with the load).
(
  end=$((SECONDS + 30))
  while [ "$SECONDS" -lt "$end" ]; do
    pkill -KILL -P "$M3D_PID" 2>/dev/null || true
    sleep 0.25
  done
) &
KILLER_PID=$!
./build/tools/m3_client --socket "$SOAK_SOCK" --flows 5000 --paths 20 \
  --no-cache --concurrency 8 --repeat 50 --retries 6
kill "$KILLER_PID" 2>/dev/null || true
wait "$KILLER_PID" 2>/dev/null || true

# The daemon survived the storm, heals the pool, and reports ready again.
for _ in $(seq 1 100); do
  ./build/tools/m3_client --socket "$SOAK_SOCK" --ping > /dev/null 2>&1 && break
  sleep 0.2
done
./build/tools/m3_client --socket "$SOAK_SOCK" --ping
./build/tools/m3_client --socket "$SOAK_SOCK" --stats

kill -TERM "$M3D_PID"
wait "$M3D_PID"
M3D_PID=""
# Clean shutdown reaps every worker: nothing may still reference the socket
# path (workers share m3d's argv — fork without exec).
if pgrep -f "$SOAK_SOCK" > /dev/null 2>&1; then
  echo "chaos soak: leaked worker processes:" >&2
  pgrep -af "$SOAK_SOCK" >&2
  exit 1
fi

echo "== distributed: router + 3-shard fleet vs shard SIGKILL =="
cmake --build build -j"$JOBS" --target m3d m3d_router m3_client train_m3
DIST_DIR="$(mktemp -d)"
DIST_PIDS=""
cleanup_dist() {
  for p in $DIST_PIDS; do kill -KILL "$p" 2>/dev/null || true; done
  rm -rf "$DIST_DIR"
}
trap 'cleanup_soak; cleanup_dist' EXIT

./build/tools/train_m3 2 10 1 "$DIST_DIR/model.ckpt" > /dev/null
SHARD_PIDS=""
for i in 0 1 2; do
  ./build/tools/m3d --socket "$DIST_DIR/shard$i.sock" \
    --model "$DIST_DIR/model.ckpt" --workers 2 \
    > "$DIST_DIR/shard$i.log" 2>&1 &
  SHARD_PIDS="$SHARD_PIDS $!"
done
DIST_PIDS="$SHARD_PIDS"
for i in 0 1 2; do
  for _ in $(seq 1 100); do
    ./build/tools/m3_client --socket "$DIST_DIR/shard$i.sock" --ping \
      > /dev/null 2>&1 && break
    sleep 0.2
  done
done
./build/tools/m3d_router --listen "$DIST_DIR/router.sock" \
  --shard "$DIST_DIR/shard0.sock" --shard "$DIST_DIR/shard1.sock" \
  --shard "$DIST_DIR/shard2.sock" \
  --health-interval 0.2 --breaker-cooloff 1 --backoff-ms 10 \
  > "$DIST_DIR/router.log" 2>&1 &
ROUTER_PID=$!
DIST_PIDS="$DIST_PIDS $ROUTER_PID"
for _ in $(seq 1 100); do
  ./build/tools/m3_client --socket "$DIST_DIR/router.sock" --ping \
    > /dev/null 2>&1 && break
  sleep 0.2
done

# SIGKILL one shard by its exact pid one second into the load (never
# pkill -f here: the router's argv contains every shard's socket path).
VICTIM_PID="$(echo "$SHARD_PIDS" | awk '{print $2}')"
( sleep 1; kill -KILL "$VICTIM_PID" 2>/dev/null || true ) &
KILLER_PID=$!

# The distributed contract: with a shard dying mid-load, every query is
# still answered — rerouted to a replica or flowSim-degraded, never failed.
DIST_JSON="$(./build/tools/m3_client --socket "$DIST_DIR/router.sock" \
  --flows 4000 --paths 32 --no-cache --concurrency 4 --repeat 25 \
  --retries 6 --json)"
echo "$DIST_JSON"
wait "$KILLER_PID" 2>/dev/null || true
dist_total="$(echo "$DIST_JSON" | sed -E 's/.*"total": ([0-9]+).*/\1/')"
dist_answered="$(echo "$DIST_JSON" | sed -E 's/.*"answered": ([0-9]+).*/\1/')"
dist_failed="$(echo "$DIST_JSON" | sed -E 's/.*"failed": ([0-9]+).*/\1/')"
if [ "$dist_failed" != 0 ] || [ "$dist_total" != "$dist_answered" ]; then
  echo "distributed: $dist_failed failed, $dist_answered/$dist_total answered" >&2
  exit 1
fi

# The router stays up and reports fleet health after the loss.
./build/tools/m3_client --socket "$DIST_DIR/router.sock" --ping
./build/tools/m3_client --socket "$DIST_DIR/router.sock" --stats > /dev/null

kill -TERM "$ROUTER_PID"
wait "$ROUTER_PID"
for p in $SHARD_PIDS; do
  [ "$p" = "$VICTIM_PID" ] && continue
  kill -TERM "$p" 2>/dev/null || true
done
for p in $SHARD_PIDS; do
  wait "$p" 2>/dev/null || true
done
DIST_PIDS=""
# Nothing may still reference the fleet directory: shard workers share
# m3d's argv (fork without exec), so a leak shows up here.
if pgrep -f "$DIST_DIR" > /dev/null 2>&1; then
  echo "distributed: leaked fleet processes:" >&2
  pgrep -af "$DIST_DIR" >&2
  exit 1
fi

echo "== overload: undersized m3d vs 4x over-capacity deadline load =="
cmake --build build -j"$JOBS" --target m3d m3_client train_m3
OVL_DIR="$(mktemp -d)"
OVL_SOCK="$OVL_DIR/m3d.sock"
OVL_PID=""
cleanup_ovl() {
  [ -n "$OVL_PID" ] && kill -KILL "$OVL_PID" 2>/dev/null || true
  rm -rf "$OVL_DIR"
}
trap 'cleanup_soak; cleanup_dist; cleanup_ovl' EXIT

./build/tools/train_m3 2 10 1 "$OVL_DIR/model.ckpt" > /dev/null
# Deliberately undersized: 2 workers, an 8-deep queue, a 0.5s sojourn shed
# gate, and brownout on — the shape overload control is built for.
./build/tools/m3d --socket "$OVL_SOCK" --model "$OVL_DIR/model.ckpt" \
  --workers 2 --queue 8 --shed-sojourn 0.5 --brownout on \
  > "$OVL_DIR/m3d.log" 2>&1 &
OVL_PID=$!
for _ in $(seq 1 100); do
  ./build/tools/m3_client --socket "$OVL_SOCK" --ping > /dev/null 2>&1 && break
  sleep 0.2
done

# ~4x over capacity: 16 concurrent streams against 2 workers + 8 queue
# slots. retries 0 so every shed stays visible instead of being retried
# away; a 10s deadline every admitted query can comfortably make.
OVL_DEADLINE_MS=10000
OVL_JSON="$(./build/tools/m3_client --socket "$OVL_SOCK" \
  --flows 2000 --paths 16 --no-cache --concurrency 16 --repeat 8 \
  --deadline 10 --retries 0 --json)"
echo "$OVL_JSON"
ovl_total="$(echo "$OVL_JSON" | sed -E 's/.*"total": ([0-9]+).*/\1/')"
ovl_answered="$(echo "$OVL_JSON" | sed -E 's/.*"answered": ([0-9]+).*/\1/')"
ovl_shed="$(echo "$OVL_JSON" | sed -E 's/.*"shed": ([0-9]+).*/\1/')"
ovl_failed="$(echo "$OVL_JSON" | sed -E 's/.*"failed": ([0-9]+).*/\1/')"
ovl_p99="$(echo "$OVL_JSON" | sed -E 's/.*"p99_ms": ([0-9.]+).*/\1/')"
# The overload contract: every query resolves with a typed outcome
# (answered + shed = total, zero failed), overload actually sheds instead
# of silently timing out, and admitted queries still meet their deadline.
if [ "$ovl_failed" != 0 ] || [ $((ovl_answered + ovl_shed)) != "$ovl_total" ]; then
  echo "overload: $ovl_failed failed, $ovl_answered answered + $ovl_shed shed != $ovl_total total" >&2
  exit 1
fi
if [ "$ovl_shed" = 0 ]; then
  echo "overload: 4x over-capacity load shed nothing — admission gate inert" >&2
  exit 1
fi
if ! awk -v p99="$ovl_p99" -v lim="$OVL_DEADLINE_MS" 'BEGIN { exit !(p99 < lim) }'; then
  echo "overload: admitted p99 ${ovl_p99}ms breaches the ${OVL_DEADLINE_MS}ms deadline" >&2
  exit 1
fi

# Recovery: within 5s of the burst ending, a polite load sheds nothing and
# serves at full quality (3s waits out the 2s default brownout hold).
sleep 3
OVL_CALM="$(./build/tools/m3_client --socket "$OVL_SOCK" \
  --flows 2000 --paths 16 --no-cache --concurrency 1 --repeat 4 \
  --deadline 10 --retries 0 --json)"
echo "$OVL_CALM"
calm_total="$(echo "$OVL_CALM" | sed -E 's/.*"total": ([0-9]+).*/\1/')"
calm_answered="$(echo "$OVL_CALM" | sed -E 's/.*"answered": ([0-9]+).*/\1/')"
calm_shed="$(echo "$OVL_CALM" | sed -E 's/.*"shed": ([0-9]+).*/\1/')"
calm_brownout="$(echo "$OVL_CALM" | sed -E 's/.*"brownout": ([0-9]+).*/\1/')"
if [ "$calm_shed" != 0 ] || [ "$calm_brownout" != 0 ] || [ "$calm_total" != "$calm_answered" ]; then
  echo "overload: no recovery after burst: $calm_shed shed, $calm_brownout browned out, $calm_answered/$calm_total answered" >&2
  exit 1
fi
./build/tools/m3_client --socket "$OVL_SOCK" --stats

kill -TERM "$OVL_PID"
wait "$OVL_PID"
OVL_PID=""
if pgrep -f "$OVL_SOCK" > /dev/null 2>&1; then
  echo "overload: leaked worker processes:" >&2
  pgrep -af "$OVL_SOCK" >&2
  exit 1
fi

echo "== warm-restart: durable caches vs SIGKILL mid-flush =="
cmake --build build -j"$JOBS" --target m3d m3_client train_m3
WARM_DIR="$(mktemp -d)"
WARM_SOCK="$WARM_DIR/m3d.sock"
WARM_CACHE="$WARM_DIR/cache"
WARM_PID=""
cleanup_warm() {
  [ -n "$WARM_PID" ] && kill -KILL "$WARM_PID" 2>/dev/null || true
  rm -rf "$WARM_DIR"
}
trap 'cleanup_soak; cleanup_dist; cleanup_ovl; cleanup_warm' EXIT

./build/tools/train_m3 2 10 1 "$WARM_DIR/model.ckpt" > /dev/null
# In-process execution and a fast flusher: the subject is the durable
# cache, not the worker pool. No --no-cache anywhere in this tier.
start_warm_daemon() {
  ./build/tools/m3d --socket "$WARM_SOCK" --model "$WARM_DIR/model.ckpt" \
    --workers 0 --cache-dir "$WARM_CACHE" --cache-flush-interval 0.2 \
    >> "$WARM_DIR/m3d.log" 2>&1 &
  WARM_PID=$!
  for _ in $(seq 1 100); do
    ./build/tools/m3_client --socket "$WARM_SOCK" --ping > /dev/null 2>&1 && break
    sleep 0.2
  done
}
start_warm_daemon

# Eight distinct cacheable queries, then a second of flusher intervals so
# the whole working set is durably spilled.
for seed in 1 2 3 4 5 6 7 8; do
  ./build/tools/m3_client --socket "$WARM_SOCK" --flows 1500 --paths 8 \
    --seed "$seed" > /dev/null
done
sleep 1
WARM_STATS="$(./build/tools/m3_client --socket "$WARM_SOCK" --stats --json)"
echo "$WARM_STATS"
warm_flushed="$(echo "$WARM_STATS" | sed -E 's/.*"persist_entries_flushed":([0-9]+).*/\1/')"
if [ "$warm_flushed" -lt 8 ]; then
  echo "warm-restart: only $warm_flushed entries flushed before the kill" >&2
  exit 1
fi

# SIGKILL mid-flush: fresh inserts land every ~50ms while the 0.2s flusher
# is spilling, then the daemon dies without any shutdown path. The last
# segment may be torn — recovery must skip it with a typed counter, never
# crash, never serve a corrupt entry.
(
  s=100
  while :; do
    ./build/tools/m3_client --socket "$WARM_SOCK" --flows 1500 --paths 8 \
      --seed "$s" > /dev/null 2>&1 || exit 0
    s=$((s + 1))
  done
) &
STORM_PID=$!
sleep 0.5
kill -KILL "$WARM_PID"
wait "$WARM_PID" 2>/dev/null || true
WARM_PID=""
wait "$STORM_PID" 2>/dev/null || true

# Restart on the same directory: the SIGKILLed holder's flock is released
# by the kernel, so this must come up immediately — and warm.
start_warm_daemon
./build/tools/m3_client --socket "$WARM_SOCK" --ping

# Re-drive the original eight queries and require a >= 90% warm hit ratio
# on the recovered query cache (they were all flushed before the kill).
for seed in 1 2 3 4 5 6 7 8; do
  ./build/tools/m3_client --socket "$WARM_SOCK" --flows 1500 --paths 8 \
    --seed "$seed" > /dev/null
done
WARM_AFTER="$(./build/tools/m3_client --socket "$WARM_SOCK" --stats --json)"
echo "$WARM_AFTER"
warm_loaded="$(echo "$WARM_AFTER" | sed -E 's/.*"persist_entries_loaded":([0-9]+).*/\1/')"
warm_hits="$(echo "$WARM_AFTER" | sed -E 's/.*"query_cache":\{"hits":([0-9]+).*/\1/')"
if [ "$warm_loaded" -lt 8 ]; then
  echo "warm-restart: only $warm_loaded entries recovered" >&2
  exit 1
fi
if [ "$warm_hits" -lt 7 ]; then
  echo "warm-restart: only $warm_hits/8 re-driven queries hit warm (< 90%)" >&2
  exit 1
fi

kill -TERM "$WARM_PID"
wait "$WARM_PID"
WARM_PID=""
if pgrep -f "$WARM_SOCK" > /dev/null 2>&1; then
  echo "warm-restart: leaked processes:" >&2
  pgrep -af "$WARM_SOCK" >&2
  exit 1
fi

echo "== all checks passed =="
