#!/usr/bin/env bash
# PR gate: tier-1 build + full test suite, then an AddressSanitizer build of
# the checkpoint/trainer suites so the corruption-handling paths (truncated
# files, bit flips, hostile length fields) are exercised under ASan, then a
# UBSan build of the resilience suites so the fault-injection and validation
# paths (injected throws, NaN forwards, malformed traces) are checked for
# undefined behaviour under fault, then a ThreadSanitizer build of the
# serving suites so hot-reload-under-load, the shared result caches, and the
# scheduler/socket shutdown paths are checked for data races, and finally
# the chaos tier: the supervised-worker suites under ASan (fork + crash +
# watchdog + breaker paths) plus a live mini-soak — a real m3d with 4
# supervised workers serving m3_client load-gen while every worker is
# SIGKILLed over and over; every query must answer and no zombies may
# survive shutdown. The chaos suites are kept out of the TSan tier on
# purpose: fork() and ThreadSanitizer do not mix.
#
# Usage: tools/check.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== tier-1: build + ctest =="
cmake -B build -S . "$@"
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== ASan: checkpoint/trainer robustness suites =="
cmake -B build-asan -S . -DM3_SANITIZE=address "$@"
cmake --build build-asan -j"$JOBS" --target m3_tests
ctest --test-dir build-asan --output-on-failure -j"$JOBS" \
  -R 'CheckpointV2|Checkpoint\.|Resume|Trainer|ThreadPool'

echo "== kernels: SIMD parity suites under ASan+UBSan for every M3_KERNEL =="
# Every dispatchable tier (including forced-but-unavailable values, which
# must fall back gracefully) runs the kernel parity + fused-op + trainer
# determinism suites under both sanitizers: masked tail loads/stores, the
# arena recycling, and the fused backward passes are exactly where an
# out-of-bounds lane or UB would hide.
cmake -B build-ubsan -S . -DM3_SANITIZE=undefined "$@"
cmake --build build-ubsan -j"$JOBS" --target m3_tests
for kernel_impl in naive tiled avx2 avx512; do
  for san_build in build-asan build-ubsan; do
    echo "--  M3_KERNEL=$kernel_impl ($san_build)"
    M3_KERNEL="$kernel_impl" ctest --test-dir "$san_build" --output-on-failure -j"$JOBS" \
      -R 'Kernels|KernelDispatch|AutogradFused|TensorArena|TensorAlignment|TrainerParallel\.'
  done
done

echo "== UBSan: resilience / fault-injection suites =="
cmake -B build-ubsan -S . -DM3_SANITIZE=undefined "$@"
cmake --build build-ubsan -j"$JOBS" --target m3_tests
ctest --test-dir build-ubsan --output-on-failure -j"$JOBS" \
  -R 'Status|FaultRegistry|Validate|EstimatorResilience|AggregationGuard|CheckpointResilience|TraceIo'

echo "== TSan: serving / hot-reload / scheduler suites =="
cmake -B build-tsan -S . -DM3_SANITIZE=thread "$@"
cmake --build build-tsan -j"$JOBS" --target m3_tests
ctest --test-dir build-tsan --output-on-failure -j"$JOBS" \
  -R 'Service|SocketServer|ModelRegistry|LruCache|ThreadPool'

echo "== chaos: supervised-worker suites under ASan =="
ctest --test-dir build-asan --output-on-failure -j"$JOBS" \
  -R 'WorkerPool|Supervisor|ChaosSoak|SocketTimeout'

echo "== chaos: live kill-storm mini-soak (m3d + load-gen vs SIGKILL) =="
cmake --build build -j"$JOBS" --target m3d m3_client train_m3
SOAK_DIR="$(mktemp -d)"
SOAK_SOCK="$SOAK_DIR/m3d.sock"
M3D_PID=""
cleanup_soak() {
  [ -n "$M3D_PID" ] && kill -KILL "$M3D_PID" 2>/dev/null || true
  rm -rf "$SOAK_DIR"
}
trap cleanup_soak EXIT

# A tiny (1-epoch) checkpoint is plenty: the soak tests supervision, not
# accuracy.
./build/tools/train_m3 2 10 1 "$SOAK_DIR/model.ckpt" > /dev/null
./build/tools/m3d --socket "$SOAK_SOCK" --model "$SOAK_DIR/model.ckpt" \
  --workers 4 > "$SOAK_DIR/m3d.log" 2>&1 &
M3D_PID=$!
for _ in $(seq 1 100); do
  ./build/tools/m3_client --socket "$SOAK_SOCK" --ping > /dev/null 2>&1 && break
  sleep 0.2
done

# SIGKILL every worker four times a second while load-gen runs (~30s of
# storm cap; the killer dies with the load).
(
  end=$((SECONDS + 30))
  while [ "$SECONDS" -lt "$end" ]; do
    pkill -KILL -P "$M3D_PID" 2>/dev/null || true
    sleep 0.25
  done
) &
KILLER_PID=$!
./build/tools/m3_client --socket "$SOAK_SOCK" --flows 5000 --paths 20 \
  --no-cache --concurrency 8 --repeat 50 --retries 6
kill "$KILLER_PID" 2>/dev/null || true
wait "$KILLER_PID" 2>/dev/null || true

# The daemon survived the storm, heals the pool, and reports ready again.
for _ in $(seq 1 100); do
  ./build/tools/m3_client --socket "$SOAK_SOCK" --ping > /dev/null 2>&1 && break
  sleep 0.2
done
./build/tools/m3_client --socket "$SOAK_SOCK" --ping
./build/tools/m3_client --socket "$SOAK_SOCK" --stats

kill -TERM "$M3D_PID"
wait "$M3D_PID"
M3D_PID=""
# Clean shutdown reaps every worker: nothing may still reference the socket
# path (workers share m3d's argv — fork without exec).
if pgrep -f "$SOAK_SOCK" > /dev/null 2>&1; then
  echo "chaos soak: leaked worker processes:" >&2
  pgrep -af "$SOAK_SOCK" >&2
  exit 1
fi

echo "== all checks passed =="
