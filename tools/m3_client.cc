// m3_client: query the m3d daemon over its Unix-domain socket.
//
// Three modes:
//   query (default)  — build a scenario (same flags as m3_query), send it,
//                      print the slowdown table plus serving metadata
//                      (model version, cache hit, daemon-side wall time)
//   --stats          — print the daemon's counters and cache statistics
//   --reload PATH    — hot-swap the serving checkpoint; on failure the old
//                      model keeps serving and the error is printed
//   --ping           — liveness/readiness probe: exit 0 once the daemon is
//                      serving (model loaded; in worker mode, >= 1 worker
//                      alive), 9 when up but not ready, 4 when unreachable
//
// Retries: transient failures (kUnavailable, kResourceExhausted) are
// retried up to --retries times with exponential backoff + jitter,
// reconnecting when the transport broke; a --deadline bounds the total
// retry budget. Connects and reads are timeout-guarded, so a wedged daemon
// surfaces as kDeadlineExceeded instead of a hang.
//
// Load generation: --concurrency N --repeat M sends the query N*M times
// over N parallel connections and reports throughput, p50/p99 latency,
// retry/reconnect counts, and the failed-query count (non-zero failures ->
// non-zero exit).
//
// Exit codes extend m3_query's mapping with 10 = RESOURCE_EXHAUSTED (the
// daemon's admission control rejected the query; back off and retry):
//   0 OK   2 usage   3 INVALID_ARGUMENT   4 NOT_FOUND   5 DATA_LOSS
//   6 DEADLINE_EXCEEDED   7 INTERNAL   8 DEGRADED   9 UNAVAILABLE
//   10 RESOURCE_EXHAUSTED
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <algorithm>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "serve/wire.h"
#include "topo/fat_tree.h"
#include "util/socket.h"
#include "workload/generator.h"
#include "workload/size_dist.h"
#include "workload/trace_io.h"

using namespace m3;
using namespace m3::serve;

namespace {

constexpr const char* kUsage =
    "Usage: m3_client [options]\n"
    "\n"
    "Connection:\n"
    "  --socket SPEC            m3d / m3d-router endpoint   (/tmp/m3d.sock)\n"
    "                           (unix:/path, tcp:host:port, or a bare path)\n"
    "\n"
    "Admin:\n"
    "  --stats                  print daemon counters and exit\n"
    "  --reload PATH            hot-swap the serving checkpoint and exit\n"
    "  --ping                   readiness probe: 0 ready, 9 not ready, 4 down\n"
    "\n"
    "Scenario (generated client-side, same semantics as m3_query):\n"
    "  --tm A|B|C               traffic matrix                     (B)\n"
    "  --workload NAME          WebServer|CacheFollower|Hadoop     (WebServer)\n"
    "  --oversub F              fat-tree oversubscription, > 0     (2)\n"
    "  --load F                 target max link load, (0, 1]      (0.5)\n"
    "  --sigma F                burstiness sigma, >= 0             (1.5)\n"
    "  --flows N                foreground flows, >= 1             (20000)\n"
    "  --trace FILE             load flows from an m3-trace file\n"
    "  --cc NAME                DCTCP|TIMELY|DCQCN|HPCC            (DCTCP)\n"
    "  --window BYTES           initial window, > 0                (15000)\n"
    "  --buffer BYTES           per-port buffer, > 0               (300000)\n"
    "  --pfc 0|1                enable PFC                         (0)\n"
    "\n"
    "Estimation:\n"
    "  --paths N                sampled paths, >= 1                (100)\n"
    "  --seed N                 path sampling seed                 (1)\n"
    "  --percentile P           reported percentile, [1, 100]      (99)\n"
    "  --strict                 fail on the first path fault\n"
    "  --deadline SECONDS       daemon-side wall-clock budget\n"
    "  --priority CLASS         background|normal|interactive|critical or 0-3\n"
    "                           (normal; admission sheds lower classes first)\n"
    "  --no-cache               bypass the daemon's result caches\n"
    "\n"
    "Resilience:\n"
    "  --retries N              retries of transient failures, >= 0  (4)\n"
    "                           (UNAVAILABLE / RESOURCE_EXHAUSTED; exponential\n"
    "                           backoff with jitter, bounded by --deadline)\n"
    "  --connect-timeout SECS   give up connecting after this long    (5)\n"
    "\n"
    "Load generation:\n"
    "  --concurrency N          parallel connections, >= 1         (1)\n"
    "  --repeat N               queries per connection, >= 1       (1)\n"
    "  --json                   print the load-gen summary (or, with --stats,\n"
    "                           the server stats) as one JSON line\n"
    "                           (answered/degraded/shed/rejected/failed\n"
    "                           counts, latency percentiles — for harnesses\n"
    "                           and check.sh; answered + shed + failed = total)\n"
    "  --help                   show this message\n";

[[noreturn]] void UsageError(const std::string& msg) {
  std::fprintf(stderr, "m3_client: %s\n\n%s", msg.c_str(), kUsage);
  std::exit(2);
}

long ParseInt(const std::string& key, const char* arg, long min, long max) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || v < min || v > max) {
    UsageError("invalid " + key + " '" + arg + "' (expected integer in [" +
               std::to_string(min) + ", " + std::to_string(max) + "])");
  }
  return v;
}

double ParseDouble(const std::string& key, const char* arg, double min, double max) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || errno == ERANGE || !(v >= min) || !(v <= max)) {
    UsageError("invalid " + key + " '" + arg + "' (expected number in [" +
               std::to_string(min) + ", " + std::to_string(max) + "])");
  }
  return v;
}

struct Args {
  std::string socket_path = "/tmp/m3d.sock";
  bool stats = false;
  bool ping = false;
  std::string reload;
  std::string tm = "B";
  std::string workload = "WebServer";
  double oversub = 2.0;
  double load = 0.5;
  double sigma = 1.5;
  int flows = 20000;
  std::string trace;
  std::string cc = "DCTCP";
  Bytes window = 15 * kKB;
  Bytes buffer = 300 * kKB;
  bool pfc = false;
  int paths = 100;
  long seed = 1;
  double percentile = 99.0;
  bool strict = false;
  double deadline = 0.0;
  int priority = static_cast<int>(Priority::kNormal);
  bool no_cache = false;
  int retries = 4;
  double connect_timeout = 5.0;
  int concurrency = 1;
  int repeat = 1;
  bool json = false;
};

Args Parse(int argc, char** argv) {
  Args a;
  int i = 1;
  while (i < argc) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") {
      std::printf("%s", kUsage);
      std::exit(0);
    }
    if (key == "--strict") { a.strict = true; ++i; continue; }
    if (key == "--no-cache") { a.no_cache = true; ++i; continue; }
    if (key == "--stats") { a.stats = true; ++i; continue; }
    if (key == "--ping") { a.ping = true; ++i; continue; }
    if (key == "--json") { a.json = true; ++i; continue; }
    if (key.rfind("--", 0) != 0) UsageError("unexpected argument '" + key + "'");
    if (i + 1 >= argc) UsageError("missing value for " + key);
    const char* v = argv[i + 1];
    if (key == "--socket") a.socket_path = v;
    else if (key == "--reload") a.reload = v;
    else if (key == "--tm") a.tm = v;
    else if (key == "--workload") a.workload = v;
    else if (key == "--oversub") a.oversub = ParseDouble(key, v, 0.0625, 64.0);
    else if (key == "--load") a.load = ParseDouble(key, v, 1e-6, 1.0);
    else if (key == "--sigma") a.sigma = ParseDouble(key, v, 0.0, 100.0);
    else if (key == "--flows") a.flows = static_cast<int>(ParseInt(key, v, 1, 100'000'000));
    else if (key == "--trace") a.trace = v;
    else if (key == "--cc") a.cc = v;
    else if (key == "--window") a.window = ParseInt(key, v, 1, 1'000'000'000);
    else if (key == "--buffer") a.buffer = ParseInt(key, v, 1, 1'000'000'000);
    else if (key == "--pfc") a.pfc = ParseInt(key, v, 0, 1) != 0;
    else if (key == "--paths") a.paths = static_cast<int>(ParseInt(key, v, 1, 10'000'000));
    else if (key == "--seed") a.seed = ParseInt(key, v, 0, 1'000'000'000);
    else if (key == "--percentile") a.percentile = ParseDouble(key, v, 1.0, 100.0);
    else if (key == "--deadline") a.deadline = ParseDouble(key, v, 0.0, 1e9);
    else if (key == "--priority") {
      const std::string pv = v;
      if (pv == "background" || pv == "0") a.priority = 0;
      else if (pv == "normal" || pv == "1") a.priority = 1;
      else if (pv == "interactive" || pv == "2") a.priority = 2;
      else if (pv == "critical" || pv == "3") a.priority = 3;
      else UsageError("invalid --priority '" + pv +
                      "' (expected background|normal|interactive|critical or 0-3)");
    }
    else if (key == "--retries") a.retries = static_cast<int>(ParseInt(key, v, 0, 100));
    else if (key == "--connect-timeout") a.connect_timeout = ParseDouble(key, v, 0.0, 86400.0);
    else if (key == "--concurrency") a.concurrency = static_cast<int>(ParseInt(key, v, 1, 4096));
    else if (key == "--repeat") a.repeat = static_cast<int>(ParseInt(key, v, 1, 1'000'000));
    else UsageError("unknown flag '" + key + "'");
    i += 2;
  }
  return a;
}

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 3;
    case StatusCode::kNotFound: return 4;
    case StatusCode::kDataLoss: return 5;
    case StatusCode::kDeadlineExceeded: return 6;
    case StatusCode::kInternal: return 7;
    case StatusCode::kDegraded: return 8;
    case StatusCode::kUnavailable: return 9;
    case StatusCode::kResourceExhausted: return 10;
  }
  return 7;
}

StatusOr<UnixFd> Connect(const Args& a) {
  StatusOr<Endpoint> ep = ParseEndpoint(a.socket_path);
  if (!ep.ok()) return ep.status().Annotate("parsing --socket");
  StatusOr<UnixFd> fd = ConnectEndpoint(*ep, a.connect_timeout);
  if (!fd.ok()) {
    if (fd.status().code() == StatusCode::kNotFound) {
      return fd.status().Annotate("is m3d running? start it with: m3d --socket " +
                                  a.socket_path);
    }
    return fd;
  }
  // A wedged daemon must surface as kDeadlineExceeded, never a hung read.
  // With a query deadline the daemon itself answers by deadline + grace, so
  // a generous margin on top never fires spuriously; deadline-less queries
  // get a cap past the daemon's default 120s watchdog.
  const double read_timeout = a.deadline > 0 ? a.deadline + 30.0 : 180.0;
  if (Status st = SetRecvTimeout(*fd, read_timeout); !st.ok()) return st;
  return fd;
}

/// One request/response exchange of the given frame types.
StatusOr<std::string> RoundTrip(UnixFd& fd, MsgType req_type,
                                const std::string& payload, MsgType resp_type) {
  if (Status st = SendFrame(fd, static_cast<std::uint32_t>(req_type), payload); !st.ok()) {
    return st;
  }
  StatusOr<Frame> frame = RecvFrame(fd);
  if (!frame.ok()) {
    if (frame.status().code() == StatusCode::kNotFound) {
      return Status::Unavailable("daemon closed the connection");
    }
    return frame.status();
  }
  if (frame->type != static_cast<std::uint32_t>(resp_type)) {
    return Status::InvalidArgument("unexpected frame type " +
                                   std::to_string(frame->type) + " from daemon");
  }
  return std::move(frame->payload);
}

StatusOr<QueryResponse> DoQuery(UnixFd& fd, const std::string& payload) {
  StatusOr<std::string> resp =
      RoundTrip(fd, MsgType::kQueryRequest, payload, MsgType::kQueryResponse);
  if (!resp.ok()) return resp.status();
  return DecodeQueryResponse(*resp);
}

/// Transient failures worth retrying: admission-control rejection
/// (RESOURCE_EXHAUSTED) and momentary unavailability (daemon or worker
/// pool restarting, connection dropped mid-exchange).
bool Retryable(StatusCode code) {
  return code == StatusCode::kUnavailable || code == StatusCode::kResourceExhausted;
}

/// One query under the retry policy: up to `--retries` re-attempts of
/// transient failures, exponential backoff (base 50ms, doubled per attempt)
/// with U(0.5, 1.5) jitter, the whole budget bounded by --deadline when one
/// is set. `fd` is reconnected when the transport broke and left open for
/// the next call. `retries` counts re-attempts (load-gen reports the sum).
StatusOr<QueryResponse> QueryWithRetry(const Args& a, const std::string& payload,
                                       StatusOr<UnixFd>& fd, std::mt19937& rng,
                                       std::uint64_t& retries) {
  const auto start = std::chrono::steady_clock::now();
  for (int attempt = 0;; ++attempt) {
    if (!fd.ok()) fd = Connect(a);
    StatusOr<QueryResponse> resp = fd.ok() ? DoQuery(*fd, payload) : fd.status();
    if (!resp.ok()) fd = resp.status();  // transport broke: reconnect next time
    const Status st = resp.ok() ? resp->status : resp.status();
    if (!Retryable(st.code()) || attempt >= a.retries) return resp;
    const double jitter =
        0.5 + std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const double delay =
        0.05 * static_cast<double>(1 << std::min(attempt, 10)) * jitter;
    if (a.deadline > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      if (elapsed + delay > a.deadline) return resp;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    ++retries;
  }
}

void PrintStats(const ServerStatsWire& s) {
  std::printf("model: %s (v%llu crc %08x), reloads %llu ok / %llu failed\n",
              s.model_path.empty() ? "<none>" : s.model_path.c_str(),
              static_cast<unsigned long long>(s.model_version), s.model_crc,
              static_cast<unsigned long long>(s.reloads_ok),
              static_cast<unsigned long long>(s.reloads_failed));
  std::printf("queries: %llu received, %llu ok, %llu rejected, %llu shed, "
              "%llu failed; queue %u/%u, %u workers\n",
              static_cast<unsigned long long>(s.queries_received),
              static_cast<unsigned long long>(s.queries_ok),
              static_cast<unsigned long long>(s.queries_rejected),
              static_cast<unsigned long long>(s.queries_shed),
              static_cast<unsigned long long>(s.queries_failed),
              s.queue_depth, s.queue_capacity, s.workers);
  if (s.queries_rejected > 0 || s.queries_shed > 0 || s.brownout_queries > 0 ||
      s.brownout_level > 0) {
    std::printf("overload: shed by reason — %llu queue-full, %llu priority, "
                "%llu expired, %llu sojourn, %llu cost-budget, %llu router-budget\n",
                static_cast<unsigned long long>(s.shed_by_reason[1]),
                static_cast<unsigned long long>(s.shed_by_reason[2]),
                static_cast<unsigned long long>(s.shed_by_reason[3]),
                static_cast<unsigned long long>(s.shed_by_reason[4]),
                static_cast<unsigned long long>(s.shed_by_reason[5]),
                static_cast<unsigned long long>(s.shed_by_reason[6]));
    std::printf("overload: brownout level %u, %llu browned-out queries; "
                "in-flight cost %.1f / %.1f budget\n",
                s.brownout_level,
                static_cast<unsigned long long>(s.brownout_queries),
                s.in_flight_cost, s.cost_budget);
  }
  const auto line = [](const char* name, const std::uint64_t c[5]) {
    std::printf("%s cache: %llu hits / %llu misses, %llu inserts, %llu evictions, "
                "%llu entries\n",
                name, static_cast<unsigned long long>(c[0]),
                static_cast<unsigned long long>(c[1]),
                static_cast<unsigned long long>(c[2]),
                static_cast<unsigned long long>(c[3]),
                static_cast<unsigned long long>(c[4]));
  };
  line("query", s.query_cache);
  line(" path", s.path_cache);
  if (s.persist_enabled) {
    std::printf("persist: %llu segments loaded, %llu entries recovered\n",
                static_cast<unsigned long long>(s.persist_segments_loaded),
                static_cast<unsigned long long>(s.persist_entries_loaded));
    std::printf("persist: %llu entries flushed, %llu flush backlog\n",
                static_cast<unsigned long long>(s.persist_entries_flushed),
                static_cast<unsigned long long>(s.persist_flush_backlog));
    std::printf("persist: %llu corrupt records skipped, %llu digest-mismatch drops\n",
                static_cast<unsigned long long>(s.persist_records_corrupt),
                static_cast<unsigned long long>(s.persist_digest_dropped));
  }
  if (s.worker_mode) {
    std::printf("worker pool: %u/%u alive; %llu spawns, %llu restarts, "
                "%llu crashes, %llu watchdog kills, %llu garbage replies\n",
                s.workers_alive, s.workers_configured,
                static_cast<unsigned long long>(s.worker_spawns),
                static_cast<unsigned long long>(s.worker_restarts),
                static_cast<unsigned long long>(s.worker_crashes),
                static_cast<unsigned long long>(s.watchdog_kills),
                static_cast<unsigned long long>(s.garbage_replies));
    std::printf("breaker: %llu trips, %u quarantined digest(s)%s; "
                "%llu queries retried after a worker crash\n",
                static_cast<unsigned long long>(s.breaker_trips),
                s.quarantined_digests, s.breaker_open ? " [OPEN]" : "",
                static_cast<unsigned long long>(s.crash_retried_queries));
  }
  if (s.router_mode) {
    std::printf("router: %zu shard(s)\n", s.shards.size());
    for (const ShardHealthWire& sh : s.shards) {
      std::printf("  %s — %s%s, model v%llu; %llu dispatches, %llu failures, "
                  "%llu retries, %llu hedges, %llu fallback slots, "
                  "%llu dropped slots\n",
                  sh.address.c_str(), sh.healthy ? "healthy" : "unhealthy",
                  sh.breaker_open ? " [breaker open]" : "",
                  static_cast<unsigned long long>(sh.model_version),
                  static_cast<unsigned long long>(sh.dispatches),
                  static_cast<unsigned long long>(sh.failures),
                  static_cast<unsigned long long>(sh.retries),
                  static_cast<unsigned long long>(sh.hedges),
                  static_cast<unsigned long long>(sh.slots_fallback),
                  static_cast<unsigned long long>(sh.slots_dropped));
    }
  }
}

// One JSON object on one line: stable keys for scripts (check.sh's
// warm-restart tier greps these instead of parsing the prose output).
void PrintStatsJson(const ServerStatsWire& s) {
  const auto cache = [](const std::uint64_t c[5]) {
    return "{\"hits\":" + std::to_string(c[0]) + ",\"misses\":" + std::to_string(c[1]) +
           ",\"inserts\":" + std::to_string(c[2]) + ",\"evictions\":" + std::to_string(c[3]) +
           ",\"entries\":" + std::to_string(c[4]) + "}";
  };
  std::string out = "{";
  out += "\"model_version\":" + std::to_string(s.model_version);
  out += ",\"model_crc\":" + std::to_string(s.model_crc);
  out += ",\"queries_received\":" + std::to_string(s.queries_received);
  out += ",\"queries_ok\":" + std::to_string(s.queries_ok);
  out += ",\"queries_rejected\":" + std::to_string(s.queries_rejected);
  out += ",\"queries_shed\":" + std::to_string(s.queries_shed);
  out += ",\"queries_failed\":" + std::to_string(s.queries_failed);
  out += ",\"query_cache\":" + cache(s.query_cache);
  out += ",\"path_cache\":" + cache(s.path_cache);
  out += ",\"persist_enabled\":" + std::string(s.persist_enabled ? "true" : "false");
  out += ",\"persist_segments_loaded\":" + std::to_string(s.persist_segments_loaded);
  out += ",\"persist_entries_loaded\":" + std::to_string(s.persist_entries_loaded);
  out += ",\"persist_entries_flushed\":" + std::to_string(s.persist_entries_flushed);
  out += ",\"persist_records_corrupt\":" + std::to_string(s.persist_records_corrupt);
  out += ",\"persist_digest_dropped\":" + std::to_string(s.persist_digest_dropped);
  out += ",\"persist_flush_backlog\":" + std::to_string(s.persist_flush_backlog);
  out += "}";
  std::printf("%s\n", out.c_str());
}

struct WorkerResult {
  std::vector<double> latencies_ms;
  // Answered queries by class (ok + degraded + deadline == latencies size).
  long ok = 0;
  long degraded = 0;
  long deadline = 0;
  // Typed sheds (response carried a ShedReason): displaced, expired, or
  // admission-gated. Broken out so overload control is visible instead of
  // being folded into `failed`. rejected/expired are subsets of shed.
  long shed = 0;
  long rejected = 0;  // gate sheds: queue-full / sojourn / cost-budget
  long expired = 0;   // deadline expired while queued (never executed)
  // Answered queries served under brownout (subset of degraded/deadline).
  long brownout = 0;
  int failed = 0;
  std::uint64_t retries = 0;
  // Summed DegradationReport path classes over answered queries.
  long long paths_degraded = 0;
  long long paths_dropped = 0;
  Status first_failure;
};

bool IsGateShed(std::uint8_t reason) {
  return reason == static_cast<std::uint8_t>(ShedReason::kQueueFull) ||
         reason == static_cast<std::uint8_t>(ShedReason::kSojourn) ||
         reason == static_cast<std::uint8_t>(ShedReason::kCostBudget);
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = Parse(argc, argv);

  if (a.ping) {
    StatusOr<UnixFd> fd = Connect(a);
    if (!fd.ok()) {
      std::fprintf(stderr, "m3_client: %s\n", fd.status().ToString().c_str());
      return ExitCodeFor(fd.status().code());
    }
    StatusOr<std::string> payload = RoundTrip(*fd, MsgType::kPingRequest,
                                              EncodePingRequest(),
                                              MsgType::kPingResponse);
    StatusOr<PingResponse> resp =
        payload.ok() ? DecodePingResponse(*payload) : payload.status();
    if (!resp.ok()) {
      std::fprintf(stderr, "m3_client: %s\n", resp.status().ToString().c_str());
      return ExitCodeFor(resp.status().code());
    }
    if (resp->router_mode) {
      std::printf("m3d-router: %s — %u/%u shards healthy, fleet model v%llu\n",
                  resp->ready ? "ready" : "not ready", resp->shards_healthy,
                  resp->shards_total,
                  static_cast<unsigned long long>(resp->model_version));
    } else if (resp->worker_mode) {
      std::printf("m3d: %s — model v%llu, %u worker processes alive\n",
                  resp->ready ? "ready" : "not ready",
                  static_cast<unsigned long long>(resp->model_version),
                  resp->workers_alive);
    } else {
      std::printf("m3d: %s — model v%llu, in-process execution\n",
                  resp->ready ? "ready" : "not ready",
                  static_cast<unsigned long long>(resp->model_version));
    }
    return resp->ready ? 0 : 9;
  }

  if (a.stats) {
    StatusOr<UnixFd> fd = Connect(a);
    if (!fd.ok()) {
      std::fprintf(stderr, "m3_client: %s\n", fd.status().ToString().c_str());
      return ExitCodeFor(fd.status().code());
    }
    StatusOr<std::string> payload = RoundTrip(*fd, MsgType::kStatsRequest,
                                              EncodeStatsRequest(),
                                              MsgType::kStatsResponse);
    StatusOr<ServerStatsWire> stats =
        payload.ok() ? DecodeStats(*payload) : payload.status();
    if (!stats.ok()) {
      std::fprintf(stderr, "m3_client: %s\n", stats.status().ToString().c_str());
      return ExitCodeFor(stats.status().code());
    }
    if (a.json) {
      PrintStatsJson(*stats);
    } else {
      PrintStats(*stats);
    }
    return 0;
  }

  if (!a.reload.empty()) {
    StatusOr<UnixFd> fd = Connect(a);
    if (!fd.ok()) {
      std::fprintf(stderr, "m3_client: %s\n", fd.status().ToString().c_str());
      return ExitCodeFor(fd.status().code());
    }
    ReloadRequest req;
    req.checkpoint_path = a.reload;
    StatusOr<std::string> payload = RoundTrip(*fd, MsgType::kReloadRequest,
                                              EncodeReloadRequest(req),
                                              MsgType::kReloadResponse);
    StatusOr<ReloadResponse> resp =
        payload.ok() ? DecodeReloadResponse(*payload) : payload.status();
    if (!resp.ok()) {
      std::fprintf(stderr, "m3_client: %s\n", resp.status().ToString().c_str());
      return ExitCodeFor(resp.status().code());
    }
    if (!resp->status.ok()) {
      std::fprintf(stderr, "m3_client: reload failed: %s\n",
                   resp->status.ToString().c_str());
      std::fprintf(stderr, "m3_client: daemon keeps serving v%llu (crc %08x)\n",
                   static_cast<unsigned long long>(resp->model_version),
                   resp->model_crc);
      return ExitCodeFor(resp->status.code());
    }
    std::printf("reloaded: now serving v%llu (crc %08x)\n",
                static_cast<unsigned long long>(resp->model_version), resp->model_crc);
    return 0;
  }

  // Build the scenario client-side; the wire carries host indices.
  const FatTree ft(FatTreeConfig::Small(a.oversub));
  std::vector<Flow> flows;
  if (!a.trace.empty()) {
    StatusOr<std::vector<Flow>> loaded = LoadTraceOr(a.trace, ft);
    if (!loaded.ok()) {
      std::fprintf(stderr, "m3_client: %s\n", loaded.status().ToString().c_str());
      return ExitCodeFor(loaded.status().code());
    }
    flows = std::move(loaded).value();
  } else {
    const auto tm = TrafficMatrix::ByName(a.tm, ft.num_racks(), ft.config().racks_per_pod);
    const auto sizes = MakeProductionDist(a.workload);
    WorkloadSpec wspec;
    wspec.num_flows = a.flows;
    wspec.max_load = a.load;
    wspec.burstiness_sigma = a.sigma;
    flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  }

  QueryRequest req;
  req.oversub = a.oversub;
  req.flows.reserve(flows.size());
  for (const Flow& f : flows) {
    WireFlow wf;
    wf.id = f.id;
    wf.src_host = ft.HostIndexOf(f.src);
    wf.dst_host = ft.HostIndexOf(f.dst);
    wf.size = f.size;
    wf.arrival = f.arrival;
    wf.priority = f.priority;
    req.flows.push_back(wf);
  }
  req.cfg.cc = CcFromName(a.cc);
  req.cfg.init_window = a.window;
  req.cfg.buffer = a.buffer;
  req.cfg.pfc = a.pfc;
  req.num_paths = a.paths;
  req.seed = static_cast<std::uint64_t>(a.seed);
  req.strict = a.strict;
  req.deadline_seconds = a.deadline;
  req.priority = static_cast<std::uint8_t>(a.priority);
  req.no_cache = a.no_cache;
  const std::string payload = EncodeQueryRequest(req);

  if (a.concurrency > 1 || a.repeat > 1) {
    // Load-generator mode: N connections x M sequential queries each.
    std::vector<WorkerResult> results(static_cast<std::size_t>(a.concurrency));
    std::vector<std::thread> threads;
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < a.concurrency; ++t) {
      threads.emplace_back([&, t] {
        WorkerResult& r = results[static_cast<std::size_t>(t)];
        std::mt19937 rng(std::random_device{}() ^
                         (static_cast<unsigned>(t) * 2654435761u));
        // Even a failed first connect is not fatal: QueryWithRetry
        // reconnects per attempt, riding out a daemon restart.
        StatusOr<UnixFd> fd = Connect(a);
        for (int q = 0; q < a.repeat; ++q) {
          const auto q0 = std::chrono::steady_clock::now();
          StatusOr<QueryResponse> resp = QueryWithRetry(a, payload, fd, rng, r.retries);
          const auto q1 = std::chrono::steady_clock::now();
          const Status st = resp.ok() ? resp->status : resp.status();
          const StatusCode code = st.code();
          // A response carrying a ShedReason is a typed shed — overload
          // control answered instead of computing. Not a failure, not an
          // answer: its own family (answered + shed + failed = total).
          const std::uint8_t shed_reason =
              resp.ok() ? resp->shed_reason
                        : static_cast<std::uint8_t>(ShedReason::kNone);
          if (shed_reason != static_cast<std::uint8_t>(ShedReason::kNone)) {
            ++r.shed;
            if (IsGateShed(shed_reason)) ++r.rejected;
            if (shed_reason == static_cast<std::uint8_t>(ShedReason::kExpired)) {
              ++r.expired;
            }
            continue;
          }
          const bool answered = code == StatusCode::kOk ||
                                code == StatusCode::kDegraded ||
                                code == StatusCode::kDeadlineExceeded;
          if (!answered) {
            ++r.failed;
            if (r.first_failure.ok()) r.first_failure = st;
            continue;
          }
          if (code == StatusCode::kOk) ++r.ok;
          else if (code == StatusCode::kDegraded) ++r.degraded;
          else ++r.deadline;
          if (resp->degradation.brownout_level > 0) ++r.brownout;
          r.paths_degraded += resp->degradation.paths_degraded;
          r.paths_dropped += resp->degradation.paths_dropped;
          r.latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(q1 - q0).count());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    std::vector<double> lat;
    long ok = 0, degraded = 0, deadline = 0;
    long shed = 0, rejected = 0, expired = 0, brownout = 0;
    long long paths_degraded = 0, paths_dropped = 0;
    int failed = 0;
    std::uint64_t total_retries = 0;
    Status first_failure;
    for (const WorkerResult& r : results) {
      lat.insert(lat.end(), r.latencies_ms.begin(), r.latencies_ms.end());
      ok += r.ok;
      degraded += r.degraded;
      deadline += r.deadline;
      shed += r.shed;
      rejected += r.rejected;
      expired += r.expired;
      brownout += r.brownout;
      paths_degraded += r.paths_degraded;
      paths_dropped += r.paths_dropped;
      failed += r.failed;
      total_retries += r.retries;
      if (first_failure.ok() && !r.first_failure.ok()) first_failure = r.first_failure;
    }
    std::sort(lat.begin(), lat.end());
    const auto pct = [&lat](double p) {
      if (lat.empty()) return 0.0;
      const std::size_t idx = static_cast<std::size_t>(
          std::min<double>(static_cast<double>(lat.size()) - 1,
                           p / 100.0 * static_cast<double>(lat.size())));
      return lat[idx];
    };
    const long total = static_cast<long>(a.concurrency) * a.repeat;
    if (a.json) {
      // One line, stable keys: the contract for check.sh and the chaos
      // harness (answered = ok + degraded + deadline; answered + shed +
      // failed = total; rejected/expired are subsets of shed; latency
      // percentiles cover *answered* queries only — admitted goodput).
      std::printf("{\"total\": %ld, \"answered\": %zu, \"ok\": %ld, "
                  "\"degraded\": %ld, \"deadline\": %ld, \"shed\": %ld, "
                  "\"rejected\": %ld, \"expired\": %ld, "
                  "\"brownout\": %ld, \"failed\": %d, "
                  "\"retries\": %llu, \"paths_degraded\": %lld, "
                  "\"paths_dropped\": %lld, \"wall_s\": %.3f, "
                  "\"throughput_qps\": %.2f, \"p50_ms\": %.3f, "
                  "\"p99_ms\": %.3f, \"max_ms\": %.3f}\n",
                  total, lat.size(), ok, degraded, deadline, shed,
                  rejected, expired, brownout, failed,
                  static_cast<unsigned long long>(total_retries),
                  paths_degraded, paths_dropped, wall,
                  lat.empty() ? 0.0 : static_cast<double>(lat.size()) / wall,
                  pct(50), pct(99), lat.empty() ? 0.0 : lat.back());
    } else {
      std::printf("load: %d conns x %d queries = %ld total, %ld ok, %ld degraded, "
                  "%ld deadline, %ld shed, %d failed\n",
                  a.concurrency, a.repeat, total, ok, degraded, deadline, shed,
                  failed);
      if (shed > 0) {
        std::printf("shed: %ld admission-rejected (queue/sojourn/cost), "
                    "%ld expired in queue, %ld displaced/router\n",
                    rejected, expired, shed - rejected - expired);
      }
      if (brownout > 0) {
        std::printf("brownout: %ld answered queries served at reduced quality\n",
                    brownout);
      }
      std::printf("wall: %.2fs  throughput: %.1f q/s\n", wall,
                  lat.empty() ? 0.0 : static_cast<double>(lat.size()) / wall);
      std::printf("latency: p50 %.2fms  p99 %.2fms  max %.2fms\n", pct(50), pct(99),
                  lat.empty() ? 0.0 : lat.back());
      std::printf("retries: %llu transient failures retried with backoff\n",
                  static_cast<unsigned long long>(total_retries));
      if (paths_degraded > 0 || paths_dropped > 0) {
        std::printf("degradation: %lld paths fell back to flowSim, %lld dropped "
                    "across answered queries\n",
                    paths_degraded, paths_dropped);
      }
    }
    if (failed > 0) {
      std::fprintf(stderr, "m3_client: %d queries failed; first: %s\n", failed,
                   first_failure.ToString().c_str());
      return ExitCodeFor(first_failure.code());
    }
    return 0;
  }

  StatusOr<UnixFd> fd = Connect(a);
  std::mt19937 rng(std::random_device{}());
  std::uint64_t retries = 0;
  StatusOr<QueryResponse> got = QueryWithRetry(a, payload, fd, rng, retries);
  if (!got.ok()) {
    std::fprintf(stderr, "m3_client: %s\n", got.status().ToString().c_str());
    return ExitCodeFor(got.status().code());
  }
  const QueryResponse& est = *got;
  if (est.shed_reason != static_cast<std::uint8_t>(ShedReason::kNone)) {
    static const char* kShedNames[kNumShedReasons] = {
        "none",    "queue-full", "priority-displaced", "expired-in-queue",
        "sojourn", "cost-budget", "router-budget"};
    std::fprintf(stderr, "m3_client: shed by overload control (%s): %s\n",
                 kShedNames[est.shed_reason % kNumShedReasons],
                 est.status.ToString().c_str());
    return ExitCodeFor(est.status.code());
  }
  if (!est.status.ok() && est.status.code() != StatusCode::kDegraded &&
      est.status.code() != StatusCode::kDeadlineExceeded) {
    std::fprintf(stderr, "m3_client: %s\n", est.status.ToString().c_str());
    return ExitCodeFor(est.status.code());
  }

  if (retries > 0) {
    std::printf("(%llu transient failure%s retried with backoff)\n",
                static_cast<unsigned long long>(retries), retries == 1 ? "" : "s");
  }
  std::printf("scenario: tm=%s workload=%s oversub=%.0f:1 load=%.0f%% sigma=%.1f "
              "flows=%zu cc=%s\n",
              a.tm.c_str(), a.workload.c_str(), a.oversub, 100 * a.load, a.sigma,
              flows.size(), a.cc.c_str());
  std::printf("served by model v%llu (crc %08x)%s, computed in %.1fs over %d paths\n\n",
              static_cast<unsigned long long>(est.model_version), est.model_crc,
              est.query_cache_hit ? " [cache hit]" : "", est.wall_seconds, a.paths);

  const int pidx = std::min(99, std::max(0, static_cast<int>(a.percentile) - 1));
  const char* labels[4] = {"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"};
  std::printf("%-14s %10s %12s\n", "flow class", "#flows", "slowdown");
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    const auto& pct = est.bucket_pct[static_cast<std::size_t>(b)];
    if (pct.empty()) continue;
    std::printf("%-14s %10.0f %12.2f\n", labels[b],
                est.total_counts[static_cast<std::size_t>(b)],
                pct[static_cast<std::size_t>(pidx)]);
  }
  if (!est.combined_pct.empty()) {
    std::printf("%-14s %10s %12.2f   (p%.0f)\n", "network-wide", "-",
                est.combined_pct[static_cast<std::size_t>(pidx)], a.percentile);
  }
  if (!est.status.ok()) {
    std::printf("\nstatus: %s\n", est.status.ToString().c_str());
  }
  if (est.degradation.Degraded() || est.degradation.paths_retried > 0) {
    std::printf("degradation: %s\n", est.degradation.ToString().c_str());
  }
  if (!est.shards.empty()) {
    // Routed answer: per-shard attribution assembled by m3d-router.
    std::printf("shards:\n");
    for (const ShardReportWire& sh : est.shards) {
      std::printf("  %s — %u assigned, %u ok, %u fallback, %u dropped, "
                  "%u retries, %u hedges%s\n",
                  sh.shard.c_str(), sh.slots_assigned, sh.slots_ok,
                  sh.slots_fallback, sh.slots_dropped, sh.retries, sh.hedges,
                  sh.breaker_open ? " [breaker open]" : "");
    }
  }
  return ExitCodeFor(est.status.code());
}
