// m3_query: the interactive query interface (paper §3.1, component 8).
//
// Estimates network-wide FCT slowdown percentiles for a described scenario
// in seconds, from the command line.
//
// Usage:
//   m3_query [--tm A|B|C] [--workload WebServer|CacheFollower|Hadoop]
//            [--oversub 1|2|4] [--load 0.5] [--sigma 1.5] [--flows 20000]
//            [--cc DCTCP|TIMELY|DCQCN|HPCC] [--window 15000] [--buffer 300000]
//            [--pfc 0|1] [--paths 100] [--model models/m3_default.ckpt]
//            [--percentile 99]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dataset.h"
#include "core/estimator.h"
#include "core/trainer.h"
#include "topo/fat_tree.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

using namespace m3;

namespace {

struct Args {
  std::string tm = "B";
  std::string workload = "WebServer";
  double oversub = 2.0;
  double load = 0.5;
  double sigma = 1.5;
  int flows = 20000;
  std::string cc = "DCTCP";
  Bytes window = 15 * kKB;
  Bytes buffer = 300 * kKB;
  bool pfc = false;
  int paths = 100;
  std::string model_path = "models/m3_default.ckpt";
  double percentile = 99.0;
};

Args Parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const char* v = argv[i + 1];
    if (key == "--tm") a.tm = v;
    else if (key == "--workload") a.workload = v;
    else if (key == "--oversub") a.oversub = std::atof(v);
    else if (key == "--load") a.load = std::atof(v);
    else if (key == "--sigma") a.sigma = std::atof(v);
    else if (key == "--flows") a.flows = std::atoi(v);
    else if (key == "--cc") a.cc = v;
    else if (key == "--window") a.window = std::atoll(v);
    else if (key == "--buffer") a.buffer = std::atoll(v);
    else if (key == "--pfc") a.pfc = std::atoi(v) != 0;
    else if (key == "--paths") a.paths = std::atoi(v);
    else if (key == "--model") a.model_path = v;
    else if (key == "--percentile") a.percentile = std::atof(v);
    else {
      std::fprintf(stderr, "unknown flag %s\n", key.c_str());
      std::exit(2);
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = Parse(argc, argv);

  const FatTree ft(FatTreeConfig::Small(a.oversub));
  const auto tm = TrafficMatrix::ByName(a.tm, ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeProductionDist(a.workload);
  WorkloadSpec wspec;
  wspec.num_flows = a.flows;
  wspec.max_load = a.load;
  wspec.burstiness_sigma = a.sigma;
  const auto wl = GenerateWorkload(ft, tm, *sizes, wspec);

  M3Model model;
  try {
    model.Load(a.model_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cannot load %s (%s); run tools/train_m3 first\n",
                 a.model_path.c_str(), e.what());
    return 1;
  }

  NetConfig cfg;
  cfg.cc = CcFromName(a.cc);
  cfg.init_window = a.window;
  cfg.buffer = a.buffer;
  cfg.pfc = a.pfc;

  M3Options opts;
  opts.num_paths = a.paths;
  const NetworkEstimate est = RunM3(ft.topo(), wl.flows, cfg, model, opts);

  std::printf("scenario: tm=%s workload=%s oversub=%.0f:1 load=%.0f%% sigma=%.1f "
              "flows=%d cc=%s\n",
              a.tm.c_str(), a.workload.c_str(), a.oversub, 100 * a.load, a.sigma, a.flows,
              a.cc.c_str());
  std::printf("estimated in %.1fs over %d sampled paths\n\n", est.wall_seconds, a.paths);

  const int pidx = std::min(99, std::max(0, static_cast<int>(a.percentile) - 1));
  const char* labels[4] = {"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"};
  std::printf("%-14s %10s %12s\n", "flow class", "#flows", "slowdown");
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    const auto& pct = est.bucket_pct[static_cast<std::size_t>(b)];
    if (pct.empty()) continue;
    std::printf("%-14s %10.0f %12.2f\n", labels[b],
                est.total_counts[static_cast<std::size_t>(b)], pct[static_cast<std::size_t>(pidx)]);
  }
  std::printf("%-14s %10s %12.2f   (p%.0f)\n", "network-wide", "-",
              est.combined_pct[static_cast<std::size_t>(pidx)], a.percentile);
  return 0;
}
