// m3_query: the interactive query interface (paper §3.1, component 8).
//
// Estimates network-wide FCT slowdown percentiles for a described scenario
// in seconds, from the command line.
//
// Queries are resilient by default: malformed inputs are rejected up front
// with a precise diagnostic, a faulting path worker degrades to its flowSim
// estimate instead of killing the query, and the degradation summary is
// printed with the answer. --strict surfaces the first fault as an error;
// --deadline bounds the wall clock and returns the partial estimate.
//
// Exit codes map Status codes so wrappers can react without parsing output:
//   0 OK   2 usage   3 INVALID_ARGUMENT   4 NOT_FOUND   5 DATA_LOSS
//   6 DEADLINE_EXCEEDED   7 INTERNAL   8 DEGRADED   9 UNAVAILABLE
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dataset.h"
#include "core/estimator.h"
#include "core/trainer.h"
#include "topo/fat_tree.h"
#include "workload/generator.h"
#include "workload/size_dist.h"
#include "workload/trace_io.h"

using namespace m3;

namespace {

constexpr const char* kUsage =
    "Usage: m3_query [options]\n"
    "\n"
    "Scenario (generated workload):\n"
    "  --tm A|B|C               traffic matrix                     (B)\n"
    "  --workload NAME          WebServer|CacheFollower|Hadoop     (WebServer)\n"
    "  --oversub F              fat-tree oversubscription, > 0     (2)\n"
    "  --load F                 target max link load, (0, 1]       (0.5)\n"
    "  --sigma F                burstiness sigma, >= 0             (1.5)\n"
    "  --flows N                foreground flows, >= 1             (20000)\n"
    "  --trace FILE             load flows from an m3-trace file instead of\n"
    "                           generating them (overrides --flows/--load/--sigma)\n"
    "\n"
    "Network configuration:\n"
    "  --cc NAME                DCTCP|TIMELY|DCQCN|HPCC            (DCTCP)\n"
    "  --window BYTES           initial window, > 0                (15000)\n"
    "  --buffer BYTES           per-port buffer, > 0               (300000)\n"
    "  --pfc 0|1                enable PFC                         (0)\n"
    "\n"
    "Estimation:\n"
    "  --paths N                sampled paths, >= 1                (100)\n"
    "  --model PATH             checkpoint                         (models/m3_default.ckpt)\n"
    "  --percentile P           reported percentile, [1, 100]      (99)\n"
    "  --strict                 fail the query on the first path fault instead\n"
    "                           of degrading around it\n"
    "  --deadline SECONDS       wall-clock budget; on expiry the partial\n"
    "                           estimate is returned (exit code 6)\n"
    "  --help                   show this message\n";

[[noreturn]] void UsageError(const std::string& msg) {
  std::fprintf(stderr, "m3_query: %s\n\n%s", msg.c_str(), kUsage);
  std::exit(2);
}

// Strict numeric parsers: the whole token must parse and lie in range
// (std::atoi-style silent garbage acceptance is how a typo'd flag used to
// become a zero-path query).
long ParseInt(const std::string& key, const char* arg, long min, long max) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || v < min || v > max) {
    UsageError("invalid " + key + " '" + arg + "' (expected integer in [" +
               std::to_string(min) + ", " + std::to_string(max) + "])");
  }
  return v;
}

double ParseDouble(const std::string& key, const char* arg, double min, double max) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || errno == ERANGE || !(v >= min) || !(v <= max)) {
    UsageError("invalid " + key + " '" + arg + "' (expected number in [" +
               std::to_string(min) + ", " + std::to_string(max) + "])");
  }
  return v;
}

struct Args {
  std::string tm = "B";
  std::string workload = "WebServer";
  double oversub = 2.0;
  double load = 0.5;
  double sigma = 1.5;
  int flows = 20000;
  std::string trace;
  std::string cc = "DCTCP";
  Bytes window = 15 * kKB;
  Bytes buffer = 300 * kKB;
  bool pfc = false;
  int paths = 100;
  std::string model_path = "models/m3_default.ckpt";
  double percentile = 99.0;
  bool strict = false;
  double deadline = 0.0;
};

Args Parse(int argc, char** argv) {
  Args a;
  int i = 1;
  // Flags that take no value.
  auto is_bare = [](const std::string& k) { return k == "--strict" || k == "--help" || k == "-h"; };
  while (i < argc) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") {
      std::printf("%s", kUsage);
      std::exit(0);
    }
    if (key == "--strict") {
      a.strict = true;
      ++i;
      continue;
    }
    if (key.rfind("--", 0) != 0) {
      UsageError("unexpected argument '" + key + "'");
    }
    static const char* kValueFlags[] = {
        "--tm",     "--workload", "--oversub", "--load",  "--sigma",
        "--flows",  "--trace",    "--cc",      "--window", "--buffer",
        "--pfc",    "--paths",    "--model",   "--percentile", "--deadline"};
    bool known = false;
    for (const char* f : kValueFlags) known |= (key == f);
    if (!known) UsageError("unknown flag '" + key + "'");
    if (i + 1 >= argc) {
      // The old parser's `i + 1 < argc` loop bound silently dropped a
      // trailing odd argument; reject it instead.
      UsageError("missing value for " + key);
    }
    const char* v = argv[i + 1];
    if (is_bare(v) == false && v[0] == '-' && v[1] == '-' && std::strlen(v) > 2 &&
        !(v[2] >= '0' && v[2] <= '9')) {
      UsageError("missing value for " + key + " (found flag '" + v + "')");
    }
    if (key == "--tm") a.tm = v;
    else if (key == "--workload") a.workload = v;
    else if (key == "--oversub") a.oversub = ParseDouble(key, v, 0.0625, 64.0);
    else if (key == "--load") a.load = ParseDouble(key, v, 1e-6, 1.0);
    else if (key == "--sigma") a.sigma = ParseDouble(key, v, 0.0, 100.0);
    else if (key == "--flows") a.flows = static_cast<int>(ParseInt(key, v, 1, 100'000'000));
    else if (key == "--trace") a.trace = v;
    else if (key == "--cc") a.cc = v;
    else if (key == "--window") a.window = ParseInt(key, v, 1, 1'000'000'000);
    else if (key == "--buffer") a.buffer = ParseInt(key, v, 1, 1'000'000'000);
    else if (key == "--pfc") a.pfc = ParseInt(key, v, 0, 1) != 0;
    else if (key == "--paths") a.paths = static_cast<int>(ParseInt(key, v, 1, 10'000'000));
    else if (key == "--model") a.model_path = v;
    else if (key == "--percentile") a.percentile = ParseDouble(key, v, 1.0, 100.0);
    else if (key == "--deadline") a.deadline = ParseDouble(key, v, 0.0, 1e9);
    i += 2;
  }
  return a;
}

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 3;
    case StatusCode::kNotFound: return 4;
    case StatusCode::kDataLoss: return 5;
    case StatusCode::kDeadlineExceeded: return 6;
    case StatusCode::kInternal: return 7;
    case StatusCode::kDegraded: return 8;
    case StatusCode::kUnavailable: return 9;
  }
  return 7;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = Parse(argc, argv);

  const FatTree ft(FatTreeConfig::Small(a.oversub));
  std::vector<Flow> flows;
  if (!a.trace.empty()) {
    StatusOr<std::vector<Flow>> loaded = LoadTraceOr(a.trace, ft);
    if (!loaded.ok()) {
      std::fprintf(stderr, "m3_query: %s\n", loaded.status().ToString().c_str());
      return ExitCodeFor(loaded.status().code());
    }
    flows = std::move(loaded).value();
  } else {
    const auto tm = TrafficMatrix::ByName(a.tm, ft.num_racks(), ft.config().racks_per_pod);
    const auto sizes = MakeProductionDist(a.workload);
    WorkloadSpec wspec;
    wspec.num_flows = a.flows;
    wspec.max_load = a.load;
    wspec.burstiness_sigma = a.sigma;
    flows = GenerateWorkload(ft, tm, *sizes, wspec).flows;
  }

  M3Model model;
  {
    StatusOr<ml::CheckpointInfo> info = model.TryLoad(a.model_path);
    if (!info.ok()) {
      std::fprintf(stderr, "m3_query: %s\n", info.status().ToString().c_str());
      if (info.status().code() == StatusCode::kNotFound) {
        std::fprintf(stderr, "m3_query: run tools/train_m3 first to produce %s\n",
                     a.model_path.c_str());
      }
      return ExitCodeFor(info.status().code());
    }
  }

  NetConfig cfg;
  cfg.cc = CcFromName(a.cc);
  cfg.init_window = a.window;
  cfg.buffer = a.buffer;
  cfg.pfc = a.pfc;

  M3Options opts;
  opts.num_paths = a.paths;
  opts.strict = a.strict;
  opts.deadline_seconds = a.deadline;
  const NetworkEstimate est = RunM3(ft.topo(), flows, cfg, model, opts);

  if (!est.status.ok() && est.status.code() != StatusCode::kDegraded &&
      est.status.code() != StatusCode::kDeadlineExceeded) {
    // Validation rejection or a strict-mode fault: no usable answer.
    std::fprintf(stderr, "m3_query: %s\n", est.status.ToString().c_str());
    return ExitCodeFor(est.status.code());
  }

  std::printf("scenario: tm=%s workload=%s oversub=%.0f:1 load=%.0f%% sigma=%.1f "
              "flows=%zu cc=%s\n",
              a.tm.c_str(), a.workload.c_str(), a.oversub, 100 * a.load, a.sigma,
              flows.size(), a.cc.c_str());
  std::printf("estimated in %.1fs over %d sampled paths\n\n", est.wall_seconds, a.paths);

  const int pidx = std::min(99, std::max(0, static_cast<int>(a.percentile) - 1));
  const char* labels[4] = {"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"};
  std::printf("%-14s %10s %12s\n", "flow class", "#flows", "slowdown");
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    const auto& pct = est.bucket_pct[static_cast<std::size_t>(b)];
    if (pct.empty()) continue;
    std::printf("%-14s %10.0f %12.2f\n", labels[b],
                est.total_counts[static_cast<std::size_t>(b)], pct[static_cast<std::size_t>(pidx)]);
  }
  if (!est.combined_pct.empty()) {
    std::printf("%-14s %10s %12.2f   (p%.0f)\n", "network-wide", "-",
                est.combined_pct[static_cast<std::size_t>(pidx)], a.percentile);
  }

  if (!est.status.ok()) {
    std::printf("\nstatus: %s\n", est.status.ToString().c_str());
  }
  if (est.degradation.Degraded() || est.degradation.paths_retried > 0) {
    std::printf("degradation: %s\n", est.degradation.ToString().c_str());
    if (!est.degradation.first_error.empty()) {
      std::printf("first error: %s\n", est.degradation.first_error.c_str());
    }
  }
  return ExitCodeFor(est.status.code());
}
