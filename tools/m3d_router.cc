// m3d-router: the scatter-gather front-end of a sharded m3d fleet.
//
// Speaks the same client-facing protocol as m3d (query / stats / ping),
// but instead of computing, it decomposes each query into its
// deterministic path sample, consistent-hashes every sample slot to a
// backend shard by path-content, scatters ShardQueryRequests, and merges
// the partial estimates into one answer. See serve/router.h for the
// placement and degradation-ladder design, DESIGN.md §12 for the
// architecture.
//
// A router answers every query it can parse: shard failures degrade the
// answer (retry on the next ring replica -> router-side flowSim fallback
// -> reweighted drop, all attributed per-shard in the response), they
// never fail it.
//
// Exit codes: 0 clean shutdown, 2 usage, 3 bad shard spec, 9 cannot
// bind/serve.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "serve/router.h"
#include "serve/server.h"

using namespace m3;
using namespace m3::serve;

namespace {

constexpr const char* kUsage =
    "Usage: m3d_router --shard SPEC [--shard SPEC ...] [options]\n"
    "\n"
    "  --shard SPEC         backend m3d endpoint: tcp:HOST:PORT, unix:/path,\n"
    "                       or a bare socket path (repeat per shard; required)\n"
    "  --listen SPEC        endpoint to serve clients on (/tmp/m3d-router.sock)\n"
    "  --replicas N         ring replicas tried per slot, >= 1       (2)\n"
    "  --vnodes N           ring points per shard, >= 1              (64)\n"
    "  --shard-timeout S    per-sub-request answer bound, seconds    (30)\n"
    "  --connect-timeout S  per-shard connect bound, seconds         (2)\n"
    "  --hedge S            re-dispatch stragglers after S seconds   (0 = off)\n"
    "  --backoff-ms MS      base retry backoff, doubled per round    (25)\n"
    "  --health-interval S  background probe period, seconds         (0.5)\n"
    "  --breaker-threshold N   failures to open a shard breaker      (3)\n"
    "  --breaker-window S      failure-counting window, seconds      (10)\n"
    "  --breaker-cooloff S     open time before a half-open probe    (2)\n"
    "  --fallback-threads N    flowSim fallback threads, 0 = all     (0)\n"
    "  --pool N             idle connections kept per shard          (4)\n"
    "  --path-cache N       router-side per-path result cache entries,\n"
    "                       consulted before scatter, >= 0           (4096)\n"
    "  --cache-dir PATH     durable cache directory: the path cache is\n"
    "                       spilled here and recovered warm on restart\n"
    "                       (off). Created if missing; locked against\n"
    "                       sharing by a second daemon.\n"
    "  --cache-flush-interval SECS   background cache flush cadence  (2)\n"
    "  --help               show this message\n"
    "\n"
    "Slots are placed by path-content hashing, so each shard's per-path\n"
    "cache concentrates on its ring segment; a model reload does not\n"
    "reshuffle placement. A fault-free scattered answer is bitwise\n"
    "identical to a single m3d's.\n";

[[noreturn]] void UsageError(const std::string& msg) {
  std::fprintf(stderr, "m3d_router: %s\n\n%s", msg.c_str(), kUsage);
  std::exit(2);
}

long ParseInt(const std::string& key, const char* arg, long min, long max) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || v < min || v > max) {
    UsageError("invalid " + key + " '" + arg + "' (expected integer in [" +
               std::to_string(min) + ", " + std::to_string(max) + "])");
  }
  return v;
}

double ParseSeconds(const std::string& key, const char* arg, double min = 0.0) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || errno == ERANGE || !(v >= min) || v > 86400) {
    UsageError("invalid " + key + " '" + arg + "' (expected seconds in [" +
               std::to_string(min) + ", 86400])");
  }
  return v;
}

std::atomic<int> g_signal{0};
void OnSignal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 3;
    case StatusCode::kNotFound: return 4;
    case StatusCode::kDataLoss: return 5;
    case StatusCode::kDeadlineExceeded: return 6;
    case StatusCode::kInternal: return 7;
    case StatusCode::kDegraded: return 8;
    case StatusCode::kUnavailable: return 9;
    case StatusCode::kResourceExhausted: return 10;
  }
  return 7;
}

}  // namespace

int main(int argc, char** argv) {
  std::string listen_spec = "/tmp/m3d-router.sock";
  RouterOptions opts;

  for (int i = 1; i < argc;) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") {
      std::printf("%s", kUsage);
      return 0;
    }
    if (key.rfind("--", 0) != 0) UsageError("unexpected argument '" + key + "'");
    if (i + 1 >= argc) UsageError("missing value for " + key);
    const char* v = argv[i + 1];
    if (key == "--shard") opts.shards.emplace_back(v);
    else if (key == "--listen") listen_spec = v;
    else if (key == "--replicas") opts.replicas = static_cast<int>(ParseInt(key, v, 1, 64));
    else if (key == "--vnodes") opts.vnodes = static_cast<int>(ParseInt(key, v, 1, 4096));
    else if (key == "--shard-timeout") opts.shard_timeout_seconds = ParseSeconds(key, v);
    else if (key == "--connect-timeout") opts.connect_timeout_seconds = ParseSeconds(key, v);
    else if (key == "--hedge") opts.hedge_seconds = ParseSeconds(key, v);
    else if (key == "--backoff-ms") opts.retry_backoff_ms = static_cast<double>(ParseInt(key, v, 0, 60'000));
    else if (key == "--health-interval") opts.health_interval_seconds = ParseSeconds(key, v, 0.01);
    else if (key == "--breaker-threshold") opts.breaker.threshold = static_cast<int>(ParseInt(key, v, 1, 1'000'000));
    else if (key == "--breaker-window") opts.breaker.window_seconds = ParseSeconds(key, v, 0.01);
    else if (key == "--breaker-cooloff") opts.breaker.cooloff_seconds = ParseSeconds(key, v, 0.01);
    else if (key == "--fallback-threads") opts.fallback_threads = static_cast<unsigned>(ParseInt(key, v, 0, 1024));
    else if (key == "--pool") opts.pool_per_shard = static_cast<std::size_t>(ParseInt(key, v, 0, 1024));
    else if (key == "--path-cache") opts.path_cache_entries = static_cast<std::size_t>(ParseInt(key, v, 0, 1 << 24));
    else if (key == "--cache-dir") opts.cache_dir = v;
    else if (key == "--cache-flush-interval") opts.cache_flush_interval_seconds = ParseSeconds(key, v, 0.001);
    else UsageError("unknown flag '" + key + "'");
    i += 2;
  }
  if (opts.shards.empty()) UsageError("at least one --shard is required");

  StatusOr<Endpoint> listen_ep = ParseEndpoint(listen_spec);
  if (!listen_ep.ok()) {
    std::fprintf(stderr, "m3d_router: bad --listen: %s\n",
                 listen_ep.status().ToString().c_str());
    return 2;
  }

  Router router(opts);
  if (Status st = router.Start(); !st.ok()) {
    std::fprintf(stderr, "m3d_router: %s\n", st.ToString().c_str());
    return ExitCodeFor(st.code());
  }

  // Client-facing hooks: query/stats/ping route to the Router; reload and
  // shard_query stay empty — a router neither owns a model nor serves as a
  // shard, and the SocketServer answers those with a clean kUnavailable.
  ServerHooks hooks;
  hooks.query = [&router](const QueryRequest& req) { return router.Query(req); };
  hooks.stats = [&router] { return router.Stats(); };
  hooks.ping = [&router] { return router.Ping(); };
  SocketServer server(std::move(hooks));
  if (Status st = server.Start(*listen_ep); !st.ok()) {
    std::fprintf(stderr, "m3d_router: %s\n", st.ToString().c_str());
    router.Stop();
    return ExitCodeFor(st.code());
  }

  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  const ServerStatsWire boot = router.Stats();
  std::uint32_t healthy = 0;
  for (const ShardHealthWire& s : boot.shards) healthy += s.healthy ? 1 : 0;
  std::printf("m3d_router: serving on %s — %zu shard(s), %u healthy at boot; "
              "%d replica(s), %d vnodes, hedge %s\n",
              listen_ep->ToString().c_str(), router.num_shards(), healthy,
              opts.replicas, opts.vnodes,
              opts.hedge_seconds > 0
                  ? (std::to_string(opts.hedge_seconds) + "s").c_str()
                  : "off");
  for (const ShardHealthWire& s : boot.shards) {
    std::printf("m3d_router:   shard %s — %s\n", s.address.c_str(),
                s.healthy ? "healthy" : "unreachable");
  }
  if (!opts.cache_dir.empty()) {
    std::printf("m3d_router: durable path cache in %s (flush every %.3gs), "
                "recovering in background\n",
                opts.cache_dir.c_str(), opts.cache_flush_interval_seconds);
  }
  std::fflush(stdout);

  while (g_signal.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("m3d_router: received %s, shutting down...\n",
              g_signal.load(std::memory_order_relaxed) == SIGINT ? "SIGINT"
                                                                 : "SIGTERM");
  server.Stop();
  router.Stop();
  const ServerStatsWire s = router.Stats();
  std::printf("m3d_router: routed %llu queries (%llu answered, %llu failed); "
              "path cache %llu/%llu hit\n",
              static_cast<unsigned long long>(s.queries_received),
              static_cast<unsigned long long>(s.queries_ok),
              static_cast<unsigned long long>(s.queries_failed),
              static_cast<unsigned long long>(s.path_cache[0]),
              static_cast<unsigned long long>(s.path_cache[0] + s.path_cache[1]));
  if (s.persist_enabled) {
    std::printf("m3d_router: durable cache: %llu segments loaded, %llu entries "
                "recovered, %llu flushed, %llu corrupt skipped, %llu digest-dropped, "
                "%llu backlog\n",
                static_cast<unsigned long long>(s.persist_segments_loaded),
                static_cast<unsigned long long>(s.persist_entries_loaded),
                static_cast<unsigned long long>(s.persist_entries_flushed),
                static_cast<unsigned long long>(s.persist_records_corrupt),
                static_cast<unsigned long long>(s.persist_digest_dropped),
                static_cast<unsigned long long>(s.persist_flush_backlog));
  }
  for (const ShardHealthWire& sh : s.shards) {
    std::printf("m3d_router:   %s — %llu dispatches, %llu failures, %llu retries, "
                "%llu hedges, %llu fallback slots, %llu dropped slots%s\n",
                sh.address.c_str(),
                static_cast<unsigned long long>(sh.dispatches),
                static_cast<unsigned long long>(sh.failures),
                static_cast<unsigned long long>(sh.retries),
                static_cast<unsigned long long>(sh.hedges),
                static_cast<unsigned long long>(sh.slots_fallback),
                static_cast<unsigned long long>(sh.slots_dropped),
                sh.breaker_open ? " [breaker open]" : "");
  }
  return 0;
}
