// Trains the m3 model on a synthetic Table-2 dataset (ground truth from the
// packet simulator) and writes a checkpoint.
//
// Usage: train_m3 [num_scenarios] [num_fg] [epochs] [out_path]
// Defaults are sized for a few minutes on a laptop-class CPU.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dataset.h"
#include "core/model.h"
#include "core/trainer.h"
#include "util/stats.h"

using namespace m3;

namespace {

// p99 relative-error comparison on the tail of each populated bucket.
void ReportAccuracy(M3Model& model, const std::vector<Sample>& samples, const char* label) {
  std::vector<double> flowsim_err;
  std::vector<double> m3_err;
  for (const Sample& s : samples) {
    const auto pred = model.Predict(s.fg_feat, s.bg_seq, s.spec, true, &s.baseline);
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (!s.gt.has[static_cast<std::size_t>(b)]) continue;
      const double truth = s.gt.pct[static_cast<std::size_t>(b)][98];
      if (truth <= 0.0) continue;
      if (s.flowsim.has[static_cast<std::size_t>(b)]) {
        flowsim_err.push_back(
            std::abs(RelativeError(s.flowsim.pct[static_cast<std::size_t>(b)][98], truth)));
      }
      m3_err.push_back(
          std::abs(RelativeError(pred[static_cast<std::size_t>(b)][98], truth)));
    }
  }
  std::printf("%s: |p99 err|  flowSim mean=%.1f%%  m3 mean=%.1f%%  (n=%zu)\n", label,
              100.0 * Mean(flowsim_err), 100.0 * Mean(m3_err), m3_err.size());
}

}  // namespace

int main(int argc, char** argv) {
  DatasetOptions dopts;
  dopts.num_scenarios = argc > 1 ? std::atoi(argv[1]) : 400;
  dopts.num_fg = argc > 2 ? std::atoi(argv[2]) : 800;
  TrainOptions topts;
  topts.epochs = argc > 3 ? std::atoi(argv[3]) : 60;
  const std::string out = argc > 4 ? argv[4] : "models/m3_default.ckpt";
  topts.verbose = true;
  topts.checkpoint_path = out;  // periodic saves: interruption-safe

  std::printf("generating %d scenarios (%d fg flows each)...\n", dopts.num_scenarios,
              dopts.num_fg);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Sample> samples = MakeSyntheticDataset(dopts);
  const double gen_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("dataset ready in %.1fs (%.2fs/scenario)\n", gen_s,
              gen_s / dopts.num_scenarios);

  M3Model model;
  std::printf("model parameters: %zu\n", model.num_parameters());
  const auto t1 = std::chrono::steady_clock::now();
  const TrainReport report = TrainModel(model, samples, topts);
  const double train_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();
  std::printf("trained %d epochs in %.1fs; final train loss %.4f val loss %.4f\n",
              topts.epochs, train_s, report.train_loss.back(),
              report.val_loss.empty() ? 0.0 : report.val_loss.back());

  ReportAccuracy(model, samples, "train-set");
  model.Save(out);
  std::printf("checkpoint written to %s\n", out.c_str());
  return 0;
}
