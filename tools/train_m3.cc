// Trains the m3 model on a synthetic Table-2 dataset (ground truth from the
// packet simulator) and writes a checkpoint.
//
// Usage: train_m3 [options] [num_scenarios] [num_fg] [epochs] [out_path]
// Defaults are sized for a few minutes on a laptop-class CPU.
//
// Training is crash-safe: checkpoints are written atomically with last-K
// rotation, SIGINT/SIGTERM finishes the in-flight batch and saves before
// exiting, and --resume continues an interrupted run bitwise identically.
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/dataset.h"
#include "core/model.h"
#include "core/trainer.h"
#include "util/stats.h"

using namespace m3;

namespace {

constexpr const char* kUsage =
    "Usage: train_m3 [options] [num_scenarios] [num_fg] [epochs] [out_path]\n"
    "\n"
    "Positional arguments (defaults in parentheses):\n"
    "  num_scenarios   training scenarios to generate, >= 1        (400)\n"
    "  num_fg          foreground flows per scenario, >= 1         (800)\n"
    "  epochs          training epochs, >= 0                       (60)\n"
    "  out_path        checkpoint path                             (models/m3_default.ckpt)\n"
    "\n"
    "Options:\n"
    "  --resume[=PATH]        restore full training state (parameters, Adam\n"
    "                         moments, epoch, LR, RNG) from the newest valid\n"
    "                         checkpoint in PATH's rotation chain (default:\n"
    "                         out_path) and continue to `epochs`\n"
    "  --keep=K               retain the last K rotated checkpoints (3)\n"
    "  --checkpoint-every=N   checkpoint every N epochs (10)\n"
    "  --help                 show this message\n"
    "\n"
    "SIGINT/SIGTERM (e.g. Ctrl-C) stops gracefully: the current batch\n"
    "finishes, a checkpoint is saved, and --resume picks up where it left\n"
    "off — even mid-epoch.\n";

[[noreturn]] void UsageError(const char* fmt, const char* arg) {
  std::fprintf(stderr, "train_m3: ");
  std::fprintf(stderr, fmt, arg);
  std::fprintf(stderr, "\n\n%s", kUsage);
  std::exit(2);
}

// Strict integer parse: the whole token must be a number in [min, max].
// (std::atoi silently accepts "12abc" and returns 0 for garbage, which
// previously let `train_m3 0` divide by zero in the gen-time report.)
int ParseInt(const char* arg, const char* what, long min, long max) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || v < min || v > max) {
    std::fprintf(stderr, "train_m3: invalid %s '%s' (expected integer in [%ld, %ld])\n\n%s",
                 what, arg, min, max, kUsage);
    std::exit(2);
  }
  return static_cast<int>(v);
}

// p99 relative-error comparison on the tail of each populated bucket.
void ReportAccuracy(M3Model& model, const std::vector<Sample>& samples, const char* label) {
  std::vector<double> flowsim_err;
  std::vector<double> m3_err;
  for (const Sample& s : samples) {
    const auto pred = model.Predict(s.fg_feat, s.bg_seq, s.spec, true, &s.baseline);
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (!s.gt.has[static_cast<std::size_t>(b)]) continue;
      const double truth = s.gt.pct[static_cast<std::size_t>(b)][98];
      if (truth <= 0.0) continue;
      if (s.flowsim.has[static_cast<std::size_t>(b)]) {
        flowsim_err.push_back(
            std::abs(RelativeError(s.flowsim.pct[static_cast<std::size_t>(b)][98], truth)));
      }
      m3_err.push_back(
          std::abs(RelativeError(pred[static_cast<std::size_t>(b)][98], truth)));
    }
  }
  std::printf("%s: |p99 err|  flowSim mean=%.1f%%  m3 mean=%.1f%%  (n=%zu)\n", label,
              100.0 * Mean(flowsim_err), 100.0 * Mean(m3_err), m3_err.size());
}

}  // namespace

int main(int argc, char** argv) {
  DatasetOptions dopts;
  dopts.num_scenarios = 400;
  TrainOptions topts;
  topts.epochs = 60;
  std::string out = "models/m3_default.ckpt";
  bool resume = false;
  std::string resume_path;  // empty: use out_path

  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::printf("%s", kUsage);
      return 0;
    } else if (std::strcmp(arg, "--resume") == 0) {
      resume = true;
    } else if (std::strncmp(arg, "--resume=", 9) == 0) {
      resume = true;
      resume_path = arg + 9;
    } else if (std::strncmp(arg, "--keep=", 7) == 0) {
      topts.checkpoint_keep = ParseInt(arg + 7, "--keep", 1, 64);
    } else if (std::strncmp(arg, "--checkpoint-every=", 19) == 0) {
      topts.checkpoint_every = ParseInt(arg + 19, "--checkpoint-every", 1, 1000000);
    } else if (std::strncmp(arg, "--", 2) == 0) {
      UsageError("unknown option '%s'", arg);
    } else {
      switch (pos++) {
        case 0: dopts.num_scenarios = ParseInt(arg, "num_scenarios", 1, 1000000); break;
        case 1: dopts.num_fg = ParseInt(arg, "num_fg", 1, 100000000); break;
        case 2: topts.epochs = ParseInt(arg, "epochs", 0, 1000000); break;
        case 3: out = arg; break;
        default: UsageError("unexpected argument '%s'", arg);
      }
    }
  }
  topts.verbose = true;
  topts.checkpoint_path = out;  // periodic + shutdown saves: interruption-safe
  if (resume) topts.resume_from = resume_path.empty() ? out : resume_path;
  InstallGracefulShutdownHandlers();

  std::printf("generating %d scenarios (%d fg flows each)...\n", dopts.num_scenarios,
              dopts.num_fg);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Sample> samples = MakeSyntheticDataset(dopts);
  const double gen_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("dataset ready in %.1fs (%.2fs/scenario)\n", gen_s,
              gen_s / dopts.num_scenarios);

  M3Model model;
  std::printf("model parameters: %zu\n", model.num_parameters());
  const auto t1 = std::chrono::steady_clock::now();
  TrainReport report;
  try {
    report = TrainModel(model, samples, topts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "train_m3: %s\n", e.what());
    return 1;
  }
  const double train_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  if (!report.resumed_from.empty()) {
    std::printf("resumed from %s at epoch %d (optimizer + RNG state restored)\n",
                report.resumed_from.c_str(), report.start_epoch);
  }
  const int epochs_run = static_cast<int>(report.train_loss.size());
  if (report.train_loss.empty()) {
    std::printf("no full epoch completed (%s) in %.1fs\n",
                report.interrupted ? "interrupted" : "nothing to train", train_s);
  } else {
    std::printf("trained %d epoch%s in %.1fs; final train loss %.4f val loss %.4f\n",
                epochs_run, epochs_run == 1 ? "" : "s", train_s, report.train_loss.back(),
                report.val_loss.empty() ? 0.0 : report.val_loss.back());
  }
  if (report.interrupted) {
    std::printf("interrupted: state saved to %s — rerun with --resume to continue\n",
                out.c_str());
    return 0;
  }

  ReportAccuracy(model, samples, "train-set");
  if (!report.train_loss.empty()) {
    std::printf("checkpoint written to %s\n", out.c_str());
  }
  return 0;
}
