// m3d: the long-running m3 estimation daemon.
//
// Loads a model checkpoint into the ModelRegistry, starts the scheduler
// workers and result caches, and serves the serve/wire.h protocol on a
// Unix-domain socket until SIGINT/SIGTERM. Clients (tools/m3_client, or
// anything speaking the framed protocol) submit query / stats / hot-reload
// requests; see DESIGN.md §9.
//
// Exit codes: 0 clean shutdown, 2 usage, 4 model not found, 5 model
// corrupt, 9 cannot bind/serve.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "serve/server.h"
#include "serve/service.h"

using namespace m3;
using namespace m3::serve;

namespace {

constexpr const char* kUsage =
    "Usage: m3d [options]\n"
    "\n"
    "  --socket PATH       Unix-domain socket to serve on   (/tmp/m3d.sock)\n"
    "  --listen-tcp SPEC   also serve TCP on PORT or HOST:PORT (off)\n"
    "                      (a bare PORT binds all interfaces; this is how a\n"
    "                      daemon joins an m3d-router shard fleet)\n"
    "  --model PATH        checkpoint to serve              (models/m3_default.ckpt)\n"
    "  --workers N         supervised worker subprocesses   (2; 0 = in-process)\n"
    "  --queue N           request queue capacity, >= 1     (64)\n"
    "  --query-cache N     whole-query cache entries, >= 0  (256)\n"
    "  --path-cache N      per-path cache entries, >= 0     (4096)\n"
    "  --threads-per-query N   pool threads per query, >= 0 (1; 0 = full pool)\n"
    "  --watchdog SECS     watchdog for deadline-less queries, > 0 (120)\n"
    "  --grace SECS        kill grace past a query deadline, > 0   (2)\n"
    "  --cost-budget C     in-flight admission cost budget, > 0\n"
    "                      (0 = default: (queue + workers) * 128)\n"
    "  --shed-sojourn SECS shed non-critical arrivals once queued work has\n"
    "                      waited this long (CoDel-style; 0 = off)\n"
    "  --brownout MODE     on|off: reduce quality (fewer paths, then\n"
    "                      flowSim) under sustained pressure (on)\n"
    "  --cache-dir PATH    durable result-cache directory: caches are spilled\n"
    "                      here and recovered warm on restart (off). Created\n"
    "                      if missing; locked against sharing by a second\n"
    "                      daemon.\n"
    "  --cache-flush-interval SECS   background cache flush cadence (2)\n"
    "  --help              show this message\n"
    "\n"
    "With --workers N > 0 queries execute in forked worker subprocesses: a\n"
    "crash or hang takes down one worker (respawned with backoff), never the\n"
    "daemon. --workers 0 executes queries in-process.\n"
    "\n"
    "Hot reload: m3_client --reload <checkpoint> swaps the model without\n"
    "dropping in-flight queries; a corrupt checkpoint keeps the old model.\n";

[[noreturn]] void UsageError(const std::string& msg) {
  std::fprintf(stderr, "m3d: %s\n\n%s", msg.c_str(), kUsage);
  std::exit(2);
}

long ParseInt(const std::string& key, const char* arg, long min, long max) {
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(arg, &end, 10);
  if (end == arg || *end != '\0' || errno == ERANGE || v < min || v > max) {
    UsageError("invalid " + key + " '" + arg + "' (expected integer in [" +
               std::to_string(min) + ", " + std::to_string(max) + "])");
  }
  return v;
}

double ParseSeconds(const std::string& key, const char* arg) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || errno == ERANGE || !(v > 0) || v > 86400) {
    UsageError("invalid " + key + " '" + arg + "' (expected seconds in (0, 86400])");
  }
  return v;
}

std::atomic<int> g_signal{0};
void OnSignal(int sig) { g_signal.store(sig, std::memory_order_relaxed); }

int ExitCodeFor(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return 0;
    case StatusCode::kInvalidArgument: return 3;
    case StatusCode::kNotFound: return 4;
    case StatusCode::kDataLoss: return 5;
    case StatusCode::kDeadlineExceeded: return 6;
    case StatusCode::kInternal: return 7;
    case StatusCode::kDegraded: return 8;
    case StatusCode::kUnavailable: return 9;
    case StatusCode::kResourceExhausted: return 10;
  }
  return 7;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/m3d.sock";
  std::string listen_tcp;
  std::string model_path = "models/m3_default.ckpt";
  ServiceOptions opts;
  opts.worker_processes = 2;  // daemon default: crash-isolated workers

  for (int i = 1; i < argc;) {
    const std::string key = argv[i];
    if (key == "--help" || key == "-h") {
      std::printf("%s", kUsage);
      return 0;
    }
    if (key.rfind("--", 0) != 0) UsageError("unexpected argument '" + key + "'");
    if (i + 1 >= argc) UsageError("missing value for " + key);
    const char* v = argv[i + 1];
    if (key == "--socket") socket_path = v;
    else if (key == "--listen-tcp") listen_tcp = v;
    else if (key == "--model") model_path = v;
    else if (key == "--workers") opts.worker_processes = static_cast<int>(ParseInt(key, v, 0, 256));
    else if (key == "--queue") opts.queue_capacity = static_cast<std::size_t>(ParseInt(key, v, 1, 1 << 20));
    else if (key == "--query-cache") opts.query_cache_entries = static_cast<std::size_t>(ParseInt(key, v, 0, 1 << 24));
    else if (key == "--path-cache") opts.path_cache_entries = static_cast<std::size_t>(ParseInt(key, v, 0, 1 << 24));
    else if (key == "--threads-per-query") opts.threads_per_query = static_cast<unsigned>(ParseInt(key, v, 0, 1024));
    else if (key == "--watchdog") opts.supervisor.default_watchdog_seconds = ParseSeconds(key, v);
    else if (key == "--grace") opts.supervisor.grace_seconds = ParseSeconds(key, v);
    else if (key == "--cost-budget") {
      char* end = nullptr;
      errno = 0;
      const double b = std::strtod(v, &end);
      if (end == v || *end != '\0' || errno == ERANGE || b < 0) {
        UsageError("invalid --cost-budget '" + std::string(v) + "' (expected >= 0)");
      }
      opts.cost_budget = b;
    } else if (key == "--shed-sojourn") {
      opts.shed_sojourn_seconds = std::strcmp(v, "0") == 0 ? 0.0 : ParseSeconds(key, v);
    } else if (key == "--brownout") {
      if (std::strcmp(v, "on") == 0) opts.brownout_enabled = true;
      else if (std::strcmp(v, "off") == 0) opts.brownout_enabled = false;
      else UsageError("invalid --brownout '" + std::string(v) + "' (expected on|off)");
    }
    else if (key == "--cache-dir") opts.cache_dir = v;
    else if (key == "--cache-flush-interval") opts.cache_flush_interval_seconds = ParseSeconds(key, v);
    else UsageError("unknown flag '" + key + "'");
    i += 2;
  }
  // One scheduler thread per worker subprocess keeps the pool saturated
  // without queueing inside the supervisor's lease wait.
  opts.num_workers = std::max(1, opts.worker_processes);

  // --listen-tcp accepts a bare port (bind all interfaces) or HOST:PORT.
  Endpoint tcp_ep;
  if (!listen_tcp.empty()) {
    tcp_ep.kind = Endpoint::Kind::kTcp;
    const std::size_t colon = listen_tcp.rfind(':');
    const std::string port_str =
        colon == std::string::npos ? listen_tcp : listen_tcp.substr(colon + 1);
    if (colon != std::string::npos) tcp_ep.host = listen_tcp.substr(0, colon);
    tcp_ep.port = static_cast<std::uint16_t>(
        ParseInt("--listen-tcp", port_str.c_str(), 1, 65535));
  }

  EstimationService service(opts);
  if (Status st = service.ReloadModel(model_path); !st.ok()) {
    std::fprintf(stderr, "m3d: %s\n", st.ToString().c_str());
    if (st.code() == StatusCode::kNotFound) {
      std::fprintf(stderr, "m3d: run tools/train_m3 first to produce %s\n",
                   model_path.c_str());
    }
    return ExitCodeFor(st.code());
  }
  const ServerStatsWire boot = service.Stats();
  if (Status st = service.Start(); !st.ok()) {
    std::fprintf(stderr, "m3d: %s\n", st.ToString().c_str());
    return ExitCodeFor(st.code());
  }

  SocketServer server(service);
  if (Status st = server.Start(socket_path); !st.ok()) {
    std::fprintf(stderr, "m3d: %s\n", st.ToString().c_str());
    service.Stop();
    return ExitCodeFor(st.code());
  }
  if (!listen_tcp.empty()) {
    if (Status st = server.Start(tcp_ep); !st.ok()) {
      std::fprintf(stderr, "m3d: %s\n", st.ToString().c_str());
      server.Stop();
      service.Stop();
      return ExitCodeFor(st.code());
    }
  }

  struct sigaction sa{};
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  if (opts.worker_processes > 0) {
    std::printf("m3d: serving %s (model v%llu crc %08x) on %s — %d worker processes "
                "(supervised), queue %zu, caches %zu query / %zu path\n",
                model_path.c_str(), static_cast<unsigned long long>(boot.model_version),
                boot.model_crc, socket_path.c_str(), opts.worker_processes,
                opts.queue_capacity, opts.query_cache_entries, opts.path_cache_entries);
  } else {
    std::printf("m3d: serving %s (model v%llu crc %08x) on %s — in-process, %d scheduler "
                "threads, queue %zu, caches %zu query / %zu path\n",
                model_path.c_str(), static_cast<unsigned long long>(boot.model_version),
                boot.model_crc, socket_path.c_str(), opts.num_workers, opts.queue_capacity,
                opts.query_cache_entries, opts.path_cache_entries);
  }
  if (!listen_tcp.empty()) {
    std::printf("m3d: also listening on %s\n", tcp_ep.ToString().c_str());
  }
  if (!opts.cache_dir.empty()) {
    std::printf("m3d: durable caches in %s (flush every %.3gs), recovering in background\n",
                opts.cache_dir.c_str(), opts.cache_flush_interval_seconds);
  }
  std::fflush(stdout);

  while (g_signal.load(std::memory_order_relaxed) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("m3d: received %s, draining and shutting down...\n",
              g_signal.load(std::memory_order_relaxed) == SIGINT ? "SIGINT" : "SIGTERM");
  server.Stop();
  service.Stop();
  const ServerStatsWire s = service.Stats();
  std::printf("m3d: served %llu queries (%llu ok, %llu rejected, %llu shed, "
              "%llu failed); query cache %llu/%llu hit, path cache %llu/%llu hit\n",
              static_cast<unsigned long long>(s.queries_received),
              static_cast<unsigned long long>(s.queries_ok),
              static_cast<unsigned long long>(s.queries_rejected),
              static_cast<unsigned long long>(s.queries_shed),
              static_cast<unsigned long long>(s.queries_failed),
              static_cast<unsigned long long>(s.query_cache[0]),
              static_cast<unsigned long long>(s.query_cache[0] + s.query_cache[1]),
              static_cast<unsigned long long>(s.path_cache[0]),
              static_cast<unsigned long long>(s.path_cache[0] + s.path_cache[1]));
  if (s.queries_shed > 0 || s.queries_rejected > 0 || s.brownout_queries > 0) {
    std::printf("m3d: overload control: shed by reason — %llu queue-full, "
                "%llu priority, %llu expired, %llu sojourn, %llu cost-budget; "
                "%llu browned-out queries\n",
                static_cast<unsigned long long>(s.shed_by_reason[1]),
                static_cast<unsigned long long>(s.shed_by_reason[2]),
                static_cast<unsigned long long>(s.shed_by_reason[3]),
                static_cast<unsigned long long>(s.shed_by_reason[4]),
                static_cast<unsigned long long>(s.shed_by_reason[5]),
                static_cast<unsigned long long>(s.brownout_queries));
  }
  if (s.persist_enabled) {
    std::printf("m3d: durable caches: %llu segments loaded, %llu entries recovered, "
                "%llu flushed, %llu corrupt skipped, %llu digest-dropped, %llu backlog\n",
                static_cast<unsigned long long>(s.persist_segments_loaded),
                static_cast<unsigned long long>(s.persist_entries_loaded),
                static_cast<unsigned long long>(s.persist_entries_flushed),
                static_cast<unsigned long long>(s.persist_records_corrupt),
                static_cast<unsigned long long>(s.persist_digest_dropped),
                static_cast<unsigned long long>(s.persist_flush_backlog));
  }
  if (s.worker_mode) {
    std::printf("m3d: worker pool: %llu spawns, %llu restarts, %llu crashes, "
                "%llu watchdog kills, %llu garbage replies, %llu retried queries, "
                "%llu breaker trips\n",
                static_cast<unsigned long long>(s.worker_spawns),
                static_cast<unsigned long long>(s.worker_restarts),
                static_cast<unsigned long long>(s.worker_crashes),
                static_cast<unsigned long long>(s.watchdog_kills),
                static_cast<unsigned long long>(s.garbage_replies),
                static_cast<unsigned long long>(s.crash_retried_queries),
                static_cast<unsigned long long>(s.breaker_trips));
  }
  return 0;
}
