// Quickstart: estimate network-wide tail latency with m3 in five steps.
//
//   1. Build a topology (a 256-host fat tree).
//   2. Generate a workload (traffic matrix x flow sizes x burstiness x load).
//   3. Load (or quick-train) an m3 model.
//   4. Run the m3 estimator: path decomposition -> flowSim -> ML correction
//      -> network-wide aggregation.
//   5. Query slowdown percentiles per flow-size class.
//
// For a small workload we also run the full packet simulation so you can
// see the estimate against the ground truth.
#include <cstdio>

#include "core/dataset.h"
#include "core/estimator.h"
#include "core/trainer.h"
#include "pktsim/simulator.h"
#include "util/stats.h"
#include "topo/fat_tree.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

using namespace m3;

namespace {

M3Model LoadOrTrainModel() {
  M3Model model;
  const std::string path = "models/m3_default.ckpt";
  try {
    model.Load(path);
    std::printf("loaded model checkpoint %s\n", path.c_str());
  } catch (const std::exception&) {
    std::printf("no checkpoint found; quick-training a small model (~1 min)...\n");
    DatasetOptions dopts;
    dopts.num_scenarios = 100;
    dopts.num_fg = 300;
    const auto samples = MakeSyntheticDataset(dopts);
    TrainOptions topts;
    topts.epochs = 20;
    TrainModel(model, samples, topts);
  }
  return model;
}

}  // namespace

int main() {
  // 1. Topology: 32 racks, 256 hosts, 2:1 oversubscribed core.
  const FatTree ft(FatTreeConfig::Small(/*oversub=*/2.0));
  std::printf("topology: %d hosts, %d racks, %zu links\n", ft.num_hosts(), ft.num_racks(),
              ft.topo().num_links());

  // 2. Workload: WebServer sizes on a near-uniform matrix, bursty arrivals,
  //    busiest link at 50% utilization.
  const auto tm = TrafficMatrix::MatrixB(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 10000;
  wspec.max_load = 0.5;
  wspec.burstiness_sigma = 1.5;
  wspec.seed = 42;
  const GeneratedWorkload wl = GenerateWorkload(ft, tm, *sizes, wspec);
  std::printf("workload: %zu flows, realized max link load %.1f%%\n", wl.flows.size(),
              100 * wl.realized_max_load);

  // 3. Model.
  M3Model model = LoadOrTrainModel();

  // 4. Estimate. DCTCP with a 15KB initial window (the defaults).
  NetConfig cfg;
  M3Options opts;
  opts.num_paths = 100;
  const NetworkEstimate est = RunM3(ft.topo(), wl.flows, cfg, model, opts);
  std::printf("m3 estimate finished in %.1fs (%d sampled paths)\n", est.wall_seconds,
              opts.num_paths);

  // 5. Query: slowdown percentiles per flow-size class.
  std::printf("\n%-14s %8s %8s %8s\n", "flow class", "p50", "p90", "p99");
  const char* labels[4] = {"(0,1KB]", "(1KB,10KB]", "(10KB,50KB]", "(50KB,inf)"};
  for (int b = 0; b < kNumOutputBuckets; ++b) {
    const auto& pct = est.bucket_pct[static_cast<std::size_t>(b)];
    if (pct.empty()) continue;
    std::printf("%-14s %8.2f %8.2f %8.2f\n", labels[b], pct[49], pct[89], pct[98]);
  }
  std::printf("network-wide:  p50=%.2f  p99=%.2f\n",
              est.combined_pct[49], est.CombinedP99());

  // Ground truth for comparison (the expensive path m3 replaces).
  std::printf("\nrunning the full packet simulation for comparison...\n");
  const auto truth = RunPacketSim(ft.topo(), wl.flows, cfg);
  const NetworkEstimate gt = SummarizeGroundTruth(truth);
  std::printf("ground truth:  p50=%.2f  p99=%.2f  (m3 p99 error %+.1f%%)\n",
              gt.combined_pct[49], gt.CombinedP99(),
              100 * RelativeError(est.CombinedP99(), gt.CombinedP99()));
  return 0;
}
