// Counterfactual configuration search (the §5.4 use case): given one
// workload, sweep congestion-control configurations with m3 -- no packet
// simulation in the loop -- and rank them by small-flow tail latency.
//
// This is the "interactive design exploration" workflow: each candidate
// evaluation costs seconds instead of hours.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dataset.h"
#include "core/estimator.h"
#include "core/trainer.h"
#include "topo/fat_tree.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

using namespace m3;

int main() {
  const FatTree ft(FatTreeConfig::Small(2.0));
  const auto tm = TrafficMatrix::MatrixC(ft.num_racks(), ft.config().racks_per_pod);
  const auto sizes = MakeWebServer();
  WorkloadSpec wspec;
  wspec.num_flows = 10000;
  wspec.max_load = 0.5;
  wspec.burstiness_sigma = 1.5;
  wspec.seed = 7;
  const GeneratedWorkload wl = GenerateWorkload(ft, tm, *sizes, wspec);

  M3Model model;
  try {
    model.Load("models/m3_default.ckpt");
  } catch (const std::exception&) {
    std::printf("training a quick model first...\n");
    DatasetOptions dopts;
    dopts.num_scenarios = 100;
    dopts.num_fg = 300;
    const auto samples = MakeSyntheticDataset(dopts);
    TrainOptions topts;
    topts.epochs = 20;
    TrainModel(model, samples, topts);
  }

  // Candidate space: HPCC with different eta / init-window combinations.
  struct Candidate {
    double eta;
    Bytes window;
    double small_p99 = 0.0;
    double large_p99 = 0.0;
    double seconds = 0.0;
  };
  std::vector<Candidate> candidates;
  for (double eta : {0.75, 0.85, 0.95}) {
    for (Bytes w : {10 * kKB, 20 * kKB, 30 * kKB}) {
      candidates.push_back({eta, w});
    }
  }

  std::printf("evaluating %zu HPCC configurations with m3...\n\n", candidates.size());
  std::printf("%-6s %-8s | %12s %12s %8s\n", "eta", "initW", "small p99", "large p99", "time");
  for (Candidate& c : candidates) {
    NetConfig cfg;
    cfg.cc = CcType::kHpcc;
    cfg.pfc = true;
    cfg.buffer = 400 * kKB;
    cfg.hpcc_eta = c.eta;
    cfg.init_window = c.window;
    M3Options opts;
    opts.num_paths = 60;
    const NetworkEstimate est = RunM3(ft.topo(), wl.flows, cfg, model, opts);
    const auto p99 = est.BucketP99();
    c.small_p99 = p99[0];
    c.large_p99 = p99[3] > 0 ? p99[3] : p99[2];
    c.seconds = est.wall_seconds;
    std::printf("%-6.2f %5lldKB | %12.2f %12.2f %7.1fs\n", c.eta,
                static_cast<long long>(c.window / kKB), c.small_p99, c.large_p99, c.seconds);
  }

  // Rank by small-flow p99 with large-flow p99 as tie-breaker.
  std::sort(candidates.begin(), candidates.end(), [](const Candidate& a, const Candidate& b) {
    return a.small_p99 + 0.1 * a.large_p99 < b.small_p99 + 0.1 * b.large_p99;
  });
  std::printf("\nrecommended config: eta=%.2f initW=%lldKB (small p99 %.2f)\n",
              candidates[0].eta, static_cast<long long>(candidates[0].window / kKB),
              candidates[0].small_p99);
  return 0;
}
