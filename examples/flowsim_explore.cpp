// Using flowSim directly as a library: characterize how a workload's
// slowdown profile responds to burstiness, without any ML or packet
// simulation. This is the featurization insight of §2.2 in ~40 lines.
#include <cstdio>

#include "core/feature_map.h"
#include "flowsim/flowsim.h"
#include "util/stats.h"
#include "topo/parking_lot.h"
#include "workload/arrivals.h"
#include "workload/size_dist.h"

using namespace m3;

int main() {
  const auto sizes = MakeCacheFollower();
  std::printf("flowSim slowdown profile, single 10G link, CacheFollower @ 50%% load\n\n");
  std::printf("%-8s | %10s %10s %10s\n", "sigma", "p50(all)", "p99(small)", "p99(large)");

  for (double sigma : {1.0, 1.5, 2.0}) {
    ParkingLot lot(1, GbpsToBpns(10.0), 1000, /*hosts_at_ends=*/true);
    Rng rng(static_cast<std::uint64_t>(sigma * 100));
    Rng size_rng = rng.Fork(1);
    Rng arr_rng = rng.Fork(2);

    const int n = 20000;
    std::vector<Flow> flows;
    double total_bytes = 0;
    const Route route = lot.RouteBetween(lot.switch_at(0), 0, lot.switch_at(1), 1);
    for (int i = 0; i < n; ++i) {
      Flow f;
      f.id = static_cast<FlowId>(i);
      f.src = lot.switch_at(0);
      f.dst = lot.switch_at(1);
      f.size = sizes->Sample(size_rng);
      f.path = route;
      total_bytes += static_cast<double>(f.size);
      flows.push_back(std::move(f));
    }
    const Ns duration = static_cast<Ns>(total_bytes / GbpsToBpns(10.0) / 0.5);
    const auto arrivals =
        ScaleArrivals(NormalizedLogNormalArrivals(n, sigma, arr_rng), duration);
    for (int i = 0; i < n; ++i) flows[static_cast<std::size_t>(i)].arrival = arrivals[static_cast<std::size_t>(i)];

    const auto res = RunFlowSim(lot.topo(), flows);
    std::vector<SizedSlowdown> pairs;
    for (const auto& r : res) pairs.push_back({r.size, r.slowdown});
    const TargetDist dist = BuildTarget(pairs);

    std::vector<double> all;
    for (const auto& r : res) all.push_back(r.slowdown);
    std::printf("%-8.1f | %10.2f %10.2f %10.2f\n", sigma, Percentile(all, 50),
                dist.has[0] ? dist.pct[0][98] : 0.0, dist.has[3] ? dist.pct[3][98] : 0.0);
  }
  std::printf("\nhigher sigma (burstier arrivals) inflates tails even at equal load --\n"
              "this is what makes flowSim output a rich workload feature (Fig. 3).\n");
  return 0;
}
