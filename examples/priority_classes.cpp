// Strict-priority classes (the paper's §3.6 future-work item, implemented
// here in both substrate simulators): a latency-sensitive class shares the
// fabric with bulk traffic, and the packet simulator shows how much class
// separation buys at the tail.
#include <cstdio>

#include "pktsim/simulator.h"
#include "topo/parking_lot.h"
#include "util/stats.h"
#include "workload/arrivals.h"
#include "workload/size_dist.h"

using namespace m3;

namespace {

// Builds a mixed workload on a 2-hop path: small RPC-style flows (class
// depends on `rpc_priority`) and large bulk flows (lowest class).
std::vector<Flow> MakeWorkload(ParkingLot& lot, std::uint8_t rpc_priority) {
  Rng rng(42);
  Rng size_rng = rng.Fork(1);
  Rng arr_rng = rng.Fork(2);
  const auto rpc_sizes = MakeWebServer();

  std::vector<Flow> flows;
  const Route route = lot.RouteBetween(lot.switch_at(0), 0, lot.switch_at(2), 2);
  double total_bytes = 0.0;
  for (int i = 0; i < 3000; ++i) {
    Flow f;
    f.id = static_cast<FlowId>(flows.size());
    f.src = lot.switch_at(0);
    f.dst = lot.switch_at(2);
    const bool is_bulk = (i % 10) == 0;  // 10% bulk flows carry most bytes
    f.size = is_bulk ? 2 * kMB : rpc_sizes->Sample(size_rng);
    f.priority = is_bulk ? 2 : rpc_priority;
    f.path = route;
    total_bytes += static_cast<double>(f.size);
    flows.push_back(std::move(f));
  }
  const Ns duration = static_cast<Ns>(total_bytes / GbpsToBpns(10.0) / 0.6);
  const auto arrivals = ScaleArrivals(
      NormalizedLogNormalArrivals(static_cast<int>(flows.size()), 1.5, arr_rng), duration);
  for (std::size_t i = 0; i < flows.size(); ++i) flows[i].arrival = arrivals[i];
  return flows;
}

Summary RpcSlowdowns(const std::vector<Flow>& flows, const std::vector<FlowResult>& res) {
  std::vector<double> sldn;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (flows[i].size < 2 * kMB) sldn.push_back(res[i].slowdown);  // RPC flows
  }
  return Summarize(std::move(sldn));
}

}  // namespace

int main() {
  NetConfig cfg;  // DCTCP
  std::printf("2-hop path at 60%% load: 90%% small RPC flows + 10%% 2MB bulk flows\n\n");
  std::printf("%-28s %8s %8s %8s\n", "RPC class", "p50", "p90", "p99");

  {
    ParkingLot lot(2, GbpsToBpns(10.0), 1000, /*hosts_at_ends=*/true);
    const auto flows = MakeWorkload(lot, /*rpc_priority=*/2);  // same class as bulk
    const auto res = RunPacketSim(lot.topo(), flows, cfg);
    const Summary s = RpcSlowdowns(flows, res);
    std::printf("%-28s %8.2f %8.2f %8.2f\n", "shared with bulk (class 2)", s.p50, s.p90,
                s.p99);
  }
  {
    ParkingLot lot(2, GbpsToBpns(10.0), 1000, /*hosts_at_ends=*/true);
    const auto flows = MakeWorkload(lot, /*rpc_priority=*/0);  // strict priority
    const auto res = RunPacketSim(lot.topo(), flows, cfg);
    const Summary s = RpcSlowdowns(flows, res);
    std::printf("%-28s %8.2f %8.2f %8.2f\n", "dedicated class 0", s.p50, s.p90, s.p99);
  }
  std::printf("\npriority separation shields the RPC tail from bulk-queue buildup;\n"
              "the same flag on Flow::priority drives flowSim's layered max-min.\n");
  return 0;
}
