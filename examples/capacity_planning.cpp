// Capacity planning: how much oversubscription can this workload tolerate?
//
// Uses m3 to estimate tail latency on the same workload across core
// oversubscription levels (spine counts), the kind of topology what-if the
// paper motivates (adding/removing switches, §2.1).
#include <cstdio>

#include "core/dataset.h"
#include "core/estimator.h"
#include "core/trainer.h"
#include "topo/fat_tree.h"
#include "workload/generator.h"
#include "workload/size_dist.h"

using namespace m3;

int main() {
  M3Model model;
  try {
    model.Load("models/m3_default.ckpt");
  } catch (const std::exception&) {
    std::printf("training a quick model first...\n");
    DatasetOptions dopts;
    dopts.num_scenarios = 100;
    dopts.num_fg = 300;
    const auto samples = MakeSyntheticDataset(dopts);
    TrainOptions topts;
    topts.epochs = 20;
    TrainModel(model, samples, topts);
  }

  std::printf("%-8s %-8s | %10s %10s %10s %10s | %10s\n", "oversub", "spines", "S.p99",
              "M.p99", "L.p99", "XL.p99", "combined");
  for (double oversub : {1.0, 2.0, 4.0}) {
    const FatTree ft(FatTreeConfig::Small(oversub));
    const auto tm = TrafficMatrix::MatrixA(ft.num_racks(), ft.config().racks_per_pod);
    const auto sizes = MakeCacheFollower();
    WorkloadSpec wspec;
    wspec.num_flows = 10000;
    wspec.max_load = 0.6;
    wspec.burstiness_sigma = 2.0;
    wspec.seed = 99;
    const GeneratedWorkload wl = GenerateWorkload(ft, tm, *sizes, wspec);

    NetConfig cfg;  // DCTCP defaults
    M3Options opts;
    opts.num_paths = 60;
    const NetworkEstimate est = RunM3(ft.topo(), wl.flows, cfg, model, opts);
    const auto p99 = est.BucketP99();
    std::printf("%6.0f:1 %8d | %10.2f %10.2f %10.2f %10.2f | %10.2f\n", oversub,
                ft.config().spines_per_plane, p99[0], p99[1], p99[2], p99[3],
                est.CombinedP99());
  }
  std::printf("\nreading: pick the highest oversubscription whose p99 meets your SLO;\n"
              "rerun with your own traffic matrix and flow sizes.\n");
  return 0;
}
