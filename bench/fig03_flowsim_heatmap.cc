// Figure 3: flowSim slowdown heatmaps on a single link, varying one
// workload dimension per row: burstiness (sigma), max load, and workload
// (size distribution). Prints each heatmap as rows of slowdown at selected
// percentiles per size bucket.
//
// Paper claim: higher burstiness raises small-flow tails and all large-flow
// percentiles; higher load acts similarly but less skewed across sizes;
// different workloads induce visibly different maps at identical load.
#include "bench/common.h"
#include "core/feature_map.h"
#include "flowsim/flowsim.h"
#include "topo/parking_lot.h"
#include "workload/arrivals.h"

using namespace m3;
using namespace m3::bench;

namespace {

// Single-link flowSim run with the given workload knobs; returns the
// feature map of all flows.
FeatureMap RunSingleLink(const SizeDist& sizes, double sigma, double load,
                         std::uint64_t seed) {
  const int n_flows = 4000 * Scale();
  ParkingLot lot(1, GbpsToBpns(10.0), 1000, /*hosts_at_ends=*/true);
  Rng rng(seed);
  Rng size_rng = rng.Fork(1);
  Rng arr_rng = rng.Fork(2);

  std::vector<Flow> flows;
  double total_bytes = 0.0;
  const Route route = lot.RouteBetween(lot.switch_at(0), 0, lot.switch_at(1), 1);
  for (int i = 0; i < n_flows; ++i) {
    Flow f;
    f.id = static_cast<FlowId>(i);
    f.src = lot.switch_at(0);
    f.dst = lot.switch_at(1);
    f.size = sizes.Sample(size_rng);
    f.path = route;
    total_bytes += static_cast<double>(f.size);
    flows.push_back(std::move(f));
  }
  const Ns duration = static_cast<Ns>(total_bytes / GbpsToBpns(10.0) / load) + 1;
  const auto arrivals = ScaleArrivals(NormalizedLogNormalArrivals(n_flows, sigma, arr_rng), duration);
  for (int i = 0; i < n_flows; ++i) flows[static_cast<std::size_t>(i)].arrival = arrivals[static_cast<std::size_t>(i)];

  const auto res = RunFlowSim(lot.topo(), flows);
  std::vector<SizedSlowdown> pairs;
  pairs.reserve(res.size());
  for (const auto& r : res) pairs.push_back({r.size, r.slowdown});
  return BuildFeatureMap(pairs);
}

void PrintMap(const char* label, const FeatureMap& map) {
  std::printf("--- %s ---\n", label);
  std::printf("%-10s %8s %8s %8s %8s\n", "size<=", "p25", "p50", "p90", "p99");
  const char* names[kNumSizeBuckets] = {"250B",  "500B", "1KB",  "2KB",  "5KB",
                                        "10KB", "20KB", "30KB", "50KB", ">50KB"};
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    if (map.counts[static_cast<std::size_t>(b)] < 3) continue;
    std::printf("%-10s %8.2f %8.2f %8.2f %8.2f\n", names[b],
                map.pct[static_cast<std::size_t>(b)][24], map.pct[static_cast<std::size_t>(b)][49],
                map.pct[static_cast<std::size_t>(b)][89], map.pct[static_cast<std::size_t>(b)][98]);
  }
}

double TailMean(const FeatureMap& map) {
  double sum = 0.0;
  int n = 0;
  for (int b = 0; b < kNumSizeBuckets; ++b) {
    if (map.counts[static_cast<std::size_t>(b)] < 3) continue;
    sum += map.pct[static_cast<std::size_t>(b)][98];
    ++n;
  }
  return n ? sum / n : 0.0;
}

}  // namespace

int main() {
  std::printf("=== Fig 3: flowSim single-link heatmaps ===\n");
  const auto cache = MakeCacheFollower();
  const auto web = MakeWebServer();
  const auto hadoop = MakeHadoop();

  // Row 1: burstiness sweep at CacheFollower, load 50%.
  FeatureMap row1[3] = {RunSingleLink(*cache, 1.0, 0.5, 1), RunSingleLink(*cache, 1.5, 0.5, 1),
                        RunSingleLink(*cache, 2.0, 0.5, 1)};
  PrintMap("(a) sigma=1.0, CacheFollower, load=50%", row1[0]);
  PrintMap("(b) sigma=1.5, CacheFollower, load=50%", row1[1]);
  PrintMap("(c) sigma=2.0, CacheFollower, load=50%", row1[2]);
  std::printf("claim (burstiness raises tails): mean p99 %.2f -> %.2f -> %.2f\n\n",
              TailMean(row1[0]), TailMean(row1[1]), TailMean(row1[2]));

  // Row 2: load sweep.
  FeatureMap row2[3] = {RunSingleLink(*cache, 1.5, 0.2, 2), RunSingleLink(*cache, 1.5, 0.5, 2),
                        RunSingleLink(*cache, 1.5, 0.8, 2)};
  PrintMap("(d) load=20%", row2[0]);
  PrintMap("(e) load=50%", row2[1]);
  PrintMap("(f) load=80%", row2[2]);
  std::printf("claim (load raises tails): mean p99 %.2f -> %.2f -> %.2f\n\n",
              TailMean(row2[0]), TailMean(row2[1]), TailMean(row2[2]));

  // Row 3: workload sweep at sigma=1.5, load=50%.
  FeatureMap row3[3] = {RunSingleLink(*hadoop, 1.5, 0.5, 3), RunSingleLink(*cache, 1.5, 0.5, 3),
                        RunSingleLink(*web, 1.5, 0.5, 3)};
  PrintMap("(g) Hadoop", row3[0]);
  PrintMap("(h) CacheFollower", row3[1]);
  PrintMap("(i) WebServer", row3[2]);
  std::printf("claim: distinct workloads produce distinct maps at equal load "
              "(mean p99: %.2f / %.2f / %.2f)\n",
              TailMean(row3[0]), TailMean(row3[1]), TailMean(row3[2]));
  return 0;
}
