// Figure 5: (left) number of populated paths per scenario; (right) relative
// p99 slowdown error of the flow-weighted path sample vs the full flow set,
// as a function of sample size.
//
// Paper claim: sampling 100 paths beats Parsimon's accuracy; 500 paths
// bounds the relative p99 error within 10%.
#include "bench/common.h"
#include "pathdecomp/decompose.h"
#include "pathdecomp/sampling.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main() {
  const int num_scenarios = std::max(3, 2 * Scale());
  std::printf("=== Fig 5: path counts and sampling error (%d scenarios) ===\n",
              num_scenarios);

  std::vector<int> sample_sizes{10, 50, 100, 500};
  std::vector<std::vector<double>> errors(sample_sizes.size());
  Rng scen_rng(17);

  for (int s = 0; s < num_scenarios; ++s) {
    // Rotate through the mixes with fresh seeds.
    Mix mix = Table1Mixes()[static_cast<std::size_t>(s) % 3];
    mix.max_load = scen_rng.Uniform(0.3, 0.7);
    BuiltMix built = BuildMix(mix, DefaultFlows(), 100 + static_cast<std::uint64_t>(s));

    // Ground truth p99 over all flows.
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    const double p99_true = P99Slowdown(truth);

    PathDecomposition decomp(built.ft->topo(), built.wl.flows);
    std::printf("scenario %d (%s): %zu populated paths, true p99=%.3f\n", s,
                mix.name.c_str(), decomp.num_paths(), p99_true);

    // For each sample size: p99 over the union of sampled paths' fg flows
    // USING TRUE per-flow slowdowns (isolates sampling error, as in the
    // paper's Fig 5 methodology).
    for (std::size_t k = 0; k < sample_sizes.size(); ++k) {
      Rng rng(static_cast<std::uint64_t>(1000 + s * 10 + static_cast<int>(k)));
      const auto sample = SamplePaths(decomp, sample_sizes[k], rng);
      std::vector<double> sldn;
      for (std::size_t idx : sample) {
        for (FlowId f : decomp.path(idx).fg_flows) {
          sldn.push_back(truth[static_cast<std::size_t>(f)].slowdown);
        }
      }
      const double p99 = Percentile(std::move(sldn), 99);
      errors[k].push_back(std::abs(RelativeError(p99, p99_true)));
    }
    std::fflush(stdout);
  }

  std::printf("\n%-12s %10s %10s %10s\n", "#paths", "median", "p90", "max");
  for (std::size_t k = 0; k < sample_sizes.size(); ++k) {
    const Summary s = Summarize(errors[k]);
    std::printf("%-12d %9.1f%% %9.1f%% %9.1f%%\n", sample_sizes[k], 100 * s.p50,
                100 * s.p90, 100 * s.max);
  }
  std::printf("paper: 500 paths bound the relative p99 error within 10%%\n");
  return 0;
}
