// Figure 6: FCT slowdown distributions per flow-size bucket on a 4-hop
// parking-lot path: ground truth (packet sim) vs flowSim vs m3.
//
// Paper claim: flowSim underestimates slowdowns, badly for small flows at
// the tail; m3's ML correction tracks the ground truth across buckets,
// including short-flow tails.
#include "bench/common.h"
#include "core/dataset.h"

using namespace m3;
using namespace m3::bench;

int main() {
  std::printf("=== Fig 6: per-bucket slowdown distribution on a 4-hop path ===\n");
  M3Model& model = DefaultModel();

  // A Meta-workload-like path scenario: production sizes via the closest
  // parametric theta is NOT used here; we build the path directly from a
  // synthetic spec with a heavy mix, matching the figure's setup.
  double fs_err_sum = 0.0, m3_err_sum = 0.0;
  int n_cases = 0;
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    SyntheticSpec spec;
    spec.num_links = 4;
    spec.family = ParametricFamily::kLogNormal;
    spec.theta = 15000.0;
    spec.sigma = 1.8;
    spec.max_load = 0.6;
    spec.num_fg = 1500 * Scale();
    spec.bg_ratio = 2.0;
    spec.seed = seed;
    const PathScenario sc = BuildSyntheticScenario(spec);
    NetConfig cfg;  // DCTCP
    const Sample s = BuildSample(sc, cfg);
    const auto pred = model.Predict(s.fg_feat, s.bg_seq, s.spec, true, &s.baseline);

    std::printf("--- path seed %llu ---\n", static_cast<unsigned long long>(seed));
    std::printf("%-12s %22s %22s %22s\n", "bucket", "ns3-like(p50/p90/p99)",
                "flowSim(p50/p90/p99)", "m3(p50/p90/p99)");
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (!s.gt.has[static_cast<std::size_t>(b)]) continue;
      const auto& gt = s.gt.pct[static_cast<std::size_t>(b)];
      const auto& fs = s.flowsim.pct[static_cast<std::size_t>(b)];
      const auto& m3p = pred[static_cast<std::size_t>(b)];
      std::printf("%-12s %6.2f %6.2f %7.2f %6.2f %6.2f %7.2f %6.2f %6.2f %7.2f\n",
                  BucketLabel(b), gt[49], gt[89], gt[98], fs[49], fs[89], fs[98],
                  m3p[49], m3p[89], m3p[98]);
      fs_err_sum += AbsErrPct(fs[98], gt[98]);
      m3_err_sum += AbsErrPct(m3p[98], gt[98]);
      ++n_cases;
    }
    std::fflush(stdout);
  }
  std::printf("\nmean |p99 err| across buckets: flowSim=%.1f%%  m3=%.1f%%\n",
              fs_err_sum / n_cases, m3_err_sum / n_cases);
  std::printf("paper: flowSim underestimates short-flow tails; m3 corrects them\n");
  return 0;
}
