// Figure 11: sensitivity of the p99 slowdown error to workload parameters:
// grouped by traffic matrix, size distribution, oversubscription, and
// burstiness, for m3 and Parsimon.
//
// Paper claim: m3's error is stable across every grouping; Parsimon's error
// is larger and skewed, worst for matrix A, WebServer, 4:1 oversubscription
// and sigma=2. m3 degrades slightly on matrix C (few-flow paths).
#include <map>

#include "bench/common.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main() {
  const int num_scenarios = std::max(8, 6 * Scale());
  std::printf("=== Fig 11: error breakdown over %d scenarios ===\n", num_scenarios);
  M3Model& model = DefaultModel();

  struct Case {
    std::string tm, wl;
    double oversub, sigma;
    double m3_err, pars_err;
  };
  std::vector<Case> cases;

  Rng rng(31);
  const char* tms[3] = {"A", "B", "C"};
  const char* wls[3] = {"CacheFollower", "WebServer", "Hadoop"};
  const double oversubs[3] = {1.0, 2.0, 4.0};
  for (int s = 0; s < num_scenarios; ++s) {
    Mix mix;
    mix.name = "S" + std::to_string(s);
    mix.tm_name = tms[s % 3];
    mix.workload = wls[(s / 3) % 3];
    mix.oversub = oversubs[rng.NextBounded(3)];
    mix.sigma = (s % 2) ? 2.0 : 1.0;
    mix.max_load = rng.Uniform(0.3, 0.7);
    BuiltMix built = BuildMix(mix, DefaultFlows(), 900 + static_cast<std::uint64_t>(s));

    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    const double p99_true = P99Slowdown(truth);

    M3Options mopts;
    mopts.num_paths = DefaultPaths();
    const NetworkEstimate m3_est = RunM3(built.ft->topo(), built.wl.flows, built.cfg, model, mopts);

    ParsimonOptions popts;
    popts.cfg = built.cfg;
    const auto pars = RunParsimon(built.ft->topo(), built.wl.flows, popts);

    cases.push_back({mix.tm_name, mix.workload, mix.oversub, mix.sigma,
                     AbsErrPct(m3_est.CombinedP99(), p99_true),
                     AbsErrPct(P99Slowdown(pars), p99_true)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n");

  auto report = [&](const char* dim, auto key_fn) {
    std::map<std::string, std::pair<std::vector<double>, std::vector<double>>> groups;
    for (const Case& c : cases) {
      auto& g = groups[key_fn(c)];
      g.first.push_back(c.m3_err);
      g.second.push_back(c.pars_err);
    }
    std::printf("by %s:\n", dim);
    for (auto& [k, v] : groups) {
      std::printf("  %-14s m3 median=%5.1f%%  parsimon median=%5.1f%% (n=%zu)\n", k.c_str(),
                  Percentile(v.first, 50), Percentile(v.second, 50), v.first.size());
    }
  };
  report("traffic matrix", [](const Case& c) { return c.tm; });
  report("workload", [](const Case& c) { return c.wl; });
  report("oversubscription",
         [](const Case& c) { return std::to_string(static_cast<int>(c.oversub)) + ":1"; });
  report("burstiness",
         [](const Case& c) { return "sigma=" + std::to_string(static_cast<int>(c.sigma)); });
  std::printf("paper: m3 stays stable across all groupings; Parsimon skews badly on\n"
              "matrix A / WebServer / 4:1 / sigma=2\n");
  return 0;
}
