// Figure 16: ablation of m3's components on synthetic Table-2 paths:
// flowSim alone vs "m3 w/o context" (background features zeroed) vs full
// m3, by path length and flow-size bucket.
//
// Paper claim: flowSim underestimates badly (errors to -80%, worst for
// small flows / long paths); the ML model corrects it; context features
// improve accuracy by ~33% on average and reduce variance.
#include <map>

#include "bench/common.h"
#include "core/dataset.h"
#include "core/trainer.h"

using namespace m3;
using namespace m3::bench;

int main() {
  const int num_eval = std::max(20, 12 * Scale());
  std::printf("=== Fig 16: component ablation on %d synthetic paths ===\n", num_eval);
  M3Model& model = DefaultModel();

  // A no-context model trained the same way (quick, cached separately).
  static M3Model no_ctx_model;
  {
    const std::string path = "models/m3_noctx.ckpt";
    if (FileExists(path)) {
      no_ctx_model.Load(path);
      std::printf("# no-context model: loaded %s\n", path.c_str());
    } else {
      std::printf("# training no-context ablation model...\n");
      std::fflush(stdout);
      DatasetOptions dopts;
      dopts.num_scenarios = 150;
      dopts.num_fg = 400;
      dopts.seed = 77;
      const auto train_samples = MakeSyntheticDataset(dopts);
      TrainOptions topts;
      topts.epochs = 30;
      topts.use_context = false;
      TrainModel(no_ctx_model, train_samples, topts);
      no_ctx_model.Save(path);
    }
  }

  DatasetOptions eopts;
  eopts.num_scenarios = num_eval;
  eopts.num_fg = 800;
  // The paper's Fig 16 evaluates dense paths (20000 fg flows each); sparse
  // paths make per-bucket p99 targets statistically meaningless.
  eopts.vary_num_fg = false;
  eopts.seed = 4242;  // held out from both training seeds
  const auto eval = MakeSyntheticDataset(eopts);

  std::vector<double> fs_err, noctx_err, m3_err;
  std::map<int, std::array<std::vector<double>, 3>> by_len;
  for (const Sample& s : eval) {
    const auto full = model.Predict(s.fg_feat, s.bg_seq, s.spec, true, &s.baseline);
    const auto noctx = no_ctx_model.Predict(s.fg_feat, s.bg_seq, s.spec, false, &s.baseline);
    const int len = s.bg_seq.rows();
    for (int b = 0; b < kNumOutputBuckets; ++b) {
      if (!s.gt.has[static_cast<std::size_t>(b)]) continue;
      const double t99 = s.gt.pct[static_cast<std::size_t>(b)][98];
      if (t99 <= 0) continue;
      const double e_fs = s.flowsim.has[static_cast<std::size_t>(b)]
                              ? AbsErrPct(s.flowsim.pct[static_cast<std::size_t>(b)][98], t99)
                              : 100.0;
      const double e_nc = AbsErrPct(noctx[static_cast<std::size_t>(b)][98], t99);
      const double e_m3 = AbsErrPct(full[static_cast<std::size_t>(b)][98], t99);
      fs_err.push_back(e_fs);
      noctx_err.push_back(e_nc);
      m3_err.push_back(e_m3);
      by_len[len][0].push_back(e_fs);
      by_len[len][1].push_back(e_nc);
      by_len[len][2].push_back(e_m3);
    }
  }

  std::printf("\n|p99 err| overall: flowSim mean=%.1f%% median=%.1f%%  |  m3-no-context "
              "mean=%.1f%% median=%.1f%%  |  m3 mean=%.1f%% median=%.1f%%\n",
              Mean(fs_err), Percentile(fs_err, 50), Mean(noctx_err),
              Percentile(noctx_err, 50), Mean(m3_err), Percentile(m3_err, 50));
  std::printf("stddev:            flowSim %.1f%%        m3-no-context %.1f%%       m3 %.1f%%\n",
              StdDev(fs_err), StdDev(noctx_err), StdDev(m3_err));
  std::printf("by path length (median):\n");
  for (auto& [len, errs] : by_len) {
    std::printf("  %d hops: flowSim %.1f%%  no-context %.1f%%  m3 %.1f%% (n=%zu)\n", len,
                Percentile(errs[0], 50), Percentile(errs[1], 50), Percentile(errs[2], 50),
                errs[0].size());
  }
  std::printf("paper: ML correction removes flowSim's bias; context features improve\n"
              "accuracy by ~33%% on average and cut variance\n");
  return 0;
}
