// Figure 14: counterfactual exploration -- sweep HPCC's eta (target
// utilization) with init window fixed at 20KB; compare m3's predicted p99
// slowdown per flow class against ground truth.
//
// Paper claim: m3 correctly captures eta's effect on p99 slowdown, with an
// average speedup of 763x over ns-3.
#include "bench/common.h"
#include "pktsim/simulator.h"

using namespace m3;
using namespace m3::bench;

int main() {
  std::printf("=== Fig 14: HPCC eta counterfactual sweep ===\n");
  M3Model& model = DefaultModel();

  Mix mix{"F14", "C", "WebServer", 2.0, 0.5, 1.5};
  const std::vector<double> etas{0.70, 0.80, 0.90, 0.95};

  double m3_total_s = 0.0, full_total_s = 0.0;
  std::printf("%-6s | %-28s | %-28s\n", "eta", "truth p99 (S/M/L/XL)", "m3 p99 (S/M/L/XL)");
  for (double eta : etas) {
    BuiltMix built = BuildMix(mix, DefaultFlows(), 778);
    built.cfg.cc = CcType::kHpcc;
    built.cfg.pfc = true;
    built.cfg.buffer = 400 * kKB;
    built.cfg.init_window = 20 * kKB;
    built.cfg.hpcc_eta = eta;

    WallTimer t_full;
    const auto truth = RunPacketSim(built.ft->topo(), built.wl.flows, built.cfg);
    full_total_s += t_full.Seconds();
    const auto gt_p99 = SummarizeGroundTruth(truth).BucketP99();

    M3Options mopts;
    mopts.num_paths = DefaultPaths();
    const NetworkEstimate est = RunM3(built.ft->topo(), built.wl.flows, built.cfg, model, mopts);
    m3_total_s += est.wall_seconds;
    const auto m3_p99 = est.BucketP99();

    std::printf("%5.2f | %6.2f %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f %6.2f\n", eta,
                gt_p99[0], gt_p99[1], gt_p99[2], gt_p99[3], m3_p99[0], m3_p99[1], m3_p99[2],
                m3_p99[3]);
    std::fflush(stdout);
  }
  std::printf("speedup vs full simulation: %.0fx (paper: 763x)\n",
              full_total_s / std::max(1e-9, m3_total_s));
  return 0;
}
