// Microbenchmark (google-benchmark): flowSim throughput vs the packet
// simulator on the same path scenario, backing the paper's "800K flows in
// ~1 second, 687x faster than ns-3" claim for the featurizer.
#include <benchmark/benchmark.h>

#include "core/scenario.h"
#include "flowsim/flowsim.h"
#include "pktsim/simulator.h"

namespace m3 {
namespace {

PathScenario MakeScenario(int num_fg) {
  SyntheticSpec spec;
  spec.num_links = 4;
  spec.family = ParametricFamily::kLogNormal;
  spec.theta = 20000.0;
  spec.sigma = 1.5;
  spec.max_load = 0.5;
  spec.num_fg = num_fg;
  spec.bg_ratio = 1.0;
  spec.seed = 99;
  return BuildSyntheticScenario(spec);
}

void BM_FlowSim(benchmark::State& state) {
  const PathScenario sc = MakeScenario(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunFlowSim(sc.lot->topo(), sc.flows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.flows.size()));
}
BENCHMARK(BM_FlowSim)->Arg(500)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

void BM_PacketSim(benchmark::State& state) {
  const PathScenario sc = MakeScenario(static_cast<int>(state.range(0)));
  NetConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPacketSim(sc.lot->topo(), sc.flows, cfg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(sc.flows.size()));
}
BENCHMARK(BM_PacketSim)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_MaxMinRecompute(benchmark::State& state) {
  // Isolated cost of one arrival event at high active-flow counts.
  const PathScenario sc = MakeScenario(static_cast<int>(state.range(0)));
  std::vector<Flow> burst = sc.flows;
  for (auto& f : burst) f.arrival = 0;  // all flows active at once
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunFlowSim(sc.lot->topo(), burst));
  }
}
BENCHMARK(BM_MaxMinRecompute)->Arg(200)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace m3

BENCHMARK_MAIN();
